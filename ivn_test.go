package ivn

import (
	"bytes"
	"strings"
	"testing"

	"ivn/internal/em"
	"ivn/internal/gen2"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Beamformer.N() != 10 {
		t.Fatalf("N = %d", sys.Beamformer.N())
	}
	if got := sys.FrequencyPlan(); len(got) != 10 || got[9] != 137 {
		t.Fatalf("plan = %v", got)
	}
	if sys.Reader.TxFreq != 880e6 {
		t.Fatalf("reader at %v", sys.Reader.TxFreq)
	}
}

func TestNewConfigOverrides(t *testing.T) {
	sys, err := New(Config{Antennas: 4, CenterFreq: 920e6, ReaderFreq: 866e6, AveragingPeriods: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Beamformer.N() != 4 || sys.Beamformer.CenterFreq != 920e6 {
		t.Fatal("beamformer overrides ignored")
	}
	if sys.Reader.TxFreq != 866e6 || sys.Reader.AveragingPeriods != 4 {
		t.Fatal("reader overrides ignored")
	}
	if _, err := New(Config{Offsets: []float64{5}, Antennas: 1}); err == nil {
		t.Fatal("invalid offsets accepted")
	}
}

func TestInventoryFullExchange(t *testing.T) {
	sys, err := New(Config{Antennas: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.Inventory(scenario.NewAir(3), tag.StandardTag())
	if err != nil {
		t.Fatal(err)
	}
	if !session.Powered || !session.Decoded {
		t.Fatalf("3 m exchange failed: %s", session)
	}
	if session.EPC == nil {
		t.Fatalf("EPC not recovered: %s", session)
	}
	if session.Correlation < 0.8 {
		t.Fatalf("correlation %v", session.Correlation)
	}
	if !strings.Contains(session.String(), "EPC=") {
		t.Fatalf("session string: %s", session)
	}
}

func TestInventoryDeepTissueMiniature(t *testing.T) {
	// The headline capability: a miniature tag at 11 cm in fluid.
	sys, err := New(Config{Antennas: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.NewTank(0.9, em.Water, 0.08)
	sc.FixedOrientation = 0
	session, err := sys.Inventory(sc, tag.MiniatureTag())
	if err != nil {
		t.Fatal(err)
	}
	if !session.Powered {
		t.Fatalf("miniature tag not powered at 8 cm: %s", session)
	}
}

func TestInventoryFailsOutOfRange(t *testing.T) {
	sys, err := New(Config{Antennas: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.Inventory(scenario.NewAir(300), tag.MiniatureTag())
	if err != nil {
		t.Fatal(err)
	}
	if session.Powered {
		t.Fatalf("miniature tag powered at 300 m: %s", session)
	}
	if !strings.Contains(session.String(), "unpowered") {
		t.Fatalf("session string: %s", session)
	}
}

func TestInventorySelectAddressing(t *testing.T) {
	sys, err := New(Config{Antennas: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sensors := map[string]tag.Model{
		string([]byte{0xE2, 0x00, 0x00, 0x01}): tag.StandardTag(),
		string([]byte{0xE2, 0x00, 0x00, 0x02}): tag.StandardTag(),
	}
	target := []byte{0xE2, 0x00, 0x00, 0x02}
	session, err := sys.InventorySelect(scenario.NewAir(3), sensors, target)
	if err != nil {
		t.Fatal(err)
	}
	if !session.Decoded {
		t.Fatalf("select exchange failed: %s", session)
	}
	if !bytes.Equal(session.EPC, target) {
		t.Fatalf("selected EPC %x, want %x", session.EPC, target)
	}
	// A mask matching nobody yields silence, not an error.
	none, err := sys.InventorySelect(scenario.NewAir(3), sensors, []byte{0xFF, 0xFF})
	if err != nil {
		t.Fatal(err)
	}
	if none.Decoded {
		t.Fatal("nonexistent target decoded")
	}
	if _, err := sys.InventorySelect(scenario.NewAir(3), nil, target); err == nil {
		t.Fatal("empty sensor map accepted")
	}
}

func TestReadWordsAndWriteWord(t *testing.T) {
	sys, err := New(Config{Antennas: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.NewTank(0.5, em.GastricFluid, 0.04)
	sc.FixedOrientation = 0

	// Write an actuation word, then read it back over the air.
	wr, err := sys.WriteWord(sc, tag.StandardTag(), 0, 0xD05E)
	if err != nil {
		t.Fatal(err)
	}
	if !wr.Powered || !wr.Decoded || !wr.Written {
		t.Fatalf("write exchange failed: %+v", wr)
	}
	// Reads hit a fresh tag instance (each call realizes a new placement),
	// so read the TID bank, whose contents are deterministic.
	rd, err := sys.ReadWords(sc, tag.StandardTag(), gen2.BankTID, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Decoded || len(rd.Words) != 2 {
		t.Fatalf("read exchange failed: %+v", rd)
	}
	if rd.Words[0] != 0xE280 {
		t.Fatalf("TID class word %#04x", rd.Words[0])
	}
	// Out of range: the tag stays silent and the result reports no data.
	far, err := sys.WriteWord(scenario.NewAir(400), tag.StandardTag(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if far.Written || far.Powered {
		t.Fatalf("400 m write succeeded: %+v", far)
	}
}

func TestInventoryPopulation(t *testing.T) {
	sys, err := New(Config{Antennas: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sensors := map[string]tag.Model{}
	for i := 0; i < 12; i++ {
		epc := string([]byte{0xE2, 0x01, byte(i), 0x00})
		sensors[epc] = tag.StandardTag()
	}
	sc := scenario.NewTank(0.5, em.Water, 0.05)
	sc.FixedOrientation = 0
	epcs, err := sys.InventoryPopulation(sc, sensors, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(epcs) != 12 {
		t.Fatalf("read %d/12 sensors", len(epcs))
	}
	seen := map[string]bool{}
	for _, e := range epcs {
		if seen[string(e)] {
			t.Fatalf("duplicate EPC %x", e)
		}
		seen[string(e)] = true
		if _, known := sensors[string(e)]; !known {
			t.Fatalf("phantom EPC %x", e)
		}
	}
	// An out-of-range population reads nothing, without error.
	far, err := sys.InventoryPopulation(scenario.NewAir(500), sensors, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(far) != 0 {
		t.Fatalf("read %d sensors at 500 m", len(far))
	}
	if _, err := sys.InventoryPopulation(sc, nil, 3); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestSurveyGain(t *testing.T) {
	sys, err := New(Config{Antennas: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.SurveyGain(scenario.NewTank(0.5, em.Water, 0.10), 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median < 10 {
		t.Fatalf("8-antenna median gain %v, want > 10", s.Median)
	}
	if _, err := sys.SurveyGain(scenario.NewAir(1), 0); err == nil {
		t.Fatal("0 trials accepted")
	}
}

func TestOptimizePlanAndPaperPlan(t *testing.T) {
	plan, err := OptimizePlan(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Offsets) != 4 || plan.RMS > plan.Limit {
		t.Fatalf("bad plan: %s", plan)
	}
	if got := PaperPlan(); len(got) != 10 || got[0] != 0 {
		t.Fatalf("paper plan = %v", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		sys, err := New(Config{Antennas: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		session, err := sys.Inventory(scenario.NewAir(4), tag.StandardTag())
		if err != nil {
			t.Fatal(err)
		}
		return session.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sessions differ across identical seeds:\n%s\n%s", a, b)
	}
}

func TestSessionStringVariants(t *testing.T) {
	cases := []struct {
		s    Session
		want string
	}{
		{Session{PeakPowerDBm: -20}, "unpowered"},
		{Session{Powered: true, PeakPowerDBm: 3}, "uplink not decoded"},
		{Session{Powered: true, Decoded: true, RN16: 0xAB, Correlation: 0.9, PeakPowerDBm: 3}, "RN16="},
		{Session{Powered: true, Decoded: true, RN16: 0xAB, EPC: []byte{1, 2}, Correlation: 0.9}, "EPC="},
	}
	for i, c := range cases {
		if got := c.s.String(); !strings.Contains(got, c.want) {
			t.Errorf("case %d: %q missing %q", i, got, c.want)
		}
	}
}

func TestBestKnownPlanFacade(t *testing.T) {
	p, err := BestKnownPlan(8)
	if err != nil || len(p) != 8 {
		t.Fatalf("BestKnownPlan(8) = %v, %v", p, err)
	}
	// A system built on the best-known plan works end to end.
	sys, err := New(Config{Offsets: p, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	session, err := sys.Inventory(scenario.NewAir(3), tag.StandardTag())
	if err != nil {
		t.Fatal(err)
	}
	if !session.Decoded {
		t.Fatalf("best-known-plan system failed: %s", session)
	}
	if _, err := BestKnownPlan(42); err == nil {
		t.Fatal("n=42 accepted")
	}
}

func TestWriteWordSecured(t *testing.T) {
	const pwd = 0xA1B2C3D4
	provision := func(l *gen2.TagLogic) { l.SetAccessPassword(pwd) }
	sc := scenario.NewTank(0.5, em.GastricFluid, 0.04)
	sc.FixedOrientation = 0

	// Correct password: the dose lands.
	sys, err := New(Config{Antennas: 8, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.WriteWordSecured(sc, tag.StandardTag(), provision, pwd, 0, 0x0001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Written {
		t.Fatalf("authorized secured write failed: %+v", res)
	}

	// Wrong password: powered, but the actuator never confirms.
	sys2, err := New(Config{Antennas: 8, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sys2.WriteWordSecured(sc, tag.StandardTag(), provision, pwd^1, 0, 0x0001)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Written {
		t.Fatal("wrong password triggered the actuator")
	}
	if !res2.Powered {
		t.Fatalf("tag should still power up: %+v", res2)
	}

	// An unauthenticated plain Write against a protected tag also fails.
	sys3, err := New(Config{Antennas: 8, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	res3, bits, err := sys3.accessWith(sc, tag.StandardTag(), provision, func(h uint16) []gen2.Command {
		return []gen2.Command{&gen2.Write{Bank: gen2.BankUser, WordPtr: 0, Data: 1, Handle: h}}
	}, gen2.ReplyWrite)
	if err != nil {
		t.Fatal(err)
	}
	if bits != nil || res3.Written {
		t.Fatal("unauthenticated write against protected tag succeeded")
	}
}

// Multisensor sessions must be byte-reproducible: the sensor population is
// a map, and both the per-tag rng streams (r.Split advances the parent)
// and the singulation order previously depended on map iteration order.
// Regression test for the sorted-EPC fix — under the old code, repeated
// runs disagree with high probability.
func TestMultisensorSessionsDeterministic(t *testing.T) {
	sensors := map[string]tag.Model{}
	for i := 0; i < 6; i++ {
		sensors[string([]byte{0xE2, 0x01, byte(i), 0x00})] = tag.StandardTag()
	}
	sc := scenario.NewTank(0.5, em.Water, 0.05)
	sc.FixedOrientation = 0
	target := []byte{0xE2, 0x01, 0x03, 0x00}

	run := func() ([][]byte, *Session) {
		sys, err := New(Config{Antennas: 8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		epcs, err := sys.InventoryPopulation(sc, sensors, 8)
		if err != nil {
			t.Fatal(err)
		}
		sys2, err := New(Config{Antennas: 8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		session, err := sys2.InventorySelect(sc, sensors, target)
		if err != nil {
			t.Fatal(err)
		}
		return epcs, session
	}

	wantEPCs, wantSession := run()
	// Repeat: map iteration order reshuffles per range, so a handful of
	// runs catches any order dependence with overwhelming probability.
	for rep := 0; rep < 6; rep++ {
		epcs, session := run()
		if len(epcs) != len(wantEPCs) {
			t.Fatalf("rep %d: read %d sensors, want %d", rep, len(epcs), len(wantEPCs))
		}
		for i := range epcs {
			if !bytes.Equal(epcs[i], wantEPCs[i]) {
				t.Fatalf("rep %d: singulation order diverged at %d: %x vs %x", rep, i, epcs[i], wantEPCs[i])
			}
		}
		if session.String() != wantSession.String() {
			t.Fatalf("rep %d: select session diverged:\n%s\nvs\n%s", rep, session, wantSession)
		}
	}
}
