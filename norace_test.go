//go:build !race

package ivn

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = false
