package ivn

import (
	"runtime"
	"testing"

	"ivn/internal/ivnsim"
	"ivn/internal/session"
)

// TestInventoryExchangeAllocBudget pins the hot path's allocation count
// with tracing disabled: the link/session decomposition must not cost the
// facade anything. 135 is the pre-refactor BenchmarkInventoryExchange
// figure; the scratch link on System keeps realization off the heap.
func TestInventoryExchangeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; budget holds without -race")
	}
	sys, err := New(Config{Antennas: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := benchScenario()
	model := benchTag()
	// Warm up pools and lazy state outside the measured window.
	if _, err := sys.Inventory(sc, model); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sys.Inventory(sc, model); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 135 {
		t.Fatalf("Inventory allocates %.0f times per exchange with a nil observer, budget 135", allocs)
	}
}

// runExperimentQuick executes one CI-scale experiment run (the benchmark
// configuration) for the alloc budgets below.
func runExperimentQuick(t *testing.T, id string) {
	t.Helper()
	e, err := ivnsim.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ivnsim.Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
}

// TestFig9AllocBudget pins the batched gain-trial path: per-point Prepare
// plus per-worker kits leave only the engine/statistics scaffolding on
// the heap. The quick Fig9 run (10 points × 30 trials) sat at ≈23,700
// allocations before batching; the budget leaves headroom over the ≈330
// it needs now while still failing loudly if a per-trial allocation
// sneaks back in (300 trials × only 7 allocs each would blow it).
func TestFig9AllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; budget holds without -race")
	}
	runExperimentQuick(t, "fig9") // warm pools and lazy state
	allocs := testing.AllocsPerRun(3, func() { runExperimentQuick(t, "fig9") })
	if allocs > 2400 {
		t.Fatalf("quick fig9 allocates %.0f times per run, budget 2400", allocs)
	}
}

// TestFig13BytesBudget pins the batched range-search path by bytes: the
// duration-only command path plus comm kits keep a quick Fig13(c) run
// within single-digit megabytes where it previously synthesized ≈15 MB of
// envelopes and channel state per run. Bytes are measured via the
// allocator's TotalAlloc counter (AllocsPerRun only counts objects).
func TestFig13BytesBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation; budget holds without -race")
	}
	runExperimentQuick(t, "fig13c") // warm pools and lazy state
	const runs = 3
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		runExperimentQuick(t, "fig13c")
	}
	runtime.ReadMemStats(&after)
	perRun := float64(after.TotalAlloc-before.TotalAlloc) / runs
	if perRun > 3e6 {
		t.Fatalf("quick fig13c allocates %.1f MB per run, budget 3 MB", perRun/1e6)
	}
}

// TestObserverCostIsOptIn checks the other side of the zero-cost
// contract: attaching an observer records events without perturbing the
// exchange outcome.
func TestObserverCostIsOptIn(t *testing.T) {
	run := func(obs session.Observer) *Session {
		sys, err := New(Config{Antennas: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys.Observer = obs
		res, err := sys.Inventory(benchScenario(), benchTag())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec := &session.Recorder{}
	plain := run(nil)
	traced := run(rec)
	if plain.Powered != traced.Powered || plain.Decoded != traced.Decoded ||
		string(plain.EPC) != string(traced.EPC) {
		t.Fatalf("observer changed the exchange: %+v vs %+v", plain, traced)
	}
	if len(rec.Events) == 0 {
		t.Fatal("observer attached but no events recorded")
	}
}
