package ivn

import (
	"testing"

	"ivn/internal/session"
)

// TestInventoryExchangeAllocBudget pins the hot path's allocation count
// with tracing disabled: the link/session decomposition must not cost the
// facade anything. 135 is the pre-refactor BenchmarkInventoryExchange
// figure; the scratch link on System keeps realization off the heap.
func TestInventoryExchangeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; budget holds without -race")
	}
	sys, err := New(Config{Antennas: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := benchScenario()
	model := benchTag()
	// Warm up pools and lazy state outside the measured window.
	if _, err := sys.Inventory(sc, model); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sys.Inventory(sc, model); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 135 {
		t.Fatalf("Inventory allocates %.0f times per exchange with a nil observer, budget 135", allocs)
	}
}

// TestObserverCostIsOptIn checks the other side of the zero-cost
// contract: attaching an observer records events without perturbing the
// exchange outcome.
func TestObserverCostIsOptIn(t *testing.T) {
	run := func(obs session.Observer) *Session {
		sys, err := New(Config{Antennas: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys.Observer = obs
		res, err := sys.Inventory(benchScenario(), benchTag())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec := &session.Recorder{}
	plain := run(nil)
	traced := run(rec)
	if plain.Powered != traced.Powered || plain.Decoded != traced.Decoded ||
		string(plain.EPC) != string(traced.EPC) {
		t.Fatalf("observer changed the exchange: %+v vs %+v", plain, traced)
	}
	if len(rec.Events) == 0 {
		t.Fatal("observer attached but no events recorded")
	}
}
