// Package ivn is the public entry point to the IVN (In-Vivo Networking)
// library: a full reimplementation of "Enabling Deep-Tissue Networking for
// Miniature Medical Devices" (SIGCOMM 2018).
//
// The library powers up and communicates with battery-free backscatter
// sensors through deep tissue using coherently-incoherent beamforming
// (CIB): N transmit chains send the same synchronized Gen2 command on N
// slightly offset carriers, so the superposed envelope at any point in
// space periodically sweeps through near-coherent alignments — delivering
// an ≈N× peak amplitude without any channel knowledge.
//
// A System bundles a CIB beamformer with the out-of-band reader; each
// exchange realizes an ivn/internal/link Link for the drawn placement and
// drives it through the ivn/internal/session state machine. Scenarios
// (water tank, open air, swine torso) come from ivn/internal/scenario;
// tag models from ivn/internal/tag. The typical flow is three lines:
//
//	sys, _ := ivn.New(ivn.Config{Antennas: 8, Seed: 1})
//	session, _ := sys.Inventory(scenario.NewTank(0.5, em.Water, 0.11), tag.MiniatureTag())
//	fmt.Println(session)
//
// Every randomized component derives from Config.Seed, so runs are fully
// reproducible. Set System.Observer to watch any exchange as a typed
// event stream stamped with simulated air time.
package ivn

import (
	"fmt"
	"sort"

	"ivn/internal/baseline"
	"ivn/internal/core"
	"ivn/internal/gen2"
	"ivn/internal/link"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/rng"
	"ivn/internal/scenario"
	"ivn/internal/session"
	"ivn/internal/stats"
	"ivn/internal/tag"
)

// Config assembles a System.
type Config struct {
	// Antennas is the CIB chain count (1-10 with the default plan);
	// zero means 10, the paper's full prototype.
	Antennas int
	// CenterFreq is the CIB carrier in Hz; zero means 915 MHz.
	CenterFreq float64
	// Offsets overrides the Δf plan; nil means the paper's published set.
	Offsets []float64
	// ReaderFreq is the out-of-band reader carrier; zero means 880 MHz.
	ReaderFreq float64
	// AveragingPeriods is the reader's coherent-averaging depth; zero
	// keeps the default.
	AveragingPeriods int
	// Seed drives all randomness.
	Seed uint64
}

// System is a ready-to-use IVN deployment: CIB beamformer plus
// out-of-band reader. A System is not safe for concurrent use: each
// exchange advances its deterministic random stream. Build one System per
// goroutine (with distinct seeds) for parallel work.
type System struct {
	Beamformer *core.Beamformer
	Reader     *reader.Reader

	// Observer, when non-nil, receives every exchange's typed event
	// stream (commands sent, slots resolved, decodes, EPC outcomes)
	// stamped with simulated air time. Nil — the default — costs
	// nothing: no events are built and no clock is kept.
	Observer session.Observer

	root *rng.Rand
	// lk is scratch storage for the per-exchange physical link; reused
	// across sequential exchanges so the hot path allocates nothing for
	// it (a System is single-goroutine by contract).
	lk link.Link
}

// New builds a System.
func New(cfg Config) (*System, error) {
	if cfg.Antennas == 0 {
		if cfg.Offsets != nil {
			cfg.Antennas = len(cfg.Offsets)
		} else {
			cfg.Antennas = 10
		}
	}
	root := rng.New(cfg.Seed)
	bcfg := core.DefaultConfig()
	bcfg.Antennas = cfg.Antennas
	if cfg.CenterFreq != 0 {
		bcfg.CenterFreq = cfg.CenterFreq
	}
	if cfg.Offsets != nil {
		bcfg.Offsets = cfg.Offsets
	}
	bf, err := core.New(bcfg, root.Split("beamformer"))
	if err != nil {
		return nil, err
	}
	rd := reader.New()
	if cfg.ReaderFreq != 0 {
		rd.TxFreq = cfg.ReaderFreq
		rd.RX = radio.NewReceiver(cfg.ReaderFreq)
	}
	if cfg.AveragingPeriods != 0 {
		rd.AveragingPeriods = cfg.AveragingPeriods
	}
	if err := rd.Validate(); err != nil {
		return nil, err
	}
	return &System{Beamformer: bf, Reader: rd, root: root}, nil
}

// FrequencyPlan returns the active Δf set in Hz.
func (s *System) FrequencyPlan() []float64 {
	return append([]float64(nil), s.Beamformer.Offsets...)
}

// realizeLink realizes sc into a placement and binds this System's
// chains to it, returning the link and a trace wired to s.Observer.
func (s *System) realizeLink(sc scenario.Scenario, r *rng.Rand) (*link.Link, *session.Trace, error) {
	p, err := sc.Realize(s.Beamformer.N(), r)
	if err != nil {
		return nil, nil, err
	}
	tr := session.NewTrace(s.Observer)
	if err := link.RealizeInto(&s.lk, s.Beamformer, s.Reader, p, tr); err != nil {
		return nil, nil, err
	}
	return &s.lk, tr, nil
}

// Session is the outcome of one full inventory exchange.
type Session struct {
	// PeakPowerDBm is the CIB envelope peak delivered to the sensor.
	PeakPowerDBm float64
	// Powered reports whether the sensor cleared its harvesting threshold.
	Powered bool
	// Decoded reports whether the reader recovered the RN16.
	Decoded bool
	// Correlation is the FM0 preamble correlation of the decode.
	Correlation float64
	// RN16 is the recovered slot random number (valid when Decoded).
	RN16 uint16
	// EPC is the sensor identifier recovered after ACK (nil if the
	// exchange stopped earlier).
	EPC []byte
}

// String summarizes a Session.
func (s Session) String() string {
	switch {
	case !s.Powered:
		return fmt.Sprintf("Session{unpowered, peak %.1f dBm}", s.PeakPowerDBm)
	case !s.Decoded:
		return fmt.Sprintf("Session{powered (%.1f dBm) but uplink not decoded}", s.PeakPowerDBm)
	case s.EPC == nil:
		return fmt.Sprintf("Session{RN16=%#04x, corr %.3f, peak %.1f dBm}", s.RN16, s.Correlation, s.PeakPowerDBm)
	default:
		return fmt.Sprintf("Session{RN16=%#04x EPC=%x, corr %.3f, peak %.1f dBm}", s.RN16, s.EPC, s.Correlation, s.PeakPowerDBm)
	}
}

// Inventory runs a full exchange against a sensor of the given model in
// the scenario: CIB power-up, synchronized Query, RN16 decode through the
// out-of-band reader, then ACK and EPC decode. Each call realizes a fresh
// placement (position/orientation/multipath draw).
func (s *System) Inventory(sc scenario.Scenario, model tag.Model) (*Session, error) {
	r := s.root.Split("inventory")
	epc := []byte{0xE2, 0x00, 0x68, 0x10, 0x00, 0x01}
	return s.inventoryEPC(sc, model, epc, r)
}

func (s *System) inventoryEPC(sc scenario.Scenario, model tag.Model, epc []byte, r *rng.Rand) (*Session, error) {
	lk, tr, err := s.realizeLink(sc, r)
	if err != nil {
		return nil, err
	}
	out := &Session{PeakPowerDBm: lk.PeakPowerDBm()}

	tg, err := tag.New(model, epc, r.Split("tag"))
	if err != nil {
		return nil, err
	}
	x := session.Exchange{Link: lk, Trace: tr}
	out.Powered = x.PowerUp(tg, lk.PeakPower())
	if !out.Powered {
		return out, nil
	}

	// Query (flatness-checked) → RN16 through the out-of-band reader.
	sr, err := x.Singulate(tg, &gen2.Query{Q: 0, Session: gen2.S0}, "rn16", r)
	if err != nil {
		return nil, err
	}
	if !sr.Decoded {
		return out, nil
	}
	out.Decoded = true
	out.Correlation = sr.Correlation
	out.RN16 = sr.RN16

	// ACK → EPC.
	epcBytes, ok, err := x.AckEPC(tg, sr.RN16, "epc", r)
	if err != nil {
		return nil, err
	}
	if !ok {
		return out, nil
	}
	out.EPC = epcBytes
	return out, nil
}

// InventorySelect addresses one sensor among several by EPC prefix using
// the §3.7 multi-sensor extension: a Select command asserts the SL flag on
// the matching sensor, then a Sel=SL Query solicits only it. tags maps EPC
// bytes to models; the exchange returns the session with the matching
// sensor.
func (s *System) InventorySelect(sc scenario.Scenario, sensors map[string]tag.Model, targetEPC []byte) (*Session, error) {
	if len(sensors) == 0 {
		return nil, fmt.Errorf("ivn: no sensors")
	}
	r := s.root.Split("inventory-select")
	lk, tr, err := s.realizeLink(sc, r)
	if err != nil {
		return nil, err
	}
	out := &Session{PeakPowerDBm: lk.PeakPowerDBm()}
	x := session.Exchange{Link: lk, Trace: tr}

	// Build every tag, power them all from the shared field. The map is
	// iterated in sorted-EPC order: r.Split advances the parent stream, so
	// iteration order would otherwise change every tag's randomness (and
	// the tags slice order) from run to run.
	var tags []*tag.Tag
	for _, epcStr := range sortedEPCs(sensors) {
		tg, err := tag.New(sensors[epcStr], []byte(epcStr), r.Split("tag-"+epcStr))
		if err != nil {
			return nil, err
		}
		x.PowerUp(tg, lk.PeakPower())
		tags = append(tags, tg)
	}

	// Select the target by full-EPC mask, then Query only SL tags. The
	// combined command duration is flatness-checked by the beamformer.
	sel := &gen2.Select{Target: 4, Action: 0, MemBank: 1, Pointer: 0, Mask: gen2.BitsFromBytes(targetEPC)}
	q := &gen2.Query{Q: 0, Sel: 3, Session: gen2.S0}
	replies, responders, err := x.Select(tags, sel, q)
	if err != nil {
		return nil, err
	}
	switch len(replies) {
	case 0:
		out.Powered = anyPowered(tags)
		return out, nil
	case 1:
		// proceed
	default:
		return nil, fmt.Errorf("ivn: select matched %d sensors; collision", len(replies))
	}
	out.Powered = true
	responder := responders[0]
	sg, err := x.DecodeRN16(responder, replies[0], "rn16", r)
	if err != nil {
		return nil, err
	}
	if !sg.Decoded {
		return out, nil
	}
	out.Decoded = true
	out.Correlation = sg.Correlation
	out.RN16 = sg.RN16
	out.EPC = responder.Logic.EPC()
	return out, nil
}

// AccessResult is the outcome of a memory access exchange.
type AccessResult struct {
	Session
	// Words holds the data returned by ReadWords.
	Words []uint16
	// Written reports a confirmed WriteWord.
	Written bool
}

// access runs the full handshake to the Open state and then one access
// command built by mk from the granted handle.
func (s *System) access(sc scenario.Scenario, model tag.Model, mk func(handle uint16) gen2.Command, wantKind gen2.ReplyKind) (*AccessResult, gen2.Bits, error) {
	return s.accessWith(sc, model, nil, func(h uint16) []gen2.Command {
		return []gen2.Command{mk(h)}
	}, wantKind)
}

// accessWith runs the handshake, applies an optional tag provisioning hook
// (e.g. setting an access password at commissioning time), then issues the
// command sequence mk builds from the granted handle. The final command's
// reply is returned; intermediate commands (e.g. Access) must elicit
// non-silent replies that decode over the uplink.
func (s *System) accessWith(sc scenario.Scenario, model tag.Model, provision func(*gen2.TagLogic), mk func(handle uint16) []gen2.Command, wantKind gen2.ReplyKind) (*AccessResult, gen2.Bits, error) {
	r := s.root.Split("access")
	lk, tr, err := s.realizeLink(sc, r)
	if err != nil {
		return nil, nil, err
	}
	out := &AccessResult{Session: Session{PeakPowerDBm: lk.PeakPowerDBm()}}

	tg, err := tag.New(model, []byte{0xE2, 0x00, 0x68, 0x10, 0x00, 0x01}, r.Split("tag"))
	if err != nil {
		return nil, nil, err
	}
	if provision != nil {
		provision(tg.Logic)
	}
	x := session.Exchange{Link: lk, Trace: tr}
	out.Powered = x.PowerUp(tg, lk.PeakPower())
	if !out.Powered {
		return out, nil, nil
	}

	// Query → RN16.
	sr, err := x.Singulate(tg, &gen2.Query{Q: 0}, "rn16", r)
	if err != nil {
		return nil, nil, err
	}
	if !sr.Decoded {
		return out, nil, nil
	}
	out.Decoded = true
	out.Correlation = sr.Correlation
	out.RN16 = sr.RN16

	// ACK → EPC (the reply also confirms the handshake took).
	if _, ok, err := x.AckEPC(tg, sr.RN16, "epc", r); err != nil {
		return nil, nil, err
	} else if !ok {
		return out, nil, nil
	}
	out.EPC = tg.Logic.EPC()

	// ReqRN → handle.
	handle, ok, err := x.ReqRNHandle(tg, sr.RN16, "handle", r)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return out, nil, nil
	}

	// The access command sequence; every step must be transmitted,
	// answered, and uplink-decoded.
	lastBits, ok, err := x.Access(tg, mk(handle), wantKind, r)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return out, nil, nil
	}
	return out, lastBits, nil
}

// ReadWords reads count 16-bit words from the sensor's memory bank over
// the air: CIB power-up, singulation, ReqRN handle, then a Gen2 Read —
// the "monitoring internal vital signs" path of the paper's introduction
// with the sensor's registers standing in for physiological data.
func (s *System) ReadWords(sc scenario.Scenario, model tag.Model, bank gen2.MemoryBank, ptr, count byte) (*AccessResult, error) {
	res, bits, err := s.access(sc, model, func(h uint16) gen2.Command {
		return &gen2.Read{Bank: bank, WordPtr: ptr, WordCount: count, Handle: h}
	}, gen2.ReplyRead)
	if err != nil {
		return nil, err
	}
	if bits == nil {
		return res, nil
	}
	var rep gen2.ReadReply
	if err := rep.DecodeFromBits(bits, int(count)); err != nil {
		return res, nil
	}
	res.Words = rep.Words
	return res, nil
}

// WriteWord writes one 16-bit word into the sensor's user memory over the
// air — the actuation path ("delivering drugs", "bioactuators"): a
// deep-tissue Write into an actuation register triggers the device.
func (s *System) WriteWord(sc scenario.Scenario, model tag.Model, ptr byte, value uint16) (*AccessResult, error) {
	res, bits, err := s.access(sc, model, func(h uint16) gen2.Command {
		return &gen2.Write{Bank: gen2.BankUser, WordPtr: ptr, Data: value, Handle: h}
	}, gen2.ReplyWrite)
	if err != nil {
		return nil, err
	}
	if bits == nil {
		return res, nil
	}
	var rep gen2.WriteReply
	if err := rep.DecodeFromBits(bits); err != nil {
		return res, nil
	}
	res.Written = true
	return res, nil
}

// WriteWordSecured is WriteWord against a password-protected actuator: it
// inserts the Gen2 Access exchange (proving knowledge of the 32-bit access
// password) between the handle grant and the Write. An actuator
// provisioned with a password ignores unauthenticated Writes entirely —
// the authorization layer on top of the threshold effect's physical
// fail-safe.
func (s *System) WriteWordSecured(sc scenario.Scenario, model tag.Model, provision func(*gen2.TagLogic), password uint32, ptr byte, value uint16) (*AccessResult, error) {
	res, bits, err := s.accessWith(sc, model, provision, func(h uint16) []gen2.Command {
		return []gen2.Command{
			&gen2.Access{Password: password, Handle: h},
			&gen2.Write{Bank: gen2.BankUser, WordPtr: ptr, Data: value, Handle: h},
		}
	}, gen2.ReplyWrite)
	if err != nil {
		return nil, err
	}
	if bits == nil {
		return res, nil
	}
	var rep gen2.WriteReply
	if err := rep.DecodeFromBits(bits); err != nil {
		return res, nil
	}
	res.Written = true
	return res, nil
}

// ErrInventoryIncomplete reports that an inventory exhausted its round
// budget with reachable sensors still unread. InventoryPopulation wraps
// it, and the partial EPC list accompanies the error — check with
// errors.Is and consume what was read rather than discarding it.
var ErrInventoryIncomplete = session.ErrInventoryIncomplete

// InventoryPopulation powers a whole sensor population with CIB and runs
// the adaptive slotted-ALOHA inventory (Gen2 Q-algorithm) until every
// reachable sensor is read or maxRounds is exhausted. A sensor is
// reachable when the CIB peak powers it AND its backscatter closes the
// out-of-band link budget. Returns the EPCs read, in singulation order.
// When the round budget runs out first, the partial EPC list is returned
// alongside an error wrapping ErrInventoryIncomplete.
func (s *System) InventoryPopulation(sc scenario.Scenario, sensors map[string]tag.Model, maxRounds int) ([][]byte, error) {
	if len(sensors) == 0 {
		return nil, fmt.Errorf("ivn: no sensors")
	}
	r := s.root.Split("inventory-population")
	lk, tr, err := s.realizeLink(sc, r)
	if err != nil {
		return nil, err
	}
	peak := lk.PeakPower()

	// Sorted-EPC iteration: r.Split advances the parent stream and
	// `reachable` feeds the singulation order the caller sees, so map
	// iteration order must not leak into either.
	var reachable []*gen2.TagLogic
	for _, epcStr := range sortedEPCs(sensors) {
		model := sensors[epcStr]
		tg, err := tag.New(model, []byte(epcStr), r.Split("tag-"+epcStr))
		if err != nil {
			return nil, err
		}
		tg.UpdatePower(peak)
		if !tg.Powered() {
			continue
		}
		if !lk.DecodableRN16(model) {
			continue
		}
		reachable = append(reachable, tg.Logic)
	}
	if len(reachable) == 0 {
		return nil, nil
	}
	ic := session.NewInventoryController(gen2.S0)
	ic.Trace = tr
	return ic.InventoryAll(reachable, maxRounds, r.Split("rounds"))
}

// sortedEPCs returns a population's EPC keys in sorted order, so sessions
// are reproducible regardless of map iteration order.
func sortedEPCs(sensors map[string]tag.Model) []string {
	epcs := make([]string, 0, len(sensors))
	for epcStr := range sensors {
		epcs = append(epcs, epcStr)
	}
	sort.Strings(epcs)
	return epcs
}

func anyPowered(tags []*tag.Tag) bool {
	for _, tg := range tags {
		if tg.Powered() {
			return true
		}
	}
	return false
}

// SurveyGain measures the peak-power gain of this System's CIB over a
// single antenna across trials placements of sc, returning median and
// percentile statistics — the Fig. 9 measurement as a library call.
func (s *System) SurveyGain(sc scenario.Scenario, trials int) (stats.Summary, error) {
	if trials < 1 {
		return stats.Summary{}, fmt.Errorf("ivn: %d trials", trials)
	}
	n := s.Beamformer.N()
	gains := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		r := s.root.SplitIndexed("survey", i)
		p, err := sc.Realize(n, r)
		if err != nil {
			return stats.Summary{}, err
		}
		chans := link.DownlinkCoeffs(p, s.Beamformer.CenterFreq)
		s.Beamformer.Relock(r.Split("pll"))
		peak, err := link.PeakDownlink(s.Beamformer, chans)
		if err != nil {
			return stats.Summary{}, err
		}
		amp := s.Beamformer.Carriers()[0].Amplitude
		single, err := baseline.PeakReceivedPower(baseline.SingleAntenna(s.Beamformer.CenterFreq, amp), chans[:1], link.ScanDuration, 1)
		if err != nil {
			return stats.Summary{}, err
		}
		gains = append(gains, peak/single)
	}
	return stats.Summarize(gains)
}

// OptimizePlan runs the §3.6 one-time Monte-Carlo frequency optimization
// for n carriers under the default (α = 0.5, Δt = 800 µs) constraint.
func OptimizePlan(n int, seed uint64) (core.Plan, error) {
	return core.Optimize(n, core.DefaultOptimizerConfig(), rng.New(seed))
}

// PaperPlan returns the published prototype frequency plan.
func PaperPlan() []float64 { return core.PaperOffsets() }

// BestKnownPlan returns the library's precomputed near-optimal Δf plan for
// n carriers (2-10) — stronger than the paper prefix for every n, found by
// a long offline optimizer run (see internal/core/genplans).
func BestKnownPlan(n int) ([]float64, error) { return core.BestKnownPlan(n) }
