// Actuation: the paper's motivating application ("delivering drugs",
// controlling "bioactuators", §1) as a working exchange. A battery-free
// actuator sits in gastric fluid; triggering it means writing a command
// word into its user memory — which requires the complete chain: CIB
// power-up, singulation, a ReqRN handle, a Gen2 Write, and the
// backscattered confirmation decoded out-of-band. Below the harvesting
// threshold none of that can even begin, which is why the actuator is
// unreachable without the beamformer.
package main

import (
	"fmt"
	"log"

	"ivn"
	"ivn/internal/em"
	"ivn/internal/gen2"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// Actuation register map (user memory bank).
const (
	regTrigger = 0 // write a dose code here to release
	regStatus  = 1
)

func main() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// The implant: a standard-antenna actuator 7 cm deep in gastric fluid,
	// 50 cm from the antenna array.
	sc := scenario.NewTank(0.5, em.GastricFluid, 0.07)
	sc.FixedOrientation = 0

	fmt.Println("-- reading the actuator's identity (TID bank) --")
	id, err := sys.ReadWords(sc, tag.StandardTag(), gen2.BankTID, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !id.Decoded {
		log.Fatalf("actuator unreachable: %s", id.Session)
	}
	fmt.Printf("actuator TID: %04X-%04X (peak delivered %.1f dBm)\n\n",
		id.Words[0], id.Words[1], id.PeakPowerDBm)

	fmt.Println("-- triggering a dose: Write 0x0001 into the trigger register --")
	wr, err := sys.WriteWord(sc, tag.StandardTag(), regTrigger, 0x0001)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case !wr.Powered:
		fmt.Printf("actuator not powered (%.1f dBm peak) — dose NOT released\n", wr.PeakPowerDBm)
	case !wr.Written:
		fmt.Println("write unconfirmed — dose state unknown, retry required")
	default:
		fmt.Printf("dose released: write confirmed by backscatter (RN16 %#04x)\n\n", wr.RN16)
	}

	// The same trigger attempted with a single antenna: the actuator
	// never reaches its operating rail, so the command is never heard —
	// the fail-safe the threshold effect provides for free.
	fmt.Println("-- same trigger with a single antenna --")
	single, err := ivn.New(ivn.Config{Antennas: 1, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	wr1, err := single.WriteWord(sc, tag.StandardTag(), regTrigger, 0x0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powered=%t written=%t (peak %.1f dBm vs %.1f dBm sensitivity)\n\n",
		wr1.Powered, wr1.Written, wr1.PeakPowerDBm, tag.StandardTag().SensitivityDBm())

	// A deployable actuator also needs authorization, not just power: a
	// provisioned access password makes it ignore unauthenticated Writes.
	const devicePassword = 0x5EC2E7A1
	provision := func(l *gen2.TagLogic) { l.SetAccessPassword(devicePassword) }
	fmt.Println("-- password-protected actuator --")
	good, err := sys.WriteWordSecured(sc, tag.StandardTag(), provision, devicePassword, regTrigger, 0x0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authorized trigger: written=%t\n", good.Written)
	bad, err := sys.WriteWordSecured(sc, tag.StandardTag(), provision, 0x00000000, regTrigger, 0x0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unauthorized trigger: written=%t (powered=%t — reachable but refused)\n",
		bad.Written, bad.Powered)
}
