// Envelope: visualize what CIB actually does to the field at the sensor.
// Prints an ASCII rendering of one beat period — the time-varying envelope
// whose peaks are the whole point (§3.4, Fig. 5b) — with the harvesting
// windows (above the diode threshold) marked, then runs the §3.7
// two-stage controller and shows how the steady plan widens those windows.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ivn/internal/circuit"
	"ivn/internal/core"
	"ivn/internal/rng"
)

const (
	cols = 96 // terminal width of the plot
	rows = 12
)

func plot(offsets []float64, betas []float64, threshold float64, title string) {
	n := float64(len(offsets))
	env := core.EnvelopeSeries(offsets, betas, 1, cols*16, nil)
	// Column-wise maxima so narrow peaks stay visible.
	colMax := make([]float64, cols)
	for i, v := range env {
		c := i * cols / len(env)
		if v > colMax[c] {
			colMax[c] = v
		}
	}
	fmt.Printf("%s (N=%d, threshold at %.0f%% of max)\n", title, len(offsets), threshold/n*100)
	for row := rows; row >= 1; row-- {
		level := float64(row) / rows * n
		var sb strings.Builder
		for c := 0; c < cols; c++ {
			switch {
			case colMax[c] >= level && level > threshold:
				sb.WriteByte('#')
			case colMax[c] >= level:
				sb.WriteByte('*')
			case math.Abs(level-threshold) < n/(2*rows):
				sb.WriteByte('-')
			default:
				sb.WriteByte(' ')
			}
		}
		marker := "  "
		if math.Abs(level-threshold) < n/(2*rows) {
			marker = "Vth"
		}
		fmt.Printf("%4.1f |%s| %s\n", level, sb.String(), marker)
	}
	fmt.Printf("     +%s+\n", strings.Repeat("-", cols))
	fmt.Printf("      0%st=1s\n", strings.Repeat(" ", cols-5))

	// Harvesting statistics.
	above, dwell, run := 0, 0, 0
	for _, v := range env {
		if v > threshold {
			above++
			run++
			if run > dwell {
				dwell = run
			}
		} else {
			run = 0
		}
	}
	fmt.Printf("above threshold %.1f%% of the period; longest burst %.1f ms; '#' = harvestable\n\n",
		100*float64(above)/float64(len(env)), 1000*float64(dwell)/float64(len(env)))
}

func main() {
	r := rng.New(7)
	offsets := core.PaperOffsets()
	n := len(offsets)
	betas := make([]float64, n)
	for i := range betas {
		if i > 0 {
			betas[i] = r.Phase()
		}
	}

	// The tag's diode threshold sits at 45% of the attainable peak in this
	// walkthrough (a deep-tissue link with a few dB of margin).
	threshold := 0.45 * float64(n)
	fmt.Printf("single antenna: constant envelope at 1.0 — permanently below the %.1f threshold.\n", threshold)
	fmt.Printf("conduction angle of a CW drive at this level: %.3f (nothing harvested)\n\n",
		circuit.ConductionAngle(1, threshold))

	plot(offsets, betas, threshold, "discovery plan (peak-optimized, the published offsets)")

	// Two-stage transition: the response told us the margin; re-plan for
	// dwell above the now-known threshold.
	cfg := core.DefaultOptimizerConfig()
	cfg.Trials, cfg.SamplesPerTrial, cfg.Restarts, cfg.StepsPerRestart = 16, 2048, 2, 24
	ts, err := core.NewTwoStage(n, cfg, r.Split("ts"))
	if err != nil {
		log.Fatal(err)
	}
	// Pretend the discovery peak delivered 4.9x the sensor's minimum power.
	if err := ts.ObserveResponse(4.9e-4, 1e-4, r.Split("obs")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage controller: %s stage, ρ = %.2f\n\n", ts.Stage(), ts.Rho())
	steady := ts.CurrentPlan()
	plot(steady.Offsets, betas, ts.Rho()*float64(n),
		fmt.Sprintf("steady plan %v (dwell-optimized)", steady.Offsets))
}
