// Quickstart: power up and read a millimeter-sized battery-free sensor
// submerged 8 cm in water from 90 cm away — the paper's headline
// deep-tissue result (Fig. 7 / Fig. 13d) — in a dozen lines.
package main

import (
	"fmt"
	"log"

	"ivn"
	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func main() {
	// A System is a CIB beamformer (8 antennas, 915 MHz, the paper's
	// frequency plan) plus the out-of-band reader at 880 MHz.
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CIB frequency plan: %v Hz\n", sys.FrequencyPlan())

	// The Fig. 7 scenario: a tank of water 0.9 m from the antennas, the
	// miniature sensor 8 cm deep inside it (the paper's limit is ≈11 cm;
	// see the fig13d experiment for the exact frontier).
	sc := scenario.NewTank(0.9, em.Water, 0.08)
	sc.FixedOrientation = 0 // sensor fixed in its test tube

	// One full exchange: CIB power-up → Query → RN16 → ACK → EPC.
	session, err := sys.Inventory(sc, tag.MiniatureTag())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(session)

	if !session.Powered {
		fmt.Println("sensor did not power up — try more antennas or less depth")
		return
	}
	fmt.Printf("delivered peak: %.1f dBm, preamble correlation: %.3f\n",
		session.PeakPowerDBm, session.Correlation)
	fmt.Printf("sensor EPC: %x\n", session.EPC)

	// The same exchange with a single antenna fails: without CIB the
	// peak cannot clear the harvester threshold at this depth.
	single, err := ivn.New(ivn.Config{Antennas: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s1, err := single.Inventory(sc, tag.MiniatureTag())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single antenna, same scenario: %s\n", s1)
}
