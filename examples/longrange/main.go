// Long-range RFID: the paper's secondary result. CIB extends the reading
// range of off-the-shelf passive RFIDs far beyond a conventional reader —
// the paper demonstrates 38 m against a 5.2 m single-antenna baseline
// (Fig. 8, Fig. 13a). This example sweeps distance for 1, 2, 4 and 8
// antennas and prints the distance-vs-antennas frontier.
package main

import (
	"fmt"
	"log"

	"ivn"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func main() {
	distances := []float64{2, 5, 10, 15, 20, 25, 30, 35, 40, 50}
	counts := []int{1, 2, 4, 8}

	fmt.Println("reading success by distance and antenna count (standard RFID, line of sight)")
	fmt.Printf("%-10s", "range (m)")
	for _, n := range counts {
		fmt.Printf("  %d-antenna", n)
	}
	fmt.Println()

	best := map[int]float64{}
	for _, d := range distances {
		fmt.Printf("%-10.0f", d)
		for _, n := range counts {
			sys, err := ivn.New(ivn.Config{Antennas: n, Seed: uint64(17 + n)})
			if err != nil {
				log.Fatal(err)
			}
			// Two attempts per point; a reading counts if either decodes.
			ok := false
			for attempt := 0; attempt < 2 && !ok; attempt++ {
				s, err := sys.Inventory(scenario.NewAir(d), tag.StandardTag())
				if err != nil {
					log.Fatal(err)
				}
				ok = s.Decoded
			}
			mark := "-"
			if ok {
				mark = "read"
				if d > best[n] {
					best[n] = d
				}
			}
			fmt.Printf("  %-9s", mark)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, n := range counts {
		fmt.Printf("%d antenna(s): reads out to ≈%.0f m\n", n, best[n])
	}
	if best[1] > 0 {
		fmt.Printf("range gain 8 vs 1 antennas: %.1fx (paper: 7.6x, 5.2 m → 38 m)\n", best[8]/best[1])
	}
}
