// Deep-tissue monitoring: the paper's in-vivo scenario as an application.
// A battery-free sensor sits in a swine's stomach; an 8-antenna CIB array
// 30-80 cm away attempts a reading every session, through ~12 cm of
// skin/fat/muscle/stomach tissue, with breathing motion and repositioning
// between sessions (§6.2).
package main

import (
	"fmt"
	"log"

	"ivn"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func main() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	gastric := scenario.NewSwine(scenario.Gastric)
	fmt.Println("tissue stack (antenna → sensor):")
	for _, l := range gastric.Stack() {
		fmt.Printf("  %-14s %4.1f cm  (%.2f dB/cm at 915 MHz)\n",
			l.Medium.Name, l.Thickness*100, l.Medium.LossDBPerCM(915e6))
	}

	const sessions = 10
	fmt.Printf("\n-- standard tag, gastric placement, %d sessions --\n", sessions)
	decoded := 0
	for i := 0; i < sessions; i++ {
		s, err := sys.Inventory(gastric, tag.StandardTag())
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if s.Decoded {
			status = "ok"
			decoded++
		}
		fmt.Printf("session %2d: peak %6.1f dBm  %-6s %s\n", i+1, s.PeakPowerDBm, status, detail(s))
	}
	fmt.Printf("gastric standard tag: %d/%d sessions decoded (paper: 3/6)\n", decoded, sessions)

	fmt.Printf("\n-- miniature tag, gastric placement --\n")
	mini, err := sys.Inventory(gastric, tag.MiniatureTag())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miniature in stomach: %s\n", mini)
	fmt.Println("(the paper likewise could not power the miniature tag in the stomach)")

	fmt.Printf("\n-- miniature tag, subcutaneous placement --\n")
	sub := scenario.NewSwine(scenario.Subcutaneous)
	ok := 0
	for i := 0; i < sessions; i++ {
		s, err := sys.Inventory(sub, tag.MiniatureTag())
		if err != nil {
			log.Fatal(err)
		}
		if s.Decoded {
			ok++
		}
	}
	fmt.Printf("subcutaneous miniature tag: %d/%d sessions decoded (paper: all)\n", ok, sessions)
}

func detail(s *ivn.Session) string {
	switch {
	case !s.Powered:
		return "below harvester threshold"
	case !s.Decoded:
		return "powered, uplink too weak"
	default:
		return fmt.Sprintf("RN16=%#04x corr=%.2f", s.RN16, s.Correlation)
	}
}
