// Multi-sensor addressing: the §3.7 extension. Several battery-free
// implants share the same body; the beamformer addresses one at a time by
// folding a Gen2 Select (matching the target's EPC) into its synchronized
// downlink, with the flatness constraint re-checked over the longer
// Select+Query compound.
package main

import (
	"errors"
	"fmt"
	"log"

	"ivn"
	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

func main() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Three implants in the same fluid volume: two standard-size sensors
	// and one miniature.
	epcA := []byte{0xE2, 0x00, 0x00, 0x0A}
	epcB := []byte{0xE2, 0x00, 0x00, 0x0B}
	epcC := []byte{0xE2, 0x00, 0x00, 0x0C}
	sensors := map[string]tag.Model{
		string(epcA): tag.StandardTag(),
		string(epcB): tag.StandardTag(),
		string(epcC): tag.MiniatureTag(),
	}

	sc := scenario.NewTank(0.5, em.GastricFluid, 0.035)
	sc.FixedOrientation = 0

	for _, target := range [][]byte{epcA, epcB, epcC} {
		session, err := sys.InventorySelect(sc, sensors, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("select %x → %s\n", target, session)
		if session.Decoded && string(session.EPC) != string(target) {
			log.Fatalf("addressed %x but %x answered", target, session.EPC)
		}
	}

	// Addressing an absent sensor yields silence, not a false read.
	ghost := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	session, err := sys.InventorySelect(sc, sensors, ghost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select %x → %s (no such implant)\n\n", ghost, session)

	// Alternatively, discover everything at once: the adaptive
	// slotted-ALOHA inventory (Gen2 Q-algorithm) singulates the whole
	// population without knowing any EPC up front.
	epcs, err := sys.InventoryPopulation(sc, sensors, 6)
	switch {
	case errors.Is(err, ivn.ErrInventoryIncomplete):
		// The partial list accompanies the sentinel: report what was
		// read instead of throwing it away.
		fmt.Printf("inventory ran out of rounds with implants unread: %v\n", err)
	case err != nil:
		log.Fatal(err)
	}
	fmt.Printf("full population inventory found %d/%d implants:\n", len(epcs), len(sensors))
	for _, epc := range epcs {
		fmt.Printf("  %x\n", epc)
	}
}
