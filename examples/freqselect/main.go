// Frequency selection: the §3.6 optimization as a library workflow. Shows
// why the Δf plan matters (a bad plan wastes most of the CIB gain), runs
// the constrained Monte-Carlo optimizer, and validates the flatness
// constraint against an actual Gen2 query.
package main

import (
	"fmt"
	"log"

	"ivn/internal/core"
	"ivn/internal/gen2"
	"ivn/internal/rng"
)

func main() {
	const n = 6
	limit, err := core.FlatnessLimit(core.DefaultFlatnessAlpha, core.DefaultQueryDuration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraint: RMS Δf <= %.1f Hz so an 800 µs query decodes (Eq. 9)\n\n", limit)

	// How much does selection matter? Compare three plans.
	eval := func(offsets []float64) float64 {
		return core.ExpectedPeak(offsets, 64, 4096, rng.New(99))
	}
	arithmetic := core.ArithmeticOffsets(n, 2)
	paper := core.PaperOffsets()[:n]
	plan, err := core.Optimize(n, core.DefaultOptimizerConfig(), rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s E[peak]/N = %.3f  (RMS %5.1f Hz)\n", fmt.Sprintf("arithmetic %v", arithmetic), eval(arithmetic)/n, core.RMSOffset(arithmetic))
	fmt.Printf("%-28s E[peak]/N = %.3f  (RMS %5.1f Hz)\n", fmt.Sprintf("paper prefix %v", paper), eval(paper)/n, core.RMSOffset(paper))
	fmt.Printf("%-28s E[peak]/N = %.3f  (RMS %5.1f Hz)\n\n", fmt.Sprintf("optimized %v", plan.Offsets), eval(plan.Offsets)/n, plan.RMS)

	// The flatness constraint is not hypothetical: verify the optimized
	// plan keeps a real Query's envelope decodable at a worst-case phase
	// alignment.
	pie := gen2.DefaultPIE(1e6)
	q := &gen2.Query{Q: 4}
	bits := q.AppendBits(nil)
	dur := pie.FrameDuration(bits, true)
	ok, err := core.SatisfiesFlatness(plan.Offsets, core.DefaultFlatnessAlpha, dur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query duration %.0f µs → plan satisfies Eq. 9: %t\n", dur*1e6, ok)
	fmt.Printf("worst-case envelope drop over the query: %.1f%% (must stay under %.0f%%)\n",
		core.EnvelopeDropNearPeak(plan.Offsets, dur)*100, core.DefaultFlatnessAlpha*100)

	// The §3.7 two-stage extension: once the attenuation is known, switch
	// to a dwell-optimized plan that holds the envelope above threshold
	// for longer contiguous bursts.
	steady, err := core.OptimizeConductionAngle(n, 0.5, core.DefaultOptimizerConfig(), rng.New(2))
	if err != nil {
		log.Fatal(err)
	}
	level := 0.5 * float64(n)
	dDisc := core.ExpectedDwellTime(plan.Offsets, level, 64, 8192, rng.New(3))
	dSteady := core.ExpectedDwellTime(steady.Offsets, level, 64, 8192, rng.New(3))
	fmt.Printf("\ntwo-stage extension (threshold at 50%% of max peak):\n")
	fmt.Printf("  discovery plan dwell: %.2f ms per burst\n", dDisc*1e3)
	fmt.Printf("  steady plan %v dwell: %.2f ms per burst\n", steady.Offsets, dSteady*1e3)
}
