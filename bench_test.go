package ivn

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// (workload generation, channel realization, beamforming, baselines,
// decoding, statistics) and — once per run — prints the resulting rows so
// `go test -bench . -benchmem` doubles as the reproduction driver.
//
// Mapping (see DESIGN.md for the full experiment index):
//
//	BenchmarkFig2DiodeIV             → paper Fig. 2
//	BenchmarkFig3TissueLoss          → paper Fig. 3
//	BenchmarkFig4ConductionAngle     → paper Fig. 4
//	BenchmarkFig6FreqSelectionCDF    → paper Fig. 6
//	BenchmarkFreqOpt                 → §3.6 one-time optimization
//	BenchmarkFig9GainVsAntennas      → paper Fig. 9
//	BenchmarkFig10GainVsDepth        → paper Fig. 10(a)
//	BenchmarkFig10GainVsOrientation  → paper Fig. 10(b)
//	BenchmarkFig11GainAcrossMedia    → paper Fig. 11
//	BenchmarkFig12CIBvsBaselineCDF   → paper Fig. 12
//	BenchmarkFig13RangeStandardAir   → paper Fig. 13(a)
//	BenchmarkFig13RangeMiniAir       → paper Fig. 13(b)
//	BenchmarkFig13DepthStandardWater → paper Fig. 13(c)
//	BenchmarkFig13DepthMiniWater     → paper Fig. 13(d)
//	BenchmarkFig15Waveforms          → paper Fig. 15(a)/(b)
//	BenchmarkInVivoTable             → §6.2 in-vivo results
//	BenchmarkAblation*               → design-choice ablations
import (
	"bytes"
	"sync"
	"testing"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
)

var benchPrintOnce sync.Map

// runExperimentBench executes experiment id once per b.N iteration with a
// CI-scale configuration, and prints the resulting table a single time.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := ivnsim.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ivnsim.Config{Seed: 1, Quick: true}
	var res *engine.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, printed := benchPrintOnce.LoadOrStore(id, true); !printed && res != nil {
		var buf bytes.Buffer
		if err := engine.RenderText(res, &buf); err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", buf.String())
	}
}

func BenchmarkFig2DiodeIV(b *testing.B)             { runExperimentBench(b, "fig2") }
func BenchmarkFig3TissueLoss(b *testing.B)          { runExperimentBench(b, "fig3") }
func BenchmarkFig4ConductionAngle(b *testing.B)     { runExperimentBench(b, "fig4") }
func BenchmarkFig6FreqSelectionCDF(b *testing.B)    { runExperimentBench(b, "fig6") }
func BenchmarkFreqOpt(b *testing.B)                 { runExperimentBench(b, "freqopt") }
func BenchmarkFig9GainVsAntennas(b *testing.B)      { runExperimentBench(b, "fig9") }
func BenchmarkFig10GainVsDepth(b *testing.B)        { runExperimentBench(b, "fig10a") }
func BenchmarkFig10GainVsOrientation(b *testing.B)  { runExperimentBench(b, "fig10b") }
func BenchmarkFig11GainAcrossMedia(b *testing.B)    { runExperimentBench(b, "fig11") }
func BenchmarkFig12CIBvsBaselineCDF(b *testing.B)   { runExperimentBench(b, "fig12") }
func BenchmarkFig13RangeStandardAir(b *testing.B)   { runExperimentBench(b, "fig13a") }
func BenchmarkFig13RangeMiniAir(b *testing.B)       { runExperimentBench(b, "fig13b") }
func BenchmarkFig13DepthStandardWater(b *testing.B) { runExperimentBench(b, "fig13c") }
func BenchmarkFig13DepthMiniWater(b *testing.B)     { runExperimentBench(b, "fig13d") }
func BenchmarkInVivoTable(b *testing.B)             { runExperimentBench(b, "invivo") }

func BenchmarkFig15Waveforms(b *testing.B) {
	for _, id := range []string{"fig15a", "fig15b"} {
		id := id
		b.Run(id, func(b *testing.B) { runExperimentBench(b, id) })
	}
}

func BenchmarkAblationCoherentVsBlind(b *testing.B) { runExperimentBench(b, "ablation-coherent") }
func BenchmarkAblationEqualPower(b *testing.B)      { runExperimentBench(b, "ablation-equalpower") }
func BenchmarkAblationTwoStage(b *testing.B)        { runExperimentBench(b, "ablation-twostage") }
func BenchmarkAblationFlatness(b *testing.B)        { runExperimentBench(b, "ablation-flatness") }
func BenchmarkAblationAveraging(b *testing.B)       { runExperimentBench(b, "ablation-averaging") }
func BenchmarkAblationOutOfBand(b *testing.B)       { runExperimentBench(b, "ablation-outofband") }
func BenchmarkAblationSafety(b *testing.B)          { runExperimentBench(b, "ablation-safety") }
func BenchmarkAblationFreqError(b *testing.B)       { runExperimentBench(b, "ablation-freqerror") }
func BenchmarkAblationHopping(b *testing.B)         { runExperimentBench(b, "ablation-hopping") }
func BenchmarkAblationMultipath(b *testing.B)       { runExperimentBench(b, "ablation-multipath") }
func BenchmarkAblationPhaseNoise(b *testing.B)      { runExperimentBench(b, "ablation-phasenoise") }
func BenchmarkAblationMiller(b *testing.B)          { runExperimentBench(b, "ablation-miller") }

// BenchmarkInventoryExchange measures the cost of one full library-level
// power-up + inventory exchange — the System hot path.
func BenchmarkInventoryExchange(b *testing.B) {
	sys, err := New(Config{Antennas: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScenario()
	model := benchTag()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Inventory(sc, model); err != nil {
			b.Fatal(err)
		}
	}
}
