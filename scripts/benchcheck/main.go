// Command benchcheck validates a BENCH_*.json file written by
// scripts/bench.sh: the document must parse, carry a non-empty date and
// label (an empty label once shipped in a committed snapshot and made it
// undiffable from its neighbors), and list at least one benchmark with a
// name, a positive iteration count, and a positive ns/op figure.
// Duplicate benchmark names are rejected — the awk best-of-N fold is
// supposed to collapse repetitions.
//
// Usage: go run ./scripts/benchcheck BENCH_2026-08-09_label.json...
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type benchFile struct {
	Date       string  `json:"date"`
	Label      string  `json:"label"`
	BestOf     int     `json:"best_of"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if f.Date == "" {
		return fmt.Errorf("%s: empty date", path)
	}
	if f.Label == "" {
		return fmt.Errorf("%s: empty label (bench.sh defaults to the git short SHA; pass one explicitly)", path)
	}
	if f.BestOf < 1 {
		return fmt.Errorf("%s: best_of %d, want >= 1", path, f.BestOf)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	seen := map[string]bool{}
	for i, b := range f.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("%s: benchmark %d has no name", path, i)
		case seen[b.Name]:
			return fmt.Errorf("%s: duplicate benchmark %q", path, b.Name)
		case b.Iters < 1:
			return fmt.Errorf("%s: %s: iters %d, want >= 1", path, b.Name, b.Iters)
		case !(b.NsPerOp > 0):
			return fmt.Errorf("%s: %s: ns_per_op %g, want > 0", path, b.Name, b.NsPerOp)
		case b.BytesPerOp < 0 || b.AllocsPerOp < 0:
			return fmt.Errorf("%s: %s: negative memory figures", path, b.Name)
		}
		seen[b.Name] = true
	}
	fmt.Printf("benchcheck: %s OK (%d benchmarks, label %q)\n", path, len(f.Benchmarks), f.Label)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_*.json...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	}
}
