// Command daemonsmoke drives a running ivnsimd through its whole API
// surface and fails loudly on any deviation from the contract:
//
//  1. POST a quick run, poll it to completion, and byte-compare the
//     served result against a reference file produced by `ivnsim -json`
//     for the same spec — the daemon must never change what a run means.
//  2. POST the identical spec again: the response must be a cache hit
//     (state done at submit, cached flag set) and /metrics must show the
//     hit with no new trials executed.
//  3. POST a long population sweep, cancel it with DELETE mid-run, and
//     require the terminal cancelled state within the 2-second latency
//     budget.
//
// Usage: daemonsmoke -addr http://127.0.0.1:PORT -cli fig9.json
//
// The caller (scripts/verify.sh) owns the daemon process: starting it on
// an ephemeral port, producing the reference file, and checking the
// SIGTERM drain after this program exits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// smokeSpec is the quick run both the daemon and the CLI execute; it
// must match the spec verify.sh renders into the -cli reference file.
const smokeSpec = `{"experiment":"fig9","seed":2,"quick":true}`

// cancelSpec is a sweep long enough that DELETE provably interrupts it:
// 40 trials per population point takes tens of seconds uninterrupted.
const cancelSpec = `{"experiment":"population","seed":2,"quick":true,"trials":40}`

// status mirrors the service's job status document.
type status struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

func main() {
	addr := flag.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8347")
	cliFile := flag.String("cli", "", "reference file: `ivnsim -run fig9 -seed 2 -quick -json` output")
	flag.Parse()
	if *addr == "" || *cliFile == "" {
		fmt.Fprintln(os.Stderr, "daemonsmoke: -addr and -cli are required")
		os.Exit(2)
	}
	if err := smoke(*addr, *cliFile); err != nil {
		fmt.Fprintf(os.Stderr, "daemonsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("daemonsmoke: OK")
}

func smoke(base, cliFile string) error {
	want, err := os.ReadFile(cliFile)
	if err != nil {
		return err
	}

	// 1. Submit, poll to done, byte-compare.
	first, err := post(base, smokeSpec, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if err := pollState(base, first.ID, "done", 600); err != nil {
		return err
	}
	got, err := get(base + "/v1/runs/" + first.ID + "/result")
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("daemon result for %s differs from the CLI reference (%d vs %d bytes)", first.ID, len(got), len(want))
	}

	// 2. The identical spec must be served from the cache.
	second, err := post(base, smokeSpec, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if second.State != "done" || !second.Cached {
		return fmt.Errorf("second submission not a cache hit: state %s cached %v", second.State, second.Cached)
	}
	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, line := range []string{"cache_hits 1\n", "cache_misses 1\n"} {
		if !strings.Contains(string(metrics), line) {
			return fmt.Errorf("metrics missing %q:\n%s", strings.TrimSpace(line), metrics)
		}
	}

	// 3. Cancel a long sweep mid-run; terminal within the 2s budget.
	long, err := post(base, cancelSpec, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("long submit: %w", err)
	}
	if err := pollState(base, long.ID, "running", 300); err != nil {
		return err
	}
	time.Sleep(200 * time.Millisecond) // let it get into the sweep proper
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/runs/"+long.ID, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("DELETE returned %d", resp.StatusCode)
	}
	// 2-second latency budget: 20 polls at 100ms.
	if err := pollState(base, long.ID, "cancelled", 20); err != nil {
		return fmt.Errorf("cancel latency: %w", err)
	}
	return nil
}

// post submits a spec document and decodes the status reply.
func post(base, spec string, wantCode int) (status, error) {
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		return status{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return status{}, err
	}
	if resp.StatusCode != wantCode {
		return status{}, fmt.Errorf("POST /v1/runs: %d %s", resp.StatusCode, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		return status{}, fmt.Errorf("status document: %w", err)
	}
	return st, nil
}

// pollState polls the run until it reports state, at 100ms per attempt.
func pollState(base, id, state string, attempts int) error {
	last := ""
	for i := 0; i < attempts; i++ {
		body, err := get(base + "/v1/runs/" + id)
		if err != nil {
			return err
		}
		var st status
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("status document: %w", err)
		}
		last = st.State
		if st.State == state {
			return nil
		}
		// A terminal state other than the wanted one never resolves.
		if st.State == "failed" || st.State == "cancelled" || st.State == "done" {
			return fmt.Errorf("run %s reached %s (%s), want %s", id, st.State, st.Error, state)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("run %s still %s after %d polls, want %s", id, last, attempts, state)
}

// get fetches a URL expecting 200.
func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body, nil
}
