// Command tracesmoke validates the JSON-lines event stream written by
// `ivnsim -trace`. It reads the stream from stdin and fails loudly unless
// every line is a well-formed event — a non-empty span key, a known event
// kind, a non-negative sim-clock timestamp — and, per span, timestamps are
// monotone non-decreasing (the sim clock only moves forward within an
// exchange). An empty stream fails: the smoke exists to prove the traced
// experiment actually emits events.
//
// Usage: ivnsim -run fig12 -quick -trace /dev/stdout >trace.jsonl
//
//	go run ./scripts/tracesmoke < trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ivn/internal/session"
)

func main() {
	if err := run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "tracesmoke:", err)
		os.Exit(1)
	}
}

// line mirrors the wire form of session.TraceLog.WriteJSONL.
type line struct {
	Span string `json:"span"`
	session.Event
}

func run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	events := 0
	last := map[string]float64{} // span -> previous timestamp
	for n := 1; sc.Scan(); n++ {
		var ev line
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
		if ev.Span == "" {
			return fmt.Errorf("line %d: empty span key", n)
		}
		// Kind round-trips through its string name; a bogus kind fails
		// Unmarshal above, so here we only check the clock.
		if ev.T < 0 {
			return fmt.Errorf("line %d (%s): negative timestamp %v", n, ev.Span, ev.T)
		}
		if prev, ok := last[ev.Span]; ok && ev.T < prev {
			return fmt.Errorf("line %d (%s): clock moved backwards %v -> %v", n, ev.Span, prev, ev.T)
		}
		last[ev.Span] = ev.T
		events++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 {
		return fmt.Errorf("no events on stdin")
	}
	fmt.Printf("tracesmoke: %d event(s) across %d span(s) OK\n", events, len(last))
	return nil
}
