// Command jsonsmoke validates the machine-readable output of
// `ivnsim -json`. It reads one or more JSON documents from stdin (the
// `-run all -json` stream is a sequence of engine.Result objects, one per
// experiment) and fails loudly unless every document is a structurally
// complete result: an ID, a title, at least one column, rows whose arity
// matches the header, and at least one numeric cell carrying a value —
// the whole point of the typed pipeline over formatted strings.
//
// Usage: ivnsim -run all -quick -json | go run ./scripts/jsonsmoke
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ivn/internal/engine"
)

func main() {
	if err := run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "jsonsmoke:", err)
		os.Exit(1)
	}
}

func run(in io.Reader) error {
	dec := json.NewDecoder(in)
	seen := 0
	for {
		var res engine.Result
		if err := dec.Decode(&res); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("document %d: %w", seen+1, err)
		}
		if err := check(&res); err != nil {
			return fmt.Errorf("document %d (%s): %w", seen+1, res.ID, err)
		}
		seen++
	}
	if seen == 0 {
		return fmt.Errorf("no JSON documents on stdin")
	}
	fmt.Printf("jsonsmoke: %d result(s) OK\n", seen)
	return nil
}

func check(res *engine.Result) error {
	if res.ID == "" || res.Title == "" {
		return fmt.Errorf("missing id or title")
	}
	if len(res.Columns) == 0 {
		return fmt.Errorf("no columns")
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("no rows")
	}
	numeric := 0
	for i, row := range res.Rows {
		if len(row) != len(res.Columns) {
			return fmt.Errorf("row %d has %d cells, header has %d", i, len(row), len(res.Columns))
		}
		for j, c := range row {
			switch c.Kind {
			case engine.KindNumber, engine.KindTuple, engine.KindList:
				if c.Kind != engine.KindList && len(c.Values) == 0 {
					return fmt.Errorf("row %d cell %d: %s cell without values", i, j, c.Kind)
				}
				numeric += len(c.Values)
			case engine.KindString, engine.KindBool:
				// Formatted-only kinds: nothing numeric to demand.
			default:
				return fmt.Errorf("row %d cell %d: unknown kind %q", i, j, c.Kind)
			}
		}
	}
	if numeric == 0 {
		return fmt.Errorf("no numeric cell values anywhere in the table")
	}
	return nil
}
