#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus the concurrency checks.
#
# 1. go build ./...        — everything compiles
# 2. go vet ./...          — static sanity
# 3. go test ./...         — unit + golden + determinism tests
# 4. go test -race <pkgs>  — the packages with parallel trial loops and
#                            shared scratch pools, under the race detector
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel trial paths) =="
go test -race . ./internal/ivnsim/ ./internal/pool/ ./internal/phasor/ ./internal/dsp/

echo "verify: OK"
