#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus the concurrency checks.
#
# 1. go build ./...          — everything compiles
# 2. go vet ./...            — stdlib static sanity, hardened flag set
# 3. ivnlint ./...           — domain lint suite: determinism, pool
#                              discipline, float comparisons, goroutine
#                              hygiene, discarded errors, physical-unit
#                              consistency, static hot-path alloc-freedom;
#                              set IVNLINT_REPORT=<path> to also write the
#                              machine-readable JSON report (CI uploads it
#                              as a build artifact)
# 4. go test ./...           — unit + golden + determinism + lint fixtures
# 5. go test -race <pkgs>    — the packages with parallel trial loops and
#                              shared scratch pools, under the race detector
# 6. faultmatrix smoke       — the fault-injection experiment end to end:
#                              injector, recovery stack, paired ablation
# 6b. population smoke       — the N=1000 event-channel inventory end to
#                              end: adaptive-Q convergence through
#                              session.EventChannel in seconds, proving
#                              the fidelity switch stays CI-fast
# 7. json smoke              — `ivnsim -run all -json` piped through the
#                              jsonsmoke parser: every experiment must emit
#                              a structurally complete typed result with
#                              numeric cell payloads
# 8. trace smoke             — `ivnsim -run fig12 -trace` at two worker
#                              counts: the JSONL event streams must be
#                              byte-identical and pass the tracesmoke
#                              validator (well-formed events, monotone
#                              per-span sim clock)
# 9. renderer equivalence    — the Fig9/Fig13 tables (the batched
#                              scratch-path experiments) plus the
#                              population/adaptiveq tables (the
#                              event-channel trial loops) rendered at
#                              -parallel 1 and -parallel 4 must be
#                              byte-identical: per-worker kit state must
#                              never leak into results
# 9b. shard smoke            — the distributed-sweep seam end to end with
#                              the real binary: shard 0/2 + 1/2 into
#                              journals, -merge, byte-diff all three
#                              renderings against the single-process run;
#                              then SIGKILL a sharded run mid-flight and
#                              -resume it, asserting journaled trials
#                              replay instead of re-executing
# 10. daemon smoke           — ivnsimd end to end on an ephemeral port:
#                              POST a quick run, poll to completion, the
#                              served result must be byte-identical to
#                              `ivnsim -json`, a second identical POST
#                              must be a cache hit, DELETE must cancel,
#                              and SIGTERM must drain cleanly
#
# Stages run fail-fast: the first failing stage stops the script with a
# FAIL banner naming the stage, so CI logs point at the culprit directly.
set -uo pipefail
cd "$(dirname "$0")/.."

stage() {
  local name="$1"
  shift
  echo "== ${name} =="
  if ! "$@"; then
    echo "-- FAIL: ${name} --" >&2
    exit 1
  fi
}

stage "go build" go build ./...

# -unusedresult's default function list misses the fmt.Sprint family when
# the result feeds nothing; keep the default checks and add the stricter
# composite/copylock coverage explicitly so a future vet default change
# cannot silently drop them.
stage "go vet" go vet -copylocks -composites -unusedresult ./...

ivnlint_stage() {
  # With IVNLINT_REPORT set, emit the JSON report object (findings,
  # analyzer list, cache hit/miss counts) for artifact upload; the exit
  # status still gates the stage. Text mode otherwise.
  if [ -n "${IVNLINT_REPORT:-}" ]; then
    go run ./cmd/ivnlint -json ./... > "${IVNLINT_REPORT}"
  else
    go run ./cmd/ivnlint ./...
  fi
}
stage "ivnlint" ivnlint_stage

stage "go test" go test ./...

stage "go test -race (parallel trial paths)" \
  go test -race . ./internal/engine/ ./internal/ivnsim/ ./internal/pool/ ./internal/phasor/ \
  ./internal/dsp/ ./internal/fault/ ./internal/gen2/ ./internal/session/ ./internal/link/ \
  ./internal/service/

stage "faultmatrix smoke" \
  go run ./cmd/ivnsim -run faultmatrix -quick -seed 2

stage "population smoke (N=1000 event channel)" \
  go run ./cmd/ivnsim -run adaptiveq -quick -seed 2

json_smoke() {
  go run ./cmd/ivnsim -run all -quick -seed 2 -json | go run ./scripts/jsonsmoke
}
stage "json smoke" json_smoke

# A RETURN trap would linger after the function returns and fire on every
# later function return (where the local $dir no longer exists under
# set -u), so the smoke stages clean their temp dirs up explicitly.
trace_smoke() {
  local dir rc=1
  dir="$(mktemp -d)" || return 1
  go run ./cmd/ivnsim -run fig12 -quick -seed 2 -parallel 1 -trace "$dir/trace-p1.jsonl" >/dev/null &&
    go run ./cmd/ivnsim -run fig12 -quick -seed 2 -parallel 4 -trace "$dir/trace-p4.jsonl" >/dev/null &&
    { cmp "$dir/trace-p1.jsonl" "$dir/trace-p4.jsonl" || { echo "trace files differ across -parallel" >&2; false; }; } &&
    go run ./scripts/tracesmoke < "$dir/trace-p1.jsonl" && rc=0
  rm -rf "$dir"
  return "$rc"
}
stage "trace smoke" trace_smoke

renderer_equiv() {
  local dir id rc=0
  dir="$(mktemp -d)" || return 1
  for id in fig9 fig13c population adaptiveq; do
    # -json keeps stdout free of the wall-clock footer the text renderer adds.
    go run ./cmd/ivnsim -run "$id" -quick -seed 2 -parallel 1 -json > "$dir/$id-p1.json" 2>/dev/null || { rc=1; break; }
    go run ./cmd/ivnsim -run "$id" -quick -seed 2 -parallel 4 -json > "$dir/$id-p4.json" 2>/dev/null || { rc=1; break; }
    cmp "$dir/$id-p1.json" "$dir/$id-p4.json" || { echo "$id tables differ across -parallel" >&2; rc=1; break; }
  done
  rm -rf "$dir"
  return "$rc"
}
stage "renderer equivalence" renderer_equiv

shard_smoke() {
  local dir rc=1
  dir="$(mktemp -d)" || return 1
  # A built binary (not `go run`) so shardsmoke's SIGKILL lands on
  # ivnsim itself.
  if go build -o "$dir/ivnsim" ./cmd/ivnsim && go run ./scripts/shardsmoke -bin "$dir/ivnsim"; then
    rc=0
  fi
  rm -rf "$dir"
  return "$rc"
}
stage "shard smoke" shard_smoke

daemon_smoke() {
  local dir rc=1 addr pid i
  dir="$(mktemp -d)" || return 1
  if ! go build -o "$dir/ivnsimd" ./cmd/ivnsimd; then rm -rf "$dir"; return 1; fi
  # The reference bytes the daemon must serve verbatim (same spec as
  # daemonsmoke's smokeSpec).
  if ! go run ./cmd/ivnsim -run fig9 -seed 2 -quick -json > "$dir/fig9.json" 2>/dev/null; then
    rm -rf "$dir"; return 1
  fi
  "$dir/ivnsimd" -addr 127.0.0.1:0 > "$dir/out.log" 2> "$dir/err.log" &
  pid=$!
  addr=""
  for i in $(seq 1 100); do
    addr="$(awk '/listening on/{print $NF}' "$dir/out.log" 2>/dev/null)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "ivnsimd never reported a listen address" >&2
    cat "$dir/err.log" >&2
    kill "$pid" 2>/dev/null
    rm -rf "$dir"
    return 1
  fi
  if go run ./scripts/daemonsmoke -addr "http://$addr" -cli "$dir/fig9.json"; then
    # Clean SIGTERM drain is part of the contract: the process must exit
    # 0 by itself within the drain window.
    kill -TERM "$pid" && wait "$pid" && rc=0
    [ "$rc" -eq 0 ] || { echo "ivnsimd did not drain cleanly on SIGTERM" >&2; cat "$dir/err.log" >&2; }
  else
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  fi
  rm -rf "$dir"
  return "$rc"
}
stage "daemon smoke" daemon_smoke

echo "verify: OK"
