#!/usr/bin/env bash
# bench.sh — record the perf trajectory of the tier-1 benchmarks.
#
# Runs the experiment-level benchmarks (root package) plus the hot-path
# microbenchmarks (core envelope kernel, baseline peak scan, DSP kernels)
# and writes BENCH_<date>_<label>.json with ns/op, B/op and allocs/op
# per benchmark, so successive runs can be diffed to prove a hot-path
# change helped.
#
# Each benchmark runs BENCHCOUNT times and the JSON records the
# best-of-N figure (minimum ns/op, with that run's B/op and allocs/op):
# the minimum is the least-noise estimate of the code's actual cost on a
# shared machine, where one-off scheduler hiccups only ever push timings
# up, never down.
#
# Usage:
#   scripts/bench.sh [label]
#   BENCHTIME_EXP=4x BENCHTIME_MICRO=2s BENCHCOUNT=5 scripts/bench.sh optimized
set -euo pipefail
cd "$(dirname "$0")/.."

# A label is required in the JSON (an unlabeled snapshot once shipped as
# `"label": ""` and was undiffable from its neighbors); default to the
# git short SHA so ad-hoc runs stay attributable.
LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo adhoc)}"
DATE="$(date +%F)"
OUT="BENCH_${DATE}_${LABEL}.json"

# Experiment benchmarks run a fixed iteration count: each iteration is a
# full deterministic experiment (hundreds of ms), so wall-clock noise is
# small and a fixed count keeps the run time bounded. -count repeats give
# the best-of-N selection below something to select from.
EXP_TIME="${BENCHTIME_EXP:-4x}"
MICRO_TIME="${BENCHTIME_MICRO:-1s}"
COUNT="${BENCHCOUNT:-3}"

EXP_BENCH='BenchmarkInventoryExchange$|BenchmarkFig6FreqSelectionCDF$|BenchmarkFig9GainVsAntennas$|BenchmarkFig12CIBvsBaselineCDF$|BenchmarkFig13RangeStandardAir$|BenchmarkFig13DepthStandardWater$'
MICRO_CORE='BenchmarkEnvelopeSeries10Carriers$|BenchmarkExpectedPeak$'
MICRO_BASE='BenchmarkPeakReceivedPower'
MICRO_DSP='BenchmarkMaxCorrelation4096x96$|BenchmarkGoertzelBank8Bins4096$'

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$EXP_BENCH" -benchmem -benchtime "$EXP_TIME" -count "$COUNT" . | tee -a "$TMP"
go test -run '^$' -bench "$MICRO_CORE" -benchmem -benchtime "$MICRO_TIME" -count "$COUNT" ./internal/core | tee -a "$TMP"
go test -run '^$' -bench "$MICRO_BASE" -benchmem -benchtime "$MICRO_TIME" -count "$COUNT" ./internal/baseline | tee -a "$TMP"
go test -run '^$' -bench "$MICRO_DSP" -benchmem -benchtime "$MICRO_TIME" -count "$COUNT" ./internal/dsp | tee -a "$TMP"

awk -v date="$DATE" -v label="$LABEL" -v count="$COUNT" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    # Best-of-N: keep the repetition with the lowest ns/op per name.
    if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) {
        best_ns[name] = ns
        best_iters[name] = iters
        best_bytes[name] = bytes
        best_allocs[name] = allocs
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"label\": \"%s\",\n  \"best_of\": %d,\n  \"benchmarks\": [\n", date, label, count
    for (k = 1; k <= n; k++) {
        name = order[k]
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, best_iters[name], best_ns[name]
        if (best_bytes[name] != "")  printf ", \"bytes_per_op\": %s", best_bytes[name]
        if (best_allocs[name] != "") printf ", \"allocs_per_op\": %s", best_allocs[name]
        printf "%s", (k < n ? "},\n" : "}\n")
    }
    printf "  ]\n}\n"
}
' "$TMP" > "$OUT"

# Validate what was just written: parseable JSON, non-empty label, sane
# per-benchmark figures. A malformed snapshot is worse than none.
go run ./scripts/benchcheck "$OUT"

echo "wrote $OUT"
