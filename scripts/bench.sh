#!/usr/bin/env bash
# bench.sh — record the perf trajectory of the tier-1 benchmarks.
#
# Runs the experiment-level benchmarks (root package) plus the hot-path
# microbenchmarks (core envelope kernel, baseline peak scan) and writes
# BENCH_<date>[_<label>].json with ns/op, B/op and allocs/op per benchmark,
# so successive runs can be diffed to prove a hot-path change helped.
#
# Usage:
#   scripts/bench.sh [label]
#   BENCHTIME_EXP=4x BENCHTIME_MICRO=2s scripts/bench.sh optimized
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-}"
DATE="$(date +%F)"
OUT="BENCH_${DATE}${LABEL:+_${LABEL}}.json"

# Experiment benchmarks run a fixed iteration count: each iteration is a
# full deterministic experiment (hundreds of ms), so wall-clock noise is
# small and a fixed count keeps the run time bounded.
EXP_TIME="${BENCHTIME_EXP:-2x}"
MICRO_TIME="${BENCHTIME_MICRO:-1s}"

EXP_BENCH='BenchmarkInventoryExchange$|BenchmarkFig6FreqSelectionCDF$|BenchmarkFig9GainVsAntennas$|BenchmarkFig12CIBvsBaselineCDF$|BenchmarkFig13RangeStandardAir$|BenchmarkFig13DepthStandardWater$'
MICRO_CORE='BenchmarkEnvelopeSeries10Carriers$|BenchmarkExpectedPeak$'
MICRO_BASE='BenchmarkPeakReceivedPower'

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$EXP_BENCH" -benchmem -benchtime "$EXP_TIME" . | tee -a "$TMP"
go test -run '^$' -bench "$MICRO_CORE" -benchmem -benchtime "$MICRO_TIME" ./internal/core | tee -a "$TMP"
go test -run '^$' -bench "$MICRO_BASE" -benchmem -benchtime "$MICRO_TIME" ./internal/baseline | tee -a "$TMP"

awk -v date="$DATE" -v label="$LABEL" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"label\": \"%s\",\n  \"benchmarks\": [\n", date, label
    first = 1
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
