// Command shardsmoke exercises the sharded-execution seam end to end
// with the real ivnsim binary:
//
//  1. fragments: run shard 0/2 and 1/2 of one spec into a journal
//     directory, merge with -merge, and byte-diff the merged text, CSV
//     and JSON renderings against a single-process run of the same spec;
//  2. kill and resume: start a longer sharded fragment, SIGKILL it once
//     its journal holds entries (a real mid-append kill, torn tail and
//     all), resume it — asserting via the fragment summary that the
//     journaled trials replayed instead of re-executing — and merge the
//     result byte-identically again.
//
// Usage: shardsmoke -bin path/to/ivnsim
//
// The binary path is required (not `go run`) so the SIGKILL lands on
// ivnsim itself rather than on the go tool wrapping it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to a built ivnsim binary")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "shardsmoke: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "shardsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("shardsmoke: OK")
}

func run(bin string) error {
	dir, err := os.MkdirTemp("", "shardsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := mergeMatchesSingleProcess(bin, filepath.Join(dir, "merge")); err != nil {
		return fmt.Errorf("shard+merge: %w", err)
	}
	if err := killAndResume(bin, filepath.Join(dir, "kill")); err != nil {
		return fmt.Errorf("kill+resume: %w", err)
	}
	return nil
}

// ivnsim runs the binary with args, returning stdout and stderr.
func ivnsim(bin string, args ...string) (stdout, stderr []byte, err error) {
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	if err != nil {
		err = fmt.Errorf("%s %v: %v\n%s", bin, args, err, errb.Bytes())
	}
	return out.Bytes(), errb.Bytes(), err
}

// mergeMatchesSingleProcess runs both fragments of a 2-shard split and
// checks every rendering of the merge against the unsharded run.
func mergeMatchesSingleProcess(bin, dir string) error {
	spec := []string{"-run", "fig9", "-quick", "-seed", "2"}
	refDir := filepath.Join(dir, "ref")
	refJSON, _, err := ivnsim(bin, append(spec, "-json", "-out", refDir)...)
	if err != nil {
		return err
	}

	frags := filepath.Join(dir, "frags")
	if err := os.MkdirAll(frags, 0o755); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		_, _, err := ivnsim(bin, append(spec,
			"-shard", fmt.Sprintf("%d/2", i),
			"-journal", filepath.Join(frags, fmt.Sprintf("f%d.jsonl", i)))...)
		if err != nil {
			return err
		}
	}

	mergedDir := filepath.Join(dir, "merged")
	mergedJSON, _, err := ivnsim(bin, "-merge", frags, "-json", "-out", mergedDir)
	if err != nil {
		return err
	}
	if !bytes.Equal(mergedJSON, refJSON) {
		return fmt.Errorf("merged -json stdout differs from the single-process run")
	}
	for _, ext := range []string{"txt", "csv", "json"} {
		want, err := os.ReadFile(filepath.Join(refDir, "fig9."+ext))
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(mergedDir, "fig9."+ext))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("merged fig9.%s differs from the single-process artifact", ext)
		}
	}
	return nil
}

// fragSummary parses the fragment stderr summary
// "(exp shard i/n: recorded R, replayed P, journal ..., in ...)".
var fragSummary = regexp.MustCompile(`recorded (\d+), replayed (\d+)`)

// killAndResume SIGKILLs a sharded run mid-flight, resumes it, and
// merges to the single-process bytes.
func killAndResume(bin, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// population -trials 24 runs long enough (seconds) that the kill
	// lands mid-sweep, while single trials stay sub-second so the
	// journal fills quickly.
	spec := []string{"-run", "population", "-quick", "-seed", "2", "-trials", "24"}
	frags := filepath.Join(dir, "frags")
	if err := os.MkdirAll(frags, 0o755); err != nil {
		return err
	}
	j0 := filepath.Join(frags, "f0.jsonl")

	cmd := exec.Command(bin, append(spec, "-shard", "0/2", "-journal", j0)...)
	cmd.Stdout, cmd.Stderr = nil, nil
	if err := cmd.Start(); err != nil {
		return err
	}
	// Kill as soon as the journal holds committed entries (size past the
	// header line). If the fragment finishes first the kill is a no-op
	// and the resume simply replays everything — still a valid check,
	// just a weaker one.
	//ivn:allow determinism wall-clock only bounds the kill-poll loop, never a result
	deadline := time.Now().Add(2 * time.Minute)
	//ivn:allow determinism wall-clock only bounds the kill-poll loop, never a result
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(j0); err == nil && fi.Size() > 512 {
			break
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Signal(syscall.SIGKILL)
	_ = cmd.Wait() // reap; the kill (or a clean exit) both land here

	// Resume fragment 0/2: journaled trials must replay, not re-execute.
	_, stderr, err := ivnsim(bin, append(spec, "-shard", "0/2", "-journal", j0, "-resume")...)
	if err != nil {
		return err
	}
	m := fragSummary.FindSubmatch(stderr)
	if m == nil {
		return fmt.Errorf("no fragment summary on resume stderr: %s", stderr)
	}
	replayed, _ := strconv.Atoi(string(m[2]))
	if replayed == 0 {
		return fmt.Errorf("resume replayed 0 trials — the pre-kill journal was ignored: %s", stderr)
	}

	if _, _, err := ivnsim(bin, append(spec, "-shard", "1/2", "-journal", filepath.Join(frags, "f1.jsonl"))...); err != nil {
		return err
	}
	refJSON, _, err := ivnsim(bin, append(spec, "-json")...)
	if err != nil {
		return err
	}
	mergedJSON, _, err := ivnsim(bin, "-merge", frags, "-json")
	if err != nil {
		return err
	}
	if !bytes.Equal(mergedJSON, refJSON) {
		return fmt.Errorf("post-resume merge differs from the single-process run")
	}
	return nil
}
