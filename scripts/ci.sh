#!/usr/bin/env bash
# ci.sh — entry point for continuous integration.
#
# Thin wrapper so CI configuration stays out of the pipeline definition:
# the workflow invokes this one script, and the staged gate itself lives
# in verify.sh where it is also runnable locally. Prints the toolchain
# first so CI logs are self-describing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== toolchain =="
go version
go env GOOS GOARCH GOFLAGS

exec ./scripts/verify.sh
