package ivn

import (
	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// benchScenario is the shared hot-path scenario for library benchmarks.
func benchScenario() scenario.Scenario {
	return scenario.NewTank(0.5, em.Water, 0.10)
}

// benchTag is the shared tag model for library benchmarks.
func benchTag() tag.Model { return tag.StandardTag() }
