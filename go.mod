module ivn

go 1.22
