package ivn_test

import (
	"fmt"
	"log"

	"ivn"
	"ivn/internal/em"
	"ivn/internal/scenario"
	"ivn/internal/tag"
)

// The three-line flow: build a system, place a sensor, run an exchange.
func ExampleNew() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.FrequencyPlan())
	// Output:
	// [0 7 20 49 68 73 90 113]
}

// Inventory runs the full power-up → Query → RN16 → ACK → EPC exchange.
func ExampleSystem_Inventory() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sc := scenario.NewTank(0.9, em.Water, 0.08)
	sc.FixedOrientation = 0
	session, err := sys.Inventory(sc, tag.MiniatureTag())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(session.Powered, session.Decoded, fmt.Sprintf("%x", session.EPC))
	// Output:
	// true true e20068100001
}

// WriteWord triggers an actuator register through deep tissue.
func ExampleSystem_WriteWord() {
	sys, err := ivn.New(ivn.Config{Antennas: 8, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	sc := scenario.NewTank(0.5, em.GastricFluid, 0.05)
	sc.FixedOrientation = 0
	res, err := sys.WriteWord(sc, tag.StandardTag(), 0, 0x0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Written)
	// Output:
	// true
}

// OptimizePlan reproduces the paper's one-time frequency selection.
func ExampleOptimizePlan() {
	plan, err := ivn.OptimizePlan(3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(plan.Offsets), plan.Offsets[0] == 0, plan.RMS <= plan.Limit)
	// Output:
	// 3 true true
}
