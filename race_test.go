//go:build race

package ivn

// raceEnabled reports whether the race detector instrumented this build;
// instrumentation adds allocations, so exact alloc budgets don't hold.
const raceEnabled = true
