package engine

import "testing"

func TestCellText(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Number("%.1f", 3.14159), "3.1"},
		{Number("%.0f", 12.6), "13"},
		{Number("%g", 0.5), "0.5"},
		{Int(42), "42"},
		{Str("no operation"), "no operation"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Counts(3, 6), "3/6"},
		{Counts(1, 2, 3), "1/2/3"},
		{Tuple("%d/%d (%.1f%%)", 24, 24, 100.0), "24/24 (100.0%)"},
		{Tuple("%d/%d (%d att)", 4, 4, 4), "4/4 (4 att)"},
		{List([]float64{0, 3, 139}), "[0 3 139]"},
		{List(nil), "[]"},
	}
	for _, c := range cases {
		if got := c.cell.Text(); got != c.want {
			t.Errorf("%+v.Text() = %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestCellTextFormatMismatch(t *testing.T) {
	// A format consuming fewer or more verbs than values must not panic —
	// it renders an inline error a golden test would catch immediately.
	under := Cell{Kind: KindTuple, Values: []float64{1, 2}, Format: "%d"}
	if got := under.Text(); got == "1" {
		t.Fatalf("under-consumption silently rendered %q", got)
	}
	over := Cell{Kind: KindTuple, Values: []float64{1}, Format: "%d/%d"}
	if got := over.Text(); got == "1/0" {
		t.Fatalf("over-consumption silently rendered %q", got)
	}
}

func TestTupleCopiesValues(t *testing.T) {
	vs := []float64{1, 2}
	c := Tuple("%d/%d", vs...)
	vs[0] = 99
	if got := c.Text(); got != "1/2" {
		t.Fatalf("Tuple aliased its arguments: %q", got)
	}
	ls := []float64{1, 2}
	l := List(ls)
	ls[0] = 99
	if got := l.Text(); got != "[1 2]" {
		t.Fatalf("List aliased its argument: %q", got)
	}
}

func TestResultAddRowPanicsOnArityMismatch(t *testing.T) {
	r := NewResult("x", "demo", Col("a", ""), Col("b", "m"))
	r.AddRow(Int(1), Int(2))
	for _, cells := range [][]Cell{
		{Int(1)},
		{Int(1), Int(2), Int(3)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("row of %d cells accepted against 2 columns", len(cells))
				}
			}()
			r.AddRow(cells...)
		}()
	}
}

func TestColumnLabel(t *testing.T) {
	if got := Col("depth", "cm").Label(); got != "depth (cm)" {
		t.Fatalf("Label() = %q", got)
	}
	if got := Col("antennas", "").Label(); got != "antennas" {
		t.Fatalf("Label() = %q", got)
	}
}
