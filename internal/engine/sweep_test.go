package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ivn/internal/rng"
)

func TestTrialsDeterministic(t *testing.T) {
	measure := func(_ int, r *rng.Rand) (float64, error) {
		return r.Float64(), nil
	}
	a, err := Trials(7, "demo", 32, measure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trials(7, "demo", 32, measure)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (seed, label, n) produced different samples")
	}
	c, err := Trials(8, "demo", 32, measure)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestTrialsMatchesSplitIndexedByHand(t *testing.T) {
	// The engine's streams must be exactly the hand-rolled pattern the
	// experiments used before the migration: parent := rng.New(seed);
	// r := parent.SplitIndexed(label, i).
	got, err := Trials(11, "check", 8, func(_ int, r *rng.Rand) (float64, error) {
		return r.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	parent := rng.New(11)
	for i, g := range got {
		want := parent.SplitIndexed("check", i).Float64()
		if g != want {
			t.Fatalf("trial %d: engine %v, hand-rolled %v", i, g, want)
		}
	}
}

func TestTrialsRejectsBadCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := Trials(1, "x", n, func(int, *rng.Rand) (int, error) { return 0, nil }); err == nil {
			t.Fatalf("%d trials accepted", n)
		}
	}
}

func TestTrialsSurfacesLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Trials(1, "x", 16, func(i int, _ *rng.Rand) (int, error) {
		if i >= 4 {
			return 0, fmt.Errorf("trial %d: %w", i, boom)
		}
		return i, nil
	})
	if err == nil || err.Error() != "trial 4: boom" {
		t.Fatalf("got %v, want the index-4 error", err)
	}
}

func TestSweepRunInto(t *testing.T) {
	res := NewResult("s", "sweep demo", Col("n", ""), Col("sum", ""))
	sweep := Sweep[int, float64]{
		Trials: 4,
		Plan: func(n int) (uint64, string) {
			return uint64(n), fmt.Sprintf("point-%d", n)
		},
		Measure: func(n, trial int, _ *rng.Rand) (float64, error) {
			return float64(n * trial), nil
		},
		Row: func(n int, samples []float64) ([]Cell, error) {
			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			return []Cell{Int(n), Number("%.0f", sum)}, nil
		},
	}
	if err := sweep.RunInto(res, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	// n * (0+1+2+3) = 6n
	for i, n := range []int{1, 2, 3} {
		if got := res.Rows[i][1].Text(); got != fmt.Sprintf("%d", 6*n) {
			t.Fatalf("row %d sum %q, want %d", i, got, 6*n)
		}
	}
}

func TestSweepErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	sweep := Sweep[int, int]{
		Trials: 2,
		Plan:   func(n int) (uint64, string) { return 0, "p" },
		Measure: func(n, _ int, _ *rng.Rand) (int, error) {
			if n == 2 {
				return 0, boom
			}
			return n, nil
		},
		Row: func(n int, samples []int) ([]Cell, error) { return []Cell{Int(n)}, nil },
	}
	if _, err := sweep.Run([]int{1, 2}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestTrialsScratchMatchesTrials(t *testing.T) {
	measure := func(_ int, r *rng.Rand) (float64, error) {
		return r.Float64(), nil
	}
	want, err := Trials(19, "batched", 64, measure)
	if err != nil {
		t.Fatal(err)
	}
	// Same streams regardless of worker count or scratch reuse; the cap
	// rides per-run Limits, not the process global.
	for _, workers := range []int{1, 4} {
		s := NewScratches(func() any { return new(int) })
		got, err := TrialsScratchCtx(context.Background(), Limits{MaxParallel: workers}, 19, "batched", 64, s, func(_ int, scratch any, r *rng.Rand) (float64, error) {
			*(scratch.(*int))++ // mutate worker state: must not affect samples
			return r.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: TrialsScratch diverged from Trials", workers)
		}
	}
}

func TestScratchesPersistAcrossCalls(t *testing.T) {
	created := 0
	s := NewScratches(func() any { created++; return new(int) })
	for call := 0; call < 3; call++ {
		if _, err := TrialsScratch(1, "x", 32, s, func(int, any, *rng.Rand) (int, error) {
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if max := MaxParallel(); created > max {
		t.Fatalf("created %d scratches for %d workers: slots not reused", created, max)
	}
}

func TestSweepPreparedSharedContext(t *testing.T) {
	// The batched path: Prepare runs once per point, its result is shared
	// read-only by all trials, and the samples match what the unbatched
	// Measure formulation yields on the same plan. Run under -race this
	// also proves the sharing is race-free.
	type ctx struct{ scale float64 }
	prepares := 0
	batched := Sweep[int, float64]{
		Trials:     32,
		Plan:       func(n int) (uint64, string) { return uint64(n), "pt" },
		Prepare:    func(n int) (any, error) { prepares++; return &ctx{scale: float64(n)}, nil },
		NewScratch: func() any { return make([]float64, 8) },
		MeasureScratch: func(n int, c, scratch any, trial int, r *rng.Rand) (float64, error) {
			buf := scratch.([]float64)
			buf[0] = r.Float64() // scribble on worker scratch
			return buf[0] * c.(*ctx).scale, nil
		},
		Row: func(n int, samples []float64) ([]Cell, error) {
			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			return []Cell{Number("%.12g", sum)}, nil
		},
	}
	plain := batched
	plain.Prepare, plain.NewScratch, plain.MeasureScratch = nil, nil, nil
	plain.Measure = func(n, trial int, r *rng.Rand) (float64, error) {
		return r.Float64() * float64(n), nil
	}
	got, err := batched.Run([]int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run([]int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batched sweep diverged from the plain formulation")
	}
	if prepares != 3 {
		t.Fatalf("Prepare ran %d times, want once per point", prepares)
	}
}

func TestSweepRejectsAmbiguousMeasure(t *testing.T) {
	row := func(n int, samples []int) ([]Cell, error) { return []Cell{Int(n)}, nil }
	plan := func(n int) (uint64, string) { return 0, "p" }
	neither := Sweep[int, int]{Trials: 1, Plan: plan, Row: row}
	if _, err := neither.Run([]int{1}); err == nil {
		t.Fatal("sweep with neither Measure nor MeasureScratch accepted")
	}
	both := Sweep[int, int]{
		Trials:         1,
		Plan:           plan,
		Row:            row,
		Measure:        func(int, int, *rng.Rand) (int, error) { return 0, nil },
		MeasureScratch: func(int, any, any, int, *rng.Rand) (int, error) { return 0, nil },
	}
	if _, err := both.Run([]int{1}); err == nil {
		t.Fatal("sweep with both Measure and MeasureScratch accepted")
	}
}
