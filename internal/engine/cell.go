// Package engine is the typed trial-engine layer behind every IVN
// experiment. It owns the sweep/trial/measure/aggregate pipeline that the
// experiment files used to hand-roll: declarative sweeps over typed
// points, a per-point trial schedule on deterministic rng.SplitIndexed
// streams, one shared bounded-parallel scheduler, and a typed result
// model (values + units, not pre-formatted strings) from which pluggable
// renderers derive aligned text, CSV, and JSON.
//
// Determinism contract: for a fixed seed, every Result — and therefore
// every rendered byte — is identical at any GOMAXPROCS and any -parallel
// setting. The scheduler writes each trial into its own index slot and
// all reductions happen in index order, so scheduling can never reorder a
// floating-point sum or a table row.
package engine

import (
	"fmt"
	"strconv"
)

// Kind discriminates the typed cell variants.
type Kind string

const (
	// KindNumber is a single numeric value rendered with Format.
	KindNumber Kind = "number"
	// KindString is an irreducibly textual cell (a scenario name, a
	// "no operation" marker).
	KindString Kind = "string"
	// KindBool is a boolean rendered as true/false.
	KindBool Kind = "bool"
	// KindTuple is a small vector of numeric values rendered through a
	// multi-verb Format (counts like "12/16 (75.0%)").
	KindTuple Kind = "tuple"
	// KindList is a numeric list rendered in Go's %v form (a frequency
	// plan's offsets).
	KindList Kind = "list"
)

// Cell is one typed table cell. The numeric payload lives in Values so
// renderers can emit machine-readable output; Format carries the fmt verbs
// the text renderers apply to reproduce the published tables exactly.
type Cell struct {
	Kind   Kind      `json:"kind"`
	Values []float64 `json:"values,omitempty"`
	S      string    `json:"s,omitempty"`
	B      bool      `json:"b,omitempty"`
	Format string    `json:"format,omitempty"`
}

// Number returns a numeric cell rendered with the given fmt verb
// (e.g. "%.1f").
func Number(format string, v float64) Cell {
	return Cell{Kind: KindNumber, Values: []float64{v}, Format: format}
}

// Int returns an integer-valued numeric cell rendered with %d.
func Int(v int) Cell {
	return Cell{Kind: KindNumber, Values: []float64{float64(v)}, Format: "%d"}
}

// Str returns a string cell.
func Str(s string) Cell {
	return Cell{Kind: KindString, S: s}
}

// Bool returns a boolean cell.
func Bool(b bool) Cell {
	return Cell{Kind: KindBool, B: b}
}

// Tuple returns a multi-value numeric cell rendered through format, which
// must consume exactly len(vs) verbs. Integer verbs (%d and friends)
// receive the value truncated to int64.
func Tuple(format string, vs ...float64) Cell {
	return Cell{Kind: KindTuple, Values: append([]float64(nil), vs...), Format: format}
}

// Counts is Tuple for integer counts joined by slashes: Counts(3, 6)
// renders "3/6", Counts(1, 2, 3) renders "1/2/3".
func Counts(vs ...int) Cell {
	values := make([]float64, len(vs))
	format := ""
	for i, v := range vs {
		values[i] = float64(v)
		if i > 0 {
			format += "/"
		}
		format += "%d"
	}
	return Cell{Kind: KindTuple, Values: values, Format: format}
}

// List returns a numeric-list cell rendered as %v of a []float64
// (e.g. "[0 7 20]").
func List(vs []float64) Cell {
	return Cell{Kind: KindList, Values: append([]float64(nil), vs...)}
}

// Text renders the cell to the exact string the aligned-text and CSV
// renderers print.
func (c Cell) Text() string {
	switch c.Kind {
	case KindNumber, KindTuple:
		return sprintValues(c.Format, c.Values)
	case KindString:
		return c.S
	case KindBool:
		return strconv.FormatBool(c.B)
	case KindList:
		return fmt.Sprintf("%v", c.Values)
	default:
		return fmt.Sprintf("engine: unknown cell kind %q", c.Kind)
	}
}

// sprintValues applies a fmt format string to float64 arguments,
// converting each value bound to an integer verb to int64 so "%d" and
// friends format cleanly. The verb scan recognizes the standard
// flag/width/precision prefix; "%%" consumes no argument.
func sprintValues(format string, values []float64) string {
	args := make([]interface{}, 0, len(values))
	next := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, and precision up to the verb letter.
		for i < len(format) && !isVerb(format[i]) {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue // literal %% (or trailing %, which Sprintf will flag)
		}
		if next >= len(values) {
			return fmt.Sprintf("engine: format %q wants more than %d values", format, len(values))
		}
		switch format[i] {
		case 'd', 'b', 'o', 'x', 'X', 'c', 'q':
			args = append(args, int64(values[next]))
		default:
			args = append(args, values[next])
		}
		next++
	}
	if next != len(values) {
		return fmt.Sprintf("engine: format %q consumed %d of %d values", format, next, len(values))
	}
	return fmt.Sprintf(format, args...)
}

// isVerb reports whether b terminates a fmt directive.
func isVerb(b byte) bool {
	return b == '%' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
