package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Renderer turns a typed Result into one output format. Renderers are
// pluggable: the named registry below serves the CLI, and callers may use
// any function of this shape.
type Renderer func(r *Result, w io.Writer) error

// renderers is the named registry the CLI selects from.
var renderers = map[string]Renderer{
	"text": RenderText,
	"csv":  RenderCSV,
	"json": RenderJSON,
}

// RendererFor looks a renderer up by name ("text", "csv", "json").
func RendererFor(name string) (Renderer, error) {
	r, ok := renderers[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown renderer %q (use one of %v)", name, RendererNames())
	}
	return r, nil
}

// RendererNames lists the registered renderer names, sorted.
func RendererNames() []string {
	names := make([]string, 0, len(renderers))
	for name := range renderers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RenderText writes an aligned text table: the historical human-readable
// format, derived from the typed cells.
func RenderText(r *Result, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	header := r.HeaderLabels()
	rows := r.TextRows()
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(header) > 0 {
		if err := writeRow(header); err != nil {
			return err
		}
		var sb strings.Builder
		for i, width := range widths {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", width))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the result as CSV (header + rows; notes as comments).
func RenderCSV(r *Result, w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if len(r.Columns) > 0 {
		if err := writeRow(r.HeaderLabels()); err != nil {
			return err
		}
	}
	for _, row := range r.TextRows() {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the result as indented JSON. Cells keep their numeric
// payloads (values, not formatted strings), so the output feeds
// cross-run regression diffing and downstream tooling directly;
// Result round-trips through this encoding losslessly.
func RenderJSON(r *Result, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
