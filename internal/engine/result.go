package engine

import "fmt"

// Column names one table column and carries its unit separately from its
// name, so machine-readable renderers can expose units as data while the
// text renderers print the conventional "name (unit)" label.
type Column struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

// Col constructs a column.
func Col(name, unit string) Column { return Column{Name: name, Unit: unit} }

// Label renders the column header the text and CSV renderers print.
func (c Column) Label() string {
	if c.Unit == "" {
		return c.Name
	}
	return c.Name + " (" + c.Unit + ")"
}

// Result is a typed experiment result: the rows that correspond to a
// figure's series or a table's lines, as values rather than strings.
type Result struct {
	// ID is the experiment id (e.g. "fig9").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// Columns name the columns and their units.
	Columns []Column `json:"columns"`
	// Rows hold the typed cells, one slice per table row.
	Rows [][]Cell `json:"rows"`
	// Notes carry paper-vs-measured commentary.
	Notes []string `json:"notes,omitempty"`
}

// NewResult constructs a result with the given identity and columns.
func NewResult(id, title string, columns ...Column) *Result {
	return &Result{ID: id, Title: title, Columns: columns}
}

// AddRow appends a row. The cell count must match the column count
// exactly; a mismatch panics so a migration or refactor cannot silently
// drop or misalign columns.
func (r *Result) AddRow(cells ...Cell) {
	if len(cells) != len(r.Columns) {
		panic(fmt.Sprintf("engine: %s: row has %d cells for %d columns", r.ID, len(cells), len(r.Columns)))
	}
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a commentary line.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// HeaderLabels returns the rendered column labels.
func (r *Result) HeaderLabels() []string {
	out := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		out[i] = c.Label()
	}
	return out
}

// TextRows renders every cell to its text form, the string-level view the
// legacy table consumers and the shape tests read.
func (r *Result) TextRows() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, c := range row {
			cells[j] = c.Text()
		}
		out[i] = cells
	}
	return out
}
