package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"

	"ivn/internal/rng"
)

// resolveJournal partitions one Trials-level call's indices under the
// run's shard and journal: recorded samples are decoded straight into
// the samples slice (replayed), missing indices the shard owns are
// returned for execution, and missing unowned indices mark the call
// incomplete (a fragment whose reduction will be discarded). A nil
// return call means the plain unjournaled path applies.
func resolveJournal[S any](lim Limits, seed uint64, label string, samples []S) (*journalCall, []int, error) {
	if err := lim.Shard.Validate(); err != nil {
		return nil, nil, err
	}
	if lim.Journal == nil {
		if lim.Shard.Enabled() {
			return nil, nil, fmt.Errorf("engine: sharded run (shard %s) requires a journal", lim.Shard)
		}
		return nil, nil, nil
	}
	c := lim.Journal.beginCall(seed, label)
	toRun := make([]int, 0, len(samples))
	incomplete := false
	for i := range samples {
		if raw, ok := c.lookup(i); ok {
			if err := json.Unmarshal(raw, &samples[i]); err != nil {
				return nil, nil, fmt.Errorf("engine: journal replay %q occ %d trial %d: %w", label, c.occ, i, err)
			}
			c.j.replayed.Add(1)
			continue
		}
		if lim.Shard.Owns(i) {
			toRun = append(toRun, i)
			continue
		}
		incomplete = true
	}
	if incomplete {
		c.j.incomplete.Add(1)
	}
	return c, toRun, nil
}

// recorder journals executed samples for one call, guarding the first
// record with a decode round-trip so a sample type that cannot survive
// JSON (unexported fields marshal to {} silently) fails the run loudly
// instead of corrupting a resume or merge.
type recorder[S any] struct {
	call    *journalCall
	samples []S
	guarded atomic.Bool
}

func (rc *recorder[S]) record(i int) error {
	data, err := json.Marshal(rc.samples[i])
	if err != nil {
		return fmt.Errorf("engine: sample for trial %d of %q does not serialize: %w", i, rc.call.label, err)
	}
	if rc.guarded.CompareAndSwap(false, true) {
		var back S
		if err := json.Unmarshal(data, &back); err != nil {
			return fmt.Errorf("engine: sample for trial %d of %q does not decode back: %w", i, rc.call.label, err)
		}
		if !reflect.DeepEqual(back, rc.samples[i]) {
			return fmt.Errorf("engine: sample type %T does not round-trip through JSON (unexported fields?)", back)
		}
	}
	return rc.call.record(i, data)
}

// Trials runs n independent trials of measure on the bounded scheduler
// and returns the samples in trial order. Each trial's stream is derived
// with SplitIndexed from a parent seeded with seed, so the sample slice —
// not just its aggregate — is a pure function of (seed, label, n) at any
// GOMAXPROCS. Equivalent to TrialsCtx with a background context and
// default limits.
func Trials[S any](seed uint64, label string, n int, measure func(trial int, r *rng.Rand) (S, error)) ([]S, error) {
	return TrialsCtx(context.Background(), Limits{}, seed, label, n, measure)
}

// TrialsCtx is Trials under a cancellation context and per-run limits:
// cancellation stops the run between trials (no partial samples are
// returned — a cancelled run yields ctx's error), and lim caps this
// run's parallelism independently of any other run in the process.
//
// When lim carries a Journal, recorded samples replay instead of
// re-executing (they never enter the scheduler, so SchedMetrics.Trials
// counts executed trials only), executed samples are recorded, and a
// Shard restricts execution to owned indices — unowned missing indices
// stay zero-valued and mark the call incomplete on the Journal.
func TrialsCtx[S any](ctx context.Context, lim Limits, seed uint64, label string, n int, measure func(trial int, r *rng.Rand) (S, error)) ([]S, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: %d trials", n)
	}
	parent := rng.New(seed)
	samples := make([]S, n)
	call, toRun, jerr := resolveJournal(lim, seed, label, samples)
	if jerr != nil {
		return nil, jerr
	}
	if call == nil {
		err := ForEachCtx(ctx, lim, n, func(i int) error {
			r := parent.SplitIndexed(label, i)
			var e error
			samples[i], e = measure(i, r)
			return e
		})
		if err != nil {
			return nil, err
		}
		return samples, nil
	}
	rec := &recorder[S]{call: call, samples: samples}
	err := ForEachCtx(ctx, lim, len(toRun), func(k int) error {
		i := toRun[k]
		r := parent.SplitIndexed(label, i)
		var e error
		samples[i], e = measure(i, r)
		if e != nil {
			return e
		}
		return rec.record(i)
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// Scratches is the engine's per-worker trial state for the batched
// evaluation paths: one scratch object and one reusable rng child per
// scheduler worker. Each slot is only ever touched by the single
// goroutine owning that worker id, so no locking is involved; slots are
// created lazily on first use and persist across points (and across
// separate ForEachScratch calls with the same Scratches), which is where
// the allocation savings come from. A Scratches must not be shared
// between concurrently running sweeps.
type Scratches struct {
	mk    func() any
	buf   []any
	rands []rng.Rand
}

// NewScratches builds a scratch set whose slots are created by mk (nil mk
// yields nil scratch values, for callers that only want the per-worker
// rng children).
func NewScratches(mk func() any) *Scratches { return &Scratches{mk: mk} }

// ensure grows the slot slices to cover `workers` entries. Called
// sequentially before workers launch.
func (s *Scratches) ensure(workers int) {
	for len(s.buf) < workers {
		s.buf = append(s.buf, nil)
	}
	for len(s.rands) < workers {
		s.rands = append(s.rands, rng.Rand{})
	}
}

// ForEachScratch runs fn(0..n-1) on the bounded worker pool, handing each
// invocation its worker's persistent scratch object and rng child slot.
// The rng child arrives in whatever state the worker's previous trial
// left it — callers reseed it per index (e.g. via SplitIndexedInto) so
// results stay a pure function of the index, never of worker assignment.
// Error selection matches ForEach: the lowest-indexed failure wins.
// Equivalent to ForEachScratchCtx with a background context and default
// limits.
func ForEachScratch(n int, s *Scratches, fn func(i int, scratch any, r *rng.Rand) error) error {
	return ForEachScratchCtx(context.Background(), Limits{}, n, s, fn)
}

// ForEachScratchCtx is ForEachScratch under a cancellation context and
// per-run limits, with the same prompt cooperative cancellation contract
// as ForEachCtx.
func ForEachScratchCtx(ctx context.Context, lim Limits, n int, s *Scratches, fn func(i int, scratch any, r *rng.Rand) error) error {
	workers := lim.maxParallel()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	s.ensure(workers)
	return forEachWorkerN(ctx, lim.Metrics, n, workers, func(w, i int) error {
		if s.buf[w] == nil && s.mk != nil {
			s.buf[w] = s.mk()
		}
		return fn(i, s.buf[w], &s.rands[w])
	})
}

// TrialsScratch is Trials over per-worker scratch state: each trial's
// stream is still derived with SplitIndexed(label, i) from a parent
// seeded with seed — written into the worker's reusable child, so the
// derivation allocates nothing — and measure additionally receives the
// worker's persistent scratch object. Samples are identical to Trials
// for any measure that ignores the scratch, at any GOMAXPROCS.
func TrialsScratch[S any](seed uint64, label string, n int, s *Scratches, measure func(trial int, scratch any, r *rng.Rand) (S, error)) ([]S, error) {
	return TrialsScratchCtx(context.Background(), Limits{}, seed, label, n, s, measure)
}

// TrialsScratchCtx is TrialsScratch under a cancellation context and
// per-run limits, with the same journal/shard semantics as TrialsCtx.
func TrialsScratchCtx[S any](ctx context.Context, lim Limits, seed uint64, label string, n int, s *Scratches, measure func(trial int, scratch any, r *rng.Rand) (S, error)) ([]S, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: %d trials", n)
	}
	parent := rng.New(seed)
	samples := make([]S, n)
	call, toRun, jerr := resolveJournal(lim, seed, label, samples)
	if jerr != nil {
		return nil, jerr
	}
	if call == nil {
		err := ForEachScratchCtx(ctx, lim, n, s, func(i int, scratch any, r *rng.Rand) error {
			// SplitIndexedInto only reads the parent state — concurrent
			// derivation from the shared parent is race-free.
			parent.SplitIndexedInto(r, label, i)
			var e error
			samples[i], e = measure(i, scratch, r)
			return e
		})
		if err != nil {
			return nil, err
		}
		return samples, nil
	}
	rec := &recorder[S]{call: call, samples: samples}
	err := ForEachScratchCtx(ctx, lim, len(toRun), s, func(k int, scratch any, r *rng.Rand) error {
		i := toRun[k]
		parent.SplitIndexedInto(r, label, i)
		var e error
		samples[i], e = measure(i, scratch, r)
		if e != nil {
			return e
		}
		return rec.record(i)
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// Sweep is a declarative per-point trial schedule: for each sweep point
// (an antenna count, a depth, a fault scale, a scenario) the engine runs
// Trials independent measurements on deterministic streams and reduces
// the samples — in index order — to one typed table row.
//
// Points execute sequentially (trials within a point are what
// parallelize), so Row closures may accumulate cross-point state such as
// a worst-case statistic for a trailing note.
//
// Exactly one of Measure and MeasureScratch must be set. MeasureScratch
// selects the batched path: Prepare (optional) builds a point's invariant
// context once, shared read-only by every trial of that point, and each
// scheduler worker carries a persistent scratch object (NewScratch)
// reused across trials and points.
type Sweep[P, S any] struct {
	// Trials is the per-point trial count.
	Trials int
	// Plan derives the point's rng plan: the parent seed and the
	// SplitIndexed label. Labels/seeds must differ between points unless
	// the experiment deliberately reuses placements across rows (the
	// paired-ablation pattern).
	Plan func(p P) (seed uint64, label string)
	// Measure runs one trial and returns a typed sample.
	Measure func(p P, trial int, r *rng.Rand) (S, error)
	// Row reduces a point's samples (in trial order) to one table row.
	Row func(p P, samples []S) ([]Cell, error)

	// Prepare builds the point's trial-invariant context once per point,
	// before any trial runs. The returned value is handed to every
	// MeasureScratch call of that point and MUST be treated as read-only
	// there: trials run concurrently and share it. Nil Prepare passes a
	// nil context.
	Prepare func(p P) (any, error)
	// NewScratch creates one worker's reusable scratch object (may be nil
	// when MeasureScratch needs only the pooled rng children).
	NewScratch func() any
	// MeasureScratch runs one trial on the batched path: ctx is the
	// point's shared Prepare result, scratch the worker's persistent
	// object. The sample must be a pure function of (p, ctx, trial, r) —
	// never of which worker ran it.
	MeasureScratch func(p P, ctx, scratch any, trial int, r *rng.Rand) (S, error)
}

// Run executes the sweep over points and returns one row per point.
// Equivalent to RunCtx with a background context and default limits.
func (s Sweep[P, S]) Run(points []P) ([][]Cell, error) {
	return s.RunCtx(context.Background(), Limits{}, points)
}

// RunCtx executes the sweep under a cancellation context and per-run
// limits: ctx is checked between points and between trials (prompt
// cooperative cancellation), and lim caps this sweep's parallelism
// independently of any other run in the process.
func (s Sweep[P, S]) RunCtx(ctx context.Context, lim Limits, points []P) ([][]Cell, error) {
	if (s.Measure == nil) == (s.MeasureScratch == nil) {
		return nil, fmt.Errorf("engine: sweep must set exactly one of Measure and MeasureScratch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var scratches *Scratches
	if s.MeasureScratch != nil {
		scratches = NewScratches(s.NewScratch)
	}
	rows := make([][]Cell, 0, len(points))
	for _, p := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fragment mode: a shard that does not own all of a point's
		// missing trials leaves the sample set incomplete, and reducing
		// garbage rows would be misleading even in a result that the
		// fragment runner discards. Snapshot the incomplete-call count so
		// such points can skip Row below.
		var preIncomplete int64
		if lim.Journal != nil {
			preIncomplete = lim.Journal.IncompleteCalls()
		}
		seed, label := s.Plan(p)
		var samples []S
		var err error
		if s.Measure != nil {
			samples, err = TrialsCtx(ctx, lim, seed, label, s.Trials, func(trial int, r *rng.Rand) (S, error) {
				return s.Measure(p, trial, r)
			})
		} else {
			var pctx any
			if s.Prepare != nil {
				if pctx, err = s.Prepare(p); err != nil {
					return nil, err
				}
			}
			samples, err = TrialsScratchCtx(ctx, lim, seed, label, s.Trials, scratches, func(trial int, scratch any, r *rng.Rand) (S, error) {
				return s.MeasureScratch(p, pctx, scratch, trial, r)
			})
		}
		if err != nil {
			return nil, err
		}
		if lim.Journal != nil && lim.Journal.IncompleteCalls() > preIncomplete {
			continue
		}
		row, err := s.Row(p, samples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunInto executes the sweep and appends its rows to res.
func (s Sweep[P, S]) RunInto(res *Result, points []P) error {
	return s.RunIntoCtx(context.Background(), Limits{}, res, points)
}

// RunIntoCtx executes the sweep under ctx and lim and appends its rows
// to res.
func (s Sweep[P, S]) RunIntoCtx(ctx context.Context, lim Limits, res *Result, points []P) error {
	rows, err := s.RunCtx(ctx, lim, points)
	if err != nil {
		return err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	return nil
}
