package engine

import (
	"fmt"

	"ivn/internal/rng"
)

// Trials runs n independent trials of measure on the bounded scheduler
// and returns the samples in trial order. Each trial's stream is derived
// with SplitIndexed from a parent seeded with seed, so the sample slice —
// not just its aggregate — is a pure function of (seed, label, n) at any
// GOMAXPROCS.
func Trials[S any](seed uint64, label string, n int, measure func(trial int, r *rng.Rand) (S, error)) ([]S, error) {
	if n < 1 {
		return nil, fmt.Errorf("engine: %d trials", n)
	}
	parent := rng.New(seed)
	samples := make([]S, n)
	err := ForEach(n, func(i int) error {
		r := parent.SplitIndexed(label, i)
		var e error
		samples[i], e = measure(i, r)
		return e
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// Sweep is a declarative per-point trial schedule: for each sweep point
// (an antenna count, a depth, a fault scale, a scenario) the engine runs
// Trials independent measurements on deterministic streams and reduces
// the samples — in index order — to one typed table row.
//
// Points execute sequentially (trials within a point are what
// parallelize), so Row closures may accumulate cross-point state such as
// a worst-case statistic for a trailing note.
type Sweep[P, S any] struct {
	// Trials is the per-point trial count.
	Trials int
	// Plan derives the point's rng plan: the parent seed and the
	// SplitIndexed label. Labels/seeds must differ between points unless
	// the experiment deliberately reuses placements across rows (the
	// paired-ablation pattern).
	Plan func(p P) (seed uint64, label string)
	// Measure runs one trial and returns a typed sample.
	Measure func(p P, trial int, r *rng.Rand) (S, error)
	// Row reduces a point's samples (in trial order) to one table row.
	Row func(p P, samples []S) ([]Cell, error)
}

// Run executes the sweep over points and returns one row per point.
func (s Sweep[P, S]) Run(points []P) ([][]Cell, error) {
	rows := make([][]Cell, 0, len(points))
	for _, p := range points {
		seed, label := s.Plan(p)
		samples, err := Trials(seed, label, s.Trials, func(trial int, r *rng.Rand) (S, error) {
			return s.Measure(p, trial, r)
		})
		if err != nil {
			return nil, err
		}
		row, err := s.Row(p, samples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunInto executes the sweep and appends its rows to res.
func (s Sweep[P, S]) RunInto(res *Result, points []P) error {
	rows, err := s.Run(points)
	if err != nil {
		return err
	}
	for _, row := range rows {
		res.AddRow(row...)
	}
	return nil
}
