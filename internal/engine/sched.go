package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelOverride is the process-wide default worker cap; 0 means derive
// from GOMAXPROCS at call time. Per-run Limits take precedence.
var parallelOverride atomic.Int64

// SetMaxParallel sets the process-wide *default* worker cap. n <= 0
// restores the automatic GOMAXPROCS-derived default. Changing the cap
// never changes results — only how many trials run at once.
//
// Deprecated: this global survives only as a documented compatibility
// fallback — the value Limits.maxParallel resolves to when a run carries
// no cap of its own. Nothing in this repository sets it anymore (the
// ivnsim CLI's -parallel flag and the ivnsimd daemon both pass per-run
// Limits); it exists for out-of-tree callers that predate Limits and run
// one sweep per process. Anything that may share a process with other
// runs must carry a per-run cap in Limits instead, so concurrent jobs
// get independent parallelism.
func SetMaxParallel(n int) {
	if n < 0 {
		n = 0
	}
	parallelOverride.Store(int64(n))
}

// MaxParallel resolves the current process-wide default worker cap.
func MaxParallel() int {
	if n := int(parallelOverride.Load()); n > 0 {
		return n
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// SchedMetrics receives scheduler observability counters when attached to
// a run through Limits. All fields are updated atomically and may be read
// concurrently with running sweeps; a single SchedMetrics may be shared
// by many runs (the daemon aggregates every job into one), in which case
// the counters report the union.
//
// Trials counts only *executed* trials: a journaled run that replays
// recorded samples never schedules them, so resumed work leaves Trials
// untouched — which is exactly what the resume tests pin on.
//
// When runs with different per-run caps share one SchedMetrics (shard
// sub-jobs beside ordinary jobs), Cap is the union maximum — the largest
// cap any attached run ever resolved, not a sum and not the current
// run's cap. Busy/Cap is then a lower bound on occupancy, exact only
// while all attached runs resolved the same cap. Consumers that need a
// heterogeneous run's own cap must read it from that run's private
// SchedMetrics (chain it to the aggregate via Parent), which is how the
// service reports per-sub-job caps.
type SchedMetrics struct {
	// Trials counts completed trial invocations (executed, not replayed).
	Trials atomic.Int64
	// Busy is the number of workers currently executing a trial.
	Busy atomic.Int64
	// Cap is the largest worker cap any attached run has resolved — the
	// denominator for an occupancy estimate (Busy/Cap). Union max across
	// attached runs; see the type comment for heterogeneous-cap caveats.
	Cap atomic.Int64

	// Parent, when non-nil, receives every counter update this instance
	// does, letting a run keep private per-run numbers while rolling them
	// up into an aggregate (daemon shard sub-jobs chain into the service
	// metrics). Set before the run starts and never mutated after; chains
	// must be acyclic.
	Parent *SchedMetrics
}

// noteCap raises Cap to at least workers, propagating up the chain.
func (m *SchedMetrics) noteCap(workers int) {
	for {
		cur := m.Cap.Load()
		if int64(workers) <= cur || m.Cap.CompareAndSwap(cur, int64(workers)) {
			break
		}
	}
	if m.Parent != nil {
		m.Parent.noteCap(workers)
	}
}

// addBusy adjusts Busy along the chain.
func (m *SchedMetrics) addBusy(d int64) {
	for c := m; c != nil; c = c.Parent {
		c.Busy.Add(d)
	}
}

// addTrials adds executed-trial counts along the chain.
func (m *SchedMetrics) addTrials(d int64) {
	for c := m; c != nil; c = c.Parent {
		c.Trials.Add(d)
	}
}

// Limits is one run's scheduler configuration, carried alongside the job
// rather than stored in process globals so that concurrent runs in one
// process (daemon jobs) get independent parallelism caps. The zero value
// inherits the process defaults (SetMaxParallel / GOMAXPROCS) and attaches
// no metrics.
type Limits struct {
	// MaxParallel caps this run's concurrent trial workers; 0 falls back
	// to the process default. Never changes results.
	MaxParallel int
	// Metrics, when non-nil, receives per-trial scheduler counters.
	Metrics *SchedMetrics

	// Shard restricts the run's Trials-level calls to the trial indices
	// this shard owns (stride partition; see Shard). The zero value runs
	// everything. A sharded run requires a Journal to record its
	// contributions — Trials errors otherwise, because a fragment without
	// a journal produces nothing recoverable. ForEach/ForEachScratch sit
	// BELOW the shard seam and ignore Shard entirely: adaptive helpers
	// (range bisection probes) run all their indices on every shard, so
	// control flow that depends on their outcomes stays identical across
	// shards and the merge replay.
	Shard Shard
	// Journal, when non-nil, checkpoint-journals the run's Trials-level
	// calls: recorded samples are replayed instead of re-executed
	// (resume/merge), executed samples are recorded. One Journal per run;
	// see Journal.
	Journal *Journal
}

// maxParallel resolves the run's effective worker cap.
func (l Limits) maxParallel() int {
	if l.MaxParallel > 0 {
		return l.MaxParallel
	}
	return MaxParallel()
}

// ForEach runs fn(0..n-1) on the bounded worker pool and returns the
// error of the lowest-indexed failure, so the outcome — including which
// error surfaces — is independent of scheduling. Callers keep determinism
// by writing results into per-index slots and reducing them in index
// order afterwards. Equivalent to ForEachCtx with a background context
// and default limits.
func ForEach(n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), Limits{}, n, fn)
}

// ForEachCtx is ForEach under a cancellation context and per-run limits.
// Cancellation is cooperative and prompt: workers check ctx between
// trials and stop claiming new indices once it is done, and the call then
// returns ctx's error. Trials already in flight run to completion — no
// partial trial state is ever published.
func ForEachCtx(ctx context.Context, lim Limits, n int, fn func(i int) error) error {
	workers := lim.maxParallel()
	return forEachWorkerN(ctx, lim.Metrics, n, workers, func(_, i int) error { return fn(i) })
}

// forEachWorkerN is the one sanctioned goroutine launcher (see ivnlint's
// goroutinehygiene): a fixed pool of workers claims indices from an
// atomic counter, keeping goroutine count bounded by the cap rather than
// by n. It exposes the claiming worker's identity: fn(worker, i) with
// worker in [0, workers). Any one worker id runs on a single goroutine,
// so per-worker state (scratch buffers, reusable rng children) needs no
// locking. Index assignment to workers is scheduling-dependent — callers
// must not let results depend on which worker ran an index, only on the
// index itself.
func forEachWorkerN(ctx context.Context, m *SchedMetrics, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if m != nil {
		m.noteCap(workers)
	}
	done := ctx.Done()
	errs := make([]error, n)
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						aborted.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if m != nil {
					m.addBusy(1)
				}
				errs[i] = fn(worker, i)
				if m != nil {
					m.addBusy(-1)
					m.addTrials(1)
				}
			}
		}(w)
	}
	wg.Wait()
	// A cancelled run is incomplete by construction: report the context's
	// error rather than a scheduling-dependent subset of trial errors.
	if aborted.Load() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
