package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelOverride is the configured worker cap; 0 means derive from
// GOMAXPROCS at call time. Set from the CLI's -parallel flag.
var parallelOverride atomic.Int64

// SetMaxParallel caps the scheduler's concurrent trial workers. n <= 0
// restores the automatic GOMAXPROCS-derived default. Changing the cap
// never changes results — only how many trials run at once.
func SetMaxParallel(n int) {
	if n < 0 {
		n = 0
	}
	parallelOverride.Store(int64(n))
}

// MaxParallel resolves the current worker cap.
func MaxParallel() int {
	if n := int(parallelOverride.Load()); n > 0 {
		return n
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs fn(0..n-1) on the shared bounded worker pool and returns
// the error of the lowest-indexed failure, so the outcome — including
// which error surfaces — is independent of scheduling. Callers keep
// determinism by writing results into per-index slots and reducing them
// in index order afterwards.
func ForEach(n int, fn func(i int) error) error {
	return forEachIndexed(n, fn)
}

// forEachIndexed is the one sanctioned goroutine launcher (see ivnlint's
// goroutinehygiene): a fixed pool of MaxParallel workers claims indices
// from an atomic counter, keeping goroutine count bounded by the cap
// rather than by n.
func forEachIndexed(n int, fn func(i int) error) error {
	workers := MaxParallel()
	if workers > n {
		workers = n
	}
	return forEachWorkerN(n, workers, func(_, i int) error { return fn(i) })
}

// forEachWorkerN is forEachIndexed with the claiming worker's identity
// exposed: fn(worker, i) with worker in [0, workers). Any one worker id
// runs on a single goroutine, so per-worker state (scratch buffers,
// reusable rng children) needs no locking. Index assignment to workers is
// scheduling-dependent — callers must not let results depend on which
// worker ran an index, only on the index itself.
func forEachWorkerN(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
