package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Shard selects one work partition of a run's trial indices: trial i
// belongs to shard Index of Count iff i % Count == Index. The zero value
// (and any Count <= 1) means "the whole run".
//
// The partition is a stride, not a contiguous block, deliberately: sweep
// points carry small per-point trial counts (often single digits in
// -quick runs), and a contiguous block split would hand one shard all of
// a small point's trials while another shard gets none, skewing per-shard
// wall time. A stride gives every shard an interleaved ceil(n/Count) or
// floor(n/Count) slice of every point's trials, so shard runtimes balance
// point by point, and membership is an O(1) test needing no knowledge of
// n. Correctness is partition-independent either way: rng.SplitIndexed
// derives trial i's stream purely from (seed, label, i), never from which
// process runs it.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Enabled reports whether the shard actually partitions work.
func (s Shard) Enabled() bool { return s.Count > 1 }

// Validate rejects shards that cannot mean anything. The zero value is
// valid (whole run).
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("engine: negative shard %s", s)
	}
	if s.Count > 0 && s.Index >= s.Count {
		return fmt.Errorf("engine: shard index %d out of range for count %d", s.Index, s.Count)
	}
	if s.Count == 0 && s.Index != 0 {
		return fmt.Errorf("engine: shard index %d with zero count", s.Index)
	}
	return nil
}

// Owns reports whether trial index i falls in this shard's partition.
func (s Shard) Owns(i int) bool {
	if !s.Enabled() {
		return true
	}
	return i%s.Count == s.Index
}

// String renders the conventional "index/count" form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses the "index/count" CLI form. Empty means "whole run".
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	var sh Shard
	if n, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil || n != 2 {
		return Shard{}, fmt.Errorf("engine: bad shard %q (want \"index/count\", e.g. 0/4)", s)
	}
	if !sh.Enabled() {
		return Shard{}, fmt.Errorf("engine: shard count %d must be >= 2", sh.Count)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// JournalEntry is one completed trial's contribution: the (seed, label,
// occurrence, trial) coordinates that identify the trial's rng stream
// within a run, plus the measured sample serialized as JSON. One entry
// per JSONL line.
//
// Occ disambiguates deliberate stream reuse: experiments like the
// adaptive-Q ablation run several Trials calls with the same (seed,
// label) to pair placements across variants, so the coordinates alone
// would collide; Occ is the per-(seed, label) call counter within the
// run. Because a run's engine-visible call sequence is a pure function
// of its spec, every shard — and the merge replay — counts occurrences
// identically.
type JournalEntry struct {
	Label  string          `json:"label"`
	Seed   uint64          `json:"seed"`
	Occ    int             `json:"occ"`
	Trial  int             `json:"trial"`
	Sample json.RawMessage `json:"sample"`
}

// journalKey is the entry identity (everything but the sample).
type journalKey struct {
	label string
	seed  uint64
	occ   int
	trial int
}

// Journal is the engine's append-only per-trial checkpoint store: each
// completed trial of a journaled run is recorded as one JSONL entry, and
// a later run with the same spec replays recorded samples instead of
// re-executing their trials. It backs three modes that are all the same
// mechanism:
//
//   - resume: a killed run reloaded from its own journal re-executes only
//     the missing indices;
//   - shard fragments: a run with Limits.Shard executes (and records)
//     only the indices it owns, leaving the journal as its output;
//   - merge: a run loaded with every fragment's entries replays all of
//     them, re-executes anything missing live, and reduces the complete
//     sample set exactly as a single-process run would.
//
// Entries record sample values with encoding/json's shortest-round-trip
// float encoding, so a replayed sample is bit-identical to the one the
// recording process measured — the property the byte-identical merge
// rests on.
//
// A Journal carries per-run occurrence counters and therefore must not
// be shared by two runs, nor reused for a second run; record and lookup
// are safe from concurrent trial workers within one run. Writes go to w
// (when non-nil) as exactly one Write call per entry, so a SIGKILL can
// truncate at most the final line — which LoadEntries tolerates.
type Journal struct {
	mu      sync.Mutex
	w       io.Writer
	entries map[journalKey]json.RawMessage
	occ     map[occKey]int

	recorded   atomic.Int64
	replayed   atomic.Int64
	incomplete atomic.Int64
}

type occKey struct {
	label string
	seed  uint64
}

// NewJournal builds a journal appending entries to w; nil w keeps the
// journal memory-only (the daemon's in-process fragments).
func NewJournal(w io.Writer) *Journal {
	return &Journal{
		w:       w,
		entries: map[journalKey]json.RawMessage{},
		occ:     map[occKey]int{},
	}
}

// Attach sets the append writer for entries recorded from now on.
// Loaded/absorbed entries are never re-written.
func (j *Journal) Attach(w io.Writer) {
	j.mu.Lock()
	j.w = w
	j.mu.Unlock()
}

// Entries returns the number of distinct trial entries held.
func (j *Journal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Recorded returns the count of entries recorded (executed and written)
// by this run.
func (j *Journal) Recorded() int64 { return j.recorded.Load() }

// Replayed returns the count of trials this run served from the journal
// instead of executing.
func (j *Journal) Replayed() int64 { return j.replayed.Load() }

// IncompleteCalls returns how many Trials-level calls of this run left
// indices neither owned by the run's shard nor found in the journal —
// zero exactly when the run produced a complete (reducible) sample set.
func (j *Journal) IncompleteCalls() int64 { return j.incomplete.Load() }

// LoadEntries parses JSONL entries from r into memory (for resume and
// merge). A final line that is truncated mid-write — no trailing
// newline and unparseable — is dropped silently, which is the crash
// recovery contract for SIGKILLed appends; a malformed interior line is
// an error. Returns the number of entries loaded and the byte offset
// just past the last complete entry (the length a resuming writer should
// truncate the file to before appending).
func (j *Journal) LoadEntries(r io.Reader) (n int, consumed int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		if len(bytes.TrimSpace(line)) > 0 {
			var e JournalEntry
			if perr := unmarshalStrict(line, &e); perr != nil {
				if !complete {
					// Truncated tail: drop it.
					return n, consumed, nil
				}
				return n, consumed, fmt.Errorf("engine: journal line %d: %w", n+1, perr)
			}
			if verr := validEntry(e); verr != nil {
				if !complete {
					return n, consumed, nil
				}
				return n, consumed, verr
			}
			j.mu.Lock()
			j.entries[journalKey{e.Label, e.Seed, e.Occ, e.Trial}] = e.Sample
			j.mu.Unlock()
			n++
		}
		if complete {
			consumed += int64(len(line))
		}
		if rerr != nil {
			if rerr == io.EOF {
				return n, consumed, nil
			}
			return n, consumed, rerr
		}
	}
}

// unmarshalStrict decodes one entry rejecting trailing garbage on the
// line (a torn write that happens to end at a brace must not half-load).
func unmarshalStrict(line []byte, e *JournalEntry) error {
	dec := json.NewDecoder(bytes.NewReader(bytes.TrimSpace(line)))
	if err := dec.Decode(e); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after entry")
	}
	return nil
}

// validEntry rejects entries whose coordinates cannot identify a trial.
func validEntry(e JournalEntry) error {
	if e.Label == "" || e.Trial < 0 || e.Occ < 0 || len(e.Sample) == 0 {
		return fmt.Errorf("engine: journal entry missing coordinates or sample (label %q, occ %d, trial %d)", e.Label, e.Occ, e.Trial)
	}
	return nil
}

// Absorb merges another journal's entries into j (the merge step's union
// across shard fragments). Duplicate keys with identical sample bytes are
// tolerated (a resumed fragment may overlap itself); conflicting bytes
// for one key mean two runs disagreed about a deterministic trial and
// are an error.
func (j *Journal) Absorb(other *Journal) error {
	other.mu.Lock()
	defer other.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	for k, v := range other.entries {
		if prev, ok := j.entries[k]; ok {
			if !bytes.Equal(prev, v) {
				return fmt.Errorf("engine: journal conflict at %s seed %d occ %d trial %d: fragments disagree", k.label, k.seed, k.occ, k.trial)
			}
			continue
		}
		j.entries[k] = v
	}
	return nil
}

// journalCall is one Trials-level call's view of the journal: the
// occurrence-resolved key prefix plus append access.
type journalCall struct {
	j     *Journal
	label string
	seed  uint64
	occ   int
}

// beginCall resolves the call's occurrence number (per-run, per
// (seed, label)) and returns its handle. Trials-level calls of a run are
// sequential, matching the experiments' structure; only record/lookup
// within a call run concurrently.
func (j *Journal) beginCall(seed uint64, label string) *journalCall {
	k := occKey{label, seed}
	j.mu.Lock()
	occ := j.occ[k]
	j.occ[k] = occ + 1
	j.mu.Unlock()
	return &journalCall{j: j, label: label, seed: seed, occ: occ}
}

// lookup returns the recorded sample for a trial of this call, if any.
func (c *journalCall) lookup(trial int) (json.RawMessage, bool) {
	c.j.mu.Lock()
	defer c.j.mu.Unlock()
	raw, ok := c.j.entries[journalKey{c.label, c.seed, c.occ, trial}]
	return raw, ok
}

// record stores one completed trial's sample and appends its JSONL line
// in a single Write, so a kill can only ever truncate the final line.
func (c *journalCall) record(trial int, sample json.RawMessage) error {
	e := JournalEntry{Label: c.label, Seed: c.seed, Occ: c.occ, Trial: trial, Sample: sample}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("engine: journal entry %s trial %d: %w", c.label, trial, err)
	}
	line = append(line, '\n')
	c.j.mu.Lock()
	defer c.j.mu.Unlock()
	if c.j.w != nil {
		if _, werr := c.j.w.Write(line); werr != nil {
			return fmt.Errorf("engine: journal write %s trial %d: %w", c.label, trial, werr)
		}
	}
	c.j.entries[journalKey{c.label, c.seed, c.occ, trial}] = e.Sample
	c.j.recorded.Add(1)
	return nil
}
