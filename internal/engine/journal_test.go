package engine

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"ivn/internal/rng"
)

// tsample is the journal tests' sample type: exported fields only, so it
// round-trips through JSON bit-exactly.
type tsample struct {
	V float64
	N int
}

// tMeasure is a deterministic measurement: a pure function of (trial, r).
func tMeasure(trial int, r *rng.Rand) (tsample, error) {
	return tsample{V: r.Float64(), N: trial}, nil
}

func TestShardOwnsIsAPartition(t *testing.T) {
	for _, count := range []int{2, 3, 4, 7} {
		for i := 0; i < 100; i++ {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (Shard{Index: idx, Count: count}).Owns(i) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("trial %d owned by %d shards of %d, want exactly 1", i, owners, count)
			}
		}
	}
	// The zero shard owns everything.
	var whole Shard
	for i := 0; i < 10; i++ {
		if !whole.Owns(i) {
			t.Fatalf("zero shard must own trial %d", i)
		}
	}
}

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("1/4")
	if err != nil || sh.Index != 1 || sh.Count != 4 {
		t.Fatalf("ParseShard(1/4) = %v, %v", sh, err)
	}
	if sh, err := ParseShard(""); err != nil || sh.Enabled() {
		t.Fatalf("empty shard = %v, %v, want whole run", sh, err)
	}
	for _, bad := range []string{"x", "3", "1/1", "4/4", "-1/4", "a/b"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestShardValidate(t *testing.T) {
	for _, sh := range []Shard{{}, {Index: 0, Count: 2}, {Index: 3, Count: 4}} {
		if err := sh.Validate(); err != nil {
			t.Errorf("%v: %v", sh, err)
		}
	}
	for _, sh := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 1, Count: 0}, {Index: 0, Count: -2}} {
		if err := sh.Validate(); err == nil {
			t.Errorf("%v accepted", sh)
		}
	}
}

func TestTrialsShardWithoutJournalErrors(t *testing.T) {
	lim := Limits{Shard: Shard{Index: 0, Count: 2}}
	_, err := TrialsCtx(context.Background(), lim, 7, "x", 4, tMeasure)
	if err == nil || !strings.Contains(err.Error(), "requires a journal") {
		t.Fatalf("got %v, want a requires-a-journal error", err)
	}
}

func TestTrialsJournalRecordThenReplay(t *testing.T) {
	const n = 16
	direct, err := Trials(7, "replay", n, tMeasure)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	j := NewJournal(&buf)
	recSamples, err := TrialsCtx(context.Background(), Limits{Journal: j}, 7, "replay", n, tMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if j.Recorded() != n || j.Replayed() != 0 {
		t.Fatalf("recorded %d replayed %d, want %d/0", j.Recorded(), j.Replayed(), n)
	}

	// Reload the JSONL bytes into a fresh journal: every trial replays,
	// nothing executes (the measure trap), and the scheduler never sees a
	// trial (SchedMetrics.Trials stays zero — the resume-test pin).
	j2 := NewJournal(nil)
	if loaded, _, err := j2.LoadEntries(bytes.NewReader(buf.Bytes())); err != nil || loaded != n {
		t.Fatalf("LoadEntries = %d, %v", loaded, err)
	}
	var m SchedMetrics
	var executed atomic.Int64
	replaySamples, err := TrialsCtx(context.Background(), Limits{Journal: j2, Metrics: &m}, 7, "replay", n,
		func(trial int, r *rng.Rand) (tsample, error) {
			executed.Add(1)
			return tMeasure(trial, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d trials executed on a fully-journaled run", executed.Load())
	}
	if m.Trials.Load() != 0 {
		t.Fatalf("SchedMetrics.Trials = %d for a pure replay, want 0", m.Trials.Load())
	}
	if j2.Replayed() != n {
		t.Fatalf("Replayed = %d, want %d", j2.Replayed(), n)
	}
	for i := range direct {
		if direct[i] != recSamples[i] || direct[i] != replaySamples[i] {
			t.Fatalf("trial %d: direct %v recorded %v replayed %v", i, direct[i], recSamples[i], replaySamples[i])
		}
	}
}

func TestJournalOccDisambiguatesRepeatedLabels(t *testing.T) {
	// Two calls with the same (seed, label) — the paired-ablation pattern —
	// must journal and replay independently via the occurrence counter.
	measureA := func(trial int, r *rng.Rand) (tsample, error) { return tsample{V: r.Float64(), N: trial}, nil }
	measureB := func(trial int, r *rng.Rand) (tsample, error) { return tsample{V: -r.Float64(), N: -trial}, nil }

	var buf bytes.Buffer
	j := NewJournal(&buf)
	lim := Limits{Journal: j}
	a1, err := TrialsCtx(context.Background(), lim, 3, "pair", 5, measureA)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := TrialsCtx(context.Background(), lim, 3, "pair", 5, measureB)
	if err != nil {
		t.Fatal(err)
	}

	j2 := NewJournal(nil)
	if _, _, err := j2.LoadEntries(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	lim2 := Limits{Journal: j2}
	trap := func(trial int, r *rng.Rand) (tsample, error) {
		t.Error("trial executed on replay")
		return tsample{}, nil
	}
	a2, err := TrialsCtx(context.Background(), lim2, 3, "pair", 5, trap)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TrialsCtx(context.Background(), lim2, 3, "pair", 5, trap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatalf("occurrence mixup at trial %d: %v/%v vs %v/%v", i, a1[i], b1[i], a2[i], b2[i])
		}
	}
	if a2[0] == b2[0] {
		t.Fatal("the two occurrences replayed identical samples — occ not keyed")
	}
}

func TestTrialsShardExecutesOwnedOnly(t *testing.T) {
	const n = 10
	sh := Shard{Index: 1, Count: 3}
	j := NewJournal(nil)
	var executed []int32
	executed = make([]int32, n)
	samples, err := TrialsCtx(context.Background(), Limits{Shard: sh, Journal: j}, 7, "own", n,
		func(trial int, r *rng.Rand) (tsample, error) {
			atomic.AddInt32(&executed[trial], 1)
			return tMeasure(trial, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int32(0)
		if sh.Owns(i) {
			want = 1
		}
		if executed[i] != want {
			t.Fatalf("trial %d executed %d times, want %d", i, executed[i], want)
		}
		if !sh.Owns(i) && samples[i] != (tsample{}) {
			t.Fatalf("unowned trial %d has non-zero sample %v", i, samples[i])
		}
	}
	if j.IncompleteCalls() != 1 {
		t.Fatalf("IncompleteCalls = %d, want 1 (fragment left gaps)", j.IncompleteCalls())
	}
}

func TestShardFragmentsMergeToDirectRun(t *testing.T) {
	const n, count = 13, 4
	direct, err := Trials(21, "merge", n, tMeasure)
	if err != nil {
		t.Fatal(err)
	}
	union := NewJournal(nil)
	for idx := 0; idx < count; idx++ {
		frag := NewJournal(nil)
		lim := Limits{Shard: Shard{Index: idx, Count: count}, Journal: frag}
		if _, err := TrialsCtx(context.Background(), lim, 21, "merge", n, tMeasure); err != nil {
			t.Fatal(err)
		}
		if err := union.Absorb(frag); err != nil {
			t.Fatal(err)
		}
	}
	if union.Entries() != n {
		t.Fatalf("union holds %d entries, want %d", union.Entries(), n)
	}
	merged, err := TrialsCtx(context.Background(), Limits{Journal: union}, 21, "merge", n,
		func(trial int, r *rng.Rand) (tsample, error) {
			t.Errorf("trial %d executed during merge replay", trial)
			return tsample{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != merged[i] {
			t.Fatalf("trial %d: direct %v merged %v", i, direct[i], merged[i])
		}
	}
	if union.IncompleteCalls() != 0 {
		t.Fatalf("IncompleteCalls = %d on a complete merge", union.IncompleteCalls())
	}
}

func TestLoadEntriesDropsTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if _, err := TrialsCtx(context.Background(), Limits{Journal: j}, 5, "tail", 4, tMeasure); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	// Tear mid-final-line, as a SIGKILL during the last append would.
	torn := buf.Bytes()[:whole-9]

	j2 := NewJournal(nil)
	n, consumed, err := j2.LoadEntries(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d entries from a torn 4-entry journal, want 3", n)
	}
	// consumed must point just past the last complete line, so a resume
	// can truncate the torn bytes away before appending.
	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	wantConsumed := int64(len(lines[0]) + len(lines[1]) + len(lines[2]))
	if consumed != wantConsumed {
		t.Fatalf("consumed = %d, want %d", consumed, wantConsumed)
	}
}

func TestLoadEntriesRejectsMalformedInteriorLine(t *testing.T) {
	data := `{"label":"x","seed":1,"occ":0,"trial":0,"sample":{"V":1}}
not json
{"label":"x","seed":1,"occ":0,"trial":1,"sample":{"V":2}}
`
	j := NewJournal(nil)
	if _, _, err := j.LoadEntries(strings.NewReader(data)); err == nil {
		t.Fatal("malformed interior line loaded without error")
	}
}

func TestRecorderRejectsUnexportedSampleFields(t *testing.T) {
	type hidden struct {
		v float64 //nolint:unused // the point: it vanishes in JSON
	}
	j := NewJournal(nil)
	_, err := TrialsCtx(context.Background(), Limits{Journal: j}, 7, "hidden", 2,
		func(trial int, r *rng.Rand) (hidden, error) {
			return hidden{v: r.Float64()}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "round-trip") {
		t.Fatalf("got %v, want a does-not-round-trip error", err)
	}
}

func TestAbsorbConflictingSamples(t *testing.T) {
	mk := func(sample string) *Journal {
		j := NewJournal(nil)
		data := `{"label":"x","seed":1,"occ":0,"trial":0,"sample":` + sample + "}\n"
		if _, _, err := j.LoadEntries(strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, dup, b := mk(`{"V":1}`), mk(`{"V":1}`), mk(`{"V":2}`)
	if err := a.Absorb(dup); err != nil {
		t.Fatalf("byte-identical duplicate rejected: %v", err)
	}
	if err := a.Absorb(b); err == nil {
		t.Fatal("conflicting sample bytes absorbed without error")
	}
}
