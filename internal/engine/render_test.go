package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func demoResult() *Result {
	r := NewResult("demo", "A demo table", Col("name", ""), Col("depth", "cm"), Col("hits", ""))
	r.AddRow(Str("alpha"), Number("%.1f", 12.25), Counts(3, 6))
	r.AddRow(Str("beta, or so"), Number("%.1f", 5), Counts(6, 6))
	r.AddNote("a note with %d parts", 2)
	return r
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderText(demoResult(), &buf); err != nil {
		t.Fatal(err)
	}
	want := "== demo: A demo table ==\n" +
		"name         depth (cm)  hits\n" +
		"-----------  ----------  ----\n" +
		"alpha        12.2        3/6\n" +
		"beta, or so  5.0         6/6\n" +
		"note: a note with 2 parts\n"
	if buf.String() != want {
		t.Fatalf("text render:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderCSV(demoResult(), &buf); err != nil {
		t.Fatal(err)
	}
	want := "name,depth (cm),hits\n" +
		"alpha,12.2,3/6\n" +
		"\"beta, or so\",5.0,6/6\n" +
		"# a note with 2 parts\n"
	if buf.String() != want {
		t.Fatalf("csv render:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	r := demoResult()
	r.AddRow(Str("extras"), Number("%.1f", 1), Tuple("%d/%d (%.1f%%)", 1, 2, 50.0))
	var buf bytes.Buffer
	if err := RenderJSON(r, &buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Fatalf("JSON round trip changed the result:\nin:  %+v\nout: %+v", *r, back)
	}
	// The payload must be numeric, not stringly: values arrays, not
	// pre-formatted cells.
	if !strings.Contains(buf.String(), `"values"`) {
		t.Fatalf("JSON lacks numeric values:\n%s", buf.String())
	}
}

func TestRendererRegistry(t *testing.T) {
	names := RendererNames()
	if !reflect.DeepEqual(names, []string{"csv", "json", "text"}) {
		t.Fatalf("RendererNames() = %v", names)
	}
	for _, name := range names {
		rd, err := RendererFor(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rd(demoResult(), &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
	if _, err := RendererFor("yaml"); err == nil {
		t.Fatal("unknown renderer accepted")
	}
}
