package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var count int64
	hit := make([]bool, 100)
	err := ForEach(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		hit[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	// Multiple failures: the lowest-indexed error must surface, so error
	// reporting is deterministic regardless of scheduling.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 10; round++ {
		err := ForEach(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 33:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("round %d: got %v, want the index-7 error", round, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMaxParallelPositive(t *testing.T) {
	if MaxParallel() < 1 {
		t.Fatalf("MaxParallel() = %d", MaxParallel())
	}
}

func TestSetMaxParallelFallback(t *testing.T) {
	// SetMaxParallel survives only as the deprecated compatibility
	// fallback that zero-cap Limits resolve to; concurrency bounding
	// itself is pinned per-run in TestLimitsCapWorkers. This test covers
	// just the fallback resolution contract.
	defer SetMaxParallel(0)
	SetMaxParallel(2)
	if got := MaxParallel(); got != 2 {
		t.Fatalf("MaxParallel() = %d after SetMaxParallel(2)", got)
	}
	// A per-run cap takes precedence over the global fallback.
	if got := (Limits{MaxParallel: 5}).maxParallel(); got != 5 {
		t.Fatalf("Limits{5}.maxParallel() = %d with global fallback 2", got)
	}
	if got := (Limits{}).maxParallel(); got != 2 {
		t.Fatalf("Limits{}.maxParallel() = %d, want the global fallback 2", got)
	}
	SetMaxParallel(-5) // negative restores the automatic default
	if MaxParallel() < 1 {
		t.Fatalf("MaxParallel() = %d after reset", MaxParallel())
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ForEach(16, func(int) error { return nil })
	}
}

func TestLimitsCapWorkers(t *testing.T) {
	// A per-run cap must bound concurrency without touching the process
	// default: two runs with different Limits in the same process see
	// their own caps.
	var inFlight, peak atomic.Int64
	err := ForEachCtx(context.Background(), Limits{MaxParallel: 3}, 64, func(int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Fatalf("observed %d concurrent callbacks with per-run cap 3", peak.Load())
	}
}

func TestForEachCtxCancelStopsClaiming(t *testing.T) {
	// Cancel after the first trial: workers must stop claiming new
	// indices and the call must return the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, Limits{MaxParallel: 1}, 1000, func(i int) error {
		ran.Add(1)
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d trials ran despite cancellation", n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, Limits{}, 10, func(int) error {
		t.Error("trial ran on a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestForEachCtxCompletedRunIgnoresLateCancel(t *testing.T) {
	// A context cancelled only after every index completed must not turn
	// a finished run into an error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForEachCtx(ctx, Limits{}, 50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSchedMetricsCountsTrials(t *testing.T) {
	var m SchedMetrics
	lim := Limits{MaxParallel: 2, Metrics: &m}
	if err := ForEachCtx(context.Background(), lim, 40, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Trials.Load(); got != 40 {
		t.Fatalf("Trials = %d, want 40", got)
	}
	if got := m.Busy.Load(); got != 0 {
		t.Fatalf("Busy = %d after completion, want 0", got)
	}
	if got := m.Cap.Load(); got != 2 {
		t.Fatalf("Cap = %d, want 2", got)
	}
	// A second run through the same metrics accumulates.
	if err := ForEachCtx(context.Background(), lim, 10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Trials.Load(); got != 50 {
		t.Fatalf("Trials = %d after second run, want 50", got)
	}
}
