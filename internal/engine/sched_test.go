package engine

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var count int64
	hit := make([]bool, 100)
	err := ForEach(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		hit[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	// Multiple failures: the lowest-indexed error must surface, so error
	// reporting is deterministic regardless of scheduling.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for round := 0; round < 10; round++ {
		err := ForEach(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 33:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("round %d: got %v, want the index-7 error", round, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMaxParallelPositive(t *testing.T) {
	if MaxParallel() < 1 {
		t.Fatalf("MaxParallel() = %d", MaxParallel())
	}
}

func TestSetMaxParallelCapsWorkers(t *testing.T) {
	defer SetMaxParallel(0)
	SetMaxParallel(2)
	if got := MaxParallel(); got != 2 {
		t.Fatalf("MaxParallel() = %d after SetMaxParallel(2)", got)
	}
	// With a cap of 2, at most 2 callbacks may ever be in flight.
	var inFlight, peak atomic.Int64
	err := ForEach(64, func(int) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("observed %d concurrent callbacks with cap 2", peak.Load())
	}
	SetMaxParallel(-5) // negative restores the automatic default
	if MaxParallel() < 1 {
		t.Fatalf("MaxParallel() = %d after reset", MaxParallel())
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ForEach(16, func(int) error { return nil })
	}
}
