// Package pool provides size-bucketed scratch-buffer pools for the hot
// trial paths of the simulator.
//
// The envelope kernels, FFT correlators, and Monte-Carlo trial loops all
// need short-lived float64/complex128 work slices of a handful of
// recurring sizes (2^k grids, carrier-count vectors). Allocating them per
// call keeps the garbage collector busy on exactly the paths the
// experiment harness hammers millions of times. This package hands out
// zeroed slices from per-size free lists and takes them back when the
// caller is done.
//
// Buffers are bucketed by capacity rounded up to a power of two, so a
// request for 8192 and a request for 8000 share the same bucket. Each
// bucket holds a bounded free list; beyond the bound, returned buffers are
// dropped for the garbage collector to reclaim, which keeps a burst of
// parallel trials from pinning memory forever.
//
// Contract: a slice obtained from Float64/Complex128 is zeroed, has
// exactly the requested length, and must not be referenced after it is
// passed back to the matching Put function. Put accepts any slice (not
// only pooled ones); slices whose capacity is not a power of two are
// simply dropped.
package pool

import (
	"math/bits"
	"sync"
)

// maxBucket caps pooled capacities at 2^maxBucket elements (1 Mi); larger
// slices are allocated directly and dropped on Put.
const maxBucket = 20

// perBucketCap bounds each bucket's free list. Trial loops run at most
// ~GOMAXPROCS concurrent workers with a few live buffers each, so a small
// bound suffices; it exists to keep pathological Put storms from hoarding.
const perBucketCap = 64

// typedPool is a per-element-type set of buckets. The generic
// implementation keeps the float64 and complex128 pools structurally
// identical without reflection.
type typedPool[T any] struct {
	buckets [maxBucket + 1]struct {
		mu   sync.Mutex
		free [][]T
	}
}

// bucketFor returns the bucket index for a request of n elements, or -1
// when the size is unpoolable.
func bucketFor(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n); 1 -> 0
	if b > maxBucket {
		return -1
	}
	return b
}

func (p *typedPool[T]) get(n int) []T {
	b := bucketFor(n)
	if b < 0 {
		return make([]T, n)
	}
	bk := &p.buckets[b]
	bk.mu.Lock()
	if len(bk.free) > 0 {
		s := bk.free[len(bk.free)-1]
		bk.free = bk.free[:len(bk.free)-1]
		bk.mu.Unlock()
		s = s[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	bk.mu.Unlock()
	return make([]T, n, 1<<b)
}

func (p *typedPool[T]) put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return // not one of ours; let the GC have it
	}
	b := bits.Len(uint(c - 1))
	if c == 1 {
		b = 0
	}
	if b > maxBucket {
		return
	}
	bk := &p.buckets[b]
	bk.mu.Lock()
	if len(bk.free) < perBucketCap {
		bk.free = append(bk.free, s[:0])
	}
	bk.mu.Unlock()
}

var (
	f64Pool  typedPool[float64]
	c128Pool typedPool[complex128]
)

// Float64 returns a zeroed []float64 of length n from the pool.
func Float64(n int) []float64 { return f64Pool.get(n) }

// PutFloat64 returns a slice obtained from Float64 to the pool. The caller
// must not use s afterwards.
func PutFloat64(s []float64) { f64Pool.put(s) }

// Complex128 returns a zeroed []complex128 of length n from the pool.
func Complex128(n int) []complex128 { return c128Pool.get(n) }

// PutComplex128 returns a slice obtained from Complex128 to the pool. The
// caller must not use s afterwards.
func PutComplex128(s []complex128) { c128Pool.put(s) }
