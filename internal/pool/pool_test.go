package pool

import (
	"sync"
	"testing"
)

func TestFloat64ZeroedAndSized(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 1000, 8192} {
		s := Float64(n)
		if len(s) != n {
			t.Fatalf("n=%d: len %d", n, len(s))
		}
		if c := cap(s); c&(c-1) != 0 {
			t.Fatalf("n=%d: cap %d not a power of two", n, c)
		}
		for i, v := range s {
			if v != 0 {
				t.Fatalf("n=%d: s[%d]=%v not zeroed", n, i, v)
			}
		}
		PutFloat64(s)
	}
}

func TestRecycledBufferIsZeroed(t *testing.T) {
	s := Float64(64)
	for i := range s {
		s[i] = 1.5
	}
	PutFloat64(s)
	// The next same-bucket request may or may not get the same backing
	// array; either way it must be zeroed.
	s2 := Float64(60)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled s2[%d]=%v", i, v)
		}
	}
	PutFloat64(s2)
}

func TestPutForeignSlices(t *testing.T) {
	// Non-power-of-two capacity: dropped, not pooled — must not panic.
	PutFloat64(make([]float64, 5, 5))
	PutFloat64(nil)
	PutComplex128(make([]complex128, 3, 3))
	PutComplex128(nil)
	// Oversized: allocated directly, dropped on Put.
	big := Float64(1 << 22)
	if len(big) != 1<<22 {
		t.Fatalf("oversized len %d", len(big))
	}
	PutFloat64(big)
}

func TestComplex128RoundTrip(t *testing.T) {
	s := Complex128(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("len=%d cap=%d", len(s), cap(s))
	}
	s[0] = 3 + 4i
	PutComplex128(s)
	s2 := Complex128(128)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled s2[%d]=%v", i, v)
		}
	}
	PutComplex128(s2)
}

func TestConcurrentGetPut(t *testing.T) {
	// Hammer the pool from several goroutines; the race detector guards
	// the free lists, and each goroutine checks its buffers are zeroed.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		//ivn:allow goroutinehygiene deliberate raw-goroutine stress of the pool's free lists under -race
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 1 + (g*131+i*17)%4096
				s := Float64(n)
				dirty := false
				for k := range s {
					if s[k] != 0 {
						dirty = true
					}
					s[k] = float64(g)
				}
				PutFloat64(s)
				if dirty {
					t.Errorf("goroutine %d: dirty buffer", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, -1}, {0, -1}, {-3, -1},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
