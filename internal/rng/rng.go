// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized component in the IVN simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a figure
// regenerated twice from the same seed must produce identical rows. The
// standard library's global math/rand source is shared mutable state, so this
// package instead gives each component an explicit *Rand. Independent streams
// for parallel trials are derived with Split, which hashes a label into a new
// seed so that adding a trial never perturbs the stream of another.
//
// The core generator is xoshiro256** (Blackman & Vigna, 2018): 256 bits of
// state, period 2^256-1, passes BigCrush, and is allocation-free.
package rng

import "math"

// Rand is a deterministic random number generator. It is not safe for
// concurrent use; derive one per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Two generators constructed from
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state as if freshly constructed with New(seed).
func (r *Rand) Reseed(seed uint64) {
	// Expand the 64-bit seed into 256 bits of state with SplitMix64, as
	// recommended by the xoshiro authors. SplitMix64 is an equidistributed
	// generator, so any seed (including 0) yields a valid non-zero state.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// fnv1a hashes label bytes with FNV-1a. It is the one label hash shared
// by every split variant, so a string label and its byte rendering always
// derive the same child stream.
func fnv1a(label []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// fnv1aString is fnv1a over a string without converting it to []byte.
func fnv1aString(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// Split derives an independent generator from r and a label. The derived
// stream depends only on r's current state and the label, so the same
// (parent state, label) pair always yields the same child stream.
func (r *Rand) Split(label string) *Rand {
	// FNV-1a over the label, folded into a draw from the parent.
	return New(r.Uint64() ^ fnv1aString(label))
}

// SplitInto is Split into caller-owned storage: dst is reseeded to the
// exact stream Split(label) would return, with no allocation. The parent
// advances identically.
func (r *Rand) SplitInto(dst *Rand, label string) {
	dst.Reseed(r.Uint64() ^ fnv1aString(label))
}

// SplitBytesInto is SplitInto with the label given as bytes: identical
// label bytes yield the identical child stream, so hot paths can build
// labels in stack scratch (e.g. strconv.AppendInt) instead of fmt.Sprintf.
func (r *Rand) SplitBytesInto(dst *Rand, label []byte) {
	dst.Reseed(r.Uint64() ^ fnv1a(label))
}

// SplitIndexed derives an independent generator for trial index i. It is a
// convenience over Split for the common "one stream per trial" pattern and,
// unlike Split, does not advance the parent: the child seed is a pure
// function of the parent state and i, so parallel trial workers can derive
// their streams from a shared snapshot.
func (r *Rand) SplitIndexed(label string, i int) *Rand {
	child := &Rand{} // Reseed in SplitIndexedInto fully initializes it
	r.SplitIndexedInto(child, label, i)
	return child
}

// SplitIndexedInto is SplitIndexed into caller-owned storage: dst is
// reseeded to the exact stream SplitIndexed(label, i) would return, with
// no allocation. Like SplitIndexed it never mutates the parent, so
// parallel workers can derive trial streams into per-worker scratch from
// a shared snapshot.
func (r *Rand) SplitIndexedInto(dst *Rand, label string, i int) {
	h := fnv1aString(label)
	h ^= uint64(i) + 0x9e3779b97f4a7c15
	h *= 1099511628211
	// Mix with state without mutating it.
	dst.Reseed(h ^ rotl(r.s[0], 13) ^ r.s[3])
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// UniformRange returns a uniform value in [lo, hi).
func (r *Rand) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Phase returns a uniform phase in [0, 2π). This is the distribution of the
// unknown per-antenna offsets βᵢ in the CIB formulation (paper Eq. 5).
func (r *Rand) Phase() float64 {
	return 2 * math.Pi * r.Float64()
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Rayleigh returns a Rayleigh-distributed variate with scale sigma. Rayleigh
// amplitudes model non-line-of-sight multipath magnitude fading.
func (r *Rand) Rayleigh(sigma float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// ComplexCircular returns a zero-mean circularly-symmetric complex Gaussian
// with the given standard deviation per real dimension. This is the standard
// model for rich-scattering channel taps and thermal noise samples.
func (r *Rand) ComplexCircular(sigma float64) complex128 {
	return complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
}

// UnitPhasor returns e^{jθ} with θ uniform in [0, 2π).
func (r *Rand) UnitPhasor() complex128 {
	th := r.Phase()
	s, c := math.Sincos(th)
	return complex(c, s)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
