package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d != %d", i, av, bv)
		}
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	// xoshiro would be stuck if the state were all-zero; SplitMix64 expansion
	// must prevent that.
	var all uint64
	for i := 0; i < 64; i++ {
		all |= r.Uint64()
	}
	if all == 0 {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ≈%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	a := parent.Split("alpha")
	b := parent.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams agree on %d/100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(123).Split("trial")
	b := New(123).Split("trial")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-label splits diverged at draw %d", i)
		}
	}
}

func TestSplitIndexedDoesNotAdvanceParent(t *testing.T) {
	a, b := New(4), New(4)
	_ = a.SplitIndexed("w", 0)
	_ = a.SplitIndexed("w", 1)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitIndexed mutated the parent stream")
		}
	}
}

func TestSplitIndexedDistinctPerIndex(t *testing.T) {
	parent := New(4)
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		v := parent.SplitIndexed("trial", i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("indices %d and %d produced identical first draws", prev, i)
		}
		seen[v] = i
	}
}

func TestPhaseRange(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		p := r.Phase()
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("Phase() = %v out of [0,2π)", p)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean, variance := sum/n, sumSq/n
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestRayleighMean(t *testing.T) {
	r := New(41)
	const n = 200000
	sigma := 2.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Rayleigh(sigma)
	}
	want := sigma * math.Sqrt(math.Pi/2)
	if got := sum / n; math.Abs(got-want) > 0.02*want {
		t.Fatalf("Rayleigh mean = %v, want ≈%v", got, want)
	}
}

func TestUnitPhasorMagnitude(t *testing.T) {
	r := New(51)
	for i := 0; i < 10000; i++ {
		z := r.UnitPhasor()
		if m := real(z)*real(z) + imag(z)*imag(z); math.Abs(m-1) > 1e-12 {
			t.Fatalf("|UnitPhasor()|² = %v, want 1", m)
		}
	}
}

func TestComplexCircularMoments(t *testing.T) {
	r := New(61)
	const n = 100000
	sigma := 0.7
	var re, im, pow float64
	for i := 0; i < n; i++ {
		z := r.ComplexCircular(sigma)
		re += real(z)
		im += imag(z)
		pow += real(z)*real(z) + imag(z)*imag(z)
	}
	if math.Abs(re/n) > 0.02 || math.Abs(im/n) > 0.02 {
		t.Fatalf("complex mean = (%v, %v), want ≈0", re/n, im/n)
	}
	wantPow := 2 * sigma * sigma
	if got := pow / n; math.Abs(got-wantPow) > 0.05*wantPow {
		t.Fatalf("E|z|² = %v, want ≈%v", got, wantPow)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(71)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(81)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(91)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUniformRange(t *testing.T) {
	r := New(93)
	f := func(a, b int8) bool {
		lo, hi := float64(a), float64(a)+float64(uint8(b))+1
		v := r.UniformRange(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}

// TestSplitIntoMatchesSplit pins the scratch variants to the allocating
// originals: identical parents and labels must yield bit-identical child
// streams and identical parent advancement.
func TestSplitIntoMatchesSplit(t *testing.T) {
	labels := []string{"", "cib", "blind", "tag", "pll-0", "pll-17", "range-0.123456"}
	for _, label := range labels {
		a, b := New(42), New(42)
		want := a.Split(label)
		var got Rand
		b.SplitInto(&got, label)
		for i := 0; i < 64; i++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("SplitInto(%q) diverges at draw %d: %x vs %x", label, i, w, g)
			}
		}
		// Parent advancement must match too.
		if w, g := a.Uint64(), b.Uint64(); w != g {
			t.Fatalf("SplitInto(%q) advanced the parent differently: %x vs %x", label, w, g)
		}
	}
}

// TestSplitBytesIntoMatchesSplit checks the byte-label form hashes
// identically to the string form.
func TestSplitBytesIntoMatchesSplit(t *testing.T) {
	for _, label := range []string{"pll-0", "pll-9", "dl-3", "x"} {
		a, b := New(7), New(7)
		want := a.Split(label)
		var got Rand
		b.SplitBytesInto(&got, []byte(label))
		for i := 0; i < 32; i++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("SplitBytesInto(%q) diverges at draw %d", label, i)
			}
		}
	}
}

// TestSplitIndexedIntoMatchesSplitIndexed pins the indexed scratch variant
// and its non-advancing contract.
func TestSplitIndexedIntoMatchesSplitIndexed(t *testing.T) {
	parent := New(11)
	for i := 0; i < 20; i++ {
		want := parent.SplitIndexed("gain-trial", i)
		var got Rand
		parent.SplitIndexedInto(&got, "gain-trial", i)
		for d := 0; d < 32; d++ {
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("SplitIndexedInto(i=%d) diverges at draw %d", i, d)
			}
		}
	}
	// Deriving children must not have advanced the parent.
	fresh := New(11)
	if parent.Uint64() != fresh.Uint64() {
		t.Fatal("SplitIndexedInto advanced the parent")
	}
}

// TestSplitVariantsAllocationFree pins the whole point of the Into forms.
func TestSplitVariantsAllocationFree(t *testing.T) {
	parent := New(3)
	var child Rand
	label := []byte("pll-4")
	allocs := testing.AllocsPerRun(100, func() {
		parent.SplitInto(&child, "cib")
		parent.SplitBytesInto(&child, label)
		parent.SplitIndexedInto(&child, "gain-trial", 7)
	})
	if allocs != 0 {
		t.Fatalf("split scratch variants allocate %.0f times per round, want 0", allocs)
	}
}
