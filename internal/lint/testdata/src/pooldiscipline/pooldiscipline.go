// Fixture corpus for the pooldiscipline analyzer.
package pooldiscipline

import "ivn/internal/pool"

func consume(s []float64) float64 { return s[0] }

// leaksOnEarlyReturn forgets the Put on the error-shaped path.
func leaksOnEarlyReturn(n int, bad bool) float64 {
	buf := pool.Float64(n)
	if bad {
		return 0 // want `pooled buffer "buf" .* not released at this return`
	}
	s := buf[0]
	pool.PutFloat64(buf)
	return s
}

// escapes hands the pool's backing array to the caller.
func escapes(n int) []float64 {
	buf := pool.Float64(n)
	return buf // want `pooled buffer "buf" escapes via return`
}

// escapesChan publishes the buffer to another goroutine.
func escapesChan(n int, ch chan []float64) {
	buf := pool.Float64(n)
	ch <- buf // want `pooled buffer "buf" escapes via channel send`
}

// leaksAtFunctionEnd never releases at all.
func leaksAtFunctionEnd(n int) {
	buf := pool.Float64(n)
	buf[0] = 1
} // want `pooled buffer "buf" .* not released at function end`

// overwritten loses the first buffer by reacquiring into the same name.
func overwritten(n int) {
	buf := pool.Float64(n)
	buf = pool.Float64(2 * n) // want `overwritten by a new acquisition`
	pool.PutFloat64(buf)
}

// unbound consumes a pooled buffer with nothing to Put.
func unbound(n int) {
	consume(pool.Float64(n)) // want `without a local binding`
}

// leaksInLoop acquires fresh scratch every iteration and never returns it.
func leaksInLoop(n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		buf := pool.Float64(n)
		acc += consume(buf)
	} // want `not released at end of loop iteration`
	return acc
}

// balanced is the canonical correct shape: no findings.
func balanced(n int, bad bool) float64 {
	buf := pool.Float64(n)
	if bad {
		pool.PutFloat64(buf)
		return 0
	}
	s := consume(buf)
	pool.PutFloat64(buf)
	return s
}

// deferred covers every path with one defer: no findings.
func deferred(n int, bad bool) float64 {
	buf := pool.Float64(n)
	defer pool.PutFloat64(buf)
	if bad {
		return 0
	}
	return consume(buf)
}

// resliced keeps ownership through a reslice: no findings.
func resliced(n int) float64 {
	buf := pool.Float64(n)
	buf = buf[:n/2]
	s := consume(buf)
	pool.PutFloat64(buf)
	return s
}

// loopBalanced releases inside each iteration: no findings.
func loopBalanced(n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		buf := pool.Float64(n)
		acc += consume(buf)
		pool.PutFloat64(buf)
	}
	return acc
}

// transfer is the sanctioned ownership handoff, suppressed with a reason.
func transfer(n int) []float64 {
	buf := pool.Float64(n)
	buf[0] = 1
	//ivn:allow pooldiscipline fixture: ownership transfers to the caller by documented contract
	return buf
}

// corruptReturnsCopy is the fault-injection shape: pooled scratch stages
// the corrupted payload, a fresh copy leaves, the scratch goes back. No
// findings.
func corruptReturnsCopy(bits []float64) []float64 {
	buf := pool.Float64(len(bits))
	copy(buf, bits)
	buf[0] = -buf[0]
	out := append([]float64(nil), buf...)
	pool.PutFloat64(buf)
	return out
}

// corruptLeaksScratch hands the pooled scratch out as the corrupted
// payload — the caller now owns pool memory it never acquired.
func corruptLeaksScratch(bits []float64) []float64 {
	buf := pool.Float64(len(bits))
	copy(buf, bits)
	buf[0] = -buf[0]
	return buf // want `pooled buffer "buf" escapes via return`
}

// retryLeaksOnSuccess is the decode-with-retry shape gone wrong: each
// attempt acquires scratch, but the success path returns without the Put.
func retryLeaksOnSuccess(attempts int) float64 {
	for a := 0; a < attempts; a++ {
		buf := pool.Float64(8)
		if s := consume(buf); s > 0 {
			return s // want `pooled buffer "buf" .* not released at this return`
		}
		pool.PutFloat64(buf)
	}
	return 0
}

// runner stands in for the engine scheduler: it invokes fn once per
// index (sequentially here; concurrency is the runner's concern, not the
// fixture's).
func runner(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// measureClosureBalanced is the trial-engine measure shape: per-trial
// scratch acquired and released inside the scheduler callback. The
// literal is analyzed as its own unit. No findings.
func measureClosureBalanced(n int) []float64 {
	out := make([]float64, n)
	runner(n, func(i int) {
		buf := pool.Float64(16)
		out[i] = consume(buf)
		pool.PutFloat64(buf)
	})
	return out
}

// measureClosureLeaks skips the Put on the callback's early-out path —
// one leaked buffer per scheduled trial.
func measureClosureLeaks(n int, skip bool) []float64 {
	out := make([]float64, n)
	runner(n, func(i int) {
		buf := pool.Float64(16)
		if skip {
			return // want `pooled buffer "buf" .* not released at this return`
		}
		out[i] = consume(buf)
		pool.PutFloat64(buf)
	})
	return out
}

// measureClosureEscapes publishes pooled scratch through the result
// slice the callback writes into — the pool can recycle the backing
// array while the aggregation stage still reads it.
func measureClosureEscapes(n int, ch chan []float64) {
	runner(n, func(i int) {
		buf := pool.Float64(16)
		buf[0] = float64(i)
		ch <- buf // want `pooled buffer "buf" escapes via channel send`
	})
}

// measureClosureDeferred covers every callback path with one defer: no
// findings.
func measureClosureDeferred(n int, skip bool) []float64 {
	out := make([]float64, n)
	runner(n, func(i int) {
		buf := pool.Float64(16)
		defer pool.PutFloat64(buf)
		if skip {
			return
		}
		out[i] = consume(buf)
	})
	return out
}

// prepareOnceShared is the sanctioned batched-sweep shape: the point's
// invariant context is staged in pooled scratch once, borrowed read-only
// by every trial callback the runner schedules, and released only after
// the runner has drained all trials. Passing a held buffer to an
// ordinary call is a borrow — neither a release nor an escape — so the
// analyzer accepts the whole prepare → share → Put sequence. No
// findings.
func prepareOnceShared(points, trialsPerPoint int) []float64 {
	out := make([]float64, points)
	for p := 0; p < points; p++ {
		ctx := pool.Float64(64) // the point's Prepare result
		ctx[0] = float64(p)
		runner(trialsPerPoint, func(i int) {
			out[p] += consume(ctx) // trials borrow the shared context
		})
		pool.PutFloat64(ctx)
	}
	return out
}

// prepareOnceEscapes breaks the contract on the share side: the prepared
// context itself leaves through the sweep's result, so the pool can hand
// its backing array to the next point's Prepare while the caller still
// reads this one.
func prepareOnceEscapes(trialsPerPoint int) []float64 {
	ctx := pool.Float64(64)
	runner(trialsPerPoint, func(i int) {
		ctx[0] += float64(i)
	})
	return ctx // want `pooled buffer "ctx" escapes via return`
}

// prepareOnceReacquired mutates the shared context's identity mid-sweep:
// re-Preparing into the same name before the Put strands the first
// point's buffer while trials of that point may still alias it.
func prepareOnceReacquired(points, trialsPerPoint int) {
	ctx := pool.Float64(64)
	for p := 0; p < points; p++ {
		runner(trialsPerPoint, func(i int) {
			consume(ctx)
		})
		ctx = pool.Float64(64) // want `overwritten by a new acquisition`
	}
	pool.PutFloat64(ctx)
}

// prepareOnceLeaksOnError forgets the release on the sweep's error-shaped
// exit: the prepared context of the failing point never returns to the
// pool.
func prepareOnceLeaksOnError(points, trialsPerPoint int, bad bool) float64 {
	var acc float64
	for p := 0; p < points; p++ {
		ctx := pool.Float64(64)
		runner(trialsPerPoint, func(i int) {
			acc += consume(ctx)
		})
		if bad {
			return 0 // want `pooled buffer "ctx" .* not released at this return`
		}
		pool.PutFloat64(ctx)
	}
	return acc
}

// release is a derived putter: it Puts its parameter, discharging the
// caller's obligation through one call level.
func release(buf []float64) {
	pool.PutFloat64(buf)
}

// pair is a derived getter with a two-result ownership mask.
func pair(n int) ([]float64, []float64) {
	a := pool.Float64(n)
	b := pool.Float64(n)
	//ivn:allow pooldiscipline fixture: ownership of both buffers transfers to the caller
	return a, b
}

// derivedCallerBalanced inherits the Put obligation from transfer and
// honors it: no findings.
func derivedCallerBalanced(n int) float64 {
	buf := transfer(n)
	s := consume(buf)
	pool.PutFloat64(buf)
	return s
}

// derivedCallerLeaks forgets the obligation transfer handed over.
func derivedCallerLeaks(n int) float64 {
	buf := transfer(n)
	s := consume(buf)
	return s // want `pooled buffer "buf" .* not released at this return`
}

// derivedTupleBalanced tracks both owned results of pair: no findings.
func derivedTupleBalanced(n int) float64 {
	a, b := pair(n)
	s := consume(a) + consume(b)
	pool.PutFloat64(a)
	pool.PutFloat64(b)
	return s
}

// derivedTupleLeaksSecond Puts only the first owned result.
func derivedTupleLeaksSecond(n int) float64 {
	a, b := pair(n)
	s := consume(a) + consume(b)
	pool.PutFloat64(a)
	return s // want `pooled buffer "b" .* not released at this return`
}

// derivedPutterDischarges releases through the helper: no findings.
func derivedPutterDischarges(n int) float64 {
	buf := transfer(n)
	s := consume(buf)
	release(buf)
	return s
}

// derivedEscape re-exports the inherited buffer without its own
// annotation.
func derivedEscape(n int) []float64 {
	buf := transfer(n)
	return buf // want `pooled buffer "buf" escapes via return`
}

// derivedUnbound consumes a derived getter's buffer with nothing to Put.
func derivedUnbound(n int) {
	consume(transfer(n)) // want `without a local binding`
}

// derivedBlankDiscard drops an owned result into the blank identifier.
func derivedBlankDiscard(n int) {
	_, b := pair(n) // want `pooled buffer assigned to "_" cannot be tracked`
	pool.PutFloat64(b)
}

// retryBalanced releases on both the success and the retry path: no
// findings.
func retryBalanced(attempts int) float64 {
	for a := 0; a < attempts; a++ {
		buf := pool.Float64(8)
		if s := consume(buf); s > 0 {
			pool.PutFloat64(buf)
			return s
		}
		pool.PutFloat64(buf)
	}
	return 0
}

// mergeLoopBalanced is the fragment-merge shape: pooled scratch decodes
// each fragment's samples and goes back before the next acquisition.
// No findings.
func mergeLoopBalanced(sizes []int) float64 {
	var sum float64
	for _, n := range sizes {
		buf := pool.Float64(n)
		sum += consume(buf)
		pool.PutFloat64(buf)
	}
	return sum
}

// mergeLoopLeaksOnError bails out of the merge mid-loop with the
// iteration's scratch still checked out.
func mergeLoopLeaksOnError(sizes []int) (float64, bool) {
	var sum float64
	for _, n := range sizes {
		buf := pool.Float64(n)
		s := consume(buf)
		if s < 0 {
			return 0, false // want `pooled buffer "buf" .* not released at this return`
		}
		sum += s
		pool.PutFloat64(buf)
	}
	return sum, true
}
