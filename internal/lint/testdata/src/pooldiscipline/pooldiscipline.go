// Fixture corpus for the pooldiscipline analyzer.
package pooldiscipline

import "ivn/internal/pool"

func consume(s []float64) float64 { return s[0] }

// leaksOnEarlyReturn forgets the Put on the error-shaped path.
func leaksOnEarlyReturn(n int, bad bool) float64 {
	buf := pool.Float64(n)
	if bad {
		return 0 // want `pooled buffer "buf" .* not released at this return`
	}
	s := buf[0]
	pool.PutFloat64(buf)
	return s
}

// escapes hands the pool's backing array to the caller.
func escapes(n int) []float64 {
	buf := pool.Float64(n)
	return buf // want `pooled buffer "buf" escapes via return`
}

// escapesChan publishes the buffer to another goroutine.
func escapesChan(n int, ch chan []float64) {
	buf := pool.Float64(n)
	ch <- buf // want `pooled buffer "buf" escapes via channel send`
}

// leaksAtFunctionEnd never releases at all.
func leaksAtFunctionEnd(n int) {
	buf := pool.Float64(n)
	buf[0] = 1
} // want `pooled buffer "buf" .* not released at function end`

// overwritten loses the first buffer by reacquiring into the same name.
func overwritten(n int) {
	buf := pool.Float64(n)
	buf = pool.Float64(2 * n) // want `overwritten by a new acquisition`
	pool.PutFloat64(buf)
}

// unbound consumes a pooled buffer with nothing to Put.
func unbound(n int) {
	consume(pool.Float64(n)) // want `without a local binding`
}

// leaksInLoop acquires fresh scratch every iteration and never returns it.
func leaksInLoop(n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		buf := pool.Float64(n)
		acc += consume(buf)
	} // want `not released at end of loop iteration`
	return acc
}

// balanced is the canonical correct shape: no findings.
func balanced(n int, bad bool) float64 {
	buf := pool.Float64(n)
	if bad {
		pool.PutFloat64(buf)
		return 0
	}
	s := consume(buf)
	pool.PutFloat64(buf)
	return s
}

// deferred covers every path with one defer: no findings.
func deferred(n int, bad bool) float64 {
	buf := pool.Float64(n)
	defer pool.PutFloat64(buf)
	if bad {
		return 0
	}
	return consume(buf)
}

// resliced keeps ownership through a reslice: no findings.
func resliced(n int) float64 {
	buf := pool.Float64(n)
	buf = buf[:n/2]
	s := consume(buf)
	pool.PutFloat64(buf)
	return s
}

// loopBalanced releases inside each iteration: no findings.
func loopBalanced(n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		buf := pool.Float64(n)
		acc += consume(buf)
		pool.PutFloat64(buf)
	}
	return acc
}

// transfer is the sanctioned ownership handoff, suppressed with a reason.
func transfer(n int) []float64 {
	buf := pool.Float64(n)
	buf[0] = 1
	//ivn:allow pooldiscipline fixture: ownership transfers to the caller by documented contract
	return buf
}
