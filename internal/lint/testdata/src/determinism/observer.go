// Observer-shaped fixtures: trace events must be stamped from the
// simulated air clock, never the wall clock — a time.Now timestamp makes
// every trace file differ between identical runs.
package determinism

import "time"

// traceEvent mirrors the shape of a session-layer trace event.
type traceEvent struct {
	T    float64
	Kind string
}

// simClock mirrors the session trace clock: advanced by frame durations.
type simClock struct{ now float64 }

func (c *simClock) advance(dt float64) { c.now += dt }

// stampFromWallClock is the forbidden pattern: an event timestamped from
// the host's clock.
func stampFromWallClock() traceEvent {
	return traceEvent{
		T:    float64(time.Now().UnixNano()) / 1e9, // want "time.Now is nondeterministic"
		Kind: "command-sent",
	}
}

// stampFromSimClock is the sanctioned pattern: the clock derives from
// simulated durations, so identical seeds give identical streams.
func stampFromSimClock(c *simClock, frameDuration float64) traceEvent {
	c.advance(frameDuration)
	return traceEvent{T: c.now, Kind: "command-sent"}
}

// observerLatency shows the escape hatch for wall-clock use that feeds
// diagnostics only, never an event stream.
func observerLatency() time.Duration {
	//ivn:allow determinism fixture: wall-clock feeds a profiling counter, never an event timestamp
	start := time.Now()
	return time.Since(start)
}
