// Fixture corpus for the determinism analyzer: true positives carry
// `// want` expectations; the suppressed case shows the sanctioned
// //ivn:allow escape hatch.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func topLevelRand() int {
	return rand.Intn(10) // want "use of math/rand.Intn outside internal/rng"
}

func globalFloat() float64 {
	return rand.Float64() // want "use of math/rand.Float64 outside internal/rng"
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now is nondeterministic"
}

func mapOrderLeaks(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order feeds slice "out"`
		out = append(out, v)
	}
	return out
}

// mapOrderSorted is the sanctioned collect-then-sort pattern: no finding.
func mapOrderSorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// mapOrderLocal appends to a slice declared inside the loop: order cannot
// leak out, so no finding.
func mapOrderLocal(m map[string]int) int {
	total := 0
	for _, v := range m {
		row := []int{v}
		total += row[0]
	}
	return total
}

// suppressedClock demonstrates a sanctioned exception.
func suppressedClock() int64 {
	//ivn:allow determinism fixture: wall-clock feeds a log line only, never a table
	return time.Now().UnixNano()
}

// timeDuration uses the time package without Now: no finding.
func timeDuration() time.Duration {
	return 5 * time.Second
}
