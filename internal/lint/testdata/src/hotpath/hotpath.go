// Fixture corpus for the hotpath analyzer: transitive allocation through
// a two-deep callee chain, the pooled-scratch and append-reuse
// exemptions, interface boxing, dynamic dispatch, and extern calls.
package hotpath

import (
	"math"
	"strconv"

	"ivn/internal/pool"
)

// kernel reaches an allocation two calls down.
//
//ivn:hotpath
func kernel(dst []float64, n int) {
	for i := range dst {
		dst[i] = helper(i)
	}
	deep(dst, n)
}

// helper is allocation-free on its own.
func helper(i int) float64 {
	return float64(i * i)
}

// deep is one level below the root.
func deep(dst []float64, n int) {
	inner(dst, n)
}

// inner holds the allocation the root must be blamed for.
func inner(dst []float64, n int) {
	tmp := make([]float64, n) // want `hot path .*kernel: make\(\[\]float64\) allocates \(path: .*kernel → .*deep → .*inner\)`
	copy(dst, tmp)
}

// pooled exercises the pooled-scratch exemption: pool Get/Put amortize
// their internal growth, so the closure stays provably alloc-free.
//
//ivn:hotpath
func pooled(dst []float64, n int) {
	scratch := pool.Float64(n)
	for i := range dst {
		dst[i] += scratch[i%len(scratch)]
	}
	pool.PutFloat64(scratch)
}

// reuses exercises the append(x[:0], ...) recycled-capacity exemption.
//
//ivn:hotpath
func reuses(dst []float64, x float64) []float64 {
	return append(dst[:0], x)
}

// grows appends without recycling capacity.
//
//ivn:hotpath
func grows(dst []float64, x float64) []float64 {
	return append(dst, x) // want `hot path .*grows: append may grow its backing array`
}

// boxing stores a concrete float into an interface.
//
//ivn:hotpath
func boxing(v float64) any {
	var sink any
	sink = v // want `hot path .*boxing: assignment boxes float64 into interface`
	return sink
}

// dynamic cannot be proven through a function value.
//
//ivn:hotpath
func dynamic(f func() float64) float64 {
	return f() // want `hot path .*dynamic: dynamic call \(function value or interface method\) cannot be proven allocation-free`
}

// extern calls outside the module (and off the allowlist) are assumed to
// allocate.
//
//ivn:hotpath
func extern(x float64) int {
	return len(strconv.FormatFloat(x, 'g', -1, 64)) // want `hot path .*extern: calls strconv.FormatFloat outside the analyzable module`
}

// mathOK: the math allowlist is assumed allocation-free. No findings.
//
//ivn:hotpath
func mathOK(x float64) float64 {
	return math.Sqrt(x)
}

// allowed demonstrates a reasoned suppression on a cold acquisition.
//
//ivn:hotpath
func allowed(n int) []float64 {
	//ivn:allow hotpath one-time table build at startup, outside the steady-state loop
	return make([]float64, n)
}

// unmarked is not a root: its allocation is nobody's finding.
func unmarked(n int) []float64 {
	return make([]float64, n)
}
