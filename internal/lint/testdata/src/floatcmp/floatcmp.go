// Fixture corpus for the floatcmp analyzer.
package floatcmp

func badEq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func badNeq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func badComplex(a, b complex128) bool {
	return a == b // want `floating-point == comparison`
}

func badLiteral(a float64) bool {
	return a == 0.3 // want `floating-point == comparison`
}

// zeroGuard compares against the exact-zero sentinel: exempt by design.
func zeroGuard(a float64) bool {
	return a == 0
}

func zeroGuardNeq(a float64) bool {
	return 0.0 != a
}

// intCmp is integer equality: out of scope.
func intCmp(a, b int) bool {
	return a == b
}

// constFold compares two compile-time constants: exact, exempt.
func constFold() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// ordered comparisons are fine.
func ordered(a, b float64) bool {
	return a < b || a > b
}

// suppressed shows the sanctioned escape hatch.
func suppressed(a, b float64) bool {
	//ivn:allow floatcmp fixture: operands are exact integers by construction
	return a == b
}
