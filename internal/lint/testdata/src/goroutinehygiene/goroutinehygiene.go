// Fixture corpus for the goroutinehygiene analyzer.
package goroutinehygiene

import (
	"sync"
	"sync/atomic"
)

// rogue launches a raw goroutine outside any sanctioned runner.
func rogue() {
	done := make(chan struct{})
	go func() { close(done) }() // want `goroutine launched outside a sanctioned runner`
	<-done
}

// addInsideGoroutine races Add against Wait. The launch itself is
// suppressed so the Add check is exercised in isolation.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	//ivn:allow goroutinehygiene fixture: isolating the WaitGroup.Add check
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
		defer wg.Done()
	}()
	wg.Wait()
}

// forEachIndexed is a sanctioned runner by name, in the engine scheduler's
// shape: a bounded worker count claiming indices from an atomic counter.
// Its launches are clean, and its Add-before-spawn is the required form.
// No findings.
func forEachIndexed(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// boundedPoolUnsanctioned is the identical worker-pool shape under an
// unsanctioned name: a correct structure does not buy a raw launch.
func boundedPoolUnsanctioned(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // want `goroutine launched outside a sanctioned runner`
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// poolAddInsideWorker buries the WaitGroup.Add inside the worker body —
// Wait can return before any worker registers. The launch is suppressed
// so the Add check is exercised on the scheduler shape in isolation.
func poolAddInsideWorker(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		//ivn:allow goroutinehygiene fixture: isolating the Add-inside-worker check
		go func() {
			wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// suppressedLaunch is a sanctioned one-shot exception.
func suppressedLaunch() {
	done := make(chan struct{})
	//ivn:allow goroutinehygiene fixture: deliberate one-shot goroutine with join below
	go func() { close(done) }()
	<-done
}

// injector stands in for a shared stateless fault injector.
type injector struct{}

func (injector) schedule(int) string { return "" }

// injectorFanOutRaw fans trial workers out over a shared injector with a
// raw launch instead of the bounded runner.
func injectorFanOutRaw(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		go func(w int) { // want `goroutine launched outside a sanctioned runner`
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}

// injectorFanOutSanctioned routes the same fan-out through the bounded
// runner: no findings.
func injectorFanOutSanctioned(inj injector, out []string) {
	forEachIndexed(len(out), 2, func(w int) {
		out[w] = inj.schedule(w)
	})
}

// injectorFanOutSuppressed is the determinism-test exception: raw
// concurrent access to the shared injector is the point of the test, so
// the launch carries an annotation. No findings.
func injectorFanOutSuppressed(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		//ivn:allow goroutinehygiene fixture: deliberate raw concurrent access to the shared injector, joined below
		go func(w int) {
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}

// --- HTTP-service shapes (the ivnsimd daemon's patterns) ---

// request/response stand in for net/http's types so the fixture stays
// dependency-free; the analyzer only cares about the go statements.
type request struct{}
type responseWriter interface{ write([]byte) }

// handlerFireAndForget spawns per-request work with nothing joining it:
// the classic handler leak — the response returns while the goroutine
// still runs, and a burst of requests is an unbounded spawn.
func handlerFireAndForget(w responseWriter, r *request) {
	go func() { // want `goroutine launched outside a sanctioned runner`
		w.write([]byte("done"))
	}()
}

// handlerPerRequestWorker launches one goroutine per request even
// though it joins: the spawn rate is still request-driven, so the raw
// launch is flagged all the same.
func handlerPerRequestWorker(w responseWriter, r *request) {
	done := make(chan struct{})
	go func() { // want `goroutine launched outside a sanctioned runner`
		defer close(done)
		w.write([]byte("done"))
	}()
	<-done
}

// jobQueue is a daemon-shaped service: a fixed worker pool draining a
// bounded channel, joined by a WaitGroup at close. The pool size is set
// once at construction — not per request — which is why the annotated
// launch is the sanctioned form for service code.
type jobQueue struct {
	queue chan func()
	wg    sync.WaitGroup
}

// startWorkers is the sanctioned daemon shape: Add before spawn, fixed
// fan-out, joined in close. No findings on the annotated launch.
func (q *jobQueue) startWorkers(workers int) {
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		//ivn:allow goroutinehygiene fixture: fixed-size service worker pool joined by wg in close
		go func() {
			defer q.wg.Done()
			for job := range q.queue {
				job()
			}
		}()
	}
}

// startWorkersRaw is the same pool without the annotation: service code
// must declare its worker pools, not launch them silently.
func (q *jobQueue) startWorkersRaw(workers int) {
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() { // want `goroutine launched outside a sanctioned runner`
			defer q.wg.Done()
			for job := range q.queue {
				job()
			}
		}()
	}
}

// startWorkersAddInside both launches raw and registers late: two
// findings on one line, the worst service-pool shape.
func (q *jobQueue) startWorkersAddInside(workers int) {
	for i := 0; i < workers; i++ {
		//ivn:allow goroutinehygiene fixture: isolating the Add-inside-worker check on the pool shape
		go func() {
			q.wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
			defer q.wg.Done()
			for job := range q.queue {
				job()
			}
		}()
	}
}

// close drains the pool; no goroutines, no findings.
func (q *jobQueue) close() {
	close(q.queue)
	q.wg.Wait()
}

// journalSink is the checkpoint-journal writer shape: one mutex-guarded
// append per entry, committed on the caller's goroutine.
type journalSink struct {
	mu    sync.Mutex
	lines [][]byte
}

func (s *journalSink) append(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, line)
}

// journalFromWorkers records trial contributions from the sanctioned
// runner's workers: the journal write happens inline in the worker, so
// an entry is durable the moment the trial that produced it returns.
// No findings.
func journalFromWorkers(n, workers int, sink *journalSink) {
	forEachIndexed(n, workers, func(i int) {
		sink.append([]byte{byte(i)})
	})
}

// journalBackgroundFlusher funnels entries through a raw flusher
// goroutine instead. Beyond the unsanctioned launch, the shape is wrong
// for a crash journal: entries sit in the channel after the trials that
// produced them finish, so a kill loses committed work.
func journalBackgroundFlusher(entries chan []byte, sink *journalSink) {
	go func() { // want `goroutine launched outside a sanctioned runner`
		for line := range entries {
			sink.append(line)
		}
	}()
}
