// Fixture corpus for the goroutinehygiene analyzer.
package goroutinehygiene

import "sync"

// rogue launches a raw goroutine outside any sanctioned runner.
func rogue() {
	done := make(chan struct{})
	go func() { close(done) }() // want `goroutine launched outside a sanctioned runner`
	<-done
}

// addInsideGoroutine races Add against Wait. The launch itself is
// suppressed so the Add check is exercised in isolation.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	//ivn:allow goroutinehygiene fixture: isolating the WaitGroup.Add check
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
		defer wg.Done()
	}()
	wg.Wait()
}

// forEachIndexed is a sanctioned runner by name: its launches are clean,
// and its Add-before-spawn is the required shape. No findings.
func forEachIndexed(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// suppressedLaunch is a sanctioned one-shot exception.
func suppressedLaunch() {
	done := make(chan struct{})
	//ivn:allow goroutinehygiene fixture: deliberate one-shot goroutine with join below
	go func() { close(done) }()
	<-done
}

// injector stands in for a shared stateless fault injector.
type injector struct{}

func (injector) schedule(int) string { return "" }

// injectorFanOutRaw fans trial workers out over a shared injector with a
// raw launch instead of the bounded runner.
func injectorFanOutRaw(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		go func(w int) { // want `goroutine launched outside a sanctioned runner`
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}

// injectorFanOutSanctioned routes the same fan-out through the bounded
// runner: no findings.
func injectorFanOutSanctioned(inj injector, out []string) {
	forEachIndexed(len(out), func(w int) {
		out[w] = inj.schedule(w)
	})
}

// injectorFanOutSuppressed is the determinism-test exception: raw
// concurrent access to the shared injector is the point of the test, so
// the launch carries an annotation. No findings.
func injectorFanOutSuppressed(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		//ivn:allow goroutinehygiene fixture: deliberate raw concurrent access to the shared injector, joined below
		go func(w int) {
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}
