// Fixture corpus for the goroutinehygiene analyzer.
package goroutinehygiene

import (
	"sync"
	"sync/atomic"
)

// rogue launches a raw goroutine outside any sanctioned runner.
func rogue() {
	done := make(chan struct{})
	go func() { close(done) }() // want `goroutine launched outside a sanctioned runner`
	<-done
}

// addInsideGoroutine races Add against Wait. The launch itself is
// suppressed so the Add check is exercised in isolation.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	//ivn:allow goroutinehygiene fixture: isolating the WaitGroup.Add check
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
		defer wg.Done()
	}()
	wg.Wait()
}

// forEachIndexed is a sanctioned runner by name, in the engine scheduler's
// shape: a bounded worker count claiming indices from an atomic counter.
// Its launches are clean, and its Add-before-spawn is the required form.
// No findings.
func forEachIndexed(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// boundedPoolUnsanctioned is the identical worker-pool shape under an
// unsanctioned name: a correct structure does not buy a raw launch.
func boundedPoolUnsanctioned(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // want `goroutine launched outside a sanctioned runner`
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// poolAddInsideWorker buries the WaitGroup.Add inside the worker body —
// Wait can return before any worker registers. The launch is suppressed
// so the Add check is exercised on the scheduler shape in isolation.
func poolAddInsideWorker(n, workers int, fn func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		//ivn:allow goroutinehygiene fixture: isolating the Add-inside-worker check
		go func() {
			wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// suppressedLaunch is a sanctioned one-shot exception.
func suppressedLaunch() {
	done := make(chan struct{})
	//ivn:allow goroutinehygiene fixture: deliberate one-shot goroutine with join below
	go func() { close(done) }()
	<-done
}

// injector stands in for a shared stateless fault injector.
type injector struct{}

func (injector) schedule(int) string { return "" }

// injectorFanOutRaw fans trial workers out over a shared injector with a
// raw launch instead of the bounded runner.
func injectorFanOutRaw(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		go func(w int) { // want `goroutine launched outside a sanctioned runner`
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}

// injectorFanOutSanctioned routes the same fan-out through the bounded
// runner: no findings.
func injectorFanOutSanctioned(inj injector, out []string) {
	forEachIndexed(len(out), 2, func(w int) {
		out[w] = inj.schedule(w)
	})
}

// injectorFanOutSuppressed is the determinism-test exception: raw
// concurrent access to the shared injector is the point of the test, so
// the launch carries an annotation. No findings.
func injectorFanOutSuppressed(inj injector, out []string) {
	var wg sync.WaitGroup
	for w := range out {
		wg.Add(1)
		//ivn:allow goroutinehygiene fixture: deliberate raw concurrent access to the shared injector, joined below
		go func(w int) {
			defer wg.Done()
			out[w] = inj.schedule(w)
		}(w)
	}
	wg.Wait()
}
