// Fixture corpus for the unitcheck analyzer: every annotation shape, the
// reportable mixes, and the sanctioned link-budget idioms that must stay
// silent.
package unitcheck

// chain carries one annotated field per dimension the checker tracks.
type chain struct {
	GainDB float64 //ivn:unit dB
	P1dBm  float64 //ivn:unit dBm
	PowerW float64 //ivn:unit W
	FreqHz float64 //ivn:unit Hz
	//ivn:unit rad/s
	Omega   float64
	AmpRoot float64 //ivn:unit sqrtW
	GainDBi float64 //ivn:unit dBi
}

// mixesDBLinear adds a log-domain gain to linear watts.
func mixesDBLinear(c chain) float64 {
	return c.GainDB + c.PowerW // want `mixes dB-domain dB with linear W`
}

// addsAbsolute sums two absolute power levels.
func addsAbsolute(a, b chain) float64 {
	return a.P1dBm + b.P1dBm // want `adds two absolute dBm levels`
}

// hzVsRadPerS is the 2π trap.
func hzVsRadPerS(c chain) float64 {
	return c.FreqHz + c.Omega // want `mixes Hz with rad/s`
}

// phaseDelay expects angular frequency.
//
//ivn:unit omega rad/s
//ivn:unit t s
//ivn:unit return rad
func phaseDelay(omega, t float64) float64 {
	return omega * t
}

// callsWithHz passes a cyclic frequency where rad/s is declared.
func callsWithHz(c chain) float64 {
	return phaseDelay(c.FreqHz, 1e-6) // want `argument 1 of phaseDelay is annotated rad/s but gets Hz`
}

// badReturn returns a relative gain from an absolute-level function.
//
//ivn:unit return dBm
func badReturn(c chain) float64 {
	return c.GainDB // want `returns dB where the result is annotated dBm`
}

// fieldMismatch seeds a literal field with the wrong scale.
func fieldMismatch(c chain) chain {
	return chain{P1dBm: c.PowerW} // want `field P1dBm is annotated dBm but gets W`
}

// assignMismatch writes linear watts into a dBm slot.
func assignMismatch(c *chain) {
	c.P1dBm = c.PowerW // want `assigns W to a destination annotated dBm`
}

// comparesAcrossDomains orders a level against linear power.
func comparesAcrossDomains(c chain) bool {
	return c.P1dBm > c.PowerW // want `compares dB-domain dBm with linear W`
}

// inferenceFlows tracks a dim through a := local.
func inferenceFlows(c chain) float64 {
	level := c.P1dBm
	return level + c.PowerW // want `mixes dB-domain dBm with linear W`
}

// eirp is the sanctioned absolute + antenna-gain combination; dBi is
// relative to the isotropic radiator, so P + G stays dBm. No findings.
//
//ivn:unit p dBm
//ivn:unit g dBi
//ivn:unit return dBm
func eirp(p, g float64) float64 {
	return p + g
}

// margin subtracts two absolute levels into a relative gain. No findings.
//
//ivn:unit rx dBm
//ivn:unit floor dBm
//ivn:unit return dB
func margin(rx, floor float64) float64 {
	return rx - floor
}

// subtractsAbsoluteFromRelative is the reversed, meaningless direction.
func subtractsAbsoluteFromRelative(c chain) float64 {
	return c.GainDB - c.P1dBm // want `subtracts absolute dBm from relative dB`
}

// amplitudeSquared: sqrtW·sqrtW is W; accepted into a W slot. No findings.
func amplitudeSquared(c *chain) {
	c.PowerW = c.AmpRoot * c.AmpRoot
}

// constScaling: bare constants adapt to either operand. No findings.
func constScaling(c chain) float64 {
	return 2*c.FreqHz + c.FreqHz
}

// conversionPreserves: a type conversion keeps the quantity. No findings.
func conversionPreserves(c chain) float64 {
	return float64(c.FreqHz) + c.FreqHz
}

// unannotatedStaysSilent: unknown dims never report. No findings.
func unannotatedStaysSilent(x, y float64) float64 {
	return x + y
}
