// Fixture corpus for the errcheck analyzer.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func mayFailValue() (int, error) { return 0, nil }

func discardsBare() {
	mayFail() // want `discarded error from .*mayFail`
}

func discardsTuple() {
	mayFailValue() // want `discarded error from .*mayFailValue`
}

// handled, propagated, and explicitly-discarded errors are all fine.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	n, err := mayFailValue()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// allowlisted calls: fmt printing and never-failing builders.
func allowlisted() string {
	fmt.Println("diagnostic")
	var sb strings.Builder
	sb.WriteString("ok")
	return sb.String()
}

// pure calls without error results are out of scope.
func pure() {
	strings.ToUpper("x")
}

// suppressed shows the sanctioned escape hatch.
func suppressed() {
	//ivn:allow errcheck fixture: best-effort cleanup, failure is benign
	mayFail()
}
