package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes the per-function fact store the interprocedural
// analyzers share. Facts come in two flavors:
//
//   - direct facts, read straight off a function body: allocation sites,
//     wall-clock reads, global-rand usage, pool Get/Put flow;
//   - transitive facts, propagated over the call graph to fixpoint:
//     "may allocate anywhere in its closure", "may read the wall clock",
//     "may consume global rand", plus the derived pool-ownership facts
//     (a function that returns a pooled slice is a getter in its own
//     right; a function that Puts its parameter is a putter).
//
// All lattices are finite and monotone (bool taints ordered false < true;
// ownership bitsets only grow), so every worklist terminates.

// FactSite is one body-level occurrence of a fact: a position plus a
// human-readable description used verbatim in findings.
type FactSite struct {
	Pos  token.Pos
	What string
}

// FuncFacts holds the computed facts for one call-graph node.
type FuncFacts struct {
	// Allocs lists the direct heap-allocation sites in the body:
	// make/new, growing append, slice/map composite literals, &literal,
	// string concatenation and conversions, capturing closures, method
	// values, interface boxing of non-pointer values, go statements,
	// and map writes. The `append(x[:0], ...)` reuse idiom is exempt
	// (growth amortizes into recycled capacity), as are constants boxed
	// into interfaces (the compiler materializes those statically).
	Allocs []FactSite
	// WallClock lists direct reads of the wall clock (time.Now & co).
	WallClock []FactSite
	// GlobalRand lists direct uses of the process-global math/rand state.
	GlobalRand []FactSite

	// OwnsResult[i] is true when the i-th result carries pool ownership:
	// the function obtained the value from internal/pool (directly or via
	// another owning function) and returns it un-Put, transferring the
	// release obligation to its caller.
	OwnsResult []bool
	// ReleasesParam[j] is true when the function releases its j-th
	// parameter back to the pool (directly or via another releasing
	// function), discharging the caller's obligation.
	ReleasesParam []bool

	// MayAlloc / MayReadClock / MayUseGlobalRand are the transitive
	// closures: true when the function or anything reachable from it over
	// static call edges exhibits the fact. Dynamic calls and calls into
	// packages outside the graph (other than the allocation-free
	// assumption set) taint MayAlloc conservatively.
	MayAlloc         bool
	MayReadClock     bool
	MayUseGlobalRand bool
}

// Facts is the module-wide fact store, keyed like the call graph.
type Facts struct {
	Graph *CallGraph
	Per   map[FuncID]*FuncFacts
}

// allocFreeExternPkgs are packages outside the graph whose functions are
// assumed allocation-free. Everything else external is conservatively
// treated as a potential allocator.
var allocFreeExternPkgs = map[string]bool{
	"math":       true,
	"math/bits":  true,
	"math/cmplx": true,
}

// poolPkgPath reports whether path is the project's scratch pool — its
// Get/Put surface is exempt from allocation accounting by design (the
// pooled-scratch contract amortizes its internal growth).
func poolPkgPath(path string) bool {
	return path == poolPkgSuffix || strings.HasSuffix(path, "/"+poolPkgSuffix)
}

// assumedAllocFree reports whether a call into pkg (outside the graph or
// exempt from descent) may be assumed allocation-free.
func assumedAllocFree(pkg string) bool {
	return allocFreeExternPkgs[pkg] || poolPkgPath(pkg)
}

// sortedNodeIDs returns the graph's node IDs in lexical order, so every
// fixpoint iterates deterministically.
func sortedNodeIDs(g *CallGraph) []FuncID {
	ids := make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// computeFacts builds the fact store for g and runs every transitive
// lattice to fixpoint.
func computeFacts(g *CallGraph) *Facts {
	fc := &Facts{Graph: g, Per: make(map[FuncID]*FuncFacts, len(g.Nodes))}
	for id, n := range g.Nodes {
		ff := &FuncFacts{}
		collectDirectFacts(g, n, ff)
		fc.Per[id] = ff
	}
	fc.fixpointPool()
	fc.fixpointTaints()
	return fc
}

// ownership reports the OwnsResult mask for a statically resolved callee,
// covering both the direct pool getters and derived owners. Nil when the
// callee transfers no ownership.
func (fc *Facts) ownership(fn *types.Func) []bool {
	if fn == nil {
		return nil
	}
	if isPoolGetter(fn) {
		return []bool{true}
	}
	if ff := fc.Per[FuncID(fn.FullName())]; ff != nil {
		return ff.OwnsResult
	}
	return nil
}

// releases reports the ReleasesParam mask for a statically resolved
// callee, covering direct pool putters and derived releasers.
func (fc *Facts) releases(fn *types.Func) []bool {
	if fn == nil {
		return nil
	}
	if isPoolPutter(fn) {
		return []bool{true}
	}
	if ff := fc.Per[FuncID(fn.FullName())]; ff != nil {
		return ff.ReleasesParam
	}
	return nil
}

// fixpointTaints propagates MayAlloc / MayReadClock / MayUseGlobalRand
// backwards over the reverse call edges until nothing changes.
func (fc *Facts) fixpointTaints() {
	var work []FuncID
	for _, id := range sortedNodeIDs(fc.Graph) {
		n := fc.Graph.Nodes[id]
		ff := fc.Per[id]
		ff.MayAlloc = len(ff.Allocs) > 0 || len(n.Dynamic) > 0
		ff.MayReadClock = len(ff.WallClock) > 0
		ff.MayUseGlobalRand = len(ff.GlobalRand) > 0
		for _, e := range n.Calls {
			if fc.Graph.Nodes[e.Callee] == nil && !assumedAllocFree(e.CalleePkg) {
				ff.MayAlloc = true
			}
		}
		if ff.MayAlloc || ff.MayReadClock || ff.MayUseGlobalRand {
			work = append(work, id)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		src := fc.Per[id]
		for _, caller := range fc.Graph.Callers[id] {
			dst := fc.Per[caller]
			changed := false
			if src.MayAlloc && !dst.MayAlloc {
				dst.MayAlloc, changed = true, true
			}
			if src.MayReadClock && !dst.MayReadClock {
				dst.MayReadClock, changed = true, true
			}
			if src.MayUseGlobalRand && !dst.MayUseGlobalRand {
				dst.MayUseGlobalRand, changed = true, true
			}
			if changed {
				work = append(work, caller)
			}
		}
	}
}

// fixpointPool iterates the derived getter/putter analysis until the
// ownership masks stop growing. Each round rescans every body with the
// masks from the previous round, so ownership flows through helper
// chains of any depth.
func (fc *Facts) fixpointPool() {
	for changed := true; changed; {
		changed = false
		for _, id := range sortedNodeIDs(fc.Graph) {
			n := fc.Graph.Nodes[id]
			ff := fc.Per[id]
			owns, rels := derivePoolFlow(n, fc)
			if growMask(&ff.OwnsResult, owns) {
				changed = true
			}
			if growMask(&ff.ReleasesParam, rels) {
				changed = true
			}
		}
	}
}

// growMask ORs src into *dst, growing it as needed; reports whether any
// bit newly turned on.
func growMask(dst *[]bool, src []bool) bool {
	changed := false
	for i, b := range src {
		if !b {
			continue
		}
		for len(*dst) <= i {
			*dst = append(*dst, false)
		}
		if !(*dst)[i] {
			(*dst)[i] = true
			changed = true
		}
	}
	return changed
}

// derivePoolFlow scans n's body once, flow-insensitively, for the
// ownership signature: which results leave carrying pooled values, and
// which parameters get released. A value that is Put anywhere in the body
// is not treated as owned-on-return (the common get/use/put shape), which
// keeps the overapproximation from inventing obligations for callers.
func derivePoolFlow(n *Node, fc *Facts) (owns, rels []bool) {
	info := n.Pkg.Info
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	owns = make([]bool, sig.Results().Len())
	rels = make([]bool, sig.Params().Len())

	paramIndex := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = i
	}

	held := map[*types.Var]bool{}   // vars holding pooled values
	putted := map[*types.Var]bool{} // vars released somewhere in the body

	mark := func(lhs []ast.Expr, masks []bool) {
		for i, b := range masks {
			if !b || i >= len(lhs) {
				continue
			}
			id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if v := lhsVar(info, id); v != nil {
				held[v] = true
			}
		}
	}
	// Two passes over the same body: the first discovers held/putted
	// vars regardless of statement order, the second reads the returns
	// against the complete picture. The outer fixpoint handles
	// cross-function ordering.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.AssignStmt:
				if len(node.Rhs) == 1 {
					if call, ok := node.Rhs[0].(*ast.CallExpr); ok {
						mark(node.Lhs, fc.ownership(calleeFunc(info, call)))
					}
				} else if len(node.Lhs) == len(node.Rhs) {
					for i, r := range node.Rhs {
						if call, ok := r.(*ast.CallExpr); ok {
							masks := fc.ownership(calleeFunc(info, call))
							if len(masks) == 1 && masks[0] {
								mark(node.Lhs[i:i+1], masks)
							}
						}
					}
				}
			case *ast.CallExpr:
				masks := fc.releases(calleeFunc(info, node))
				for j, b := range masks {
					if !b || j >= len(node.Args) {
						continue
					}
					id, ok := ast.Unparen(node.Args[j]).(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := info.Uses[id].(*types.Var)
					if !ok {
						continue
					}
					putted[v] = true
					if pi, isParam := paramIndex[v]; isParam {
						rels[pi] = true
					}
				}
			case *ast.ReturnStmt:
				for i, res := range node.Results {
					if i >= len(owns) {
						break
					}
					id, ok := ast.Unparen(res).(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := info.Uses[id].(*types.Var)
					if ok && held[v] && !putted[v] {
						owns[i] = true
					}
				}
			}
			return true
		})
	}
	return owns, rels
}

// collectDirectFacts scans n's body for the direct fact sites.
func collectDirectFacts(g *CallGraph, n *Node, ff *FuncFacts) {
	info := n.Pkg.Info

	// Calls into time and global math/rand, read off the resolved edges.
	for _, e := range n.Calls {
		name := shortFuncName(e.Callee)
		switch e.CalleePkg {
		case "time":
			switch name {
			case "Now", "Since", "Until", "Tick", "After", "NewTicker", "NewTimer":
				ff.WallClock = append(ff.WallClock, FactSite{e.Pos, "time." + name})
			}
		case "math/rand", "math/rand/v2":
			if !strings.Contains(string(e.Callee), ")") { // package-level, not a *Rand method
				ff.GlobalRand = append(ff.GlobalRand, FactSite{e.Pos, e.CalleePkg + "." + name})
			}
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		ff.Allocs = append(ff.Allocs, FactSite{pos, fmt.Sprintf(format, args...)})
	}

	// Selectors and identifiers consumed as a call's Fun: method CALLS,
	// not method VALUES.
	callFunSels := map[*ast.SelectorExpr]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				callFunSels[sel] = true
			}
		}
		return true
	})

	// checkBoxing is suppressed for callees that hotpath will already
	// flag wholesale (dynamic dispatch, unprovable externals): one
	// finding per site is enough, and it keeps every finding for a bad
	// call on the call's own line where a single //ivn:allow covers it.
	boxingWorthChecking := func(fn *types.Func) bool {
		if fn == nil || interfaceMethod(fn) {
			return false
		}
		if _, inGraph := g.Nodes[FuncID(fn.FullName())]; inGraph {
			return true
		}
		return assumedAllocFree(funcPkgPath(fn))
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[node.Fun]; ok && tv.IsType() {
				if conversionAllocates(info, node) {
					report(node.Pos(), "conversion to %s allocates", typeLabel(info.TypeOf(node.Fun)))
				}
				return true
			}
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "make":
						report(node.Pos(), "make(%s) allocates", typeExprString(node.Args[0]))
					case "new":
						report(node.Pos(), "new(%s) allocates", typeExprString(node.Args[0]))
					case "append":
						if !isReuseAppend(info, node) {
							report(node.Pos(), "append may grow its backing array (reuse recycled capacity via append(x[:0], ...) or annotate)")
						}
					}
					return true
				}
			}
			if fn := calleeFunc(info, node); boxingWorthChecking(fn) {
				checkCallBoxing(info, node, fn, report)
			}
		case *ast.GoStmt:
			report(node.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates")
			case *types.Map:
				report(node.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(info.TypeOf(node)) && constValue(info, node) == nil {
				report(node.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if captured := capturedVars(info, node); len(captured) > 0 {
				report(node.Pos(), "closure captures %s; allocates", strings.Join(captured, ", "))
			}
		case *ast.SelectorExpr:
			if callFunSels[node] {
				return true
			}
			if sel, ok := info.Selections[node]; ok && sel.Kind() == types.MethodVal {
				report(node.Pos(), "method value %s allocates a bound closure", node.Sel.Name)
			}
		case *ast.AssignStmt:
			checkAssignBoxing(info, node, report)
			for _, l := range node.Lhs {
				if ix, ok := l.(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						report(node.Pos(), "map write may allocate")
					}
				}
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(info, n, node, report)
		}
		return true
	})
}

// constValue returns the constant value of e, or nil if e is not
// constant-folded.
func constValue(info *types.Info, e ast.Expr) interface{} {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	return nil
}

// isReuseAppend recognizes the amortized reuse idiom append(x[:0], ...):
// appending into a zero-length reslice of recycled capacity.
func isReuseAppend(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return false
	}
	if sl.Low != nil && !isConstZero(info, sl.Low) {
		return false
	}
	return sl.High != nil && isConstZero(info, sl.High)
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// conversionAllocates reports whether a type conversion copies its
// operand to the heap: string ↔ []byte/[]rune round trips, non-string →
// string, and boxing conversions into interface types. Constant operands
// are folded statically and exempt.
func conversionAllocates(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	arg := call.Args[0]
	if constValue(info, arg) != nil {
		return false
	}
	dst := info.TypeOf(call.Fun)
	src := info.TypeOf(arg)
	if dst == nil || src == nil {
		return false
	}
	if types.IsInterface(dst) {
		return boxes(info, arg, dst)
	}
	dstStr, srcStr := isStringType(dst), isStringType(src)
	dstBytes, srcBytes := isByteOrRuneSlice(dst), isByteOrRuneSlice(src)
	return (dstStr && srcBytes) || (dstBytes && srcStr) || (dstStr && !srcStr)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturedVars returns the names of variables a function literal captures
// from its enclosing function, sorted by first use and deduplicated. A
// literal with no captures compiles to a static closure and is
// allocation-free.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level var: referenced, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// checkCallBoxing flags non-constant, non-pointer-shaped arguments passed
// to interface-typed parameters.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, fn *types.Func, report func(token.Pos, string, ...any)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // slice passed through verbatim; no per-element boxing
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if boxes(info, arg, pt) {
			report(arg.Pos(), "argument boxes %s into interface %s; allocates", typeLabel(info.TypeOf(arg)), typeLabel(pt))
		}
	}
}

// checkAssignBoxing flags assignments that box a concrete value into an
// interface-typed destination.
func checkAssignBoxing(info *types.Info, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := info.TypeOf(as.Lhs[i])
		if boxes(info, as.Rhs[i], lt) {
			report(as.Rhs[i].Pos(), "assignment boxes %s into interface %s; allocates", typeLabel(info.TypeOf(as.Rhs[i])), typeLabel(lt))
		}
	}
}

// checkReturnBoxing flags returns that box a concrete value into an
// interface-typed result.
func checkReturnBoxing(info *types.Info, n *Node, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, res := range ret.Results {
		if i >= sig.Results().Len() {
			break
		}
		rt := sig.Results().At(i).Type()
		if boxes(info, res, rt) {
			report(res.Pos(), "return boxes %s into interface %s; allocates", typeLabel(info.TypeOf(res)), typeLabel(rt))
		}
	}
}

// boxes reports whether storing expr into a destination of type dst heap-
// allocates an interface box: dst is an interface, expr's concrete type
// is not pointer-shaped, and expr is not a constant (constants box to
// static data). Nil values and interface-to-interface moves don't box.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// typeLabel renders t with bare package names for findings.
func typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// typeExprString renders a type expression for findings without needing
// type information.
func typeExprString(e ast.Expr) string {
	var b strings.Builder
	writeTypeExpr(&b, e)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.ArrayType:
		b.WriteString("[]")
		writeTypeExpr(b, e.Elt)
	case *ast.MapType:
		b.WriteString("map[")
		writeTypeExpr(b, e.Key)
		b.WriteString("]")
		writeTypeExpr(b, e.Value)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, e.X)
	case *ast.SelectorExpr:
		writeTypeExpr(b, e.X)
		b.WriteString(".")
		b.WriteString(e.Sel.Name)
	case *ast.ChanType:
		b.WriteString("chan ")
		writeTypeExpr(b, e.Value)
	default:
		b.WriteString("T")
	}
}

// shortFuncName extracts the bare function/method name from a FuncID.
func shortFuncName(id FuncID) string {
	s := string(id)
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}
