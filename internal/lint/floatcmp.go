package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point (or complex) operands.
// Equality on computed floats is almost always a rounding-sensitive bug in
// a simulator whose tables are compared bit-for-bit; the sanctioned
// alternatives are the tolerance helpers in internal/stats (or an explicit
// math.Abs(a-b) <= eps).
//
// Two comparisons are exempt by design:
//
//   - against an exact-zero constant (`x == 0`): zero is a sentinel the
//     code uses for "unset/empty" and is exactly representable, so the
//     guard is intentional and safe;
//   - between two compile-time constants: the comparison is evaluated
//     exactly by the compiler.
//
// Test files are out of scope — golden tests intentionally compare exact
// formatted values.
var FloatCmp = &Analyzer{
	Name:      "floatcmp",
	Doc:       "no ==/!= on floating-point operands outside tests",
	SkipTests: true,
	Run:       runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xtv, xok := pass.Info.Types[bin.X]
			ytv, yok := pass.Info.Types[bin.Y]
			if !xok || !yok {
				return true
			}
			if !isFloatish(xtv.Type) && !isFloatish(ytv.Type) {
				return true
			}
			if xtv.Value != nil && ytv.Value != nil {
				return true // constant-folded by the compiler, exact
			}
			if isExactZero(xtv.Value) || isExactZero(ytv.Value) {
				return true // zero-sentinel guard
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison; use the internal/stats tolerance helpers (exact-zero sentinel checks are exempt)", bin.Op)
			return true
		})
	}
}

// isFloatish reports whether t is (or is based on) a float or complex type.
func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether a constant value is exactly zero.
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
