package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a throwaway module for graph and fact tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadProgram loads relDir of the module at root and builds the
// interprocedural program over it plus the loader's retained imports.
func loadProgram(t *testing.T, root, relDir, importPath string) *Program {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(filepath.Join(root, relDir), importPath)
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram(pkgs, l.Support())
}

// TestCallGraphCrossPackage pins the property the whole engine rests on:
// a call into another module-local package resolves to an edge whose
// callee node exists (the loader retains the dependency's bodies), even
// though the two packages were type-checked as separate instances.
func TestCallGraphCrossPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": `package a

func Leaf(x int) int { return x + 1 }
`,
		"b/b.go": `package b

import "example.com/m/a"

func Calls(x int) int { return a.Leaf(x) }
`,
	})
	prog := loadProgram(t, root, "b", "example.com/m/b")
	caller := prog.Graph.Nodes[FuncID("example.com/m/b.Calls")]
	if caller == nil {
		t.Fatal("caller node missing")
	}
	var edge *CallEdge
	for i := range caller.Calls {
		if caller.Calls[i].Callee == FuncID("example.com/m/a.Leaf") {
			edge = &caller.Calls[i]
		}
	}
	if edge == nil {
		t.Fatalf("no cross-package edge to a.Leaf; edges: %v", caller.Calls)
	}
	if edge.CalleePkg != "example.com/m/a" {
		t.Errorf("CalleePkg = %q", edge.CalleePkg)
	}
	if prog.Graph.Nodes[edge.Callee] == nil {
		t.Error("callee node not retained from the support package")
	}
	callers := prog.Graph.Callers[FuncID("example.com/m/a.Leaf")]
	if len(callers) != 1 || callers[0] != caller.ID {
		t.Errorf("reverse edge = %v", callers)
	}
}

// TestCallGraphMethodValuesAndRecursion distinguishes method calls
// (Calls edges) from method values (Refs), and checks that recursion —
// direct and mutual — neither loses edges nor loops the traversal.
func TestCallGraphMethodValuesAndRecursion(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": `package a

type T struct{ n int }

func (t T) M() int { return t.n }

func Ref() func() int {
	var t T
	return t.M
}

func CallsM(t T) int { return t.M() }

func Rec(n int) int {
	if n == 0 {
		return 0
	}
	return Rec(n - 1)
}

func Mut1(n int) int {
	if n == 0 {
		return 0
	}
	return Mut2(n - 1)
}

func Mut2(n int) int { return Mut1(n) }
`,
	})
	prog := loadProgram(t, root, "a", "example.com/m/a")
	g := prog.Graph
	method := FuncID("(example.com/m/a.T).M")

	ref := g.Nodes[FuncID("example.com/m/a.Ref")]
	if ref == nil {
		t.Fatal("Ref node missing")
	}
	for _, e := range ref.Calls {
		if e.Callee == method {
			t.Error("method value recorded as a call edge")
		}
	}
	foundRef := false
	for _, e := range ref.Refs {
		if e.Callee == method {
			foundRef = true
		}
	}
	if !foundRef {
		t.Errorf("method value not in Refs: %v", ref.Refs)
	}

	callsM := g.Nodes[FuncID("example.com/m/a.CallsM")]
	foundCall := false
	for _, e := range callsM.Calls {
		if e.Callee == method {
			foundCall = true
		}
	}
	if !foundCall {
		t.Errorf("method call not in Calls: %v", callsM.Calls)
	}

	rec := FuncID("example.com/m/a.Rec")
	closure, _ := g.Reachable(rec)
	if !closure[rec] || len(closure) != 1 {
		t.Errorf("Rec closure = %v", closure)
	}
	mut1 := FuncID("example.com/m/a.Mut1")
	mut2 := FuncID("example.com/m/a.Mut2")
	closure, parent := g.Reachable(mut1)
	if !closure[mut1] || !closure[mut2] {
		t.Errorf("mutual recursion closure = %v", closure)
	}
	chain := Chain(mut1, mut2, parent)
	if len(chain) != 2 || chain[0] != mut1 || chain[1] != mut2 {
		t.Errorf("chain = %v", chain)
	}
}

// TestFactsFixpoint checks the derived pool facts and the transitive
// taints through two-deep helper chains.
func TestFactsFixpoint(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"internal/pool/pool.go": `package pool

func Float64(n int) []float64 { return make([]float64, n) }

func PutFloat64(s []float64) {}
`,
		"k/k.go": `package k

import (
	"math/rand"
	"time"

	"example.com/m/internal/pool"
)

func get(n int) []float64 {
	b := pool.Float64(n)
	return b
}

func get2(n int) []float64 {
	b := get(n)
	return b
}

func put(b []float64) {
	pool.PutFloat64(b)
}

func put2(b []float64) {
	put(b)
}

func clocky() int64 { return time.Now().UnixNano() }

func viaClock() int64 { return clocky() }

func randy() float64 { return rand.Float64() }

func pure(x int) int { return x * 2 }
`,
	})
	prog := loadProgram(t, root, "k", "example.com/m/k")
	facts := prog.Facts
	ff := func(name string) *FuncFacts {
		t.Helper()
		f := facts.Per[FuncID("example.com/m/k."+name)]
		if f == nil {
			t.Fatalf("no facts for %s", name)
		}
		return f
	}
	for _, name := range []string{"get", "get2"} {
		owns := ff(name).OwnsResult
		if len(owns) != 1 || !owns[0] {
			t.Errorf("%s.OwnsResult = %v, want [true]", name, owns)
		}
	}
	for _, name := range []string{"put", "put2"} {
		rels := ff(name).ReleasesParam
		if len(rels) != 1 || !rels[0] {
			t.Errorf("%s.ReleasesParam = %v, want [true]", name, rels)
		}
	}
	if len(ff("clocky").WallClock) != 1 {
		t.Errorf("clocky.WallClock = %v", ff("clocky").WallClock)
	}
	if !ff("viaClock").MayReadClock {
		t.Error("viaClock: transitive wall-clock taint missing")
	}
	if !ff("randy").MayUseGlobalRand {
		t.Error("randy: global-rand taint missing")
	}
	p := ff("pure")
	if p.MayAlloc || p.MayReadClock || p.MayUseGlobalRand {
		t.Errorf("pure tainted: %+v", p)
	}
}

// TestStaleSuppression checks satellite behavior end to end: an
// //ivn:allow that no longer matches any finding is itself a finding —
// but only when its analyzer actually ran.
func TestStaleSuppression(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"s/s.go": `package s

func ok(x float64) float64 {
	//ivn:allow floatcmp historical comparison long since rewritten
	return x + 1
}

func cmp(a, b float64) bool {
	//ivn:allow floatcmp exact comparison is this function's contract
	return a == b
}
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(filepath.Join(root, "s"), "example.com/m/s")
	if err != nil {
		t.Fatal(err)
	}
	res := RunAnalyzersDetailed(pkgs, l.Support(), []*Analyzer{FloatCmp}, RunOptions{ReportStale: true})
	var stale []Finding
	for _, f := range res.Findings {
		if !strings.Contains(f.Message, "stale suppression") {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		stale = append(stale, f)
	}
	if len(stale) != 1 || stale[0].Line != 4 {
		t.Fatalf("want exactly the line-4 suppression reported stale, got %v", stale)
	}

	// The same package under an analyzer set without floatcmp: the site's
	// liveness is unknowable, so nothing is reported.
	res = RunAnalyzersDetailed(pkgs, l.Support(), []*Analyzer{ErrCheck}, RunOptions{ReportStale: true})
	if len(res.Findings) != 0 {
		t.Errorf("stale reported without its analyzer in the run set: %v", res.Findings)
	}
}

// TestUnitIndexMalformed covers the annotation-grammar errors the fixture
// corpus cannot express inline (the finding lands on the directive's own
// line, where a want marker cannot sit).
func TestUnitIndexMalformed(t *testing.T) {
	src := `package u

var d float64 //ivn:unit parsec

//ivn:unit dB

var detached float64

//ivn:unit q Hz
func noSuchParam(x float64) float64 { return x }

//ivn:unit return W
func noResults() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "u.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := &unitIndex{objects: map[string]string{}, funcs: map[string]*unitSig{}}
	idx.indexFile(fset, f)
	wantSubstrings := []string{
		`unknown unit "parsec"`,
		"attaches to no declaration",
		`names no parameter "q"`,
		"on a function with no results",
	}
	if len(idx.malformed) != len(wantSubstrings) {
		t.Fatalf("want %d malformed findings, got %d: %v", len(wantSubstrings), len(idx.malformed), idx.malformed)
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, m := range idx.malformed {
			if strings.Contains(m.Message, sub) {
				found = true
			}
			if m.Analyzer != "unitcheck" {
				t.Errorf("malformed finding attributed to %q: %s", m.Analyzer, m.Message)
			}
		}
		if !found {
			t.Errorf("no malformed finding with substring %q in %v", sub, idx.malformed)
		}
	}
}
