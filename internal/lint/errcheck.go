package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that silently discard an error result.
// A simulator that swallows an error publishes a table computed from a
// half-finished run; every error either propagates, is handled, or is
// discarded *explicitly* with `_ =` so the decision is visible in review.
//
// Allowlisted calls are ones whose error is constitutionally uninteresting:
// fmt printing (diagnostic output; a failed stdout write has no recovery)
// and the never-failing writers of strings.Builder and bytes.Buffer.
// Deferred calls are out of scope (a `defer f.Close()` on a read path is
// conventional). Test files are exempt.
var ErrCheck = &Analyzer{
	Name:      "errcheck",
	Doc:       "no silently discarded error returns",
	SkipTests: true,
	Run:       runErrCheck,
}

// errAllowlist holds full names ((*pkg.Type).Method or pkg.Func) whose
// error results may be dropped.
var errAllowlist = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,

	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass.Info, call) {
				return true
			}
			name := calleeFullName(pass.Info, call)
			if errAllowlist[name] {
				return true
			}
			if name == "" {
				name = "call"
			}
			pass.Reportf(call.Pos(), "discarded error from %s; handle it, propagate it, or assign to _ explicitly", name)
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFullName formats the called function as pkg.Func or
// (*pkg.Type).Method, matching types.Func.FullName.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}
