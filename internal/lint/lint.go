// Package lint implements ivnlint, the simulator's domain-specific static
// analysis suite.
//
// The compiler and go vet cannot see the invariants this repository's
// correctness rests on: published tables must be byte-reproducible (no
// wall-clock, no global math/rand, no map-order-dependent rows), pooled
// scratch buffers must be returned on every path and must never outlive
// their function, goroutines belong on the sanctioned bounded runners, and
// floating-point values are never compared with ==. Each analyzer in this
// package enforces one of those invariants over the type-checked AST,
// using only the standard library's go/ast, go/parser, go/token and
// go/types — the module stays offline-buildable with zero dependencies.
//
// Findings can be silenced case-by-case with a suppression comment on the
// offending line or the line directly above it:
//
//	//ivn:allow <analyzer> <reason>
//
// The reason is mandatory; a bare suppression is itself reported. The
// cmd/ivnlint driver prints findings as file:line:col diagnostics or as
// JSON, and exits non-zero when any survive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer names the check that fired (e.g. "determinism").
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as the loader saw it.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation and the sanctioned alternative.
	Message string `json:"message"`
}

// String formats the finding as a conventional compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named check. Run inspects the pass's files and reports
// violations through pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in reports and //ivn:allow comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// SkipTests excludes *_test.go files from the pass.
	SkipTests bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass is the per-(package, analyzer) view handed to Run.
type Pass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Files is the syntax to inspect, already filtered by SkipTests.
	Files []*ast.File
	// Info is the package's type-checking result.
	Info *types.Info

	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		PoolDiscipline,
		FloatCmp,
		GoroutineHygiene,
		ErrCheck,
	}
}

// AnalyzerByName resolves a name from the suite, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//ivn:allow"

// suppression is one parsed //ivn:allow comment.
type suppression struct {
	analyzer string
	reason   string
}

// fileSuppressions scans a file's comments for //ivn:allow directives. The
// returned map associates each covered line — the comment's own line and
// the line directly below it — with the analyzers allowed there. Malformed
// directives (unknown analyzer, missing reason) come back as findings so a
// suppression can never silently rot.
func fileSuppressions(fset *token.FileSet, f *ast.File) (map[int][]suppression, []Finding) {
	covered := map[int][]suppression{}
	var malformed []Finding
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		malformed = append(malformed, Finding{
			Analyzer: "ivnlint",
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				report(c.Pos(), "malformed suppression: expected //ivn:allow <analyzer> <reason>")
				continue
			}
			name := fields[0]
			if AnalyzerByName(name) == nil {
				report(c.Pos(), fmt.Sprintf("suppression names unknown analyzer %q", name))
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
			if reason == "" {
				report(c.Pos(), fmt.Sprintf("suppression of %q needs a reason: //ivn:allow %s <why this is sanctioned>", name, name))
				continue
			}
			line := fset.Position(c.Pos()).Line
			s := suppression{analyzer: name, reason: reason}
			covered[line] = append(covered[line], s)
			covered[line+1] = append(covered[line+1], s)
		}
	}
	return covered, malformed
}

// RunAnalyzers executes every analyzer over every package, applies the
// //ivn:allow suppressions, and returns the surviving findings sorted by
// file, line, column and analyzer.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		// Suppression lines are per-file but keyed by (file, line);
		// positions already carry the filename, so one package-wide map
		// keyed by file+line suffices.
		type key struct {
			file string
			line int
		}
		allowed := map[key][]suppression{}
		for _, f := range pkg.Files {
			covered, malformed := fileSuppressions(pkg.Fset, f)
			all = append(all, malformed...)
			name := pkg.Fset.Position(f.Pos()).Filename
			for line, sups := range covered {
				allowed[key{name, line}] = append(allowed[key{name, line}], sups...)
			}
		}
		for _, an := range analyzers {
			files := pkg.Files
			if an.SkipTests {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if !pkg.IsTest[f] {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Files:    files,
				Info:     pkg.Info,
				analyzer: an,
			}
			an.Run(pass)
			for _, fd := range pass.findings {
				drop := false
				for _, s := range allowed[key{fd.File, fd.Line}] {
					if s.analyzer == fd.Analyzer {
						drop = true
						break
					}
				}
				if !drop {
					all = append(all, fd)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// objectPkgPath returns the package path of the object an identifier
// resolves to, or "" for locals, builtins and unresolved names.
func objectPkgPath(info *types.Info, id *ast.Ident) string {
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcUnits yields every function-like body in the files: declarations and
// function literals, each as its own unit (a literal's body is not part of
// its enclosing declaration's unit).
type funcUnit struct {
	// name is the declared name, or "" for literals.
	name string
	body *ast.BlockStmt
}

func funcUnits(files []*ast.File) []funcUnit {
	var units []funcUnit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					units = append(units, funcUnit{name: fn.Name.Name, body: fn.Body})
				}
			case *ast.FuncLit:
				units = append(units, funcUnit{body: fn.Body})
			}
			return true
		})
	}
	return units
}
