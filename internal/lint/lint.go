// Package lint implements ivnlint, the simulator's domain-specific static
// analysis suite.
//
// The compiler and go vet cannot see the invariants this repository's
// correctness rests on: published tables must be byte-reproducible (no
// wall-clock, no global math/rand, no map-order-dependent rows), pooled
// scratch buffers must be returned on every path and must never outlive
// their function, goroutines belong on the sanctioned bounded runners, and
// floating-point values are never compared with ==. Each analyzer in this
// package enforces one of those invariants over the type-checked AST,
// using only the standard library's go/ast, go/parser, go/token and
// go/types — the module stays offline-buildable with zero dependencies.
//
// Findings can be silenced case-by-case with a suppression comment on the
// offending line or the line directly above it:
//
//	//ivn:allow <analyzer> <reason>
//
// The reason is mandatory; a bare suppression is itself reported. The
// cmd/ivnlint driver prints findings as file:line:col diagnostics or as
// JSON, and exits non-zero when any survive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer names the check that fired (e.g. "determinism").
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as the loader saw it.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation and the sanctioned alternative.
	Message string `json:"message"`
}

// String formats the finding as a conventional compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named check. Run inspects the pass's files and reports
// violations through pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in reports and //ivn:allow comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// SkipTests excludes *_test.go files from the pass.
	SkipTests bool
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass is the per-(package, analyzer) view handed to Run.
type Pass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Files is the syntax to inspect, already filtered by SkipTests.
	Files []*ast.File
	// Info is the package's type-checking result.
	Info *types.Info
	// Prog is the module-wide interprocedural view: call graph, fact
	// store and unit-annotation index over every package of the run
	// (analyzed packages plus their loaded dependencies).
	Prog *Program

	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		PoolDiscipline,
		FloatCmp,
		GoroutineHygiene,
		ErrCheck,
		Unitcheck,
		Hotpath,
	}
}

// Program is the interprocedural view shared by every pass of one run:
// the module-wide call graph, the fixpointed fact store, and the
// unit-annotation index. Analyzed packages contribute findings; support
// packages (dependencies the loader pulled in) contribute bodies, facts
// and annotations but are never reported on directly.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // analyzed
	Support  []*Package // facts-only dependencies (deduplicated by path)
	Graph    *CallGraph
	Facts    *Facts
	Units    *unitIndex

	// hotReported dedupes hotpath findings by position across packages:
	// two roots in different packages reaching the same allocation site
	// yield one finding.
	hotReported map[string]bool
}

// BuildProgram assembles the interprocedural state for one run. Support
// packages whose import path is already analyzed are dropped (the
// analyzed instance, which includes in-package test files, wins).
func BuildProgram(analyzed, support []*Package) *Program {
	analyzedPaths := map[string]bool{}
	var fset *token.FileSet
	for _, p := range analyzed {
		analyzedPaths[p.Path] = true
		fset = p.Fset
	}
	var kept []*Package
	for _, p := range support {
		if !analyzedPaths[p.Path] {
			kept = append(kept, p)
			if fset == nil {
				fset = p.Fset
			}
		}
	}
	all := make([]*Package, 0, len(analyzed)+len(kept))
	all = append(all, analyzed...)
	all = append(all, kept...)
	graph := buildCallGraph(all)
	return &Program{
		Fset:        fset,
		Packages:    analyzed,
		Support:     kept,
		Graph:       graph,
		Facts:       computeFacts(graph),
		Units:       buildUnitIndex(all),
		hotReported: map[string]bool{},
	}
}

// AnalyzerByName resolves a name from the suite, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//ivn:allow"

// suppSite is one parsed //ivn:allow comment: the suppression covers the
// comment's own line and the line directly below it.
type suppSite struct {
	analyzer string
	reason   string
	file     string
	line     int
	col      int
	dir      string // directory of the package declaring the site
	support  bool   // declared in a support (not analyzed) package
}

// fileSuppressions scans a file's comments for //ivn:allow directives,
// returning the parsed sites. Malformed directives (unknown analyzer,
// missing reason) come back as findings so a suppression can never
// silently rot.
func fileSuppressions(fset *token.FileSet, f *ast.File) ([]*suppSite, []Finding) {
	var sites []*suppSite
	var malformed []Finding
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		malformed = append(malformed, Finding{
			Analyzer: "ivnlint",
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				report(c.Pos(), "malformed suppression: expected //ivn:allow <analyzer> <reason>")
				continue
			}
			name := fields[0]
			if AnalyzerByName(name) == nil {
				report(c.Pos(), fmt.Sprintf("suppression names unknown analyzer %q", name))
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
			if reason == "" {
				report(c.Pos(), fmt.Sprintf("suppression of %q needs a reason: //ivn:allow %s <why this is sanctioned>", name, name))
				continue
			}
			position := fset.Position(c.Pos())
			sites = append(sites, &suppSite{
				analyzer: name,
				reason:   reason,
				file:     position.Filename,
				line:     position.Line,
				col:      position.Column,
			})
		}
	}
	return sites, malformed
}

// SuppRef identifies a suppression site (or a use of one) across cache
// entries: the comment's own file/line/col plus the analyzer it allows.
type SuppRef struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
}

// DirResult is the per-directory slice of a run, the unit cmd/ivnlint
// caches: the findings produced by that directory's passes (which may
// point into other directories — a hot path's closure crosses packages),
// the suppression sites its files declare, and the sites its passes
// consumed. Stale-suppression findings are NOT included — they are a
// whole-run property, recomputed by MergeDirResults from sites and uses.
type DirResult struct {
	Findings []Finding `json:"findings"`
	Sites    []SuppRef `json:"sites"`
	Used     []SuppRef `json:"used"`
}

// RunResult is the full outcome of RunAnalyzersDetailed.
type RunResult struct {
	// Findings is the merged, sorted finding list (stale-suppression
	// findings included when requested).
	Findings []Finding
	// PerDir maps each analyzed package directory to its slice of the
	// run.
	PerDir map[string]*DirResult
}

// RunOptions tunes RunAnalyzersDetailed.
type RunOptions struct {
	// ReportStale emits an "ivnlint" finding for each suppression in an
	// analyzed package that no finding of the named analyzer matched.
	// Callers running a partial package set should disable it: a
	// suppression may be consumed by a pass over a package outside the
	// run (hot-path closures cross packages).
	ReportStale bool
}

// RunAnalyzers executes every analyzer over every package, applies the
// //ivn:allow suppressions, reports stale ones, and returns the surviving
// findings sorted by file, line, column and analyzer.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunAnalyzersDetailed(pkgs, nil, analyzers, RunOptions{ReportStale: true}).Findings
}

// RunAnalyzersDetailed is RunAnalyzers with interprocedural support
// packages, per-directory result attribution, and configurable stale
// reporting. Suppressions are module-wide: a finding located in another
// package's file is silenced by the //ivn:allow at that file's line, no
// matter which pass produced it.
func RunAnalyzersDetailed(pkgs, support []*Package, analyzers []*Analyzer, opts RunOptions) *RunResult {
	prog := BuildProgram(pkgs, support)

	res := &RunResult{PerDir: map[string]*DirResult{}}
	dirOf := func(dir string) *DirResult {
		d := res.PerDir[dir]
		if d == nil {
			d = &DirResult{}
			res.PerDir[dir] = d
		}
		return d
	}

	// Module-wide suppression map over analyzed and support files alike.
	type key struct {
		file string
		line int
	}
	allowed := map[key][]*suppSite{}
	var sites []*suppSite
	collect := func(pkg *Package, isSupport bool) {
		for _, f := range pkg.Files {
			fs, malformed := fileSuppressions(pkg.Fset, f)
			for _, s := range fs {
				s.dir = pkg.Dir
				s.support = isSupport
				sites = append(sites, s)
				allowed[key{s.file, s.line}] = append(allowed[key{s.file, s.line}], s)
				allowed[key{s.file, s.line + 1}] = append(allowed[key{s.file, s.line + 1}], s)
			}
			if !isSupport {
				dirOf(pkg.Dir).Findings = append(dirOf(pkg.Dir).Findings, malformed...)
			}
		}
	}
	for _, pkg := range prog.Packages {
		collect(pkg, false)
	}
	for _, pkg := range prog.Support {
		collect(pkg, true)
	}
	for _, s := range sites {
		if !s.support {
			dirOf(s.dir).Sites = append(dirOf(s.dir).Sites, SuppRef{s.file, s.line, s.col, s.analyzer})
		}
	}

	for _, pkg := range prog.Packages {
		dir := dirOf(pkg.Dir)
		for _, an := range analyzers {
			files := pkg.Files
			if an.SkipTests {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if !pkg.IsTest[f] {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Files:    files,
				Info:     pkg.Info,
				Prog:     prog,
				analyzer: an,
			}
			an.Run(pass)
			for _, fd := range pass.findings {
				dropped := false
				for _, s := range allowed[key{fd.File, fd.Line}] {
					if s.analyzer == fd.Analyzer {
						dropped = true
						dir.Used = append(dir.Used, SuppRef{s.file, s.line, s.col, s.analyzer})
					}
				}
				if !dropped {
					dir.Findings = append(dir.Findings, fd)
				}
			}
		}
	}

	names := make([]string, 0, len(analyzers))
	for _, an := range analyzers {
		names = append(names, an.Name)
	}
	res.Findings = MergeDirResults(res.PerDir, names, opts.ReportStale)
	return res
}

// MergeDirResults combines per-directory results — fresh or replayed from
// a cache — into the final sorted finding list. Stale-suppression
// findings are derived here: a site declared in some directory is stale
// when its analyzer was part of the run and no directory's passes
// consumed it. Duplicate positions from interprocedural analyzers (two
// roots reaching one site) collapse to a single finding.
func MergeDirResults(perDir map[string]*DirResult, analyzerNames []string, reportStale bool) []Finding {
	ran := map[string]bool{}
	for _, n := range analyzerNames {
		ran[n] = true
	}
	used := map[SuppRef]bool{}
	if reportStale {
		for _, d := range perDir {
			for _, u := range d.Used {
				used[u] = true
			}
		}
	}
	var all []Finding
	for _, d := range perDir {
		all = append(all, d.Findings...)
		if reportStale {
			for _, s := range d.Sites {
				if ran[s.Analyzer] && !used[s] {
					all = append(all, Finding{
						Analyzer: "ivnlint",
						File:     s.File,
						Line:     s.Line,
						Col:      s.Col,
						Message:  fmt.Sprintf("stale suppression: //ivn:allow %s no longer matches any finding on this line or the next; delete it", s.Analyzer),
					})
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Interprocedural findings can repeat a position across directories
	// with root-dependent wording; keep the first per (analyzer, pos).
	type posKey struct {
		analyzer, file string
		line, col      int
	}
	seen := map[posKey]bool{}
	out := all[:0]
	for _, fd := range all {
		k := posKey{fd.Analyzer, fd.File, fd.Line, fd.Col}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, fd)
	}
	return out
}

// objectPkgPath returns the package path of the object an identifier
// resolves to, or "" for locals, builtins and unresolved names.
func objectPkgPath(info *types.Info, id *ast.Ident) string {
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcUnits yields every function-like body in the files: declarations and
// function literals, each as its own unit (a literal's body is not part of
// its enclosing declaration's unit).
type funcUnit struct {
	// name is the declared name, or "" for literals.
	name string
	body *ast.BlockStmt
}

func funcUnits(files []*ast.File) []funcUnit {
	var units []funcUnit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					units = append(units, funcUnit{name: fn.Name.Name, body: fn.Body})
				}
			case *ast.FuncLit:
				units = append(units, funcUnit{body: fn.Body})
			}
			return true
		})
	}
	return units
}
