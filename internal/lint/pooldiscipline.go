package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolDiscipline enforces the scratch-buffer contract of internal/pool:
// every buffer obtained from a pool getter must be released on every path
// out of the function that obtained it (a Put call or a defer Put), and a
// pooled buffer must never outlive the function by escaping through a
// return value or a channel send — the pool would hand the same backing
// array to a concurrent trial while the caller still reads it.
//
// The check is a forward walk over each function body tracking which
// locals currently hold an unreleased pooled buffer:
//
//   - `x := pool.Float64(n)` marks x held; `pool.PutFloat64(x)` clears it;
//     `defer pool.PutFloat64(x)` clears it from that point on (a return
//     before the defer statement still leaks — defers only cover returns
//     after they execute).
//   - a return or channel send mentioning a held buffer is an escape;
//     any other return (or falling off the end) while a buffer is held is
//     a leak, reported with the acquisition site.
//   - branches are walked separately and merged pessimistically (held on
//     either arm stays held), so a Put on only one arm of an if does not
//     satisfy the other; paths that terminate (return/panic) don't merge.
//   - a buffer captured by a nested function literal is assumed managed
//     there (the literal is analyzed as its own unit), and a buffer passed
//     to an ordinary call is a borrow — neither clears nor escapes.
//
// Wrapper helpers that intentionally transfer ownership to their caller
// (e.g. baseline.carrierPhasors) are the sanctioned exception: annotate
// the return with //ivn:allow pooldiscipline <reason>.
//
// The interprocedural fact store makes those wrappers first-class: a
// function whose annotated escape returns pooled buffers is a *derived
// getter* (its callers inherit the Put obligation, per result), and a
// function that Puts its parameter is a *derived putter* (calling it
// discharges the obligation). Both are computed to fixpoint, so the
// discipline holds through helper chains of any depth.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "pool buffers released on every path; no escape via return or channel",
	Run:  runPoolDiscipline,
}

// poolPkgSuffix identifies the pool package by import-path suffix so the
// fixture corpus and the real tree share one analyzer.
const poolPkgSuffix = "internal/pool"

// isPoolGetter reports whether fn hands out a pooled buffer: an exported
// pool-package function returning exactly one slice.
func isPoolGetter(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), poolPkgSuffix) {
		return false
	}
	if !fn.Exported() || strings.HasPrefix(fn.Name(), "Put") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	_, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice)
	return isSlice
}

// isPoolPutter reports whether fn takes a pooled buffer back.
func isPoolPutter(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), poolPkgSuffix) &&
		strings.HasPrefix(fn.Name(), "Put")
}

func runPoolDiscipline(pass *Pass) {
	for _, unit := range funcUnits(pass.Files) {
		w := &poolWalker{pass: pass}
		st := poolState{held: map[*types.Var]token.Pos{}}
		terminated := w.walkStmts(unit.body.List, &st)
		if !terminated {
			w.reportLeaks(&st, unit.body.Rbrace, "function end")
		}
	}
}

// poolState tracks which variables hold an unreleased pooled buffer,
// mapping each to its acquisition position.
type poolState struct {
	held map[*types.Var]token.Pos
}

func (s *poolState) clone() poolState {
	c := poolState{held: make(map[*types.Var]token.Pos, len(s.held))}
	for v, p := range s.held {
		c.held[v] = p
	}
	return c
}

// merge folds a branch's end state back in: held anywhere stays held.
func (s *poolState) merge(other *poolState) {
	for v, p := range other.held {
		if _, ok := s.held[v]; !ok {
			s.held[v] = p
		}
	}
}

type poolWalker struct {
	pass *Pass
}

// ownershipOf returns the per-result pool-ownership mask of a call, nil
// when the callee transfers nothing. Direct pool getters and derived
// getters (from the fact store) are covered uniformly.
func (w *poolWalker) ownershipOf(call *ast.CallExpr) []bool {
	fn := calleeFunc(w.pass.Info, call)
	if w.pass.Prog != nil {
		return w.pass.Prog.Facts.ownership(fn)
	}
	if isPoolGetter(fn) {
		return []bool{true}
	}
	return nil
}

// releasesOf returns the per-parameter release mask of a call, covering
// direct pool putters and derived putters.
func (w *poolWalker) releasesOf(call *ast.CallExpr) []bool {
	fn := calleeFunc(w.pass.Info, call)
	if w.pass.Prog != nil {
		return w.pass.Prog.Facts.releases(fn)
	}
	if isPoolPutter(fn) {
		return []bool{true}
	}
	return nil
}

// anyTrue reports whether the mask has a set bit.
func anyTrue(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}

// reportLeaks reports every held buffer at its acquisition site.
func (w *poolWalker) reportLeaks(st *poolState, at token.Pos, where string) {
	vars := make([]*types.Var, 0, len(st.held))
	for v := range st.held {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return st.held[vars[i]] < st.held[vars[j]] })
	for _, v := range vars {
		get := w.pass.Fset.Position(st.held[v])
		w.pass.Reportf(at, "pooled buffer %q (acquired at %s:%d) not released at %s; add pool.Put or defer it", v.Name(), shortPath(get.Filename), get.Line, where)
	}
	st.held = map[*types.Var]token.Pos{}
}

// shortPath trims a position filename to its final two path elements.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// walkStmts processes a statement sequence, returning whether control
// definitely leaves the enclosing function (or loop) before the end.
func (w *poolWalker) walkStmts(stmts []ast.Stmt, st *poolState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *poolWalker) walkStmt(s ast.Stmt, st *poolState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.handleVarSpec(vs, st)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.handlePutCall(call, st) {
				return false
			}
			w.checkUnboundGet(call, st)
			if isTerminalCall(w.pass.Info, call) {
				return true
			}
		}
	case *ast.DeferStmt:
		w.handleDefer(s, st)
	case *ast.GoStmt:
		// A goroutine capturing a held buffer is concurrent aliasing;
		// treat captures as managed by the literal (its own unit) but do
		// not clear: the launching function still owns the release.
	case *ast.ReturnStmt:
		w.handleReturn(s, st)
		return true
	case *ast.SendStmt:
		for v := range st.held {
			if mentionsVar(w.pass.Info, s.Value, v) {
				w.pass.Reportf(s.Pos(), "pooled buffer %q escapes via channel send; the pool may recycle it while the receiver still uses it", v.Name())
				delete(st.held, v)
			}
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, &thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, &elseSt)
		}
		st.held = map[*types.Var]token.Pos{}
		if !thenTerm {
			st.merge(&thenSt)
		}
		if !elseTerm {
			st.merge(&elseSt)
		}
		return thenTerm && s.Else != nil && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.walkLoopBody(s.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkClauses(s, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: stop the linear walk of this sequence; the
		// loop-body merge handles what stays held.
		return true
	}
	return false
}

// walkLoopBody analyzes a loop body once. Buffers acquired inside the body
// must be released inside it: one leaked buffer per iteration is the worst
// kind of pool leak. Buffers held on entry that the body releases are
// treated optimistically as released (the repo's loops never Put an outer
// buffer).
func (w *poolWalker) walkLoopBody(body *ast.BlockStmt, st *poolState) {
	inner := st.clone()
	terminated := w.walkStmts(body.List, &inner)
	if !terminated {
		// Anything newly acquired during the iteration and still held at
		// its end leaks every pass around the loop.
		leaked := poolState{held: map[*types.Var]token.Pos{}}
		for v, p := range inner.held {
			if _, onEntry := st.held[v]; !onEntry {
				leaked.held[v] = p
			}
		}
		if len(leaked.held) > 0 {
			w.reportLeaks(&leaked, body.Rbrace, "end of loop iteration")
		}
	}
	// Outer buffers: keep held only if the body didn't release them.
	for v := range st.held {
		if _, still := inner.held[v]; !still && !terminated {
			delete(st.held, v)
		}
	}
}

// walkClauses handles switch/type-switch/select uniformly: each clause is
// a branch; held on any non-terminating branch stays held.
func (w *poolWalker) walkClauses(s ast.Stmt, st *poolState) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	merged := poolState{held: map[*types.Var]token.Pos{}}
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, st)
			}
			body = c.Body
		}
		branch := st.clone()
		if !w.walkStmts(body, &branch) {
			merged.merge(&branch)
		}
	}
	// No-match fallthrough (switch without default) keeps the entry state.
	merged.merge(st)
	st.held = merged.held
}

// handleAssign tracks acquisitions — `x := pool.Get(n)` and the tuple
// form `a, b := derivedGetter(...)` — and flags overwrites of still-held
// buffers. Derived getters (via the fact store) transfer ownership of
// exactly the results their mask marks.
func (w *poolWalker) handleAssign(s *ast.AssignStmt, st *poolState) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// a, b := f(): a multi-result call; each target inherits the
		// obligation its result index carries.
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		var mask []bool
		if ok {
			mask = w.ownershipOf(call)
		}
		for i, lhs := range s.Lhs {
			w.trackTarget(lhs, s.Rhs[0], call, i < len(mask) && mask[i], s.Pos(), st)
		}
		return
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		isGet := false
		if ok {
			mask := w.ownershipOf(call)
			isGet = len(mask) > 0 && mask[0]
		}
		w.trackTarget(s.Lhs[i], rhs, call, isGet, s.Pos(), st)
	}
}

// trackTarget applies the acquisition/overwrite rules to one assignment
// target. call is the rhs call when there is one; isGet reports whether
// that call transfers pool ownership to this target.
func (w *poolWalker) trackTarget(lhs, rhs ast.Expr, call *ast.CallExpr, isGet bool, at token.Pos, st *poolState) {
	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		if isGet {
			w.pass.Reportf(call.Pos(), "pooled buffer must be bound to a local variable so its Put can be verified")
		}
		return
	}
	v := lhsVar(w.pass.Info, id)
	if v == nil {
		if isGet {
			w.pass.Reportf(call.Pos(), "pooled buffer assigned to %q cannot be tracked; bind it to a local variable", id.Name)
		}
		return
	}
	prev, wasHeld := st.held[v]
	switch {
	case wasHeld && isGet:
		get := w.pass.Fset.Position(prev)
		w.pass.Reportf(at, "pooled buffer %q (acquired at %s:%d) overwritten by a new acquisition before Put", v.Name(), shortPath(get.Filename), get.Line)
		st.held[v] = call.Pos()
	case wasHeld && mentionsVar(w.pass.Info, rhs, v):
		// Reslice or self-append: same backing array, still owned.
	case wasHeld:
		get := w.pass.Fset.Position(prev)
		w.pass.Reportf(at, "pooled buffer %q (acquired at %s:%d) overwritten before Put", v.Name(), shortPath(get.Filename), get.Line)
		delete(st.held, v)
	case isGet:
		st.held[v] = call.Pos()
	}
}

// handleVarSpec tracks `var x = pool.Get(n)` declarations, including the
// tuple form `var a, b = derivedGetter(...)`.
func (w *poolWalker) handleVarSpec(vs *ast.ValueSpec, st *poolState) {
	hold := func(name *ast.Ident, pos token.Pos) {
		if v, ok := w.pass.Info.Defs[name].(*types.Var); ok {
			st.held[v] = pos
		}
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			mask := w.ownershipOf(call)
			for i, name := range vs.Names {
				if i < len(mask) && mask[i] {
					hold(name, call.Pos())
				}
			}
		}
		return
	}
	for i, val := range vs.Values {
		call, ok := ast.Unparen(val).(*ast.CallExpr)
		if !ok {
			continue
		}
		mask := w.ownershipOf(call)
		if len(mask) > 0 && mask[0] && i < len(vs.Names) {
			hold(vs.Names[i], call.Pos())
		}
	}
}

// handlePutCall clears the arguments a putter releases — a direct pool
// Put, or a derived putter whose mask marks the released parameters —
// and reports whether the call was a putter at all.
func (w *poolWalker) handlePutCall(call *ast.CallExpr, st *poolState) bool {
	rels := w.releasesOf(call)
	if !anyTrue(rels) {
		return false
	}
	for j, arg := range call.Args {
		if j >= len(rels) || !rels[j] {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
				delete(st.held, v)
			}
		}
	}
	return true
}

// checkUnboundGet flags a getter whose result is consumed inline —
// `f(pool.Float64(n))` — where no variable exists to Put. Derived
// getters count: discarding their owned results leaks the same way.
func (w *poolWalker) checkUnboundGet(call *ast.CallExpr, st *poolState) {
	ast.Inspect(call, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if anyTrue(w.ownershipOf(inner)) {
			w.pass.Reportf(inner.Pos(), "pooled buffer used without a local binding; no Put can release it")
		}
		return true
	})
}

// handleDefer processes defer statements: a direct `defer pool.Put(x)` or
// a deferred literal whose body Puts held buffers releases them for every
// return that executes after this point.
func (w *poolWalker) handleDefer(s *ast.DeferStmt, st *poolState) {
	if w.handlePutCall(s.Call, st) {
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.handlePutCall(call, st)
			}
			return true
		})
	}
}

// handleReturn reports escapes (held buffer in a result) and leaks (any
// other held buffer at this return).
func (w *poolWalker) handleReturn(s *ast.ReturnStmt, st *poolState) {
	for v := range st.held {
		for _, res := range s.Results {
			if mentionsVar(w.pass.Info, res, v) {
				w.pass.Reportf(s.Pos(), "pooled buffer %q escapes via return; the caller cannot know it must Put (transfer ownership explicitly and annotate, or copy)", v.Name())
				delete(st.held, v)
				break
			}
		}
	}
	// Everything still held at this return — including buffers bound to
	// named results published by a bare `return` — is a leak of this path.
	w.reportLeaks(st, s.Pos(), "this return")
}

// mentionsVar reports whether expr references v.
func mentionsVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// lhsVar resolves an assignment target identifier to its variable, for
// both `:=` definitions and plain assignments. The blank identifier
// returns nil.
func lhsVar(info *types.Info, id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isTerminalCall reports whether a call never returns (panic, os.Exit,
// log.Fatal*): statements after it are unreachable, so held buffers are
// not leaks of this path.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok && fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() + "." + fn.Name() {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
				return true
			}
		}
	}
	return false
}
