package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncID canonically identifies a function or method across every package
// instance the loader produces: types.Func.FullName(), e.g.
// "ivn/internal/em.SetDepth" or "(ivn/internal/em.Path).Amplitude". The
// same source file can be type-checked more than once (a directory loaded
// for analysis and again as a dependency of another package), yielding
// distinct *types.Func objects; FullName strings bridge the instances, so
// cross-package call edges resolve no matter which instance a call site's
// type info came from.
type FuncID string

// CallEdge is one static call site: caller invokes callee at pos. Callee
// may name a function outside the graph (stdlib, or a package not in this
// run); Nodes[Callee] is nil in that case and the callee's package path
// is preserved in CalleePkg for the external-assumption tables.
type CallEdge struct {
	Caller    FuncID
	Callee    FuncID
	CalleePkg string
	Pos       token.Pos
}

// Node is one declared function with a body, plus everything its body can
// invoke. Function literals nested in the body are folded into the
// declaring function's node: a literal's calls and allocation sites are
// attributed to the encloser, which over-approximates (the literal might
// never run) but never misses behavior — the right direction for every
// fact this engine feeds.
type Node struct {
	ID   FuncID
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls lists the statically resolved call sites in source order.
	Calls []CallEdge
	// Dynamic lists call sites that cannot be resolved to a declaration:
	// calls through function-typed values and interface method calls.
	Dynamic []token.Pos
	// Refs lists functions referenced as values rather than called
	// (method values, functions passed as arguments): possible indirect
	// targets the graph records without treating them as calls.
	Refs []CallEdge
}

// CallGraph is the module-wide static call graph over every package of a
// run (analyzed packages plus the loader's retained dependency packages).
type CallGraph struct {
	// Nodes maps each declared function to its node.
	Nodes map[FuncID]*Node
	// Callers holds the reverse edges: for each callee, the IDs of nodes
	// holding a static call to it. Deduplicated, sorted.
	Callers map[FuncID][]FuncID
}

// buildCallGraph constructs the graph from the given packages. Packages
// must already be deduplicated by import path (each function declared
// exactly once across the set).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:   map[FuncID]*Node{},
		Callers: map[FuncID][]FuncID{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(fn.FullName())
				if _, dup := g.Nodes[id]; dup {
					continue // shadowed duplicate instance; first wins
				}
				n := &Node{ID: id, Fn: fn, Decl: fd, Pkg: pkg}
				collectCalls(pkg.Info, fd, n)
				g.Nodes[id] = n
			}
		}
	}
	seen := map[FuncID]map[FuncID]bool{}
	for id, n := range g.Nodes {
		for _, e := range n.Calls {
			if seen[e.Callee] == nil {
				seen[e.Callee] = map[FuncID]bool{}
			}
			if !seen[e.Callee][id] {
				seen[e.Callee][id] = true
				g.Callers[e.Callee] = append(g.Callers[e.Callee], id)
			}
		}
	}
	for callee := range g.Callers {
		sort.Slice(g.Callers[callee], func(i, j int) bool {
			return g.Callers[callee][i] < g.Callers[callee][j]
		})
	}
	return g
}

// collectCalls walks fd's body (function literals included) recording
// static calls, dynamic calls, and value references into n.
func collectCalls(info *types.Info, fd *ast.FuncDecl, n *Node) {
	// Identifiers consumed as a call's Fun are calls, not references.
	callFunIdents := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callFunIdents[fun] = true
		case *ast.SelectorExpr:
			callFunIdents[fun.Sel] = true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		fn := calleeFunc(info, call)
		switch {
		case fn == nil:
			// A builtin (make, append, panic, ...) or a call through a
			// function-typed value. Builtins are the alloc scanner's
			// concern; everything else is a dynamic call.
			if !isBuiltinCall(info, call) {
				n.Dynamic = append(n.Dynamic, call.Pos())
			}
		case interfaceMethod(fn):
			n.Dynamic = append(n.Dynamic, call.Pos())
		default:
			n.Calls = append(n.Calls, CallEdge{
				Caller:    n.ID,
				Callee:    FuncID(fn.FullName()),
				CalleePkg: funcPkgPath(fn),
				Pos:       call.Pos(),
			})
		}
		return true
	})
	// Second pass: function values referenced outside call position.
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || callFunIdents[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || interfaceMethod(fn) {
			return true
		}
		n.Refs = append(n.Refs, CallEdge{
			Caller:    n.ID,
			Callee:    FuncID(fn.FullName()),
			CalleePkg: funcPkgPath(fn),
			Pos:       id.Pos(),
		})
		return true
	})
}

// interfaceMethod reports whether fn is declared on an interface type —
// a call through it dispatches dynamically.
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// funcPkgPath returns fn's package path, or "" for universe-scope objects.
func funcPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isBuiltinCall reports whether call invokes a language builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// Reachable walks the static call edges from root and returns every node
// in its closure (root included), with a parent edge map for diagnostics:
// parent[id] is the edge through which id was first reached, in a
// deterministic (source-order BFS) traversal.
func (g *CallGraph) Reachable(root FuncID) (closure map[FuncID]bool, parent map[FuncID]CallEdge) {
	closure = map[FuncID]bool{}
	parent = map[FuncID]CallEdge{}
	if g.Nodes[root] == nil {
		return closure, parent
	}
	queue := []FuncID{root}
	closure[root] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		for _, e := range n.Calls {
			if g.Nodes[e.Callee] == nil || closure[e.Callee] {
				continue
			}
			closure[e.Callee] = true
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return closure, parent
}

// Chain reconstructs the call path root → ... → id using the parent map
// from Reachable, as a slice of FuncIDs starting at root.
func Chain(root, id FuncID, parent map[FuncID]CallEdge) []FuncID {
	var rev []FuncID
	for cur := id; cur != root; {
		rev = append(rev, cur)
		e, ok := parent[cur]
		if !ok {
			break
		}
		cur = e.Caller
	}
	rev = append(rev, root)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
