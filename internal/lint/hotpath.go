package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath statically proves allocation-freedom for the simulator's
// figure kernels. A function marked
//
//	//ivn:hotpath
//	func PeakEnvelope(...) ... { ... }
//
// has its entire static call-graph closure checked against the fact
// store: any reachable allocation site — make/new, growing append,
// slice/map literals, &literal, string concatenation or conversion,
// capturing closure, method value, interface boxing, go statement, map
// write — is reported, as is any call the graph cannot see through
// (dynamic dispatch, or a package outside the module that is not on the
// assumed-allocation-free list: math, math/bits, math/cmplx).
//
// Two sanctioned idioms are exempt by design: the internal/pool scratch
// surface (Get/Put amortize their internal growth — the pooled-scratch
// contract PR 1 established), and append into recycled capacity via
// append(x[:0], ...). Everything else needs either a fix or a reasoned
// //ivn:allow hotpath on the offending line.
//
// This turns alloc_test.go's runtime budgets into compile-time facts:
// the benchmark kernels cannot regress into allocating without a finding
// appearing at the exact site.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//ivn:hotpath closures are statically allocation-free",
	Run:  runHotpath,
}

// hotpathMarker introduces a hot-path root in a function's doc comment.
const hotpathMarker = "//ivn:hotpath"

// isHotpathRoot reports whether fd's doc comment carries the marker.
func isHotpathRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathRoot(fd) {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkHotRoot(pass, FuncID(fn.FullName()))
		}
	}
}

// checkHotRoot walks root's closure over static call edges (skipping the
// exempt pool package) and reports every fact that breaks the
// allocation-freedom proof. Findings are deduplicated by position across
// roots: the first root to reach a site reports it.
func checkHotRoot(pass *Pass, root FuncID) {
	prog := pass.Prog
	g := prog.Graph
	if g.Nodes[root] == nil {
		return
	}
	parent := map[FuncID]CallEdge{}
	visited := map[FuncID]bool{root: true}
	queue := []FuncID{root}

	emit := func(pos token.Pos, format string, args ...any) {
		k := posKey(pass.Fset, pos)
		if prog.hotReported[k] {
			return
		}
		prog.hotReported[k] = true
		pass.Reportf(pos, format, args...)
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		suffix := ""
		if id != root {
			suffix = " (path: " + chainString(root, id, parent) + ")"
		}
		ff := prog.Facts.Per[id]
		if ff != nil {
			for _, site := range ff.Allocs {
				emit(site.Pos, "hot path %s: %s%s", shortID(root), site.What, suffix)
			}
		}
		for _, pos := range n.Dynamic {
			emit(pos, "hot path %s: dynamic call (function value or interface method) cannot be proven allocation-free%s", shortID(root), suffix)
		}
		for _, e := range n.Calls {
			if poolPkgPath(e.CalleePkg) {
				continue // pooled-scratch exemption: do not descend or flag
			}
			if g.Nodes[e.Callee] == nil {
				if !assumedAllocFree(e.CalleePkg) {
					emit(e.Pos, "hot path %s: calls %s outside the analyzable module (assumed to allocate)%s", shortID(root), shortID(e.Callee), suffix)
				}
				continue
			}
			if !visited[e.Callee] {
				visited[e.Callee] = true
				parent[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
	}
}

// chainString renders the call path root → … → id with short names.
func chainString(root, id FuncID, parent map[FuncID]CallEdge) string {
	ids := Chain(root, id, parent)
	parts := make([]string, len(ids))
	for i, x := range ids {
		parts[i] = shortID(x)
	}
	return strings.Join(parts, " → ")
}

// shortID compresses a FuncID's package path to its last element:
// "ivn/internal/core.EnvelopeSeries" → "core.EnvelopeSeries",
// "(*ivn/internal/radio.Array).Lock" → "(*radio.Array).Lock".
func shortID(id FuncID) string {
	s := string(id)
	prefix := ""
	if strings.HasPrefix(s, "(*") {
		prefix, s = "(*", s[2:]
	} else if strings.HasPrefix(s, "(") {
		prefix, s = "(", s[1:]
	}
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return prefix + s
}
