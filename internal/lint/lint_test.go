package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"testing"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// wantRe matches `// want "regexp"` and `// want `+"`regexp`"+` expectation
// comments in fixture sources.
var wantRe = regexp.MustCompile("// want (?:\"(.*)\"|`(.*)`)")

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the expectation comments of every file in pkgs.
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// TestFixtures runs each analyzer over its fixture package and diffs the
// reported findings against the `// want` expectations: every expectation
// must be hit, and nothing beyond the expectations may fire (suppressed
// cases in the corpus double as the //ivn:allow coverage).
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	cases := map[string]*Analyzer{
		"determinism":      Determinism,
		"pooldiscipline":   PoolDiscipline,
		"floatcmp":         FloatCmp,
		"goroutinehygiene": GoroutineHygiene,
		"errcheck":         ErrCheck,
		"unitcheck":        Unitcheck,
		"hotpath":          Hotpath,
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		an := cases[name]
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
			pkgs, err := loader.LoadDir(dir, "fixture/"+name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			findings := RunAnalyzers(pkgs, []*Analyzer{an})
			wants := collectWants(t, pkgs)
			for _, f := range findings {
				if f.Analyzer == "ivnlint" {
					t.Errorf("malformed suppression in fixture: %s", f)
					continue
				}
				hit := false
				for _, w := range wants {
					if w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
						w.matched = true
						hit = true
					}
				}
				if !hit {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestSuppressionParsing checks the //ivn:allow comment grammar: coverage
// of the comment's own line and the next, the mandatory reason, and the
// rejection of unknown analyzer names.
func TestSuppressionParsing(t *testing.T) {
	src := `package p

func f() {
	//ivn:allow floatcmp reason one
	_ = 1
	//ivn:allow floatcmp
	_ = 2
	//ivn:allow nosuchanalyzer reason
	_ = 3
	_ = 4 //ivn:allow errcheck trailing reason
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sites, malformed := fileSuppressions(fset, f)
	if len(malformed) != 2 {
		t.Fatalf("want 2 malformed findings (missing reason, unknown analyzer), got %d: %v", len(malformed), malformed)
	}
	for _, m := range malformed {
		if m.Analyzer != "ivnlint" {
			t.Errorf("malformed finding attributed to %q, want ivnlint", m.Analyzer)
		}
	}
	// covers reproduces the application rule: a site covers its own line
	// and the next.
	covers := func(line int, analyzer string) *suppSite {
		for _, s := range sites {
			if s.analyzer == analyzer && (s.line == line || s.line+1 == line) {
				return s
			}
		}
		return nil
	}
	// The valid floatcmp suppression sits on line 4 and covers lines 4-5.
	for _, line := range []int{4, 5} {
		s := covers(line, "floatcmp")
		if s == nil || s.reason != "reason one" {
			t.Errorf("line %d: floatcmp suppression not in effect: %+v", line, s)
		}
	}
	// The trailing errcheck suppression covers its own line (10).
	if covers(10, "errcheck") == nil {
		t.Errorf("line 10: trailing errcheck suppression not in effect")
	}
	if covers(12, "errcheck") != nil {
		t.Errorf("errcheck suppression leaked past its window")
	}
}

// TestExpandPatterns covers the pattern grammar over the real tree.
func TestExpandPatterns(t *testing.T) {
	root := repoRoot(t)
	single, err := ExpandPatterns(root, []string{"./internal/dsp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || filepath.Base(single[0]) != "dsp" {
		t.Fatalf("single-dir pattern: %v", single)
	}
	all, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("recursive pattern found only %d dirs", len(all))
	}
	for _, d := range all {
		if filepath.Base(d) == "testdata" {
			t.Fatalf("testdata not pruned: %v", d)
		}
		rel, _ := filepath.Rel(root, d)
		if rel == fmt.Sprintf("internal%clint%ctestdata", filepath.Separator, filepath.Separator) {
			t.Fatalf("testdata subtree not pruned: %s", rel)
		}
	}
	if _, err := ExpandPatterns(root, []string{"./no/such/dir"}); err == nil {
		t.Fatal("missing directory accepted")
	}
}

// TestRepoIsClean is the enforcement test: the suite over the entire tree
// must report nothing. A regression that reintroduces a violation (or an
// analyzer change that misfires on sanctioned code) fails here, not in a
// later CI stage.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short mode")
	}
	root := repoRoot(t)
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := LintDirs(root, dirs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestBuildConstraintFiltering pins the loader's //go:build handling: a
// file gated on a non-default tag (race) must be excluded even when its
// declarations would collide with the default-tag twin — the exact shape
// of the repo's race_test.go / norace_test.go pair.
func TestBuildConstraintFiltering(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tags\n")
	write("a.go", "package tags\n\nconst mode = \"default\"\n")
	write("a_race.go", "//go:build race\n\npackage tags\n\nconst mode = \"race\"\n")
	write("a_other.go", "//go:build someothertag\n\npackage tags\n\nconst other = 1\n")

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(dir, "example.com/tags")
	if err != nil {
		t.Fatalf("tagged twin not excluded: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 file, got %d packages (%d files)", len(pkgs), len(pkgs[0].Files))
	}
}

// TestDefaultBuildTag covers the tag universe the loader evaluates
// //go:build lines against.
func TestDefaultBuildTag(t *testing.T) {
	for _, tag := range []string{runtime.GOOS, runtime.GOARCH, runtime.Compiler, "go1", "go1.22"} {
		if !defaultBuildTag(tag) {
			t.Errorf("default tag %q not satisfied", tag)
		}
	}
	for _, tag := range []string{"race", "integration", "windows_amd64_cgo"} {
		if tag == runtime.GOOS || tag == runtime.GOARCH {
			continue
		}
		if defaultBuildTag(tag) {
			t.Errorf("non-default tag %q satisfied", tag)
		}
	}
}
