package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unitcheck enforces physical-unit consistency over the float64 plumbing
// the type system cannot see. The simulator moves link-budget quantities
// — dBm chain powers, dBi antenna gains, dB path losses, linear watts,
// carrier Hz, radians, meters, seconds — through plain floats; one
// missed 10·log10 or 2π silently corrupts every figure downstream.
//
// Quantities are declared with annotations:
//
//	type PowerAmp struct {
//		GainDB float64 //ivn:unit dB
//		P1dBm  float64 //ivn:unit dBm
//	}
//
//	// Transmittance returns the power ratio through the stack.
//	//
//	//ivn:unit freq Hz
//	//ivn:unit return 1
//	func (p Path) Transmittance(freq float64) float64 { ... }
//
// The single-argument form annotates the declaration on its own line or
// the line below; the two-argument form lives in a function's doc
// comment and names a parameter or `return`. Units then propagate
// locally through assignments, arithmetic and calls; the checker flags
//
//   - `+`/`-` (and comparisons) over incompatible dimensions,
//   - adding two absolute dB-domain levels (dBm+dBm),
//   - mixing dB-domain and linear quantities without conversion,
//   - Hz used where rad/s is declared (the 2π trap),
//   - call arguments, returns, assignments and composite-literal fields
//     that contradict an annotation.
//
// Unannotated or underdetermined expressions stay unknown and are never
// reported: the checker is optimistic, so adoption can be incremental.
var Unitcheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "physical-unit consistency from //ivn:unit annotations",
	Run:  runUnitcheck,
}

// unitDirective introduces a unit annotation.
const unitPrefix = "//ivn:unit"

// knownDims is the closed dimension vocabulary. A closed set catches
// typos (`Khz`, `dbm`) at annotation time instead of silently never
// matching.
var knownDims = map[string]bool{
	"dB":    true,
	"dBm":   true,
	"dBi":   true,
	"W":     true,
	"sqrtW": true, // amplitude whose square is watts
	"Hz":    true,
	"rad/s": true,
	"rad":   true,
	"m":     true,
	"m/s":   true,
	"s":     true,
	"1":     true, // dimensionless ratio
}

// dbFamily covers every log-domain dim; dbAbsolute marks the referenced
// level (dBm). dBi is a *relative* gain (referenced to the isotropic
// radiator), so EIRP = P(dBm) + G(dBi) combines legitimately.
func dbFamily(d string) bool   { return d == "dB" || d == "dBm" || d == "dBi" }
func dbAbsolute(d string) bool { return d == "dBm" }

// unitSig carries a function's annotated parameter and result dims, ""
// for unannotated slots.
type unitSig struct {
	params  []string
	results []string
}

// unitIndex is the module-wide annotation table. Objects are keyed by
// the file position of their defining identifier — stable across the
// duplicate type-checker instances the loader produces for a package
// that is both analyzed and imported.
type unitIndex struct {
	objects   map[string]string   // defining-ident posKey → dim
	funcs     map[string]*unitSig // func-name posKey → signature dims
	malformed []Finding           // bad annotations, analyzer "unitcheck"
}

func posKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// buildUnitIndex scans every package's comments for //ivn:unit
// directives and resolves them against the declarations they attach to.
func buildUnitIndex(pkgs []*Package) *unitIndex {
	idx := &unitIndex{
		objects: map[string]string{},
		funcs:   map[string]*unitSig{},
	}
	seenFiles := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seenFiles[name] {
				continue
			}
			seenFiles[name] = true
			idx.indexFile(pkg.Fset, f)
		}
	}
	return idx
}

// directive is one //ivn:unit comment awaiting attachment.
type directive struct {
	fields   []string
	pos      token.Pos
	line     int
	inDoc    bool // consumed by a function doc group
	consumed bool
}

func (idx *unitIndex) reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	p := fset.Position(pos)
	idx.malformed = append(idx.malformed, Finding{
		Analyzer: "unitcheck",
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (idx *unitIndex) checkDim(fset *token.FileSet, pos token.Pos, dim string) bool {
	if knownDims[dim] {
		return true
	}
	idx.reportf(fset, pos, "unknown unit %q (known: dB dBm dBi W sqrtW Hz rad/s rad m m/s s 1)", dim)
	return false
}

func (idx *unitIndex) indexFile(fset *token.FileSet, f *ast.File) {
	var dirs []*directive
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, unitPrefix)
			if !ok {
				continue
			}
			dirs = append(dirs, &directive{
				fields: strings.Fields(text),
				pos:    c.Pos(),
				line:   fset.Position(c.Pos()).Line,
			})
		}
	}
	if len(dirs) == 0 {
		return
	}
	byPos := map[token.Pos]*directive{}
	for _, d := range dirs {
		byPos[d.pos] = d
	}

	// Declaring identifiers a single-argument directive can attach to.
	type candidate struct {
		id   *ast.Ident
		line int
	}
	var cands []candidate
	addIdent := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		cands = append(cands, candidate{id, fset.Position(id.Pos()).Line})
	}
	ast.Inspect(f, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.StructType:
			for _, field := range node.Fields.List {
				for _, name := range field.Names {
					addIdent(name)
				}
			}
		case *ast.ValueSpec:
			for _, name := range node.Names {
				addIdent(name)
			}
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				for _, l := range node.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						addIdent(id)
					}
				}
			}
		case *ast.FuncDecl:
			idx.indexFuncDoc(fset, node, byPos)
		}
		return true
	})

	byLine := map[int][]candidate{}
	for _, c := range cands {
		byLine[c.line] = append(byLine[c.line], c)
	}
	for _, d := range dirs {
		if d.inDoc {
			continue
		}
		if len(d.fields) != 1 {
			idx.reportf(fset, d.pos, "malformed annotation: expected //ivn:unit <dim> on a declaration, or //ivn:unit <param|return> <dim> in a function doc")
			continue
		}
		dim := d.fields[0]
		if !idx.checkDim(fset, d.pos, dim) {
			continue
		}
		targets := byLine[d.line]
		if len(targets) == 0 {
			targets = byLine[d.line+1]
		}
		if len(targets) == 0 {
			idx.reportf(fset, d.pos, "//ivn:unit %s attaches to no declaration on this line or the next", dim)
			continue
		}
		for _, t := range targets {
			idx.objects[posKey(fset, t.id.Pos())] = dim
		}
	}
}

// indexFuncDoc resolves the two-argument directives in a function's doc
// comment against its parameters and result.
func (idx *unitIndex) indexFuncDoc(fset *token.FileSet, fd *ast.FuncDecl, byPos map[token.Pos]*directive) {
	if fd.Doc == nil {
		return
	}
	var sig *unitSig
	ensure := func() *unitSig {
		if sig == nil {
			n := 0
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					n += len(field.Names)
					if len(field.Names) == 0 {
						n++
					}
				}
			}
			nr := 0
			if fd.Type.Results != nil {
				for _, field := range fd.Type.Results.List {
					nr += len(field.Names)
					if len(field.Names) == 0 {
						nr++
					}
				}
			}
			sig = &unitSig{params: make([]string, n), results: make([]string, nr)}
		}
		return sig
	}
	for _, c := range fd.Doc.List {
		d := byPos[c.Pos()]
		if d == nil {
			continue
		}
		d.inDoc = true
		if len(d.fields) != 2 {
			idx.reportf(fset, d.pos, "malformed annotation in function doc: expected //ivn:unit <param|return> <dim>")
			continue
		}
		name, dim := d.fields[0], d.fields[1]
		if !idx.checkDim(fset, d.pos, dim) {
			continue
		}
		if name == "return" {
			s := ensure()
			if len(s.results) == 0 {
				idx.reportf(fset, d.pos, "//ivn:unit return %s on a function with no results", dim)
				continue
			}
			s.results[0] = dim
			continue
		}
		found := false
		i := 0
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, pn := range field.Names {
					if pn.Name == name {
						ensure().params[i] = dim
						idx.objects[posKey(fset, pn.Pos())] = dim
						found = true
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
		}
		if !found {
			idx.reportf(fset, d.pos, "//ivn:unit names no parameter %q of %s", name, fd.Name.Name)
		}
	}
	if sig != nil {
		idx.funcs[posKey(fset, fd.Name.Pos())] = sig
	}
}

// objDim looks up the declared dim of an object, "" when unannotated.
func (idx *unitIndex) objDim(fset *token.FileSet, obj types.Object) string {
	if obj == nil {
		return ""
	}
	return idx.objects[posKey(fset, obj.Pos())]
}

// sigOf looks up the annotated signature of a function, nil when
// unannotated.
func (idx *unitIndex) sigOf(fset *token.FileSet, fn *types.Func) *unitSig {
	if fn == nil {
		return nil
	}
	return idx.funcs[posKey(fset, fn.Pos())]
}

// udim is the inferred unit of an expression: a known dim, a bare
// constant (which adapts to either side of an operation), or unknown.
type udim struct {
	dim     string
	known   bool
	isConst bool
}

var unknownDim = udim{}

// identObj resolves an identifier to its object, uses before defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func knownUdim(d string) udim { return udim{dim: d, known: d != ""} }

// unitProblem classifies an incompatibility for reporting.
type unitProblem struct {
	msg string
}

// mulDerived and quoDerived encode the handful of products and quotients
// the simulator actually forms between distinct dims. mulDerived is
// consulted in both operand orders.
var mulDerived = map[[2]string]string{
	{"m/s", "s"}:   "m",
	{"rad/s", "s"}: "rad",
	{"Hz", "s"}:    "1", // cycles: a dimensionless count
}

var quoDerived = map[[2]string]string{
	{"m", "m/s"}:     "s",
	{"m", "s"}:       "m/s",
	{"m/s", "Hz"}:    "m", // wavelength λ = c/f
	{"rad", "s"}:     "rad/s",
	{"rad", "rad/s"}: "s",
}

// combineAddSub applies the dimensional rules of + and -.
func combineAddSub(x, y udim, op token.Token) (udim, *unitProblem) {
	switch {
	case x.isConst && y.isConst:
		return udim{isConst: true}, nil
	case x.isConst:
		return y, nil
	case y.isConst:
		return x, nil
	case !x.known || !y.known:
		return unknownDim, nil
	}
	xd, yd := x.dim, y.dim
	if xd == yd {
		if op == token.ADD && dbAbsolute(xd) {
			return unknownDim, &unitProblem{fmt.Sprintf("adds two absolute %s levels; absolute dB-domain powers do not sum — convert to linear W first", xd)}
		}
		if op == token.SUB && dbAbsolute(xd) {
			return knownUdim("dB"), nil // dBm − dBm is a gain/margin
		}
		return x, nil
	}
	switch {
	case dbFamily(xd) && dbFamily(yd):
		// P(dBm) ± G(dB/dBi) stays absolute — the EIRP / link-budget
		// shape; relative gains and losses combine to dB.
		if dbAbsolute(xd) {
			return x, nil
		}
		if dbAbsolute(yd) {
			if op == token.SUB {
				return unknownDim, &unitProblem{fmt.Sprintf("subtracts absolute %s from relative %s", yd, xd)}
			}
			return y, nil
		}
		return knownUdim("dB"), nil // dB ± dBi-free relative mix
	case dbFamily(xd) != dbFamily(yd):
		lin := yd
		db := xd
		if dbFamily(yd) {
			lin, db = xd, yd
		}
		return unknownDim, &unitProblem{fmt.Sprintf("mixes dB-domain %s with linear %s; convert with 10·log10 / 10^(x/10) at the boundary", db, lin)}
	case (xd == "Hz" && yd == "rad/s") || (xd == "rad/s" && yd == "Hz"):
		return unknownDim, &unitProblem{"mixes Hz with rad/s; the quantities differ by 2π — convert explicitly"}
	default:
		return unknownDim, &unitProblem{fmt.Sprintf("unit mismatch: %s %s %s", xd, op, yd)}
	}
}

// compareProblem classifies an ordered/equality comparison of two dims.
func compareProblem(x, y udim) *unitProblem {
	if x.isConst || y.isConst || !x.known || !y.known || x.dim == y.dim {
		return nil
	}
	xd, yd := x.dim, y.dim
	switch {
	case dbFamily(xd) != dbFamily(yd):
		db, lin := xd, yd
		if dbFamily(yd) {
			db, lin = yd, xd
		}
		return &unitProblem{fmt.Sprintf("compares dB-domain %s with linear %s", db, lin)}
	case (xd == "Hz" && yd == "rad/s") || (xd == "rad/s" && yd == "Hz"):
		return &unitProblem{"compares Hz with rad/s; the quantities differ by 2π"}
	case dbFamily(xd) && dbFamily(yd):
		return nil // margin-vs-level comparisons are conventional
	default:
		return &unitProblem{fmt.Sprintf("compares %s with %s", xd, yd)}
	}
}

// unitChecker walks one function body with a local inference environment.
type unitChecker struct {
	pass *Pass
	idx  *unitIndex
	env  map[types.Object]string // inferred (not annotated) local dims
	// results holds the enclosing function's annotated result dims.
	results []string
}

func runUnitcheck(pass *Pass) {
	idx := pass.Prog.Units
	// Surface malformed annotations located in this pass's files.
	inPass := map[string]bool{}
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, m := range idx.malformed {
		if inPass[m.File] {
			pass.findings = append(pass.findings, m)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			uc := &unitChecker{
				pass: pass,
				idx:  idx,
				env:  map[types.Object]string{},
			}
			if sig := idx.funcs[posKey(pass.Fset, fd.Name.Pos())]; sig != nil {
				uc.results = sig.results
			}
			uc.walk(fd.Body)
		}
	}
}

// dimOf infers the unit of an expression. Pure: reporting happens only
// at statement/operator visit sites, so nested recomputation is safe.
func (uc *unitChecker) dimOf(e ast.Expr) udim {
	info := uc.pass.Info
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		// An annotated named constant (em.C, a declared reference level)
		// keeps its dim; bare literals adapt to the other operand.
		switch e := e.(type) {
		case *ast.Ident:
			if d := uc.idx.objDim(uc.pass.Fset, identObj(info, e)); d != "" {
				return knownUdim(d)
			}
		case *ast.SelectorExpr:
			if d := uc.idx.objDim(uc.pass.Fset, info.Uses[e.Sel]); d != "" {
				return knownUdim(d)
			}
		}
		return udim{isConst: true}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return unknownDim
		}
		if d := uc.idx.objDim(uc.pass.Fset, obj); d != "" {
			return knownUdim(d)
		}
		if d := uc.env[obj]; d != "" {
			return knownUdim(d)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return knownUdim(uc.idx.objDim(uc.pass.Fset, sel.Obj()))
		}
		return knownUdim(uc.idx.objDim(uc.pass.Fset, info.Uses[e.Sel]))
	case *ast.IndexExpr:
		return uc.dimOf(e.X) // element of an annotated slice
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return uc.dimOf(e.X)
		}
	case *ast.BinaryExpr:
		d, _ := uc.combine(e)
		return d
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return uc.dimOf(e.Args[0]) // conversion preserves the quantity
		}
		if sig := uc.idx.sigOf(uc.pass.Fset, calleeFunc(info, e)); sig != nil && len(sig.results) > 0 {
			return knownUdim(sig.results[0])
		}
	}
	return unknownDim
}

// combine evaluates a binary expression's unit and any incompatibility.
func (uc *unitChecker) combine(e *ast.BinaryExpr) (udim, *unitProblem) {
	x, y := uc.dimOf(e.X), uc.dimOf(e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		return combineAddSub(x, y, e.Op)
	case token.MUL:
		switch {
		case x.isConst && y.isConst:
			return udim{isConst: true}, nil
		case x.isConst:
			return y, nil // scaling preserves the unit
		case y.isConst:
			return x, nil
		case x.known && y.known && x.dim == "sqrtW" && y.dim == "sqrtW":
			return knownUdim("W"), nil // amplitude² is power
		case x.known && y.known && y.dim == "1":
			return x, nil // dimensionless ratio preserves the unit
		case x.known && y.known && x.dim == "1":
			return y, nil
		case x.known && y.known:
			if d, ok := mulDerived[[2]string{x.dim, y.dim}]; ok {
				return knownUdim(d), nil
			}
			if d, ok := mulDerived[[2]string{y.dim, x.dim}]; ok {
				return knownUdim(d), nil
			}
		}
		return unknownDim, nil
	case token.QUO:
		switch {
		case y.isConst:
			return x, nil
		case x.known && y.known && x.dim == y.dim:
			return knownUdim("1"), nil
		case x.known && y.known && y.dim == "1":
			return x, nil
		case x.known && y.known:
			if d, ok := quoDerived[[2]string{x.dim, y.dim}]; ok {
				return knownUdim(d), nil
			}
		}
		return unknownDim, nil
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return unknownDim, compareProblem(x, y)
	}
	return unknownDim, nil
}

// declaredLhsDim returns the annotated dim of an assignment target, "".
func (uc *unitChecker) declaredLhsDim(lhs ast.Expr) string {
	info := uc.pass.Info
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Defs[lhs]
		if obj == nil {
			obj = info.Uses[lhs]
		}
		return uc.idx.objDim(uc.pass.Fset, obj)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok {
			return uc.idx.objDim(uc.pass.Fset, sel.Obj())
		}
		return uc.idx.objDim(uc.pass.Fset, info.Uses[lhs.Sel])
	case *ast.IndexExpr:
		return uc.declaredLhsDim(lhs.X)
	}
	return ""
}

func (uc *unitChecker) walk(body *ast.BlockStmt) {
	info := uc.pass.Info
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.BinaryExpr:
			if _, p := uc.combine(node); p != nil {
				uc.pass.Reportf(node.OpPos, "%s", p.msg)
			}
		case *ast.AssignStmt:
			uc.checkAssign(node)
		case *ast.RangeStmt:
			if node.Value != nil {
				if id, ok := node.Value.(*ast.Ident); ok {
					src := uc.dimOf(node.X)
					if src.known {
						if obj := info.Defs[id]; obj != nil {
							uc.env[obj] = src.dim
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for i, res := range node.Results {
				if i >= len(uc.results) || uc.results[i] == "" {
					continue
				}
				got := uc.dimOf(res)
				if got.known && got.dim != uc.results[i] {
					uc.pass.Reportf(res.Pos(), "returns %s where the result is annotated %s", got.dim, uc.results[i])
				}
			}
		case *ast.CallExpr:
			uc.checkCall(node)
		case *ast.CompositeLit:
			uc.checkCompositeLit(node)
		}
		return true
	})
}

func (uc *unitChecker) checkAssign(as *ast.AssignStmt) {
	info := uc.pass.Info
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		op := token.ADD
		if as.Tok == token.SUB_ASSIGN {
			op = token.SUB
		}
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			x := knownUdim(uc.declaredLhsDim(as.Lhs[0]))
			if !x.known {
				x = uc.dimOf(as.Lhs[0])
			}
			if _, p := combineAddSub(x, uc.dimOf(as.Rhs[0]), op); p != nil {
				uc.pass.Reportf(as.TokPos, "%s", p.msg)
			}
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	check := func(lhs, rhs ast.Expr) {
		declared := uc.declaredLhsDim(lhs)
		got := uc.dimOf(rhs)
		if declared != "" {
			if got.known && got.dim != declared {
				uc.pass.Reportf(rhs.Pos(), "assigns %s to a destination annotated %s", got.dim, declared)
			}
			return
		}
		// Inference: a simple local picks up the source's dim.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && got.known {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				uc.env[obj] = got.dim
			}
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			check(as.Lhs[i], as.Rhs[i])
		}
		return
	}
	// Tuple call: only the first result can carry an annotation today.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && len(as.Lhs) > 0 {
			if sig := uc.idx.sigOf(uc.pass.Fset, calleeFunc(info, call)); sig != nil && len(sig.results) > 0 && sig.results[0] != "" {
				declared := uc.declaredLhsDim(as.Lhs[0])
				if declared != "" && declared != sig.results[0] {
					uc.pass.Reportf(as.Lhs[0].Pos(), "assigns %s result to a destination annotated %s", sig.results[0], declared)
				} else if declared == "" {
					if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							uc.env[obj] = sig.results[0]
						}
					}
				}
			}
		}
	}
}

func (uc *unitChecker) checkCall(call *ast.CallExpr) {
	info := uc.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	fn := calleeFunc(info, call)
	sig := uc.idx.sigOf(uc.pass.Fset, fn)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= len(sig.params) || sig.params[i] == "" {
			continue
		}
		got := uc.dimOf(arg)
		if got.known && got.dim != sig.params[i] {
			uc.pass.Reportf(arg.Pos(), "argument %d of %s is annotated %s but gets %s", i+1, fn.Name(), sig.params[i], got.dim)
		}
	}
}

func (uc *unitChecker) checkCompositeLit(lit *ast.CompositeLit) {
	info := uc.pass.Info
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := info.Uses[key].(*types.Var)
		if !ok || !field.IsField() {
			continue
		}
		declared := uc.idx.objDim(uc.pass.Fset, field)
		if declared == "" {
			continue
		}
		got := uc.dimOf(kv.Value)
		if got.known && got.dim != declared {
			uc.pass.Reportf(kv.Value.Pos(), "field %s is annotated %s but gets %s", key.Name, declared, got.dim)
		}
	}
}
