package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis. It
// carries both the regular sources and the in-package _test.go files
// (checked together, exactly as `go test` compiles them); external
// `package foo_test` files become a second Package of their own.
type Package struct {
	// Path is the import path ("ivn/internal/dsp", or a synthetic path
	// for fixture packages outside the module tree).
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the file set all position info resolves through.
	Fset *token.FileSet
	// Files is the syntax to analyze, in deterministic (sorted filename)
	// order.
	Files []*ast.File
	// IsTest marks which files came from *_test.go.
	IsTest map[*ast.File]bool
	// Types and Info hold the type-checker's results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// any external tooling: module-local import paths resolve to directories
// under the module root, and standard-library paths type-check from
// $GOROOT source via go/importer's source importer. //go:build lines are
// evaluated against the default tag set (GOOS, GOARCH, compiler), so
// files gated on non-default tags like `race` are excluded exactly as
// `go build` would exclude them.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// RootDir is the absolute module root (the directory with go.mod).
	RootDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	std     types.Importer
	pure    map[string]*types.Package // non-test package cache, by import path
	retained map[string]*Package      // full syntax+Info for module-local imports
	loading map[string]bool           // cycle detection
}

// NewLoader returns a loader rooted at the module directory rootDir.
func NewLoader(rootDir string) (*Loader, error) {
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		RootDir:    abs,
		ModulePath: mod,
		std:        importer.ForCompiler(fset, "source", nil),
		pure:       map[string]*types.Package{},
		retained:   map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Support returns the module-local packages the loader imported as
// dependencies of the explicitly loaded directories, with full syntax and
// type info, sorted by path. Handing these to RunAnalyzersDetailed lets
// the interprocedural analyzers see through cross-package calls even when
// only a subset of directories is being analyzed (the cmd/ivnlint cache
// path).
func (l *Loader) Support() []*Package {
	paths := make([]string, 0, len(l.retained))
	for p := range l.retained {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.retained[p])
	}
	return out
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Import implements types.Importer: module-local paths load from the
// repository tree (regular sources only, mirroring what other packages can
// see), everything else defers to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importLocal(path)
	}
	return l.std.Import(path)
}

func (l *Loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.pure[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := l.parseFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	pkg, info, err := l.check(path, files, l)
	if err != nil {
		return nil, err
	}
	l.pure[path] = pkg
	l.retained[path] = &Package{
		Path: path, Dir: dir, Fset: l.Fset,
		Files: files, IsTest: map[*ast.File]bool{}, Types: pkg, Info: info,
	}
	return pkg, nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.RootDir, filepath.FromSlash(rel))
}

func (l *Loader) parseFile(path string) (*ast.File, error) {
	return parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
}

// buildConstraintSatisfied reports whether the file's //go:build line (if
// any) holds under the default tag set. Only comment groups before the
// package clause can carry constraints; the first //go:build line wins,
// matching cmd/go. An unparsable expression counts as satisfied so the
// type-checker surfaces the real problem.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

// defaultBuildTag is the tag universe of an ordinary `go build`: the
// host platform, the gc compiler, and every release tag up to the
// toolchain's version. Anything else — race, integration, custom tags —
// is off by default.
func defaultBuildTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler {
		return true
	}
	if tag == "unix" && (runtime.GOOS == "linux" || runtime.GOOS == "darwin") {
		return true
	}
	return strings.HasPrefix(tag, "go1")
}

// goFilesIn lists the .go files directly inside dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package rooted at dir under the given
// import path. The first returned Package holds the regular sources plus
// in-package test files; when the directory also contains an external
// `package <name>_test`, it is returned as a second Package.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var baseFiles, extFiles []*ast.File
	isTest := map[*ast.File]bool{}
	for _, name := range names {
		f, err := l.parseFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			isTest[f] = true
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			extFiles = append(extFiles, f)
		} else {
			baseFiles = append(baseFiles, f)
		}
	}
	var pkgs []*Package
	if len(baseFiles) > 0 {
		tpkg, info, err := l.check(importPath, baseFiles, l)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", importPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path: importPath, Dir: dir, Fset: l.Fset,
			Files: baseFiles, IsTest: isTest, Types: tpkg, Info: info,
		})
	}
	if len(extFiles) > 0 {
		// The external test package imports the base package by its own
		// path; hand it the freshly checked (test-augmented) result so
		// helpers declared in in-package test files resolve.
		imp := types.Importer(l)
		if len(pkgs) > 0 {
			imp = selfImporter{l: l, path: importPath, pkg: pkgs[0].Types}
		}
		extPath := importPath + "_test"
		tpkg, info, err := l.check(extPath, extFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", extPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path: extPath, Dir: dir, Fset: l.Fset,
			Files: extFiles, IsTest: isTest, Types: tpkg, Info: info,
		})
	}
	return pkgs, nil
}

// selfImporter resolves one import path to an already-checked package and
// defers everything else to the loader.
type selfImporter struct {
	l    *Loader
	path string
	pkg  *types.Package
}

func (s selfImporter) Import(path string) (*types.Package, error) {
	if path == s.path {
		return s.pkg, nil
	}
	return s.l.Import(path)
}

// check runs the type checker over files and returns the package plus the
// analysis info the analyzers consume. Any type error fails the load: the
// lint suite only runs on compiling trees, so an error here means the
// loader (not the code) needs attention.
func (l *Loader) check(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		limit := len(errs)
		if limit > 5 {
			limit = 5
		}
		msgs := make([]string, 0, limit)
		for _, e := range errs[:limit] {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("type errors: %s", strings.Join(msgs, "; "))
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExpandPatterns resolves go-style package patterns — ".", "./pkg",
// "./..." or "./pkg/..." — into the directories under root that contain
// Go sources. testdata, vendor, and hidden directories are pruned from
// recursive walks. The result preserves first-seen order.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		p := pat
		if p == "..." {
			p, recursive = ".", true
		} else if strings.HasSuffix(p, "/...") {
			p, recursive = strings.TrimSuffix(p, "/..."), true
		}
		base := filepath.Join(root, filepath.FromSlash(p))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if names, err := goFilesIn(base); err == nil && len(names) > 0 {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFilesIn(path); err == nil && len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// LintDirs loads every directory as a package of the module rooted at root
// and runs the analyzers over all of them, returning the surviving
// (unsuppressed) findings sorted by position.
func LintDirs(root string, dirs []string, analyzers []*Analyzer) ([]Finding, error) {
	res, err := LintDirsDetailed(root, dirs, analyzers, RunOptions{ReportStale: true})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// LintDirsDetailed is LintDirs with per-directory result attribution and
// configurable stale-suppression reporting. Module-local dependencies of
// the loaded directories participate as support packages, so hot-path
// closures and derived pool facts resolve across package boundaries even
// for partial directory sets.
func LintDirsDetailed(root string, dirs []string, analyzers []*Analyzer, opts RunOptions) (*RunResult, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.RootDir, abs)
		if err != nil {
			return nil, err
		}
		ip := loader.ModulePath
		if rel != "." {
			ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loader.LoadDir(abs, ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return RunAnalyzersDetailed(pkgs, loader.Support(), analyzers, opts), nil
}
