package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// GoroutineHygiene confines concurrency to the sanctioned runners. PR 1
// parallelized the trial loops through one bounded worker pool
// (forEachIndexed, whose launch loop now lives in forEachWorkerN)
// precisely so that determinism, error propagation, and backpressure live
// in a single audited function; a raw `go` statement anywhere else
// reintroduces unbounded, unobserved concurrency.
//
// Checks:
//
//   - a go statement outside a sanctioned runner function (by name:
//     forEachWorkerN, the pool's one launch site; forEachIndexed and
//     ForEachScratch delegate to it) is reported — route the work through
//     the runner, or annotate a deliberate exception;
//   - sync.WaitGroup.Add called *inside* a spawned goroutine races with
//     the corresponding Wait (Wait can return before the Add executes);
//     Add must happen on the spawning side. This is checked everywhere,
//     including inside sanctioned runners.
var GoroutineHygiene = &Analyzer{
	Name: "goroutinehygiene",
	Doc:  "goroutines only in sanctioned runners; WaitGroup.Add before spawn",
	Run:  runGoroutineHygiene,
}

// sanctionedRunners lists function names allowed to launch goroutines
// directly. The list is deliberately tiny: concurrency is a subsystem, not
// a convenience.
var sanctionedRunners = map[string]bool{
	"forEachIndexed": true,
	"forEachWorkerN": true,
}

func runGoroutineHygiene(pass *Pass) {
	for _, f := range pass.Files {
		var walk func(n ast.Node, fnName string) // current function-like scope name
		walk = func(n ast.Node, fnName string) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walk(n.Body, n.Name.Name)
				}
				return
			case *ast.FuncLit:
				// A literal inherits its enclosing function's sanction:
				// runners launch `go func() {...}()` literals.
				walk(n.Body, fnName)
				return
			case *ast.GoStmt:
				if !sanctionedRunners[fnName] {
					pass.Reportf(n.Pos(), "goroutine launched outside a sanctioned runner (%s); use the bounded worker pool or annotate a deliberate exception", runnerNames())
				}
				checkAddInsideGoroutine(pass, n)
				walk(n.Call, fnName)
				return
			}
			if n == nil {
				return
			}
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.FuncDecl, *ast.FuncLit, *ast.GoStmt:
					walk(c, fnName)
					return false
				}
				return true
			})
		}
		walk(f, "")
	}
}

// runnerNames formats the sanctioned runner list for messages, sorted so
// diagnostics are reproducible.
func runnerNames() string {
	names := make([]string, 0, len(sanctionedRunners))
	for n := range sanctionedRunners {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// checkAddInsideGoroutine reports sync.WaitGroup.Add calls inside the body
// of the goroutine a go statement spawns.
func checkAddInsideGoroutine(pass *Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if recv, ok := pass.Info.Selections[sel]; ok && isWaitGroup(recv.Recv()) {
			pass.Reportf(call.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		}
		return true
	})
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
