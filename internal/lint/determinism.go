package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the repository's byte-reproducibility contract:
// every published table regenerated from the same seed must be identical,
// so nothing on a result path may consult ambient nondeterminism.
//
//   - math/rand (v1 or v2) is banned outside internal/rng: the global
//     source is shared mutable state and its streams are not splittable
//     per trial. ivn/internal/rng carries seeds explicitly.
//   - time.Now is banned: wall-clock values leak into anything they touch.
//   - ranging over a map while appending to a slice declared outside the
//     loop is flagged unless the slice is sorted afterwards in the same
//     function — map iteration order would otherwise decide row order.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "no math/rand, time.Now, or map-iteration order on result paths",
	SkipTests: true,
	Run:       runDeterminism,
}

func runDeterminism(pass *Pass) {
	// internal/rng is the sanctioned wrapper and documents its own
	// provenance; it is the one place generator code may live.
	if strings.HasSuffix(pass.Pkg.Path, "internal/rng") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch objectPkgPath(pass.Info, sel.Sel) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(), "use of math/rand.%s outside internal/rng; derive a seeded stream with ivn/internal/rng instead", sel.Sel.Name)
			case "time":
				if sel.Sel.Name == "Now" {
					pass.Reportf(sel.Pos(), "time.Now is nondeterministic; results must depend only on the seed (thread an explicit timestamp through if one is needed)")
				}
			}
			return true
		})
	}
	for _, unit := range funcUnits(pass.Files) {
		checkMapOrder(pass, unit.body)
	}
}

// checkMapOrder flags `for ... range m { dst = append(dst, ...) }` where m
// is a map and dst is declared outside the loop, unless dst is passed to a
// sort or slices call later in the same function body — the idiomatic
// collect-then-sort pattern restores a deterministic order.
func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are their own unit
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, dst := range appendTargetsOutside(pass.Info, rng) {
			if !sortedAfter(pass.Info, body, dst, rng.End()) {
				pass.Reportf(rng.Pos(), "map iteration order feeds slice %q; collect then sort (sort.* / slices.*) before publishing, or iterate sorted keys", dst.Name())
			}
		}
		return true
	})
}

// appendTargetsOutside returns the variables declared outside the range
// statement that its body appends to.
func appendTargetsOutside(info *types.Info, rng *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			funID, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || funID.Name != "append" {
				continue
			}
			if _, isBuiltin := info.Uses[funID].(*types.Builtin); !isBuiltin {
				continue // shadowed by a user declaration
			}
			if i >= len(assign.Lhs) {
				continue
			}
			id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				if def, okDef := info.Defs[id].(*types.Var); okDef {
					v = def
				} else {
					continue
				}
			}
			// Declared outside the loop: its definition position precedes
			// the range statement.
			if v.Pos() < rng.Pos() && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether v appears as an argument to a sort or slices
// package call located after pos within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch objectPkgPath(info, sel.Sel) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
