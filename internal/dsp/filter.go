package dsp

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadCutoff reports a filter design request with a cutoff outside the
// representable (0, Nyquist) range.
var ErrBadCutoff = errors.New("dsp: cutoff must lie in (0, 0.5) cycles/sample")

// FIR is a finite-impulse-response filter described by its real taps. The
// zero value is a pass-nothing filter; construct with the design functions.
type FIR struct {
	Taps []float64
}

// DesignLowpass returns a windowed-sinc low-pass FIR with the given cutoff
// (normalized, cycles per sample, 0 < cutoff < 0.5) and tap count. An even
// tap count is rounded up to keep the filter symmetric (type I, linear
// phase).
func DesignLowpass(cutoff float64, taps int, w Window) (FIR, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return FIR{}, fmt.Errorf("%w: got %v", ErrBadCutoff, cutoff)
	}
	if taps < 3 {
		return FIR{}, fmt.Errorf("dsp: lowpass needs >= 3 taps, got %d", taps)
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	mid := taps / 2
	for i := range h {
		n := float64(i - mid)
		if n == 0 {
			h[i] = 2 * cutoff
		} else {
			h[i] = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
	}
	win := w.Coefficients(taps)
	var sum float64
	for i := range h {
		h[i] *= win[i]
		sum += h[i]
	}
	// Normalize for unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return FIR{Taps: h}, nil
}

// DesignHighpass returns a windowed-sinc high-pass FIR via spectral
// inversion of the corresponding low-pass.
func DesignHighpass(cutoff float64, taps int, w Window) (FIR, error) {
	lp, err := DesignLowpass(cutoff, taps, w)
	if err != nil {
		return FIR{}, err
	}
	h := lp.Taps
	for i := range h {
		h[i] = -h[i]
	}
	h[len(h)/2] += 1
	return FIR{Taps: h}, nil
}

// DesignBandpass returns a windowed-sinc band-pass FIR passing
// (lo, hi) normalized frequencies.
func DesignBandpass(lo, hi float64, taps int, w Window) (FIR, error) {
	if !(0 < lo && lo < hi && hi < 0.5) {
		return FIR{}, fmt.Errorf("%w: band (%v, %v)", ErrBadCutoff, lo, hi)
	}
	hiLP, err := DesignLowpass(hi, taps, w)
	if err != nil {
		return FIR{}, err
	}
	loLP, err := DesignLowpass(lo, len(hiLP.Taps), w)
	if err != nil {
		return FIR{}, err
	}
	h := make([]float64, len(hiLP.Taps))
	for i := range h {
		h[i] = hiLP.Taps[i] - loLP.Taps[i]
	}
	return FIR{Taps: h}, nil
}

// DesignBandstop returns a windowed-sinc band-stop (notch) FIR rejecting
// (lo, hi). This models the high-rejection SAW filter in IVN's out-of-band
// reader front end (paper §5b).
func DesignBandstop(lo, hi float64, taps int, w Window) (FIR, error) {
	bp, err := DesignBandpass(lo, hi, taps, w)
	if err != nil {
		return FIR{}, err
	}
	h := bp.Taps
	for i := range h {
		h[i] = -h[i]
	}
	h[len(h)/2] += 1
	return FIR{Taps: h}, nil
}

// Len returns the number of taps.
func (f FIR) Len() int { return len(f.Taps) }

// GroupDelay returns the filter's constant group delay in samples
// ((taps-1)/2 for the symmetric designs produced here).
func (f FIR) GroupDelay() int { return (len(f.Taps) - 1) / 2 }

// Apply convolves x with the filter and returns the same-length output
// (zero-padded edges, delay NOT compensated).
func (f FIR) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	f.ApplyTo(out, x)
	return out
}

// ApplyTo convolves x with the filter into dst, which must have len(x)
// elements. It is allocation-free.
func (f FIR) ApplyTo(dst, x []float64) {
	if len(dst) != len(x) {
		panic("dsp: FIR.ApplyTo length mismatch")
	}
	taps := f.Taps
	for i := range dst {
		var acc float64
		for k, t := range taps {
			j := i - k
			if j >= 0 && j < len(x) {
				acc += t * x[j]
			}
		}
		dst[i] = acc
	}
}

// ApplyComplex convolves a complex baseband signal with the (real) filter.
func (f FIR) ApplyComplex(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	taps := f.Taps
	for i := range out {
		var acc complex128
		for k, t := range taps {
			j := i - k
			if j >= 0 && j < len(x) {
				acc += complex(t, 0) * x[j]
			}
		}
		out[i] = acc
	}
	return out
}

// Response returns the filter's complex frequency response at normalized
// frequency f (cycles per sample).
func (f FIR) Response(freq float64) complex128 {
	var acc complex128
	for n, t := range f.Taps {
		ph := -2 * math.Pi * freq * float64(n)
		s, c := math.Sincos(ph)
		acc += complex(t*c, t*s)
	}
	return acc
}

// AttenuationDB returns the filter's power attenuation at normalized
// frequency f, in dB (positive = attenuated).
func (f FIR) AttenuationDB(freq float64) float64 {
	r := f.Response(freq)
	mag2 := real(r)*real(r) + imag(r)*imag(r)
	if mag2 <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(mag2)
}

// MovingAverage returns a boxcar FIR of n taps (unity DC gain), the cheap
// smoother used by envelope trackers.
func MovingAverage(n int) FIR {
	if n < 1 {
		n = 1
	}
	taps := make([]float64, n)
	for i := range taps {
		taps[i] = 1 / float64(n)
	}
	return FIR{Taps: taps}
}

// SinglePole is a one-pole IIR smoother y[n] = a·x[n] + (1-a)·y[n-1], the
// discrete-time model of an RC envelope-detector load.
type SinglePole struct {
	// Alpha is the smoothing coefficient in (0, 1]; smaller = slower.
	Alpha float64
	state float64
}

// Step advances the filter by one sample and returns the new output.
func (p *SinglePole) Step(x float64) float64 {
	p.state += p.Alpha * (x - p.state)
	return p.state
}

// Reset clears the internal state to v.
func (p *SinglePole) Reset(v float64) { p.state = v }

// Value returns the current output without advancing.
func (p *SinglePole) Value() float64 { return p.state }

// RCAlpha converts an RC time constant (seconds) and sample rate to the
// equivalent single-pole Alpha.
func RCAlpha(tau, sampleRate float64) float64 {
	if tau <= 0 {
		return 1
	}
	dt := 1 / sampleRate
	return dt / (tau + dt)
}
