package dsp

import "math"

// Window identifies a tapering window used in FIR design and spectral
// analysis.
type Window int

const (
	// Rectangular applies no tapering.
	Rectangular Window = iota
	// Hann is the raised-cosine window; -31 dB first sidelobe.
	Hann
	// Hamming is the optimized raised cosine; -43 dB first sidelobe.
	Hamming
	// Blackman trades main-lobe width for -58 dB sidelobes; it is the
	// default for filter design in this package.
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window samples. For n <= 1 it returns all ones.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		t := float64(i) / den
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x element-wise by the window in place and returns x.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= c[i]
	}
	return x
}
