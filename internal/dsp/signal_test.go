package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"ivn/internal/rng"
)

func TestToneFrequencyAndAmplitude(t *testing.T) {
	const fs, f, amp = 1e6, 12500.0, 2.5
	x := Tone(4096, f, 0, amp, fs)
	// Magnitude must be constant.
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-amp) > 1e-9 {
			t.Fatalf("sample %d magnitude %v, want %v", i, cmplx.Abs(v), amp)
		}
	}
	// Spectral peak must land on the right bin.
	X := make([]complex128, len(x))
	copy(X, x)
	FFT(X)
	_, idx := PeakAbs(X)
	wantBin := int(math.Round(f / fs * float64(len(x))))
	if idx != wantBin {
		t.Fatalf("spectral peak at bin %d, want %d", idx, wantBin)
	}
}

func TestTonePhaseContinuityLong(t *testing.T) {
	// The phasor recurrence must not drift over long records.
	const fs, f = 1e6, 31250.0
	x := Tone(1<<17, f, 0.3, 1, fs)
	n := len(x) - 1
	wantPh := math.Mod(2*math.Pi*f*float64(n)/fs+0.3, 2*math.Pi)
	gotPh := math.Mod(cmplx.Phase(x[n])+2*math.Pi, 2*math.Pi)
	diff := math.Abs(gotPh - wantPh)
	if diff > math.Pi {
		diff = 2*math.Pi - diff
	}
	if diff > 1e-6 {
		t.Fatalf("phase drift after %d samples: %v rad", n, diff)
	}
}

func TestAddToneToSuperimposes(t *testing.T) {
	const fs = 1e6
	dst := Tone(1024, 1000, 0, 1, fs)
	AddToneTo(dst, 2000, 0, 1, fs)
	X := make([]complex128, len(dst))
	copy(X, dst)
	FFT(X)
	b1 := int(math.Round(1000 / fs * 1024))
	b2 := int(math.Round(2000 / fs * 1024))
	p := SpectrumPower(X)
	if p[b1] < 1e3 || p[b2] < 1e3 {
		t.Fatalf("expected energy at bins %d and %d, got %v and %v", b1, b2, p[b1], p[b2])
	}
}

func TestMixShiftsFrequency(t *testing.T) {
	const fs, f = 1e6, 50000.0
	x := Tone(4096, f, 0, 1, fs)
	Mix(x, -f, fs) // downconvert to DC
	// After mixing to DC the signal is (nearly) constant.
	for i := 1; i < len(x); i++ {
		if cmplx.Abs(x[i]-x[0]) > 1e-6 {
			t.Fatalf("post-mix sample %d differs from DC: %v vs %v", i, x[i], x[0])
		}
	}
}

func TestPeakAbsAndPeakFloat(t *testing.T) {
	x := []complex128{1, complex(0, -5), 2}
	peak, idx := PeakAbs(x)
	if idx != 1 || math.Abs(peak-5) > 1e-12 {
		t.Fatalf("PeakAbs = (%v, %d), want (5, 1)", peak, idx)
	}
	if _, idx := PeakAbs(nil); idx != -1 {
		t.Fatal("PeakAbs(nil) should report index -1")
	}
	pf, pi := PeakFloat([]float64{-3, -1, -2})
	if pi != 1 || pf != -1 {
		t.Fatalf("PeakFloat = (%v, %d), want (-1, 1)", pf, pi)
	}
}

func TestMeanPowerAndEnergy(t *testing.T) {
	x := []complex128{complex(3, 4), complex(0, 0)}
	if e := Energy(x); math.Abs(e-25) > 1e-12 {
		t.Fatalf("Energy = %v, want 25", e)
	}
	if mp := MeanPower(x); math.Abs(mp-12.5) > 1e-12 {
		t.Fatalf("MeanPower = %v, want 12.5", mp)
	}
	if MeanPower(nil) != 0 {
		t.Fatal("MeanPower(nil) != 0")
	}
}

func TestScaleAndAddInto(t *testing.T) {
	x := []complex128{1, complex(2, 2)}
	Scale(x, 2)
	if x[0] != 2 || x[1] != complex(4, 4) {
		t.Fatalf("Scale result %v", x)
	}
	y := []complex128{1, 1}
	AddInto(y, x)
	if y[0] != 3 || y[1] != complex(5, 4) {
		t.Fatalf("AddInto result %v", y)
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Fatalf("DB(100) = %v, want 20", got)
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("FromDB(30) = %v, want 1000", got)
	}
	if got := AmplitudeFromDB(20); math.Abs(got-10) > 1e-12 {
		t.Fatalf("AmplitudeFromDB(20) = %v, want 10", got)
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) should be -Inf")
	}
}

func TestEnvelopeTracksAmplitudeSteps(t *testing.T) {
	const fs = 1e6
	// 1 ms of amplitude 1, then 1 ms of amplitude 0.2 (a PIE-like notch).
	x := Tone(1000, 100e3, 0, 1, fs)
	x = append(x, Tone(1000, 100e3, 0, 0.2, fs)...)
	env := Envelope(x, 5e-6, fs)
	if math.Abs(env[900]-1) > 0.05 {
		t.Fatalf("high-state envelope = %v, want ≈1", env[900])
	}
	if math.Abs(env[1900]-0.2) > 0.05 {
		t.Fatalf("low-state envelope = %v, want ≈0.2", env[1900])
	}
}

func TestFluctuationRatio(t *testing.T) {
	if got := FluctuationRatio([]float64{1, 1, 1}); got != 0 {
		t.Fatalf("flat envelope fluctuation = %v, want 0", got)
	}
	if got := FluctuationRatio([]float64{1, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fluctuation = %v, want 0.5", got)
	}
	if got := FluctuationRatio(nil); got != 0 {
		t.Fatalf("empty fluctuation = %v, want 0", got)
	}
	if got := FluctuationRatio([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero fluctuation = %v, want 0", got)
	}
}

func TestNormalizedCrossCorrelationPerfectMatch(t *testing.T) {
	tmpl := []float64{1, -1, 1, 1, -1, -1, 1, -1}
	x := append(make([]float64, 13), tmpl...)
	x = append(x, make([]float64, 7)...)
	best, lag := MaxCorrelation(x, tmpl)
	if lag != 13 {
		t.Fatalf("best lag = %d, want 13", lag)
	}
	if best < 0.999 {
		t.Fatalf("best correlation = %v, want ≈1", best)
	}
}

func TestNormalizedCrossCorrelationScaleInvariant(t *testing.T) {
	tmpl := []float64{1, -1, 1, -1, 1, 1, -1, 1}
	x := make([]float64, len(tmpl))
	for i, v := range tmpl {
		x[i] = 0.001*v + 5 // scaled down and offset
	}
	best, _ := MaxCorrelation(x, tmpl)
	if best < 0.999 {
		t.Fatalf("correlation should be scale/offset invariant, got %v", best)
	}
}

func TestCorrelationRejectsNoise(t *testing.T) {
	r := rng.New(77)
	tmpl := []float64{1, 1, -1, 1, -1, -1, 1, -1, -1, 1, 1, -1}
	x := make([]float64, 500)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	best, _ := MaxCorrelation(x, tmpl)
	if best > 0.8 {
		t.Fatalf("noise correlated at %v; the 0.8 threshold would false-trigger", best)
	}
}

func TestCorrelationDegenerateInputs(t *testing.T) {
	if got := NormalizedCrossCorrelation([]float64{1, 2}, []float64{1, 2, 3}); got != nil {
		t.Fatal("template longer than signal should yield nil")
	}
	if _, lag := MaxCorrelation(nil, []float64{1}); lag != -1 {
		t.Fatal("degenerate MaxCorrelation should report lag -1")
	}
	// Constant segment has zero variance; correlation must be 0, not NaN.
	got := NormalizedCrossCorrelation([]float64{3, 3, 3, 3}, []float64{1, -1})
	for _, v := range got {
		if math.IsNaN(v) {
			t.Fatal("correlation produced NaN on zero-variance segment")
		}
	}
}

func TestCoherentAverageBoostsSNR(t *testing.T) {
	r := rng.New(5)
	const period, reps = 256, 64
	clean := make([]complex128, period)
	for i := range clean {
		clean[i] = complex(math.Sin(2*math.Pi*float64(i)/64), 0)
	}
	noisy := make([]complex128, period*reps)
	for p := 0; p < reps; p++ {
		for i := 0; i < period; i++ {
			noisy[p*period+i] = clean[i] + r.ComplexCircular(1)
		}
	}
	avg := CoherentAverage(noisy, period)
	var errPow float64
	for i := range avg {
		d := avg[i] - clean[i]
		errPow += real(d)*real(d) + imag(d)*imag(d)
	}
	errPow /= float64(period)
	// Noise power 2 per sample reduced by reps=64 → ≈0.031.
	if errPow > 0.1 {
		t.Fatalf("residual noise power %v after %d-fold averaging, want < 0.1", errPow, reps)
	}
}

func TestCoherentAverageEdgeCases(t *testing.T) {
	if CoherentAverage(nil, 8) != nil {
		t.Fatal("nil input should yield nil")
	}
	if CoherentAverage(make([]complex128, 4), 8) != nil {
		t.Fatal("input shorter than a period should yield nil")
	}
	if CoherentAverage(make([]complex128, 4), 0) != nil {
		t.Fatal("non-positive period should yield nil")
	}
}

func TestCorrelateComplexPeak(t *testing.T) {
	tmpl := []complex128{1, -1, complex(0, 1), complex(0, -1)}
	x := append(make([]complex128, 9), tmpl...)
	x = append(x, make([]complex128, 5)...)
	corr := CorrelateComplex(x, tmpl)
	_, idx := PeakAbs(corr)
	if idx != 9 {
		t.Fatalf("matched-filter peak at %d, want 9", idx)
	}
}

func TestDecimateAndUpsample(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6}
	d, err := Decimate(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{0, 3, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Decimate = %v, want %v", d, want)
		}
	}
	if _, err := Decimate(x, 0); err == nil {
		t.Fatal("Decimate(0) accepted")
	}

	u, err := Upsample([]float64{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantU := []float64{0, 1, 2, 2}
	for i := range wantU {
		if math.Abs(u[i]-wantU[i]) > 1e-12 {
			t.Fatalf("Upsample = %v, want %v", u, wantU)
		}
	}

	h, err := RepeatHold([]float64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantH := []float64{1, 1, 1, 2, 2, 2}
	for i := range wantH {
		if h[i] != wantH[i] {
			t.Fatalf("RepeatHold = %v, want %v", h, wantH)
		}
	}
}

func TestDecimateFloat(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	d, err := DecimateFloat(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 || d[0] != 0 || d[1] != 2 || d[2] != 4 {
		t.Fatalf("DecimateFloat = %v", d)
	}
	if _, err := DecimateFloat(x, -1); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func BenchmarkAddTone(b *testing.B) {
	dst := make([]complex128, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddToneTo(dst, 12345, 0.5, 1, 1e6)
	}
}

func BenchmarkNormalizedCrossCorrelation(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 2048)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	tmpl := x[1000:1096]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizedCrossCorrelation(x, tmpl)
	}
}
