package dsp

import "fmt"

// Decimate keeps every factor-th sample of x. It does not pre-filter; call
// a FIR low-pass first when aliasing matters.
func Decimate(x []complex128, factor int) ([]complex128, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	out := make([]complex128, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// DecimateFloat keeps every factor-th sample of a real signal.
func DecimateFloat(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d < 1", factor)
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// Upsample inserts factor−1 linearly interpolated samples between adjacent
// input samples, producing len(x)·factor outputs (the last input value is
// held). Linear interpolation suffices for the smooth sub-kHz envelopes CIB
// produces; no polyphase machinery is warranted.
func Upsample(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: upsample factor %d < 1", factor)
	}
	if factor == 1 || len(x) == 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	out := make([]float64, len(x)*factor)
	for i := 0; i < len(x); i++ {
		cur := x[i]
		next := cur
		if i+1 < len(x) {
			next = x[i+1]
		}
		for k := 0; k < factor; k++ {
			frac := float64(k) / float64(factor)
			out[i*factor+k] = cur + (next-cur)*frac
		}
	}
	return out, nil
}

// RepeatHold expands x by holding each sample factor times (zero-order
// hold), the shape a digital modulator presents to a DAC.
func RepeatHold(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: hold factor %d < 1", factor)
	}
	out := make([]float64, 0, len(x)*factor)
	for _, v := range x {
		for k := 0; k < factor; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}
