package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLowpassPassAndStop(t *testing.T) {
	f, err := DesignLowpass(0.1, 101, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if a := f.AttenuationDB(0.01); a > 0.5 {
		t.Fatalf("passband attenuation at 0.01 = %v dB, want ≈0", a)
	}
	if a := f.AttenuationDB(0.25); a < 40 {
		t.Fatalf("stopband attenuation at 0.25 = %v dB, want > 40", a)
	}
}

func TestLowpassUnityDCGain(t *testing.T) {
	f, err := DesignLowpass(0.2, 51, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tap := range f.Taps {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("DC gain = %v, want 1", sum)
	}
}

func TestHighpassRejectsDC(t *testing.T) {
	f, err := DesignHighpass(0.1, 101, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if a := f.AttenuationDB(0.001); a < 40 {
		t.Fatalf("DC attenuation = %v dB, want > 40", a)
	}
	if a := f.AttenuationDB(0.3); a > 1 {
		t.Fatalf("passband attenuation at 0.3 = %v dB, want ≈0", a)
	}
}

func TestBandpassShape(t *testing.T) {
	f, err := DesignBandpass(0.1, 0.2, 151, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if a := f.AttenuationDB(0.15); a > 1 {
		t.Fatalf("in-band attenuation = %v dB", a)
	}
	for _, stop := range []float64{0.02, 0.35} {
		if a := f.AttenuationDB(stop); a < 30 {
			t.Fatalf("out-of-band attenuation at %v = %v dB, want > 30", stop, a)
		}
	}
}

func TestBandstopRejectsNotch(t *testing.T) {
	// This is the SAW-filter model: reject the CIB band, pass the reader band.
	f, err := DesignBandstop(0.1, 0.2, 151, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if a := f.AttenuationDB(0.15); a < 30 {
		t.Fatalf("notch attenuation = %v dB, want > 30", a)
	}
	for _, pass := range []float64{0.02, 0.35} {
		if a := f.AttenuationDB(pass); a > 1.5 {
			t.Fatalf("passband attenuation at %v = %v dB", pass, a)
		}
	}
}

func TestDesignRejectsBadCutoff(t *testing.T) {
	for _, c := range []float64{-0.1, 0, 0.5, 0.9} {
		if _, err := DesignLowpass(c, 31, Hann); err == nil {
			t.Fatalf("DesignLowpass(%v) accepted an invalid cutoff", c)
		}
	}
	if _, err := DesignBandpass(0.3, 0.2, 31, Hann); err == nil {
		t.Fatal("DesignBandpass accepted an inverted band")
	}
	if _, err := DesignLowpass(0.1, 2, Hann); err == nil {
		t.Fatal("DesignLowpass accepted 2 taps")
	}
}

func TestEvenTapCountRoundedUp(t *testing.T) {
	f, err := DesignLowpass(0.1, 50, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len()%2 == 0 {
		t.Fatalf("tap count %d is even; symmetric design requires odd", f.Len())
	}
}

func TestFIRApplyConvolution(t *testing.T) {
	// Identity filter passes the signal unchanged.
	f := FIR{Taps: []float64{1}}
	x := []float64{1, 2, 3, 4}
	got := f.Apply(x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity filter altered sample %d", i)
		}
	}
	// Delay-by-one filter shifts right.
	d := FIR{Taps: []float64{0, 1}}
	got = d.Apply(x)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delay filter: got %v, want %v", got, want)
		}
	}
}

func TestFIRApplyComplexMatchesReal(t *testing.T) {
	f, err := DesignLowpass(0.2, 21, Hann)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -1, 2, 0.5, -0.25, 3, 1, 0}
	xc := make([]complex128, len(x))
	for i, v := range x {
		xc[i] = complex(v, 0)
	}
	want := f.Apply(x)
	got := f.ApplyComplex(xc)
	for i := range want {
		if math.Abs(real(got[i])-want[i]) > 1e-12 || math.Abs(imag(got[i])) > 1e-12 {
			t.Fatalf("sample %d: complex %v vs real %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	ma := MovingAverage(4)
	x := []float64{4, 4, 4, 4, 4, 4, 4, 4}
	got := ma.Apply(x)
	// After the warm-up region the output equals the input mean.
	for i := 3; i < len(got); i++ {
		if math.Abs(got[i]-4) > 1e-12 {
			t.Fatalf("steady-state sample %d = %v, want 4", i, got[i])
		}
	}
}

func TestSinglePoleConverges(t *testing.T) {
	p := SinglePole{Alpha: 0.2}
	var out float64
	for i := 0; i < 200; i++ {
		out = p.Step(10)
	}
	if math.Abs(out-10) > 1e-6 {
		t.Fatalf("single pole settled at %v, want 10", out)
	}
}

func TestRCAlphaLimits(t *testing.T) {
	if a := RCAlpha(0, 1e6); a != 1 {
		t.Fatalf("RCAlpha(0) = %v, want 1 (no smoothing)", a)
	}
	a := RCAlpha(1e-3, 1e6)
	if a <= 0 || a >= 1 {
		t.Fatalf("RCAlpha out of (0,1): %v", a)
	}
}

func TestGroupDelay(t *testing.T) {
	f, err := DesignLowpass(0.1, 101, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if gd := f.GroupDelay(); gd != 50 {
		t.Fatalf("group delay = %d, want 50", gd)
	}
}

func TestQuickLowpassStopbandBeatsPassband(t *testing.T) {
	f := func(c uint8) bool {
		cutoff := 0.05 + float64(c%30)/100 // 0.05..0.34
		fir, err := DesignLowpass(cutoff, 101, Blackman)
		if err != nil {
			return false
		}
		pass := fir.AttenuationDB(cutoff / 4)
		stop := fir.AttenuationDB(math.Min(0.49, cutoff*1.8+0.05))
		return stop > pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEndpointsAndPeak(t *testing.T) {
	for _, w := range []Window{Hann, Blackman} {
		c := w.Coefficients(65)
		if c[0] > 0.01 || c[64] > 0.01 {
			t.Fatalf("%v window endpoints not near zero: %v %v", w, c[0], c[64])
		}
		if math.Abs(c[32]-1) > 0.01 {
			t.Fatalf("%v window center = %v, want ≈1", w, c[32])
		}
	}
}

func TestWindowStringAndTrivialSizes(t *testing.T) {
	if Hamming.String() != "hamming" || Rectangular.String() != "rectangular" {
		t.Fatal("window names wrong")
	}
	if got := Hann.Coefficients(1); got[0] != 1 {
		t.Fatalf("single-sample window = %v, want 1", got[0])
	}
	if got := Hann.Coefficients(0); len(got) != 0 {
		t.Fatal("zero-length window not empty")
	}
}

func BenchmarkFIRApply(b *testing.B) {
	f, _ := DesignLowpass(0.1, 101, Blackman)
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(float64(i) / 10)
	}
	dst := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ApplyTo(dst, x)
	}
}
