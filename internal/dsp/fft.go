// Package dsp provides the signal-processing substrate for the IVN
// simulator: complex baseband buffers, FFT/IFFT, FIR filter design and
// application, envelope detection, correlation, and resampling.
//
// Everything operates on []complex128 (complex baseband) or []float64 (real
// envelopes). Functions that can avoid allocation accept destination slices,
// in the spirit of gopacket's preallocated decoding paths.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two; FFT panics otherwise since
// a wrong length is a programming error, not an input error.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization, so that IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

// twiddleCache memoizes per-size twiddle tables: for size n the table
// holds tw[k] = e^{-j·2πk/n} for k ∈ [0, n/2). Every stage of an n-point
// transform indexes the same table with stride n/size, so one table
// serves the whole transform, and repeated transforms of the simulator's
// few recurring sizes pay the Sincos cost once per size ever. Direct
// evaluation per entry (rather than accumulating w *= wBase) also removes
// the rounding drift of the running-product form.
var twiddleCache sync.Map // int -> []complex128

func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := twiddles(n)
	// Danielson-Lanczos butterflies. Stage `size` uses every (n/size)-th
	// table entry; the inverse transform conjugates on the fly.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// FFTReal transforms a real signal: it copies x into a zero-padded complex
// buffer of power-of-two length and returns its FFT.
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, NextPow2(len(x)))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// SpectrumPower returns |X[k]|² for every bin of a transformed buffer.
func SpectrumPower(X []complex128) []float64 {
	p := make([]float64, len(X))
	for i, v := range X {
		p[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return p
}

// Goertzel evaluates the DFT of x at a single normalized frequency
// f ∈ [0, 1) (cycles per sample) and returns the complex bin value. It is
// the right tool when only a handful of tones matter — e.g. measuring the
// per-carrier amplitude of a CIB transmission — because it is O(n) per tone
// with no power-of-two restriction.
func Goertzel(x []complex128, f float64) complex128 {
	w := 2 * math.Pi * f
	sw, cw := math.Sincos(w)
	coeff := complex(2*cw, 0)
	var s1, s2 complex128
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	// One final rotation yields the DFT bin (non-normalized).
	return s1*complex(cw, sw) - s2
}

// GoertzelReal is Goertzel for a real-valued signal.
func GoertzelReal(x []float64, f float64) complex128 {
	w := 2 * math.Pi * f
	sw, cw := math.Sincos(w)
	coeff := 2 * cw
	var s1, s2 float64
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	return complex(s1*cw-s2, s1*sw)
}
