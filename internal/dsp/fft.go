// Package dsp provides the signal-processing substrate for the IVN
// simulator: complex baseband buffers, FFT/IFFT, FIR filter design and
// application, envelope detection, correlation, and resampling.
//
// Everything operates on []complex128 (complex baseband) or []float64 (real
// envelopes). Functions that can avoid allocation accept destination slices,
// in the spirit of gopacket's preallocated decoding paths.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two; FFT panics otherwise since
// a wrong length is a programming error, not an input error.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalization, so that IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

// twiddleCache memoizes per-size twiddle tables: for size n the table
// holds tw[k] = e^{-j·2πk/n} for k ∈ [0, n/2). Every stage of an n-point
// transform indexes the same table with stride n/size, so one table
// serves the whole transform, and repeated transforms of the simulator's
// few recurring sizes pay the Sincos cost once per size ever. Direct
// evaluation per entry (rather than accumulating w *= wBase) also removes
// the rounding drift of the running-product form.
var twiddleCache sync.Map // int -> []complex128

func twiddles(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := twiddles(n)
	// Danielson-Lanczos butterflies. Stage `size` uses every (n/size)-th
	// table entry; the inverse transform conjugates on the fly.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k*stride]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// FFTReal transforms a real signal: it copies x into a zero-padded complex
// buffer of power-of-two length and returns its FFT.
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, NextPow2(len(x)))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// SpectrumPower returns |X[k]|² for every bin of a transformed buffer.
func SpectrumPower(X []complex128) []float64 {
	p := make([]float64, len(X))
	for i, v := range X {
		p[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return p
}

// Goertzel evaluates the DFT of x at a single normalized frequency
// f ∈ [0, 1) (cycles per sample) and returns the complex bin value. It is
// the right tool when only a handful of tones matter — e.g. measuring the
// per-carrier amplitude of a CIB transmission — because it is O(n) per tone
// with no power-of-two restriction.
func Goertzel(x []complex128, f float64) complex128 {
	w := 2 * math.Pi * f
	sw, cw := math.Sincos(w)
	coeff := complex(2*cw, 0)
	var s1, s2 complex128
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	// One final rotation yields the DFT bin (non-normalized).
	return s1*complex(cw, sw) - s2
}

// GoertzelReal is Goertzel for a real-valued signal.
func GoertzelReal(x []float64, f float64) complex128 {
	w := 2 * math.Pi * f
	sw, cw := math.Sincos(w)
	coeff := 2 * cw
	var s1, s2 float64
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2, s1 = s1, s0
	}
	return complex(s1*cw-s2, s1*sw)
}

// GoertzelBank evaluates the DFT of x at every frequency in freqs and
// writes the bin values into out (which must have length ≥ len(freqs)).
// A single Goertzel recurrence is a serial dependency chain — each step
// waits on the previous multiply — so evaluating bins one at a time
// leaves the FPU idle. The bank instead advances four bins per pass over
// x: the four recurrences are independent, overlapping their multiply
// latencies, and x is streamed once per group of four instead of once
// per bin. Each bin's recurrence is the exact operation sequence of
// GoertzelReal, so the results are bit-identical to calling it per bin
// (TestGoertzelBankBitExact).
func GoertzelBank(x []float64, freqs []float64, out []complex128) []complex128 {
	out = out[:len(freqs)]
	i := 0
	for ; i+4 <= len(freqs); i += 4 {
		goertzelReal4(x, freqs[i:i+4:i+4], out[i:i+4:i+4])
	}
	for ; i < len(freqs); i++ {
		out[i] = GoertzelReal(x, freqs[i])
	}
	return out
}

// goertzelReal4 runs four independent Goertzel recurrences in one pass
// over x.
func goertzelReal4(x []float64, freqs []float64, out []complex128) {
	_ = freqs[3]
	_ = out[3]
	w0 := 2 * math.Pi * freqs[0]
	sw0, cw0 := math.Sincos(w0)
	w1 := 2 * math.Pi * freqs[1]
	sw1, cw1 := math.Sincos(w1)
	w2 := 2 * math.Pi * freqs[2]
	sw2, cw2 := math.Sincos(w2)
	w3 := 2 * math.Pi * freqs[3]
	sw3, cw3 := math.Sincos(w3)
	k0, k1, k2, k3 := 2*cw0, 2*cw1, 2*cw2, 2*cw3
	var a1, a2, b1, b2, c1, c2, d1, d2 float64
	for _, v := range x {
		t0 := v + k0*a1 - a2
		a2, a1 = a1, t0
		t1 := v + k1*b1 - b2
		b2, b1 = b1, t1
		t2 := v + k2*c1 - c2
		c2, c1 = c1, t2
		t3 := v + k3*d1 - d2
		d2, d1 = d1, t3
	}
	out[0] = complex(a1*cw0-a2, a1*sw0)
	out[1] = complex(b1*cw1-b2, b1*sw1)
	out[2] = complex(c1*cw2-c2, c1*sw2)
	out[3] = complex(d1*cw3-d2, d1*sw3)
}
