package dsp

import (
	"math"

	"ivn/internal/pool"
)

// FFT-accelerated correlation. The direct NormalizedCrossCorrelation is
// O(n·m); for the reader's long coherent captures (seconds of samples
// against a ~100-sample preamble) the FFT path computes the same sliding
// dot products in O(n·log n) and normalizes with prefix sums.

// FFT-path crossover: the transform costs ≈3 FFTs of the padded size
// regardless of m, so it only beats the O(n·m) direct loop once the
// template is long AND the total work is large. Measured on this
// implementation the break-even sits near m ≈ 256.
const (
	fftCorrMinTemplate = 256
	fftCorrMinWork     = 1 << 21
)

// FastNormalizedCrossCorrelation computes exactly the same output as
// NormalizedCrossCorrelation, choosing the FFT path for large inputs.
func FastNormalizedCrossCorrelation(x, template []float64) []float64 {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return nil
	}
	if m < fftCorrMinTemplate || n*m < fftCorrMinWork {
		return NormalizedCrossCorrelation(x, template)
	}
	return fftNormalizedCrossCorrelationInto(make([]float64, n-m+1), x, template)
}

// fftNormalizedCrossCorrelation runs the FFT path unconditionally,
// regardless of the crossover heuristics; tests use it to compare the two
// paths on inputs of any size.
func fftNormalizedCrossCorrelation(x, template []float64) []float64 {
	return fftNormalizedCrossCorrelationInto(make([]float64, len(x)-len(template)+1), x, template)
}

// fftNormalizedCrossCorrelationInto writes the FFT-path correlation into
// out (length len(x)−len(template)+1) and returns it. All intermediate
// buffers come from the scratch pool, so repeated calls allocate nothing
// beyond what the caller provides for out.
func fftNormalizedCrossCorrelationInto(out, x, template []float64) []float64 {
	n, m := len(x), len(template)

	// Template statistics.
	tMean := Mean(template)
	var tNorm float64
	tc := pool.Float64(m)
	for i, v := range template {
		tc[i] = v - tMean
		tNorm += tc[i] * tc[i]
	}
	tNorm = math.Sqrt(tNorm)
	if tNorm == 0 {
		pool.PutFloat64(tc)
		for i := range out {
			out[i] = 0 // zero-variance template correlates as 0 everywhere
		}
		return out
	}

	// Sliding dot products x ⋆ (t − t̄) via FFT convolution.
	size := NextPow2(n + m)
	fx := pool.Complex128(size)
	ft := pool.Complex128(size)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	// Correlation = convolution with the reversed template.
	for i, v := range tc {
		ft[m-1-i] = complex(v, 0)
	}
	pool.PutFloat64(tc)
	FFT(fx)
	FFT(ft)
	for i := range fx {
		fx[i] *= ft[i]
	}
	IFFT(fx)
	pool.PutComplex128(ft)

	// Segment means and energies via prefix sums.
	prefix := pool.Float64(n + 1)
	prefixSq := pool.Float64(n + 1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	fm := float64(m)
	for lag := range out {
		sum := prefix[lag+m] - prefix[lag]
		sumSq := prefixSq[lag+m] - prefixSq[lag]
		segMean := sum / fm
		// Σ(x−x̄)(t−t̄) = Σ x·(t−t̄) − x̄·Σ(t−t̄); the second term vanishes
		// because Σ(t−t̄)=0, and dot[lag] sits at index lag+m−1 of the
		// linear convolution still held in fx.
		dot := real(fx[lag+m-1])
		xVar := sumSq - fm*segMean*segMean
		if xVar < 0 {
			xVar = 0 // numeric guard
		}
		den := math.Sqrt(xVar) * tNorm
		if den == 0 {
			out[lag] = 0
		} else {
			out[lag] = dot / den
		}
	}
	pool.PutFloat64(prefixSq)
	pool.PutFloat64(prefix)
	pool.PutComplex128(fx)
	return out
}

// FastMaxCorrelation mirrors MaxCorrelation over the fast path, reducing
// a pooled correlation series so steady-state calls allocate nothing.
func FastMaxCorrelation(x, template []float64) (best float64, lag int) {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return 0, -1
	}
	buf := pool.Float64(n - m + 1)
	var corr []float64
	if m < fftCorrMinTemplate || n*m < fftCorrMinWork {
		corr = normalizedCrossCorrelationInto(buf, x, template)
	} else {
		corr = fftNormalizedCrossCorrelationInto(buf, x, template)
	}
	best, lag = corr[0], 0
	for i, v := range corr[1:] {
		if v > best {
			best, lag = v, i+1
		}
	}
	pool.PutFloat64(buf)
	return best, lag
}
