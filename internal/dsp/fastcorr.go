package dsp

import "math"

// FFT-accelerated correlation. The direct NormalizedCrossCorrelation is
// O(n·m); for the reader's long coherent captures (seconds of samples
// against a ~100-sample preamble) the FFT path computes the same sliding
// dot products in O(n·log n) and normalizes with prefix sums.

// FFT-path crossover: the transform costs ≈3 FFTs of the padded size
// regardless of m, so it only beats the O(n·m) direct loop once the
// template is long AND the total work is large. Measured on this
// implementation the break-even sits near m ≈ 256.
const (
	fftCorrMinTemplate = 256
	fftCorrMinWork     = 1 << 21
)

// FastNormalizedCrossCorrelation computes exactly the same output as
// NormalizedCrossCorrelation, choosing the FFT path for large inputs.
func FastNormalizedCrossCorrelation(x, template []float64) []float64 {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return nil
	}
	if m < fftCorrMinTemplate || n*m < fftCorrMinWork {
		return NormalizedCrossCorrelation(x, template)
	}
	return fftNormalizedCrossCorrelation(x, template)
}

func fftNormalizedCrossCorrelation(x, template []float64) []float64 {
	n, m := len(x), len(template)
	out := make([]float64, n-m+1)

	// Template statistics.
	tMean := Mean(template)
	var tNorm float64
	tc := make([]float64, m)
	for i, v := range template {
		tc[i] = v - tMean
		tNorm += tc[i] * tc[i]
	}
	tNorm = math.Sqrt(tNorm)
	if tNorm == 0 {
		return out // zero-variance template correlates as 0 everywhere
	}

	// Sliding dot products x ⋆ (t − t̄) via FFT convolution.
	size := NextPow2(n + m)
	fx := make([]complex128, size)
	ft := make([]complex128, size)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	// Correlation = convolution with the reversed template.
	for i, v := range tc {
		ft[m-1-i] = complex(v, 0)
	}
	FFT(fx)
	FFT(ft)
	for i := range fx {
		fx[i] *= ft[i]
	}
	IFFT(fx)
	// dot[lag] lands at index lag + m - 1 of the linear convolution.
	dots := make([]float64, n-m+1)
	for lag := range dots {
		dots[lag] = real(fx[lag+m-1])
	}

	// Segment means and energies via prefix sums.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	fm := float64(m)
	for lag := range out {
		sum := prefix[lag+m] - prefix[lag]
		sumSq := prefixSq[lag+m] - prefixSq[lag]
		segMean := sum / fm
		// Σ(x−x̄)(t−t̄) = Σ x·(t−t̄) − x̄·Σ(t−t̄) = dots[lag] (Σ(t−t̄)=0).
		dot := dots[lag]
		xVar := sumSq - fm*segMean*segMean
		if xVar < 0 {
			xVar = 0 // numeric guard
		}
		den := math.Sqrt(xVar) * tNorm
		if den == 0 {
			out[lag] = 0
		} else {
			out[lag] = dot / den
		}
	}
	return out
}

// FastMaxCorrelation mirrors MaxCorrelation over the fast path.
func FastMaxCorrelation(x, template []float64) (best float64, lag int) {
	corr := FastNormalizedCrossCorrelation(x, template)
	if len(corr) == 0 {
		return 0, -1
	}
	best, lag = corr[0], 0
	for i, v := range corr[1:] {
		if v > best {
			best, lag = v, i+1
		}
	}
	return best, lag
}
