package dsp

import (
	"math"
	"math/cmplx"
)

// Tone synthesizes n samples of a complex exponential e^{j(2πft/fs + phase)}
// with amplitude amp at sample rate fs.
//
//ivn:unit freq Hz
//ivn:unit phase rad
//ivn:unit fs Hz
func Tone(n int, freq, phase, amp, fs float64) []complex128 {
	out := make([]complex128, n)
	AddToneTo(out, freq, phase, amp, fs)
	return out
}

// AddToneTo accumulates a complex exponential into dst. Accumulation (rather
// than overwrite) is the natural primitive for multi-carrier synthesis: a
// CIB transmission is exactly a sum of tones with distinct frequencies and
// phases.
//
//ivn:unit freq Hz
//ivn:unit phase rad
//ivn:unit fs Hz
//ivn:hotpath
func AddToneTo(dst []complex128, freq, phase, amp, fs float64) {
	// Phasor recurrence: one complex multiply per sample instead of a
	// Sincos call. Renormalize periodically to bound drift.
	step := 2 * math.Pi * freq / fs
	ss, cs := math.Sincos(step)
	rot := complex(cs, ss)
	s0, c0 := math.Sincos(phase)
	cur := complex(amp*c0, amp*s0)
	for i := range dst {
		dst[i] += cur
		cur *= rot
		if i&1023 == 1023 {
			// Re-anchor magnitude to amp to cancel accumulated rounding.
			m := cmplx.Abs(cur)
			if m != 0 {
				cur = cur * complex(amp/m, 0)
			}
		}
	}
}

// Mix frequency-shifts x by shift Hz at sample rate fs, in place, and
// returns x. Mixing by -f downconverts a carrier at f to DC.
//
//ivn:unit shift Hz
//ivn:unit fs Hz
func Mix(x []complex128, shift, fs float64) []complex128 {
	step := 2 * math.Pi * shift / fs
	ss, cs := math.Sincos(step)
	rot := complex(cs, ss)
	cur := complex(1, 0)
	for i := range x {
		x[i] *= cur
		cur *= rot
		if i&1023 == 1023 {
			m := cmplx.Abs(cur)
			if m != 0 {
				cur = cur * complex(1/m, 0)
			}
		}
	}
	return x
}

// Magnitude writes |x[i]| into a new slice.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Power writes |x[i]|² into a new slice.
func Power(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// PeakAbs returns the maximum |x[i]| and its index. For an empty slice it
// returns (0, -1).
func PeakAbs(x []complex128) (peak float64, idx int) {
	idx = -1
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > peak {
			peak, idx = m, i
		}
	}
	return math.Sqrt(peak), idx
}

// PeakFloat returns the maximum value and index of a real signal. For an
// empty slice it returns (-Inf, -1).
func PeakFloat(x []float64) (peak float64, idx int) {
	peak, idx = math.Inf(-1), -1
	for i, v := range x {
		if v > peak {
			peak, idx = v, i
		}
	}
	return
}

// MeanPower returns the average of |x[i]|².
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc / float64(len(x))
}

// Energy returns Σ|x[i]|².
func Energy(x []complex128) float64 {
	var acc float64
	for _, v := range x {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}

// Scale multiplies every sample by k in place and returns x.
func Scale(x []complex128, k float64) []complex128 {
	ck := complex(k, 0)
	for i := range x {
		x[i] *= ck
	}
	return x
}

// AddInto accumulates src into dst (dst[i] += src[i]); the slices must have
// equal length.
func AddInto(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: AddInto length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// DB converts a power ratio to decibels; DB(0) is -Inf.
//
//ivn:unit powerRatio 1
//ivn:unit return dB
func DB(powerRatio float64) float64 {
	return 10 * math.Log10(powerRatio)
}

// FromDB converts decibels to a power ratio.
//
//ivn:unit db dB
//ivn:unit return 1
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeFromDB converts decibels to an amplitude (voltage) ratio.
//
//ivn:unit db dB
//ivn:unit return 1
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// Envelope returns the instantaneous amplitude |x| smoothed by a single-pole
// RC with the given time constant. This mirrors the diode+RC envelope
// detector a backscatter tag uses to decode reader commands.
//
//ivn:unit tau s
//ivn:unit fs Hz
func Envelope(x []complex128, tau, fs float64) []float64 {
	out := make([]float64, len(x))
	p := SinglePole{Alpha: RCAlpha(tau, fs)}
	if len(x) > 0 {
		p.Reset(cmplx.Abs(x[0]))
	}
	for i, v := range x {
		out[i] = p.Step(cmplx.Abs(v))
	}
	return out
}

// FluctuationRatio returns (max − min)/max of a positive envelope segment —
// the paper's amplitude-flatness metric α (Eq. 7). It returns 0 for an
// empty or all-zero segment.
func FluctuationRatio(env []float64) float64 {
	if len(env) == 0 {
		return 0
	}
	lo, hi := env[0], env[0]
	for _, v := range env[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= 0 {
		return 0
	}
	return (hi - lo) / hi
}

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
