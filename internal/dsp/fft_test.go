package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if !approxEq(real(v), 1, 1e-12) || !approxEq(imag(v), 0, 1e-12) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTKnownDC(t *testing.T) {
	// FFT of a constant signal concentrates all energy in bin 0.
	x := make([]complex128, 16)
	for i := range x {
		x[i] = 3
	}
	FFT(x)
	if !approxEq(real(x[0]), 48, 1e-9) {
		t.Fatalf("DC bin = %v, want 48", x[0])
	}
	for i, v := range x[1:] {
		if cmplx.Abs(v) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i+1, v)
		}
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	// A complex exponential at bin k lands exactly in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * k * float64(i) / n
		s, c := math.Sincos(ph)
		x[i] = complex(c, s)
	}
	FFT(x)
	for i, v := range x {
		want := 0.0
		if i == k {
			want = n
		}
		if !approxEq(cmplx.Abs(v), want, 1e-9) {
			t.Fatalf("bin %d magnitude = %v, want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestIFFTInverts(t *testing.T) {
	r := rng.New(1)
	x := make([]complex128, 256)
	for i := range x {
		x[i] = r.ComplexCircular(1)
	}
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("sample %d: round trip %v != %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rng.New(2)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = r.ComplexCircular(1)
	}
	timeEnergy := Energy(x)
	FFT(x)
	freqEnergy := Energy(x) / float64(len(x))
	if !approxEq(timeEnergy, freqEnergy, 1e-8*timeEnergy) {
		t.Fatalf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rng.New(3)
	const n = 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = r.ComplexCircular(1)
		b[i] = r.ComplexCircular(1)
		sum[i] = a[i] + 2*b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for i := 0; i < n; i++ {
		want := a[i] + 2*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 12 did not panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestFFTEmptyAndSingle(t *testing.T) {
	FFT(nil) // must not panic
	x := []complex128{complex(2, 1)}
	FFT(x)
	if x[0] != complex(2, 1) {
		t.Fatalf("length-1 FFT changed the sample: %v", x[0])
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	r := rng.New(4)
	const n = 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = r.ComplexCircular(1)
	}
	X := make([]complex128, n)
	copy(X, x)
	FFT(X)
	for _, k := range []int{0, 1, 7, 63, 100} {
		got := Goertzel(x, float64(k)/n)
		if cmplx.Abs(got-X[k]) > 1e-6*(1+cmplx.Abs(X[k])) {
			t.Fatalf("Goertzel bin %d = %v, FFT = %v", k, got, X[k])
		}
	}
}

func TestGoertzelRealTone(t *testing.T) {
	const n = 1000
	const k = 50.0 // cycles over the record
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * k * float64(i) / n)
	}
	// A real cosine of amplitude 1 puts magnitude n/2 at its frequency.
	got := cmplx.Abs(GoertzelReal(x, k/n))
	if !approxEq(got, n/2, 1) {
		t.Fatalf("GoertzelReal magnitude = %v, want ≈%v", got, n/2.0)
	}
	// And near-zero far away from it.
	off := cmplx.Abs(GoertzelReal(x, 0.31))
	if off > n*0.01 {
		t.Fatalf("GoertzelReal off-tone leakage = %v", off)
	}
}

func TestQuickFFTRoundTrip(t *testing.T) {
	r := rng.New(5)
	f := func(sizeExp uint8, seed uint32) bool {
		n := 1 << (sizeExp%9 + 1) // 2..512
		local := r.Split("case")
		_ = seed
		x := make([]complex128, n)
		for i := range x {
			x[i] = local.ComplexCircular(1)
		}
		orig := make([]complex128, n)
		copy(orig, x)
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rng.New(1)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = r.ComplexCircular(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
