package dsp

import (
	"math"

	"ivn/internal/pool"
)

// NormalizedCrossCorrelation slides template over x and returns, at each
// lag, the Pearson-style normalized correlation in [-1, 1]:
//
//	ρ[lag] = Σ (x[lag+k]−x̄)(t[k]−t̄) / (‖x−x̄‖·‖t−t̄‖)
//
// The output has len(x)−len(template)+1 entries; it is empty when the
// template is longer than the signal. IVN's in-vivo evaluation declares a
// communication successful when the best correlation against the tag's
// known 12-bit FM0 preamble exceeds 0.8 (paper §6.2).
func NormalizedCrossCorrelation(x, template []float64) []float64 {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return nil
	}
	return normalizedCrossCorrelationInto(make([]float64, n-m+1), x, template)
}

// normalizedCrossCorrelationInto writes the direct-path correlation into
// out (which must have length len(x)−len(template)+1) and returns it,
// letting callers that only reduce the series use pooled scratch. The
// per-lag inner product runs through the 4-wide unrolled kernel; the
// simple loop is retained as normalizedCrossCorrelationRef and the two
// are pinned bit-identical (TestCorrelationUnrollBitExact).
func normalizedCrossCorrelationInto(out, x, template []float64) []float64 {
	m := len(template)
	tMean := Mean(template)
	var tNorm float64
	for _, v := range template {
		d := v - tMean
		tNorm += d * d
	}
	tNorm = math.Sqrt(tNorm)

	for lag := range out {
		seg := x[lag : lag+m]
		segMean := Mean(seg)
		dot, xNorm := centeredDotAndEnergy(seg, template, segMean, tMean)
		den := math.Sqrt(xNorm) * tNorm
		if den == 0 {
			out[lag] = 0
		} else {
			out[lag] = dot / den
		}
	}
	return out
}

// centeredDotAndEnergy returns Σ(seg[k]−segMean)(t[k]−tMean) and
// Σ(seg[k]−segMean)², unrolled four elements per iteration. The
// accumulators stay scalar and every add lands in the same order as the
// one-element loop, so the unroll is bit-identical to the reference — it
// buys reduced loop overhead and bounds-check elision, not reassociation.
func centeredDotAndEnergy(seg, template []float64, segMean, tMean float64) (dot, xNorm float64) {
	m := len(template)
	seg = seg[:m]
	k := 0
	for ; k+4 <= m; k += 4 {
		dx := seg[k] - segMean
		dot += dx * (template[k] - tMean)
		xNorm += dx * dx
		dx = seg[k+1] - segMean
		dot += dx * (template[k+1] - tMean)
		xNorm += dx * dx
		dx = seg[k+2] - segMean
		dot += dx * (template[k+2] - tMean)
		xNorm += dx * dx
		dx = seg[k+3] - segMean
		dot += dx * (template[k+3] - tMean)
		xNorm += dx * dx
	}
	for ; k < m; k++ {
		dx := seg[k] - segMean
		dot += dx * (template[k] - tMean)
		xNorm += dx * dx
	}
	return dot, xNorm
}

// normalizedCrossCorrelationRef is the pre-unroll reference
// implementation, retained so the specialized kernel stays testable
// against the original arithmetic.
func normalizedCrossCorrelationRef(out, x, template []float64) []float64 {
	m := len(template)
	tMean := Mean(template)
	var tNorm float64
	for _, v := range template {
		d := v - tMean
		tNorm += d * d
	}
	tNorm = math.Sqrt(tNorm)

	for lag := range out {
		seg := x[lag : lag+m]
		segMean := Mean(seg)
		var dot, xNorm float64
		for k, tv := range template {
			dx := seg[k] - segMean
			dt := tv - tMean
			dot += dx * dt
			xNorm += dx * dx
		}
		den := math.Sqrt(xNorm) * tNorm
		if den == 0 {
			out[lag] = 0
		} else {
			out[lag] = dot / den
		}
	}
	return out
}

// MaxCorrelation returns the highest normalized cross-correlation value and
// the lag where it occurs. For degenerate inputs it returns (0, -1). The
// correlation series lives in pooled scratch, so the reduction allocates
// nothing in steady state.
//ivn:hotpath
func MaxCorrelation(x, template []float64) (best float64, lag int) {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return 0, -1
	}
	buf := pool.Float64(n - m + 1)
	corr := normalizedCrossCorrelationInto(buf, x, template)
	best, lag = corr[0], 0
	for i, v := range corr[1:] {
		if v > best {
			best, lag = v, i+1
		}
	}
	pool.PutFloat64(buf)
	return best, lag
}

// CorrelateComplex computes the (non-normalized) complex cross-correlation
// of x against template: out[lag] = Σ x[lag+k]·conj(t[k]). Used for matched
// filtering of backscatter responses before coherent combining.
func CorrelateComplex(x, template []complex128) []complex128 {
	n, m := len(x), len(template)
	if m == 0 || n < m {
		return nil
	}
	out := make([]complex128, n-m+1)
	for lag := range out {
		var acc complex128
		for k, tv := range template {
			xv := x[lag+k]
			// x·conj(t)
			acc += complex(
				real(xv)*real(tv)+imag(xv)*imag(tv),
				imag(xv)*real(tv)-real(xv)*imag(tv),
			)
		}
		out[lag] = acc
	}
	return out
}

// CoherentAverage splits x into periods of periodLen samples and returns
// their element-wise complex mean. Averaging K periods coherently boosts a
// periodic signal's SNR by a factor of K; IVN's out-of-band reader averages
// tag responses over 1-second CIB envelope periods to survive deep-tissue
// attenuation (paper §5b). Leftover samples past the last full period are
// discarded. It returns nil when x holds no complete period.
func CoherentAverage(x []complex128, periodLen int) []complex128 {
	if periodLen <= 0 || len(x) < periodLen {
		return nil
	}
	periods := len(x) / periodLen
	out := make([]complex128, periodLen)
	for p := 0; p < periods; p++ {
		seg := x[p*periodLen : (p+1)*periodLen]
		for i, v := range seg {
			out[i] += v
		}
	}
	inv := complex(1/float64(periods), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}
