package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func TestFastCorrelationMatchesDirect(t *testing.T) {
	r := rng.New(1)
	x := make([]float64, 3000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	tmpl := x[1200:1296]
	direct := NormalizedCrossCorrelation(x, tmpl)
	fast := fftNormalizedCrossCorrelation(x, tmpl)
	if len(direct) != len(fast) {
		t.Fatalf("length mismatch %d vs %d", len(direct), len(fast))
	}
	for i := range direct {
		if math.Abs(direct[i]-fast[i]) > 1e-9 {
			t.Fatalf("lag %d: direct %v, fft %v", i, direct[i], fast[i])
		}
	}
}

func TestFastCorrelationFindsEmbeddedTemplate(t *testing.T) {
	r := rng.New(2)
	tmpl := make([]float64, 300)
	for i := range tmpl {
		if i%3 == 0 {
			tmpl[i] = 1
		} else {
			tmpl[i] = -1
		}
	}
	// Large capture so the FFT path engages via the public API.
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = 0.3 * r.NormFloat64()
	}
	const at = 9137
	for i, v := range tmpl {
		x[at+i] += v
	}
	best, lag := FastMaxCorrelation(x, tmpl)
	if lag != at {
		t.Fatalf("found lag %d, want %d", lag, at)
	}
	if best < 0.8 {
		t.Fatalf("correlation %v", best)
	}
}

func TestFastCorrelationDegenerate(t *testing.T) {
	if FastNormalizedCrossCorrelation(nil, []float64{1}) != nil {
		t.Fatal("nil signal accepted")
	}
	if FastNormalizedCrossCorrelation([]float64{1}, nil) != nil {
		t.Fatal("empty template accepted")
	}
	if _, lag := FastMaxCorrelation(nil, []float64{1}); lag != -1 {
		t.Fatal("degenerate lag != -1")
	}
	// Zero-variance template correlates as 0 on the FFT path.
	x := make([]float64, 2048)
	tmpl := make([]float64, 256) // all zeros
	out := fftNormalizedCrossCorrelation(x, tmpl)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("lag %d = %v for zero-variance template", i, v)
		}
	}
}

func TestQuickFastCorrelationEquivalence(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw, mRaw uint8, offsetRaw uint16) bool {
		n := 200 + int(nRaw)*8
		m := 8 + int(mRaw)%64
		if m > n {
			m = n
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() + 2
		}
		off := int(offsetRaw) % (n - m + 1)
		tmpl := append([]float64(nil), x[off:off+m]...)
		direct := NormalizedCrossCorrelation(x, tmpl)
		fast := fftNormalizedCrossCorrelation(x, tmpl)
		for i := range direct {
			if math.Abs(direct[i]-fast[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func benchCorrInput(m int) ([]float64, []float64) {
	r := rng.New(1)
	x := make([]float64, 1<<15)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x, x[100 : 100+m]
}

func BenchmarkDirectCorrelationLongTemplate(b *testing.B) {
	x, tmpl := benchCorrInput(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizedCrossCorrelation(x, tmpl)
	}
}

func BenchmarkFastCorrelationLongTemplate(b *testing.B) {
	x, tmpl := benchCorrInput(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FastNormalizedCrossCorrelation(x, tmpl)
	}
}

func BenchmarkFastCorrelationShortTemplate(b *testing.B) {
	// Short templates must take the direct path (no FFT overhead).
	x, tmpl := benchCorrInput(96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FastNormalizedCrossCorrelation(x, tmpl)
	}
}
