package dsp

import (
	"math/cmplx"
	"testing"

	"ivn/internal/rng"
)

// TestCorrelationUnrollBitExact pins the 4-wide unrolled correlation
// kernel to the retained reference implementation, bit for bit: scalar
// accumulators and in-order adds mean the unroll may not change a single
// ulp.
func TestCorrelationUnrollBitExact(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		m := 1 + r.Intn(40)
		n := m + r.Intn(300)
		x := make([]float64, n)
		tmpl := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range tmpl {
			tmpl[i] = r.NormFloat64()
		}
		got := normalizedCrossCorrelationInto(make([]float64, n-m+1), x, tmpl)
		want := normalizedCrossCorrelationRef(make([]float64, n-m+1), x, tmpl)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d m=%d) lag %d: unrolled %v != reference %v",
					trial, n, m, i, got[i], want[i])
			}
		}
	}
}

// TestGoertzelBankBitExact pins the 4-wide bank to per-bin GoertzelReal:
// each bin's recurrence is the same operation sequence, so the bank must
// agree exactly — including for bin counts with a remainder group.
func TestGoertzelBankBitExact(t *testing.T) {
	r := rng.New(9)
	x := make([]float64, 512)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for _, bins := range []int{1, 2, 3, 4, 5, 7, 8, 10, 13} {
		freqs := make([]float64, bins)
		for i := range freqs {
			freqs[i] = r.Float64() * 0.5
		}
		out := GoertzelBank(x, freqs, make([]complex128, bins))
		for i, f := range freqs {
			if want := GoertzelReal(x, f); out[i] != want {
				t.Fatalf("%d bins: bin %d (f=%v): bank %v != per-bin %v", bins, i, f, out[i], want)
			}
		}
	}
}

// TestGoertzelBankMatchesDFT sanity-checks the bank against a direct DFT
// evaluation at ≤1e-9 relative tolerance — the kernel-equivalence
// convention of the repo's specialized kernels.
func TestGoertzelBankMatchesDFT(t *testing.T) {
	r := rng.New(13)
	n := 257
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	freqs := []float64{0, 0.01, 0.125, 0.33, 0.499}
	out := GoertzelBank(x, freqs, make([]complex128, len(freqs)))
	for i, f := range freqs {
		var want complex128
		for k, v := range x {
			want += complex(v, 0) * cmplx.Exp(complex(0, -2*3.141592653589793*f*float64(k)))
		}
		// Goertzel's convention conjugates relative to the DFT sign used
		// here; compare magnitudes and the self-consistency of repeat runs.
		if gm, wm := cmplx.Abs(out[i]), cmplx.Abs(want); absDiff(gm, wm) > 1e-9*(1+wm) {
			t.Fatalf("bin %d (f=%v): |bank| %v, |DFT| %v", i, f, gm, wm)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func BenchmarkMaxCorrelation4096x96(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 4096)
	tmpl := make([]float64, 96)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range tmpl {
		tmpl[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxCorrelation(x, tmpl)
	}
}

func BenchmarkGoertzelBank8Bins4096(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 4096)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	freqs := []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
	out := make([]complex128, len(freqs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GoertzelBank(x, freqs, out)
	}
}
