// Package baseline implements the comparators IVN is evaluated against:
//
//   - SingleAntenna: one transmit chain (the denominator of every "power
//     gain" number in the paper).
//   - BlindArray: the paper's "10-antenna transmitter" — N chains on the
//     SAME carrier frequency with unknown random phases. Its gain over a
//     single antenna comes entirely from radiating N× total power; at any
//     given point the phasors may also cancel.
//   - OracleMRT: coherent maximum-ratio beamforming with perfect channel
//     knowledge — the upper bound that is unobtainable for battery-free
//     sensors (it needs channel feedback) but shows what CIB is giving up.
//   - PhasedArray: angle-steered precoding assuming free-space geometry;
//     correct in line-of-sight air, wrong through inhomogeneous tissue
//     (footnote 5 of the paper).
package baseline

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivn/internal/phasor"
	"ivn/internal/pool"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

// SingleAntenna returns the one-chain carrier set at freq with the given
// emitted amplitude (√W).
func SingleAntenna(freq, amplitude float64) []radio.Carrier {
	return []radio.Carrier{{Freq: freq, Phase: 0, Amplitude: amplitude}}
}

// BlindArray returns n same-frequency carriers with independent random
// phases, each emitting perAntennaAmplitude. This is the optimized
// multi-antenna baseline of §6.1.1(c): it cannot focus because it has no
// channel knowledge and — unlike CIB — no frequency diversity to scan
// alignments over time.
func BlindArray(n int, freq, perAntennaAmplitude float64, r *rng.Rand) ([]radio.Carrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	return BlindArrayInto(make([]radio.Carrier, 0, n), n, freq, perAntennaAmplitude, r)
}

// BlindArrayInto appends the blind-array carrier set to dst and returns
// it, drawing the same phase sequence as BlindArray.
func BlindArrayInto(dst []radio.Carrier, n int, freq, perAntennaAmplitude float64, r *rng.Rand) ([]radio.Carrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, radio.Carrier{Freq: freq, Phase: r.Phase(), Amplitude: perAntennaAmplitude})
	}
	return dst, nil
}

// OracleMRT returns n same-frequency carriers whose phases pre-rotate
// each channel's phase away (maximum-ratio transmission), given perfect
// knowledge of the channel coefficients. All phasors then add coherently
// at the sensor: the unreachable ideal for battery-free devices.
func OracleMRT(freq, perAntennaAmplitude float64, chans []complex128) ([]radio.Carrier, error) {
	return OracleMRTInto(make([]radio.Carrier, 0, len(chans)), freq, perAntennaAmplitude, chans)
}

// OracleMRTInto appends the maximum-ratio carrier set to dst and returns
// it.
func OracleMRTInto(dst []radio.Carrier, freq, perAntennaAmplitude float64, chans []complex128) ([]radio.Carrier, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("baseline: no channels")
	}
	for _, h := range chans {
		dst = append(dst, radio.Carrier{
			Freq:      freq,
			Phase:     -cmplx.Phase(h),
			Amplitude: perAntennaAmplitude,
		})
	}
	return dst, nil
}

// PhasedArray returns carriers precoded to steer a free-space beam toward
// a target at the given angle, for antennas spaced `spacing` meters apart
// along a line. The precoding assumes air propagation: through layered
// tissue the true phases differ and the beam degrades — exactly why
// angle-steering fails for in-vivo sensors (§7, "Antenna-array
// beamforming... becomes intractable with multi-layer tissues").
func PhasedArray(n int, freq, perAntennaAmplitude, spacing, steerAngle float64) ([]radio.Carrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("baseline: spacing %v <= 0", spacing)
	}
	lambda := 299792458.0 / freq
	out := make([]radio.Carrier, n)
	for i := range out {
		// Progressive phase to align path lengths toward steerAngle.
		ph := 2 * math.Pi * float64(i) * spacing * math.Sin(steerAngle) / lambda
		out[i] = radio.Carrier{Freq: freq, Phase: ph, Amplitude: perAntennaAmplitude}
	}
	return out, nil
}

// scanSpec validates a (carriers, chans, duration, samples) scan request.
// It returns done=true when the caller should return immediately with the
// given power/err (empty carrier set, or an invalid spec).
func scanSpec(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (power float64, done bool, err error) {
	if len(carriers) != len(chans) {
		//ivn:allow hotpath cold validation exit; a mismatched scan spec never reaches the steady-state loop
		return 0, true, fmt.Errorf("baseline: %d carriers, %d channels", len(carriers), len(chans))
	}
	if len(carriers) == 0 {
		return 0, true, nil
	}
	if duration <= 0 || samples < 1 {
		//ivn:allow hotpath cold validation exit; an invalid scan spec never reaches the steady-state loop
		return 0, true, fmt.Errorf("baseline: bad scan spec duration=%v samples=%d", duration, samples)
	}
	return 0, false, nil
}

// carrierPhasors fills pooled scratch with the kernel representation of a
// carrier set seen through per-carrier channels: baseband frequencies
// relative to the first carrier, and complex coefficients
// Aᵢ·e^{jφᵢ}·hᵢ. Callers must release both slices via pool.PutFloat64 /
// pool.PutComplex128.
func carrierPhasors(carriers []radio.Carrier, chans []complex128) (freqs []float64, coeffs []complex128) {
	f0 := carriers[0].Freq
	freqs = pool.Float64(len(carriers))
	coeffs = pool.Complex128(len(carriers))
	for i, c := range carriers {
		freqs[i] = c.Freq - f0
		s, cs := math.Sincos(c.Phase)
		coeffs[i] = complex(c.Amplitude*cs, c.Amplitude*s) * chans[i]
	}
	//ivn:allow pooldiscipline ownership transfers to the caller by documented contract; every caller Puts both slices
	return freqs, coeffs
}

// PeakReceivedPower returns the maximum instantaneous power of the
// superposition of carriers through the given per-carrier channels,
// scanned over the half-open interval [0, duration) at `samples` equally
// spaced points t_k = duration·k/samples, k = 0..samples−1; the endpoint
// t = duration is excluded (for a full beat period it duplicates t = 0).
// For same-frequency carrier sets the envelope is constant and one sample
// suffices; for CIB sets the scan finds the beat maximum. This is the
// quantity the paper's "peak power" measurements capture (§6.1.1).
//
// The scan runs on the shared phasor-recurrence kernel
// (internal/phasor); NaivePeakReceivedPower retains the direct
// per-sample evaluation as the golden reference.
//ivn:hotpath
func PeakReceivedPower(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (float64, error) {
	if p, done, err := scanSpec(carriers, chans, duration, samples); done {
		return p, err
	}
	freqs, coeffs := carrierPhasors(carriers, chans)
	best := phasor.PeakPower(freqs, coeffs, 0, duration/float64(samples), samples)
	pool.PutComplex128(coeffs)
	pool.PutFloat64(freqs)
	return best, nil
}

// PeakReceivedPowerRefined is PeakReceivedPower with a coarse-to-fine
// scan: a coarse pass over coarseSamples points locates the top beat
// cells, then only their neighborhoods are rescanned at the full
// `samples` resolution. The result is always the power at one of the
// fine-grid sample points of PeakReceivedPower's half-open [0, duration)
// grid, and matches the full scan whenever the coarse grid still
// oversamples the envelope (true for flatness-constrained CIB plans,
// whose beat bandwidth is ≤ a few hundred Hz, against coarse grids of
// thousands of points per second). samples must be a positive multiple of
// coarseSamples for refinement to engage; otherwise the full scan runs.
//ivn:hotpath
func PeakReceivedPowerRefined(carriers []radio.Carrier, chans []complex128, duration float64, coarseSamples, samples int) (float64, error) {
	if p, done, err := scanSpec(carriers, chans, duration, samples); done {
		return p, err
	}
	freqs, coeffs := carrierPhasors(carriers, chans)
	best := phasor.PeakPowerRefined(freqs, coeffs, duration, coarseSamples, samples)
	pool.PutComplex128(coeffs)
	pool.PutFloat64(freqs)
	return best, nil
}

// NaivePeakReceivedPower is the direct evaluation of PeakReceivedPower —
// one Sincos per carrier per sample on the same half-open [0, duration)
// grid. It is kept as the golden reference the kernel-backed scans are
// tested against and is not used on any hot path.
func NaivePeakReceivedPower(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (float64, error) {
	if p, done, err := scanSpec(carriers, chans, duration, samples); done {
		return p, err
	}
	// Reference frequency: the first carrier; only offsets matter.
	f0 := carriers[0].Freq
	best := 0.0
	for k := 0; k < samples; k++ {
		t := duration * float64(k) / float64(samples)
		var re, im float64
		for i, c := range carriers {
			ph := 2*math.Pi*(c.Freq-f0)*t + c.Phase
			s, cs := math.Sincos(ph)
			v := complex(c.Amplitude*cs, c.Amplitude*s) * chans[i]
			re += real(v)
			im += imag(v)
		}
		if p := re*re + im*im; p > best {
			best = p
		}
	}
	return best, nil
}

// AverageReceivedPower returns the time-averaged received power of the
// superposition over the same half-open [0, duration) grid as
// PeakReceivedPower — equal for CIB and a blind array with the same
// channels and per-antenna power ("the average received energy is the
// same across both encoding schemes", §3.4).
//ivn:hotpath
func AverageReceivedPower(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (float64, error) {
	if p, done, err := scanSpec(carriers, chans, duration, samples); done {
		return p, err
	}
	freqs, coeffs := carrierPhasors(carriers, chans)
	re := pool.Float64(samples)
	im := pool.Float64(samples)
	phasor.SumSeries(freqs, coeffs, 0, duration/float64(samples), samples, re, im)
	var acc float64
	for k := 0; k < samples; k++ {
		acc += re[k]*re[k] + im[k]*im[k]
	}
	pool.PutFloat64(im)
	pool.PutFloat64(re)
	pool.PutComplex128(coeffs)
	pool.PutFloat64(freqs)
	return acc / float64(samples), nil
}
