// Package baseline implements the comparators IVN is evaluated against:
//
//   - SingleAntenna: one transmit chain (the denominator of every "power
//     gain" number in the paper).
//   - BlindArray: the paper's "10-antenna transmitter" — N chains on the
//     SAME carrier frequency with unknown random phases. Its gain over a
//     single antenna comes entirely from radiating N× total power; at any
//     given point the phasors may also cancel.
//   - OracleMRT: coherent maximum-ratio beamforming with perfect channel
//     knowledge — the upper bound that is unobtainable for battery-free
//     sensors (it needs channel feedback) but shows what CIB is giving up.
//   - PhasedArray: angle-steered precoding assuming free-space geometry;
//     correct in line-of-sight air, wrong through inhomogeneous tissue
//     (footnote 5 of the paper).
package baseline

import (
	"fmt"
	"math"
	"math/cmplx"

	"ivn/internal/radio"
	"ivn/internal/rng"
)

// SingleAntenna returns the one-chain carrier set at freq with the given
// emitted amplitude (√W).
func SingleAntenna(freq, amplitude float64) []radio.Carrier {
	return []radio.Carrier{{Freq: freq, Phase: 0, Amplitude: amplitude}}
}

// BlindArray returns n same-frequency carriers with independent random
// phases, each emitting perAntennaAmplitude. This is the optimized
// multi-antenna baseline of §6.1.1(c): it cannot focus because it has no
// channel knowledge and — unlike CIB — no frequency diversity to scan
// alignments over time.
func BlindArray(n int, freq, perAntennaAmplitude float64, r *rng.Rand) ([]radio.Carrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	out := make([]radio.Carrier, n)
	for i := range out {
		out[i] = radio.Carrier{Freq: freq, Phase: r.Phase(), Amplitude: perAntennaAmplitude}
	}
	return out, nil
}

// OracleMRT returns n same-frequency carriers whose phases pre-rotate
// each channel's phase away (maximum-ratio transmission), given perfect
// knowledge of the channel coefficients. All phasors then add coherently
// at the sensor: the unreachable ideal for battery-free devices.
func OracleMRT(freq, perAntennaAmplitude float64, chans []complex128) ([]radio.Carrier, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("baseline: no channels")
	}
	out := make([]radio.Carrier, len(chans))
	for i, h := range chans {
		out[i] = radio.Carrier{
			Freq:      freq,
			Phase:     -cmplx.Phase(h),
			Amplitude: perAntennaAmplitude,
		}
	}
	return out, nil
}

// PhasedArray returns carriers precoded to steer a free-space beam toward
// a target at the given angle, for antennas spaced `spacing` meters apart
// along a line. The precoding assumes air propagation: through layered
// tissue the true phases differ and the beam degrades — exactly why
// angle-steering fails for in-vivo sensors (§7, "Antenna-array
// beamforming... becomes intractable with multi-layer tissues").
func PhasedArray(n int, freq, perAntennaAmplitude, spacing, steerAngle float64) ([]radio.Carrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n=%d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("baseline: spacing %v <= 0", spacing)
	}
	lambda := 299792458.0 / freq
	out := make([]radio.Carrier, n)
	for i := range out {
		// Progressive phase to align path lengths toward steerAngle.
		ph := 2 * math.Pi * float64(i) * spacing * math.Sin(steerAngle) / lambda
		out[i] = radio.Carrier{Freq: freq, Phase: ph, Amplitude: perAntennaAmplitude}
	}
	return out, nil
}

// PeakReceivedPower returns the maximum instantaneous power of the
// superposition of carriers through the given per-carrier channels,
// scanned over `duration` seconds at `samples` points. For same-frequency
// carrier sets the envelope is constant and one sample suffices; for CIB
// sets the scan finds the beat maximum. This is the quantity the paper's
// "peak power" measurements capture (§6.1.1).
func PeakReceivedPower(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (float64, error) {
	if len(carriers) != len(chans) {
		return 0, fmt.Errorf("baseline: %d carriers, %d channels", len(carriers), len(chans))
	}
	if len(carriers) == 0 {
		return 0, nil
	}
	if duration <= 0 || samples < 1 {
		return 0, fmt.Errorf("baseline: bad scan spec duration=%v samples=%d", duration, samples)
	}
	// Reference frequency: the first carrier; only offsets matter.
	f0 := carriers[0].Freq
	best := 0.0
	for k := 0; k < samples; k++ {
		t := duration * float64(k) / float64(samples)
		var re, im float64
		for i, c := range carriers {
			ph := 2*math.Pi*(c.Freq-f0)*t + c.Phase
			s, cs := math.Sincos(ph)
			v := complex(c.Amplitude*cs, c.Amplitude*s) * chans[i]
			re += real(v)
			im += imag(v)
		}
		if p := re*re + im*im; p > best {
			best = p
		}
	}
	return best, nil
}

// AverageReceivedPower returns the time-averaged received power of the
// superposition — equal for CIB and a blind array with the same channels
// and per-antenna power ("the average received energy is the same across
// both encoding schemes", §3.4).
func AverageReceivedPower(carriers []radio.Carrier, chans []complex128, duration float64, samples int) (float64, error) {
	if len(carriers) != len(chans) {
		return 0, fmt.Errorf("baseline: %d carriers, %d channels", len(carriers), len(chans))
	}
	if len(carriers) == 0 {
		return 0, nil
	}
	if duration <= 0 || samples < 1 {
		return 0, fmt.Errorf("baseline: bad scan spec duration=%v samples=%d", duration, samples)
	}
	f0 := carriers[0].Freq
	var acc float64
	for k := 0; k < samples; k++ {
		t := duration * float64(k) / float64(samples)
		var re, im float64
		for i, c := range carriers {
			ph := 2*math.Pi*(c.Freq-f0)*t + c.Phase
			s, cs := math.Sincos(ph)
			v := complex(c.Amplitude*cs, c.Amplitude*s) * chans[i]
			re += real(v)
			im += imag(v)
		}
		acc += re*re + im*im
	}
	return acc / float64(samples), nil
}
