package baseline

import (
	"math"
	"testing"

	"ivn/internal/core"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

// Golden equivalence: the kernel-backed PeakReceivedPower must agree with
// the retained naive reference to ≤1e-9 relative error on randomized
// carrier sets — including degenerate same-frequency sets and one-sample
// scans.

func randomCarrierSet(r *rng.Rand, n int, sameFreq bool) ([]radio.Carrier, []complex128) {
	cs := make([]radio.Carrier, n)
	chans := make([]complex128, n)
	f0 := 915e6
	for i := range cs {
		freq := f0
		if !sameFreq {
			freq = f0 + float64(r.Intn(200))
		}
		cs[i] = radio.Carrier{
			Freq:      freq,
			Phase:     r.Phase(),
			Amplitude: 0.5 + r.Float64(),
		}
		chans[i] = r.UnitPhasor()
	}
	return cs, chans
}

func TestKernelPeakMatchesNaive(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(12)
		sameFreq := trial%4 == 3
		cs, chans := randomCarrierSet(r, n, sameFreq)
		for _, samples := range []int{1, 4, 16, 1000, 4096} {
			want, err := NaivePeakReceivedPower(cs, chans, 1.0, samples)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PeakReceivedPower(cs, chans, 1.0, samples)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d samples %d (sameFreq=%t): kernel %v, naive %v",
					trial, samples, sameFreq, got, want)
			}
		}
	}
}

func TestKernelPeakSingleSampleBitIdentical(t *testing.T) {
	// At samples=1 both paths evaluate the t=0 sum from the same
	// coefficients, so the results must match exactly, not just to 1e-9 —
	// the experiment harness scans blind/MRT baselines this way.
	r := rng.New(22)
	for trial := 0; trial < 20; trial++ {
		cs, chans := randomCarrierSet(r, 1+r.Intn(10), trial%2 == 0)
		want, err := NaivePeakReceivedPower(cs, chans, 1.0, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PeakReceivedPower(cs, chans, 1.0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: kernel %v != naive %v at samples=1", trial, got, want)
		}
	}
}

func TestRefinedPeakMatchesFullScan(t *testing.T) {
	// CIB-like plans: the coarse grid over-resolves the beat envelope, so
	// the refined scan must return exactly the full fine-grid answer.
	r := rng.New(23)
	offsets := core.PaperOffsets()
	for trial := 0; trial < 25; trial++ {
		cs, chans := randomCarrierSet(r, len(offsets), false)
		for j := range cs {
			cs[j].Freq = 915e6 + offsets[j]
		}
		full, err := PeakReceivedPower(cs, chans, 1.0, 8192)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := PeakReceivedPowerRefined(cs, chans, 1.0, 2048, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(refined-full) > 1e-12*(1+full) {
			t.Fatalf("trial %d: refined %v, full %v", trial, refined, full)
		}
	}
}

func TestRefinedPeakValidation(t *testing.T) {
	cs, chans := randomCarrierSet(rng.New(24), 4, false)
	if _, err := PeakReceivedPowerRefined(cs, chans[:2], 1.0, 16, 64); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := PeakReceivedPowerRefined(cs, chans, 0, 16, 64); err == nil {
		t.Fatal("zero duration accepted")
	}
	if p, err := PeakReceivedPowerRefined(nil, nil, 1.0, 16, 64); err != nil || p != 0 {
		t.Fatal("empty set should give 0")
	}
	// Non-divisible coarse spec falls back to the full scan.
	full, err := PeakReceivedPower(cs, chans, 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PeakReceivedPowerRefined(cs, chans, 1.0, 33, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatalf("fallback %v != full %v", got, full)
	}
}

func BenchmarkPeakReceivedPowerRefined(b *testing.B) {
	r := rng.New(1)
	offsets := core.PaperOffsets()
	cs, _ := BlindArray(10, 915e6, 1, r)
	for j := range cs {
		cs[j].Freq = 915e6 + offsets[j]
	}
	chans := randomChans(10, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PeakReceivedPowerRefined(cs, chans, 1, 2048, 8192); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaivePeakReceivedPower(b *testing.B) {
	r := rng.New(1)
	offsets := core.PaperOffsets()
	cs, _ := BlindArray(10, 915e6, 1, r)
	for j := range cs {
		cs[j].Freq = 915e6 + offsets[j]
	}
	chans := randomChans(10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NaivePeakReceivedPower(cs, chans, 1, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
