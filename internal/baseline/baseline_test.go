package baseline

import (
	"math"
	"testing"

	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/rng"
)

func unitChans(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func randomChans(n int, r *rng.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = r.UnitPhasor()
	}
	return out
}

func TestSingleAntennaPeak(t *testing.T) {
	cs := SingleAntenna(915e6, 2)
	p, err := PeakReceivedPower(cs, []complex128{complex(0.5, 0)}, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 { // (2·0.5)²
		t.Fatalf("single-antenna peak %v, want 1", p)
	}
}

func TestOracleMRTAchievesNSquared(t *testing.T) {
	r := rng.New(1)
	const n = 10
	chans := randomChans(n, r)
	cs, err := OracleMRT(915e6, 1, chans)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PeakReceivedPower(cs, chans, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-n*n) > 1e-9 {
		t.Fatalf("MRT peak %v, want %d", p, n*n)
	}
}

func TestBlindArrayAverageGainIsN(t *testing.T) {
	// The blind baseline's expected gain over a single antenna is N — all
	// of it from radiating N× power (paper Fig. 11 discussion: "This gain
	// comes entirely from increasing the total amount of power
	// transmitted").
	r := rng.New(2)
	const n = 10
	const trials = 3000
	var acc float64
	for i := 0; i < trials; i++ {
		chans := unitChans(n)
		cs, err := BlindArray(n, 915e6, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PeakReceivedPower(cs, chans, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		acc += p
	}
	mean := acc / trials
	if math.Abs(mean-n)/float64(n) > 0.1 {
		t.Fatalf("blind-array mean gain %v, want ≈%d", mean, n)
	}
}

func TestBlindArrayHasDeepNulls(t *testing.T) {
	// Unlike CIB, the blind array sometimes delivers much LESS than one
	// antenna (destructive interference with no way out — Fig. 12's tail).
	r := rng.New(3)
	const n = 10
	worst := math.Inf(1)
	for i := 0; i < 2000; i++ {
		cs, _ := BlindArray(n, 915e6, 1, r)
		p, _ := PeakReceivedPower(cs, unitChans(n), 1, 1)
		worst = math.Min(worst, p)
	}
	if worst > 0.5 {
		t.Fatalf("blind array never nulled below 0.5 (worst %v); fading model broken", worst)
	}
}

func TestCIBBeatsBlindArrayAlmostAlways(t *testing.T) {
	// The Fig. 12 property at the core of the paper: with equal antennas
	// and per-antenna power, CIB's scanned peak beats the blind array's
	// static level in nearly every channel draw.
	r := rng.New(4)
	offsets := core.PaperOffsets()
	const n = 10
	wins, trials := 0, 400
	for i := 0; i < trials; i++ {
		chans := randomChans(n, r)
		// CIB: offset carriers, random phases.
		cibCarriers, err := BlindArray(n, 915e6, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		for j := range cibCarriers {
			cibCarriers[j].Freq = 915e6 + offsets[j]
		}
		pCIB, err := PeakReceivedPower(cibCarriers, chans, 1, 4096)
		if err != nil {
			t.Fatal(err)
		}
		blind, err := BlindArray(n, 915e6, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		pBlind, err := PeakReceivedPower(blind, chans, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pCIB > pBlind {
			wins++
		}
	}
	if frac := float64(wins) / float64(trials); frac < 0.97 {
		t.Fatalf("CIB won only %.1f%% of draws, want > 97%%", frac*100)
	}
}

func TestPhasedArraySteersInAir(t *testing.T) {
	// In free space with boresight geometry, a 0-steer phased array adds
	// coherently at a distant on-axis point.
	const n = 8
	freq := 915e6
	lambda := em.Wavelength(freq)
	spacing := lambda / 2
	cs, err := PhasedArray(n, freq, 1, spacing, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On-axis target: all path lengths equal ⇒ identical channels.
	p, err := PeakReceivedPower(cs, unitChans(n), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-n*n) > 1e-9 {
		t.Fatalf("boresight phased-array peak %v, want %d", p, n*n)
	}
}

func TestPhasedArrayFailsThroughTissue(t *testing.T) {
	// The same precoding through a layered-tissue channel with per-antenna
	// phase scrambling loses most of its gain (paper footnote 5).
	r := rng.New(5)
	const n = 8
	freq := 915e6
	lambda := em.Wavelength(freq)
	cs, err := PhasedArray(n, freq, 1, lambda/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tissue channels: equal magnitude, scrambled phases (the layered
	// stack decorrelates the inter-antenna phase relationship).
	var acc float64
	const trials = 300
	for i := 0; i < trials; i++ {
		chans := randomChans(n, r)
		p, err := PeakReceivedPower(cs, chans, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		acc += p
	}
	mean := acc / trials
	// Down from N²=64 to ≈N=8.
	if mean > 2*n {
		t.Fatalf("phased array through scrambling still averages %v, want ≈%d", mean, n)
	}
}

func TestAveragePowerEqualAcrossSchemes(t *testing.T) {
	// §3.4: "the average received energy is the same across both encoding
	// schemes" — CIB and the blind array deliver identical mean power for
	// the same channels and per-antenna power.
	r := rng.New(6)
	const n = 6
	chans := randomChans(n, r)
	offsets := core.PaperOffsets()[:n]
	cib, _ := BlindArray(n, 915e6, 1, r)
	for j := range cib {
		cib[j].Freq = 915e6 + offsets[j]
	}
	blind, _ := BlindArray(n, 915e6, 1, r)
	aCIB, err := AverageReceivedPower(cib, chans, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	aBlind, err := AverageReceivedPower(blind, chans, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// The blind array's average IS its static level, which varies per
	// draw; compare CIB's time average to the channel-power sum instead.
	var sum float64
	for _, h := range chans {
		m := real(h)*real(h) + imag(h)*imag(h)
		sum += m
	}
	if math.Abs(aCIB-sum)/sum > 0.05 {
		t.Fatalf("CIB average %v, want Σ|h|² = %v", aCIB, sum)
	}
	_ = aBlind // the blind array's average equals its own static level by construction
}

func TestValidationErrors(t *testing.T) {
	r := rng.New(7)
	if _, err := BlindArray(0, 915e6, 1, r); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := OracleMRT(915e6, 1, nil); err == nil {
		t.Fatal("empty channels accepted")
	}
	if _, err := PhasedArray(0, 915e6, 1, 0.1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := PhasedArray(4, 915e6, 1, 0, 0); err == nil {
		t.Fatal("zero spacing accepted")
	}
	cs := SingleAntenna(915e6, 1)
	if _, err := PeakReceivedPower(cs, nil, 1, 10); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if _, err := PeakReceivedPower(cs, unitChans(1), 0, 10); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := AverageReceivedPower(cs, nil, 1, 10); err == nil {
		t.Fatal("average channel mismatch accepted")
	}
	if _, err := AverageReceivedPower(cs, unitChans(1), 1, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	if p, err := PeakReceivedPower(nil, nil, 1, 10); err != nil || p != 0 {
		t.Fatal("empty carrier set should give 0 peak")
	}
	if p, err := AverageReceivedPower(nil, nil, 1, 10); err != nil || p != 0 {
		t.Fatal("empty carrier set should give 0 average")
	}
}

func BenchmarkPeakReceivedPower(b *testing.B) {
	r := rng.New(1)
	offsets := core.PaperOffsets()
	cs, _ := BlindArray(10, 915e6, 1, r)
	for j := range cs {
		cs[j].Freq = 915e6 + offsets[j]
	}
	chans := randomChans(10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PeakReceivedPower(cs, chans, 1, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
