package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ivn/internal/ivnsim/runspec"
)

// maxSpecBytes bounds a POST body; a RunSpec is a handful of fields and
// anything larger is a client error, not a bigger run.
const maxSpecBytes = 1 << 16

// NewHandler wires the service API over m:
//
//	POST   /v1/runs            submit a RunSpec        → 202 Status (409-free: cache hits are 202 too)
//	GET    /v1/runs/{id}       status, result when done
//	GET    /v1/runs/{id}/result the raw result document alone
//	GET    /v1/runs/{id}/trace  the JSONL event stream (traced specs)
//	DELETE /v1/runs/{id}       cancel                  → 202 Status
//	GET    /metrics            sorted "name value" text
//	GET    /healthz            liveness
//
// The result bytes inside GET /v1/runs/{id} and at /result are exactly
// the bytes `ivnsim -json` prints for the same spec — the envelope is
// spliced by hand rather than re-marshaled, because encoding/json
// compacts embedded documents and would silently break byte-identity.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
			return
		}
		if len(body) > maxSpecBytes {
			httpError(w, http.StatusBadRequest, "spec document too large")
			return
		}
		spec, err := runspec.ParseJSON(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// ?shards=N requests sharded execution. A query parameter, not a
		// spec field, because fan-out is transport: the job's key, cache
		// entry and result bytes are the same at any N.
		var job *Job
		if raw := r.URL.Query().Get("shards"); raw != "" {
			shards, perr := strconv.Atoi(raw)
			if perr != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shards %q: %v", raw, perr))
				return
			}
			job, err = m.SubmitSharded(spec, shards)
		} else {
			job, err = m.Submit(spec)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeStatus(w, http.StatusAccepted, job.Status())
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, ErrNotFound.Error())
			return
		}
		st := job.Status()
		res, done := job.Result()
		if !done {
			writeStatus(w, http.StatusOK, st)
			return
		}
		meta, err := json.Marshal(st)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		// Splice the result document into the envelope verbatim:
		// {"id":...,"state":"done",...,"result":<RenderJSON bytes>}
		var buf bytes.Buffer
		buf.Write(meta[:len(meta)-1]) // drop the closing brace
		buf.WriteString(`,"result":`)
		buf.Write(bytes.TrimSuffix(res, []byte("\n")))
		buf.WriteString("}\n")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = buf.WriteTo(w)
	})

	mux.HandleFunc("GET /v1/runs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, ErrNotFound.Error())
			return
		}
		res, done := job.Result()
		if !done {
			httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, not done", job.ID(), job.Status().State))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(res)
	})

	mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, ErrNotFound.Error())
			return
		}
		trace, ok := job.Trace()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("job %s has no trace (spec untraced or job not done)", job.ID()))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(trace)
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := m.Cancel(id); err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		job, _ := m.Get(id)
		writeStatus(w, http.StatusAccepted, job.Status())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = m.Metrics().WriteText(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	return mux
}

// writeStatus emits a Status document with the given HTTP code.
func writeStatus(w http.ResponseWriter, code int, st Status) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(st)
}

// httpError emits {"error": msg} with the given code.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]string{"error": msg})
}
