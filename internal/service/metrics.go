package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ivn/internal/engine"
)

// Metrics is the service's observability registry: job lifecycle
// counters, cache effectiveness, and the scheduler occupancy the engine
// reports through the shared engine.SchedMetrics. All counters are
// atomic; WriteText may be called concurrently with running jobs.
//
// The registry deliberately stays a plain sorted "name value" text
// format (expvar-style): it is scrape-friendly, diffable in tests, and
// carries no dependency.
type Metrics struct {
	// JobsSubmitted counts accepted submissions (cache hits included).
	JobsSubmitted atomic.Int64
	// JobsCompleted counts jobs that finished with a result.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs whose run returned an error.
	JobsFailed atomic.Int64
	// JobsCancelled counts jobs cancelled before or during their run.
	JobsCancelled atomic.Int64
	// JobsInFlight is the number of jobs currently executing a run.
	JobsInFlight atomic.Int64
	// JobsResumed counts jobs resubmitted from the job journal at
	// startup (work the previous process accepted but never finished).
	JobsResumed atomic.Int64
	// CacheHits counts submissions served from the result cache.
	CacheHits atomic.Int64
	// CacheMisses counts submissions that had to run.
	CacheMisses atomic.Int64
	// ShardSubjobs counts shard fragments executed for sharded jobs
	// (a 4-shard job adds 4).
	ShardSubjobs atomic.Int64
	// JournalRecorded counts trial samples recorded into shard-fragment
	// journals; JournalReplayed counts samples replayed from the union
	// during merge passes. For a healthy sharded job the two advance by
	// the same amount — divergence means fragments recomputed work.
	JournalRecorded atomic.Int64
	JournalReplayed atomic.Int64

	// Sched aggregates the engine scheduler counters across every job of
	// the manager (trials completed, busy workers, worker cap).
	Sched engine.SchedMetrics

	// queueDepth reports the current number of queued-not-yet-running
	// jobs; installed by the manager.
	queueDepth func() int64

	// rate state: trials/sec is computed over the window since the
	// previous WriteText call (since startup for the first), under mu.
	mu sync.Mutex
	// start anchors the first rate window and the uptime gauge.
	start time.Time
	// lastSample/lastTrials are the previous scrape's clock and trial
	// counter.
	lastSample time.Time
	lastTrials int64
}

// newMetrics builds a registry anchored at now.
func newMetrics(now time.Time) *Metrics {
	return &Metrics{start: now, lastSample: now}
}

// CacheHitRate returns hits/(hits+misses), 0 before any submission.
func (m *Metrics) CacheHitRate() float64 {
	hits := float64(m.CacheHits.Load())
	total := hits + float64(m.CacheMisses.Load())
	if total == 0 {
		return 0
	}
	return hits / total
}

// Occupancy returns busy/cap over the engine scheduler, 0 before any
// trial has run.
func (m *Metrics) Occupancy() float64 {
	cap := m.Sched.Cap.Load()
	if cap == 0 {
		return 0
	}
	return float64(m.Sched.Busy.Load()) / float64(cap)
}

// WriteText renders the registry as sorted "name value" lines.
// trials_per_sec is the rate over the window since the previous call.
func (m *Metrics) WriteText(w io.Writer) error {
	//ivn:allow determinism metrics are wall-clock telemetry by definition and never feed a result table
	now := time.Now()
	trials := m.Sched.Trials.Load()

	m.mu.Lock()
	window := now.Sub(m.lastSample).Seconds()
	dTrials := trials - m.lastTrials
	m.lastSample = now
	m.lastTrials = trials
	uptime := now.Sub(m.start).Seconds()
	m.mu.Unlock()

	rate := 0.0
	if window > 0 {
		rate = float64(dTrials) / window
	}

	var depth int64
	if m.queueDepth != nil {
		depth = m.queueDepth()
	}

	// Sorted by name; keep it that way when adding entries.
	lines := []struct {
		name  string
		value string
	}{
		{"cache_hit_rate", fmt.Sprintf("%.4f", m.CacheHitRate())},
		{"cache_hits", fmt.Sprintf("%d", m.CacheHits.Load())},
		{"cache_misses", fmt.Sprintf("%d", m.CacheMisses.Load())},
		{"jobs_cancelled", fmt.Sprintf("%d", m.JobsCancelled.Load())},
		{"jobs_completed", fmt.Sprintf("%d", m.JobsCompleted.Load())},
		{"jobs_failed", fmt.Sprintf("%d", m.JobsFailed.Load())},
		{"jobs_in_flight", fmt.Sprintf("%d", m.JobsInFlight.Load())},
		{"jobs_resumed", fmt.Sprintf("%d", m.JobsResumed.Load())},
		{"jobs_submitted", fmt.Sprintf("%d", m.JobsSubmitted.Load())},
		{"journal_recorded", fmt.Sprintf("%d", m.JournalRecorded.Load())},
		{"journal_replayed", fmt.Sprintf("%d", m.JournalReplayed.Load())},
		{"queue_depth", fmt.Sprintf("%d", depth)},
		{"sched_busy", fmt.Sprintf("%d", m.Sched.Busy.Load())},
		{"sched_cap", fmt.Sprintf("%d", m.Sched.Cap.Load())},
		{"sched_occupancy", fmt.Sprintf("%.4f", m.Occupancy())},
		{"shard_subjobs", fmt.Sprintf("%d", m.ShardSubjobs.Load())},
		{"trials_per_sec", fmt.Sprintf("%.1f", rate)},
		{"trials_total", fmt.Sprintf("%d", trials)},
		{"uptime_sec", fmt.Sprintf("%.1f", uptime)},
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintf(w, "%s %s\n", ln.name, ln.value); err != nil {
			return err
		}
	}
	return nil
}
