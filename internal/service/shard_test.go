package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ivn/internal/engine"
	"ivn/internal/ivnsim/runspec"
)

// resumeSpec outlives the waitRunning→abortClose window (seconds of
// work against a millisecond gap) while staying small enough to run to
// completion after the restart, race detector included — longSpec's
// tens of seconds would blow the resumed-completion wait there.
func resumeSpec(seed uint64) runspec.Spec {
	return runspec.Spec{Experiment: "population", Seed: seed, Quick: true, Trials: 8}
}

func TestSubmitShardedMatchesPlainSubmit(t *testing.T) {
	m, err := New(Config{Workers: 1, MaxParallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	plain, err := m.Submit(quickSpec("fig9", 11))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, plain, 2*time.Minute)
	want, ok := plain.Result()
	if !ok {
		t.Fatalf("plain job %s: %s", plain.ID(), plain.Status().Error)
	}

	// Same spec sharded: the cache would satisfy it without running, so
	// use a different seed first to prove execution, then the same seed
	// to prove cache sharing across fan-outs.
	sharded, err := m.SubmitSharded(quickSpec("fig9", 12), 3)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, sharded, 2*time.Minute)
	if _, ok := sharded.Result(); !ok {
		t.Fatalf("sharded job %s: %s", sharded.ID(), sharded.Status().Error)
	}
	st := sharded.Status()
	if st.Shards != 3 {
		t.Fatalf("Status.Shards = %d, want 3", st.Shards)
	}
	if len(st.ShardCaps) != 3 {
		t.Fatalf("Status.ShardCaps = %v, want 3 per-sub-job caps", st.ShardCaps)
	}
	for i, cap := range st.ShardCaps {
		// 4 workers over 3 shards: each sub-job resolved max(1, 4/3) = 1.
		if cap != 1 {
			t.Fatalf("shard %d cap = %d, want 1", i, cap)
		}
	}
	if got := m.Metrics().ShardSubjobs.Load(); got != 3 {
		t.Fatalf("ShardSubjobs = %d, want 3", got)
	}
	if rec, rep := m.Metrics().JournalRecorded.Load(), m.Metrics().JournalReplayed.Load(); rec == 0 || rec != rep {
		t.Fatalf("journal counters recorded=%d replayed=%d, want equal and nonzero", rec, rep)
	}

	// Byte-identity at the same key: a sharded submission of the plain
	// job's spec is a cache hit carrying the plain job's exact bytes.
	again, err := m.SubmitSharded(quickSpec("fig9", 11), 3)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, again, time.Minute)
	got, ok := again.Result()
	if !ok {
		t.Fatal("sharded resubmission did not complete")
	}
	if !again.Status().Cached {
		t.Fatal("sharded submission missed the cache entry its unsharded twin filled")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sharded result bytes differ from the plain run")
	}
}

func TestSubmitShardedExecutesByteIdentical(t *testing.T) {
	// Cold-cache check: two managers, one plain and one sharded run of
	// the same spec, must produce identical result bytes.
	spec := quickSpec("population", 7)
	run := func(shards int) []byte {
		m, err := New(Config{Workers: 1, MaxParallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close(context.Background())
		var job *Job
		if shards > 1 {
			job, err = m.SubmitSharded(spec, shards)
		} else {
			job, err = m.Submit(spec)
		}
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job, 2*time.Minute)
		res, ok := job.Result()
		if !ok {
			t.Fatalf("job %s: %s", job.ID(), job.Status().Error)
		}
		return res
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("sharded daemon run differs from the plain daemon run")
	}
}

func TestSubmitShardedValidation(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if _, err := m.SubmitSharded(quickSpec("fig9", 1), 1); err == nil {
		t.Error("shard count 1 accepted")
	}
	if _, err := m.SubmitSharded(quickSpec("fig9", 1), maxShards+1); err == nil {
		t.Error("oversized shard count accepted")
	}
	traced := quickSpec("fig12", 1)
	traced.Trace = true
	if _, err := m.SubmitSharded(traced, 2); err == nil {
		t.Error("traced spec accepted for sharded execution")
	}
	// Spec-carried execution details are the daemon's to manage.
	journaled := quickSpec("fig9", 1)
	journaled.Journal = "/tmp/evil.jsonl"
	if _, err := m.Submit(journaled); err == nil || !strings.Contains(err.Error(), "execution details") {
		t.Errorf("journal-carrying spec: %v", err)
	}
	frag := quickSpec("fig9", 1)
	frag.Shard = &engine.Shard{Index: 0, Count: 2}
	frag.Journal = "x"
	if _, err := m.Submit(frag); err == nil {
		t.Error("fragment spec accepted")
	}
}

func TestJobJournalResumesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")

	// First daemon: accept two jobs, but die (abortClose) before they
	// finish — both submits reach the journal, no end records do.
	m1, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m1.Submit(resumeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := m1.SubmitSharded(quickSpec("fig9", 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, slow)
	abortClose(t, m1)
	_ = sharded

	// Second daemon on the same journal: both jobs resubmit (in order,
	// with the shard fan-out preserved) and complete.
	m2, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	if got := m2.Metrics().JobsResumed.Load(); got != 2 {
		t.Fatalf("JobsResumed = %d, want 2", got)
	}
	var resumedShards *Job
	for _, id := range []string{"r000001", "r000002"} {
		job, ok := m2.Get(id)
		if !ok {
			t.Fatalf("resumed job %s not found", id)
		}
		waitTerminal(t, job, 2*time.Minute)
		if job.Status().State != StateDone {
			t.Fatalf("resumed job %s ended %s: %s", id, job.Status().State, job.Status().Error)
		}
		if job.Status().Shards == 2 {
			resumedShards = job
		}
	}
	if resumedShards == nil {
		t.Fatal("the sharded job lost its fan-out across the restart")
	}

	// Third daemon: everything ended, nothing resubmits.
	m3, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close(context.Background())
	if got := m3.Metrics().JobsResumed.Load(); got != 0 {
		t.Fatalf("JobsResumed = %d after a clean shutdown, want 0", got)
	}
}

func TestJobJournalEndRecordedForTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	m, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(quickSpec("fig2", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job, time.Minute)
	// A queued job cancelled before running must also end-record.
	blocker, err := m.Submit(longSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	queued, err := m.Submit(longSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	abortClose(t, m)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := map[string]bool{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad journal line %s: %v", line, err)
		}
		if rec.Op == "end" {
			ends[rec.ID] = true
		}
	}
	if !ends[job.ID()] {
		t.Errorf("done job %s has no end record", job.ID())
	}
	if !ends[queued.ID()] {
		t.Errorf("cancelled-while-queued job %s has no end record", queued.ID())
	}
	if ends[blocker.ID()] {
		t.Errorf("aborted job %s has an end record — it should resume on restart", blocker.ID())
	}
}

func TestLoadPendingToleratesTornTailRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	spec, err := quickSpec("fig2", 1).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf(`{"op":"submit","id":"r000001","spec":%s}
{"op":"end","id":"r000001"}
{"op":"submit","id":"r000002","shards":2,"spec":%s}
{"op":"submit","id":"r0000`, spec, spec)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pending, err := loadPending(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].shards != 2 {
		t.Fatalf("pending = %+v, want the one unfinished sharded submit", pending)
	}

	// A malformed *complete* line is corruption, not a torn write.
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadPending(path); err == nil {
		t.Fatal("garbage journal loaded")
	}

	// A missing file is a fresh daemon.
	if pending, err := loadPending(filepath.Join(dir, "absent.jsonl")); err != nil || pending != nil {
		t.Fatalf("missing file: %v, %v", pending, err)
	}
}

func TestMetricsTextIncludesShardAndJournalCounters(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var buf bytes.Buffer
	if err := m.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	prev := ""
	for _, name := range []string{"jobs_resumed", "journal_recorded", "journal_replayed", "shard_subjobs"} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("metrics text lacks %s:\n%s", name, text)
		}
	}
	// The registry contract: lines stay sorted by name.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		name := strings.Fields(line)[0]
		if name < prev {
			t.Fatalf("metrics lines unsorted: %s after %s", name, prev)
		}
		prev = name
	}
}

func TestHTTPShardsParam(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1, MaxParallel: 2})
	want := cliJSON(t, quickSpec("fig9", 11))

	body, err := json.Marshal(quickSpec("fig9", 11))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpPost(srv.URL+"/v1/runs?shards=2", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST ?shards=2: %d %s", resp.StatusCode, raw)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 {
		t.Fatalf("accepted status Shards = %d, want 2", st.Shards)
	}
	env := pollDone(t, srv, st.ID, 2*time.Minute)
	if env.State != StateDone {
		t.Fatalf("sharded run ended %s: %s", env.State, env.Error)
	}
	if !bytes.Equal(append([]byte(nil), env.Result...), bytes.TrimSuffix(want, []byte("\n"))) {
		t.Fatal("HTTP sharded result differs from the CLI bytes")
	}

	// Bad fan-outs are 400s.
	for _, q := range []string{"?shards=x", "?shards=1", "?shards=9999"} {
		resp, err := httpPost(srv.URL+"/v1/runs"+q, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// httpPost posts a spec document.
func httpPost(url string, body []byte) (*http.Response, error) {
	return http.Post(url, "application/json", bytes.NewReader(body))
}
