package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ivn/internal/engine"
	"ivn/internal/ivnsim"
	"ivn/internal/ivnsim/runspec"
)

// testServer boots a manager and an httptest server over its handler.
func testServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		abortClose(t, m)
	})
	return m, srv
}

// postSpec submits a spec and returns the decoded Status.
func postSpec(t *testing.T, srv *httptest.Server, spec runspec.Spec) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/runs: %d %s", resp.StatusCode, raw)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// envelope is the GET /v1/runs/{id} document; Result keeps the raw
// bytes so byte-identity with the CLI output can be asserted.
type envelope struct {
	ID     string          `json:"id"`
	State  State           `json:"state"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// getRun fetches one status envelope.
func getRun(t *testing.T, srv *httptest.Server, id string) envelope {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/runs/%s: %d %s", id, resp.StatusCode, raw)
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env
}

// pollDone polls until the run reaches a terminal state.
func pollDone(t *testing.T, srv *httptest.Server, id string, d time.Duration) envelope {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		env := getRun(t, srv, id)
		if env.State.terminal() {
			return env
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s after %v", id, env.State, d)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// cliJSON renders spec the way `ivnsim -json` does: the shared pipeline
// followed by RenderJSON.
func cliJSON(t *testing.T, spec runspec.Spec) []byte {
	t.Helper()
	res, _, err := runspec.Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.RenderJSON(res, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonCLIEquivalence is the service's reason to exist stated as a
// test: every registered experiment, submitted over HTTP, yields result
// bytes identical to what the CLI prints for the same spec — both in
// the status envelope's result field and at the bare /result endpoint.
func TestDaemonCLIEquivalence(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 4, QueueDepth: 64})

	// Submit everything up front so the worker pool overlaps the runs,
	// then verify in submission order.
	type pending struct {
		spec runspec.Spec
		id   string
	}
	var runs []pending
	for _, e := range ivnsim.Registry() {
		spec := runspec.Spec{Experiment: e.ID, Seed: 11, Quick: true}
		st := postSpec(t, srv, spec)
		if st.Experiment != e.ID {
			t.Fatalf("submission echoed experiment %q, want %q", st.Experiment, e.ID)
		}
		runs = append(runs, pending{spec: spec, id: st.ID})
	}

	for _, run := range runs {
		env := pollDone(t, srv, run.id, 3*time.Minute)
		if env.State != StateDone {
			t.Fatalf("%s: run finished %s (%s)", run.spec.Experiment, env.State, env.Error)
		}
		want := cliJSON(t, run.spec)

		// The envelope's result field carries the CLI bytes verbatim
		// (RenderJSON output minus its trailing newline, preserved
		// through the hand-spliced envelope).
		got := append(append([]byte{}, env.Result...), '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("%s: envelope result diverged from CLI JSON", run.spec.Experiment)
			continue
		}

		// The bare result endpoint serves the document byte-for-byte.
		resp, err := http.Get(srv.URL + "/v1/runs/" + run.id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: GET result: %d %v", run.spec.Experiment, resp.StatusCode, err)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("%s: /result bytes diverged from CLI JSON", run.spec.Experiment)
		}
	}
}

// TestHTTPCacheHit proves the second identical request never reaches
// the engine: the hit counter moves, the trial counter does not, and
// the served bytes match the first run exactly.
func TestHTTPCacheHit(t *testing.T) {
	m, srv := testServer(t, Config{Workers: 1})

	spec := runspec.Spec{Experiment: "fig9", Seed: 11, Quick: true}
	first := postSpec(t, srv, spec)
	env1 := pollDone(t, srv, first.ID, 2*time.Minute)
	if env1.State != StateDone {
		t.Fatalf("first run finished %s", env1.State)
	}
	trialsBefore := m.Metrics().Sched.Trials.Load()

	second := postSpec(t, srv, spec)
	if second.ID == first.ID {
		t.Fatal("second submission reused the first job id")
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission not a cache hit: %+v", second)
	}
	env2 := getRun(t, srv, second.ID)
	if !env2.Cached || !bytes.Equal(env1.Result, env2.Result) {
		t.Fatal("cached envelope diverged from the computed one")
	}
	if after := m.Metrics().Sched.Trials.Load(); after != trialsBefore {
		t.Fatalf("cache hit executed %d trials", after-trialsBefore)
	}

	// The hit is observable at /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"cache_hits 1\n", "cache_misses 1\n", "cache_hit_rate 0.5000\n", "jobs_submitted 2\n"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPTraceEquivalence compares the daemon's trace endpoint against
// the CLI's -trace output for the same spec.
func TestHTTPTraceEquivalence(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1})

	spec := runspec.Spec{Experiment: "fig12", Seed: 11, Quick: true, Trace: true}
	st := postSpec(t, srv, spec)
	if env := pollDone(t, srv, st.ID, 2*time.Minute); env.State != StateDone {
		t.Fatalf("traced run finished %s (%s)", env.State, env.Error)
	}
	resp, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, got)
	}

	_, tlog, err := runspec.Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := tlog.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("daemon trace diverged from CLI -trace output")
	}
}

// TestHTTPCancel exercises DELETE on a running job end to end.
func TestHTTPCancel(t *testing.T) {
	m, srv := testServer(t, Config{Workers: 1})

	st := postSpec(t, srv, longSpec(41))
	job, ok := m.Get(st.ID)
	if !ok {
		t.Fatal("submitted job not registered")
	}
	waitRunning(t, job)
	time.Sleep(100 * time.Millisecond)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	env := pollDone(t, srv, st.ID, 2*time.Second)
	if env.State != StateCancelled {
		t.Fatalf("state after DELETE = %s (%v elapsed)", env.State, time.Since(start))
	}

	// No result escapes a cancelled run.
	rr, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("GET result of cancelled run: %d", rr.StatusCode)
	}
}

// TestHTTPQueueFull maps ErrQueueFull to 429.
func TestHTTPQueueFull(t *testing.T) {
	m, srv := testServer(t, Config{Workers: 1, QueueDepth: 1})

	st := postSpec(t, srv, longSpec(51))
	job, _ := m.Get(st.ID)
	waitRunning(t, job)
	postSpec(t, srv, longSpec(52)) // fills the single queue slot

	body, _ := json.Marshal(longSpec(53))
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST: %d", resp.StatusCode)
	}
	var msg map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil || msg["error"] == "" {
		t.Fatalf("429 body: %v, %v", msg, err)
	}
}

// TestHTTPValidation covers the 400/404 surfaces.
func TestHTTPValidation(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1})

	for name, body := range map[string]string{
		"malformed":     `{`,
		"unknown field": `{"experiment":"fig9","seeed":1}`,
		"unknown id":    `{"experiment":"no-such-experiment"}`,
		"bad trials":    `{"experiment":"fig9","trials":-4}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST returned %d, want 400", name, resp.StatusCode)
		}
	}

	for _, path := range []string{"/v1/runs/r424242", "/v1/runs/r424242/result", "/v1/runs/r424242/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}

	// Trace of an untraced (but real) run is 404 too.
	st := postSpec(t, srv, quickSpec("fig2", 61))
	pollDone(t, srv, st.ID, time.Minute)
	resp, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of untraced run: %d, want 404", resp.StatusCode)
	}

	// An oversized body is rejected before parsing.
	big := fmt.Sprintf(`{"experiment":%q}`, strings.Repeat("x", maxSpecBytes))
	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized POST: %d, want 400", resp.StatusCode)
	}
}

// TestHTTPHealthz is the liveness contract the daemon smoke test polls.
func TestHTTPHealthz(t *testing.T) {
	_, srv := testServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}
