package service

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached run: the rendered JSON result (exactly the
// bytes `ivnsim -json` would print) and, for traced specs, the JSONL
// event stream. Entries are immutable once stored — callers must not
// mutate the returned slices.
type cacheEntry struct {
	key        string
	resultJSON []byte
	traceJSONL []byte
}

// resultCache is a mutex-guarded LRU keyed by runspec.Spec.Key(). The
// key already folds in the build stamp, so entries can never outlive the
// binary that computed them, and eviction is purely a memory-bound
// concern.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry
	items    map[string]*list.Element
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the entry for key, promoting it to most recently used.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting from the least recently used end when
// over capacity. Storing an existing key refreshes its recency.
func (c *resultCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.evictLocked()
}

// setCapacity resizes the cache, evicting immediately when shrinking.
func (c *resultCache) setCapacity(n int) {
	if n <= 0 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evictLocked()
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}
