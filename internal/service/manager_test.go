package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ivn/internal/engine"
	"ivn/internal/ivnsim/runspec"
)

// quickSpec is a fast CI-sized run.
func quickSpec(id string, seed uint64) runspec.Spec {
	return runspec.Spec{Experiment: id, Seed: seed, Quick: true}
}

// longSpec is a run that takes tens of seconds if left alone: the
// population sweep's largest point simulates a 1000-tag inventory round
// per trial, so raising the trial count stretches the run while keeping
// individual trials (the cancellation granularity) well under a second.
func longSpec(seed uint64) runspec.Spec {
	return runspec.Spec{Experiment: "population", Seed: seed, Quick: true, Trials: 40}
}

// abortClose tears a manager down without waiting for queued work: the
// expired context makes Close cancel running jobs instead of draining.
func abortClose(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m.Close(ctx)
}

// waitTerminal blocks until the job finishes or the deadline passes.
func waitTerminal(t *testing.T, job *Job, d time.Duration) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(d):
		t.Fatalf("job %s still %s after %v", job.ID(), job.Status().State, d)
	}
}

// waitRunning polls until a worker has claimed the job.
func waitRunning(t *testing.T, job *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if job.Status().State == StateRunning {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running (state %s)", job.ID(), job.Status().State)
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Workers: -1}, {QueueDepth: -2}, {MaxParallel: -1}, {CacheEntries: -3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
	if _, err := New(Config{Workers: -1}); err == nil {
		t.Fatal("New accepted a negative worker count")
	}
}

func TestJobLifecycle(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)

	spec := quickSpec("fig2", 7)
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Status(); got.State != StateQueued && got.State != StateRunning && got.State != StateDone {
		t.Fatalf("fresh job in state %s", got.State)
	}
	waitTerminal(t, job, 60*time.Second)

	st := job.Status()
	if st.State != StateDone || st.Cached || st.Error != "" {
		t.Fatalf("finished job status %+v", st)
	}
	if st.Experiment != "fig2" || len(st.Key) != 64 {
		t.Fatalf("status identity %+v", st)
	}
	res, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}

	// The service's stored bytes are exactly the CLI's -json bytes.
	direct, _, err := runspec.Run(context.Background(), engine.Limits{}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := engine.RenderJSON(direct, &want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, want.Bytes()) {
		t.Fatal("service result diverged from the CLI pipeline")
	}

	// Retrieval by id and the lifecycle counters.
	if got, ok := m.Get(job.ID()); !ok || got != job {
		t.Fatal("Get did not return the submitted job")
	}
	if n := m.metrics.JobsCompleted.Load(); n != 1 {
		t.Fatalf("JobsCompleted = %d", n)
	}
	if n := m.metrics.CacheMisses.Load(); n != 1 {
		t.Fatalf("CacheMisses = %d", n)
	}
	if n := m.metrics.JobsInFlight.Load(); n != 0 {
		t.Fatalf("JobsInFlight = %d after completion", n)
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)

	spec := quickSpec("fig3", 11)
	first, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first, 60*time.Second)
	firstRes, _ := first.Result()
	trialsBefore := m.metrics.Sched.Trials.Load()

	// An equivalent spec — different JSON shape, same canonical run.
	again := runspec.Spec{Experiment: "fig3", Seed: 11, Quick: true, FaultScales: []float64{}}
	second, err := m.Submit(again)
	if err != nil {
		t.Fatal(err)
	}
	st := second.Status()
	if st.State != StateDone || !st.Cached {
		t.Fatalf("second submission not served from cache: %+v", st)
	}
	select {
	case <-second.Done():
	default:
		t.Fatal("cached job's Done channel not closed at submit")
	}
	secondRes, _ := second.Result()
	if !bytes.Equal(firstRes, secondRes) {
		t.Fatal("cached bytes differ from the original run")
	}
	if n := m.metrics.CacheHits.Load(); n != 1 {
		t.Fatalf("CacheHits = %d", n)
	}
	if after := m.metrics.Sched.Trials.Load(); after != trialsBefore {
		t.Fatalf("cache hit ran %d new trials", after-trialsBefore)
	}
	if rate := m.metrics.CacheHitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", rate)
	}
}

// TestCancelRunningJobReturnsPromptly is the DELETE latency contract: a
// job mid-way through a large population sweep must reach its terminal
// state within 2 seconds of cancellation, because the engine checks the
// context between trials, never only at point boundaries.
func TestCancelRunningJobReturnsPromptly(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)

	job, err := m.Submit(longSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, job)
	// Let it get into the sweep proper before pulling the plug.
	time.Sleep(200 * time.Millisecond)

	start := time.Now()
	state, err := m.Cancel(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if state != StateRunning && state != StateCancelled {
		t.Fatalf("cancel of a running job reported %s", state)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Second):
		t.Fatalf("job not terminal %v after cancel", time.Since(start))
	}
	st := job.Status()
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	if !strings.Contains(st.Error, context.Canceled.Error()) {
		t.Fatalf("cancelled job error = %q", st.Error)
	}
	if _, ok := job.Result(); ok {
		t.Fatal("cancelled job produced a result (partial tables must never escape)")
	}
	if n := m.metrics.JobsCancelled.Load(); n != 1 {
		t.Fatalf("JobsCancelled = %d", n)
	}
	// Cancelling again is a stable no-op.
	if again, err := m.Cancel(job.ID()); err != nil || again != StateCancelled {
		t.Fatalf("re-cancel: %s, %v", again, err)
	}
}

func TestCancelQueuedJobImmediately(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)

	running, err := m.Submit(longSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, running)
	queued, err := m.Submit(longSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.Status().State; st != StateQueued {
		t.Fatalf("second job is %s with a busy single worker", st)
	}
	state, err := m.Cancel(queued.ID())
	if err != nil || state != StateCancelled {
		t.Fatalf("cancel queued: %s, %v", state, err)
	}
	select {
	case <-queued.Done():
	default:
		t.Fatal("queued job not terminal immediately after cancel")
	}
	if _, err := m.Cancel("r999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown id: %v", err)
	}
}

func TestQueueFullRejectsSubmission(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)

	running, err := m.Submit(longSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, running)
	if _, err := m.Submit(longSpec(9)); err != nil {
		t.Fatalf("queue slot rejected: %v", err)
	}
	_, err = m.Submit(longSpec(10))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v", err)
	}
	// The rejected submission left no counters or jobs behind.
	if n := m.metrics.JobsSubmitted.Load(); n != 2 {
		t.Fatalf("JobsSubmitted = %d after a rejection", n)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	m, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Submit(quickSpec("fig2", 21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(quickSpec("fig3", 21))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, job := range []*Job{a, b} {
		if st := job.Status(); st.State != StateDone {
			t.Fatalf("job %s drained to %s", job.ID(), st.State)
		}
	}
	if _, err := m.Submit(quickSpec("fig2", 22)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// Closing again is a no-op.
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCloseAbortsWhenContextExpires(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(longSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, job)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with expiring context: %v", err)
	}
	// Close waited for the worker, so the job is already terminal.
	if st := job.Status().State; st != StateCancelled {
		t.Fatalf("aborted job state = %s", st)
	}
}

func TestReconfigure(t *testing.T) {
	m, err := New(Config{Workers: 1, CacheEntries: 8, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer abortClose(t, m)
	m.Reconfigure(4, 1)
	if got := m.maxParallel.load(); got != 4 {
		t.Fatalf("maxParallel = %d", got)
	}
	if got := m.cache.capacity; got != 1 {
		t.Fatalf("cache capacity = %d", got)
	}
	// Negative parallel and zero cache leave the previous values.
	m.Reconfigure(-1, 0)
	if got := m.maxParallel.load(); got != 4 {
		t.Fatalf("maxParallel after no-op reload = %d", got)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put(&cacheEntry{key: "a", resultJSON: []byte("A")})
	c.put(&cacheEntry{key: "b", resultJSON: []byte("B")})
	if _, ok := c.get("a"); !ok { // promote a
		t.Fatal("a missing")
	}
	c.put(&cacheEntry{key: "c", resultJSON: []byte("C")}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	c.setCapacity(1)
	if c.len() != 1 {
		t.Fatalf("len = %d after shrink", c.len())
	}
}
