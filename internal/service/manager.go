// Package service is the long-running simulation service behind the
// ivnsimd daemon: a bounded job queue with a fixed worker pool,
// cooperative cancellation per job, a content-keyed LRU cache of
// rendered results, and a metrics registry. It contains no HTTP — the
// transport in http.go is a thin layer over the Manager, and everything
// here is equally usable in-process (the equivalence tests drive it
// directly).
//
// Determinism contract: the service never changes what a run produces.
// Jobs execute through the same runspec pipeline as the CLI with a
// per-run engine.Limits, so the rendered result bytes are identical to
// `ivnsim -json` for the same spec at any worker count or parallelism.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ivn/internal/engine"
	"ivn/internal/ivnsim/runspec"
	"ivn/internal/session"
)

// State is a job's lifecycle position. Transitions are monotonic:
// queued → running → {done, failed, cancelled}, with queued → cancelled
// allowed for jobs cancelled before a worker claims them, and cache
// hits born directly in done.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a job in state s can never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull rejects a submission when the bounded queue has no
	// room; the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed rejects submissions after Close has begun draining.
	ErrClosed = errors.New("service: manager closed")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes a Manager. Zero values select defaults; Validate rejects
// negatives so a daemon config file cannot silently construct a
// degenerate service.
type Config struct {
	// Workers is the number of concurrent jobs (default 2).
	Workers int `json:"workers,omitempty"`
	// QueueDepth bounds queued-not-yet-running jobs (default 16).
	QueueDepth int `json:"queue_depth,omitempty"`
	// MaxParallel caps trial workers per job, 0 = GOMAXPROCS. It is the
	// per-run engine.Limits cap, hot-reloadable via Reconfigure.
	MaxParallel int `json:"max_parallel,omitempty"`
	// CacheEntries bounds the result cache (default 64), hot-reloadable.
	CacheEntries int `json:"cache_entries,omitempty"`
	// JournalPath, when set, journals job state (submit/end records) to
	// this file so a restarted daemon resubmits work that was queued or
	// running when it died, instead of dropping it. Empty disables.
	JournalPath string `json:"journal,omitempty"`
}

// Validate rejects configurations that cannot mean anything.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("service: negative workers %d", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("service: negative queue_depth %d", c.QueueDepth)
	}
	if c.MaxParallel < 0 {
		return fmt.Errorf("service: negative max_parallel %d", c.MaxParallel)
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("service: negative cache_entries %d", c.CacheEntries)
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	return c
}

// Job is one submitted run. All exported access goes through snapshot
// methods; fields are guarded by mu except the immutable identity
// fields set at submit time.
type Job struct {
	id   string
	key  string
	spec runspec.Spec
	// shards is the fan-out requested at submit (0 or 1 = unsharded). A
	// transport detail, not spec content: the key — and therefore the
	// cache entry and the result bytes — is the same at any fan-out.
	shards int

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once, on reaching a terminal state

	mu         sync.Mutex
	state      State
	cached     bool
	userCancel bool // Cancel was called: terminal cancellation is a client decision
	errMsg     string
	resultJSON []byte  // RenderJSON bytes, trailing newline included
	traceJSONL []byte  // session event stream, nil when the spec had Trace off
	shardCaps  []int64 // per-sub-job resolved worker caps, set when sharded
}

// Status is the immutable snapshot the transport serializes. Field
// order is the wire order of the status document.
type Status struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	State      State  `json:"state"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
	// Shards is the fan-out the job ran with (absent when unsharded).
	Shards int `json:"shards,omitempty"`
	// ShardCaps lists each shard sub-job's resolved trial-worker cap.
	// The aggregate sched_cap on /metrics is a union max across runs
	// with possibly different caps; these are the per-run values.
	ShardCaps []int64 `json:"shard_caps,omitempty"`
}

// ID returns the job's manager-unique id.
func (j *Job) ID() string { return j.id }

// Key returns the job's content key (runspec.Spec.Key).
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Experiment: j.spec.Experiment,
		Key:        j.key,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		ShardCaps:  j.shardCaps,
	}
	if j.shards > 1 {
		st.Shards = j.shards
	}
	return st
}

// Result returns the rendered JSON result bytes (exactly what
// `ivnsim -json` prints for the same spec) once the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.resultJSON, true
}

// Trace returns the JSONL event stream for done jobs of traced specs.
func (j *Job) Trace() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.traceJSONL == nil {
		return nil, false
	}
	return j.traceJSONL, true
}

// Manager owns the queue, the worker pool, the cache, and the job
// table. Construct with New, submit with Submit, shut down with Close.
type Manager struct {
	metrics *Metrics
	cache   *resultCache
	journal *jobJournal // nil when Config.JournalPath is empty

	// maxParallel is the per-job trial-worker cap; atomic so SIGHUP
	// reconfiguration never races job starts.
	maxParallel atomicInt

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    uint64
	closed bool
}

// atomicInt is a tiny alias-free wrapper so Config ints and atomics
// don't mix up call sites.
type atomicInt struct {
	v sync.Mutex
	n int
}

func (a *atomicInt) store(n int) { a.v.Lock(); a.n = n; a.v.Unlock() }
func (a *atomicInt) load() int   { a.v.Lock(); defer a.v.Unlock(); return a.n }

// New builds a Manager and starts its worker pool. With a JournalPath
// configured, jobs that were queued or running when the previous
// process died are resubmitted before New returns (counted by the
// jobs_resumed metric); their results are recomputed under fresh ids.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var journal *jobJournal
	var pending []pendingJob
	if cfg.JournalPath != "" {
		var err error
		journal, pending, err = openJobJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		//ivn:allow determinism the clock only anchors the metrics uptime/rate windows, never a result
		metrics: newMetrics(time.Now()),
		cache:   newResultCache(cfg.CacheEntries),
		journal: journal,
		baseCtx: ctx, baseCancel: cancel,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	m.maxParallel.store(cfg.MaxParallel)
	m.metrics.queueDepth = func() int64 { return int64(len(m.queue)) }
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		//ivn:allow goroutinehygiene fixed-size worker pool joined by wg in Close; jobs inside run through the sanctioned engine runners
		go m.worker()
	}
	for _, p := range pending {
		if _, err := m.submit(p.spec, p.shards); err != nil {
			_ = m.Close(context.Background())
			return nil, fmt.Errorf("service: resume journaled job: %w", err)
		}
		m.metrics.JobsResumed.Add(1)
	}
	return m, nil
}

// Metrics exposes the registry for the transport's /metrics endpoint
// and for tests.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// maxShards bounds a sharded submission's fan-out: each shard costs a
// goroutine tree and a resident in-memory journal, and past the
// machine's core count extra shards only add overhead.
const maxShards = 64

// Submit validates and enqueues a run. Cache hits return a job already
// in StateDone carrying the cached bytes — no trial executes. A full
// queue returns ErrQueueFull without registering anything.
func (m *Manager) Submit(spec runspec.Spec) (*Job, error) {
	return m.submit(spec, 0)
}

// SubmitSharded enqueues a run whose trial schedule executes as shards
// in-memory shard fragments recombined before the result renders. The
// fan-out is a transport parameter, not spec content: the job's key,
// cache entry and result bytes are identical to an unsharded submission
// of the same spec, so sharded and plain clients share cache hits.
func (m *Manager) SubmitSharded(spec runspec.Spec, shards int) (*Job, error) {
	if shards < 2 || shards > maxShards {
		return nil, fmt.Errorf("service: shard count %d out of range [2, %d]", shards, maxShards)
	}
	if spec.Trace {
		// Fragment trials replay during the merge pass and emit no
		// events; a sharded trace would be silently incomplete.
		return nil, fmt.Errorf("service: trace cannot be combined with sharded execution")
	}
	return m.submit(spec, shards)
}

// submit is the common enqueue path; shards > 1 selects fragment
// execution in runJob.
func (m *Manager) submit(spec runspec.Spec, shards int) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Journal != "" || spec.Resume || spec.Shard != nil {
		// The daemon journals and shards on its own terms (Config
		// JournalPath, ?shards=N); spec-carried execution details would
		// let one client write server-side files or split the cache key
		// space, so they are transport errors here.
		return nil, fmt.Errorf("service: journal/shard/resume are execution details the daemon manages — request sharding with ?shards=N")
	}
	spec = spec.Normalize()
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("r%06d", m.seq)

	if ent, ok := m.cache.get(key); ok {
		job := &Job{
			id: id, key: key, spec: spec,
			state: StateDone, cached: true,
			resultJSON: ent.resultJSON, traceJSONL: ent.traceJSONL,
			done: make(chan struct{}),
		}
		close(job.done)
		m.jobs[id] = job
		m.mu.Unlock()
		m.metrics.JobsSubmitted.Add(1)
		m.metrics.CacheHits.Add(1)
		return job, nil
	}

	ctx, cancel := context.WithCancel(m.baseCtx)
	job := &Job{
		id: id, key: key, spec: spec, shards: shards,
		ctx: ctx, cancel: cancel,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	select {
	case m.queue <- job:
		m.jobs[id] = job
		m.mu.Unlock()
		// Best-effort, like the end records: a lost submit record costs
		// the job's redo guarantee across one restart, never the job
		// itself (it is already queued in this process).
		_ = m.journal.submit(id, shards, spec)
		m.metrics.JobsSubmitted.Add(1)
		m.metrics.CacheMisses.Add(1)
		return job, nil
	default:
		m.seq-- // the id was never exposed; reuse it
		m.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs are cancelled
// immediately (a worker that later drains them skips without running a
// trial); running jobs get their context cancelled and reach
// StateCancelled as soon as the engine observes it — between trials, so
// promptly even mid-sweep. Cancelling a terminal job is a no-op. The
// returned state is the job's state at return time.
func (m *Manager) Cancel(id string) (State, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return "", ErrNotFound
	}
	job.mu.Lock()
	switch job.state {
	case StateQueued:
		job.state = StateCancelled
		job.userCancel = true
		job.errMsg = context.Canceled.Error()
		close(job.done)
		job.mu.Unlock()
		job.cancel()
		_ = m.journal.end(job.id)
		m.metrics.JobsCancelled.Add(1)
		return StateCancelled, nil
	case StateRunning:
		job.userCancel = true
		job.mu.Unlock()
		job.cancel()
		return StateRunning, nil
	default:
		s := job.state
		job.mu.Unlock()
		return s, nil
	}
}

// Reconfigure applies the hot-reloadable subset of Config: the per-job
// parallelism cap and the cache capacity. Worker count and queue depth
// are fixed at New (the daemon logs them as restart-required).
func (m *Manager) Reconfigure(maxParallel, cacheEntries int) {
	if maxParallel >= 0 {
		m.maxParallel.store(maxParallel)
	}
	if cacheEntries > 0 {
		m.cache.setCapacity(cacheEntries)
	}
}

// Close drains the service: no new submissions, queued jobs still run
// to completion, and Close returns when every worker has exited. If ctx
// expires first, running jobs are aborted through their contexts (they
// finish as cancelled) and Close still waits for the workers before
// returning ctx's error.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	//ivn:allow goroutinehygiene bounded waiter: closes drained after wg.Wait and is always joined by one of the selects below
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		m.baseCancel() // release the base context
		return m.journal.close()
	case <-ctx.Done():
		m.baseCancel() // abort running jobs; workers observe and exit
		<-drained
		_ = m.journal.close()
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob drives one job through the shared runspec pipeline and files
// the outcome. It never panics the worker: any run error lands in the
// job's terminal state.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued {
		// Cancelled while queued; Cancel already closed done.
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.mu.Unlock()

	m.metrics.JobsInFlight.Add(1)
	defer m.metrics.JobsInFlight.Add(-1)
	// The end record is terminal-state bookkeeping, not an outcome: it
	// runs last (after the state is filed below) and best-effort — a lost
	// record costs one redundant re-run after a restart, never lost work.
	// A job that ends cancelled WITHOUT a client Cancel was aborted by
	// shutdown: that is unfinished work the next process owes, so its
	// submit record deliberately stays un-ended and it resumes.
	defer func() {
		job.mu.Lock()
		st, user := job.state, job.userCancel
		job.mu.Unlock()
		if st == StateCancelled && !user {
			return
		}
		_ = m.journal.end(job.id)
	}()

	var res *engine.Result
	var tlog *session.TraceLog
	var err error
	if job.shards > 1 {
		res, err = m.runSharded(job)
	} else {
		lim := engine.Limits{
			MaxParallel: m.maxParallel.load(),
			Metrics:     &m.metrics.Sched,
		}
		res, tlog, err = runspec.Run(job.ctx, lim, job.spec, nil)
	}

	job.mu.Lock()
	defer job.mu.Unlock()
	defer close(job.done)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			job.state = StateCancelled
			job.errMsg = context.Canceled.Error()
			m.metrics.JobsCancelled.Add(1)
		} else {
			job.state = StateFailed
			job.errMsg = err.Error()
			m.metrics.JobsFailed.Add(1)
		}
		return
	}

	var out bytes.Buffer
	if rerr := engine.RenderJSON(res, &out); rerr != nil {
		job.state = StateFailed
		job.errMsg = rerr.Error()
		m.metrics.JobsFailed.Add(1)
		return
	}
	entry := &cacheEntry{key: job.key, resultJSON: out.Bytes()}
	if tlog != nil {
		var tb bytes.Buffer
		if terr := tlog.WriteJSONL(&tb); terr != nil {
			job.state = StateFailed
			job.errMsg = terr.Error()
			m.metrics.JobsFailed.Add(1)
			return
		}
		entry.traceJSONL = tb.Bytes()
	}
	job.state = StateDone
	job.resultJSON = entry.resultJSON
	job.traceJSONL = entry.traceJSONL
	m.cache.put(entry)
	m.metrics.JobsCompleted.Add(1)
}

// runSharded executes one job as job.shards in-memory shard fragments
// fanned out through the engine's own scheduler, then recombines them by
// re-running the whole spec with the union journal attached — the same
// replay mechanism as the CLI's -merge, so the result bytes are
// byte-identical to an unsharded run of the same spec.
//
// The fan-out happens inside this job's worker slot (engine.ForEachCtx,
// not the manager queue), so sharded jobs can never deadlock the worker
// pool: a pool of one worker still completes a many-shard job.
func (m *Manager) runSharded(job *Job) (*engine.Result, error) {
	shards := job.shards
	total := m.maxParallel.load()
	if total <= 0 {
		total = engine.MaxParallel()
	}
	// Each fragment gets an equal slice of the job's trial-worker budget
	// so the fan-out multiplies concurrency by ~1, not by shards.
	perCap := total / shards
	if perCap < 1 {
		perCap = 1
	}
	frags := make([]*engine.Journal, shards)
	subs := make([]*engine.SchedMetrics, shards)
	err := engine.ForEachCtx(job.ctx, engine.Limits{MaxParallel: shards}, shards, func(i int) error {
		frag := engine.NewJournal(nil)
		sub := &engine.SchedMetrics{Parent: &m.metrics.Sched}
		frags[i], subs[i] = frag, sub
		lim := engine.Limits{
			MaxParallel: perCap,
			Metrics:     sub,
			Shard:       engine.Shard{Index: i, Count: shards},
			Journal:     frag,
		}
		// A fragment's table output reduces an incomplete sample set and
		// is discarded; its journal is the product.
		_, _, rerr := runspec.Run(job.ctx, lim, job.spec, nil)
		return rerr
	})
	if err != nil {
		return nil, err
	}

	union := engine.NewJournal(nil)
	var recorded int64
	for i, frag := range frags {
		if aerr := union.Absorb(frag); aerr != nil {
			return nil, fmt.Errorf("service: shard %d/%d: %w", i, shards, aerr)
		}
		recorded += frag.Recorded()
	}
	caps := make([]int64, shards)
	for i, sub := range subs {
		caps[i] = sub.Cap.Load()
	}
	job.mu.Lock()
	job.shardCaps = caps
	job.mu.Unlock()
	m.metrics.ShardSubjobs.Add(int64(shards))
	m.metrics.JournalRecorded.Add(recorded)

	lim := engine.Limits{
		MaxParallel: total,
		Metrics:     &m.metrics.Sched,
		Journal:     union,
	}
	res, _, err := runspec.Run(job.ctx, lim, job.spec, nil)
	if err != nil {
		return nil, err
	}
	m.metrics.JournalReplayed.Add(union.Replayed())
	return res, nil
}
