package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"ivn/internal/ivnsim/runspec"
)

// The job journal is the daemon's restart story: every accepted
// submission appends a "submit" record (the spec plus its shard fan-out),
// every terminal job appends an "end" record, and a restarted manager
// resubmits each submit that never reached its end. Records are JSONL
// with one Write per record, so a SIGKILL tears at most the final line —
// which the loader drops, exactly like the engine's trial journal.

// jobRecord is one journal line.
type jobRecord struct {
	Op string `json:"op"` // "submit" or "end"
	ID string `json:"id"`
	// Shards is the submit's shard fan-out (0 = unsharded).
	Shards int `json:"shards,omitempty"`
	// Spec is the submitted spec's canonical serialization.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// pendingJob is a submit that never ended: work a restarted daemon owes.
type pendingJob struct {
	shards int
	spec   runspec.Spec
}

// jobJournal appends job-state records to a file.
type jobJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openJobJournal loads the pending jobs from path (if it exists) and
// reopens the file fresh: resubmitted jobs get new submit records under
// their new ids, so the file never grows across restarts with stale
// history.
func openJobJournal(path string) (*jobJournal, []pendingJob, error) {
	pending, err := loadPending(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: job journal: %w", err)
	}
	return &jobJournal{f: f}, pending, nil
}

// loadPending replays a journal file into the submit-without-end set,
// in submission order. A missing file means a fresh daemon; a torn
// final line (no newline, unparseable) is dropped.
func loadPending(path string) ([]pendingJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: job journal: %w", err)
	}
	defer f.Close()

	type entry struct {
		order int
		job   pendingJob
	}
	open := map[string]entry{}
	order := 0
	br := bufio.NewReader(f)
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		if len(bytes.TrimSpace(raw)) > 0 {
			line++
			var rec jobRecord
			if perr := json.Unmarshal(bytes.TrimSpace(raw), &rec); perr != nil {
				if !complete {
					break // torn tail from a kill mid-append
				}
				return nil, fmt.Errorf("service: job journal %s line %d: %v", path, line, perr)
			}
			switch rec.Op {
			case "submit":
				spec, serr := runspec.ParseJSON(rec.Spec)
				if serr != nil {
					if !complete {
						break
					}
					return nil, fmt.Errorf("service: job journal %s line %d: %v", path, line, serr)
				}
				open[rec.ID] = entry{order: order, job: pendingJob{shards: rec.Shards, spec: spec}}
				order++
			case "end":
				delete(open, rec.ID)
			default:
				if complete {
					return nil, fmt.Errorf("service: job journal %s line %d: unknown op %q", path, line, rec.Op)
				}
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			return nil, fmt.Errorf("service: job journal %s: %w", path, rerr)
		}
	}

	ents := make([]entry, 0, len(open))
	for _, e := range open {
		ents = append(ents, e)
	}
	// Resubmission preserves original submission order, so a restarted
	// queue drains in the order clients submitted.
	sort.Slice(ents, func(i, k int) bool { return ents[i].order < ents[k].order })
	jobs := make([]pendingJob, len(ents))
	for i, e := range ents {
		jobs[i] = e.job
	}
	return jobs, nil
}

// append writes one record as a single Write call.
func (jj *jobJournal) append(rec jobRecord) error {
	if jj == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: job journal record: %w", err)
	}
	line = append(line, '\n')
	jj.mu.Lock()
	defer jj.mu.Unlock()
	if _, err := jj.f.Write(line); err != nil {
		return fmt.Errorf("service: job journal write: %w", err)
	}
	return nil
}

// submit records an accepted submission.
func (jj *jobJournal) submit(id string, shards int, spec runspec.Spec) error {
	if jj == nil {
		return nil
	}
	canon, err := spec.Canonical()
	if err != nil {
		return err
	}
	return jj.append(jobRecord{Op: "submit", ID: id, Shards: shards, Spec: canon})
}

// end records a job reaching a terminal state. Best-effort by design:
// a failed end record costs one redundant re-run after a restart, never
// lost work, so callers on terminal paths ignore the error.
func (jj *jobJournal) end(id string) error {
	if jj == nil {
		return nil
	}
	return jj.append(jobRecord{Op: "end", ID: id})
}

// close releases the file.
func (jj *jobJournal) close() error {
	if jj == nil {
		return nil
	}
	jj.mu.Lock()
	defer jj.mu.Unlock()
	return jj.f.Close()
}
