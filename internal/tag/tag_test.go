package tag

import (
	"math"
	"testing"

	"ivn/internal/em"
	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

func TestPresetsValid(t *testing.T) {
	for _, m := range []Model{StandardTag(), MiniatureTag()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestModelValidation(t *testing.T) {
	mutations := []func(*Model){
		func(m *Model) { m.MatchingBoost = 0 },
		func(m *Model) { m.Stages = 0 },
		func(m *Model) { m.ThresholdVoltage = -1 },
		func(m *Model) { m.OperatingVoltage = 0 },
		func(m *Model) { m.BackscatterDepth = 0 },
		func(m *Model) { m.BackscatterDepth = 1.5 },
		func(m *Model) { m.BackscatterGain = 0 },
	}
	for i, mutate := range mutations {
		m := StandardTag()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestInputVoltageScaling(t *testing.T) {
	m := StandardTag()
	if v := m.InputVoltage(0); v != 0 {
		t.Fatalf("zero power gives %v V", v)
	}
	// 4× power → 2× voltage.
	v1, v4 := m.InputVoltage(1e-4), m.InputVoltage(4e-4)
	if math.Abs(v4/v1-2) > 1e-12 {
		t.Fatalf("voltage scaling wrong: %v", v4/v1)
	}
	// Known value: V = Q·√(2·P·R) = 5·√(2·1e-4·50) = 5·0.1 = 0.5.
	if math.Abs(v1-0.5) > 1e-12 {
		t.Fatalf("V(100µW) = %v, want 0.5", v1)
	}
}

func TestThresholdCliff(t *testing.T) {
	// The defining nonlinearity: below the threshold-derived minimum the
	// tag harvests nothing at all.
	m := StandardTag()
	pMin := m.MinPeakPower()
	if m.PowersUp(pMin * 0.98) {
		t.Fatal("powered up below sensitivity")
	}
	if !m.PowersUp(pMin * 1.02) {
		t.Fatal("failed to power up above sensitivity")
	}
	// Deep below threshold, the DC output is exactly zero (conduction
	// angle zero — Fig. 4c).
	if v := m.DCVoltageAtPeak(pMin / 100); v != 0 {
		t.Fatalf("deep-subthreshold V_DC = %v, want 0", v)
	}
}

func TestMiniatureTagDeficit(t *testing.T) {
	std, mini := StandardTag(), MiniatureTag()
	ratioDB := mini.SensitivityDBm() - std.SensitivityDBm()
	if ratioDB < 15 || ratioDB > 26 {
		t.Fatalf("miniature deficit = %.1f dB, want ≈20", ratioDB)
	}
}

// freeSpaceRange returns the maximum distance at which the model powers up
// against IVN's single-antenna chain (30 dBm out, 7 dBi TX antenna).
func freeSpaceRange(m Model) float64 {
	pa := radio.DefaultPA()
	txAmp := pa.Amplify(1)         // ≈1 W at 30 dBm P1dB
	txGain := math.Pow(10, 7.0/20) // 7 dBi amplitude gain
	lambda := em.Wavelength(915e6)
	pMin := m.MinPeakPower()
	lo, hi := 0.1, 500.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		amp := txAmp * txGain * em.FriisAmplitude(lambda, mid)
		if amp*amp >= pMin {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func TestStandardTagFreeSpaceRangeMatchesPaper(t *testing.T) {
	// Paper Fig. 13a: single-antenna range ≈5.2 m.
	r := freeSpaceRange(StandardTag())
	if r < 4 || r > 7 {
		t.Fatalf("standard tag single-antenna range = %.2f m, want ≈5.2", r)
	}
}

func TestMiniatureTagFreeSpaceRangeMatchesPaper(t *testing.T) {
	// Paper Fig. 13b: single-antenna range ≈0.5 m.
	r := freeSpaceRange(MiniatureTag())
	if r < 0.3 || r > 0.9 {
		t.Fatalf("miniature tag single-antenna range = %.2f m, want ≈0.5", r)
	}
}

func TestSensitivityDBmConsistency(t *testing.T) {
	m := StandardTag()
	p := m.MinPeakPower()
	if got := m.SensitivityDBm(); math.Abs(got-(10*math.Log10(p)+30)) > 1e-12 {
		t.Fatalf("dBm conversion wrong: %v", got)
	}
}

func TestTagPowerLifecycle(t *testing.T) {
	tg, err := New(StandardTag(), []byte{0x12, 0x34}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Powered() {
		t.Fatal("new tag is powered")
	}
	// Unpowered: silent.
	if r := tg.HandleCommand(&gen2.Query{Q: 0}); r.Kind != gen2.ReplyNone {
		t.Fatal("unpowered tag replied")
	}
	pMin := tg.Model.MinPeakPower()
	tg.UpdatePower(pMin * 2)
	if !tg.Powered() {
		t.Fatal("tag not powered above sensitivity")
	}
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("powered tag reply = %s", reply.Kind)
	}
	if tg.Logic.State() != gen2.StateReply {
		t.Fatalf("state = %s", tg.Logic.State())
	}
	// Power loss resets protocol state.
	tg.UpdatePower(pMin / 10)
	if tg.Powered() {
		t.Fatal("tag still powered below sensitivity")
	}
	if tg.Logic.State() != gen2.StateReady {
		t.Fatal("power loss did not reset state")
	}
}

func TestNewTagValidation(t *testing.T) {
	bad := StandardTag()
	bad.Stages = 0
	if _, err := New(bad, []byte{1, 2}, rng.New(1)); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := New(StandardTag(), []byte{1}, rng.New(1)); err == nil {
		t.Fatal("odd EPC accepted")
	}
}

func TestBackscatterWaveform(t *testing.T) {
	tg, err := New(StandardTag(), []byte{0x12, 0x34}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	wave, err := tg.BackscatterWaveform(reply, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two levels only: g and g·(1−depth).
	g, depth := tg.Model.BackscatterGain, tg.Model.BackscatterDepth
	hi, lo := g, g*(1-depth)
	for i, v := range wave {
		if math.Abs(v-hi) > 1e-12 && math.Abs(v-lo) > 1e-12 {
			t.Fatalf("sample %d = %v, want %v or %v", i, v, hi, lo)
		}
	}
	// Round trip through the FM0 decoder (AC-coupled).
	mean := 0.0
	for _, v := range wave {
		mean += v
	}
	mean /= float64(len(wave))
	ac := make([]float64, len(wave))
	for i, v := range wave {
		ac[i] = v - mean
	}
	dec := gen2.FM0Decoder{SamplesPerHalfBit: 4}
	res, err := dec.DecodeFrame(ac, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Payload.Equal(reply.Bits) {
		t.Fatalf("backscatter round trip: %s != %s", res.Payload, reply.Bits)
	}
	if _, err := tg.BackscatterWaveform(gen2.Reply{Kind: gen2.ReplyNone}, 4); err == nil {
		t.Fatal("no-reply waveform accepted")
	}
}

func TestDemodulateDownlinkEndToEnd(t *testing.T) {
	tg, err := New(StandardTag(), []byte{0xAA, 0xBB}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pie := gen2.DefaultPIE(8e6)
	q := &gen2.Query{Q: 0, Session: gen2.S1}
	env, err := pie.EncodeFrame(q.AppendBits(nil), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		env = append(env, 1)
	}
	// Unpowered tag cannot demodulate.
	if _, err := tg.DemodulateDownlink(env, pie); err == nil {
		t.Fatal("unpowered demodulation succeeded")
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 2)
	cmd, err := tg.DemodulateDownlink(env, pie)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Type() != gen2.CmdQuery {
		t.Fatalf("demodulated %s", cmd.Type())
	}
	reply := tg.HandleCommand(cmd)
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %s", reply.Kind)
	}
}

func TestCIBPeakPowersTagThatCWCannot(t *testing.T) {
	// The headline mechanism, in units: a received power whose *average*
	// is below sensitivity but whose CIB peak (N× average, §3.4) is above
	// it powers the tag, while the same average power from one antenna
	// (flat envelope) does not.
	m := StandardTag()
	pMin := m.MinPeakPower()
	avg := pMin / 4 // single antenna delivering a quarter of sensitivity
	if m.PowersUp(avg) {
		t.Fatal("flat envelope at pMin/4 powered the tag")
	}
	// 8-antenna CIB: peak ≈ N²·(per-antenna power)… with per-antenna
	// average avg/8, peak = 8·avg (aligned amplitudes: (8·√(avg/8))² ).
	peak := 8 * avg
	if !m.PowersUp(peak) {
		t.Fatal("CIB peak did not power the tag")
	}
}
