// Package tag models IVN's battery-free backscatter sensors: the antenna
// and matching network that turn incident RF power into harvester drive
// voltage, the threshold-limited rectifier, the Gen2 protocol logic, and
// the backscatter modulator.
//
// Two presets mirror the paper's devices (§5c): the standard Avery
// Dennison AD-238u8 (1.4 cm × 7 cm) and the miniature Xerafy Dash-On XS
// (1.2 cm × 0.3 cm × 0.22 cm). The miniature tag's much smaller effective
// aperture (paper Eq. 3) is captured as a ≈20 dB harvesting deficit,
// calibrated so the standard tag's single-antenna free-space range lands
// at the paper's ≈5.2 m and the miniature tag's at ≈0.5 m.
package tag

import (
	"fmt"
	"math"

	"ivn/internal/circuit"
	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// AntennaResistance is the assumed radiation resistance at the harvester
// input, ohms.
const AntennaResistance = 50.0

// Model is the RF/analog personality of a tag type.
type Model struct {
	// Name identifies the model in output.
	Name string
	// Dims is the physical size in meters (documentation; the electrical
	// consequences are captured by GainDBi and MatchingBoost).
	Dims [3]float64
	// GainDBi is the antenna gain. Miniature antennas are both lower-gain
	// and less efficient; the efficiency deficit is folded in here.
	GainDBi float64
	// MatchingBoost is the passive voltage magnification of the matching
	// network (L-match Q). Electrically small antennas are harder to
	// match, so the miniature tag gets a lower boost.
	MatchingBoost float64
	// Stages and ThresholdVoltage define the charge-pump harvester.
	Stages int
	// ThresholdVoltage is the per-diode threshold (200–400 mV for
	// standard IC processes, §2.1.1).
	ThresholdVoltage float64
	// OperatingVoltage is the DC rail the logic needs.
	OperatingVoltage float64
	// BackscatterDepth is the amplitude modulation depth of the
	// reflection coefficient switch, in (0,1].
	BackscatterDepth float64
	// BackscatterGain is the fraction of incident amplitude re-radiated
	// in the absorbing state (structural + antenna-mode scattering).
	BackscatterGain float64
}

// StandardTag models the Avery Dennison AD-238u8: a full-size label
// antenna, calibrated to a ≈5.2 m single-antenna free-space range against
// IVN's 30 dBm / 7 dBi transmit chain.
func StandardTag() Model {
	return Model{
		Name:             "standard (AD-238u8)",
		Dims:             [3]float64{0.07, 0.014, 0.0002},
		GainDBi:          2.15,
		MatchingBoost:    5,
		Stages:           4,
		ThresholdVoltage: 0.3,
		OperatingVoltage: 1.6,
		BackscatterDepth: 0.8,
		BackscatterGain:  0.33,
	}
}

// MiniatureTag models the Xerafy Dash-On XS: a millimeter-scale antenna
// with ≈20 dB less harvesting ability (aperture + matching), calibrated to
// a ≈0.5 m single-antenna free-space range.
func MiniatureTag() Model {
	return Model{
		Name:             "miniature (Dash-On XS)",
		Dims:             [3]float64{0.012, 0.003, 0.0022},
		GainDBi:          -10.5,
		MatchingBoost:    2,
		Stages:           4,
		ThresholdVoltage: 0.3,
		OperatingVoltage: 1.6,
		BackscatterDepth: 0.8,
		BackscatterGain:  0.33,
	}
}

// Validate checks the model's parameters.
func (m Model) Validate() error {
	if m.MatchingBoost <= 0 {
		return fmt.Errorf("tag: matching boost %v <= 0", m.MatchingBoost)
	}
	if m.Stages < 1 {
		return fmt.Errorf("tag: %d stages", m.Stages)
	}
	if m.ThresholdVoltage < 0 {
		return fmt.Errorf("tag: negative threshold")
	}
	if m.OperatingVoltage <= 0 {
		return fmt.Errorf("tag: operating voltage %v <= 0", m.OperatingVoltage)
	}
	if m.BackscatterDepth <= 0 || m.BackscatterDepth > 1 {
		return fmt.Errorf("tag: backscatter depth %v outside (0,1]", m.BackscatterDepth)
	}
	if m.BackscatterGain <= 0 || m.BackscatterGain > 1 {
		return fmt.Errorf("tag: backscatter gain %v outside (0,1]", m.BackscatterGain)
	}
	return nil
}

// AntennaAmplitudeGain returns √(10^{dBi/10}).
func (m Model) AntennaAmplitudeGain() float64 { return math.Pow(10, m.GainDBi/20) }

// InputVoltage converts received RF power at the antenna port (watts,
// already including antenna gain) into the peak RF voltage presented to
// the rectifier: V = Q·√(2·P·R).
func (m Model) InputVoltage(rxPowerWatts float64) float64 {
	if rxPowerWatts <= 0 {
		return 0
	}
	return m.MatchingBoost * math.Sqrt(2*rxPowerWatts*AntennaResistance)
}

// Rectifier builds the model's harvester.
func (m Model) Rectifier() *circuit.Rectifier {
	r, err := circuit.NewRectifier(m.Stages, m.ThresholdVoltage)
	if err != nil {
		// Parameters validated by Validate; this is unreachable for the
		// presets but keeps the zero-value failure loud.
		panic(fmt.Sprintf("tag: %v", err))
	}
	return r
}

// DCVoltageAtPeak returns the harvester's steady-state output when the
// envelope peak RF power at the port is peakWatts (paper Eq. 1 applied at
// the peak — CIB's whole premise is that the peak, not the average, must
// clear the threshold).
func (m Model) DCVoltageAtPeak(peakWatts float64) float64 {
	return m.Rectifier().SteadyStateVoltage(m.InputVoltage(peakWatts))
}

// PowersUp reports whether an envelope peak power of peakWatts (at the
// antenna port, isotropic) lets the tag reach its operating rail. The
// antenna gain is applied here.
func (m Model) PowersUp(peakWattsIsotropic float64) bool {
	g := m.AntennaAmplitudeGain()
	return m.DCVoltageAtPeak(peakWattsIsotropic*g*g) >= m.OperatingVoltage
}

// MinPeakPower returns the minimum isotropic-port envelope peak power
// (watts) that powers the tag up — the sensitivity the range experiments
// sweep against.
func (m Model) MinPeakPower() float64 {
	// Invert V_DC = N·(Q·√(2PR)·g − V_th) = V_op.
	vs := m.ThresholdVoltage + m.OperatingVoltage/float64(m.Stages)
	v := vs / m.MatchingBoost
	p := v * v / (2 * AntennaResistance)
	g := m.AntennaAmplitudeGain()
	return p / (g * g)
}

// SensitivityDBm returns MinPeakPower in dBm.
func (m Model) SensitivityDBm() float64 {
	return 10*math.Log10(m.MinPeakPower()) + 30
}

// PowerFault scales the envelope peak power a tag harvests at a given
// observation event — the injection seam for CIB peak drift (the envelope
// maximum wandering off the sensor with subject motion). Implementations
// must be pure functions of the event index and their own state (see
// ivn/internal/fault). A nil PowerFault harvests the full peak.
type PowerFault interface {
	// PeakScale returns the multiplicative power factor in [0,1] for
	// observation event `event` (experiments use the round index).
	PeakScale(event int) float64
}

// Tag is a live sensor instance: a model plus protocol state and power
// bookkeeping.
type Tag struct {
	Model Model
	Logic *gen2.TagLogic
	// Fault optionally derates the harvested peak per observation event;
	// nil means the tag always sees the full envelope peak.
	Fault PowerFault

	powered bool
}

// New builds a tag with the given model and EPC.
func New(m Model, epc []byte, r *rng.Rand) (*Tag, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	logic, err := gen2.NewTagLogic(epc, r)
	if err != nil {
		return nil, err
	}
	return &Tag{Model: m, Logic: logic}, nil
}

// Powered reports whether the tag currently has its rail up.
func (t *Tag) Powered() bool { return t.powered }

// UpdatePower applies the current envelope peak power (isotropic port
// watts). Losing power resets the protocol state, as a real passive tag's
// volatile state dies with its rail.
func (t *Tag) UpdatePower(peakWattsIsotropic float64) {
	up := t.Model.PowersUp(peakWattsIsotropic)
	if t.powered && !up {
		t.Logic.PowerReset()
	}
	t.powered = up
}

// UpdatePowerAt applies the envelope peak power for observation event
// `event`, derated through the tag's PowerFault when one is installed.
// With a nil Fault it is exactly UpdatePower.
func (t *Tag) UpdatePowerAt(event int, peakWattsIsotropic float64) {
	if t.Fault != nil {
		peakWattsIsotropic *= t.Fault.PeakScale(event)
	}
	t.UpdatePower(peakWattsIsotropic)
}

// HandleCommand runs the protocol when powered; an unpowered tag is
// silent.
func (t *Tag) HandleCommand(c gen2.Command) gen2.Reply {
	if !t.powered {
		return gen2.Reply{Kind: gen2.ReplyNone}
	}
	return t.Logic.HandleCommand(c)
}

// BackscatterWaveform renders a reply as the amplitude-modulation factor
// the tag imposes on the illuminating carrier: line-coded levels mapped
// into [1−depth, 1]·gain. The encoding follows the round's Query M field
// (FM0 by default, Miller 2/4/8 otherwise). The reader sees this waveform
// scaled by the incident amplitude at the tag and the uplink channel.
func (t *Tag) BackscatterWaveform(reply gen2.Reply, samplesPerHalfBit int) ([]float64, error) {
	if reply.Kind == gen2.ReplyNone {
		return nil, fmt.Errorf("tag: no reply to modulate")
	}
	var levels []float64
	var err error
	if m := t.Logic.Miller(); m != 0 {
		// The subcarrier runs at the backscatter link frequency: one cycle
		// spans one FM0 bit time (2 half-bits), so a Miller-M bit lasts M×
		// longer on air — the rate-for-robustness trade of the M field.
		enc := gen2.MillerEncoder{M: m, SamplesPerCycle: 2 * samplesPerHalfBit}
		levels, err = enc.Encode(reply.Bits)
	} else {
		enc := gen2.FM0Encoder{SamplesPerHalfBit: samplesPerHalfBit}
		levels, err = enc.Encode(reply.Bits)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(levels))
	depth := t.Model.BackscatterDepth
	g := t.Model.BackscatterGain
	for i, l := range levels {
		// l ∈ {−1, +1} → reflection amplitude ∈ {1−depth, 1}·g.
		out[i] = g * (1 - depth*(1-l)/2)
	}
	return out, nil
}

// DemodulateDownlink runs the tag-side envelope detector over a received
// voltage envelope and decodes the PIE frame into a command. The tag must
// be powered. envelope is in volts at the detector; pie supplies the
// timing expectations.
func (t *Tag) DemodulateDownlink(envelope []float64, pie gen2.PIEParams) (gen2.Command, error) {
	if !t.powered {
		return nil, fmt.Errorf("tag: unpowered")
	}
	bits, _, err := pie.DecodeFrame(envelope)
	if err != nil {
		return nil, err
	}
	return gen2.DecodeCommand(bits)
}
