package tag

import (
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// driftAt derates the peak to `scale` at one specific event.
type driftAt struct {
	event int
	scale float64
}

func (d driftAt) PeakScale(event int) float64 {
	if event == d.event {
		return d.scale
	}
	return 1
}

// TestUpdatePowerAtAppliesFault: a drift event derates the harvested peak
// below sensitivity, the tag browns out and loses its protocol state, and
// the next clean event powers it back up.
func TestUpdatePowerAtAppliesFault(t *testing.T) {
	tg, err := New(StandardTag(), []byte{0x11, 0x22}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	peak := tg.Model.MinPeakPower() * 2
	tg.Fault = driftAt{event: 1, scale: 0.1}

	tg.UpdatePowerAt(0, peak)
	if !tg.Powered() {
		t.Fatal("tag dark at full peak")
	}
	// Put the tag mid-round so the brownout has volatile state to destroy.
	reply := tg.HandleCommand(&gen2.Query{Q: 0})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %s", reply.Kind)
	}
	if tg.Logic.State() != gen2.StateReply {
		t.Fatalf("state = %v", tg.Logic.State())
	}

	// Event 1: the peak drifts off the sensor; 2× margin × 0.1 is below
	// the operating point.
	tg.UpdatePowerAt(1, peak)
	if tg.Powered() {
		t.Fatal("tag survived a 10× power derate")
	}
	if tg.Logic.State() != gen2.StateReady {
		t.Fatalf("brownout did not reset protocol state: %v", tg.Logic.State())
	}
	if r := tg.HandleCommand(&gen2.QueryRep{}); r.Kind != gen2.ReplyNone {
		t.Fatalf("unpowered tag replied %s", r.Kind)
	}

	// Event 2: drift passed; the tag powers back up and participates.
	tg.UpdatePowerAt(2, peak)
	if !tg.Powered() {
		t.Fatal("tag did not recover when the peak returned")
	}
}

// TestUpdatePowerAtNilFault: without a fault the event index is inert and
// the behavior is exactly UpdatePower.
func TestUpdatePowerAtNilFault(t *testing.T) {
	tg, err := New(MiniatureTag(), []byte{0x33, 0x44}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	peak := tg.Model.MinPeakPower() * 1.5
	for event := 0; event < 3; event++ {
		tg.UpdatePowerAt(event, peak)
		if !tg.Powered() {
			t.Fatalf("event %d: nil-fault tag dark above sensitivity", event)
		}
	}
	tg.UpdatePowerAt(3, peak*0.1)
	if tg.Powered() {
		t.Fatal("tag powered below sensitivity")
	}
}
