package core

import "fmt"

// bestKnownPlans holds the strongest frequency plans found by a long
// offline run of the §3.6 optimizer (96 Monte-Carlo draws per candidate,
// 4096-point envelope scans, 8 restarts × 120 steps, best of 3 seeds; see
// internal/core/genplans). All satisfy the default flatness constraint
// (α = 0.5, Δt = 800 µs, RMS < 199 Hz). Scores are E_β[max_t Y(t)].
var bestKnownPlans = map[int][]float64{
	2:  {0, 169},                                     // score 2.0000 (E[peak]/N = 1.000)
	3:  {0, 159, 192},                                // score 2.9996 (1.000)
	4:  {0, 42, 113, 304},                            // score 3.9897 (0.997)
	5:  {0, 69, 96, 257, 323},                        // score 4.9324 (0.986)
	6:  {0, 10, 47, 135, 293, 329},                   // score 5.7857 (0.964)
	7:  {0, 7, 20, 125, 185, 320, 342},               // score 6.5283 (0.933)
	8:  {0, 16, 18, 25, 177, 235, 281, 303},          // score 7.1701 (0.896)
	9:  {0, 16, 91, 106, 118, 210, 268, 305, 310},    // score 7.7559 (0.862)
	10: {0, 14, 56, 68, 99, 108, 134, 157, 243, 362}, // score 8.2454 (0.825)
}

// BestKnownPlan returns a precomputed near-optimal Δf plan for n carriers
// (2–10) under the default flatness constraint — what a deployment should
// use when it cannot afford its own optimization run. The returned slice
// is a copy. For other n, run Optimize.
func BestKnownPlan(n int) ([]float64, error) {
	p, ok := bestKnownPlans[n]
	if !ok {
		return nil, fmt.Errorf("core: no precomputed plan for n=%d (have 2-10); use Optimize", n)
	}
	return append([]float64(nil), p...), nil
}
