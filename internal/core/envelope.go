// Package core implements IVN's contribution: coherently-incoherent
// beamforming (CIB).
//
// CIB transmits the same command synchronously from N antennas (coherent
// communication) on N slightly different carrier frequencies (incoherent
// channel). The frequency offsets make the superposed envelope at any
// point in space sweep through constructive alignments over time, so the
// peak received amplitude approaches N× a single antenna — without any
// channel knowledge — and a battery-free sensor can harvest at the peaks
// even when the average power is below its threshold.
//
// This package provides the envelope mathematics (paper Eq. 5), the
// peak-power objective (Eq. 6), the query-flatness constraint (Eqs. 7–9),
// the constrained Monte-Carlo frequency optimizer (Eq. 10), the CIB
// transmitter built on internal/radio, and the §3.7 extensions (two-stage
// conduction-angle optimization, center-frequency hopping, multi-sensor
// Select addressing).
package core

import (
	"fmt"
	"math"

	"ivn/internal/phasor"
	"ivn/internal/pool"
	"ivn/internal/rng"
)

// Envelope evaluates Y(t) = |Σᵢ e^{j(2πΔfᵢt + βᵢ)}| (paper Eq. 5, after
// factoring out the common carrier). offsets and betas must have equal
// length; Envelope panics otherwise because the mismatch is always a
// programming error.
//
// Envelope is the naive (one Sincos per carrier) evaluation and serves as
// the golden reference for the phasor-recurrence series kernels below.
//ivn:hotpath
func Envelope(offsets, betas []float64, t float64) float64 {
	if len(offsets) != len(betas) {
		panic("core: offsets/betas length mismatch")
	}
	var re, im float64
	for i, df := range offsets {
		s, c := math.Sincos(2*math.Pi*df*t + betas[i])
		re += c
		im += s
	}
	return math.Hypot(re, im)
}

// phaseCoeffs fills a pooled complex scratch with the unit phasors
// e^{jβᵢ}; the caller must return it via pool.PutComplex128.
func phaseCoeffs(betas []float64) []complex128 {
	coeffs := pool.Complex128(len(betas))
	for i, b := range betas {
		s, c := math.Sincos(b)
		coeffs[i] = complex(c, s)
	}
	//ivn:allow pooldiscipline ownership transfers to the caller by documented contract; every caller Puts the slice
	return coeffs
}

// EnvelopeSeries samples Y(t) at n points over the half-open interval
// [0, period): t_k = period·k/n for k = 0..n−1, excluding t = period
// (which, for integer-offset plans over one period, duplicates t = 0 —
// the same convention baseline.PeakReceivedPower scans with). It reuses
// dst when it has capacity. The evaluation runs on the shared
// phasor-recurrence kernel with pooled scratch, so steady-state calls
// with a recycled dst do not allocate.
//ivn:hotpath
func EnvelopeSeries(offsets, betas []float64, period float64, n int, dst []float64) []float64 {
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		//ivn:allow hotpath first-call convenience allocation; steady-state callers recycle dst's capacity
		dst = make([]float64, n)
	}
	coeffs := phaseCoeffs(betas)
	phasor.MagnitudeSeries(offsets, coeffs, 0, period/float64(n), n, dst)
	pool.PutComplex128(coeffs)
	return dst
}

// PeakEnvelope returns max over n samples of Y(t) for t ∈ [0, period)
// (half-open grid, as in EnvelopeSeries).
//ivn:hotpath
func PeakEnvelope(offsets, betas []float64, period float64, n int) float64 {
	if len(offsets) == 0 || n <= 0 {
		return 0
	}
	coeffs := phaseCoeffs(betas)
	p := phasor.PeakPower(offsets, coeffs, 0, period/float64(n), n)
	pool.PutComplex128(coeffs)
	return math.Sqrt(p)
}

// FractionAbove returns the fraction of time Y(t) exceeds level over one
// period — the conduction-angle proxy the §3.7 steady stage maximizes.
//ivn:hotpath
func FractionAbove(offsets, betas []float64, level, period float64, n int) float64 {
	if len(offsets) == 0 || n <= 0 {
		return 0
	}
	buf := pool.Float64(n)
	EnvelopeSeries(offsets, betas, period, n, buf)
	count := 0
	for _, v := range buf {
		if v > level {
			count++
		}
	}
	pool.PutFloat64(buf)
	return float64(count) / float64(n)
}

// drawBetas fills dst with uniform random phases; element 0 is pinned to 0
// because only phase *differences* matter (paper §3.6 observes the
// objective depends only on Δf and Δβ).
func drawBetas(dst []float64, r *rng.Rand) {
	for i := range dst {
		if i == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = r.Phase()
	}
}

// ExpectedPeak estimates E_β[max_t Y(t)] (the Eq. 6 objective) by Monte
// Carlo: trials random phase draws, each scanning samplesPerTrial points
// over one envelope period. The period is 1 s by the paper's integer-Δf
// convention. Deterministic for a given r state.
func ExpectedPeak(offsets []float64, trials, samplesPerTrial int, r *rng.Rand) float64 {
	if len(offsets) == 0 || trials <= 0 || samplesPerTrial <= 0 {
		return 0
	}
	betas := pool.Float64(len(offsets))
	coeffs := pool.Complex128(len(offsets))
	dt := 1.0 / float64(samplesPerTrial)
	var acc float64
	for t := 0; t < trials; t++ {
		drawBetas(betas, r)
		for i, b := range betas {
			s, c := math.Sincos(b)
			coeffs[i] = complex(c, s)
		}
		acc += math.Sqrt(phasor.PeakPower(offsets, coeffs, 0, dt, samplesPerTrial))
	}
	pool.PutComplex128(coeffs)
	pool.PutFloat64(betas)
	return acc / float64(trials)
}

// PeakCDF samples the distribution of per-channel-draw peak *power* gains
// (peak² — Fig. 6 plots power) for a frequency set: one sample per random
// β draw. The returned slice has trials entries.
func PeakCDF(offsets []float64, trials, samplesPerTrial int, r *rng.Rand) []float64 {
	out := make([]float64, 0, trials)
	betas := pool.Float64(len(offsets))
	coeffs := pool.Complex128(len(offsets))
	dt := 1.0 / float64(samplesPerTrial)
	for t := 0; t < trials; t++ {
		drawBetas(betas, r)
		for i, b := range betas {
			s, c := math.Sincos(b)
			coeffs[i] = complex(c, s)
		}
		out = append(out, phasor.PeakPower(offsets, coeffs, 0, dt, samplesPerTrial))
	}
	pool.PutComplex128(coeffs)
	pool.PutFloat64(betas)
	return out
}

// ExpectedConductionFraction estimates E_β[fraction of t with Y(t) > level].
// Note that this quantity is invariant under scaling all offsets by a
// common factor (it only rescales time), so it measures a plan's *pattern*
// quality; the duty-cycle trade of §3.7 shows up in dwell time instead.
func ExpectedConductionFraction(offsets []float64, level float64, trials, samplesPerTrial int, r *rng.Rand) float64 {
	if len(offsets) == 0 || trials <= 0 {
		return 0
	}
	betas := make([]float64, len(offsets))
	var acc float64
	for t := 0; t < trials; t++ {
		drawBetas(betas, r)
		acc += FractionAbove(offsets, betas, level, 1.0, samplesPerTrial)
	}
	return acc / float64(trials)
}

// MaxDwellAbove returns the longest contiguous time (seconds, out of one
// 1 s period) the envelope stays above level for a given phase draw. The
// envelope is sampled on the same half-open grid as EnvelopeSeries
// (t ∈ [0, 1), samples points).
//ivn:hotpath
func MaxDwellAbove(offsets, betas []float64, level float64, samples int) float64 {
	if len(offsets) == 0 || samples <= 0 {
		return 0
	}
	buf := pool.Float64(samples)
	defer pool.PutFloat64(buf)
	EnvelopeSeries(offsets, betas, 1.0, samples, buf)
	dt := 1.0 / float64(samples)
	best, run := 0, 0
	// The envelope is 1-periodic; handle a run wrapping the period edge by
	// scanning two concatenated periods (capped at one full period).
	for pass := 0; pass < 2; pass++ {
		for _, v := range buf {
			if v > level {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
	}
	if best > samples {
		best = samples
	}
	return float64(best) * dt
}

// ExpectedDwellTime estimates E_β[max contiguous dwell above level] — the
// §3.7 steady-stage objective. A sensor charging a storage capacitor needs
// *continuous* above-threshold intervals; once the discovery stage has
// established the attainable level, slower (smaller-Δf) plans hold the
// envelope above it for longer per burst.
func ExpectedDwellTime(offsets []float64, level float64, trials, samplesPerTrial int, r *rng.Rand) float64 {
	if len(offsets) == 0 || trials <= 0 {
		return 0
	}
	betas := make([]float64, len(offsets))
	var acc float64
	for t := 0; t < trials; t++ {
		drawBetas(betas, r)
		acc += MaxDwellAbove(offsets, betas, level, samplesPerTrial)
	}
	return acc / float64(trials)
}

// ValidateOffsets checks a CIB frequency plan: offset 0 present first,
// strictly increasing non-negative integers (the cyclic-operation
// constraint of §3.6 with T = 1 s).
func ValidateOffsets(offsets []float64) error {
	if len(offsets) == 0 {
		return fmt.Errorf("core: empty offset set")
	}
	if offsets[0] != 0 {
		return fmt.Errorf("core: first offset must be 0 (reference carrier), got %v", offsets[0])
	}
	for i, f := range offsets {
		//ivn:allow floatcmp exact integrality check via the Trunc identity; offsets are small integers, no rounding involved
		if f != math.Trunc(f) {
			return fmt.Errorf("core: offset %v at index %d is not an integer (violates T=1s cyclic constraint)", f, i)
		}
		if f < 0 {
			return fmt.Errorf("core: negative offset %v", f)
		}
		if i > 0 && f <= offsets[i-1] {
			return fmt.Errorf("core: offsets not strictly increasing at index %d", i)
		}
	}
	return nil
}

// PaperOffsets is the Δf set IVN's prototype uses (paper §5a): obtained
// from the one-time Monte-Carlo optimization, RMS ≈ 82 Hz, well inside the
// 199 Hz flatness limit for an 800 µs query.
func PaperOffsets() []float64 {
	return []float64{0, 7, 20, 49, 68, 73, 90, 113, 121, 137}
}
