package core

import (
	"math"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func TestEnvelopeAlignedPeakIsN(t *testing.T) {
	// At t where all phases align, Y = N (paper §3.4: "The maximum
	// achievable peak in CIB is N").
	offsets := []float64{0, 7, 20, 49}
	betas := []float64{0, 0, 0, 0}
	if got := Envelope(offsets, betas, 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("aligned envelope = %v, want 4", got)
	}
}

func TestEnvelopeBoundedByN(t *testing.T) {
	r := rng.New(1)
	offsets := PaperOffsets()
	betas := make([]float64, len(offsets))
	for trial := 0; trial < 50; trial++ {
		drawBetas(betas, r)
		for _, tm := range []float64{0, 0.1, 0.25, 0.7, 0.99} {
			if y := Envelope(offsets, betas, tm); y > float64(len(offsets))+1e-9 {
				t.Fatalf("envelope %v exceeds N", y)
			}
		}
	}
}

func TestEnvelopePeriodicOneSecond(t *testing.T) {
	// Integer offsets ⇒ the envelope is 1-periodic (the cyclic-operation
	// constraint of §3.6).
	r := rng.New(2)
	offsets := PaperOffsets()
	betas := make([]float64, len(offsets))
	drawBetas(betas, r)
	for _, tm := range []float64{0.01, 0.37, 0.62} {
		a := Envelope(offsets, betas, tm)
		b := Envelope(offsets, betas, tm+1)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("envelope not 1-periodic at t=%v: %v vs %v", tm, a, b)
		}
	}
}

func TestEnvelopeSeriesMatchesPointwise(t *testing.T) {
	r := rng.New(3)
	offsets := []float64{0, 13, 54, 121}
	betas := make([]float64, 4)
	drawBetas(betas, r)
	const n = 1000
	series := EnvelopeSeries(offsets, betas, 1.0, n, nil)
	for _, k := range []int{0, 1, 137, 500, 999} {
		tm := float64(k) / n
		want := Envelope(offsets, betas, tm)
		if math.Abs(series[k]-want) > 1e-6 {
			t.Fatalf("series[%d] = %v, pointwise = %v", k, series[k], want)
		}
	}
}

func TestEnvelopeSeriesReusesBuffer(t *testing.T) {
	buf := make([]float64, 256)
	out := EnvelopeSeries([]float64{0, 5}, []float64{0, 1}, 1, 256, buf)
	if &out[0] != &buf[0] {
		t.Fatal("EnvelopeSeries allocated despite sufficient capacity")
	}
}

func TestEnvelopeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Envelope([]float64{0, 1}, []float64{0}, 0)
}

func TestPeakEnvelopeFindsAlignment(t *testing.T) {
	// With zero betas the peak (=N) is at t=0; with arbitrary betas and a
	// fine scan the peak must come close to N for a well-spread set.
	offsets := []float64{0, 7, 20, 49, 68}
	peak := PeakEnvelope(offsets, []float64{0, 0, 0, 0, 0}, 1, 4096)
	if math.Abs(peak-5) > 1e-9 {
		t.Fatalf("zero-phase peak = %v, want 5", peak)
	}
	if PeakEnvelope(nil, nil, 1, 10) != 0 {
		t.Fatal("empty set peak != 0")
	}
}

func TestExpectedPeakGrowsWithN(t *testing.T) {
	// The heart of Fig. 9: expected peak grows monotonically with the
	// number of antennas.
	all := PaperOffsets()
	prev := 0.0
	for n := 2; n <= 10; n++ {
		ep := ExpectedPeak(all[:n], 40, 2048, rng.New(uint64(n)))
		if ep <= prev {
			t.Fatalf("expected peak at N=%d (%v) not above N=%d (%v)", n, ep, n-1, prev)
		}
		prev = ep
	}
}

func TestExpectedPeakNearNForPaperSet(t *testing.T) {
	// "the blue curve corresponds to a set which can achieve 90% of the
	// optimal performance" — the published set should reach a large
	// fraction of N on average.
	offsets := PaperOffsets()
	ep := ExpectedPeak(offsets, 60, 8192, rng.New(7))
	// Pure-phase-model ground truth: ≈0.77·N for the 10-offset set (the
	// 5-offset prefix reaches ≈0.96·N, matching Fig. 6's best curve; the
	// extra gap at N=10 is closed in the full-system benches by
	// per-antenna channel-magnitude variation).
	if ep < 0.72*float64(len(offsets)) {
		t.Fatalf("paper offsets expected peak %v < 72%% of N=%d", ep, len(offsets))
	}
	if ep > float64(len(offsets)) {
		t.Fatalf("expected peak %v exceeds N", ep)
	}
	// The 5-carrier prefix should approach N much more closely.
	ep5 := ExpectedPeak(offsets[:5], 60, 8192, rng.New(7))
	if ep5 < 0.9*5 {
		t.Fatalf("5-offset expected peak %v < 90%% of 5", ep5)
	}
}

func TestExpectedPeakDegenerateInputs(t *testing.T) {
	if ExpectedPeak(nil, 10, 10, rng.New(1)) != 0 {
		t.Fatal("empty offsets")
	}
	if ExpectedPeak([]float64{0, 1}, 0, 10, rng.New(1)) != 0 {
		t.Fatal("zero trials")
	}
}

func TestPeakCDFBestVsWorstSeparation(t *testing.T) {
	// Fig. 6: a good frequency set stochastically dominates a bad one.
	// A clustered set (e.g. {0,1,2,3,4}) has highly correlated phasors and
	// a long envelope period structure; compare against the optimized
	// spread of the paper's first five offsets.
	good := []float64{0, 7, 20, 49, 68}
	bad := []float64{0, 1, 2, 3, 4}
	gs := PeakCDF(good, 300, 2048, rng.New(11))
	bs := PeakCDF(bad, 300, 2048, rng.New(11))
	var gm, bm float64
	for i := range gs {
		gm += gs[i]
		bm += bs[i]
	}
	gm /= float64(len(gs))
	bm /= float64(len(bs))
	if gm <= bm {
		t.Fatalf("good set mean peak power %v not above clustered set %v", gm, bm)
	}
	// All power samples bounded by N².
	for _, v := range append(gs, bs...) {
		if v > 25+1e-6 {
			t.Fatalf("peak power %v exceeds N²", v)
		}
	}
}

func TestFractionAboveBehavior(t *testing.T) {
	offsets := []float64{0, 7, 20}
	betas := []float64{0, 0, 0}
	// Above level 0 it is (almost) always above.
	if f := FractionAbove(offsets, betas, 0.001, 1, 4096); f < 0.95 {
		t.Fatalf("fraction above ≈0 level = %v", f)
	}
	// Above N it is never above.
	if f := FractionAbove(offsets, betas, 3.0001, 1, 4096); f != 0 {
		t.Fatalf("fraction above N = %v", f)
	}
	// Monotone decreasing in level.
	prev := 1.0
	for _, lvl := range []float64{0.5, 1, 1.5, 2, 2.5} {
		f := FractionAbove(offsets, betas, lvl, 1, 4096)
		if f > prev+1e-12 {
			t.Fatalf("fraction not monotone at level %v", lvl)
		}
		prev = f
	}
	if FractionAbove(nil, nil, 1, 1, 10) != 0 {
		t.Fatal("empty set fraction != 0")
	}
}

func TestExpectedConductionFractionPeakVsSteadyTradeoff(t *testing.T) {
	// A tighter frequency cluster holds the envelope above a moderate
	// threshold longer (wider beats), at the cost of scan speed — the
	// §3.7 trade the two-stage design exploits.
	tight := []float64{0, 1, 2}
	spread := []float64{0, 61, 127}
	level := 1.5 // half of N=3
	ft := ExpectedConductionFraction(tight, level, 60, 4096, rng.New(5))
	fs := ExpectedConductionFraction(spread, level, 60, 4096, rng.New(5))
	// Both operate; the comparison itself (tight ≥ spread) documents the
	// mechanism. Equal RNG stream makes this a paired comparison.
	if ft <= 0 || fs <= 0 {
		t.Fatalf("degenerate conduction fractions: %v, %v", ft, fs)
	}
	if ft < fs*0.8 {
		t.Fatalf("tight cluster fraction %v not competitive with spread %v", ft, fs)
	}
}

func TestValidateOffsets(t *testing.T) {
	if err := ValidateOffsets(PaperOffsets()); err != nil {
		t.Fatal(err)
	}
	cases := [][]float64{
		nil,
		{1, 2},     // missing 0
		{0, 2, 2},  // not strictly increasing
		{0, 5.5},   // non-integer
		{0, -3},    // negative
		{0, 10, 5}, // unsorted
	}
	for i, c := range cases {
		if err := ValidateOffsets(c); err == nil {
			t.Errorf("case %d: %v accepted", i, c)
		}
	}
}

func TestQuickEnvelopeBounds(t *testing.T) {
	r := rng.New(31)
	f := func(nRaw uint8, tRaw uint16) bool {
		n := int(nRaw%9) + 2
		offsets := PaperOffsets()[:n]
		betas := make([]float64, n)
		drawBetas(betas, r)
		tm := float64(tRaw) / 65536
		y := Envelope(offsets, betas, tm)
		return y >= 0 && y <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnvelopeSeries10Carriers(b *testing.B) {
	offsets := PaperOffsets()
	betas := make([]float64, len(offsets))
	drawBetas(betas, rng.New(1))
	buf := make([]float64, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EnvelopeSeries(offsets, betas, 1, 8192, buf)
	}
}

func BenchmarkExpectedPeak(b *testing.B) {
	offsets := PaperOffsets()
	for i := 0; i < b.N; i++ {
		ExpectedPeak(offsets, 10, 2048, rng.New(uint64(i)))
	}
}
