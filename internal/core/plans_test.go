package core

import (
	"testing"

	"ivn/internal/rng"
)

func TestBestKnownPlansValidAndFeasible(t *testing.T) {
	limit, err := FlatnessLimit(DefaultFlatnessAlpha, DefaultQueryDuration)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 10; n++ {
		p, err := BestKnownPlan(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(p) != n {
			t.Fatalf("n=%d: plan has %d offsets", n, len(p))
		}
		if err := ValidateOffsets(p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rms := RMSOffset(p); rms > limit {
			t.Fatalf("n=%d: RMS %v exceeds limit %v", n, rms, limit)
		}
	}
}

func TestBestKnownPlanUnknownN(t *testing.T) {
	if _, err := BestKnownPlan(1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := BestKnownPlan(11); err == nil {
		t.Fatal("n=11 accepted")
	}
}

func TestBestKnownPlanReturnsCopy(t *testing.T) {
	a, _ := BestKnownPlan(5)
	a[1] = 99999
	b, _ := BestKnownPlan(5)
	if b[1] == 99999 {
		t.Fatal("BestKnownPlan shares its backing array")
	}
}

func TestBestKnownPlansBeatPaperPrefixes(t *testing.T) {
	// The embedded plans came from a longer search than the paper's; they
	// must score at least as well as the corresponding paper prefix under
	// a common evaluator.
	for _, n := range []int{5, 8, 10} {
		best, err := BestKnownPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		paper := PaperOffsets()[:n]
		eval := func(offs []float64) float64 {
			return ExpectedPeak(offs, 48, 4096, rng.New(12345))
		}
		if sb, sp := eval(best), eval(paper); sb < sp {
			t.Fatalf("n=%d: best-known %.4f below paper prefix %.4f", n, sb, sp)
		}
	}
}
