package core

import (
	"fmt"
	"math"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

// Beamformer is the CIB transmitter: an antenna array whose chains emit
// the same synchronized Gen2 command on offset carriers fᵢ = f₀ + Δfᵢ.
type Beamformer struct {
	// CenterFreq is f₀ (the prototype uses 915 MHz).
	CenterFreq float64 //ivn:unit Hz
	// Offsets is the Δf plan; Offsets[0] must be 0.
	Offsets []float64 //ivn:unit Hz
	// Array is the transmit hardware (one chain per offset).
	Array *radio.Array
	// PIE is the downlink line coding shared by all chains.
	PIE gen2.PIEParams

	// bits is serialization scratch for the air-time paths; reusing it
	// makes CommandAirTime allocation-free but not concurrency-safe on a
	// shared Beamformer (each trial owns its own, so this never bites).
	bits gen2.Bits
}

// Config assembles a Beamformer.
type Config struct {
	// CenterFreq is f₀ in Hz; zero means 915 MHz.
	CenterFreq float64 //ivn:unit Hz
	// Offsets is the Δf plan; nil means PaperOffsets truncated/validated
	// to Antennas entries.
	Offsets []float64 //ivn:unit Hz
	// Antennas is the chain count; zero means len(Offsets).
	Antennas int
	// DriveAmplitude is the per-chain PA drive in √W; zero means a drive
	// that saturates the default PA near its 30 dBm P1dB (1 W out).
	DriveAmplitude float64 //ivn:unit sqrtW
	// PA and Ant configure each chain; zero values mean the prototype's
	// 30 dBm-P1dB amplifier and 7 dBi antennas.
	PA  radio.PowerAmp
	Ant radio.Antenna
	// SampleRate is the envelope synthesis rate for PIE; zero means 8 MHz.
	SampleRate float64 //ivn:unit Hz
}

// DefaultConfig mirrors the paper's prototype: 915 MHz center, the
// published 10-offset plan, 30 dBm chains, 7 dBi antennas.
func DefaultConfig() Config {
	return Config{
		CenterFreq: 915e6,
		Offsets:    PaperOffsets(),
		PA:         radio.DefaultPA(),
		Ant:        radio.Antenna{GainDBi: 7},
		SampleRate: 8e6,
	}
}

// New builds a Beamformer from cfg and locks its oscillators from r.
func New(cfg Config, r *rng.Rand) (*Beamformer, error) {
	if cfg.CenterFreq == 0 {
		cfg.CenterFreq = 915e6
	}
	if cfg.CenterFreq <= 0 {
		return nil, fmt.Errorf("core: center frequency %v <= 0", cfg.CenterFreq)
	}
	if cfg.Offsets == nil {
		cfg.Offsets = PaperOffsets()
	}
	if cfg.Antennas == 0 {
		cfg.Antennas = len(cfg.Offsets)
	}
	if cfg.Antennas < 1 || cfg.Antennas > len(cfg.Offsets) {
		return nil, fmt.Errorf("core: %d antennas with %d offsets", cfg.Antennas, len(cfg.Offsets))
	}
	offsets := append([]float64(nil), cfg.Offsets[:cfg.Antennas]...)
	if err := ValidateOffsets(offsets); err != nil {
		return nil, err
	}
	if cfg.PA == (radio.PowerAmp{}) {
		cfg.PA = radio.DefaultPA()
	}
	if cfg.DriveAmplitude == 0 {
		// Drive each chain to its rated 30 dBm (1 W) operating point.
		cfg.DriveAmplitude = cfg.PA.OperatingDrive()
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 8e6
	}
	freqs := make([]float64, len(offsets))
	for i, df := range offsets {
		freqs[i] = cfg.CenterFreq + df
	}
	arr, err := radio.NewUniformArray(freqs, cfg.DriveAmplitude, cfg.PA, cfg.Ant)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("core: nil RNG")
	}
	arr.Lock(r)
	return &Beamformer{
		CenterFreq: cfg.CenterFreq,
		Offsets:    offsets,
		Array:      arr,
		PIE:        gen2.DefaultPIE(cfg.SampleRate),
	}, nil
}

// N returns the antenna count.
func (b *Beamformer) N() int { return len(b.Offsets) }

// Relock re-randomizes every PLL phase — a new "trial" in the paper's
// experimental sense.
func (b *Beamformer) Relock(r *rng.Rand) { b.Array.Lock(r) }

// Carriers returns the emitted tone set for CW (power-delivery) intervals.
func (b *Beamformer) Carriers() []radio.Carrier { return b.Array.Carriers() }

// AppendCarriers appends the emitted tone set to dst and returns it.
func (b *Beamformer) AppendCarriers(dst []radio.Carrier) []radio.Carrier {
	return b.Array.AppendCarriers(dst)
}

// EqualPowerCarriers returns the tone set with per-chain amplitude scaled
// by 1/√N so total radiated power matches a single chain — the paper's
// note that CIB still yields an N× peak-power gain under a fixed power
// budget (§3.4).
func (b *Beamformer) EqualPowerCarriers() []radio.Carrier {
	cs := b.Array.Carriers()
	scale := 1 / math.Sqrt(float64(len(cs)))
	for i := range cs {
		cs[i].Amplitude *= scale
	}
	return cs
}

// Transmission is one synchronized downlink command: the carriers plus the
// shared PIE amplitude envelope they all modulate. At any receiver the
// observed envelope is the product of the beamforming envelope (set by the
// carrier offsets and channel phases) and this command envelope — the
// tag sees the same command edges from every antenna because the
// transmissions are time-synchronized (§3.2).
type Transmission struct {
	Carriers []radio.Carrier
	// Envelope is the PIE amplitude sequence at SampleRate.
	Envelope []float64
	// SampleRate is the envelope sample rate in Hz.
	SampleRate float64 //ivn:unit Hz
	// Duration is the command's on-air time in seconds.
	Duration float64 //ivn:unit s
	// Command is the serialized frame for reference.
	Command gen2.Bits
}

// TransmitCommand builds the synchronized transmission for cmd, verifying
// that the frequency plan keeps the envelope flat enough over the
// command's actual duration (Eq. 9 with Δt = this command's length, which
// covers the §3.7 multi-sensor case of longer Select+Query compounds).
func (b *Beamformer) TransmitCommand(cmd gen2.Command, preamble bool) (*Transmission, error) {
	bits := cmd.AppendBits(nil)
	dur := b.PIE.FrameDuration(bits, preamble)
	ok, err := SatisfiesFlatness(b.Offsets, DefaultFlatnessAlpha, dur)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: offset plan RMS %.1f Hz violates flatness for a %.0f µs command",
			RMSOffset(b.Offsets), dur*1e6)
	}
	env, err := b.PIE.EncodeFrame(bits, preamble)
	if err != nil {
		return nil, err
	}
	return &Transmission{
		Carriers:   b.Carriers(),
		Envelope:   env,
		SampleRate: b.PIE.SampleRate,
		Duration:   dur,
		Command:    bits,
	}, nil
}

// CommandAirTime returns cmd's on-air duration after running exactly the
// validation gauntlet of TransmitCommand — flatness over the command's
// duration, then the PIE and bit checks EncodeFrame would apply — without
// synthesizing the amplitude envelope. The envelope is dead weight for
// consumers that only advance time and evaluate decodability analytically
// (the session/link exchange path); skipping it removes the dominant
// per-trial byte cost of the Fig13 experiments. Serialization scratch is
// reused across calls, so this allocates nothing in steady state.
//
//ivn:unit return s
func (b *Beamformer) CommandAirTime(cmd gen2.Command, preamble bool) (float64, error) {
	b.bits = cmd.AppendBits(b.bits[:0])
	dur := b.PIE.FrameDuration(b.bits, preamble)
	ok, err := SatisfiesFlatness(b.Offsets, DefaultFlatnessAlpha, dur)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("core: offset plan RMS %.1f Hz violates flatness for a %.0f µs command",
			RMSOffset(b.Offsets), dur*1e6)
	}
	if err := b.PIE.Validate(); err != nil {
		return 0, err
	}
	if err := b.bits.Validate(); err != nil {
		return 0, err
	}
	return dur, nil
}

// SelectQueryAirTime is CommandAirTime for the §3.7 Select+Query compound:
// the flatness constraint is checked against the combined duration (as in
// TransmitSelectThenQuery) and then each command is vetted individually.
func (b *Beamformer) SelectQueryAirTime(sel *gen2.Select, q *gen2.Query) (selDur, qDur float64, err error) {
	b.bits = sel.AppendBits(b.bits[:0])
	total := b.PIE.FrameDuration(b.bits, false)
	b.bits = q.AppendBits(b.bits[:0])
	total += b.PIE.FrameDuration(b.bits, true)
	ok, err := SatisfiesFlatness(b.Offsets, DefaultFlatnessAlpha, total)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("core: offset plan violates flatness over the %.0f µs Select+Query compound", total*1e6)
	}
	if selDur, err = b.CommandAirTime(sel, false); err != nil {
		return 0, 0, err
	}
	if qDur, err = b.CommandAirTime(q, true); err != nil {
		return 0, 0, err
	}
	return selDur, qDur, nil
}

// TransmitSelectThenQuery builds the §3.7 multi-sensor compound: a Select
// addressing one sensor's EPC prefix followed by a Query, with the
// flatness constraint checked against the combined duration.
func (b *Beamformer) TransmitSelectThenQuery(sel *gen2.Select, q *gen2.Query) (*Transmission, *Transmission, error) {
	selBits := sel.AppendBits(nil)
	qBits := q.AppendBits(nil)
	total := b.PIE.FrameDuration(selBits, false) + b.PIE.FrameDuration(qBits, true)
	ok, err := SatisfiesFlatness(b.Offsets, DefaultFlatnessAlpha, total)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("core: offset plan violates flatness over the %.0f µs Select+Query compound", total*1e6)
	}
	ts, err := b.TransmitCommand(sel, false)
	if err != nil {
		return nil, nil, err
	}
	tq, err := b.TransmitCommand(q, true)
	if err != nil {
		return nil, nil, err
	}
	return ts, tq, nil
}

// HopCenter implements the §3.7 frequency-hopping extension: given a probe
// function reporting delivered peak power at a candidate center frequency,
// it moves the beamformer to the best band. Returns the chosen center.
//
//ivn:unit candidates Hz
//ivn:unit return Hz
func (b *Beamformer) HopCenter(candidates []float64, probe func(center float64) float64) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("core: no candidate centers")
	}
	best, bestP := candidates[0], probe(candidates[0])
	for _, c := range candidates[1:] {
		if p := probe(c); p > bestP {
			best, bestP = c, p
		}
	}
	b.CenterFreq = best
	for i, chain := range b.Array.Chains {
		chain.Osc.Freq = best + b.Offsets[i]
	}
	return best, nil
}
