package core

import (
	"fmt"
	"math"
)

// The query-amplitude-flatness constraint (paper §3.6, Eqs. 7–9).
//
// A backscatter tag decodes the downlink by envelope detection with a
// decision threshold at half the amplitude swing, so it tolerates envelope
// fluctuation only up to a fraction α < 0.5 over the duration Δt of a
// command. Expanding the CIB envelope to first order around a peak gives
//
//	(1/N)·Σ Δfᵢ² ≤ α / (2π²Δt²)             (Eq. 9)
//
// i.e. the RMS frequency offset is bounded by √(α)/(√2·π·Δt).

// DefaultFlatnessAlpha is the fluctuation bound; the paper requires
// α < 0.5 and designs against it.
const DefaultFlatnessAlpha = 0.5

// DefaultQueryDuration is the paper's Δt for a typical reader query.
const DefaultQueryDuration = 800e-6

// RMSOffset returns √((1/N)·ΣΔfᵢ²) over the full set (including the zero
// reference, matching the paper's 1/N normalization).
//
//ivn:unit offsets Hz
//ivn:unit return Hz
func RMSOffset(offsets []float64) float64 {
	if len(offsets) == 0 {
		return 0
	}
	var acc float64
	for _, f := range offsets {
		acc += f * f
	}
	return math.Sqrt(acc / float64(len(offsets)))
}

// FlatnessLimit returns the maximum admissible RMS offset for fluctuation
// bound alpha and command duration dt: √(α/(2π²Δt²)). For α = 0.5 and
// Δt = 800 µs this is ≈ 199 Hz, the figure the paper quotes.
//
//ivn:unit alpha 1
//ivn:unit dt s
//ivn:unit return Hz
func FlatnessLimit(alpha, dt float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("core: flatness α %v outside (0,1)", alpha)
	}
	if dt <= 0 {
		return 0, fmt.Errorf("core: command duration %v <= 0", dt)
	}
	return math.Sqrt(alpha / (2 * math.Pi * math.Pi * dt * dt)), nil
}

// SatisfiesFlatness reports whether an offset set meets Eq. 9 for the
// given α and command duration.
//
//ivn:unit offsets Hz
//ivn:unit alpha 1
//ivn:unit dt s
func SatisfiesFlatness(offsets []float64, alpha, dt float64) (bool, error) {
	limit, err := FlatnessLimit(alpha, dt)
	if err != nil {
		return false, err
	}
	return RMSOffset(offsets) <= limit, nil
}

// EnvelopeDropNearPeak returns the worst-case first-order envelope decay
// over a window dt after a perfectly aligned peak, as a fraction of the
// peak (the left side of Eq. 7 under the Eq. 8 expansion):
// 2π²dt²·(ΣΔfᵢ²)/N.
//
//ivn:unit offsets Hz
//ivn:unit dt s
//ivn:unit return 1
func EnvelopeDropNearPeak(offsets []float64, dt float64) float64 {
	if len(offsets) == 0 {
		return 0
	}
	var acc float64
	for _, f := range offsets {
		acc += f * f
	}
	return 2 * math.Pi * math.Pi * dt * dt * acc / float64(len(offsets))
}
