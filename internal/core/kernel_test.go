package core

import (
	"math"
	"testing"

	"ivn/internal/rng"
)

// Golden equivalence: the kernel-backed series functions must agree with
// the naive Envelope reference to ≤1e-9 relative error.

func TestEnvelopeSeriesMatchesNaiveEnvelope(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(12)
		offsets := make([]float64, n)
		betas := make([]float64, n)
		sameFreq := trial%5 == 4
		for i := range offsets {
			if sameFreq {
				offsets[i] = 37
			} else {
				offsets[i] = float64(r.Intn(200))
			}
			betas[i] = r.Phase()
		}
		const samples = 2048
		series := EnvelopeSeries(offsets, betas, 1.0, samples, nil)
		for k := 0; k < samples; k += 17 {
			want := Envelope(offsets, betas, float64(k)/samples)
			if math.Abs(series[k]-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d k=%d: series %v, naive %v", trial, k, series[k], want)
			}
		}
	}
}

func TestPeakEnvelopeMatchesSeriesMax(t *testing.T) {
	r := rng.New(32)
	for trial := 0; trial < 10; trial++ {
		offsets := PaperOffsets()
		betas := make([]float64, len(offsets))
		drawBetas(betas, r)
		const samples = 4096
		series := EnvelopeSeries(offsets, betas, 1.0, samples, nil)
		want := 0.0
		for _, v := range series {
			if v > want {
				want = v
			}
		}
		got := PeakEnvelope(offsets, betas, 1.0, samples)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("trial %d: PeakEnvelope %v, series max %v", trial, got, want)
		}
	}
}

func TestMaxDwellAboveMatchesSeriesScan(t *testing.T) {
	// MaxDwellAbove's pooled-buffer rewrite must agree with a direct scan
	// of the same half-open series.
	r := rng.New(33)
	offsets := PaperOffsets()[:5]
	betas := make([]float64, len(offsets))
	drawBetas(betas, r)
	const samples = 1024
	level := 2.0
	series := EnvelopeSeries(offsets, betas, 1.0, samples, nil)
	best, run := 0, 0
	for pass := 0; pass < 2; pass++ {
		for _, v := range series {
			if v > level {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
	}
	if best > samples {
		best = samples
	}
	want := float64(best) / samples
	got := MaxDwellAbove(offsets, betas, level, samples)
	if got != want {
		t.Fatalf("MaxDwellAbove %v, direct scan %v", got, want)
	}
}
