// Command genplans performs the long offline frequency-plan optimization
// whose results are embedded as core.BestKnownPlan. Re-run it (and paste
// the output) after any change to the optimizer or its objective:
//
//	go run ./internal/core/genplans
package main

import (
	"fmt"

	"ivn/internal/core"
	"ivn/internal/rng"
)

func main() {
	cfg := core.DefaultOptimizerConfig()
	cfg.Trials = 96
	cfg.SamplesPerTrial = 4096
	cfg.Restarts = 8
	cfg.StepsPerRestart = 120
	for n := 2; n <= 10; n++ {
		best := core.Plan{}
		for seed := uint64(1); seed <= 3; seed++ {
			p, err := core.Optimize(n, cfg, rng.New(seed*1000+uint64(n)))
			if err != nil {
				panic(err)
			}
			if p.Score > best.Score {
				best = p
			}
		}
		fmt.Printf("%d: %v, // score %.4f (E[peak]/N = %.3f), RMS %.1f Hz\n",
			n, best.Offsets, best.Score, best.Score/float64(n), best.RMS)
	}
}
