package core

import (
	"fmt"
	"math"

	"ivn/internal/rng"
)

// The §3.7 two-stage runtime: "The first stage involves a discovery
// process where it optimizes for peak power; then, once it has determined
// the overall attenuation, it can switch to a steady stage where it
// maximizes the conduction angle."
//
// TwoStage is that state machine. In discovery it runs a peak-optimized
// plan (maximum chance of waking an unknown sensor). The first successful
// response reveals the link margin — the delivered peak versus what the
// sensor needs — which fixes the envelope threshold fraction ρ, and the
// controller re-optimizes for contiguous dwell above it.

// Stage identifies the controller state.
type Stage int

// Controller stages.
const (
	// StageDiscovery maximizes the expected envelope peak.
	StageDiscovery Stage = iota
	// StageSteady maximizes dwell time above the known threshold.
	StageSteady
)

// String names the stage.
func (s Stage) String() string {
	if s == StageDiscovery {
		return "discovery"
	}
	return "steady"
}

// TwoStage drives the discovery→steady plan transition.
type TwoStage struct {
	n   int
	cfg OptimizerConfig

	stage     Stage
	discovery Plan
	steady    Plan
	rho       float64
}

// NewTwoStage builds the controller and optimizes its discovery plan.
func NewTwoStage(n int, cfg OptimizerConfig, r *rng.Rand) (*TwoStage, error) {
	plan, err := Optimize(n, cfg, r)
	if err != nil {
		return nil, err
	}
	return &TwoStage{n: n, cfg: cfg, discovery: plan}, nil
}

// Stage returns the current state.
func (ts *TwoStage) Stage() Stage { return ts.stage }

// CurrentPlan returns the plan the beamformer should transmit with now.
func (ts *TwoStage) CurrentPlan() Plan {
	if ts.stage == StageSteady {
		return ts.steady
	}
	return ts.discovery
}

// Rho returns the threshold fraction the steady stage was optimized for
// (zero while still in discovery).
func (ts *TwoStage) Rho() float64 { return ts.rho }

// ObserveResponse records a successful power-up: the discovery plan
// delivered peakPower (watts, at the sensor) while the sensor needs at
// least sensorMinPower to operate. The implied envelope threshold is
//
//	ρ = (Y_peak/N)·√(P_min/P_peak)
//
// with Y_peak the plan's expected peak. The controller optimizes a
// dwell-maximizing plan for that ρ and switches to the steady stage.
// A margin too small to leave room for dwell optimization (ρ > 0.95)
// keeps the controller in discovery — the peak plan is already the only
// plan that wakes the sensor at all.
func (ts *TwoStage) ObserveResponse(peakPower, sensorMinPower float64, r *rng.Rand) error {
	if peakPower <= 0 || sensorMinPower <= 0 {
		return fmt.Errorf("core: non-positive powers %v, %v", peakPower, sensorMinPower)
	}
	if sensorMinPower > peakPower {
		return fmt.Errorf("core: sensor minimum %v exceeds delivered peak %v — no response was possible", sensorMinPower, peakPower)
	}
	yPeakFrac := ts.discovery.Score / float64(ts.n)
	rho := yPeakFrac * math.Sqrt(sensorMinPower/peakPower)
	if rho > 0.95 {
		// Margin too thin; stay in discovery.
		ts.stage = StageDiscovery
		ts.rho = 0
		return nil
	}
	if rho < 0.05 {
		rho = 0.05 // enormous margin; keep the threshold meaningful
	}
	steady, err := OptimizeConductionAngle(ts.n, rho, ts.cfg, r)
	if err != nil {
		return err
	}
	ts.steady = steady
	ts.rho = rho
	ts.stage = StageSteady
	return nil
}

// Reset returns to discovery (sensor lost, body moved, band hopped).
func (ts *TwoStage) Reset() {
	ts.stage = StageDiscovery
	ts.rho = 0
	ts.steady = Plan{}
}
