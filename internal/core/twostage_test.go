package core

import (
	"testing"

	"ivn/internal/rng"
)

func TestTwoStageLifecycle(t *testing.T) {
	r := rng.New(1)
	ts, err := NewTwoStage(5, fastCfg(), r)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Stage() != StageDiscovery {
		t.Fatalf("initial stage = %s", ts.Stage())
	}
	if ts.Rho() != 0 {
		t.Fatal("rho set before any response")
	}
	disc := ts.CurrentPlan()
	if err := ValidateOffsets(disc.Offsets); err != nil {
		t.Fatal(err)
	}

	// A response with a healthy 10 dB margin switches to steady.
	if err := ts.ObserveResponse(1e-3, 1e-4, r); err != nil {
		t.Fatal(err)
	}
	if ts.Stage() != StageSteady {
		t.Fatalf("stage after response = %s", ts.Stage())
	}
	if ts.Rho() <= 0 || ts.Rho() > 0.95 {
		t.Fatalf("rho = %v", ts.Rho())
	}
	steady := ts.CurrentPlan()
	if err := ValidateOffsets(steady.Offsets); err != nil {
		t.Fatal(err)
	}
	if steady.RMS > steady.Limit {
		t.Fatal("steady plan violates flatness")
	}

	// The steady plan must dwell at least as long as discovery at its ρ.
	level := ts.Rho() * 5
	dSteady := ExpectedDwellTime(steady.Offsets, level, 30, 4096, rng.New(9))
	dDisc := ExpectedDwellTime(disc.Offsets, level, 30, 4096, rng.New(9))
	if dSteady < dDisc*0.9 {
		t.Fatalf("steady dwell %v worse than discovery %v", dSteady, dDisc)
	}

	ts.Reset()
	if ts.Stage() != StageDiscovery || ts.Rho() != 0 {
		t.Fatal("Reset did not return to discovery")
	}
}

func TestTwoStageThinMarginStaysInDiscovery(t *testing.T) {
	r := rng.New(2)
	ts, err := NewTwoStage(4, fastCfg(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Sensor barely responded: margin ≈ 1 ⇒ ρ ≈ Y_peak/N close to 1.
	if err := ts.ObserveResponse(1e-4, 0.99e-4, r); err != nil {
		t.Fatal(err)
	}
	if ts.Stage() != StageDiscovery {
		t.Fatalf("thin margin switched to %s", ts.Stage())
	}
}

func TestTwoStageHugeMarginClampsRho(t *testing.T) {
	r := rng.New(3)
	ts, err := NewTwoStage(4, fastCfg(), r)
	if err != nil {
		t.Fatal(err)
	}
	// 60 dB margin would push ρ → 0; it must clamp.
	if err := ts.ObserveResponse(1, 1e-6, r); err != nil {
		t.Fatal(err)
	}
	if ts.Stage() != StageSteady {
		t.Fatalf("stage = %s", ts.Stage())
	}
	if ts.Rho() < 0.05-1e-12 {
		t.Fatalf("rho = %v below clamp", ts.Rho())
	}
}

func TestTwoStageObserveValidation(t *testing.T) {
	r := rng.New(4)
	ts, err := NewTwoStage(4, fastCfg(), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.ObserveResponse(0, 1, r); err == nil {
		t.Fatal("zero peak accepted")
	}
	if err := ts.ObserveResponse(1, 0, r); err == nil {
		t.Fatal("zero minimum accepted")
	}
	if err := ts.ObserveResponse(1e-6, 1e-3, r); err == nil {
		t.Fatal("impossible response accepted")
	}
	if ts.Stage() != StageDiscovery {
		t.Fatal("failed observations changed stage")
	}
}

func TestStageStrings(t *testing.T) {
	if StageDiscovery.String() != "discovery" || StageSteady.String() != "steady" {
		t.Fatal("stage names wrong")
	}
}
