package core

import (
	"math"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

func TestNewBeamformerDefaults(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 10 {
		t.Fatalf("N = %d, want 10", b.N())
	}
	if b.CenterFreq != 915e6 {
		t.Fatalf("center = %v", b.CenterFreq)
	}
	cs := b.Carriers()
	for i, c := range cs {
		want := 915e6 + PaperOffsets()[i]
		if c.Freq != want {
			t.Fatalf("carrier %d at %v, want %v", i, c.Freq, want)
		}
		if c.Amplitude <= 0 {
			t.Fatalf("carrier %d amplitude %v", i, c.Amplitude)
		}
	}
}

func TestNewBeamformerTruncatesOffsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Antennas = 4
	b, err := New(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 4 {
		t.Fatalf("N = %d", b.N())
	}
}

func TestNewBeamformerValidation(t *testing.T) {
	r := rng.New(1)
	cfg := DefaultConfig()
	cfg.Offsets = []float64{5, 10} // missing zero reference
	if _, err := New(cfg, r); err == nil {
		t.Fatal("invalid offsets accepted")
	}
	cfg = DefaultConfig()
	cfg.Antennas = 99
	if _, err := New(cfg, r); err == nil {
		t.Fatal("more antennas than offsets accepted")
	}
	cfg = DefaultConfig()
	cfg.CenterFreq = -5
	if _, err := New(cfg, r); err == nil {
		t.Fatal("negative center accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	b, err := New(Config{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if b.CenterFreq != 915e6 || b.N() != 10 {
		t.Fatalf("zero config produced center=%v N=%d", b.CenterFreq, b.N())
	}
}

func TestRelockChangesPhases(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p1 := b.Carriers()[3].Phase
	b.Relock(rng.New(5))
	p2 := b.Carriers()[3].Phase
	if p1 == p2 {
		t.Fatal("relock kept the same phase")
	}
}

func TestEqualPowerCarriers(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	full := b.Carriers()
	eq := b.EqualPowerCarriers()
	var fullP, eqP float64
	for i := range full {
		fullP += full[i].Amplitude * full[i].Amplitude
		eqP += eq[i].Amplitude * eq[i].Amplitude
	}
	// Equal-power budget: total power equals one chain's power.
	onechain := full[0].Amplitude * full[0].Amplitude
	if math.Abs(eqP-onechain)/onechain > 1e-9 {
		t.Fatalf("equal-power total %v, want %v", eqP, onechain)
	}
	if math.Abs(fullP-10*onechain)/onechain > 1e-9 {
		t.Fatalf("full-power total %v, want %v", fullP, 10*onechain)
	}
}

func TestTransmitCommandFlatnessEnforced(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := b.TransmitCommand(&gen2.Query{Q: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Carriers) != 10 || len(tx.Envelope) == 0 {
		t.Fatalf("transmission incomplete: %d carriers, %d samples", len(tx.Carriers), len(tx.Envelope))
	}
	if tx.Duration <= 0 || tx.SampleRate != b.PIE.SampleRate {
		t.Fatalf("bad metadata: dur=%v fs=%v", tx.Duration, tx.SampleRate)
	}
	// A kHz-offset plan must be rejected for the same command.
	cfg := DefaultConfig()
	cfg.Offsets = []float64{0, 1000, 2000, 3000}
	cfg.Antennas = 4
	wide, err := New(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wide.TransmitCommand(&gen2.Query{}, true); err == nil {
		t.Fatal("flatness-violating plan transmitted")
	}
}

func TestTransmitSelectThenQuery(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	mask := gen2.BitsFromBytes([]byte{0xE2})
	sel := &gen2.Select{Target: 4, Action: 0, MemBank: 1, Mask: mask}
	q := &gen2.Query{Sel: 3, Q: 0}
	ts, tq, err := b.TransmitSelectThenQuery(sel, q)
	if err != nil {
		t.Fatal(err)
	}
	if ts == nil || tq == nil {
		t.Fatal("missing transmissions")
	}
	// The compound is longer than a lone query; duration must reflect it.
	if ts.Duration+tq.Duration <= tq.Duration {
		t.Fatal("select added no duration")
	}
	// The serialized commands decode back.
	if _, err := gen2.DecodeCommand(ts.Command); err != nil {
		t.Fatal(err)
	}
	if _, err := gen2.DecodeCommand(tq.Command); err != nil {
		t.Fatal(err)
	}
}

func TestHopCenterPicksBestBand(t *testing.T) {
	b, err := New(DefaultConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	candidates := []float64{902e6, 915e6, 928e6}
	// Probe peaks at 928 MHz.
	probe := func(c float64) float64 { return -math.Abs(c - 928e6) }
	got, err := b.HopCenter(candidates, probe)
	if err != nil {
		t.Fatal(err)
	}
	if got != 928e6 || b.CenterFreq != 928e6 {
		t.Fatalf("hopped to %v", got)
	}
	// Chains follow: chain i at 928 MHz + Δfᵢ.
	for i, ch := range b.Array.Chains {
		if ch.Osc.Freq != 928e6+b.Offsets[i] {
			t.Fatalf("chain %d at %v after hop", i, ch.Osc.Freq)
		}
	}
	if _, err := b.HopCenter(nil, probe); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestBeamformedEnvelopeAtSensorPeaksAboveSingleAntenna(t *testing.T) {
	// End-to-end core property: with unit channels, the CIB envelope's
	// peak beats any single carrier's constant amplitude.
	b, err := New(DefaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cs := b.Carriers()
	chans := make([]complex128, len(cs))
	for i := range chans {
		chans[i] = 1
	}
	y, err := radio.ReceivedBaseband(cs, chans, b.CenterFreq, 10e3, 10000) // 1 s
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range y {
		if m := math.Hypot(real(v), imag(v)); m > peak {
			peak = m
		}
	}
	single := cs[0].Amplitude
	if peak < 4*single {
		t.Fatalf("CIB peak %v < 4× single amplitude %v", peak, single)
	}
}
