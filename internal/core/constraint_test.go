package core

import (
	"math"
	"testing"
)

func TestFlatnessLimitMatchesPaper199Hz(t *testing.T) {
	// "the root mean square of Δfᵢ should be less than 199 Hz" for
	// α = 0.5 (implied by the decoding threshold) and Δt = 800 µs.
	limit, err := FlatnessLimit(0.5, 800e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(limit-199) > 1 {
		t.Fatalf("flatness limit = %v Hz, want ≈199", limit)
	}
}

func TestFlatnessLimitErrors(t *testing.T) {
	for _, c := range [][2]float64{{0, 1e-3}, {1, 1e-3}, {-0.1, 1e-3}, {0.5, 0}, {0.5, -1}} {
		if _, err := FlatnessLimit(c[0], c[1]); err == nil {
			t.Errorf("FlatnessLimit(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestPaperOffsetsSatisfyFlatness(t *testing.T) {
	ok, err := SatisfiesFlatness(PaperOffsets(), 0.5, 800e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("published plan (RMS %.1f Hz) violates its own constraint", RMSOffset(PaperOffsets()))
	}
}

func TestPaperOffsetsRMS(t *testing.T) {
	// Direct check: RMS of {0,7,...,137} over N=10 ≈ 81.9 Hz.
	rms := RMSOffset(PaperOffsets())
	if math.Abs(rms-81.9) > 0.5 {
		t.Fatalf("paper plan RMS = %v Hz, want ≈81.9", rms)
	}
}

func TestRMSOffsetEdge(t *testing.T) {
	if RMSOffset(nil) != 0 {
		t.Fatal("empty RMS != 0")
	}
	if got := RMSOffset([]float64{0, 3, 4}); math.Abs(got-math.Sqrt(25.0/3)) > 1e-12 {
		t.Fatalf("RMS = %v", got)
	}
}

func TestSatisfiesFlatnessRejectsWideSets(t *testing.T) {
	// kHz-scale offsets would modulate the envelope within a single query.
	wide := []float64{0, 1000, 2000, 5000}
	ok, err := SatisfiesFlatness(wide, 0.5, 800e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("kHz offsets passed the flatness constraint")
	}
}

func TestEnvelopeDropNearPeakFirstOrder(t *testing.T) {
	// The analytic drop bound must upper-bound the true envelope decay
	// close to a perfect peak (Taylor's inequality direction in Eq. 8
	// means cos-sum ≥ first-order bound... verify the analytic form
	// against the definition instead).
	offsets := PaperOffsets()
	dt := 100e-6
	var sum float64
	for _, f := range offsets {
		sum += f * f
	}
	want := 2 * math.Pi * math.Pi * dt * dt * sum / float64(len(offsets))
	if got := EnvelopeDropNearPeak(offsets, dt); math.Abs(got-want) > 1e-15 {
		t.Fatalf("drop = %v, want %v", got, want)
	}
	if EnvelopeDropNearPeak(nil, dt) != 0 {
		t.Fatal("empty set drop != 0")
	}
}

func TestEnvelopeActuallyStaysFlatOverQuery(t *testing.T) {
	// End-to-end check of the constraint's purpose: starting from a
	// perfectly aligned peak, the true envelope over an 800 µs window must
	// not fluctuate more than α for the published plan.
	offsets := PaperOffsets()
	betas := make([]float64, len(offsets)) // aligned at t=0
	n := 800
	lo, hi := math.Inf(1), 0.0
	for k := 0; k < n; k++ {
		tm := 800e-6 * float64(k) / float64(n)
		y := Envelope(offsets, betas, tm)
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	fluct := (hi - lo) / hi
	if fluct > 0.5 {
		t.Fatalf("true envelope fluctuation over a query = %v, want <= 0.5", fluct)
	}
}

func TestWideOffsetsBreakEnvelopeOverQuery(t *testing.T) {
	// Conversely a constraint-violating plan really does fluctuate.
	offsets := []float64{0, 1000, 2500, 4000}
	betas := make([]float64, len(offsets))
	n := 800
	lo, hi := math.Inf(1), 0.0
	for k := 0; k < n; k++ {
		tm := 800e-6 * float64(k) / float64(n)
		y := Envelope(offsets, betas, tm)
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	if (hi-lo)/hi < 0.5 {
		t.Fatalf("kHz plan fluctuation only %v; constraint would be pointless", (hi-lo)/hi)
	}
}
