package core

import (
	"fmt"
	"math"
	"sort"

	"ivn/internal/rng"
)

// The one-time frequency-selection optimization (paper §3.6, Eq. 10):
//
//	max over integer Δf₂..Δf_N of E_β[max_t |1 + Σ e^{j(2πΔfᵢt+βᵢ)}|]
//	s.t. (1/N)·ΣΔfᵢ² ≤ α/(2π²Δt²)
//
// The problem is non-convex; like the authors ("IVN performs a one-time
// monte-carlo simulation... less than 5 mins"), we solve it with a
// stochastic local search: random feasible starts, single-offset
// mutations, hill climbing on the Monte-Carlo objective.

// OptimizerConfig tunes the search.
type OptimizerConfig struct {
	// Alpha and CommandDuration define the flatness constraint.
	Alpha           float64
	CommandDuration float64
	// Trials is the Monte-Carlo channel draws per objective evaluation.
	Trials int
	// SamplesPerTrial is the time resolution of each envelope scan.
	SamplesPerTrial int
	// Restarts is the number of random starts.
	Restarts int
	// StepsPerRestart is the hill-climbing budget per start.
	StepsPerRestart int
}

// DefaultOptimizerConfig balances quality and runtime: enough trials to
// rank candidate sets reliably, enough restarts to escape poor basins.
func DefaultOptimizerConfig() OptimizerConfig {
	return OptimizerConfig{
		Alpha:           DefaultFlatnessAlpha,
		CommandDuration: DefaultQueryDuration,
		Trials:          48,
		SamplesPerTrial: 2048,
		Restarts:        4,
		StepsPerRestart: 60,
	}
}

func (c OptimizerConfig) withDefaults() OptimizerConfig {
	d := DefaultOptimizerConfig()
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.CommandDuration == 0 {
		c.CommandDuration = d.CommandDuration
	}
	if c.Trials == 0 {
		c.Trials = d.Trials
	}
	if c.SamplesPerTrial == 0 {
		c.SamplesPerTrial = d.SamplesPerTrial
	}
	if c.Restarts == 0 {
		c.Restarts = d.Restarts
	}
	if c.StepsPerRestart == 0 {
		c.StepsPerRestart = d.StepsPerRestart
	}
	return c
}

// Plan is an optimized CIB frequency plan.
type Plan struct {
	// Offsets is the Δf set in Hz, sorted ascending, Offsets[0] == 0.
	Offsets []float64
	// Score is the Monte-Carlo estimate of E_β[max_t Y(t)]; the ideal
	// ceiling is N (all carriers aligned).
	Score float64
	// RMS is the plan's RMS offset; must be <= Limit.
	RMS, Limit float64
}

// String summarizes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("Plan{N=%d score=%.2f/%d rms=%.1fHz limit=%.1fHz offsets=%v}",
		len(p.Offsets), p.Score, len(p.Offsets), p.RMS, p.Limit, p.Offsets)
}

// randomFeasibleOffsets draws a sorted distinct integer offset set whose
// RMS respects limit. Offsets are drawn from [1, maxOff] where maxOff is
// set so a uniform draw is usually feasible.
func randomFeasibleOffsets(n int, limit float64, r *rng.Rand) []float64 {
	// E[f²] for uniform on [1,M] ≈ M²/3; want n·M²/3 ≤ n·limit² ⇒ M ≈ √3·limit.
	maxOff := int(limit * math.Sqrt(3))
	if maxOff < n {
		maxOff = n // need at least n distinct values
	}
	for attempt := 0; ; attempt++ {
		seen := map[int]bool{0: true}
		offs := []float64{0}
		for len(offs) < n {
			v := 1 + r.Intn(maxOff)
			if !seen[v] {
				seen[v] = true
				offs = append(offs, float64(v))
			}
		}
		sort.Float64s(offs)
		if RMSOffset(offs) <= limit || attempt > 64 {
			return offs
		}
	}
}

// mutate returns a neighbor: one non-reference offset nudged to a new
// distinct positive integer, keeping the set sorted and feasible. Returns
// nil when no feasible neighbor was found in a few tries.
func mutate(offs []float64, limit float64, r *rng.Rand) []float64 {
	n := len(offs)
	for try := 0; try < 16; try++ {
		out := append([]float64(nil), offs...)
		i := 1 + r.Intn(n-1)
		// Geometric-ish step size: mostly local, occasionally long.
		step := 1 + r.Intn(8)
		if r.Intn(8) == 0 {
			step += r.Intn(32)
		}
		if r.Intn(2) == 0 {
			step = -step
		}
		nv := out[i] + float64(step)
		if nv < 1 {
			continue
		}
		dup := false
		for j, v := range out {
			//ivn:allow floatcmp offsets are exact small integers (integer steps on integer plans); the duplicate check is exact by construction
			if j != i && v == nv {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out[i] = nv
		sort.Float64s(out)
		if RMSOffset(out) <= limit {
			return out
		}
	}
	return nil
}

// Optimize searches for an n-carrier plan maximizing the expected peak
// envelope under the flatness constraint. n must be >= 2. The search is
// deterministic for a given r state.
func Optimize(n int, cfg OptimizerConfig, r *rng.Rand) (Plan, error) {
	if n < 2 {
		return Plan{}, fmt.Errorf("core: need >= 2 carriers, got %d", n)
	}
	cfg = cfg.withDefaults()
	limit, err := FlatnessLimit(cfg.Alpha, cfg.CommandDuration)
	if err != nil {
		return Plan{}, err
	}
	if float64(n) > limit*limit*3 {
		// Even the densest integer set {0,1,...,n-1} would violate the
		// constraint only in absurd configurations; guard anyway.
		dense := make([]float64, n)
		for i := range dense {
			dense[i] = float64(i)
		}
		if RMSOffset(dense) > limit {
			return Plan{}, fmt.Errorf("core: no feasible integer offsets for n=%d under limit %.1f Hz", n, limit)
		}
	}

	eval := func(offs []float64) float64 {
		// The evaluation stream is derived from the candidate itself so
		// the objective is a pure function of the set — re-evaluating a
		// candidate always returns the same score, which keeps the hill
		// climb stable.
		seed := uint64(0)
		for _, f := range offs {
			seed = seed*1000003 + uint64(f)
		}
		return ExpectedPeak(offs, cfg.Trials, cfg.SamplesPerTrial, rng.New(seed))
	}

	var best Plan
	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomFeasibleOffsets(n, limit, r)
		curScore := eval(cur)
		for step := 0; step < cfg.StepsPerRestart; step++ {
			cand := mutate(cur, limit, r)
			if cand == nil {
				continue
			}
			if s := eval(cand); s > curScore {
				cur, curScore = cand, s
			}
		}
		if curScore > best.Score {
			best = Plan{Offsets: cur, Score: curScore, RMS: RMSOffset(cur), Limit: limit}
		}
	}
	return best, nil
}

// OptimizeConductionAngle is the §3.7 steady-stage variant: once the
// discovery stage has estimated the attenuation, the beamformer knows the
// threshold level (as a fraction rho of the maximum peak N) it must exceed
// and can maximize the contiguous *time* above it (the dwell a storage
// capacitor charges over) instead of the peak itself.
func OptimizeConductionAngle(n int, rho float64, cfg OptimizerConfig, r *rng.Rand) (Plan, error) {
	if n < 2 {
		return Plan{}, fmt.Errorf("core: need >= 2 carriers, got %d", n)
	}
	if rho <= 0 || rho >= 1 {
		return Plan{}, fmt.Errorf("core: threshold fraction rho %v outside (0,1)", rho)
	}
	cfg = cfg.withDefaults()
	limit, err := FlatnessLimit(cfg.Alpha, cfg.CommandDuration)
	if err != nil {
		return Plan{}, err
	}
	level := rho * float64(n)
	eval := func(offs []float64) float64 {
		seed := uint64(1)
		for _, f := range offs {
			seed = seed*1000003 + uint64(f)
		}
		return ExpectedDwellTime(offs, level, cfg.Trials, cfg.SamplesPerTrial, rng.New(seed))
	}
	var best Plan
	haveBest := false
	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomFeasibleOffsets(n, limit, r)
		curScore := eval(cur)
		for step := 0; step < cfg.StepsPerRestart; step++ {
			cand := mutate(cur, limit, r)
			if cand == nil {
				continue
			}
			if s := eval(cand); s > curScore {
				cur, curScore = cand, s
			}
		}
		if !haveBest || curScore > best.Score {
			best = Plan{Offsets: cur, Score: curScore, RMS: RMSOffset(cur), Limit: limit}
			haveBest = true
		}
	}
	return best, nil
}

// ArithmeticOffsets returns the progression {0, k, 2k, …, (n−1)k}. Such
// harmonically related plans are the known-bad frequency selections: the
// carriers' phasors evolve along a low-dimensional orbit, so many phase
// draws never align well — the "worst frequency" curve of Fig. 6.
func ArithmeticOffsets(n int, k float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * k
	}
	return out
}

// WorstOf evaluates k random feasible sets plus the feasible arithmetic
// progressions and returns the lowest-scoring plan — the "worst frequency"
// comparator of Fig. 6.
func WorstOf(n, k int, cfg OptimizerConfig, r *rng.Rand) (Plan, error) {
	if n < 2 || k < 1 {
		return Plan{}, fmt.Errorf("core: bad WorstOf spec n=%d k=%d", n, k)
	}
	cfg = cfg.withDefaults()
	limit, err := FlatnessLimit(cfg.Alpha, cfg.CommandDuration)
	if err != nil {
		return Plan{}, err
	}
	eval := func(offs []float64) float64 {
		seed := uint64(2)
		for _, f := range offs {
			seed = seed*1000003 + uint64(f)
		}
		return ExpectedPeak(offs, cfg.Trials, cfg.SamplesPerTrial, rng.New(seed))
	}
	var worst Plan
	haveWorst := false
	consider := func(offs []float64) {
		if RMSOffset(offs) > limit {
			return
		}
		if score := eval(offs); !haveWorst || score < worst.Score {
			worst = Plan{Offsets: offs, Score: score, RMS: RMSOffset(offs), Limit: limit}
			haveWorst = true
		}
	}
	for i := 0; i < k; i++ {
		consider(randomFeasibleOffsets(n, limit, r))
	}
	for _, step := range []float64{1, 2, 5, 10, 20, 50} {
		consider(ArithmeticOffsets(n, step))
	}
	return worst, nil
}
