package core

import (
	"math"
	"strings"
	"testing"

	"ivn/internal/rng"
)

func fastCfg() OptimizerConfig {
	return OptimizerConfig{
		Trials:          12,
		SamplesPerTrial: 1024,
		Restarts:        2,
		StepsPerRestart: 20,
	}
}

func TestOptimizeProducesFeasiblePlan(t *testing.T) {
	plan, err := Optimize(5, fastCfg(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOffsets(plan.Offsets); err != nil {
		t.Fatalf("optimizer emitted invalid offsets: %v", err)
	}
	if plan.RMS > plan.Limit {
		t.Fatalf("plan RMS %v exceeds limit %v", plan.RMS, plan.Limit)
	}
	if plan.Score <= 0 || plan.Score > 5 {
		t.Fatalf("score %v out of (0, N]", plan.Score)
	}
	if !strings.Contains(plan.String(), "N=5") {
		t.Fatalf("unhelpful String: %s", plan.String())
	}
}

func TestOptimizeBeatsTypicalRandomSet(t *testing.T) {
	// The optimized set should score at least as well as the average of a
	// few random feasible sets (Fig. 6's point: selection matters).
	r := rng.New(2)
	cfg := fastCfg()
	plan, err := Optimize(5, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	limit := plan.Limit
	var avg float64
	const k = 6
	for i := 0; i < k; i++ {
		offs := randomFeasibleOffsets(5, limit, r)
		seed := uint64(0)
		for _, f := range offs {
			seed = seed*1000003 + uint64(f)
		}
		avg += ExpectedPeak(offs, cfg.Trials, cfg.SamplesPerTrial, rng.New(seed))
	}
	avg /= k
	if plan.Score < avg {
		t.Fatalf("optimized score %v below random average %v", plan.Score, avg)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	a, err := Optimize(4, fastCfg(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(4, fastCfg(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || len(a.Offsets) != len(b.Offsets) {
		t.Fatal("optimizer not deterministic for equal seeds")
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatal("offset sets differ across identical runs")
		}
	}
}

func TestOptimizeRejectsBadN(t *testing.T) {
	if _, err := Optimize(1, fastCfg(), rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestOptimizeConductionAngle(t *testing.T) {
	plan, err := OptimizeConductionAngle(4, 0.5, fastCfg(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOffsets(plan.Offsets); err != nil {
		t.Fatal(err)
	}
	if plan.Score <= 0 || plan.Score > 1 {
		t.Fatalf("conduction fraction %v out of (0,1]", plan.Score)
	}
	if plan.RMS > plan.Limit {
		t.Fatal("steady-stage plan violates flatness")
	}
	if _, err := OptimizeConductionAngle(1, 0.5, fastCfg(), rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := OptimizeConductionAngle(4, 1.5, fastCfg(), rng.New(1)); err == nil {
		t.Fatal("rho=1.5 accepted")
	}
}

func TestTwoStageTradeoff(t *testing.T) {
	// §3.7: the steady stage's plan should hold the envelope above the
	// known threshold for at least as long as the discovery (peak-
	// optimized) plan does — that is its whole purpose.
	cfg := fastCfg()
	rho := 0.45
	peakPlan, err := Optimize(5, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	steadyPlan, err := OptimizeConductionAngle(5, rho, cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	level := rho * 5
	evalDwell := func(offs []float64) float64 {
		return ExpectedDwellTime(offs, level, 40, 4096, rng.New(99))
	}
	dPeak := evalDwell(peakPlan.Offsets)
	dSteady := evalDwell(steadyPlan.Offsets)
	if dSteady < dPeak*0.95 {
		t.Fatalf("steady plan dwell %v worse than discovery plan %v", dSteady, dPeak)
	}
}

func TestWorstOfFindsWeakSet(t *testing.T) {
	r := rng.New(4)
	cfg := fastCfg()
	worst, err := WorstOf(5, 8, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Optimize(5, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Score >= best.Score {
		t.Fatalf("worst-of score %v >= optimized score %v", worst.Score, best.Score)
	}
	if _, err := WorstOf(1, 3, cfg, r); err == nil {
		t.Fatal("bad n accepted")
	}
	if _, err := WorstOf(5, 0, cfg, r); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestRandomFeasibleOffsetsProperties(t *testing.T) {
	r := rng.New(5)
	limit, _ := FlatnessLimit(0.5, 800e-6)
	for i := 0; i < 50; i++ {
		offs := randomFeasibleOffsets(6, limit, r)
		if err := ValidateOffsets(offs); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		if RMSOffset(offs) > limit {
			t.Fatalf("draw %d infeasible: RMS %v", i, RMSOffset(offs))
		}
	}
}

func TestMutatePreservesFeasibility(t *testing.T) {
	r := rng.New(6)
	limit, _ := FlatnessLimit(0.5, 800e-6)
	cur := randomFeasibleOffsets(5, limit, r)
	for i := 0; i < 100; i++ {
		next := mutate(cur, limit, r)
		if next == nil {
			continue
		}
		if err := ValidateOffsets(next); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		if RMSOffset(next) > limit {
			t.Fatalf("mutation %d infeasible", i)
		}
		cur = next
	}
}

func TestOptimizerConfigDefaults(t *testing.T) {
	var zero OptimizerConfig
	d := zero.withDefaults()
	if d.Trials == 0 || d.Restarts == 0 || d.SamplesPerTrial == 0 || d.StepsPerRestart == 0 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if d.Alpha != DefaultFlatnessAlpha || d.CommandDuration != DefaultQueryDuration {
		t.Fatalf("constraint defaults wrong: %+v", d)
	}
	if math.Abs(d.Alpha-0.5) > 1e-12 {
		t.Fatal("alpha default should be the decoding bound 0.5")
	}
}

func BenchmarkOptimize5(b *testing.B) {
	cfg := fastCfg()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(5, cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
