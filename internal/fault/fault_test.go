package fault

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/rng"
	"ivn/internal/session"
)

// renderSchedule serializes every fault decision over a coordinate grid —
// the "fault schedule" whose byte-identity across runs and goroutine
// interleavings the determinism guarantee promises.
func renderSchedule(inj *Injector, cmds, tagsN, rounds, chains int) string {
	var b strings.Builder
	payload := make(gen2.Bits, 21)
	for i := range payload {
		payload[i] = byte(i % 2)
	}
	for cmd := 0; cmd < cmds; cmd++ {
		fmt.Fprintf(&b, "t%d=%v;", cmd, inj.CommandTruncated(cmd))
		for tg := 0; tg < tagsN; tg++ {
			fmt.Fprintf(&b, "p%d.%d=%v;", cmd, tg, inj.TagPowered(cmd, tg))
		}
		bits, corrupted := inj.CorruptUplink(cmd, payload)
		fmt.Fprintf(&b, "c%d=%v:%s;", cmd, corrupted, bits)
		fmt.Fprintf(&b, "x%d=%v;", cmd, inj.CaptureCorrupted(cmd, cmd%3))
	}
	carrier := radio.Carrier{Freq: 915e6, Phase: 1, Amplitude: 0.5}
	for round := 0; round < rounds; round++ {
		cf := inj.CarrierFault(round)
		for ch := 0; ch < chains; ch++ {
			c := cf.PerturbCarrier(ch, carrier)
			fmt.Fprintf(&b, "r%d.%d=%.17g:%.17g;", round, ch, c.Phase, c.Amplitude)
		}
		for tg := 0; tg < tagsN; tg++ {
			fmt.Fprintf(&b, "d%d.%d=%.17g;", round, tg, inj.PowerFault(tg).PeakScale(round))
		}
	}
	return b.String()
}

// TestScheduleDeterministic: identical (cfg, seed) ⇒ byte-identical
// schedules, and the schedule does not depend on query order — a second
// injector queried in a different interleaving produces the same bytes.
func TestScheduleDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := renderSchedule(NewInjector(cfg, 42), 64, 6, 16, 8)
	b := renderSchedule(NewInjector(cfg, 42), 64, 6, 16, 8)
	if a != b {
		t.Fatal("identical seeds produced different schedules")
	}
	if c := renderSchedule(NewInjector(cfg, 43), 64, 6, 16, 8); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleDeterministicConcurrent is the satellite-4 guarantee: the
// schedule is identical at any GOMAXPROCS because the injector holds no
// internal stream — run under -race in verify.sh. Each goroutine renders
// the full schedule against the shared injector; all must agree with the
// serial rendering.
func TestScheduleDeterministicConcurrent(t *testing.T) {
	inj := NewInjector(DefaultConfig(), 7)
	want := renderSchedule(inj, 48, 5, 12, 6)
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//ivn:allow goroutinehygiene test exercises raw concurrent access to the shared injector; joined by wg.Wait below
		go func(w int) {
			defer wg.Done()
			got[w] = renderSchedule(inj, 48, 5, 12, 6)
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d disagreed with serial schedule", w)
		}
	}
}

// TestScaleClampsAndDisables: Scale multiplies every rate with clamping
// to [0,1]; Scale(0) disables every fault; structure (windows) survives.
func TestScaleClampsAndDisables(t *testing.T) {
	cfg := DefaultConfig()
	off := cfg.Scale(0)
	if off.CommandTruncation != 0 || off.UplinkCorruption != 0 || off.Brownout != 0 ||
		off.PeakDrift != 0 || off.PLLRelock != 0 || off.AntennaDropout != 0 {
		t.Fatalf("Scale(0) left rates on: %+v", off)
	}
	if off.BrownoutWindow != cfg.BrownoutWindow {
		t.Fatal("Scale(0) changed the brownout window")
	}
	hot := cfg.Scale(1e9)
	for name, p := range map[string]float64{
		"truncation": hot.CommandTruncation, "corruption": hot.UplinkCorruption,
		"brownout": hot.Brownout, "drift": hot.PeakDrift,
		"relock": hot.PLLRelock, "dropout": hot.AntennaDropout,
	} {
		if p != 1 {
			t.Fatalf("%s not clamped to 1: %v", name, p)
		}
	}
	// An all-zero config injector is a no-op at every seam.
	inj := NewInjector(off, 9)
	for cmd := 0; cmd < 100; cmd++ {
		if inj.CommandTruncated(cmd) || !inj.TagPowered(cmd, cmd%7) || inj.CaptureCorrupted(cmd, 0) {
			t.Fatal("Scale(0) injector injected a fault")
		}
	}
}

// TestCorruptUplinkNeverMutatesInput: corruption returns a copy.
func TestCorruptUplinkNeverMutatesInput(t *testing.T) {
	cfg := Config{UplinkCorruption: 1} // corrupt every reply
	inj := NewInjector(cfg, 11)
	orig := make(gen2.Bits, 37)
	for i := range orig {
		orig[i] = byte((i / 3) % 2)
	}
	ref := append(gen2.Bits(nil), orig...)
	sawChange := false
	for cmd := 0; cmd < 50; cmd++ {
		out, corrupted := inj.CorruptUplink(cmd, orig)
		if !corrupted {
			t.Fatalf("cmd %d: rate-1 corruption skipped", cmd)
		}
		if !orig.Equal(ref) {
			t.Fatalf("cmd %d: input mutated", cmd)
		}
		if len(out) != len(ref) || !out.Equal(ref) {
			sawChange = true
		}
	}
	if !sawChange {
		t.Fatal("corruption never changed any payload")
	}
}

// TestCarrierFaultShapes: dropout zeroes amplitude; re-lock keeps
// amplitude and lands the phase in [0, 2π).
func TestCarrierFaultShapes(t *testing.T) {
	in := radio.Carrier{Freq: 915e6, Phase: 0.25, Amplitude: 0.7}
	drop := NewInjector(Config{AntennaDropout: 1}, 13)
	c := drop.CarrierFault(0).PerturbCarrier(0, in)
	if c.Amplitude != 0 {
		t.Fatalf("dropout amplitude %v", c.Amplitude)
	}
	relock := NewInjector(Config{PLLRelock: 1}, 13)
	seenNew := false
	for round := 0; round < 20; round++ {
		c := relock.CarrierFault(round).PerturbCarrier(0, in)
		if c.Amplitude != in.Amplitude {
			t.Fatalf("re-lock changed amplitude: %v", c.Amplitude)
		}
		if c.Phase < 0 || c.Phase >= 2*math.Pi {
			t.Fatalf("re-lock phase %v outside [0,2π)", c.Phase)
		}
		if math.Abs(c.Phase-in.Phase) > 1e-12 {
			seenNew = true
		}
	}
	if !seenNew {
		t.Fatal("re-lock never moved the phase")
	}
}

// TestPeakDriftResidual: a drifting round harvests PeakDriftResidual; a
// clean round harvests 1; rate 0 is always 1.
func TestPeakDriftResidual(t *testing.T) {
	inj := NewInjector(Config{PeakDrift: 1}, 17)
	pf := inj.PowerFault(2)
	if s := pf.PeakScale(0); s != PeakDriftResidual {
		t.Fatalf("drift scale %v, want %v", s, PeakDriftResidual)
	}
	clean := NewInjector(Config{}, 17)
	for ev := 0; ev < 10; ev++ {
		if s := clean.PowerFault(2).PeakScale(ev); s != 1 {
			t.Fatalf("zero-rate drift scale %v", s)
		}
	}
}

// TestBrownoutWindowing: power decisions are constant within a brownout
// window and keyed only on (window, tag).
func TestBrownoutWindowing(t *testing.T) {
	cfg := Config{Brownout: 0.5, BrownoutWindow: 8}
	inj := NewInjector(cfg, 19)
	for window := 0; window < 20; window++ {
		first := inj.TagPowered(window*8, 3)
		for off := 1; off < 8; off++ {
			if inj.TagPowered(window*8+off, 3) != first {
				t.Fatalf("window %d not constant at offset %d", window, off)
			}
		}
	}
	// At rate 0.5 over 20 windows both states must appear.
	lit, dark := 0, 0
	for window := 0; window < 20; window++ {
		if inj.TagPowered(window*8, 3) {
			lit++
		} else {
			dark++
		}
	}
	if lit == 0 || dark == 0 {
		t.Fatalf("degenerate brownout draw: %d lit, %d dark", lit, dark)
	}
}

// TestDefaultScalesShape: the committed matrix starts at the fault-free
// baseline and is strictly increasing.
func TestDefaultScalesShape(t *testing.T) {
	s := DefaultScales()
	if len(s) < 3 || s[0] != 0 {
		t.Fatalf("scales %v: want ≥3 entries starting at 0", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("scales %v not strictly increasing", s)
		}
	}
}

// TestInjectorWithGen2Controller wires the real injector into the real
// controller: same seeds, recovery on vs off, over the default config at
// scale 1 — the recovery run must read at least as many tags. This is the
// unit-level version of the faultmatrix experiment's headline claim.
func TestInjectorWithGen2Controller(t *testing.T) {
	run := func(recovery bool) (read, rounds int) {
		tags := gen2PopulationForFaultTest(t, 6)
		ic := session.NewInventoryController(gen2.S0)
		ic.Fault = NewInjector(DefaultConfig(), 23)
		if recovery {
			ic.Recovery = session.DefaultRecovery()
		}
		// Under injected faults a partial inventory is expected — but only
		// the typed sentinel; anything else is a controller bug.
		epcs, err := ic.InventoryAll(tags, 8, rng.New(24))
		if err != nil && !errors.Is(err, session.ErrInventoryIncomplete) {
			t.Fatalf("InventoryAll: %v", err)
		}
		return len(epcs), 8
	}
	withRec, _ := run(true)
	withoutRec, _ := run(false)
	if withRec < withoutRec {
		t.Fatalf("recovery read fewer tags: %d vs %d", withRec, withoutRec)
	}
}

func gen2PopulationForFaultTest(t *testing.T, n int) []*gen2.TagLogic {
	t.Helper()
	tags := make([]*gen2.TagLogic, n)
	for i := range tags {
		epc := []byte{0xFA, byte(i >> 8), byte(i), 0x03}
		tg, err := gen2.NewTagLogic(epc, rng.New(100).Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tg
	}
	return tags
}
