// Package fault is the deterministic fault-injection layer of the IVN
// simulator: it perturbs the stack at well-defined seams so the recovery
// machinery (retry budgets, Q-adaptation, re-query with backoff) can be
// exercised and regression-checked against degraded-channel conditions —
// the regime the paper's in-vivo evaluation (§6) actually lives in.
//
// Every decision an Injector makes is a pure function of its seed and the
// decision coordinates (command index, tag index, chain index, round).
// That gives two properties the experiment harness depends on:
//
//  1. Identical seeds produce byte-identical fault schedules, at any
//     GOMAXPROCS, regardless of how the consuming code interleaves its
//     queries — there is no internal stream to perturb.
//  2. Two protocol variants (e.g. recovery on vs off) driven by the same
//     injector see the same underlying fault process, so ablations are
//     paired rather than merely identically distributed.
//
// Consumers never import this package's types directly on their hot
// paths: each seam is a one-method interface declared by the consuming
// package (session.ChannelFault, reader.DecodeFault, radio.CarrierFault,
// tag.PowerFault) with nil meaning fault-free, so the unfaulted path
// costs a nil check and nothing else.
package fault

import (
	"math"

	"ivn/internal/gen2"
	"ivn/internal/radio"
	"ivn/internal/reader"
	"ivn/internal/session"
	"ivn/internal/tag"
)

// Compile-time checks that the injector satisfies every consuming seam.
var (
	_ session.ChannelFault = (*Injector)(nil)
	_ reader.DecodeFault   = (*Injector)(nil)
	_ radio.CarrierFault   = carrierEpoch{}
	_ tag.PowerFault       = tagDrift{}
)

// Config sets the intensity of each fault process. All rates are
// probabilities in [0,1]; a zero value disables that fault entirely.
type Config struct {
	// CommandTruncation is the per-command probability a reader command
	// is truncated in flight — no tag receives it (downlink PIE envelope
	// broken mid-frame).
	CommandTruncation float64
	// UplinkCorruption is the per-reply probability a singulated tag's
	// backscatter is corrupted at the reader: bit flips, occasionally a
	// truncated capture.
	UplinkCorruption float64
	// Brownout is the per-window, per-tag probability the tag's rail
	// collapses (the CIB envelope peak drifts off the sensor mid-round).
	// A browned-out tag is silent and loses all volatile protocol state.
	Brownout float64
	// BrownoutWindow is the brownout granularity in reader commands: each
	// tag is dark or lit for whole windows of this many commands
	// (0 → DefaultBrownoutWindow).
	BrownoutWindow int
	// PeakDrift is the per-round, per-tag probability that the envelope
	// peak sits off the sensor for the entire round (subject motion
	// between rounds), leaving only PeakDriftResidual of the power.
	PeakDrift float64
	// PLLRelock is the per-round, per-chain probability the chain's PLL
	// re-locks, jumping to a fresh uniform phase mid-experiment.
	PLLRelock float64
	// AntennaDropout is the per-round, per-chain probability the chain
	// emits nothing for the round (cable/PA fault).
	AntennaDropout float64
}

// DefaultBrownoutWindow is the brownout granularity when
// Config.BrownoutWindow is zero.
const DefaultBrownoutWindow = 8

// PeakDriftResidual is the fraction of envelope peak power that still
// reaches a sensor during a peak-drift round.
const PeakDriftResidual = 0.1

// DefaultConfig is the unit-intensity fault matrix entry: rates
// calibrated so that, against a six-tag population, the no-recovery
// ablation shows clear degradation while the recovery stack holds the
// fault-free success rate (see the ivnsim faultmatrix experiment).
func DefaultConfig() Config {
	return Config{
		CommandTruncation: 0.02,
		UplinkCorruption:  0.12,
		Brownout:          0.03,
		BrownoutWindow:    DefaultBrownoutWindow,
		PeakDrift:         0.03,
		PLLRelock:         0.05,
		AntennaDropout:    0.03,
	}
}

// Scale returns a copy of c with every rate multiplied by k and clamped
// to [0,1]. Window lengths are structural, not intensities, and are
// preserved. Scale(0) is the fault-free configuration.
func (c Config) Scale(k float64) Config {
	s := func(p float64) float64 {
		p *= k
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	c.CommandTruncation = s(c.CommandTruncation)
	c.UplinkCorruption = s(c.UplinkCorruption)
	c.Brownout = s(c.Brownout)
	c.PeakDrift = s(c.PeakDrift)
	c.PLLRelock = s(c.PLLRelock)
	c.AntennaDropout = s(c.AntennaDropout)
	return c
}

// DefaultScales is the committed fault matrix: the intensity multiples of
// DefaultConfig the faultmatrix experiment sweeps. Scale 0 doubles as the
// fault-free baseline row.
func DefaultScales() []float64 { return []float64{0, 0.5, 1, 2} }

// Decision domains keep the per-seam hash streams disjoint.
const (
	domTruncate uint64 = iota + 1
	domBrownout
	domCorrupt
	domCorruptBurst
	domCorruptPos
	domCorruptTail
	domRelock
	domRelockPhase
	domDropout
	domDrift
	domCapture
)

// Injector realizes one fault schedule. It is stateless beyond its
// configuration, safe for concurrent use, and every method is a pure
// function of (seed, coordinates).
type Injector struct {
	cfg  Config
	base uint64
}

// NewInjector builds an injector for the given configuration and seed.
// Equal (cfg, seed) pairs produce identical schedules.
func NewInjector(cfg Config, seed uint64) *Injector {
	return &Injector{cfg: cfg, base: splitmix(seed ^ 0x5bf0_3635_0c38_f7c1)}
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// splitmix is one SplitMix64 diffusion round (same construction the rng
// package uses to expand seeds).
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns a uniform [0,1) variate for one decision coordinate.
func (inj *Injector) draw(domain, a, b uint64) float64 {
	h := splitmix(inj.base ^ domain)
	h = splitmix(h ^ a)
	h = splitmix(h ^ b)
	return float64(h>>11) / (1 << 53)
}

// CommandTruncated implements session.ChannelFault: whether reader command
// cmd is truncated in flight.
func (inj *Injector) CommandTruncated(cmd int) bool {
	p := inj.cfg.CommandTruncation
	return p > 0 && inj.draw(domTruncate, uint64(cmd), 0) < p
}

// TagPowered implements session.ChannelFault: whether tag tagIndex has its
// rail up when command cmd arrives. Brownouts last whole windows of
// BrownoutWindow commands.
func (inj *Injector) TagPowered(cmd, tagIndex int) bool {
	p := inj.cfg.Brownout
	if p <= 0 {
		return true
	}
	w := inj.cfg.BrownoutWindow
	if w <= 0 {
		w = DefaultBrownoutWindow
	}
	window := cmd / w
	return inj.draw(domBrownout, uint64(window), uint64(tagIndex)) >= p
}

// CorruptUplink implements session.ChannelFault: with probability
// UplinkCorruption it returns a corrupted copy of a reply's payload bits
// (1–3 bit flips; one capture in four also loses its tail) and true.
// The input slice is never mutated.
func (inj *Injector) CorruptUplink(cmd int, bits gen2.Bits) (gen2.Bits, bool) {
	p := inj.cfg.UplinkCorruption
	if p <= 0 || len(bits) == 0 {
		return bits, false
	}
	if inj.draw(domCorrupt, uint64(cmd), 0) >= p {
		return bits, false
	}
	out := append(gen2.Bits(nil), bits...)
	flips := 1 + int(inj.draw(domCorruptBurst, uint64(cmd), 0)*3)
	for k := 0; k < flips; k++ {
		pos := int(inj.draw(domCorruptPos, uint64(cmd), uint64(k)) * float64(len(out)))
		if pos >= len(out) {
			pos = len(out) - 1
		}
		out[pos] ^= 1
	}
	if inj.draw(domCorruptTail, uint64(cmd), 0) < 0.25 {
		out = out[:len(out)*3/4]
	}
	return out, true
}

// CaptureCorrupted implements reader.DecodeFault: whether decode attempt
// `attempt` of exchange `exchange` observes an unusable capture (a CIB
// PLL re-locked mid-capture, breaking the coherent averaging).
func (inj *Injector) CaptureCorrupted(exchange, attempt int) bool {
	p := inj.cfg.UplinkCorruption
	return p > 0 && inj.draw(domCapture, uint64(exchange), uint64(attempt)) < p
}

// carrierEpoch applies the per-round carrier faults of one inventory
// round; it implements radio.CarrierFault.
type carrierEpoch struct {
	inj   *Injector
	round int
}

// PerturbCarrier applies antenna dropout (amplitude → 0) and PLL re-lock
// (fresh uniform phase) to chain i's emission for this epoch's round.
func (e carrierEpoch) PerturbCarrier(chain int, c radio.Carrier) radio.Carrier {
	cfg := e.inj.cfg
	if cfg.AntennaDropout > 0 &&
		e.inj.draw(domDropout, uint64(e.round), uint64(chain)) < cfg.AntennaDropout {
		c.Amplitude = 0
		return c
	}
	if cfg.PLLRelock > 0 &&
		e.inj.draw(domRelock, uint64(e.round), uint64(chain)) < cfg.PLLRelock {
		c.Phase = 2 * math.Pi * e.inj.draw(domRelockPhase, uint64(e.round), uint64(chain))
	}
	return c
}

// CarrierFault returns the radio.CarrierFault view of round `round`.
func (inj *Injector) CarrierFault(round int) radio.CarrierFault {
	return carrierEpoch{inj: inj, round: round}
}

// tagDrift applies per-round envelope-peak drift for one tag; it
// implements tag.PowerFault.
type tagDrift struct {
	inj      *Injector
	tagIndex int
}

// PeakScale returns the multiplicative power scale tag tagIndex harvests
// at during round `event`: 1 normally, PeakDriftResidual during a drift.
func (d tagDrift) PeakScale(event int) float64 {
	p := d.inj.cfg.PeakDrift
	if p <= 0 {
		return 1
	}
	if d.inj.draw(domDrift, uint64(event), uint64(d.tagIndex)) < p {
		return PeakDriftResidual
	}
	return 1
}

// PowerFault returns the tag.PowerFault view of tag tagIndex.
func (inj *Injector) PowerFault(tagIndex int) tag.PowerFault {
	return tagDrift{inj: inj, tagIndex: tagIndex}
}
