package stats

import (
	"math"
	"testing"

	"ivn/internal/rng"
)

func normalSample(n int, mean, sd float64, r *rng.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sd*r.NormFloat64()
	}
	return out
}

func TestWelchDetectsSeparatedMeans(t *testing.T) {
	r := rng.New(1)
	a := normalSample(60, 10, 1, r)
	b := normalSample(60, 12, 1.5, r)
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("p = %v for 2σ-separated means", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("T = %v should be negative (meanA < meanB)", res.T)
	}
	if res.MeanA >= res.MeanB {
		t.Fatal("means misreported")
	}
}

func TestWelchAcceptsEqualMeans(t *testing.T) {
	r := rng.New(2)
	rejections := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := normalSample(40, 5, 2, r)
		b := normalSample(40, 5, 2, r)
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// The false-positive rate at α=0.05 should be near 5%.
	if rejections > 12 {
		t.Fatalf("%d/%d false rejections at α=0.05", rejections, trials)
	}
}

func TestWelchPValueCalibration(t *testing.T) {
	// Under H0 the p-value must be ≈uniform: check its mean ≈ 0.5.
	r := rng.New(3)
	var acc float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a := normalSample(30, 0, 1, r)
		b := normalSample(30, 0, 1, r)
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		acc += res.P
	}
	if mean := acc / trials; math.Abs(mean-0.5) > 0.06 {
		t.Fatalf("mean p-value under H0 = %v, want ≈0.5", mean)
	}
}

func TestWelchKnownStatistic(t *testing.T) {
	// Hand-checkable case: a = {1,2,3,4,5}, b = {2,3,4,5,6}: means 3 and
	// 4, equal variances 2.5, se = √(1), t = −1, df = 8.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T+1) > 1e-12 {
		t.Fatalf("T = %v, want -1", res.T)
	}
	if math.Abs(res.DF-8) > 1e-9 {
		t.Fatalf("df = %v, want 8", res.DF)
	}
	// Two-sided p for |t|=1, df=8 is ≈0.3466 (reference value).
	if math.Abs(res.P-0.3466) > 0.002 {
		t.Fatalf("p = %v, want ≈0.3466", res.P)
	}
}

func TestWelchDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("1-sample group accepted")
	}
	// Identical constant groups: p = 1.
	res, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Fatalf("constant equal groups: %+v", res)
	}
	// Constant but different groups: p = 0.
	res, err = WelchTTest([]float64{3, 3, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("constant different groups: %+v", res)
	}
}

func TestRegIncBetaReferenceValues(t *testing.T) {
	// I_x(a,b) reference values (scipy.special.betainc).
	cases := []struct{ a, b, x, want float64 }{
		{0.5, 0.5, 0.5, 0.5},
		{2, 3, 0.4, 0.5248},
		{5, 1, 0.9, 0.59049},
		{1, 1, 0.25, 0.25},
	}
	for _, c := range cases {
		got := regIncBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 2e-4 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
	if regIncBeta(1, 1, 0) != 0 || regIncBeta(1, 1, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}
