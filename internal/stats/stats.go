// Package stats provides the summary statistics the IVN evaluation reports:
// medians with 10th/90th percentile error bars (Figs. 9-11, 13), empirical
// CDFs (Figs. 6, 12), and bootstrap confidence intervals.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ivn/internal/rng"
)

// ErrEmpty reports a statistic requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the sample (n−1) standard deviation.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var acc float64
	for _, v := range xs {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)-1)), nil
}

// Summary bundles the error-bar statistics the paper's figures use: median
// with 10th and 90th percentiles.
type Summary struct {
	N              int
	Median         float64
	P10, P90       float64
	Min, Max, Mean float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	m, _ := Mean(xs)
	return Summary{
		N:      len(xs),
		Median: percentileSorted(sorted, 50),
		P10:    percentileSorted(sorted, 10),
		P90:    percentileSorted(sorted, 90),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   m,
	}, nil
}

// String renders the summary in the "median [p10, p90]" form used by the
// experiment harness output.
func (s Summary) String() string {
	return fmt.Sprintf("median=%.3g [p10=%.3g p90=%.3g] n=%d", s.Median, s.P10, s.P90, s.N)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. It copies the input.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	return percentileSorted(c.sorted, q*100)
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Points renders the CDF as n (x, F(x)) pairs evenly spaced in probability,
// the form used to print the paper's CDF figures as table rows.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = [2]float64{c.Quantile(q), q}
	}
	return out
}

// FractionAbove returns P(X > x), convenient for statements like "CIB
// outperforms the baseline across over 99% of trials" (Fig. 12).
func (c *CDF) FractionAbove(x float64) float64 {
	return 1 - c.At(x)
}

// BootstrapCI returns a percentile-bootstrap confidence interval for the
// statistic stat over sample xs at the given confidence level (e.g. 0.95),
// using resamples iterations.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, r *rng.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if resamples < 10 {
		resamples = 10
	}
	vals := make([]float64, resamples)
	tmp := make([]float64, len(xs))
	for i := 0; i < resamples; i++ {
		for j := range tmp {
			tmp[j] = xs[r.Intn(len(xs))]
		}
		vals[i] = stat(tmp)
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	return percentileSorted(vals, alpha*100), percentileSorted(vals, (1-alpha)*100), nil
}

// Histogram counts xs into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram. Values outside [min, max] are clamped to
// the edge bins so no sample is silently dropped.
func NewHistogram(xs []float64, min, max float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins < 1 || max <= min {
		return nil, fmt.Errorf("stats: invalid histogram spec [%v,%v] nbins=%d", min, max, nbins)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	w := (max - min) / float64(nbins)
	for _, v := range xs {
		idx := int((v - min) / w)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h, nil
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
