package stats

import (
	"math"
	"testing"
)

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Sum() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty stream not all-zero: %+v", s)
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 7.75, 2.5, 2.5, -4}
	var s Stream
	sum := 0.0
	for _, x := range xs {
		s.Add(x)
		sum += x
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d", s.N())
	}
	// Mean must be the plain running sum divided by n — bit-for-bit the
	// reduction the experiment loops historically performed.
	if s.Sum() != sum || s.Mean() != sum/float64(len(xs)) {
		t.Fatalf("Sum/Mean = %v/%v, want %v/%v", s.Sum(), s.Mean(), sum, sum/float64(len(xs)))
	}
	if s.Min() != -4 || s.Max() != 7.75 {
		t.Fatalf("range [%v, %v]", s.Min(), s.Max())
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	want := math.Sqrt(m2 / float64(len(xs)-1))
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestStreamSingleValue(t *testing.T) {
	var s Stream
	s.Add(-2.5)
	if s.Mean() != -2.5 || s.Min() != -2.5 || s.Max() != -2.5 {
		t.Fatalf("single-value stream wrong: %+v", s)
	}
	if s.StdDev() != 0 {
		t.Fatalf("StdDev of one value = %v", s.StdDev())
	}
}

func TestStreamStdDevStability(t *testing.T) {
	// Welford keeps the variance accurate when the mean is huge relative
	// to the spread — the regime where (sum of squares − n·mean²) loses
	// every significant digit.
	var s Stream
	const base = 1e9
	for _, d := range []float64{-1, 0, 1, -1, 0, 1} {
		s.Add(base + d)
	}
	want := math.Sqrt(4.0 / 5.0)
	if math.Abs(s.StdDev()-want) > 1e-6 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
}
