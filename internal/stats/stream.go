package stats

import "math"

// Stream is a streaming aggregator: mean, standard deviation, and range
// over a sample fed one value at a time, without retaining the values.
// The trial engine folds per-trial samples into Streams in index order,
// so the aggregate — like everything else on a result path — is a pure
// function of the seed.
//
// The mean is a plain running sum (sum/n), deliberately matching the
// reduction the experiment loops historically performed so migrated
// tables stay byte-identical; the second moment uses Welford's update,
// which is numerically stable for the variance.
type Stream struct {
	n    int
	sum  float64
	mean float64 // Welford running mean (variance only)
	m2   float64 // Welford sum of squared deviations
	min  float64
	max  float64
}

// Add folds one value into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if s.n == 1 || x < s.min {
		s.min = x
	}
	if s.n == 1 || x > s.max {
		s.max = x
	}
}

// N returns the count of values added.
func (s *Stream) N() int { return s.n }

// Sum returns the running sum.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns sum/n, or 0 for an empty stream.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev returns the sample (n−1) standard deviation, or 0 with fewer
// than two values.
func (s *Stream) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest value added, or 0 for an empty stream.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest value added, or 0 for an empty stream.
func (s *Stream) Max() float64 { return s.max }
