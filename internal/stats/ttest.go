package stats

import (
	"fmt"
	"math"
)

// Welch's unequal-variance t-test: used by the experiment harness to state
// whether CIB's gain advantage over a baseline is statistically meaningful
// rather than a trial-count artifact.

// TTestResult reports a two-sample Welch test.
type TTestResult struct {
	// T is the test statistic.
	T float64
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64
	// P is the two-sided p-value (from the t CDF; normal approximation is
	// NOT used — the incomplete beta function is evaluated directly).
	P float64
	// MeanA, MeanB are the sample means.
	MeanA, MeanB float64
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: Welch test needs >= 2 samples per group (got %d, %d)", len(a), len(b))
	}
	ma, _ := Mean(a)
	mb, _ := Mean(b)
	va := sampleVariance(a, ma)
	vb := sampleVariance(b, mb)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		//ivn:allow floatcmp zero-variance degenerate case: both samples are constant, so the means are exact and the tie test is intentional
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1, MeanA: ma, MeanB: mb}, nil
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0, MeanA: ma, MeanB: mb}, nil
	}
	t := (ma - mb) / se
	// Welch–Satterthwaite.
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * studentTSurvival(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p, MeanA: ma, MeanB: mb}, nil
}

func sampleVariance(xs []float64, mean float64) float64 {
	var acc float64
	for _, v := range xs {
		d := v - mean
		acc += d * d
	}
	return acc / float64(len(xs)-1)
}

// studentTSurvival returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function:
// P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2.
func studentTSurvival(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes' betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Continued fraction converges fast when x <= (a+1)/(a+b+2); use the
	// symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise. Strict inequality so
	// the symmetric point (e.g. a=b, x=1/2) cannot recurse forever.
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	const maxIter = 300
	const eps = 1e-14
	c, d := 1.0, 1.0-(a+b)*x/(a+1)
	if math.Abs(d) < 1e-300 {
		d = 1e-300
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < 1e-300 {
			d = 1e-300
		}
		c = 1 + num/c
		if math.Abs(c) < 1e-300 {
			c = 1e-300
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < 1e-300 {
			d = 1e-300
		}
		c = 1 + num/c
		if math.Abs(c) < 1e-300 {
			c = 1e-300
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return front * h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
