package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
}

func TestMedianSingleAndEven(t *testing.T) {
	if m, _ := Median([]float64{7}); m != 7 {
		t.Fatalf("Median([7]) = %v", m)
	}
	m, _ := Median([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("Median(1..4) = %v, want 2.5", m)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, err %v", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7)
	if math.Abs(sd-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", sd, want)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Fatal("StdDev of one sample accepted")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 50 || s.P10 != 10 || s.P90 != 90 || s.Min != 0 || s.Max != 100 || s.N != 101 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty Summarize accepted")
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v, want 1", got)
	}
	if got := c.FractionAbove(2); got != 0.5 {
		t.Fatalf("FractionAbove(2) = %v, want 0.5", got)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("empty CDF accepted")
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c, err := NewCDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := c.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("Points(11) returned %d points", len(pts))
	}
	if pts[0][1] != 0 || pts[10][1] != 1 {
		t.Fatalf("probability endpoints wrong: %v %v", pts[0], pts[10])
	}
	if pts[0][0] != 0 || pts[10][0] != 10 {
		t.Fatalf("value endpoints wrong: %v %v", pts[0], pts[10])
	}
	// Degenerate request falls back to 2 points.
	if got := c.Points(1); len(got) != 2 {
		t.Fatalf("Points(1) returned %d points, want 2", len(got))
	}
}

func TestCDFAtQuantileRoundTrip(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	c, _ := NewCDF(xs)
	f := func(qRaw uint8) bool {
		q := float64(qRaw) / 255
		v := c.Quantile(q)
		// At(Quantile(q)) must be >= q (up to 1/n granularity).
		return c.At(v) >= q-1.0/float64(len(xs))-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCICoversMedian(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	med := func(s []float64) float64 {
		c := make([]float64, len(s))
		copy(c, s)
		sort.Float64s(c)
		return c[len(c)/2]
	}
	lo, hi, err := BootstrapCI(xs, med, 0.95, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	sampleMed := med(xs)
	if lo > sampleMed || hi < sampleMed {
		t.Fatalf("95%% CI [%v, %v] does not cover the sample median %v", lo, hi, sampleMed)
	}
	if hi-lo > 1 {
		t.Fatalf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
	// The CI should sit near the true median 10 for n=300 draws of N(10,1).
	if lo > 10.5 || hi < 9.5 {
		t.Fatalf("CI [%v, %v] implausibly far from 10", lo, hi)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	r := rng.New(4)
	id := func(s []float64) float64 { return s[0] }
	if _, _, err := BootstrapCI(nil, id, 0.95, 100, r); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := BootstrapCI([]float64{1}, id, 1.5, 100, r); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 99}
	h, err := NewHistogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// -5 clamps into bin 0, 99 clamps into bin 1.
	if h.Counts[0] != 3 || h.Counts[1] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if f := h.Fraction(0); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", f)
	}
	if _, err := NewHistogram(nil, 0, 1, 2); err == nil {
		t.Fatal("empty histogram accepted")
	}
	if _, err := NewHistogram(xs, 1, 0, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := NewHistogram(xs, 0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	r := rng.New(5)
	f := func(n uint8, p uint8) bool {
		size := int(n%50) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		pct := float64(p) / 255 * 100
		v, err := Percentile(xs, pct)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
