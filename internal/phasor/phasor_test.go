package phasor

import (
	"math"
	"testing"

	"ivn/internal/rng"
)

// naiveSum evaluates Σ_i coeffs[i]·e^{j·2π·freqs[i]·t} directly — one
// Sincos per carrier — as the golden reference.
func naiveSum(freqs []float64, coeffs []complex128, t float64) (float64, float64) {
	var re, im float64
	for i, f := range freqs {
		s, c := math.Sincos(2 * math.Pi * f * t)
		rot := complex(c, s) * coeffs[i]
		re += real(rot)
		im += imag(rot)
	}
	return re, im
}

// randomSet draws a carrier set: nonzero random frequencies and random
// unit-magnitude-ish complex coefficients.
func randomSet(r *rng.Rand, n int, maxFreq float64) ([]float64, []complex128) {
	freqs := make([]float64, n)
	coeffs := make([]complex128, n)
	for i := range freqs {
		freqs[i] = maxFreq * (2*r.Float64() - 1)
		s, c := math.Sincos(r.Phase())
		amp := 0.5 + r.Float64()
		coeffs[i] = complex(amp*c, amp*s)
	}
	return freqs, coeffs
}

func TestSumSeriesMatchesNaive(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(12)
		freqs, coeffs := randomSet(r, n, 200)
		const samples = 4097 // odd, larger than the renorm cadence check below
		dt := 1.0 / samples
		t0 := 0.0
		if trial%2 == 1 {
			t0 = r.Float64()
		}
		re := make([]float64, samples)
		im := make([]float64, samples)
		SumSeries(freqs, coeffs, t0, dt, samples, re, im)
		for k := 0; k < samples; k++ {
			wantRe, wantIm := naiveSum(freqs, coeffs, t0+float64(k)*dt)
			if math.Abs(re[k]-wantRe) > 1e-9*(1+math.Abs(wantRe)) ||
				math.Abs(im[k]-wantIm) > 1e-9*(1+math.Abs(wantIm)) {
				t.Fatalf("trial %d k=%d: got (%v,%v), want (%v,%v)", trial, k, re[k], im[k], wantRe, wantIm)
			}
		}
	}
}

func TestSumSeriesSameFrequencySet(t *testing.T) {
	// Degenerate plan: every carrier on the same frequency (a blind
	// array); the sum must still match the naive evaluation.
	r := rng.New(11)
	n := 8
	freqs := make([]float64, n)
	coeffs := make([]complex128, n)
	for i := range freqs {
		freqs[i] = 42 // all identical
		s, c := math.Sincos(r.Phase())
		coeffs[i] = complex(c, s)
	}
	const samples = 1024
	dt := 1.0 / samples
	re := make([]float64, samples)
	im := make([]float64, samples)
	SumSeries(freqs, coeffs, 0, dt, samples, re, im)
	for k := 0; k < samples; k++ {
		wantRe, wantIm := naiveSum(freqs, coeffs, float64(k)*dt)
		if math.Abs(re[k]-wantRe) > 1e-9 || math.Abs(im[k]-wantIm) > 1e-9 {
			t.Fatalf("k=%d: got (%v,%v), want (%v,%v)", k, re[k], im[k], wantRe, wantIm)
		}
	}
}

func TestSumSeriesRenormBoundsDrift(t *testing.T) {
	// A long scan (many renorm cycles) must stay within 1e-9 relative of
	// the naive evaluation at the final sample.
	freqs := []float64{0, 7, 20, 49, 137}
	coeffs := []complex128{1, 1i, -1, complex(0.6, 0.8), complex(-0.8, 0.6)}
	const samples = 1 << 16
	dt := 1.0 / 8192
	re := make([]float64, samples)
	im := make([]float64, samples)
	SumSeries(freqs, coeffs, 0, dt, samples, re, im)
	for _, k := range []int{samples - 1, samples / 2, renormMask, renormMask + 1} {
		wantRe, wantIm := naiveSum(freqs, coeffs, float64(k)*dt)
		if math.Abs(re[k]-wantRe) > 1e-9*(1+math.Abs(wantRe)) ||
			math.Abs(im[k]-wantIm) > 1e-9*(1+math.Abs(wantIm)) {
			t.Fatalf("k=%d: got (%v,%v), want (%v,%v)", k, re[k], im[k], wantRe, wantIm)
		}
	}
}

func TestMagnitudeSeriesMatchesNaive(t *testing.T) {
	r := rng.New(3)
	freqs, coeffs := randomSet(r, 10, 150)
	const samples = 2048
	dt := 1.0 / samples
	dst := make([]float64, samples)
	MagnitudeSeries(freqs, coeffs, 0, dt, samples, dst)
	for k := range dst {
		re, im := naiveSum(freqs, coeffs, float64(k)*dt)
		want := math.Hypot(re, im)
		if math.Abs(dst[k]-want) > 1e-9*(1+want) {
			t.Fatalf("k=%d: got %v, want %v", k, dst[k], want)
		}
	}
}

func TestPeakPowerRefinedEqualsFullScan(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		// CIB-like plans: small integer offsets, heavily oversampled by
		// the coarse grid.
		n := 2 + r.Intn(9)
		freqs := make([]float64, n)
		coeffs := make([]complex128, n)
		for i := range freqs {
			freqs[i] = float64(r.Intn(200))
			s, c := math.Sincos(r.Phase())
			coeffs[i] = complex(c, s)
		}
		full := PeakPower(freqs, coeffs, 0, 1.0/8192, 8192)
		refined := PeakPowerRefined(freqs, coeffs, 1.0, 2048, 8192)
		if math.Abs(full-refined) > 1e-12*(1+full) {
			t.Fatalf("trial %d: refined %v != full %v", trial, refined, full)
		}
	}
}

func TestPeakPowerRefinedFallsBack(t *testing.T) {
	freqs := []float64{0, 7, 20}
	coeffs := []complex128{1, 1, 1}
	full := PeakPower(freqs, coeffs, 0, 1.0/1000, 1000)
	// Non-divisible and non-coarser specs must run the full scan.
	for _, coarse := range []int{0, -1, 999, 1000, 2000, 7} {
		got := PeakPowerRefined(freqs, coeffs, 1.0, coarse, 1000)
		if coarse == 7 {
			continue // 1000%7 != 0: falls back, same as full
		}
		if got != full {
			t.Fatalf("coarse=%d: got %v, want full-scan %v", coarse, got, full)
		}
	}
	if got := PeakPowerRefined(freqs, coeffs, 1.0, 7, 1000); got != full {
		t.Fatalf("coarse=7: got %v, want %v", got, full)
	}
}

func TestPeakPowerRefinedNeverBelowCoarse(t *testing.T) {
	// The refined result must be ≥ the coarse peak (coarse points are a
	// subset of fine points when nFine % nCoarse == 0).
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		freqs, coeffs := randomSet(r, 6, 300)
		coarse := PeakPower(freqs, coeffs, 0, 1.0/512, 512)
		refined := PeakPowerRefined(freqs, coeffs, 1.0, 512, 4096)
		if refined < coarse*(1-1e-12) {
			t.Fatalf("trial %d: refined %v < coarse %v", trial, refined, coarse)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if p := PeakPower(nil, nil, 0, 1, 10); p != 0 {
		t.Fatalf("empty set: %v", p)
	}
	if p := PeakPowerRefined(nil, nil, 1, 10, 100); p != 0 {
		t.Fatalf("empty refined: %v", p)
	}
	if p := PeakPower([]float64{1}, []complex128{1}, 0, 1, 0); p != 0 {
		t.Fatalf("n=0: %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SumSeries([]float64{1, 2}, []complex128{1}, 0, 1, 4, make([]float64, 4), make([]float64, 4))
}

func BenchmarkSumSeries10Carriers8192(b *testing.B) {
	r := rng.New(1)
	freqs, coeffs := randomSet(r, 10, 150)
	re := make([]float64, 8192)
	im := make([]float64, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range re {
			re[k], im[k] = 0, 0
		}
		SumSeries(freqs, coeffs, 0, 1.0/8192, 8192, re, im)
	}
}

func BenchmarkPeakPowerRefined10Carriers(b *testing.B) {
	r := rng.New(1)
	freqs, coeffs := randomSet(r, 10, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PeakPowerRefined(freqs, coeffs, 1.0, 2048, 8192)
	}
}

// TestSumSeriesInterleavedBitExact pins the 4-carrier interleaved kernel
// to the serial reference loop, bit for bit: same ascending-carrier
// partial sums per sample, same recurrence and renormalization sequence
// per carrier. Covers group sizes with and without a remainder, both t0
// forms, and spans crossing the renorm cadence.
func TestSumSeriesInterleavedBitExact(t *testing.T) {
	r := rng.New(19)
	for _, carriers := range []int{1, 2, 3, 4, 5, 7, 8, 9, 10, 13} {
		for _, samples := range []int{1, 17, 2048, 4099} {
			freqs, coeffs := randomSet(r, carriers, 200)
			t0 := 0.0
			if samples%2 == 1 {
				t0 = r.Float64()
			}
			dt := 1.0 / float64(samples)
			re := make([]float64, samples)
			im := make([]float64, samples)
			SumSeries(freqs, coeffs, t0, dt, samples, re, im)
			wantRe := make([]float64, samples)
			wantIm := make([]float64, samples)
			sumSeriesSerial(freqs, coeffs, t0, dt, samples, wantRe, wantIm)
			for k := 0; k < samples; k++ {
				if re[k] != wantRe[k] || im[k] != wantIm[k] {
					t.Fatalf("%d carriers, %d samples, k=%d: interleaved (%v,%v) != serial (%v,%v)",
						carriers, samples, k, re[k], im[k], wantRe[k], wantIm[k])
				}
			}
		}
	}
}
