// Package phasor is the shared phasor-recurrence envelope kernel behind
// every beat-envelope scan in the simulator.
//
// Both the CIB envelope mathematics (internal/core, paper Eq. 5) and the
// received-power scans of the baseline comparators (internal/baseline,
// §6.1.1) reduce to the same primitive: evaluate
//
//	S(k) = Σ_i c_i · e^{j·2π·f_i·(t0 + k·dt)}   for k = 0 .. n−1
//
// for a small set of complex coefficients c_i rotating at frequencies f_i,
// and take either the magnitude series |S(k)| or the power peak
// max_k |S(k)|². A naive implementation calls math.Sincos once per carrier
// per sample — O(N·n) transcendental evaluations, the simulator's hottest
// loop by far. The kernel instead advances each carrier by one complex
// multiply per step (the rotation e^{j·2π·f·dt} is computed once), with a
// periodic renormalization that pins the phasor magnitude back to |c_i| so
// rounding drift cannot accumulate: two multiplies and two adds per
// carrier-sample, matching the naive evaluation to ~1e-12 relative error.
//
// All scans use the half-open convention: n samples cover
// t ∈ [t0, t0 + n·dt), i.e. t_k = t0 + k·dt for k = 0..n−1; the endpoint
// t0 + n·dt is excluded. For integer-offset CIB plans over one 1 s period
// the envelope is periodic, so the excluded endpoint would only duplicate
// t0.
//
// Scratch buffers come from internal/pool, so steady-state scans allocate
// nothing.
package phasor

import (
	"math"

	"ivn/internal/pool"
)

// renormMask sets the renormalization cadence: after every
// (renormMask+1) recurrence steps the running phasor is rescaled to its
// exact starting magnitude, bounding multiplicative rounding drift.
const renormMask = 2047

// SumSeries accumulates Σ_i coeffs[i]·e^{j·2π·freqs[i]·(t0+k·dt)} into
// (re[k], im[k]) for k in [0, n). re and im must have length ≥ n and
// arrive zeroed (or hold a partial sum to extend). freqs and coeffs must
// have equal length; SumSeries panics otherwise because a mismatch is
// always a programming error.
//
// Carriers are processed four at a time by an interleaved kernel: the
// four recurrences are independent, so the CPU overlaps their multiply
// latencies, and each pass over re/im covers four carriers instead of
// one. The result is bit-identical to the serial per-carrier loop
// (sumSeriesSerial, retained as the reference): for every sample k the
// partial sums accumulate in ascending carrier order with the exact same
// operations, and each carrier's recurrence and renormalization sequence
// is unchanged.
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
//ivn:hotpath
func SumSeries(freqs []float64, coeffs []complex128, t0, dt float64, n int, re, im []float64) {
	if len(freqs) != len(coeffs) {
		panic("phasor: freqs/coeffs length mismatch")
	}
	if n <= 0 {
		return
	}
	re = re[:n]
	im = im[:n]
	i := 0
	for ; i+4 <= len(freqs); i += 4 {
		sumSeries4(freqs[i:i+4:i+4], coeffs[i:i+4:i+4], t0, dt, n, re, im)
	}
	if i < len(freqs) {
		sumSeriesSerial(freqs[i:], coeffs[i:], t0, dt, n, re, im)
	}
}

// startPhasor rotates coeff to its value at t0 and returns the per-step
// rotation for spacing dt plus the starting magnitude — the shared setup
// of the serial and interleaved kernels.
//
//ivn:unit f Hz
//ivn:unit t0 s
//ivn:unit dt s
func startPhasor(f float64, coeff complex128, t0, dt float64) (curRe, curIm, rotRe, rotIm, mag float64) {
	ss, cs := math.Sincos(2 * math.Pi * f * dt)
	rotRe, rotIm = cs, ss
	curRe, curIm = real(coeff), imag(coeff)
	if t0 != 0 {
		s0, c0 := math.Sincos(2 * math.Pi * f * t0)
		curRe, curIm = curRe*c0-curIm*s0, curRe*s0+curIm*c0
	}
	mag = math.Hypot(curRe, curIm)
	return
}

// sumSeriesSerial is the reference per-carrier recurrence loop. SumSeries
// must remain bit-identical to it (TestSumSeriesInterleavedBitExact).
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
func sumSeriesSerial(freqs []float64, coeffs []complex128, t0, dt float64, n int, re, im []float64) {
	re = re[:n]
	im = im[:n]
	for i, f := range freqs {
		curRe, curIm, rotRe, rotIm, mag := startPhasor(f, coeffs[i], t0, dt)
		for k := 0; k < n; k++ {
			re[k] += curRe
			im[k] += curIm
			curRe, curIm = curRe*rotRe-curIm*rotIm, curRe*rotIm+curIm*rotRe
			if k&renormMask == renormMask {
				if m := math.Hypot(curRe, curIm); m != 0 {
					s := mag / m
					curRe *= s
					curIm *= s
				}
			}
		}
	}
}

// sumSeries4 advances four carriers through one pass over re/im. The four
// recurrence chains are independent (4-way instruction-level parallelism
// on the latency-bound complex multiplies) and re/im are touched once per
// sample instead of four times. Additions into re[k]/im[k] run in
// ascending carrier order, reproducing the serial loop's partial-sum
// sequence exactly.
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
func sumSeries4(freqs []float64, coeffs []complex128, t0, dt float64, n int, re, im []float64) {
	_ = freqs[3]
	_ = coeffs[3]
	c0r, c0i, r0r, r0i, m0 := startPhasor(freqs[0], coeffs[0], t0, dt)
	c1r, c1i, r1r, r1i, m1 := startPhasor(freqs[1], coeffs[1], t0, dt)
	c2r, c2i, r2r, r2i, m2 := startPhasor(freqs[2], coeffs[2], t0, dt)
	c3r, c3i, r3r, r3i, m3 := startPhasor(freqs[3], coeffs[3], t0, dt)
	re = re[:n]
	im = im[:n]
	for k := 0; k < n; k++ {
		// Sequential adds, carrier order 0..3 — the serial loop's exact
		// partial-sum chain for sample k.
		x := re[k]
		x += c0r
		x += c1r
		x += c2r
		x += c3r
		re[k] = x
		y := im[k]
		y += c0i
		y += c1i
		y += c2i
		y += c3i
		im[k] = y
		c0r, c0i = c0r*r0r-c0i*r0i, c0r*r0i+c0i*r0r
		c1r, c1i = c1r*r1r-c1i*r1i, c1r*r1i+c1i*r1r
		c2r, c2i = c2r*r2r-c2i*r2i, c2r*r2i+c2i*r2r
		c3r, c3i = c3r*r3r-c3i*r3i, c3r*r3i+c3i*r3r
		if k&renormMask == renormMask {
			if m := math.Hypot(c0r, c0i); m != 0 {
				s := m0 / m
				c0r *= s
				c0i *= s
			}
			if m := math.Hypot(c1r, c1i); m != 0 {
				s := m1 / m
				c1r *= s
				c1i *= s
			}
			if m := math.Hypot(c2r, c2i); m != 0 {
				s := m2 / m
				c2r *= s
				c2i *= s
			}
			if m := math.Hypot(c3r, c3i); m != 0 {
				s := m3 / m
				c3r *= s
				c3i *= s
			}
		}
	}
}

// MagnitudeSeries writes |Σ_i coeffs[i]·e^{j·2π·freqs[i]·(t0+k·dt)}| into
// dst[k] for k in [0, n). dst must have length ≥ n. Scratch comes from the
// buffer pool; the call itself does not allocate in steady state.
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
//ivn:hotpath
func MagnitudeSeries(freqs []float64, coeffs []complex128, t0, dt float64, n int, dst []float64) {
	re := pool.Float64(n)
	im := pool.Float64(n)
	SumSeries(freqs, coeffs, t0, dt, n, re, im)
	dst = dst[:n]
	for k := 0; k < n; k++ {
		dst[k] = math.Hypot(re[k], im[k])
	}
	pool.PutFloat64(re)
	pool.PutFloat64(im)
}

// PeakPower returns max_k |Σ_i coeffs[i]·e^{j·2π·freqs[i]·(t0+k·dt)}|²
// over the half-open grid k ∈ [0, n).
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
//ivn:hotpath
func PeakPower(freqs []float64, coeffs []complex128, t0, dt float64, n int) float64 {
	p, _ := peakPowerArg(freqs, coeffs, t0, dt, n)
	return p
}

// peakPowerArg returns the power peak and its grid index.
//
//ivn:unit freqs Hz
//ivn:unit t0 s
//ivn:unit dt s
func peakPowerArg(freqs []float64, coeffs []complex128, t0, dt float64, n int) (float64, int) {
	if n <= 0 || len(freqs) == 0 {
		return 0, -1
	}
	re := pool.Float64(n)
	im := pool.Float64(n)
	SumSeries(freqs, coeffs, t0, dt, n, re, im)
	best, arg := 0.0, 0
	for k := 0; k < n; k++ {
		if p := re[k]*re[k] + im[k]*im[k]; p > best {
			best, arg = p, k
		}
	}
	pool.PutFloat64(re)
	pool.PutFloat64(im)
	return best, arg
}

// refineFraction sets which coarse cells the refinement stage rescans:
// every cell whose coarse power is ≥ refineFraction × the coarse maximum.
// A coarse sample can undershoot a crest it straddles by at most
// cos²(π·B·dtC), where B is the envelope bandwidth (the carrier frequency
// spread) and dtC the coarse spacing; as long as cos²(π·B·dtC) ≥
// refineFraction, the cell holding the true fine-grid argmax always
// clears the threshold and the refined result equals the full scan. At
// 0.85 that holds for B·dtC ≤ 0.125 — e.g. a 2048-point coarse grid over
// 1 s covers plans up to ~250 Hz of spread, comfortably above the
// ≤200 Hz flatness-constrained CIB sets. Tighter envelopes refine a
// handful of cells; pathological ones (near-tie lobes everywhere)
// degrade gracefully toward the full scan instead of missing the peak.
const refineFraction = 0.85

// PeakPowerRefined is the coarse-to-fine peak scan: it samples the power
// envelope on a coarse grid of nCoarse points over [0, duration), then
// rescans the fine grid (duration/nFine spacing) only around the coarse
// cells within refineFraction of the coarse maximum. nFine must be a
// positive multiple of nCoarse; otherwise, or when the coarse grid would
// not actually be coarser, it falls back to the full fine-grid scan. The
// result is always the power at a sample point of PeakPower's half-open
// [0, duration) fine grid, and for adequately oversampled envelopes (see
// refineFraction) it equals the full fine-grid scan.
//
//ivn:unit freqs Hz
//ivn:unit duration s
//ivn:hotpath
func PeakPowerRefined(freqs []float64, coeffs []complex128, duration float64, nCoarse, nFine int) float64 {
	if len(freqs) == 0 || nFine <= 0 {
		return 0
	}
	if nCoarse <= 0 || nCoarse >= nFine || nFine%nCoarse != 0 {
		return PeakPower(freqs, coeffs, 0, duration/float64(nFine), nFine)
	}
	dtC := duration / float64(nCoarse)
	dtF := duration / float64(nFine)
	ratio := nFine / nCoarse

	// Coarse pass; keep the per-cell powers in re.
	re := pool.Float64(nCoarse)
	im := pool.Float64(nCoarse)
	SumSeries(freqs, coeffs, 0, dtC, nCoarse, re, im)
	maxP := 0.0
	for k := 0; k < nCoarse; k++ {
		p := re[k]*re[k] + im[k]*im[k]
		re[k] = p
		if p > maxP {
			maxP = p
		}
	}
	pool.PutFloat64(im)

	// Every coarse point is also a fine point (k·dtC = k·ratio·dtF), so the
	// coarse peak is a valid lower bound on the fine-grid answer.
	best := maxP
	thresh := refineFraction * maxP

	// Refine: for each run of qualifying cells, rescan the fine-grid points
	// spanning the run plus the flanking cells, clamped to the interval.
	// Merging runs keeps overlapping windows from being evaluated twice.
	for k := 0; k < nCoarse; {
		if re[k] < thresh {
			k++
			continue
		}
		start := k
		for k < nCoarse && re[k] >= thresh {
			k++
		}
		lo := start*ratio - (ratio - 1)
		if lo < 0 {
			lo = 0
		}
		hi := (k-1)*ratio + ratio - 1
		if hi > nFine-1 {
			hi = nFine - 1
		}
		if p, _ := peakPowerArg(freqs, coeffs, float64(lo)*dtF, dtF, hi-lo+1); p > best {
			best = p
		}
	}
	pool.PutFloat64(re)
	return best
}
