package phasor

import (
	"testing"

	"ivn/internal/rng"
)

// BenchmarkSumSeriesSerial10Carriers8192 benchmarks the retained serial
// reference so the interleaved kernel's speedup stays measurable.
func BenchmarkSumSeriesSerial10Carriers8192(b *testing.B) {
	r := rng.New(1)
	freqs, coeffs := randomSet(r, 10, 150)
	re := make([]float64, 8192)
	im := make([]float64, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range re {
			re[k], im[k] = 0, 0
		}
		sumSeriesSerial(freqs, coeffs, 0, 1.0/8192, 8192, re, im)
	}
}
