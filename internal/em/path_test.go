package em

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func swinePath(air float64) Path {
	return Path{
		AirDistance: air,
		Layers: []Layer{
			{Skin, 0.003},
			{Fat, 0.02},
			{Muscle, 0.03},
			{StomachWall, 0.005},
			{GastricFluid, 0.04},
		},
	}
}

func TestAirPathMatchesFriis(t *testing.T) {
	p := Path{AirDistance: 5}
	got := p.Amplitude(f915)
	want := FriisAmplitude(Wavelength(f915), 5)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("air path amplitude = %v, want Friis %v", got, want)
	}
}

func TestAmplitudeInverseWithDistanceInAir(t *testing.T) {
	p1 := Path{AirDistance: 2}
	p2 := Path{AirDistance: 4}
	r := p1.Amplitude(f915) / p2.Amplitude(f915)
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("amplitude ratio for 2× distance = %v, want 2 (1/r law)", r)
	}
}

func TestAmplitudeExponentialWithDepth(t *testing.T) {
	// Doubling tissue depth must square the tissue attenuation factor
	// (after removing spreading and boundary terms). Paper Eq. 2.
	mk := func(d float64) Path {
		return Path{AirDistance: 1, Layers: []Layer{{Muscle, d}}}
	}
	a1, a2 := mk(0.02), mk(0.04)
	// Strip the spreading and transmittance contributions.
	e1 := a1.Amplitude(f915) * a1.TotalLength() / a1.Transmittance(f915)
	e2 := a2.Amplitude(f915) * a2.TotalLength() / a2.Transmittance(f915)
	ratio := e2 / e1 // should be exp(-α·0.02)
	want := math.Exp(-Muscle.Alpha(f915) * 0.02)
	if math.Abs(ratio-want)/want > 1e-9 {
		t.Fatalf("depth attenuation ratio = %v, want %v", ratio, want)
	}
}

func TestTissueDominatesAirLoss(t *testing.T) {
	// Fig. 3's point: 5 cm of tissue costs far more than 5 cm of air.
	base := Path{AirDistance: 0.5}
	air := Path{AirDistance: 0.55}
	tissue := Path{AirDistance: 0.5, Layers: []Layer{{Muscle, 0.05}}}
	airExtra := base.LossDB(f915) - air.LossDB(f915)       // negative (loss grows)
	tissueExtra := tissue.LossDB(f915) - base.LossDB(f915) // positive loss added
	if tissueExtra < 10 {
		t.Fatalf("5 cm muscle adds only %v dB, want > 10 (paper: 11.5–35.4)", tissueExtra)
	}
	if math.Abs(airExtra) > 1.5 {
		t.Fatalf("5 cm extra air changed loss by %v dB, want < 1.5", airExtra)
	}
}

func TestMuscleLoss5cmMatchesPaper(t *testing.T) {
	// "This translates to a loss of 11.5 to 35.4 dB at a depth of 5 cm."
	with := Path{AirDistance: 1, Layers: []Layer{{Muscle, 0.05}}}
	without := Path{AirDistance: 1, Layers: []Layer{{Muscle, 1e-9}}}
	added := with.LossDB(f915) - without.LossDB(f915)
	if added < 11.5 || added > 35.4 {
		t.Fatalf("5 cm muscle adds %v dB, want within [11.5, 35.4]", added)
	}
}

func TestPathDepthAndLength(t *testing.T) {
	p := swinePath(0.5)
	wantDepth := 0.003 + 0.02 + 0.03 + 0.005 + 0.04
	if math.Abs(p.Depth()-wantDepth) > 1e-12 {
		t.Fatalf("Depth = %v, want %v", p.Depth(), wantDepth)
	}
	if math.Abs(p.TotalLength()-(0.5+wantDepth)) > 1e-12 {
		t.Fatalf("TotalLength = %v", p.TotalLength())
	}
}

func TestPhaseDelayGrowsWithDepthAndPermittivity(t *testing.T) {
	base := Path{AirDistance: 1}
	inFat := Path{AirDistance: 1, Layers: []Layer{{Fat, 0.05}}}
	inMuscle := Path{AirDistance: 1, Layers: []Layer{{Muscle, 0.05}}}
	if !(inMuscle.PhaseDelay(f915) > inFat.PhaseDelay(f915) && inFat.PhaseDelay(f915) > base.PhaseDelay(f915)) {
		t.Fatal("phase delay should grow with depth and εr")
	}
}

func TestPhaseDiffersAcrossFrequency(t *testing.T) {
	// The per-frequency phase spread is what makes the channel "blind":
	// two carriers 35 MHz apart decorrelate over a multi-meter path.
	p := swinePath(1)
	ph1 := math.Mod(p.PhaseDelay(915e6), 2*math.Pi)
	ph2 := math.Mod(p.PhaseDelay(880e6), 2*math.Pi)
	if math.Abs(ph1-ph2) < 1e-3 {
		t.Fatal("phases at 915 and 880 MHz are suspiciously aligned")
	}
}

func TestCoefficientMagnitudeMatchesAmplitude(t *testing.T) {
	p := swinePath(0.7)
	h := p.Coefficient(f915)
	if math.Abs(cmplx.Abs(h)-p.Amplitude(f915)) > 1e-15 {
		t.Fatal("coefficient magnitude != amplitude")
	}
}

func TestNearFieldClamp(t *testing.T) {
	p := Path{AirDistance: 0}
	if a := p.Amplitude(f915); math.IsInf(a, 1) || a > 1 {
		t.Fatalf("zero-length path amplitude = %v, want clamped finite < 1", a)
	}
}

func TestGroupDelaySlowerInTissue(t *testing.T) {
	air := Path{AirDistance: 1}
	tissue := Path{AirDistance: 0.95, Layers: []Layer{{Muscle, 0.05}}}
	if tissue.GroupDelay(f915) <= air.GroupDelay(f915) {
		t.Fatal("wave should travel slower through tissue than air")
	}
}

func TestPathValidate(t *testing.T) {
	if err := (Path{AirDistance: -1}).Validate(); err == nil {
		t.Fatal("negative air distance accepted")
	}
	if err := (Path{Layers: []Layer{{Muscle, -0.1}}}).Validate(); err == nil {
		t.Fatal("negative thickness accepted")
	}
	if err := swinePath(0.5).Validate(); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
}

func TestWithDepthAdjustsStack(t *testing.T) {
	p := swinePath(0.5)
	q := p.WithDepth(0.01) // shallower than skin+fat
	if math.Abs(q.Depth()-0.01) > 1e-12 {
		t.Fatalf("WithDepth(0.01) depth = %v", q.Depth())
	}
	q2 := p.WithDepth(0.2) // deeper: final layer grows
	if math.Abs(q2.Depth()-0.2) > 1e-12 {
		t.Fatalf("WithDepth(0.2) depth = %v", q2.Depth())
	}
	if q2.Layers[len(q2.Layers)-1].Medium.Name != "gastric-fluid" {
		t.Fatal("deep extension should grow the innermost layer")
	}
	// Original untouched.
	if p.Depth() != swinePath(0.5).Depth() {
		t.Fatal("WithDepth mutated the receiver")
	}
}

func TestWithAirDistanceCopies(t *testing.T) {
	p := swinePath(0.5)
	q := p.WithAirDistance(2)
	if q.AirDistance != 2 || p.AirDistance != 0.5 {
		t.Fatal("WithAirDistance wrong")
	}
	q.Layers[0].Thickness = 99
	if p.Layers[0].Thickness == 99 {
		t.Fatal("WithAirDistance shares the layer slice")
	}
}

func TestPathString(t *testing.T) {
	s := swinePath(0.5).String()
	if s == "" {
		t.Fatal("empty path string")
	}
}

func TestChannelCoefficientComposition(t *testing.T) {
	p := Path{AirDistance: 2}
	c := NewChannel(p)
	c.TxGain = 2
	c.RxGain = 3
	c.OrientationGain = 0.5
	got := cmplx.Abs(c.Coefficient(f915))
	want := 2 * 3 * 0.5 * p.Amplitude(f915)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("channel coefficient = %v, want %v", got, want)
	}
}

func TestChannelMultipathCreatesFrequencySelectivity(t *testing.T) {
	r := rng.New(7)
	c := NewChannel(Path{AirDistance: 3})
	c.Rays = RichProfile.GenerateRays(r)
	// Over a wide span the gain must vary (fading), unlike the flat
	// direct-only channel.
	var min, max float64 = math.Inf(1), 0
	for f := 880e6; f <= 950e6; f += 1e6 {
		g := c.PowerGain(f)
		min = math.Min(min, g)
		max = math.Max(max, g)
	}
	if max/min < 1.5 {
		t.Fatalf("multipath channel too flat: max/min = %v", max/min)
	}
}

func TestChannelNarrowbandOverCIBOffsets(t *testing.T) {
	// CIB frequency offsets are < 200 Hz; the channel must be essentially
	// constant over that span (coherence-bandwidth assumption, §3.7).
	r := rng.New(8)
	c := NewChannel(swinePath(1))
	c.Rays = DefaultIndoorProfile.GenerateRays(r)
	h0 := c.Coefficient(915e6)
	h1 := c.Coefficient(915e6 + 137)
	if cmplx.Abs(h0-h1)/cmplx.Abs(h0) > 1e-3 {
		t.Fatalf("channel varies over 137 Hz: %v vs %v", h0, h1)
	}
}

func TestGenerateRaysDeterministic(t *testing.T) {
	a := DefaultIndoorProfile.GenerateRays(rng.New(5))
	b := DefaultIndoorProfile.GenerateRays(rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ray generation not deterministic")
		}
	}
	if got := (MultipathProfile{}).GenerateRays(rng.New(1)); got != nil {
		t.Fatal("zero-ray profile should return nil")
	}
}

func TestGenerateRaysMeanPower(t *testing.T) {
	r := rng.New(6)
	mp := MultipathProfile{Rays: 20000, MaxExcessMeters: 3, MeanRelPower: 0.1}
	rays := mp.GenerateRays(r)
	var p float64
	for _, ray := range rays {
		p += real(ray.Gain)*real(ray.Gain) + imag(ray.Gain)*imag(ray.Gain)
	}
	p /= float64(len(rays))
	if math.Abs(p-0.1)/0.1 > 0.05 {
		t.Fatalf("mean ray power = %v, want ≈0.1", p)
	}
}

func TestChannelValidate(t *testing.T) {
	c := NewChannel(swinePath(0.5))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.OrientationGain = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("orientation gain > 1 accepted")
	}
	c.OrientationGain = 1
	c.Rays = []Ray{{ExtraDelay: -1}}
	if err := c.Validate(); err == nil {
		t.Fatal("negative ray delay accepted")
	}
	c.Rays = nil
	c.TxGain = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative antenna gain accepted")
	}
}

func TestDipoleOrientationGain(t *testing.T) {
	if g := DipoleOrientationGain(0, 0.05); g != 1 {
		t.Fatalf("aligned gain = %v, want 1", g)
	}
	if g := DipoleOrientationGain(math.Pi/2, 0.05); g != 0.05 {
		t.Fatalf("cross-polarized gain = %v, want floor 0.05", g)
	}
}

func TestQuickAmplitudeMonotoneInDepth(t *testing.T) {
	f := func(d1, d2 uint8) bool {
		a := 0.01 + float64(d1)/1000 // 1..26.5 cm
		b := 0.01 + float64(d2)/1000
		if a > b {
			a, b = b, a
		}
		pa := Path{AirDistance: 1, Layers: []Layer{{Muscle, a}}}
		pb := Path{AirDistance: 1, Layers: []Layer{{Muscle, b}}}
		return pa.Amplitude(f915) >= pb.Amplitude(f915)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLossPositive(t *testing.T) {
	f := func(air uint8, depth uint8) bool {
		p := Path{
			AirDistance: 0.3 + float64(air)/50,
			Layers:      []Layer{{Muscle, float64(depth) / 2000}},
		}
		return p.LossDB(f915) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
