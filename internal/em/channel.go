package em

import (
	"fmt"
	"math"

	"ivn/internal/rng"
)

// Ray is one multipath component: a delayed, complex-weighted echo of the
// direct path (a reflection off an organ boundary, the tank wall, or the
// room). Gain is relative to the direct-path coefficient.
type Ray struct {
	// ExtraDelay is the excess propagation delay over the direct path, s.
	ExtraDelay float64
	// Gain is the complex amplitude relative to the direct path.
	Gain complex128
}

// Channel is the full narrowband channel between one transmit antenna and
// the sensor: a direct layered path, a set of multipath rays, and an
// antenna-orientation gain. Its frequency response is
//
//	H(f) = g_orient · h_direct(f) · (1 + Σ Gainᵢ·e^{-j2πf·τᵢ})
//
// The rays multiply (rather than add independently) so their geometry
// shares the dominant tissue loss — reflections inside the body still cross
// the same layers.
type Channel struct {
	Direct Path
	Rays   []Ray
	// OrientationGain scales amplitude for antenna polarization/orientation
	// mismatch in [0, 1]; zero means fully cross-polarized.
	OrientationGain float64
	// TxGain and RxGain are the antenna amplitude gains (√ of power gain).
	TxGain, RxGain float64
}

// NewChannel builds a channel over path with unit antenna gains, ideal
// orientation and no multipath.
func NewChannel(p Path) *Channel {
	return &Channel{Direct: p, OrientationGain: 1, TxGain: 1, RxGain: 1}
}

// Coefficient returns H(f).
func (c *Channel) Coefficient(freq float64) complex128 {
	h := c.Direct.Coefficient(freq)
	sum := complex(1, 0)
	for _, ray := range c.Rays {
		ph := -2 * math.Pi * freq * ray.ExtraDelay
		s, cs := math.Sincos(ph)
		sum += ray.Gain * complex(cs, s)
	}
	g := c.OrientationGain * c.TxGain * c.RxGain
	return complex(g, 0) * h * sum
}

// PowerGain returns |H(f)|².
func (c *Channel) PowerGain(freq float64) float64 {
	h := c.Coefficient(freq)
	return real(h)*real(h) + imag(h)*imag(h)
}

// MultipathProfile parameterizes random ray generation.
type MultipathProfile struct {
	// Rays is the number of echoes to generate.
	Rays int
	// MaxExcessMeters bounds the excess path length of an echo.
	MaxExcessMeters float64
	// MeanRelPower is the average echo power relative to the direct path
	// (e.g. 0.1 = −10 dB echoes).
	MeanRelPower float64
}

// DefaultIndoorProfile is a moderate indoor/in-body multipath environment:
// a few −13 dB echoes with up to 3 m excess path.
var DefaultIndoorProfile = MultipathProfile{Rays: 4, MaxExcessMeters: 3, MeanRelPower: 0.05}

// LOSProfile is a nearly line-of-sight environment (the paper's hallway
// range tests, Fig. 8): two faint echoes.
var LOSProfile = MultipathProfile{Rays: 2, MaxExcessMeters: 5, MeanRelPower: 0.03}

// RichProfile models a cluttered environment with strong reflections.
var RichProfile = MultipathProfile{Rays: 12, MaxExcessMeters: 6, MeanRelPower: 0.2}

// GenerateRays draws a random ray set from the profile. Each ray has a
// uniform excess delay, Rayleigh-distributed magnitude and uniform phase —
// the standard rich-scattering assumption. The same *rng.Rand state always
// yields the same rays.
func (mp MultipathProfile) GenerateRays(r *rng.Rand) []Ray {
	if mp.Rays <= 0 {
		return nil
	}
	return mp.GenerateRaysInto(make([]Ray, 0, mp.Rays), r)
}

// GenerateRaysInto appends a random ray set to dst and returns it, drawing
// exactly the same variate sequence as GenerateRays (per ray: Rayleigh,
// Phase, UniformRange). Callers that realize placements per trial pass
// dst[:0] of a retained buffer to keep ray generation allocation-free.
func (mp MultipathProfile) GenerateRaysInto(dst []Ray, r *rng.Rand) []Ray {
	// Rayleigh with E[m²] = MeanRelPower ⇒ σ = √(MeanRelPower/2).
	sigma := math.Sqrt(mp.MeanRelPower / 2)
	for i := 0; i < mp.Rays; i++ {
		m := r.Rayleigh(sigma)
		ph := r.Phase()
		s, c := math.Sincos(ph)
		dst = append(dst, Ray{
			ExtraDelay: r.UniformRange(0.05, 1) * mp.MaxExcessMeters / C,
			Gain:       complex(m*c, m*s),
		})
	}
	return dst
}

// Validate checks the channel parameters.
func (c *Channel) Validate() error {
	if err := c.Direct.Validate(); err != nil {
		return err
	}
	if c.OrientationGain < 0 || c.OrientationGain > 1 {
		return fmt.Errorf("em: orientation gain %v out of [0,1]", c.OrientationGain)
	}
	if c.TxGain < 0 || c.RxGain < 0 {
		return fmt.Errorf("em: negative antenna gain")
	}
	for i, ray := range c.Rays {
		if ray.ExtraDelay < 0 {
			return fmt.Errorf("em: ray %d has negative excess delay", i)
		}
	}
	return nil
}

// DipoleOrientationGain returns the amplitude mismatch factor for a linear
// dipole rotated by theta radians from co-polarized alignment, floored at
// minGain to model the residual coupling real tags exhibit (a perfect null
// almost never occurs in practice because of scattering).
func DipoleOrientationGain(theta, minGain float64) float64 {
	g := math.Abs(math.Cos(theta))
	if g < minGain {
		return minGain
	}
	return g
}

// FriisAmplitude returns the free-space amplitude gain between isotropic
// antennas at distance r and wavelength lambda: λ/(4πr). Antenna gains are
// applied by Channel. Distances below 10 cm clamp to avoid divergence.
func FriisAmplitude(lambda, r float64) float64 {
	const nearField = 0.1
	if r < nearField {
		r = nearField
	}
	return lambda / (4 * math.Pi * r)
}

// Wavelength returns c/f in meters.
func Wavelength(freq float64) float64 { return C / freq }
