package em

import (
	"fmt"
	"math"
	"strings"
)

// Layer is one homogeneous slab in a propagation path.
type Layer struct {
	Medium    Medium
	Thickness float64 //ivn:unit m
}

// Path is a straight-line propagation path: an air segment of length
// AirDistance from the transmit antenna to the first boundary, followed by
// an ordered stack of layers ending at the receiver. The zero value (no air
// distance, no layers) is a degenerate zero-length path with unit gain.
type Path struct {
	// AirDistance is the antenna→body distance r in meters (paper Fig. 3).
	AirDistance float64 //ivn:unit m
	// Layers is the tissue stack the wave crosses, outermost first.
	Layers []Layer
}

// Validate reports whether all geometry is physical.
func (p Path) Validate() error {
	if p.AirDistance < 0 {
		return fmt.Errorf("em: negative air distance %v", p.AirDistance)
	}
	for i, l := range p.Layers {
		if l.Thickness < 0 {
			return fmt.Errorf("em: layer %d (%s) has negative thickness", i, l.Medium.Name)
		}
		if err := l.Medium.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Depth returns the total tissue depth d = Σ thickness (paper's d).
//
//ivn:unit return m
func (p Path) Depth() float64 {
	var d float64
	for _, l := range p.Layers {
		d += l.Thickness
	}
	return d
}

// TotalLength returns air distance plus depth.
//
//ivn:unit return m
func (p Path) TotalLength() float64 { return p.AirDistance + p.Depth() }

// Transmittance returns the power-equivalent amplitude factor across every
// boundary in the path (air→layer₁, layer₁→layer₂, …) at the given
// frequency: √(Π T_power). This is the T of Eq. 2 generalized to multiple
// layers, expressed so that |h|² is delivered power. (The raw Fresnel
// field coefficient t = 2η₂/(η₁+η₂) would misstate power across an
// impedance change: power flux is E²/η, so the boundary's power behavior
// is T_p = 4η₁η₂/(η₁+η₂)², a 3–5 dB loss into tissue as the paper quotes.)
//
//ivn:unit freq Hz
//ivn:unit return 1
//ivn:hotpath
func (p Path) Transmittance(freq float64) float64 {
	tp := 1.0
	prev := Air
	for _, l := range p.Layers {
		tp *= TransmittancePower(prev, l.Medium, freq)
		prev = l.Medium
	}
	return math.Sqrt(tp)
}

// Amplitude returns the amplitude gain of the path at freq between
// isotropic antenna ports:
//
//	|h| = T · λ/(4π·max(r+d, r₀)) · e^{-Σ αᵢdᵢ}
//
// For a pure-air path this reduces to the Friis amplitude λ/(4πr), so
// power budgets computed from |h|² are in true watts-per-watt. The
// spherical-spreading term uses the full path length and is clamped at a
// 10 cm near-field limit so a zero-distance path cannot diverge. Antenna
// gains belong to Channel, not Path.
//
//ivn:unit freq Hz
//ivn:unit return 1
//ivn:hotpath
func (p Path) Amplitude(freq float64) float64 {
	const nearField = 0.1
	r := p.TotalLength()
	if r < nearField {
		r = nearField
	}
	att := 0.0
	for _, l := range p.Layers {
		att += l.Medium.Alpha(freq) * l.Thickness
	}
	lambda := C / freq
	return p.Transmittance(freq) * lambda / (4 * math.Pi * r) * math.Exp(-att)
}

// PhaseDelay returns the one-way propagation phase in radians at freq:
// air contributes β₀·r and each layer βᵢ·dᵢ. This is the phase a
// beamformer would need to know — and cannot, for an implanted sensor.
//
//ivn:unit freq Hz
//ivn:unit return rad
//ivn:hotpath
func (p Path) PhaseDelay(freq float64) float64 {
	beta0 := 2 * math.Pi * freq / C
	ph := beta0 * p.AirDistance
	for _, l := range p.Layers {
		ph += l.Medium.Beta(freq) * l.Thickness
	}
	return ph
}

// GroupDelay returns the path's propagation delay in seconds, using each
// layer's phase velocity.
//
//ivn:unit freq Hz
//ivn:unit return s
func (p Path) GroupDelay(freq float64) float64 {
	d := p.AirDistance / C
	for _, l := range p.Layers {
		w := 2 * math.Pi * freq
		v := w / l.Medium.Beta(freq)
		d += l.Thickness / v
	}
	return d
}

// Coefficient returns the complex channel coefficient h = |h|·e^{-jφ} of
// the direct path at freq.
//
//ivn:unit freq Hz
//ivn:hotpath
func (p Path) Coefficient(freq float64) complex128 {
	a := p.Amplitude(freq)
	s, c := math.Sincos(-p.PhaseDelay(freq))
	return complex(a*c, a*s)
}

// LossDB returns the path's port-to-port power loss in dB between
// isotropic antennas (positive numbers are loss).
//
//ivn:unit freq Hz
//ivn:unit return dB
func (p Path) LossDB(freq float64) float64 {
	a := p.Amplitude(freq)
	if a <= 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(a)
}

// String renders the path geometry.
func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "air %.2fm", p.AirDistance)
	for _, l := range p.Layers {
		fmt.Fprintf(&b, " | %s %.1fcm", l.Medium.Name, l.Thickness*100)
	}
	return b.String()
}

// WithAirDistance returns a copy of p with the air segment replaced.
//
//ivn:unit r m
func (p Path) WithAirDistance(r float64) Path {
	q := Path{AirDistance: r, Layers: make([]Layer, len(p.Layers))}
	copy(q.Layers, p.Layers)
	return q
}

// WithAirDistanceShared returns a copy of p with the air segment replaced
// that aliases p's layer stack instead of copying it. Callers must treat
// the stack as immutable for as long as either path is live; the
// per-trial realization paths use this to avoid a layer copy per channel.
//
//ivn:unit r m
func (p Path) WithAirDistanceShared(r float64) Path {
	p.AirDistance = r
	return p
}

// SetDepth adjusts a layer stack in place so its total thickness equals d
// and returns the (possibly shortened) slice — the allocation-free
// counterpart of Path.WithDepth, with identical truncate/extend
// semantics.
//
//ivn:unit d m
func SetDepth(layers []Layer, d float64) []Layer {
	out := layers[:0]
	remaining := d
	for _, l := range layers {
		if remaining <= 0 {
			break
		}
		t := l.Thickness
		if t > remaining {
			t = remaining
		}
		out = append(out, Layer{Medium: l.Medium, Thickness: t})
		remaining -= t
	}
	if remaining > 0 && len(out) > 0 {
		out[len(out)-1].Thickness += remaining
	}
	return out
}

// WithDepth returns a copy of p whose final layer thickness is adjusted so
// the total tissue depth equals d. A path with no layers is returned
// unchanged. d shallower than the preceding layers truncates the stack.
//
//ivn:unit d m
func (p Path) WithDepth(d float64) Path {
	q := Path{AirDistance: p.AirDistance}
	remaining := d
	for _, l := range p.Layers {
		if remaining <= 0 {
			break
		}
		t := l.Thickness
		if t > remaining {
			t = remaining
		}
		q.Layers = append(q.Layers, Layer{Medium: l.Medium, Thickness: t})
		remaining -= t
	}
	if remaining > 0 && len(q.Layers) > 0 {
		q.Layers[len(q.Layers)-1].Thickness += remaining
	}
	return q
}
