// Package em models RF propagation through air and biological tissues for
// the IVN simulator.
//
// The paper's channel model (Eq. 2) is
//
//	|E| = T·A/r · e^{-αd}
//
// where T is the air→tissue transmittance, r the air distance, α the
// tissue attenuation constant and d the depth. This package derives α, the
// phase constant β and the wave impedance η from each medium's dielectric
// constant and conductivity (lossy-dielectric wave equations), composes
// multi-layer paths with Fresnel boundary losses, and adds a configurable
// multipath ray model for reflections off organs and the environment.
//
// Everything a beamformer cannot know — per-frequency phase through an
// inhomogeneous stack, multipath — is exactly what this package produces,
// so the CIB algorithm on top is exercised under honest blind-channel
// conditions.
package em

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Physical constants (SI).
const (
	// C is the speed of light in vacuum, m/s.
	C = 299792458.0 //ivn:unit m/s
	// Mu0 is the vacuum permeability, H/m.
	Mu0 = 4 * math.Pi * 1e-7
	// Eps0 is the vacuum permittivity, F/m.
	Eps0 = 8.8541878128e-12
	// Eta0 is the impedance of free space, ohms.
	Eta0 = 376.730313668
)

// Medium is a propagation medium characterized by its relative permittivity
// and conductivity. Loss (α), phase velocity (via β) and impedance (η) are
// derived per frequency from the exact lossy-dielectric relations.
type Medium struct {
	// Name identifies the medium in experiment output.
	Name string
	// EpsilonR is the real relative permittivity ε′/ε₀.
	EpsilonR float64
	// Conductivity is σ in S/m; it sets the dielectric loss.
	Conductivity float64
}

// Preset media. Tissue values approximate the Gabriel dielectric database
// at 915 MHz; fluid values follow the paper's USP simulated gastric and
// intestinal preparations; "steak"/"bacon"/"chicken" stand in for the
// paper's ex-vivo animal tissues (muscle-, fat- and poultry-like).
//
// Conductivities for the solid tissues follow the paper's stated model
// ("a dielectric constant of 50 and a conductivity of 1 to 3 S/m", §2.2.1)
// so that the derived per-cm losses land inside its quoted 2.3–6.9 dB/cm.
var (
	Air             = Medium{Name: "air", EpsilonR: 1, Conductivity: 0}
	Water           = Medium{Name: "water", EpsilonR: 78, Conductivity: 0.35}
	GastricFluid    = Medium{Name: "gastric-fluid", EpsilonR: 72, Conductivity: 1.2}
	IntestinalFluid = Medium{Name: "intestinal-fluid", EpsilonR: 70, Conductivity: 1.4}
	Muscle          = Medium{Name: "muscle", EpsilonR: 55.0, Conductivity: 1.15}
	Fat             = Medium{Name: "fat", EpsilonR: 5.5, Conductivity: 0.05}
	Skin            = Medium{Name: "skin", EpsilonR: 41.3, Conductivity: 1.0}
	StomachWall     = Medium{Name: "stomach-wall", EpsilonR: 65.0, Conductivity: 1.3}
	Steak           = Medium{Name: "steak", EpsilonR: 52.0, Conductivity: 1.1}
	Bacon           = Medium{Name: "bacon", EpsilonR: 9.0, Conductivity: 0.12}
	ChickenBreast   = Medium{Name: "chicken", EpsilonR: 50.0, Conductivity: 1.0}
)

// Presets lists every built-in medium in a stable order.
func Presets() []Medium {
	return []Medium{
		Air, Water, GastricFluid, IntestinalFluid,
		Muscle, Fat, Skin, StomachWall,
		Steak, Bacon, ChickenBreast,
	}
}

// MediumByName looks up a preset by name.
func MediumByName(name string) (Medium, bool) {
	for _, m := range Presets() {
		if m.Name == name {
			return m, true
		}
	}
	return Medium{}, false
}

// String returns the medium's name.
func (m Medium) String() string { return m.Name }

// lossTangent returns σ/(ωε′).
func (m Medium) lossTangent(freq float64) float64 {
	if m.Conductivity == 0 {
		return 0
	}
	return m.Conductivity / (2 * math.Pi * freq * Eps0 * m.EpsilonR)
}

// Alpha returns the field attenuation constant α in nepers per meter at
// frequency freq, from the exact expression
//
//	α = ω √(µε′/2 · (√(1+tan²δ) − 1)).
//
// For the preset tissues at 915 MHz this lands in the paper's quoted
// 13–80 m⁻¹ range ([39]).
func (m Medium) Alpha(freq float64) float64 {
	if m.Conductivity == 0 {
		return 0
	}
	w := 2 * math.Pi * freq
	tan := m.lossTangent(freq)
	return w * math.Sqrt(Mu0*Eps0*m.EpsilonR/2*(math.Sqrt(1+tan*tan)-1))
}

// Beta returns the phase constant β in radians per meter:
//
//	β = ω √(µε′/2 · (√(1+tan²δ) + 1)).
func (m Medium) Beta(freq float64) float64 {
	w := 2 * math.Pi * freq
	tan := m.lossTangent(freq)
	return w * math.Sqrt(Mu0*Eps0*m.EpsilonR/2*(math.Sqrt(1+tan*tan)+1))
}

// Impedance returns the intrinsic wave impedance magnitude |η| in ohms.
// It appears in the received-power relation P = E²·A_eff/η (paper Eq. 3).
func (m Medium) Impedance(freq float64) float64 {
	if m.Conductivity == 0 {
		return Eta0 / math.Sqrt(m.EpsilonR)
	}
	w := 2 * math.Pi * freq
	// η = √(jωµ / (σ + jωε′)); take the magnitude, using
	// |√z| = √|z| to avoid branch-cut concerns.
	num := complex(0, w*Mu0)
	den := complex(m.Conductivity, w*Eps0*m.EpsilonR)
	return math.Sqrt(cmplx.Abs(num / den))
}

// LossDBPerCM returns the propagation power loss in dB per centimeter, the
// unit the paper uses ("2.3 to 6.9 dB/cm").
func (m Medium) LossDBPerCM(freq float64) float64 {
	// Power loss over d meters is e^{-2αd}; in dB: 20·α·d·log10(e).
	return 20 * m.Alpha(freq) * math.Log10(math.E) * 0.01
}

// RefractiveIndex returns the effective refractive index β/β₀ that sets
// the in-medium wavelength.
func (m Medium) RefractiveIndex(freq float64) float64 {
	return m.Beta(freq) / (2 * math.Pi * freq / C)
}

// Validate reports whether the medium's parameters are physical.
func (m Medium) Validate() error {
	if m.EpsilonR < 1 {
		return fmt.Errorf("em: medium %q has εr=%v < 1", m.Name, m.EpsilonR)
	}
	if m.Conductivity < 0 {
		return fmt.Errorf("em: medium %q has negative conductivity", m.Name)
	}
	return nil
}

// TransmittanceAmplitude returns the Fresnel amplitude transmission
// coefficient for a wave passing from medium a into medium b at normal
// incidence:
//
//	t = 2η_b / (η_a + η_b).
//
// The corresponding transmitted power fraction (accounting for the
// impedance change) is TransmittancePower. At an air→tissue boundary near
// 1 GHz this costs 3–5 dB, matching the paper (§2.2.1).
func TransmittanceAmplitude(a, b Medium, freq float64) float64 {
	etaA, etaB := a.Impedance(freq), b.Impedance(freq)
	return 2 * etaB / (etaA + etaB)
}

// TransmittancePower returns the fraction of incident power that crosses
// the a→b boundary: T_p = (η_a/η_b)·t² = 4·η_a·η_b/(η_a+η_b)².
func TransmittancePower(a, b Medium, freq float64) float64 {
	etaA, etaB := a.Impedance(freq), b.Impedance(freq)
	s := etaA + etaB
	return 4 * etaA * etaB / (s * s)
}

// ReflectancePower returns the reflected power fraction at the a→b
// boundary; it complements TransmittancePower to 1.
func ReflectancePower(a, b Medium, freq float64) float64 {
	return 1 - TransmittancePower(a, b, freq)
}
