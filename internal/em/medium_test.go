package em

import (
	"math"
	"testing"
	"testing/quick"
)

const f915 = 915e6

func TestAirIsLossless(t *testing.T) {
	if a := Air.Alpha(f915); a != 0 {
		t.Fatalf("air alpha = %v, want 0", a)
	}
	if l := Air.LossDBPerCM(f915); l != 0 {
		t.Fatalf("air loss = %v dB/cm, want 0", l)
	}
}

func TestTissueAlphaInPaperRange(t *testing.T) {
	// The paper ([39]) quotes α between 13 and 80 m⁻¹ for tissues, i.e.
	// 1.1–6.9 dB/cm near 1 GHz. Every lossy tissue preset must land there.
	for _, m := range []Medium{Muscle, Skin, StomachWall, GastricFluid, IntestinalFluid, Steak, ChickenBreast} {
		a := m.Alpha(f915)
		if a < 13 || a > 80 {
			t.Errorf("%s: alpha = %v m⁻¹, want within [13, 80]", m.Name, a)
		}
	}
	// Fat and bacon are low-water media: lossy but below muscle.
	if Fat.Alpha(f915) >= Muscle.Alpha(f915) {
		t.Error("fat should attenuate less than muscle")
	}
}

func TestTissueLossDBPerCMRange(t *testing.T) {
	l := Muscle.LossDBPerCM(f915)
	if l < 2.3 || l > 6.9 {
		t.Fatalf("muscle loss = %v dB/cm, want within the paper's 2.3–6.9", l)
	}
}

func TestAlphaIncreasesWithConductivity(t *testing.T) {
	lo := Medium{Name: "lo", EpsilonR: 50, Conductivity: 0.5}
	hi := Medium{Name: "hi", EpsilonR: 50, Conductivity: 2.0}
	if lo.Alpha(f915) >= hi.Alpha(f915) {
		t.Fatal("alpha should grow with conductivity")
	}
}

func TestBetaExceedsFreeSpace(t *testing.T) {
	beta0 := 2 * math.Pi * f915 / C
	for _, m := range Presets() {
		if m.Name == "air" {
			continue
		}
		if m.Beta(f915) <= beta0 {
			t.Errorf("%s: β = %v <= free-space β₀ = %v", m.Name, m.Beta(f915), beta0)
		}
	}
}

func TestImpedanceOrdering(t *testing.T) {
	// Wave impedance falls with permittivity: air > fat > muscle.
	air := Air.Impedance(f915)
	fat := Fat.Impedance(f915)
	muscle := Muscle.Impedance(f915)
	if !(air > fat && fat > muscle) {
		t.Fatalf("impedance ordering wrong: air=%v fat=%v muscle=%v", air, fat, muscle)
	}
	if math.Abs(air-Eta0) > 0.1 {
		t.Fatalf("air impedance = %v, want η₀ = %v", air, Eta0)
	}
}

func TestRefractiveIndexNearSqrtEps(t *testing.T) {
	// For low-loss media n ≈ √εr.
	n := Fat.RefractiveIndex(f915)
	want := math.Sqrt(Fat.EpsilonR)
	if math.Abs(n-want)/want > 0.05 {
		t.Fatalf("fat n = %v, want ≈ %v", n, want)
	}
}

func TestAirTissueBoundaryLossInPaperRange(t *testing.T) {
	// Paper §2.2.1: boundary reflection costs ≈3–5 dB near 1 GHz.
	for _, m := range []Medium{Muscle, Skin, StomachWall, Water} {
		tp := TransmittancePower(Air, m, f915)
		lossDB := -10 * math.Log10(tp)
		if lossDB < 2 || lossDB > 6 {
			t.Errorf("air→%s boundary loss = %.2f dB, want ≈3–5", m.Name, lossDB)
		}
	}
}

func TestTransmittancePlusReflectanceIsOne(t *testing.T) {
	pairs := [][2]Medium{{Air, Muscle}, {Fat, Muscle}, {Air, Water}, {Skin, Fat}}
	for _, p := range pairs {
		tp := TransmittancePower(p[0], p[1], f915)
		rp := ReflectancePower(p[0], p[1], f915)
		if math.Abs(tp+rp-1) > 1e-12 {
			t.Errorf("%s→%s: T+R = %v, want 1", p[0].Name, p[1].Name, tp+rp)
		}
	}
}

func TestTransmittanceSameMediumIsUnity(t *testing.T) {
	if tp := TransmittancePower(Muscle, Muscle, f915); math.Abs(tp-1) > 1e-12 {
		t.Fatalf("same-medium transmittance = %v, want 1", tp)
	}
	if ta := TransmittanceAmplitude(Air, Air, f915); math.Abs(ta-1) > 1e-12 {
		t.Fatalf("air→air amplitude coefficient = %v, want 1", ta)
	}
}

func TestTransmittancePowerSymmetric(t *testing.T) {
	// Power transmittance is reciprocal even though the amplitude
	// coefficient is not.
	ab := TransmittancePower(Air, Muscle, f915)
	ba := TransmittancePower(Muscle, Air, f915)
	if math.Abs(ab-ba) > 1e-12 {
		t.Fatalf("power transmittance not reciprocal: %v vs %v", ab, ba)
	}
}

func TestMediumByName(t *testing.T) {
	m, ok := MediumByName("muscle")
	if !ok || m.Name != "muscle" {
		t.Fatal("muscle preset not found")
	}
	if _, ok := MediumByName("adamantium"); ok {
		t.Fatal("unknown medium reported found")
	}
}

func TestMediumValidate(t *testing.T) {
	if err := (Medium{Name: "bad", EpsilonR: 0.5}).Validate(); err == nil {
		t.Fatal("εr < 1 accepted")
	}
	if err := (Medium{Name: "bad", EpsilonR: 2, Conductivity: -1}).Validate(); err == nil {
		t.Fatal("negative conductivity accepted")
	}
	for _, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", m.Name, err)
		}
	}
}

func TestQuickTransmittanceBounded(t *testing.T) {
	f := func(e1, e2 uint8, s1, s2 uint8) bool {
		a := Medium{Name: "a", EpsilonR: 1 + float64(e1)/4, Conductivity: float64(s1) / 100}
		b := Medium{Name: "b", EpsilonR: 1 + float64(e2)/4, Conductivity: float64(s2) / 100}
		tp := TransmittancePower(a, b, f915)
		return tp > 0 && tp <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWavelength915(t *testing.T) {
	l := Wavelength(f915)
	if math.Abs(l-0.3276) > 0.001 {
		t.Fatalf("λ(915 MHz) = %v m, want ≈0.3276", l)
	}
}
