package circuit

import (
	"fmt"
	"math"
)

// Rectifier is an N-stage charge-pump energy harvester (Dickson/Greinacher
// topology): each stage is the two-diode, two-capacitor voltage doubler of
// the paper's Fig. 1, and stages multiply the previous stage's output.
type Rectifier struct {
	// Stages is N in Eq. 1.
	Stages int
	// Vth is the per-diode threshold voltage.
	Vth float64
	// StageCap is the per-stage capacitance in farads (default 10 pF).
	StageCap float64
	// SeriesResistance models the diode on-resistance in ohms
	// (default 1 kΩ).
	SeriesResistance float64
}

// NewRectifier returns an N-stage rectifier with the given diode threshold
// and sensible IC-process defaults.
func NewRectifier(stages int, vth float64) (*Rectifier, error) {
	if stages < 1 {
		return nil, fmt.Errorf("circuit: rectifier needs >= 1 stage, got %d", stages)
	}
	if vth < 0 {
		return nil, fmt.Errorf("circuit: negative threshold %v", vth)
	}
	return &Rectifier{Stages: stages, Vth: vth, StageCap: 10e-12, SeriesResistance: 1e3}, nil
}

// SteadyStateVoltage returns the paper's Eq. 1: the asymptotic DC output
// for a sustained RF amplitude vs,
//
//	V_DC = N·(V_s − V_th), floored at zero.
//
// The doubling inside each stage and the inter-stage transfer losses are
// absorbed into the effective per-stage term exactly as the paper does.
func (r *Rectifier) SteadyStateVoltage(vs float64) float64 {
	v := vs - r.Vth
	if v <= 0 {
		return 0
	}
	return float64(r.Stages) * v
}

// MinimumAmplitude returns the smallest RF amplitude that produces any
// output — the threshold limit itself.
func (r *Rectifier) MinimumAmplitude() float64 { return r.Vth }

// Efficiency returns the RF→DC conversion efficiency for a sustained
// sinusoidal amplitude vs, modeled from the conduction angle: the harvester
// only passes the part of the cycle above threshold, and what it passes
// loses Vth per diode drop. It is 0 below threshold and approaches 1 as
// vs ≫ Vth — the qualitative curve behind the paper's Fig. 4 discussion.
func (r *Rectifier) Efficiency(vs float64) float64 {
	if vs <= r.Vth {
		return 0
	}
	// Fraction of input power delivered: ((vs−vth)/vs)² weighted by the
	// conduction window.
	frac := (vs - r.Vth) / vs
	return frac * frac * 2 * ConductionAngle(vs, r.Vth)
}

// StageState is the capacitor state of one doubler stage during transient
// simulation.
type StageState struct {
	// VC1 is the series (flying) capacitor voltage.
	VC1 float64
	// VC2 is the stage output capacitor voltage.
	VC2 float64
}

// Transient simulates the rectifier sample-by-sample against an input RF
// voltage waveform vin sampled at rate fs, with a resistive load rl (ohms)
// on the final stage (use math.Inf(1) for open circuit). It returns the
// output-voltage waveform, same length as vin.
//
// Each stage is the Fig. 1 circuit with piecewise-linear threshold diodes:
// D1 clamps the flying-capacitor node on negative half-cycles, D2 transfers
// charge to the stage output on positive half-cycles. Stage k is driven by
// stage k−1's output.
func (r *Rectifier) Transient(vin []float64, fs float64, rl float64) ([]float64, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("circuit: sample rate %v <= 0", fs)
	}
	if rl <= 0 {
		return nil, fmt.Errorf("circuit: load resistance %v <= 0", rl)
	}
	dt := 1 / fs
	cap := r.StageCap
	if cap <= 0 {
		cap = 10e-12
	}
	rd := r.SeriesResistance
	if rd <= 0 {
		rd = 1e3
	}
	stages := make([]StageState, r.Stages)
	out := make([]float64, len(vin))
	for i, v := range vin {
		// Villard cascade: every stage's flying capacitor rides the same
		// AC rail; stage s's clamp diode D1 references the previous
		// stage's DC output (ground for stage 0), so DC levels stack.
		prev := 0.0
		for s := range stages {
			st := &stages[s]
			// Node between C1 and the diodes.
			node := v + st.VC1
			// D1: prev-stage output → node when node < prev − Vth
			// (charges C1 up toward the stacked reference).
			if ref := prev - r.Vth; node < ref {
				i1 := (ref - node) / rd
				st.VC1 += i1 * dt / cap
				node = v + st.VC1
			}
			// D2: node → C2 when node > VC2 + Vth.
			if node > st.VC2+r.Vth {
				i2 := (node - st.VC2 - r.Vth) / rd
				st.VC2 += i2 * dt / cap
				st.VC1 -= i2 * dt / cap
			}
			prev = st.VC2
		}
		// Load discharge on the final stage.
		last := &stages[len(stages)-1]
		if !math.IsInf(rl, 1) {
			last.VC2 -= last.VC2 / (rl * cap) * dt
			if last.VC2 < 0 {
				last.VC2 = 0
			}
		}
		out[i] = last.VC2
	}
	return out, nil
}

// HarvestableEnvelopePower returns the instantaneous power (watts) the
// harvester can extract when the RF envelope amplitude is v across an
// input resistance rin: zero below threshold, otherwise the above-threshold
// fraction of the available power scaled by the conduction-angle
// efficiency. This behavioral model is what lets the simulator integrate
// harvested energy over a CIB envelope without circuit-rate time stepping.
func (r *Rectifier) HarvestableEnvelopePower(v, rin float64) float64 {
	if v <= r.Vth || rin <= 0 {
		return 0
	}
	avail := v * v / (2 * rin)
	return avail * r.Efficiency(v)
}

// HarvestEnergy integrates HarvestableEnvelopePower over an envelope
// waveform sampled at fs, returning joules.
func (r *Rectifier) HarvestEnergy(envelope []float64, fs, rin float64) float64 {
	if fs <= 0 {
		return 0
	}
	dt := 1 / fs
	var e float64
	for _, v := range envelope {
		e += r.HarvestableEnvelopePower(v, rin) * dt
	}
	return e
}
