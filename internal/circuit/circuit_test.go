package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdealDiodeCurve(t *testing.T) {
	d := IdealDiode{}
	if d.Current(-1) != 0 {
		t.Fatal("ideal diode conducts in reverse")
	}
	if d.Current(0.1) <= 0 {
		t.Fatal("ideal diode blocks forward current")
	}
	if d.Threshold() != 0 {
		t.Fatal("ideal diode has nonzero threshold")
	}
}

func TestThresholdDiodeCurve(t *testing.T) {
	d := ThresholdDiode{Vth: 0.3}
	if d.Current(0.29) != 0 {
		t.Fatal("threshold diode conducts below Vth")
	}
	if d.Current(0.31) <= 0 {
		t.Fatal("threshold diode blocks above Vth")
	}
	if d.Current(-5) != 0 {
		t.Fatal("threshold diode conducts in reverse")
	}
	if d.Threshold() != 0.3 {
		t.Fatal("wrong threshold")
	}
}

func TestShockleyDiodeMonotone(t *testing.T) {
	d := ShockleyDiode{Is: 1e-8, N: 1.2}
	prev := d.Current(-0.2)
	for v := -0.19; v <= 0.6; v += 0.01 {
		cur := d.Current(v)
		if cur < prev {
			t.Fatalf("Shockley I-V not monotone at v=%v", v)
		}
		prev = cur
	}
	// Turn-on voltage in the usual Schottky range.
	th := d.Threshold()
	if th < 0.1 || th > 0.6 {
		t.Fatalf("Shockley threshold = %v V, want 0.1–0.6", th)
	}
	// Overflow clamp: absurd voltage must not return Inf.
	if math.IsInf(d.Current(1e6), 1) {
		t.Fatal("Shockley current overflows")
	}
}

func TestIVCurveFig2Shape(t *testing.T) {
	// Reproduces Fig. 2: the realistic diode's knee is displaced to Vth.
	volts, ideal, err := IVCurve(IdealDiode{}, -0.2, 0.6, 81)
	if err != nil {
		t.Fatal(err)
	}
	_, real_, err := IVCurve(ThresholdDiode{Vth: 0.3}, -0.2, 0.6, 81)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range volts {
		switch {
		case v <= 0:
			if ideal[i] != 0 || real_[i] != 0 {
				t.Fatalf("reverse current at v=%v", v)
			}
		case v > 0 && v <= 0.3:
			if ideal[i] <= 0 {
				t.Fatalf("ideal diode off at v=%v", v)
			}
			if real_[i] != 0 {
				t.Fatalf("realistic diode on below threshold at v=%v", v)
			}
		case v > 0.31:
			if real_[i] <= 0 {
				t.Fatalf("realistic diode off above threshold at v=%v", v)
			}
		}
	}
}

func TestIVCurveErrors(t *testing.T) {
	if _, _, err := IVCurve(IdealDiode{}, 0, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, _, err := IVCurve(IdealDiode{}, 1, 0, 10); err == nil {
		t.Fatal("inverted sweep accepted")
	}
}

func TestConductionAngleRegimes(t *testing.T) {
	// Fig. 4's three regimes.
	const vth = 0.3
	large := ConductionAngle(3.0, vth)  // close to TX in air
	small := ConductionAngle(0.45, vth) // shallow tissue
	zero := ConductionAngle(0.2, vth)   // deep tissue
	if !(large > small && small > 0) {
		t.Fatalf("conduction angles not ordered: %v, %v", large, small)
	}
	if zero != 0 {
		t.Fatalf("below-threshold conduction angle = %v, want 0", zero)
	}
	if large > 0.5 {
		t.Fatalf("conduction angle %v exceeds half-cycle limit", large)
	}
	// Thresholdless diode conducts the whole positive half-cycle.
	if got := ConductionAngle(1, 0); got != 0.5 {
		t.Fatalf("zero-threshold conduction angle = %v, want 0.5", got)
	}
	if got := ConductionAngle(0, 0.3); got != 0 {
		t.Fatalf("zero-amplitude conduction angle = %v, want 0", got)
	}
}

func TestSteadyStateVoltageEq1(t *testing.T) {
	r, err := NewRectifier(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 1: V_DC = N·(V_s − V_th).
	if got := r.SteadyStateVoltage(0.5); math.Abs(got-4*0.2) > 1e-12 {
		t.Fatalf("V_DC = %v, want 0.8", got)
	}
	if got := r.SteadyStateVoltage(0.3); got != 0 {
		t.Fatalf("V_DC at threshold = %v, want 0", got)
	}
	if got := r.SteadyStateVoltage(0.1); got != 0 {
		t.Fatalf("V_DC below threshold = %v, want 0", got)
	}
}

func TestNewRectifierValidation(t *testing.T) {
	if _, err := NewRectifier(0, 0.3); err == nil {
		t.Fatal("0 stages accepted")
	}
	if _, err := NewRectifier(2, -0.1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestEfficiencyShape(t *testing.T) {
	r, _ := NewRectifier(2, 0.3)
	if r.Efficiency(0.25) != 0 {
		t.Fatal("efficiency below threshold nonzero")
	}
	// Efficiency grows with drive amplitude — the paper's core observation
	// that harvesters favor large input voltages.
	e1, e2, e3 := r.Efficiency(0.4), r.Efficiency(0.8), r.Efficiency(3)
	if !(e1 < e2 && e2 < e3) {
		t.Fatalf("efficiency not increasing: %v %v %v", e1, e2, e3)
	}
	if e3 > 1 {
		t.Fatalf("efficiency %v exceeds 1", e3)
	}
}

func TestTransientDoublerConverges(t *testing.T) {
	// A single-stage doubler driven well above threshold converges near
	// 2·(Vs−Vth) into an open circuit (Fig. 1 analysis).
	r, _ := NewRectifier(1, 0.3)
	const fs = 100e6
	const fc = 1e6
	const vs = 1.0
	n := 20000
	vin := make([]float64, n)
	for i := range vin {
		vin[i] = vs * math.Sin(2*math.Pi*fc*float64(i)/fs)
	}
	out, err := r.Transient(vin, fs, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	final := out[len(out)-1]
	want := 2 * (vs - 0.3)
	if math.Abs(final-want) > 0.15*want {
		t.Fatalf("doubler settled at %v V, want ≈%v", final, want)
	}
}

func TestTransientBelowThresholdHarvestsNothing(t *testing.T) {
	r, _ := NewRectifier(1, 0.3)
	const fs = 100e6
	vin := make([]float64, 5000)
	for i := range vin {
		vin[i] = 0.25 * math.Sin(2*math.Pi*1e6*float64(i)/fs)
	}
	out, err := r.Transient(vin, fs, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if final := out[len(out)-1]; final > 1e-6 {
		t.Fatalf("below-threshold drive produced %v V", final)
	}
}

func TestTransientMultiStageExceedsSingle(t *testing.T) {
	const fs, fc, vs = 100e6, 1e6, 1.0
	n := 40000
	vin := make([]float64, n)
	for i := range vin {
		vin[i] = vs * math.Sin(2*math.Pi*fc*float64(i)/fs)
	}
	r1, _ := NewRectifier(1, 0.3)
	r3, _ := NewRectifier(3, 0.3)
	o1, err := r1.Transient(vin, fs, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	o3, err := r3.Transient(vin, fs, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if o3[n-1] <= o1[n-1]*1.5 {
		t.Fatalf("3-stage output %v not meaningfully above 1-stage %v", o3[n-1], o1[n-1])
	}
}

func TestTransientLoadDischarges(t *testing.T) {
	r, _ := NewRectifier(1, 0.3)
	const fs = 100e6
	n := 20000
	vin := make([]float64, n)
	for i := 0; i < n/2; i++ {
		vin[i] = math.Sin(2 * math.Pi * 1e6 * float64(i) / fs)
	}
	// Second half: no drive; the load must pull the output down.
	out, err := r.Transient(vin, fs, 50e3)
	if err != nil {
		t.Fatal(err)
	}
	mid, end := out[n/2-1], out[n-1]
	if end >= mid {
		t.Fatalf("output did not discharge: mid %v, end %v", mid, end)
	}
}

func TestTransientErrors(t *testing.T) {
	r, _ := NewRectifier(1, 0.3)
	if _, err := r.Transient(nil, 0, 1e3); err == nil {
		t.Fatal("zero sample rate accepted")
	}
	if _, err := r.Transient(nil, 1e6, 0); err == nil {
		t.Fatal("zero load accepted")
	}
}

func TestHarvestEnergyPeaksVsFlat(t *testing.T) {
	// The CIB premise in miniature: a peaky envelope with the same mean
	// power as a flat sub-threshold envelope harvests energy where the
	// flat one cannot.
	r, _ := NewRectifier(2, 0.3)
	const fs = 1e6
	n := 10000
	flat := make([]float64, n)
	peaky := make([]float64, n)
	for i := range flat {
		flat[i] = 0.25
	}
	// Same mean square: peaks of 0.25·√10 ≈ 0.79 for 1/10 of the time.
	for i := 0; i < n; i += 10 {
		peaky[i] = 0.25 * math.Sqrt(10)
	}
	eFlat := r.HarvestEnergy(flat, fs, 50)
	ePeaky := r.HarvestEnergy(peaky, fs, 50)
	if eFlat != 0 {
		t.Fatalf("flat sub-threshold envelope harvested %v J", eFlat)
	}
	if ePeaky <= 0 {
		t.Fatal("peaky envelope harvested nothing")
	}
}

func TestHarvestableEnvelopePowerBounds(t *testing.T) {
	r, _ := NewRectifier(2, 0.3)
	if p := r.HarvestableEnvelopePower(0.2, 50); p != 0 {
		t.Fatalf("sub-threshold power = %v", p)
	}
	if p := r.HarvestableEnvelopePower(1, -5); p != 0 {
		t.Fatalf("negative rin power = %v", p)
	}
	v := 2.0
	avail := v * v / (2 * 50.0)
	if p := r.HarvestableEnvelopePower(v, 50); p <= 0 || p > avail {
		t.Fatalf("power %v outside (0, %v]", p, avail)
	}
}

func TestStorageLifecycle(t *testing.T) {
	s, err := NewStorage(10e-9, 1.0, 3e-9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("empty storage reports ready")
	}
	if s.Operate() {
		t.Fatal("empty storage operated")
	}
	s.Deposit(6e-9) // V = √(2·6e-9/10e-9) ≈ 1.1 V, above operating voltage
	if !s.Ready() {
		t.Fatalf("storage with %v J at %v V not ready", s.Stored(), s.Voltage())
	}
	if !s.Operate() {
		t.Fatal("ready storage refused to operate")
	}
	if math.Abs(s.Stored()-3e-9) > 1e-15 {
		t.Fatalf("stored after operate = %v, want 3e-9", s.Stored())
	}
	s.Drain()
	if s.Stored() != 0 || s.Voltage() != 0 {
		t.Fatal("drain did not empty storage")
	}
}

func TestStorageOvervoltageClamp(t *testing.T) {
	s, _ := NewStorage(10e-9, 1.0, 3e-9)
	s.Deposit(1)            // absurd deposit
	maxE := 0.5 * 10e-9 * 4 // C·(2V)²/2
	if s.Stored() > maxE+1e-15 {
		t.Fatalf("stored %v exceeds clamp %v", s.Stored(), maxE)
	}
	s.Deposit(-1) // ignored
	if s.Stored() > maxE+1e-15 {
		t.Fatal("negative deposit changed state")
	}
}

func TestStorageValidation(t *testing.T) {
	cases := [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for _, c := range cases {
		if _, err := NewStorage(c[0], c[1], c[2]); err == nil {
			t.Fatalf("NewStorage(%v) accepted", c)
		}
	}
}

func TestQuickSteadyStateMonotone(t *testing.T) {
	r, _ := NewRectifier(3, 0.3)
	f := func(a, b uint8) bool {
		va, vb := float64(a)/100, float64(b)/100
		if va > vb {
			va, vb = vb, va
		}
		return r.SteadyStateVoltage(va) <= r.SteadyStateVoltage(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConductionAngleBounded(t *testing.T) {
	f := func(vsRaw, vthRaw uint8) bool {
		vs := float64(vsRaw) / 50
		vth := float64(vthRaw) / 200
		w := ConductionAngle(vs, vth)
		return w >= 0 && w <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransient(b *testing.B) {
	r, _ := NewRectifier(4, 0.3)
	const fs = 100e6
	vin := make([]float64, 10000)
	for i := range vin {
		vin[i] = math.Sin(2 * math.Pi * 1e6 * float64(i) / fs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Transient(vin, fs, 100e3); err != nil {
			b.Fatal(err)
		}
	}
}
