package circuit

import (
	"fmt"
	"math"
)

// Storage is the energy reservoir of a duty-cycled battery-free sensor: a
// capacitor that accumulates harvested charge until there is enough to run
// the sensor's logic for one operation, then dumps it (paper §2.3: "duty
// cycling the sensor's operation so that it may accumulate sufficient
// energy before communication or actuation").
type Storage struct {
	// Capacitance in farads.
	Capacitance float64
	// OperatingVoltage is the minimum voltage at which the logic runs.
	OperatingVoltage float64
	// OperationEnergy is the energy one operation (e.g. decoding a query
	// and backscattering a reply) consumes, in joules.
	OperationEnergy float64

	stored float64 // joules
}

// NewStorage validates and builds a Storage.
func NewStorage(capacitance, operatingVoltage, operationEnergy float64) (*Storage, error) {
	if capacitance <= 0 {
		return nil, fmt.Errorf("circuit: capacitance %v <= 0", capacitance)
	}
	if operatingVoltage <= 0 {
		return nil, fmt.Errorf("circuit: operating voltage %v <= 0", operatingVoltage)
	}
	if operationEnergy <= 0 {
		return nil, fmt.Errorf("circuit: operation energy %v <= 0", operationEnergy)
	}
	return &Storage{
		Capacitance:      capacitance,
		OperatingVoltage: operatingVoltage,
		OperationEnergy:  operationEnergy,
	}, nil
}

// Deposit adds harvested energy (joules), saturating at the capacitor's
// capacity at twice the operating voltage (a crude over-voltage clamp).
func (s *Storage) Deposit(joules float64) {
	if joules <= 0 {
		return
	}
	s.stored += joules
	maxV := 2 * s.OperatingVoltage
	maxE := 0.5 * s.Capacitance * maxV * maxV
	if s.stored > maxE {
		s.stored = maxE
	}
}

// Stored returns the currently stored energy in joules.
func (s *Storage) Stored() float64 { return s.stored }

// Voltage returns the capacitor voltage √(2E/C).
func (s *Storage) Voltage() float64 {
	if s.stored <= 0 {
		return 0
	}
	return math.Sqrt(2 * s.stored / s.Capacitance)
}

// Ready reports whether the sensor has both reached its operating voltage
// and banked enough energy for one operation.
func (s *Storage) Ready() bool {
	return s.Voltage() >= s.OperatingVoltage && s.stored >= s.OperationEnergy
}

// Operate spends one operation's energy. It returns false (and spends
// nothing) when the sensor is not Ready.
func (s *Storage) Operate() bool {
	if !s.Ready() {
		return false
	}
	s.stored -= s.OperationEnergy
	if s.stored < 0 {
		s.stored = 0
	}
	return true
}

// Drain empties the reservoir (a power-off or brown-out event).
func (s *Storage) Drain() { s.stored = 0 }
