// Package circuit models the analog front end of a battery-free sensor:
// diodes, the multi-stage charge-pump rectifier (energy harvester), and
// the storage/duty-cycling logic built on top of it.
//
// This is the substrate behind the paper's threshold effect (§2.1.1): a
// practical diode conducts only above a threshold voltage V_th, so an
// N-stage harvester delivers V_DC = N(V_s − V_th) (Eq. 1) and harvests
// nothing at all when the RF amplitude stays below V_th. CIB exists to
// push the *peak* amplitude past that threshold.
package circuit

import (
	"fmt"
	"math"
)

// Diode is a two-terminal rectifying element described by its I-V curve.
type Diode interface {
	// Current returns the diode current in amperes at forward voltage v.
	Current(v float64) float64
	// Threshold returns the effective turn-on voltage in volts.
	Threshold() float64
}

// IdealDiode conducts any forward current at zero voltage drop and blocks
// reverse current entirely — the left curve of the paper's Fig. 2.
type IdealDiode struct {
	// OnConductance is the forward slope in siemens (default 1 S).
	OnConductance float64
}

// Current implements Diode.
func (d IdealDiode) Current(v float64) float64 {
	if v <= 0 {
		return 0
	}
	g := d.OnConductance
	if g == 0 {
		g = 1
	}
	return g * v
}

// Threshold implements Diode; an ideal diode has none.
func (IdealDiode) Threshold() float64 { return 0 }

// ThresholdDiode is the piecewise-linear "realistic" diode of Fig. 2's
// right curve: zero current below Vth, linear conduction above it.
type ThresholdDiode struct {
	// Vth is the turn-on voltage; standard IC processes land between
	// 200 mV and 400 mV (paper §2.1.1).
	Vth float64
	// OnConductance is the forward slope above threshold (default 1 S).
	OnConductance float64
}

// Current implements Diode.
func (d ThresholdDiode) Current(v float64) float64 {
	if v <= d.Vth {
		return 0
	}
	g := d.OnConductance
	if g == 0 {
		g = 1
	}
	return g * (v - d.Vth)
}

// Threshold implements Diode.
func (d ThresholdDiode) Threshold() float64 { return d.Vth }

// ShockleyDiode is the exponential junction model
// I = I_s·(e^{v/(n·V_T)} − 1), the smooth curve practical diodes follow.
type ShockleyDiode struct {
	// Is is the saturation current (A); typical Schottky RF detector
	// diodes are ~1e-8 A.
	Is float64
	// N is the ideality factor (1..2).
	N float64
	// VT is the thermal voltage (V); 25.85 mV at 300 K when zero.
	VT float64
}

// Current implements Diode.
func (d ShockleyDiode) Current(v float64) float64 {
	vt := d.VT
	if vt == 0 {
		vt = 0.02585
	}
	n := d.N
	if n == 0 {
		n = 1
	}
	// Clamp the exponent to avoid overflow on absurd inputs.
	x := v / (n * vt)
	if x > 80 {
		x = 80
	}
	return d.Is * (math.Exp(x) - 1)
}

// Threshold implements Diode: the conventional turn-on point where the
// exponential reaches 1 mA.
func (d ShockleyDiode) Threshold() float64 {
	vt := d.VT
	if vt == 0 {
		vt = 0.02585
	}
	n := d.N
	if n == 0 {
		n = 1
	}
	if d.Is <= 0 {
		return 0
	}
	return n * vt * math.Log(1e-3/d.Is+1)
}

// IVCurve samples a diode's I-V relationship at points evenly spaced over
// [vMin, vMax]; it reproduces the paper's Fig. 2. The returned slices have
// n entries each.
func IVCurve(d Diode, vMin, vMax float64, n int) (volts, amps []float64, err error) {
	if n < 2 || vMax <= vMin {
		return nil, nil, fmt.Errorf("circuit: bad IV sweep [%v,%v] n=%d", vMin, vMax, n)
	}
	volts = make([]float64, n)
	amps = make([]float64, n)
	for i := 0; i < n; i++ {
		v := vMin + (vMax-vMin)*float64(i)/float64(n-1)
		volts[i] = v
		amps[i] = d.Current(v)
	}
	return volts, amps, nil
}

// ConductionAngle returns the fraction of an RF cycle during which a
// sinusoid of amplitude vs forward-biases a diode with threshold vth — the
// ω highlighted in the paper's Fig. 4. It is 0 when vs <= vth (the
// deep-tissue regime where no energy can be harvested) and approaches 1/2
// as vs ≫ vth.
func ConductionAngle(vs, vth float64) float64 {
	if vs <= vth || vs <= 0 {
		return 0
	}
	if vth <= 0 {
		return 0.5
	}
	// The diode conducts while vs·cos(θ) > vth: a window of 2·acos(vth/vs)
	// out of 2π.
	return math.Acos(vth/vs) / math.Pi
}
