package gen2

import (
	"fmt"
)

// RN16Reply is the tag's slot reply: a bare 16-bit random number, no CRC.
// Decoding the RN16 is IVN's range/depth success criterion ("We determine
// the maximum range (depth) as the one where the reader can decode the
// tag's RN16", paper §6.1.2).
type RN16Reply struct {
	RN16 uint16
}

// AppendBits serializes the reply payload (preamble is added by the
// line-coding layer).
func (r *RN16Reply) AppendBits(dst Bits) Bits {
	return dst.AppendUint(uint64(r.RN16), 16)
}

// DecodeFromBits parses the 16 payload bits.
func (r *RN16Reply) DecodeFromBits(b Bits) error {
	if len(b) != 16 {
		return fmt.Errorf("%w: RN16 reply needs 16 bits, got %d", ErrShortFrame, len(b))
	}
	v, err := b.Uint(0, 16)
	if err != nil {
		return err
	}
	r.RN16 = uint16(v)
	return nil
}

// String implements fmt.Stringer.
func (r *RN16Reply) String() string { return fmt.Sprintf("RN16Reply{%#04x}", r.RN16) }

// EPCReply is the tag's acknowledged reply: {PC, EPC, CRC-16}.
type EPCReply struct {
	// PC is the 16-bit protocol-control word; its top 5 bits give the EPC
	// length in words.
	PC uint16
	// EPC is the tag identifier, a whole number of 16-bit words.
	EPC []byte
}

// NewEPCReply builds a reply for the given EPC, deriving the PC word's
// length field. The EPC must be a whole number of 16-bit words (an even
// byte count) between 1 and 31 words.
func NewEPCReply(epc []byte) (*EPCReply, error) {
	if len(epc)%2 != 0 {
		return nil, fmt.Errorf("gen2: EPC length %d bytes is not word-aligned", len(epc))
	}
	words := len(epc) / 2
	if words < 1 || words > 31 {
		return nil, fmt.Errorf("gen2: EPC length %d words out of [1,31]", words)
	}
	return &EPCReply{
		PC:  uint16(words) << 11,
		EPC: append([]byte(nil), epc...),
	}, nil
}

// AppendBits serializes {PC, EPC, CRC16}.
func (e *EPCReply) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(uint64(e.PC), 16)
	dst = dst.AppendBits(BitsFromBytes(e.EPC))
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits parses and CRC-checks a {PC, EPC, CRC16} frame.
func (e *EPCReply) DecodeFromBits(b Bits) error {
	if len(b) < 16+16+16 {
		return fmt.Errorf("%w: EPC reply needs >= 48 bits, got %d", ErrShortFrame, len(b))
	}
	pc, err := b.Uint(0, 16)
	if err != nil {
		return err
	}
	words := int(pc >> 11)
	want := 16 + words*16 + 16
	if len(b) != want {
		return fmt.Errorf("%w: PC declares %d words (%d bits), frame has %d", ErrShortFrame, words, want, len(b))
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: EPC reply CRC-16", ErrBadCRC)
	}
	e.PC = uint16(pc)
	epcBits := b[16 : 16+words*16]
	packed, err := epcBits.Bytes()
	if err != nil {
		return err
	}
	e.EPC = packed
	return nil
}

// String implements fmt.Stringer.
func (e *EPCReply) String() string {
	return fmt.Sprintf("EPCReply{PC=%#04x EPC=%x}", e.PC, e.EPC)
}
