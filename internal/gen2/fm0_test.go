package gen2

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func TestFM0PreambleMatchesPaper(t *testing.T) {
	// The paper correlates against the known 12-bit preamble
	// "110100100011" (FM0 encoding), §6.2.
	var sb strings.Builder
	for _, b := range FM0PreambleHalfBits {
		sb.WriteByte('0' + b)
	}
	if sb.String() != FM0PreambleString {
		t.Fatalf("preamble half-bits %q != paper's %q", sb.String(), FM0PreambleString)
	}
}

func TestFM0PreambleEncodesSymbols(t *testing.T) {
	// The half-bit pattern must be the FM0 rendering of 1,0,1,0,v,1: the
	// violation symbol (index 4) does NOT invert at its boundary; all
	// other symbols do.
	hb := FM0PreambleHalfBits
	for sym := 0; sym < 6; sym++ {
		h1, h2 := hb[2*sym], hb[2*sym+1]
		isOne := h1 == h2
		switch sym {
		case 0, 2, 5: // data-1 symbols
			if !isOne {
				t.Fatalf("preamble symbol %d should be 1", sym)
			}
		case 1, 3: // data-0 symbols
			if isOne {
				t.Fatalf("preamble symbol %d should be 0", sym)
			}
		case 4: // violation: looks like 1 but breaks boundary inversion
			if !isOne {
				t.Fatal("violation symbol halves should agree")
			}
			if hb[8] == hb[7] != true {
				// boundary NOT inverted: hb[8] equals hb[7]
				t.Fatal("violation symbol must not invert at its boundary")
			}
		}
		if sym > 0 && sym != 4 {
			if hb[2*sym] == hb[2*sym-1] {
				t.Fatalf("missing boundary inversion before symbol %d", sym)
			}
		}
	}
}

func TestFM0EncodeDecodeRoundTrip(t *testing.T) {
	payload, _ := ParseBits("1011001110001111")
	enc := FM0Encoder{SamplesPerHalfBit: 8}
	wave, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	dec := FM0Decoder{SamplesPerHalfBit: 8}
	res, err := dec.DecodeFrame(wave, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Payload.Equal(payload) {
		t.Fatalf("decoded %s, want %s", res.Payload, payload)
	}
	if res.Correlation < 0.999 {
		t.Fatalf("clean-channel correlation = %v", res.Correlation)
	}
	if res.Offset != 0 {
		t.Fatalf("preamble offset = %d, want 0", res.Offset)
	}
}

func TestFM0DecodeWithLeadingNoiseAndOffset(t *testing.T) {
	r := rng.New(3)
	payload, _ := ParseBits("1100101001010011")
	enc := FM0Encoder{SamplesPerHalfBit: 10}
	wave, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend low-level noise and append tail noise, add in-band noise.
	pre := make([]float64, 137)
	for i := range pre {
		pre[i] = 0.1 * r.NormFloat64()
	}
	full := append(pre, wave...)
	for i := range full {
		full[i] += 0.15 * r.NormFloat64()
	}
	dec := FM0Decoder{SamplesPerHalfBit: 10, CorrelationThreshold: 0.8}
	res, err := dec.DecodeFrame(full, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offset != len(pre) {
		t.Fatalf("offset = %d, want %d", res.Offset, len(pre))
	}
	if !res.Payload.Equal(payload) {
		t.Fatalf("decoded %s, want %s", res.Payload, payload)
	}
}

func TestFM0RejectsPureNoise(t *testing.T) {
	r := rng.New(4)
	noise := make([]float64, 4000)
	for i := range noise {
		noise[i] = r.NormFloat64()
	}
	dec := FM0Decoder{SamplesPerHalfBit: 10, CorrelationThreshold: 0.8}
	if _, err := dec.DecodeFrame(noise, 16); err == nil {
		t.Fatal("decoder accepted pure noise")
	}
}

func TestFM0BoundaryInversionProperty(t *testing.T) {
	// FM0 invariant: the level always inverts at a symbol boundary
	// (except inside the preamble violation). Verify across the payload.
	payload, _ := ParseBits("0110100111000101")
	enc := FM0Encoder{SamplesPerHalfBit: 1}
	wave, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Payload starts right after the 12 preamble half-bits.
	for sym := 0; sym <= len(payload); sym++ { // includes dummy bit
		boundary := 12 + 2*sym
		if wave[boundary] == wave[boundary-1] {
			t.Fatalf("no inversion at payload symbol %d boundary", sym)
		}
	}
}

func TestFM0TRextPilot(t *testing.T) {
	payload, _ := ParseBits("1010")
	plain := FM0Encoder{SamplesPerHalfBit: 4}
	ext := FM0Encoder{SamplesPerHalfBit: 4, TRext: true}
	w1, err := plain.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ext.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2)-len(w1) != 12*2*4 {
		t.Fatalf("TRext pilot adds %d samples, want %d", len(w2)-len(w1), 12*2*4)
	}
	// Decoding still works: the correlator finds the preamble after the
	// pilot.
	dec := FM0Decoder{SamplesPerHalfBit: 4}
	res, err := dec.DecodeFrame(w2, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Payload.Equal(payload) {
		t.Fatalf("TRext decode %s, want %s", res.Payload, payload)
	}
}

func TestFM0EncoderValidation(t *testing.T) {
	if _, err := (FM0Encoder{}).Encode(Bits{1}); err == nil {
		t.Fatal("zero samples-per-half-bit accepted")
	}
	if _, err := (FM0Encoder{SamplesPerHalfBit: 4}).Encode(Bits{3}); err == nil {
		t.Fatal("invalid payload bit accepted")
	}
}

func TestFM0DecoderValidation(t *testing.T) {
	if _, err := (FM0Decoder{}).DecodePayload(nil, 1); err == nil {
		t.Fatal("zero samples-per-half-bit accepted")
	}
	d := FM0Decoder{SamplesPerHalfBit: 4}
	if _, err := d.DecodePayload(make([]float64, 7), 1); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := d.DecodeFrame(make([]float64, 3), 1); err == nil {
		t.Fatal("capture shorter than preamble accepted")
	}
}

func TestQuickFM0RoundTrip(t *testing.T) {
	f := func(data []byte, spRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 16 {
			data = data[:16]
		}
		sp := int(spRaw%6) + 2
		payload := BitsFromBytes(data)
		enc := FM0Encoder{SamplesPerHalfBit: sp}
		wave, err := enc.Encode(payload)
		if err != nil {
			return false
		}
		dec := FM0Decoder{SamplesPerHalfBit: sp}
		res, err := dec.DecodeFrame(wave, len(payload))
		if err != nil {
			return false
		}
		return res.Payload.Equal(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMillerRoundTrip(t *testing.T) {
	payload, _ := ParseBits("1011001110001111")
	for _, m := range []int{2, 4, 8} {
		enc := MillerEncoder{M: m, SamplesPerCycle: 4}
		wave, err := enc.Encode(payload)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		dec := MillerDecoder{M: m, SamplesPerCycle: 4}
		off := MillerPayloadOffset(m, 4)
		got, err := dec.DecodePayload(wave[off:], len(payload))
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if !got.Equal(payload) {
			t.Fatalf("M=%d: decoded %s, want %s", m, got, payload)
		}
	}
}

func TestMillerValidation(t *testing.T) {
	if _, err := (MillerEncoder{M: 3, SamplesPerCycle: 4}).Encode(Bits{1}); err == nil {
		t.Fatal("M=3 accepted")
	}
	if _, err := (MillerEncoder{M: 2, SamplesPerCycle: 1}).Encode(Bits{1}); err == nil {
		t.Fatal("1 sample/cycle accepted")
	}
	if _, err := (MillerDecoder{M: 5, SamplesPerCycle: 4}).DecodePayload(nil, 1); err == nil {
		t.Fatal("decoder M=5 accepted")
	}
	if _, err := (MillerDecoder{M: 2, SamplesPerCycle: 4}).DecodePayload(make([]float64, 3), 4); err == nil {
		t.Fatal("short Miller payload accepted")
	}
}

func TestMillerSubcarrierPresent(t *testing.T) {
	// The Miller waveform must contain M cycles per symbol: its dominant
	// spectral content sits at the subcarrier rate, not at the bit rate.
	enc := MillerEncoder{M: 4, SamplesPerCycle: 8}
	payload, _ := ParseBits("00000000")
	wave, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Count zero crossings: with a subcarrier there are ≈2 per cycle.
	crossings := 0
	for i := 1; i < len(wave); i++ {
		if wave[i]*wave[i-1] < 0 {
			crossings++
		}
	}
	symbols := len(wave) / (4 * 8)
	wantMin := symbols * 4 // at least M crossings per symbol
	if crossings < wantMin {
		t.Fatalf("only %d zero crossings over %d symbols; subcarrier missing", crossings, symbols)
	}
}

func TestFM0NoiseToleranceSweep(t *testing.T) {
	// The decoder should survive moderate AWGN; this guards the margin the
	// reader relies on after coherent averaging.
	r := rng.New(9)
	payload, _ := ParseBits("110010100101")
	enc := FM0Encoder{SamplesPerHalfBit: 16}
	clean, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		noisy := make([]float64, len(clean))
		for j := range clean {
			noisy[j] = clean[j] + 0.5*r.NormFloat64()
		}
		dec := FM0Decoder{SamplesPerHalfBit: 16, CorrelationThreshold: 0.7}
		if res, err := dec.DecodeFrame(noisy, len(payload)); err == nil && res.Payload.Equal(payload) {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Fatalf("only %d/%d frames decoded at SNR ≈ 9 dB", ok, trials)
	}
}

func TestFM0LevelsAreBinary(t *testing.T) {
	payload, _ := ParseBits("0101")
	wave, err := FM0Encoder{SamplesPerHalfBit: 3}.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range wave {
		if math.Abs(v) != 1 {
			t.Fatalf("sample %d = %v, want ±1", i, v)
		}
	}
}

func TestFM0DecodePolarityInvariant(t *testing.T) {
	// A backscatter link's sign is set by the unknown channel phase; the
	// decoder must accept either polarity.
	payload, _ := ParseBits("1100101001010011")
	enc := FM0Encoder{SamplesPerHalfBit: 8}
	wave, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	flipped := make([]float64, len(wave))
	for i, v := range wave {
		flipped[i] = -v
	}
	dec := FM0Decoder{SamplesPerHalfBit: 8}
	res, err := dec.DecodeFrame(flipped, len(payload))
	if err != nil {
		t.Fatalf("inverted-polarity decode failed: %v", err)
	}
	if !res.Payload.Equal(payload) {
		t.Fatalf("inverted decode %s, want %s", res.Payload, payload)
	}
	if res.Correlation < 0.999 {
		t.Fatalf("inverted correlation %v", res.Correlation)
	}
}
