package gen2

import (
	"math"
	"testing"

	"ivn/internal/rng"
)

const pieFS = 8e6 // 8 MS/s envelope rate

func TestPIEQueryRoundTrip(t *testing.T) {
	p := DefaultPIE(pieFS)
	q := &Query{Session: S1, Q: 5, Target: true}
	bits := q.AppendBits(nil)
	env, err := p.EncodeFrame(bits, true)
	if err != nil {
		t.Fatal(err)
	}
	// Append post-frame CW, as a real reader does while listening.
	env = append(env, onesN(2000)...)
	got, info, err := p.DecodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bits) {
		t.Fatalf("decoded %s, want %s", got, bits)
	}
	if math.Abs(info.Tari-p.Tari)/p.Tari > 0.05 {
		t.Fatalf("measured Tari %v, want %v", info.Tari, p.Tari)
	}
	if math.Abs(info.RTcal-p.RTcal())/p.RTcal() > 0.05 {
		t.Fatalf("measured RTcal %v, want %v", info.RTcal, p.RTcal())
	}
	if info.TRcal == 0 {
		t.Fatal("preamble frame lost its TRcal")
	}
	cmd, err := DecodeCommand(got)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Type() != CmdQuery {
		t.Fatalf("decoded command type %s", cmd.Type())
	}
}

func onesN(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestPIEFrameSyncNoTRcal(t *testing.T) {
	p := DefaultPIE(pieFS)
	a := &ACK{RN16: 0x55AA}
	bits := a.AppendBits(nil)
	env, err := p.EncodeFrame(bits, false)
	if err != nil {
		t.Fatal(err)
	}
	env = append(env, onesN(1000)...)
	got, info, err := p.DecodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	if info.TRcal != 0 {
		t.Fatalf("frame-sync frame reported TRcal %v", info.TRcal)
	}
	if !got.Equal(bits) {
		t.Fatalf("decoded %s, want %s", got, bits)
	}
}

func TestPIEModulationDepthLevels(t *testing.T) {
	p := DefaultPIE(pieFS)
	p.ModulationDepth = 0.8
	env, err := p.EncodeFrame(Bits{1, 0, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := env[0], env[0]
	for _, v := range env {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.Abs(hi-1) > 1e-12 {
		t.Fatalf("high level = %v, want 1", hi)
	}
	if math.Abs(lo-0.2) > 1e-12 {
		t.Fatalf("low level = %v, want 0.2", lo)
	}
}

func TestPIEDecodesWithNoise(t *testing.T) {
	r := rng.New(12)
	p := DefaultPIE(pieFS)
	q := &Query{Q: 3}
	bits := q.AppendBits(nil)
	env, err := p.EncodeFrame(bits, true)
	if err != nil {
		t.Fatal(err)
	}
	env = append(env, onesN(1500)...)
	for i := range env {
		env[i] += 0.05 * r.NormFloat64()
	}
	got, _, err := p.DecodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bits) {
		t.Fatalf("noisy decode %s, want %s", got, bits)
	}
}

func TestPIERejectsFlatEnvelope(t *testing.T) {
	p := DefaultPIE(pieFS)
	if _, _, err := p.DecodeFrame(onesN(5000)); err == nil {
		t.Fatal("flat envelope decoded")
	}
	if _, _, err := p.DecodeFrame(nil); err == nil {
		t.Fatal("empty envelope decoded")
	}
}

func TestPIEValidate(t *testing.T) {
	good := DefaultPIE(pieFS)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*PIEParams){
		func(p *PIEParams) { p.Tari = 1e-6 },
		func(p *PIEParams) { p.Data1Len = p.Tari },       // < 1.5×
		func(p *PIEParams) { p.Data1Len = 3 * p.Tari },   // > 2×
		func(p *PIEParams) { p.PW = p.Tari },             // > 0.525×
		func(p *PIEParams) { p.PW = 0.1 * p.Tari },       // < 0.265×
		func(p *PIEParams) { p.TRcal = p.RTcal() * 0.5 }, // < 1.1×
		func(p *PIEParams) { p.TRcal = p.RTcal() * 4 },   // > 3×
		func(p *PIEParams) { p.ModulationDepth = 0 },
		func(p *PIEParams) { p.ModulationDepth = 1.2 },
		func(p *PIEParams) { p.SampleRate = 0 },
		func(p *PIEParams) { p.Delimiter = 0 },
	}
	for i, mutate := range cases {
		p := DefaultPIE(pieFS)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPIEFrameDurationNearPaperValue(t *testing.T) {
	// "For a typical RFID reader's query, Δt ≈ 800 µs."
	p := DefaultPIE(pieFS)
	q := &Query{}
	d := p.FrameDuration(q.AppendBits(nil), true)
	if d < 300e-6 || d > 1.2e-3 {
		t.Fatalf("Query duration = %v s, want same order as 800 µs", d)
	}
}

func TestPIEFrameDurationMatchesEncodedLength(t *testing.T) {
	p := DefaultPIE(pieFS)
	bits := (&Query{Q: 9}).AppendBits(nil)
	env, err := p.EncodeFrame(bits, true)
	if err != nil {
		t.Fatal(err)
	}
	want := p.FrameDuration(bits, true)
	got := float64(len(env)) / pieFS
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("encoded duration %v, FrameDuration %v", got, want)
	}
}

func TestPIEEnvelopeRippleBreaksDecoding(t *testing.T) {
	// The flatness-constraint rationale (Eq. 7): sinusoidal ripple deep
	// enough to cross the decision threshold corrupts symbol timing.
	p := DefaultPIE(pieFS)
	bits := (&Query{Q: 1}).AppendBits(nil)
	env, err := p.EncodeFrame(bits, true)
	if err != nil {
		t.Fatal(err)
	}
	env = append(env, onesN(1000)...)
	// Ripple at 60% of amplitude (α = 0.6 > 0.5) around the high level.
	ripple := make([]float64, len(env))
	for i := range env {
		r := 0.6 * math.Sin(2*math.Pi*float64(i)/400)
		v := env[i] * (1 + r) / 1.6
		ripple[i] = v
	}
	if got, _, err := p.DecodeFrame(ripple); err == nil && got.Equal(bits) {
		t.Fatal("decode survived 60% envelope ripple; threshold model broken")
	}
	// Gentle ripple (α = 0.2 < 0.5) must still decode.
	gentle := make([]float64, len(env))
	for i := range env {
		r := 0.1 * math.Sin(2*math.Pi*float64(i)/400)
		gentle[i] = env[i] * (1 + r) / 1.1
	}
	got, _, err := p.DecodeFrame(gentle)
	if err != nil {
		t.Fatalf("decode failed under 20%% ripple: %v", err)
	}
	if !got.Equal(bits) {
		t.Fatalf("gentle-ripple decode %s, want %s", got, bits)
	}
}

func TestPIETagLogicEndToEnd(t *testing.T) {
	// Full downlink integration: Query bits → PIE envelope → tag decodes →
	// state machine replies with an RN16.
	p := DefaultPIE(pieFS)
	q := &Query{Q: 0, Session: S0}
	env, err := p.EncodeFrame(q.AppendBits(nil), true)
	if err != nil {
		t.Fatal(err)
	}
	env = append(env, onesN(2000)...)
	bits, _, err := p.DecodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	cmd, err := DecodeCommand(bits)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := NewTagLogic([]byte{0x12, 0x34}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reply := tag.HandleCommand(cmd)
	if reply.Kind != ReplyRN16 {
		t.Fatalf("reply kind = %s, want RN16", reply.Kind)
	}
	if len(reply.Bits) != 16 {
		t.Fatalf("RN16 reply has %d bits", len(reply.Bits))
	}
}

func BenchmarkPIEEncodeQuery(b *testing.B) {
	p := DefaultPIE(pieFS)
	bits := (&Query{Q: 4}).AppendBits(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EncodeFrame(bits, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPIEDecodeQuery(b *testing.B) {
	p := DefaultPIE(pieFS)
	bits := (&Query{Q: 4}).AppendBits(nil)
	env, _ := p.EncodeFrame(bits, true)
	env = append(env, onesN(1000)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.DecodeFrame(env); err != nil {
			b.Fatal(err)
		}
	}
}
