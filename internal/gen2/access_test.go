package gen2

import (
	"errors"
	"testing"
	"testing/quick"

	"ivn/internal/rng"
)

func openTag(t *testing.T, seed uint64) (*TagLogic, uint16) {
	t.Helper()
	tag, err := NewTagLogic([]byte{0xE2, 0x00, 0x12, 0x34}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	reply := tag.HandleCommand(&Query{Q: 0})
	var rn RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		t.Fatal(err)
	}
	tag.HandleCommand(&ACK{RN16: rn.RN16})
	h := tag.HandleCommand(&ReqRN{RN16: rn.RN16})
	if h.Kind != ReplyHandle {
		t.Fatalf("no handle: %s", h.Kind)
	}
	handle, err := h.Bits.Uint(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	return tag, uint16(handle)
}

func TestReadCommandRoundTrip(t *testing.T) {
	rd := &Read{Bank: BankUser, WordPtr: 3, WordCount: 4, Handle: 0xBEEF}
	bits := rd.AppendBits(nil)
	if len(bits) != 58 {
		t.Fatalf("Read frame %d bits, want 58", len(bits))
	}
	var got Read
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got != *rd {
		t.Fatalf("round trip %+v != %+v", got, *rd)
	}
	bits[20] ^= 1
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted Read error = %v", err)
	}
	cmd, err := DecodeCommand(rd.AppendBits(nil))
	if err != nil || cmd.Type() != CmdRead {
		t.Fatalf("dispatch failed: %v %v", cmd, err)
	}
}

func TestWriteCommandRoundTrip(t *testing.T) {
	w := &Write{Bank: BankUser, WordPtr: 0, Data: 0xCAFE, Handle: 0x1234}
	bits := w.AppendBits(nil)
	if len(bits) != 66 {
		t.Fatalf("Write frame %d bits, want 66", len(bits))
	}
	var got Write
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got != *w {
		t.Fatalf("round trip %+v != %+v", got, *w)
	}
	cmd, err := DecodeCommand(bits)
	if err != nil || cmd.Type() != CmdWrite {
		t.Fatalf("dispatch failed: %v %v", cmd, err)
	}
}

func TestWriteThenReadUserMemory(t *testing.T) {
	tag, handle := openTag(t, 1)
	wr := tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 2, Data: 0xABCD, Handle: handle})
	if wr.Kind != ReplyWrite {
		t.Fatalf("write reply = %s", wr.Kind)
	}
	var wrep WriteReply
	if err := wrep.DecodeFromBits(wr.Bits); err != nil {
		t.Fatal(err)
	}
	if wrep.Handle != handle {
		t.Fatal("write reply handle mismatch")
	}
	rr := tag.HandleCommand(&Read{Bank: BankUser, WordPtr: 2, WordCount: 1, Handle: handle})
	if rr.Kind != ReplyRead {
		t.Fatalf("read reply = %s", rr.Kind)
	}
	var rrep ReadReply
	if err := rrep.DecodeFromBits(rr.Bits, 1); err != nil {
		t.Fatal(err)
	}
	if rrep.Words[0] != 0xABCD {
		t.Fatalf("read back %#04x, want 0xABCD", rrep.Words[0])
	}
	if tag.UserMemory()[2] != 0xABCD {
		t.Fatal("UserMemory disagrees")
	}
}

func TestReadTIDAndEPCBanks(t *testing.T) {
	tag, handle := openTag(t, 2)
	rr := tag.HandleCommand(&Read{Bank: BankTID, WordPtr: 0, WordCount: 2, Handle: handle})
	if rr.Kind != ReplyRead {
		t.Fatalf("TID read = %s", rr.Kind)
	}
	var rep ReadReply
	if err := rep.DecodeFromBits(rr.Bits, 2); err != nil {
		t.Fatal(err)
	}
	if rep.Words[0] != 0xE280 {
		t.Fatalf("TID class = %#04x", rep.Words[0])
	}
	// EPC bank: PC word then EPC content.
	rr = tag.HandleCommand(&Read{Bank: BankEPC, WordPtr: 0, WordCount: 3, Handle: handle})
	if rr.Kind != ReplyRead {
		t.Fatalf("EPC read = %s", rr.Kind)
	}
	if err := rep.DecodeFromBits(rr.Bits, 3); err != nil {
		t.Fatal(err)
	}
	if rep.Words[1] != 0xE200 || rep.Words[2] != 0x1234 {
		t.Fatalf("EPC words = %#04x %#04x", rep.Words[1], rep.Words[2])
	}
}

func TestAccessRequiresOpenStateAndHandle(t *testing.T) {
	tag, handle := openTag(t, 3)
	// Wrong handle: silent.
	if r := tag.HandleCommand(&Read{Bank: BankUser, WordPtr: 0, WordCount: 1, Handle: handle ^ 1}); r.Kind != ReplyNone {
		t.Fatal("wrong-handle Read answered")
	}
	if r := tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 0, Data: 1, Handle: handle ^ 1}); r.Kind != ReplyNone {
		t.Fatal("wrong-handle Write answered")
	}
	// Pre-Open tag: silent.
	idle, err := NewTagLogic([]byte{0x11, 0x22}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if r := idle.HandleCommand(&Read{Bank: BankUser, WordPtr: 0, WordCount: 1, Handle: 0}); r.Kind != ReplyNone {
		t.Fatal("idle tag answered Read")
	}
}

func TestAccessRangeViolationsSilent(t *testing.T) {
	tag, handle := openTag(t, 5)
	cases := []Command{
		&Read{Bank: BankUser, WordPtr: 15, WordCount: 2, Handle: handle}, // past end
		&Read{Bank: BankUser, WordPtr: 0, WordCount: 0, Handle: handle},  // zero count
		&Read{Bank: BankReserved, WordPtr: 0, WordCount: 1, Handle: handle},
		&Write{Bank: BankUser, WordPtr: 16, Data: 1, Handle: handle}, // past end
		&Write{Bank: BankTID, WordPtr: 0, Data: 1, Handle: handle},   // read-only bank
	}
	for i, c := range cases {
		if r := tag.HandleCommand(c); r.Kind != ReplyNone {
			t.Errorf("case %d (%s) answered: %s", i, c, r.Kind)
		}
	}
}

func TestOnWriteActuationHook(t *testing.T) {
	tag, handle := openTag(t, 6)
	var fired []uint16
	tag.OnWrite = func(bank MemoryBank, ptr byte, value uint16) {
		if bank == BankUser && ptr == 0 {
			fired = append(fired, value)
		}
	}
	tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 0, Data: 0x0001, Handle: handle})
	tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 1, Data: 0x0002, Handle: handle})
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("actuation hook fired %v, want [1]", fired)
	}
}

func TestMemoryBankStrings(t *testing.T) {
	for b, want := range map[MemoryBank]string{
		BankReserved: "Reserved", BankEPC: "EPC", BankTID: "TID", BankUser: "User",
	} {
		if b.String() != want {
			t.Errorf("%d = %q", b, b.String())
		}
	}
	if MemoryBank(9).String() == "" {
		t.Error("unknown bank empty string")
	}
}

func TestReadReplyValidation(t *testing.T) {
	rep := ReadReply{Words: []uint16{1, 2}, Handle: 0x9999}
	bits := rep.AppendBits(nil)
	var got ReadReply
	if err := got.DecodeFromBits(bits, 2); err != nil {
		t.Fatal(err)
	}
	if got.Words[0] != 1 || got.Words[1] != 2 || got.Handle != 0x9999 {
		t.Fatalf("round trip %+v", got)
	}
	if err := got.DecodeFromBits(bits, 3); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("wrong word count error = %v", err)
	}
	bits[5] ^= 1
	if err := got.DecodeFromBits(bits, 2); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted reply error = %v", err)
	}
	// Error header.
	bad := Bits{1}
	bad = bad.AppendUint(0, 32)
	bad = bad.AppendUint(uint64(CRC16(bad)), 16)
	if err := got.DecodeFromBits(bad, 1); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("error-header reply error = %v", err)
	}
}

func TestWriteReplyValidation(t *testing.T) {
	rep := WriteReply{Handle: 0x4242}
	bits := rep.AppendBits(nil)
	var got WriteReply
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.Handle != 0x4242 {
		t.Fatalf("handle %#04x", got.Handle)
	}
	if err := got.DecodeFromBits(bits[:20]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short reply error = %v", err)
	}
	bits[3] ^= 1
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted reply error = %v", err)
	}
}

func TestQuickAccessRoundTrips(t *testing.T) {
	f := func(bank, ptr, count byte, handle, data uint16) bool {
		rd := &Read{Bank: MemoryBank(bank & 3), WordPtr: ptr, WordCount: count, Handle: handle}
		var gotR Read
		if err := gotR.DecodeFromBits(rd.AppendBits(nil)); err != nil || gotR != *rd {
			return false
		}
		w := &Write{Bank: MemoryBank(bank & 3), WordPtr: ptr, Data: data, Handle: handle}
		var gotW Write
		if err := gotW.DecodeFromBits(w.AppendBits(nil)); err != nil || gotW != *w {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
