// Package gen2 implements the EPC UHF Class-1 Generation-2 ("Gen2") air
// protocol that IVN's battery-free sensors speak: reader→tag commands with
// PIE line coding, tag→reader FM0/Miller backscatter encoding, CRC-5 and
// CRC-16 integrity, and the tag inventory state machine.
//
// The layer types follow the gopacket conventions the Go networking
// ecosystem established: each frame implements AppendBits (serialization
// into a caller-provided buffer) and DecodeFromBits (in-place decoding
// into a preallocated struct), plus fmt.Stringer for diagnostics. Errors
// are values, never panics.
package gen2

import (
	"errors"
	"fmt"
	"strings"
)

// Bits is a bit string, one bit per byte element (values 0 or 1). The
// unpacked representation trades memory for the bit-twiddling-free code
// the protocol logic wants; command frames are tens of bits long, so the
// cost is irrelevant.
type Bits []byte

// ErrShortFrame reports a decode against fewer bits than the frame needs.
var ErrShortFrame = errors.New("gen2: frame too short")

// ErrBadBit reports a Bits element that is neither 0 nor 1.
var ErrBadBit = errors.New("gen2: bit value out of {0,1}")

// AppendUint appends the width low-order bits of v, most significant
// first, and returns the extended slice.
func (b Bits) AppendUint(v uint64, width int) Bits {
	for i := width - 1; i >= 0; i-- {
		b = append(b, byte(v>>uint(i)&1))
	}
	return b
}

// AppendBits appends other and returns the extended slice.
func (b Bits) AppendBits(other Bits) Bits {
	return append(b, other...)
}

// Uint reads width bits starting at offset as a big-endian unsigned
// integer.
func (b Bits) Uint(offset, width int) (uint64, error) {
	if offset < 0 || width < 0 || offset+width > len(b) {
		return 0, fmt.Errorf("%w: need bits [%d,%d) of %d", ErrShortFrame, offset, offset+width, len(b))
	}
	var v uint64
	for _, bit := range b[offset : offset+width] {
		if bit > 1 {
			return 0, fmt.Errorf("%w: %d", ErrBadBit, bit)
		}
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// Validate checks every element is 0 or 1.
func (b Bits) Validate() error {
	for i, bit := range b {
		if bit > 1 {
			return fmt.Errorf("%w: index %d holds %d", ErrBadBit, i, bit)
		}
	}
	return nil
}

// Equal reports whether two bit strings are identical.
func (b Bits) Equal(other Bits) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the bits in nibble groups, e.g. "1101 0010 0011".
func (b Bits) String() string {
	var sb strings.Builder
	for i, bit := range b {
		if i > 0 && i%4 == 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte('0' + bit)
	}
	return sb.String()
}

// ParseBits parses a string of '0'/'1' characters (spaces ignored).
func ParseBits(s string) (Bits, error) {
	var b Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			b = append(b, 0)
		case '1':
			b = append(b, 1)
		case ' ':
		default:
			return nil, fmt.Errorf("gen2: invalid bit character %q at %d", s[i], i)
		}
	}
	return b, nil
}

// BitsFromBytes unpacks packed bytes MSB-first into a Bits string of
// length 8·len(p).
func BitsFromBytes(p []byte) Bits {
	b := make(Bits, 0, len(p)*8)
	for _, v := range p {
		b = b.AppendUint(uint64(v), 8)
	}
	return b
}

// Bytes packs the bit string MSB-first; trailing bits that do not fill a
// byte are left-aligned in the final byte. It errors on non-bit elements.
func (b Bits) Bytes() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, (len(b)+7)/8)
	for i, bit := range b {
		if bit == 1 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out, nil
}
