package gen2

import (
	"errors"
	"testing"

	"ivn/internal/rng"
)

func openProtectedTag(t *testing.T, pwd uint32, seed uint64) (*TagLogic, uint16) {
	t.Helper()
	tag, handle := openTag(t, seed)
	tag.SetAccessPassword(pwd)
	return tag, handle
}

func TestAccessCommandRoundTrip(t *testing.T) {
	a := &Access{Password: 0xDEADBEEF, Handle: 0x1234}
	bits := a.AppendBits(nil)
	if len(bits) != 72 {
		t.Fatalf("Access frame %d bits, want 72", len(bits))
	}
	var got Access
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got != *a {
		t.Fatalf("round trip %+v != %+v", got, *a)
	}
	bits[20] ^= 1
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted Access error = %v", err)
	}
	cmd, err := DecodeCommand(a.AppendBits(nil))
	if err != nil || cmd.Type() != CmdAccess {
		t.Fatalf("dispatch: %v %v", cmd, err)
	}
	if got.String() == "" || got.String() == "Access{handle=0x1234, password=0xdeadbeef}" {
		// The password must never appear in diagnostics.
		t.Fatalf("Access string leaks or is empty: %q", got.String())
	}
}

func TestProtectedWriteRequiresAccess(t *testing.T) {
	const pwd = 0xCAFEBABE
	tag, handle := openProtectedTag(t, pwd, 31)
	// Write without Access: silent.
	if r := tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 0, Data: 1, Handle: handle}); r.Kind != ReplyNone {
		t.Fatal("protected write accepted without Access")
	}
	// Wrong password: silent, still Open.
	if r := tag.HandleCommand(&Access{Password: pwd ^ 1, Handle: handle}); r.Kind != ReplyNone {
		t.Fatal("wrong password acknowledged")
	}
	if tag.Secured() {
		t.Fatal("wrong password secured the tag")
	}
	// Correct password: handle reply, Secured.
	r := tag.HandleCommand(&Access{Password: pwd, Handle: handle})
	if r.Kind != ReplyHandle {
		t.Fatalf("Access reply = %s", r.Kind)
	}
	if !CheckCRC16(r.Bits) {
		t.Fatal("Access grant CRC broken")
	}
	if !tag.Secured() || tag.State() != StateSecured {
		t.Fatal("tag not secured after correct Access")
	}
	// Now the write lands.
	if r := tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 0, Data: 0x77, Handle: handle}); r.Kind != ReplyWrite {
		t.Fatalf("secured write reply = %s", r.Kind)
	}
	if tag.UserMemory()[0] != 0x77 {
		t.Fatal("secured write did not land")
	}
	// Reads work in Secured too.
	if r := tag.HandleCommand(&Read{Bank: BankUser, WordPtr: 0, WordCount: 1, Handle: handle}); r.Kind != ReplyRead {
		t.Fatalf("secured read reply = %s", r.Kind)
	}
}

func TestUnprotectedTagWritesFromOpen(t *testing.T) {
	tag, handle := openTag(t, 32) // no password set
	if r := tag.HandleCommand(&Write{Bank: BankUser, WordPtr: 1, Data: 5, Handle: handle}); r.Kind != ReplyWrite {
		t.Fatalf("unprotected write reply = %s", r.Kind)
	}
	// Access against an unprotected tag is refused (nothing to prove).
	if r := tag.HandleCommand(&Access{Password: 0x1111, Handle: handle}); r.Kind != ReplyNone {
		t.Fatal("Access acknowledged by unprotected tag")
	}
}

func TestAccessRequiresHandleAndState(t *testing.T) {
	const pwd = 0x0BADF00D
	tag, handle := openProtectedTag(t, pwd, 33)
	if r := tag.HandleCommand(&Access{Password: pwd, Handle: handle ^ 1}); r.Kind != ReplyNone {
		t.Fatal("wrong-handle Access acknowledged")
	}
	idle, err := NewTagLogic([]byte{0x11, 0x22}, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	idle.SetAccessPassword(pwd)
	if r := idle.HandleCommand(&Access{Password: pwd, Handle: 0}); r.Kind != ReplyNone {
		t.Fatal("idle tag acknowledged Access")
	}
}

func TestSecuredTagClosesOutLikeOpen(t *testing.T) {
	const pwd = 0x12345678
	tag, handle := openProtectedTag(t, pwd, 35)
	tag.HandleCommand(&Access{Password: pwd, Handle: handle})
	if !tag.Secured() {
		t.Fatal("not secured")
	}
	// QueryRep ends the round: flag flips, back to Ready.
	tag.HandleCommand(&QueryRep{Session: S0})
	if tag.State() != StateReady {
		t.Fatalf("state after QueryRep = %s", tag.State())
	}
	if !tag.Inventoried(S0) {
		t.Fatal("inventoried flag not flipped from Secured")
	}
	if StateSecured.String() != "Secured" {
		t.Fatal("state name wrong")
	}
}

func TestPowerLossClearsSecuredState(t *testing.T) {
	const pwd = 0x55AA55AA
	tag, handle := openProtectedTag(t, pwd, 36)
	tag.HandleCommand(&Access{Password: pwd, Handle: handle})
	tag.PowerReset()
	if tag.Secured() {
		t.Fatal("Secured survived power loss")
	}
	if tag.State() != StateReady {
		t.Fatalf("state after power loss = %s", tag.State())
	}
}
