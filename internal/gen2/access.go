package gen2

import (
	"fmt"
)

// Access-layer commands (Gen2 §6.3.2.12.3): once a tag holds a handle
// (ReqRN in the Open state), the reader can Read and Write its memory
// banks. This is the protocol path behind the paper's actuation vision —
// "delivering drugs" and controlling "bioactuators" (§1) map to Writes
// into the sensor's user memory, and "monitoring internal vital signs"
// to Reads of sensor registers.

// MemoryBank identifies a Gen2 memory bank.
type MemoryBank byte

// Gen2 memory banks.
const (
	BankReserved MemoryBank = 0
	BankEPC      MemoryBank = 1
	BankTID      MemoryBank = 2
	BankUser     MemoryBank = 3
)

// String names the bank.
func (b MemoryBank) String() string {
	switch b {
	case BankReserved:
		return "Reserved"
	case BankEPC:
		return "EPC"
	case BankTID:
		return "TID"
	case BankUser:
		return "User"
	default:
		return fmt.Sprintf("MemoryBank(%d)", byte(b))
	}
}

// Read requests wordCount 16-bit words from a tag's memory: 8-bit opcode
// 11000010, 2-bit bank, 8-bit word pointer, 8-bit word count, 16-bit
// handle, CRC-16 (58 bits total; the spec's EBV pointer is modeled as a
// single byte, which covers every realistic sensor map).
type Read struct {
	Bank      MemoryBank
	WordPtr   byte
	WordCount byte
	// Handle is the RN16 handle from ReqRN.
	Handle uint16
}

// Type implements Command.
func (*Read) Type() CommandType { return CmdRead }

// AppendBits implements Command.
func (rd *Read) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b11000010, 8)
	dst = dst.AppendUint(uint64(rd.Bank&3), 2)
	dst = dst.AppendUint(uint64(rd.WordPtr), 8)
	dst = dst.AppendUint(uint64(rd.WordCount), 8)
	dst = dst.AppendUint(uint64(rd.Handle), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits implements Command.
func (rd *Read) DecodeFromBits(b Bits) error {
	if len(b) != 58 {
		return fmt.Errorf("%w: Read needs 58 bits, got %d", ErrShortFrame, len(b))
	}
	op, err := b.Uint(0, 8)
	if err != nil {
		return err
	}
	if op != 0b11000010 {
		return fmt.Errorf("%w: prefix %08b is not Read", ErrBadCommand, op)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: Read CRC-16", ErrBadCRC)
	}
	bank, _ := b.Uint(8, 2)
	ptr, _ := b.Uint(10, 8)
	count, _ := b.Uint(18, 8)
	handle, _ := b.Uint(26, 16)
	rd.Bank = MemoryBank(bank)
	rd.WordPtr = byte(ptr)
	rd.WordCount = byte(count)
	rd.Handle = uint16(handle)
	return nil
}

// String implements fmt.Stringer.
func (rd *Read) String() string {
	return fmt.Sprintf("Read{%s[%d:%d] handle=%#04x}", rd.Bank, rd.WordPtr, int(rd.WordPtr)+int(rd.WordCount), rd.Handle)
}

// Write stores one 16-bit word: 8-bit opcode 11000011, 2-bit bank, 8-bit
// word pointer, 16-bit data, 16-bit handle, CRC-16 (66 bits). The spec's
// cover-coding (data XOR fresh RN16) is omitted — it protects secrecy on
// the air interface, which the simulator does not model adversarially.
type Write struct {
	Bank    MemoryBank
	WordPtr byte
	Data    uint16
	Handle  uint16
}

// Type implements Command.
func (*Write) Type() CommandType { return CmdWrite }

// AppendBits implements Command.
func (w *Write) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b11000011, 8)
	dst = dst.AppendUint(uint64(w.Bank&3), 2)
	dst = dst.AppendUint(uint64(w.WordPtr), 8)
	dst = dst.AppendUint(uint64(w.Data), 16)
	dst = dst.AppendUint(uint64(w.Handle), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits implements Command.
func (w *Write) DecodeFromBits(b Bits) error {
	if len(b) != 66 {
		return fmt.Errorf("%w: Write needs 66 bits, got %d", ErrShortFrame, len(b))
	}
	op, err := b.Uint(0, 8)
	if err != nil {
		return err
	}
	if op != 0b11000011 {
		return fmt.Errorf("%w: prefix %08b is not Write", ErrBadCommand, op)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: Write CRC-16", ErrBadCRC)
	}
	bank, _ := b.Uint(8, 2)
	ptr, _ := b.Uint(10, 8)
	data, _ := b.Uint(18, 16)
	handle, _ := b.Uint(34, 16)
	w.Bank = MemoryBank(bank)
	w.WordPtr = byte(ptr)
	w.Data = uint16(data)
	w.Handle = uint16(handle)
	return nil
}

// String implements fmt.Stringer.
func (w *Write) String() string {
	return fmt.Sprintf("Write{%s[%d]=%#04x handle=%#04x}", w.Bank, w.WordPtr, w.Data, w.Handle)
}

// ReadReply is the tag's response to Read: header bit 0, the data words,
// the handle, CRC-16 over all of it.
type ReadReply struct {
	Words  []uint16
	Handle uint16
}

// AppendBits serializes the reply.
func (r *ReadReply) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0, 1) // header: success
	for _, w := range r.Words {
		dst = dst.AppendUint(uint64(w), 16)
	}
	dst = dst.AppendUint(uint64(r.Handle), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits parses a reply carrying wordCount words.
func (r *ReadReply) DecodeFromBits(b Bits, wordCount int) error {
	want := 1 + wordCount*16 + 16 + 16
	if len(b) != want {
		return fmt.Errorf("%w: ReadReply with %d words needs %d bits, got %d", ErrShortFrame, wordCount, want, len(b))
	}
	if hdr, err := b.Uint(0, 1); err != nil {
		return err
	} else if hdr != 0 {
		return fmt.Errorf("%w: error header in ReadReply", ErrBadCommand)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: ReadReply CRC-16", ErrBadCRC)
	}
	r.Words = make([]uint16, wordCount)
	for i := 0; i < wordCount; i++ {
		v, _ := b.Uint(1+i*16, 16)
		r.Words[i] = uint16(v)
	}
	h, _ := b.Uint(1+wordCount*16, 16)
	r.Handle = uint16(h)
	return nil
}

// String implements fmt.Stringer.
func (r *ReadReply) String() string {
	return fmt.Sprintf("ReadReply{%d words, handle=%#04x}", len(r.Words), r.Handle)
}

// WriteReply is the tag's delayed response to a successful Write: header
// bit 0, handle, CRC-16.
type WriteReply struct {
	Handle uint16
}

// AppendBits serializes the reply.
func (w *WriteReply) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0, 1)
	dst = dst.AppendUint(uint64(w.Handle), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits parses the 33-bit reply.
func (w *WriteReply) DecodeFromBits(b Bits) error {
	if len(b) != 33 {
		return fmt.Errorf("%w: WriteReply needs 33 bits, got %d", ErrShortFrame, len(b))
	}
	if hdr, err := b.Uint(0, 1); err != nil {
		return err
	} else if hdr != 0 {
		return fmt.Errorf("%w: error header in WriteReply", ErrBadCommand)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: WriteReply CRC-16", ErrBadCRC)
	}
	h, _ := b.Uint(1, 16)
	w.Handle = uint16(h)
	return nil
}

// String implements fmt.Stringer.
func (w *WriteReply) String() string { return fmt.Sprintf("WriteReply{handle=%#04x}", w.Handle) }
