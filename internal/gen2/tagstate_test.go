package gen2

import (
	"testing"

	"ivn/internal/rng"
)

func newTag(t *testing.T, seed uint64) *TagLogic {
	t.Helper()
	tag, err := NewTagLogic([]byte{0xE2, 0x00, 0x12, 0x34}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

func TestNewTagLogicValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewTagLogic(nil, r); err == nil {
		t.Fatal("empty EPC accepted")
	}
	if _, err := NewTagLogic([]byte{1}, r); err == nil {
		t.Fatal("odd EPC accepted")
	}
	if _, err := NewTagLogic(make([]byte, 64), r); err == nil {
		t.Fatal("oversized EPC accepted")
	}
	if _, err := NewTagLogic([]byte{1, 2}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestQueryQ0ImmediateReply(t *testing.T) {
	tag := newTag(t, 2)
	reply := tag.HandleCommand(&Query{Q: 0})
	if reply.Kind != ReplyRN16 {
		t.Fatalf("Q=0 reply kind = %s", reply.Kind)
	}
	if tag.State() != StateReply {
		t.Fatalf("state = %s, want Reply", tag.State())
	}
	var rn RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		t.Fatal(err)
	}
	if rn.RN16 != tag.LastRN16() {
		t.Fatal("reply RN16 differs from tag's")
	}
}

func TestFullInventoryHandshake(t *testing.T) {
	tag := newTag(t, 3)
	reply := tag.HandleCommand(&Query{Q: 0, Session: S1})
	if reply.Kind != ReplyRN16 {
		t.Fatalf("no RN16: %s", reply.Kind)
	}
	var rn RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		t.Fatal(err)
	}
	// ACK with the right RN16 → EPC reply.
	epcReply := tag.HandleCommand(&ACK{RN16: rn.RN16})
	if epcReply.Kind != ReplyEPC {
		t.Fatalf("ACK reply kind = %s", epcReply.Kind)
	}
	var epc EPCReply
	if err := epc.DecodeFromBits(epcReply.Bits); err != nil {
		t.Fatal(err)
	}
	want := tag.EPC()
	for i := range want {
		if epc.EPC[i] != want[i] {
			t.Fatal("EPC mismatch")
		}
	}
	if tag.State() != StateAcknowledged {
		t.Fatalf("state = %s", tag.State())
	}
	// ReqRN issues a handle.
	h := tag.HandleCommand(&ReqRN{RN16: rn.RN16})
	if h.Kind != ReplyHandle {
		t.Fatalf("ReqRN reply = %s", h.Kind)
	}
	if !CheckCRC16(h.Bits) {
		t.Fatal("handle reply CRC broken")
	}
	if tag.State() != StateOpen {
		t.Fatalf("state = %s, want Open", tag.State())
	}
	// Next QueryRep ends the tag's round and flips its inventoried flag.
	if tag.Inventoried(S1) {
		t.Fatal("inventoried flag set early")
	}
	tag.HandleCommand(&QueryRep{Session: S1})
	if !tag.Inventoried(S1) {
		t.Fatal("inventoried flag not flipped after round")
	}
	if tag.State() != StateReady {
		t.Fatalf("state = %s, want Ready", tag.State())
	}
}

func TestWrongACKSendsToArbitrate(t *testing.T) {
	tag := newTag(t, 4)
	reply := tag.HandleCommand(&Query{Q: 0})
	var rn RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		t.Fatal(err)
	}
	bad := tag.HandleCommand(&ACK{RN16: rn.RN16 ^ 0xFFFF})
	if bad.Kind != ReplyNone {
		t.Fatalf("wrong ACK got reply %s", bad.Kind)
	}
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %s, want Arbitrate", tag.State())
	}
}

func TestNAKReturnsToArbitrate(t *testing.T) {
	tag := newTag(t, 5)
	reply := tag.HandleCommand(&Query{Q: 0})
	var rn RN16Reply
	_ = rn.DecodeFromBits(reply.Bits)
	tag.HandleCommand(&ACK{RN16: rn.RN16})
	tag.HandleCommand(&NAK{})
	if tag.State() != StateArbitrate {
		t.Fatalf("state after NAK = %s", tag.State())
	}
}

func TestSlottedCountdown(t *testing.T) {
	// With Q=4 and a known seed the tag draws some slot; QueryReps must
	// count it down to a reply in at most 2^Q steps.
	tag := newTag(t, 6)
	reply := tag.HandleCommand(&Query{Q: 4, Session: S2})
	steps := 0
	for reply.Kind == ReplyNone {
		if tag.State() != StateArbitrate {
			t.Fatalf("state = %s during countdown", tag.State())
		}
		reply = tag.HandleCommand(&QueryRep{Session: S2})
		steps++
		if steps > 16 {
			t.Fatal("slot never reached zero")
		}
	}
	if reply.Kind != ReplyRN16 {
		t.Fatalf("countdown ended with %s", reply.Kind)
	}
}

func TestQueryRepWrongSessionIgnored(t *testing.T) {
	tag := newTag(t, 7)
	tag.HandleCommand(&Query{Q: 4, Session: S2})
	st := tag.State()
	tag.HandleCommand(&QueryRep{Session: S1})
	if tag.State() != st {
		t.Fatal("wrong-session QueryRep changed state")
	}
}

func TestMissedACKBackToArbitrate(t *testing.T) {
	tag := newTag(t, 8)
	tag.HandleCommand(&Query{Q: 0, Session: S0})
	if tag.State() != StateReply {
		t.Fatalf("state = %s", tag.State())
	}
	// Reader moves on without ACKing.
	tag.HandleCommand(&QueryRep{Session: S0})
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %s, want Arbitrate", tag.State())
	}
}

// TestFailedSingulationRollsOver: after a missed ACK the tag's zero slot
// counter must roll over to the spec maximum on the next QueryRep
// (6.3.2.12.2) instead of re-entering the slot — without the rollover a
// failed tag backscatters every other slot and collides out the rest of
// the round.
func TestFailedSingulationRollsOver(t *testing.T) {
	tag := newTag(t, 21)
	tag.HandleCommand(&Query{Q: 0, Session: S0})
	if tag.State() != StateReply {
		t.Fatalf("state = %s", tag.State())
	}
	// Reader moves on without ACKing: back to arbitrate, counter stale at 0.
	tag.HandleCommand(&QueryRep{Session: S0})
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %s, want Arbitrate", tag.State())
	}
	// The tag must now stay silent for the rest of any realistic round...
	for i := 0; i < 64; i++ {
		if reply := tag.HandleCommand(&QueryRep{Session: S0}); reply.Kind != ReplyNone {
			t.Fatalf("QueryRep %d: failed tag re-replied with %s", i, reply.Kind)
		}
	}
	if tag.State() != StateArbitrate {
		t.Fatalf("state = %s, want Arbitrate", tag.State())
	}
	// ...but a new Query re-randomizes it back into contention.
	if reply := tag.HandleCommand(&Query{Q: 0, Session: S0}); reply.Kind != ReplyRN16 {
		t.Fatalf("fresh Query reply = %s, want RN16", reply.Kind)
	}
	// A QueryAdjust must likewise rescue a rolled-over tag: fail it again,
	// then redraw into a 1-slot space.
	tag.HandleCommand(&QueryRep{Session: S0}) // missed ACK
	tag.HandleCommand(&QueryRep{Session: S0}) // rollover
	reply := tag.HandleCommand(&QueryAdjust{Session: S0, UpDn: QDown})
	if tag.State() != StateReply || reply.Kind != ReplyRN16 {
		t.Fatalf("QueryAdjust after rollover: state %s reply %s", tag.State(), reply.Kind)
	}
}

func TestQueryAdjustRedraws(t *testing.T) {
	tag := newTag(t, 9)
	tag.HandleCommand(&Query{Q: 4, Session: S0})
	reply := tag.HandleCommand(&QueryAdjust{Session: S0, UpDn: QDown})
	// Either it redrew 0 (reply) or a positive slot (arbitrate); both are
	// legal — what matters is it stays in the round.
	if tag.State() != StateReply && tag.State() != StateArbitrate {
		t.Fatalf("state = %s", tag.State())
	}
	if tag.State() == StateReply && reply.Kind != ReplyRN16 {
		t.Fatal("reply state without RN16")
	}
	// Adjust in wrong session is ignored.
	tag2 := newTag(t, 10)
	tag2.HandleCommand(&Query{Q: 4, Session: S0})
	st := tag2.State()
	tag2.HandleCommand(&QueryAdjust{Session: S3, UpDn: QUp})
	if tag2.State() != st {
		t.Fatal("wrong-session QueryAdjust changed state")
	}
}

func TestSelectSLFlagGating(t *testing.T) {
	tag := newTag(t, 11)
	epcBits := BitsFromBytes(tag.EPC())
	// Assert SL on match (action 0, target 4 = SL).
	sel := &Select{Target: 4, Action: 0, MemBank: 1, Pointer: 0, Mask: epcBits[:8]}
	tag.HandleCommand(sel)
	if !tag.SL() {
		t.Fatal("matching Select did not assert SL")
	}
	// Query with Sel=3 (SL only) → participates.
	reply := tag.HandleCommand(&Query{Q: 0, Sel: 3})
	if reply.Kind != ReplyRN16 {
		t.Fatal("SL tag did not answer Sel=3 query")
	}
	// Non-matching Select deasserts SL.
	wrong := append(Bits(nil), epcBits[:8]...)
	wrong[0] ^= 1
	tag.HandleCommand(&Select{Target: 4, Action: 0, MemBank: 1, Pointer: 0, Mask: wrong})
	if tag.SL() {
		t.Fatal("non-matching Select left SL asserted")
	}
	// Now a Sel=3 query is ignored, a Sel=2 (~SL) query is answered.
	if reply := tag.HandleCommand(&Query{Q: 0, Sel: 3}); reply.Kind != ReplyNone {
		t.Fatal("~SL tag answered Sel=3 query")
	}
	if reply := tag.HandleCommand(&Query{Q: 0, Sel: 2}); reply.Kind != ReplyRN16 {
		t.Fatal("~SL tag ignored Sel=2 query")
	}
}

func TestSelectActionTable(t *testing.T) {
	epc := []byte{0xAB, 0xCD}
	epcBits := BitsFromBytes(epc)
	match := epcBits[:4]
	noMatch := append(Bits(nil), match...)
	noMatch[0] ^= 1

	mk := func(seed uint64) *TagLogic {
		tag, _ := NewTagLogic(epc, rng.New(seed))
		return tag
	}
	// Action 3: negate on match.
	tag := mk(1)
	tag.HandleCommand(&Select{Target: 4, Action: 3, MemBank: 1, Mask: match})
	if !tag.SL() {
		t.Fatal("action 3 negate failed")
	}
	tag.HandleCommand(&Select{Target: 4, Action: 3, MemBank: 1, Mask: match})
	if tag.SL() {
		t.Fatal("double negate failed")
	}
	// Action 4: deassert on match, assert on non-match.
	tag = mk(2)
	tag.HandleCommand(&Select{Target: 4, Action: 4, MemBank: 1, Mask: noMatch})
	if !tag.SL() {
		t.Fatal("action 4 non-match assert failed")
	}
	tag.HandleCommand(&Select{Target: 4, Action: 4, MemBank: 1, Mask: match})
	if tag.SL() {
		t.Fatal("action 4 match deassert failed")
	}
	// Action 7: negate on non-match.
	tag = mk(3)
	tag.HandleCommand(&Select{Target: 4, Action: 7, MemBank: 1, Mask: noMatch})
	if !tag.SL() {
		t.Fatal("action 7 negate failed")
	}
	// Session-flag target: action 0 on S2 sets inventoried A (assert).
	tag = mk(4)
	tag.HandleCommand(&Query{Q: 0, Session: S2})
	tag.HandleCommand(&QueryRep{Session: S2}) // back to arbitrate; still in round
	tag.HandleCommand(&Select{Target: byte(S2), Action: 0, MemBank: 1, Mask: match})
	if tag.Inventoried(S2) {
		t.Fatal("Select did not assert inventoried A")
	}
	if tag.State() != StateReady {
		t.Fatal("Select did not abort the round")
	}
}

func TestSelectOutOfRangeMaskNoMatch(t *testing.T) {
	tag := newTag(t, 12)
	long := make(Bits, 64) // longer than the 32-bit EPC
	tag.HandleCommand(&Select{Target: 4, Action: 1, MemBank: 1, Pointer: 0, Mask: long})
	if tag.SL() {
		t.Fatal("over-length mask matched")
	}
	// Non-EPC bank is not modeled → never matches.
	epcBits := BitsFromBytes(tag.EPC())
	tag.HandleCommand(&Select{Target: 4, Action: 1, MemBank: 2, Pointer: 0, Mask: epcBits[:4]})
	if tag.SL() {
		t.Fatal("non-EPC bank matched")
	}
}

func TestTargetFlagParticipation(t *testing.T) {
	tag := newTag(t, 13)
	// Complete one round: flag flips to B.
	reply := tag.HandleCommand(&Query{Q: 0, Session: S1, Target: false})
	var rn RN16Reply
	_ = rn.DecodeFromBits(reply.Bits)
	tag.HandleCommand(&ACK{RN16: rn.RN16})
	tag.HandleCommand(&QueryRep{Session: S1})
	if !tag.Inventoried(S1) {
		t.Fatal("flag not flipped")
	}
	// Target=A query now ignored; Target=B answered.
	if reply := tag.HandleCommand(&Query{Q: 0, Session: S1, Target: false}); reply.Kind != ReplyNone {
		t.Fatal("B-flagged tag answered Target=A query")
	}
	if reply := tag.HandleCommand(&Query{Q: 0, Session: S1, Target: true}); reply.Kind != ReplyRN16 {
		t.Fatal("B-flagged tag ignored Target=B query")
	}
}

func TestPowerReset(t *testing.T) {
	tag := newTag(t, 14)
	epcBits := BitsFromBytes(tag.EPC())
	tag.HandleCommand(&Select{Target: 4, Action: 1, MemBank: 1, Mask: epcBits[:4]})
	tag.HandleCommand(&Query{Q: 0, Session: S0})
	tag.PowerReset()
	if tag.State() != StateReady || tag.SL() || tag.Inventoried(S0) {
		t.Fatal("PowerReset left volatile state")
	}
}

func TestOutOfStateCommandsIgnored(t *testing.T) {
	tag := newTag(t, 15)
	// ACK/ReqRN before any query: silent.
	if r := tag.HandleCommand(&ACK{RN16: 1}); r.Kind != ReplyNone {
		t.Fatal("idle tag answered ACK")
	}
	if r := tag.HandleCommand(&ReqRN{RN16: 1}); r.Kind != ReplyNone {
		t.Fatal("idle tag answered ReqRN")
	}
	if tag.State() != StateReady {
		t.Fatalf("state = %s", tag.State())
	}
}

func TestReqRNWrongRN16Ignored(t *testing.T) {
	tag := newTag(t, 16)
	reply := tag.HandleCommand(&Query{Q: 0})
	var rn RN16Reply
	_ = rn.DecodeFromBits(reply.Bits)
	tag.HandleCommand(&ACK{RN16: rn.RN16})
	if r := tag.HandleCommand(&ReqRN{RN16: rn.RN16 ^ 1}); r.Kind != ReplyNone {
		t.Fatal("wrong-RN16 ReqRN answered")
	}
	if tag.State() != StateAcknowledged {
		t.Fatalf("state = %s", tag.State())
	}
}

func TestTwoTagsCollideAndResolve(t *testing.T) {
	// Classic slotted-ALOHA: two tags with Q=2 eventually single out.
	tagA := newTag(t, 20)
	tagB, err := NewTagLogic([]byte{0xBB, 0xBB}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{Q: 2, Session: S0}
	ra, rb := tagA.HandleCommand(q), tagB.HandleCommand(q)
	resolved := false
	for round := 0; round < 50 && !resolved; round++ {
		aUp := ra.Kind == ReplyRN16
		bUp := rb.Kind == ReplyRN16
		switch {
		case aUp && !bUp:
			var rn RN16Reply
			_ = rn.DecodeFromBits(ra.Bits)
			if rep := tagA.HandleCommand(&ACK{RN16: rn.RN16}); rep.Kind != ReplyEPC {
				t.Fatal("singulated tag A gave no EPC")
			}
			resolved = true
		case bUp && !aUp:
			var rn RN16Reply
			_ = rn.DecodeFromBits(rb.Bits)
			if rep := tagB.HandleCommand(&ACK{RN16: rn.RN16}); rep.Kind != ReplyEPC {
				t.Fatal("singulated tag B gave no EPC")
			}
			resolved = true
		default:
			// Collision or empty slot: next slot.
			rep := &QueryRep{Session: S0}
			ra, rb = tagA.HandleCommand(rep), tagB.HandleCommand(rep)
		}
	}
	if !resolved {
		t.Fatal("inventory never singulated a tag")
	}
}

func TestTagStateStrings(t *testing.T) {
	for s, want := range map[TagState]string{
		StateReady: "Ready", StateArbitrate: "Arbitrate", StateReply: "Reply",
		StateAcknowledged: "Acknowledged", StateOpen: "Open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if TagState(99).String() == "" {
		t.Error("unknown state has empty string")
	}
	for k, want := range map[ReplyKind]string{
		ReplyNone: "none", ReplyRN16: "RN16", ReplyEPC: "EPC", ReplyHandle: "Handle",
	} {
		if k.String() != want {
			t.Errorf("ReplyKind %d = %q", k, k.String())
		}
	}
	if ReplyKind(99).String() == "" {
		t.Error("unknown reply kind has empty string")
	}
}
