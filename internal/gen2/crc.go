package gen2

// CRC-5 and CRC-16 exactly as EPC Gen2 (ISO/IEC 18000-63) specifies them.
// Both are computed bit-serially over the unpacked Bits representation;
// command frames are short enough that table-driven byte processing would
// buy nothing.

// CRC5 computes the Gen2 CRC-5 over bits: polynomial x⁵+x³+1 (0b01001),
// preset 0b01001. The Query command carries this checksum.
func CRC5(bits Bits) byte {
	const poly = 0x09 // x⁵+x³+1, low 5 bits
	reg := byte(0x09) // preset per the Gen2 spec
	for _, b := range bits {
		msb := reg >> 4 & 1
		reg = reg << 1 & 0x1F
		if msb^b == 1 {
			reg ^= poly
		}
	}
	return reg & 0x1F
}

// CheckCRC5 verifies a frame whose final 5 bits are its CRC-5.
func CheckCRC5(frame Bits) bool {
	if len(frame) < 5 {
		return false
	}
	data, crcBits := frame[:len(frame)-5], frame[len(frame)-5:]
	want, err := crcBits.Uint(0, 5)
	if err != nil {
		return false
	}
	return CRC5(data) == byte(want)
}

// CRC16 computes the Gen2 CRC-16 over bits: CRC-16/CCITT with polynomial
// x¹⁶+x¹²+x⁵+1 (0x1021), preset 0xFFFF, and the result transmitted
// ones-complemented. Tag EPC backscatter and reader Select/ReqRN commands
// carry this checksum.
func CRC16(bits Bits) uint16 {
	reg := uint16(0xFFFF)
	for _, b := range bits {
		msb := byte(reg >> 15 & 1)
		reg <<= 1
		if msb^b == 1 {
			reg ^= 0x1021
		}
	}
	return ^reg
}

// CheckCRC16 verifies a frame whose final 16 bits are its (complemented)
// CRC-16. Per the spec, recomputing the raw CRC over data plus the
// transmitted checksum leaves the residue 0x1D0F.
func CheckCRC16(frame Bits) bool {
	if len(frame) < 16 {
		return false
	}
	data, crcBits := frame[:len(frame)-16], frame[len(frame)-16:]
	want, err := crcBits.Uint(0, 16)
	if err != nil {
		return false
	}
	return CRC16(data) == uint16(want)
}
