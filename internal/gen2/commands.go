package gen2

import (
	"errors"
	"fmt"
)

// CommandType identifies a reader→tag command.
type CommandType int

// Reader command types.
const (
	CmdUnknown CommandType = iota
	CmdQuery
	CmdQueryRep
	CmdQueryAdjust
	CmdACK
	CmdNAK
	CmdReqRN
	CmdSelect
	CmdRead
	CmdWrite
	CmdAccess
)

// String names the command.
func (c CommandType) String() string {
	switch c {
	case CmdQuery:
		return "Query"
	case CmdQueryRep:
		return "QueryRep"
	case CmdQueryAdjust:
		return "QueryAdjust"
	case CmdACK:
		return "ACK"
	case CmdNAK:
		return "NAK"
	case CmdReqRN:
		return "ReqRN"
	case CmdSelect:
		return "Select"
	case CmdRead:
		return "Read"
	case CmdWrite:
		return "Write"
	case CmdAccess:
		return "Access"
	default:
		return "Unknown"
	}
}

// Command is the interface every reader frame implements, mirroring
// gopacket's DecodingLayer pattern: serialization appends to a caller
// buffer, decoding fills a preallocated struct in place.
type Command interface {
	// Type identifies the frame.
	Type() CommandType
	// AppendBits serializes the frame (including its CRC, when the frame
	// carries one) onto dst and returns the extended slice.
	AppendBits(dst Bits) Bits
	// DecodeFromBits parses the frame from b, which must contain exactly
	// one frame.
	DecodeFromBits(b Bits) error
	fmt.Stringer
}

// ErrBadCommand reports undecodable command bits.
var ErrBadCommand = errors.New("gen2: bad command")

// ErrBadCRC reports a failed checksum.
var ErrBadCRC = errors.New("gen2: CRC mismatch")

// Session selects one of the four Gen2 inventory sessions S0–S3.
type Session byte

// Inventory sessions.
const (
	S0 Session = iota
	S1
	S2
	S3
)

// Query starts an inventory round (Gen2 §6.3.2.12.1.1): 22 bits total.
type Query struct {
	// DR selects the TRcal divide ratio (false: 8, true: 64/3).
	DR bool
	// M selects the uplink encoding: 0 = FM0, 1..3 = Miller 2/4/8.
	M byte
	// TRext asks the tag for an extended pilot-tone preamble. The paper's
	// 12-bit correlation preamble assumes TRext=0 FM0 framing.
	TRext bool
	// Sel restricts the round to tags matching the last Select (0/1: all,
	// 2: ~SL, 3: SL).
	Sel byte
	// Session is the inventory session for this round.
	Session Session
	// Target inventories tags whose session flag is A (false) or B (true).
	Target bool
	// Q sets the slot-count range: tags draw a slot from [0, 2^Q).
	Q byte
}

// Type implements Command.
func (*Query) Type() CommandType { return CmdQuery }

// AppendBits implements Command.
func (q *Query) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b1000, 4)
	dst = dst.AppendUint(b2u(q.DR), 1)
	dst = dst.AppendUint(uint64(q.M&3), 2)
	dst = dst.AppendUint(b2u(q.TRext), 1)
	dst = dst.AppendUint(uint64(q.Sel&3), 2)
	dst = dst.AppendUint(uint64(q.Session&3), 2)
	dst = dst.AppendUint(b2u(q.Target), 1)
	dst = dst.AppendUint(uint64(q.Q&0xF), 4)
	crc := CRC5(dst[start:])
	return dst.AppendUint(uint64(crc), 5)
}

// DecodeFromBits implements Command.
func (q *Query) DecodeFromBits(b Bits) error {
	if len(b) != 22 {
		return fmt.Errorf("%w: Query needs 22 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 4)
	if err != nil {
		return err
	}
	if cmd != 0b1000 {
		return fmt.Errorf("%w: prefix %04b is not Query", ErrBadCommand, cmd)
	}
	if !CheckCRC5(b) {
		return fmt.Errorf("%w: Query CRC-5", ErrBadCRC)
	}
	fields, _ := b.Uint(4, 13)
	q.DR = fields>>12&1 == 1
	q.M = byte(fields >> 10 & 3)
	q.TRext = fields>>9&1 == 1
	q.Sel = byte(fields >> 7 & 3)
	q.Session = Session(fields >> 5 & 3)
	q.Target = fields>>4&1 == 1
	q.Q = byte(fields & 0xF)
	return nil
}

// String implements fmt.Stringer.
func (q *Query) String() string {
	return fmt.Sprintf("Query{M=%d TRext=%t Sel=%d S%d Target=%t Q=%d}",
		q.M, q.TRext, q.Sel, q.Session, q.Target, q.Q)
}

// QueryRep advances to the next slot of the current round: 4 bits.
type QueryRep struct {
	Session Session
}

// Type implements Command.
func (*QueryRep) Type() CommandType { return CmdQueryRep }

// AppendBits implements Command.
func (q *QueryRep) AppendBits(dst Bits) Bits {
	dst = dst.AppendUint(0b00, 2)
	return dst.AppendUint(uint64(q.Session&3), 2)
}

// DecodeFromBits implements Command.
func (q *QueryRep) DecodeFromBits(b Bits) error {
	if len(b) != 4 {
		return fmt.Errorf("%w: QueryRep needs 4 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 2)
	if err != nil {
		return err
	}
	if cmd != 0 {
		return fmt.Errorf("%w: prefix %02b is not QueryRep", ErrBadCommand, cmd)
	}
	s, _ := b.Uint(2, 2)
	q.Session = Session(s)
	return nil
}

// String implements fmt.Stringer.
func (q *QueryRep) String() string { return fmt.Sprintf("QueryRep{S%d}", q.Session) }

// QueryAdjust tweaks Q mid-round: 9 bits.
type QueryAdjust struct {
	Session Session
	// UpDn adjusts Q: +1 (0b110), 0 (0b000), −1 (0b011).
	UpDn byte
}

// Valid UpDn codes.
const (
	QUp   byte = 0b110
	QSame byte = 0b000
	QDown byte = 0b011
)

// Type implements Command.
func (*QueryAdjust) Type() CommandType { return CmdQueryAdjust }

// AppendBits implements Command.
func (q *QueryAdjust) AppendBits(dst Bits) Bits {
	dst = dst.AppendUint(0b1001, 4)
	dst = dst.AppendUint(uint64(q.Session&3), 2)
	return dst.AppendUint(uint64(q.UpDn&7), 3)
}

// DecodeFromBits implements Command.
func (q *QueryAdjust) DecodeFromBits(b Bits) error {
	if len(b) != 9 {
		return fmt.Errorf("%w: QueryAdjust needs 9 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 4)
	if err != nil {
		return err
	}
	if cmd != 0b1001 {
		return fmt.Errorf("%w: prefix %04b is not QueryAdjust", ErrBadCommand, cmd)
	}
	s, _ := b.Uint(4, 2)
	ud, _ := b.Uint(6, 3)
	q.Session = Session(s)
	q.UpDn = byte(ud)
	switch q.UpDn {
	case QUp, QSame, QDown:
	default:
		return fmt.Errorf("%w: UpDn %03b", ErrBadCommand, q.UpDn)
	}
	return nil
}

// String implements fmt.Stringer.
func (q *QueryAdjust) String() string {
	return fmt.Sprintf("QueryAdjust{S%d UpDn=%03b}", q.Session, q.UpDn)
}

// ACK acknowledges a tag's RN16 and solicits its EPC: 18 bits.
type ACK struct {
	RN16 uint16
}

// Type implements Command.
func (*ACK) Type() CommandType { return CmdACK }

// AppendBits implements Command.
func (a *ACK) AppendBits(dst Bits) Bits {
	dst = dst.AppendUint(0b01, 2)
	return dst.AppendUint(uint64(a.RN16), 16)
}

// DecodeFromBits implements Command.
func (a *ACK) DecodeFromBits(b Bits) error {
	if len(b) != 18 {
		return fmt.Errorf("%w: ACK needs 18 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 2)
	if err != nil {
		return err
	}
	if cmd != 0b01 {
		return fmt.Errorf("%w: prefix %02b is not ACK", ErrBadCommand, cmd)
	}
	rn, _ := b.Uint(2, 16)
	a.RN16 = uint16(rn)
	return nil
}

// String implements fmt.Stringer.
func (a *ACK) String() string { return fmt.Sprintf("ACK{RN16=%#04x}", a.RN16) }

// NAK returns all tags in the round to Arbitrate: 8 bits.
type NAK struct{}

// Type implements Command.
func (*NAK) Type() CommandType { return CmdNAK }

// AppendBits implements Command.
func (*NAK) AppendBits(dst Bits) Bits { return dst.AppendUint(0b11000000, 8) }

// DecodeFromBits implements Command.
func (*NAK) DecodeFromBits(b Bits) error {
	if len(b) != 8 {
		return fmt.Errorf("%w: NAK needs 8 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 8)
	if err != nil {
		return err
	}
	if cmd != 0b11000000 {
		return fmt.Errorf("%w: prefix %08b is not NAK", ErrBadCommand, cmd)
	}
	return nil
}

// String implements fmt.Stringer.
func (*NAK) String() string { return "NAK{}" }

// ReqRN requests a new handle from an acknowledged tag: 40 bits.
type ReqRN struct {
	RN16 uint16
}

// Type implements Command.
func (*ReqRN) Type() CommandType { return CmdReqRN }

// AppendBits implements Command.
func (r *ReqRN) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b11000001, 8)
	dst = dst.AppendUint(uint64(r.RN16), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits implements Command.
func (r *ReqRN) DecodeFromBits(b Bits) error {
	if len(b) != 40 {
		return fmt.Errorf("%w: ReqRN needs 40 bits, got %d", ErrShortFrame, len(b))
	}
	cmd, err := b.Uint(0, 8)
	if err != nil {
		return err
	}
	if cmd != 0b11000001 {
		return fmt.Errorf("%w: prefix %08b is not ReqRN", ErrBadCommand, cmd)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: ReqRN CRC-16", ErrBadCRC)
	}
	rn, _ := b.Uint(8, 16)
	r.RN16 = uint16(rn)
	return nil
}

// String implements fmt.Stringer.
func (r *ReqRN) String() string { return fmt.Sprintf("ReqRN{RN16=%#04x}", r.RN16) }

// Select asserts or clears tag flags by EPC-memory mask match (Gen2
// §6.3.2.12.1.1). The paper's multi-sensor extension (§3.7) uses exactly
// this: "it may incorporate a select command into its query, specifying
// the identifier of the sensor it wishes to communicate with."
type Select struct {
	// Target chooses which flag the action modifies (4 = SL, 0–3 =
	// session S0–S3 inventoried flag).
	Target byte
	// Action encodes assert/deassert behavior for matching and
	// non-matching tags (3 bits).
	Action byte
	// MemBank selects the memory bank the mask applies to (1 = EPC).
	MemBank byte
	// Pointer is the starting bit address of the mask comparison.
	Pointer byte
	// Mask is the bit pattern to match.
	Mask Bits
	// Truncate asks matching tags to reply with truncated EPCs.
	Truncate bool
}

// Type implements Command.
func (*Select) Type() CommandType { return CmdSelect }

// AppendBits implements Command.
func (s *Select) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b1010, 4)
	dst = dst.AppendUint(uint64(s.Target&7), 3)
	dst = dst.AppendUint(uint64(s.Action&7), 3)
	dst = dst.AppendUint(uint64(s.MemBank&3), 2)
	dst = dst.AppendUint(uint64(s.Pointer), 8)
	dst = dst.AppendUint(uint64(len(s.Mask)), 8)
	dst = dst.AppendBits(s.Mask)
	dst = dst.AppendUint(b2u(s.Truncate), 1)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits implements Command.
func (s *Select) DecodeFromBits(b Bits) error {
	const fixed = 4 + 3 + 3 + 2 + 8 + 8
	if len(b) < fixed+1+16 {
		return fmt.Errorf("%w: Select needs >= %d bits, got %d", ErrShortFrame, fixed+17, len(b))
	}
	cmd, err := b.Uint(0, 4)
	if err != nil {
		return err
	}
	if cmd != 0b1010 {
		return fmt.Errorf("%w: prefix %04b is not Select", ErrBadCommand, cmd)
	}
	maskLen, err := b.Uint(20, 8)
	if err != nil {
		return err
	}
	want := fixed + int(maskLen) + 1 + 16
	if len(b) != want {
		return fmt.Errorf("%w: Select with %d-bit mask needs %d bits, got %d", ErrShortFrame, maskLen, want, len(b))
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: Select CRC-16", ErrBadCRC)
	}
	t, _ := b.Uint(4, 3)
	a, _ := b.Uint(7, 3)
	mb, _ := b.Uint(10, 2)
	ptr, _ := b.Uint(12, 8)
	s.Target = byte(t)
	s.Action = byte(a)
	s.MemBank = byte(mb)
	s.Pointer = byte(ptr)
	s.Mask = append(Bits(nil), b[fixed:fixed+int(maskLen)]...)
	tr, _ := b.Uint(fixed+int(maskLen), 1)
	s.Truncate = tr == 1
	return nil
}

// String implements fmt.Stringer.
func (s *Select) String() string {
	return fmt.Sprintf("Select{Target=%d Action=%d Bank=%d Ptr=%d Mask=%s}",
		s.Target, s.Action, s.MemBank, s.Pointer, s.Mask)
}

// DecodeCommand dispatches on the frame prefix and returns the decoded
// command. It is the package's gopacket-style "root decoder".
func DecodeCommand(b Bits) (Command, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: %d bits", ErrShortFrame, len(b))
	}
	p2, err := b.Uint(0, 2)
	if err != nil {
		return nil, err
	}
	var c Command
	switch p2 {
	case 0b00:
		c = &QueryRep{}
	case 0b01:
		c = &ACK{}
	default:
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: %d bits", ErrShortFrame, len(b))
		}
		p4, err := b.Uint(0, 4)
		if err != nil {
			return nil, err
		}
		switch p4 {
		case 0b1000:
			c = &Query{}
		case 0b1001:
			c = &QueryAdjust{}
		case 0b1010:
			c = &Select{}
		case 0b1100:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: %d bits", ErrShortFrame, len(b))
			}
			p8, err := b.Uint(0, 8)
			if err != nil {
				return nil, err
			}
			switch p8 {
			case 0b11000000:
				c = &NAK{}
			case 0b11000001:
				c = &ReqRN{}
			case 0b11000010:
				c = &Read{}
			case 0b11000011:
				c = &Write{}
			case 0b11000110:
				c = &Access{}
			default:
				return nil, fmt.Errorf("%w: prefix %08b", ErrBadCommand, p8)
			}
		default:
			return nil, fmt.Errorf("%w: prefix %04b", ErrBadCommand, p4)
		}
	}
	if err := c.DecodeFromBits(b); err != nil {
		return nil, err
	}
	return c, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
