package gen2

import "fmt"

// Access-password security (Gen2 §6.3.2.12.3.5, simplified to a
// single-shot exchange): a tag provisioned with a nonzero access password
// only accepts memory Writes after the reader proves knowledge of it.
// For IVN's actuation story this is the difference between "anyone with a
// beamformer can trigger a dose" and a deployable medical device: the
// threshold effect already prevents *unpowered* triggering, and the
// password prevents *unauthorized* triggering.
//
// The spec splits the password over two cover-coded half-exchanges; this
// model carries it in one frame (cover-coding protects over-the-air
// secrecy, which the simulator does not model adversarially).

// StateSecured is reached from Open by a correct Access command; it is
// defined here (rather than with the other states) because it belongs to
// the security layer.
const StateSecured TagState = StateOpen + 1

// Access presents the access password: 8-bit opcode 11000110, 32-bit
// password, 16-bit handle, CRC-16 (72 bits).
type Access struct {
	Password uint32
	Handle   uint16
}

// Type implements Command.
func (*Access) Type() CommandType { return CmdAccess }

// AppendBits implements Command.
func (a *Access) AppendBits(dst Bits) Bits {
	start := len(dst)
	dst = dst.AppendUint(0b11000110, 8)
	dst = dst.AppendUint(uint64(a.Password), 32)
	dst = dst.AppendUint(uint64(a.Handle), 16)
	crc := CRC16(dst[start:])
	return dst.AppendUint(uint64(crc), 16)
}

// DecodeFromBits implements Command.
func (a *Access) DecodeFromBits(b Bits) error {
	if len(b) != 72 {
		return fmt.Errorf("%w: Access needs 72 bits, got %d", ErrShortFrame, len(b))
	}
	op, err := b.Uint(0, 8)
	if err != nil {
		return err
	}
	if op != 0b11000110 {
		return fmt.Errorf("%w: prefix %08b is not Access", ErrBadCommand, op)
	}
	if !CheckCRC16(b) {
		return fmt.Errorf("%w: Access CRC-16", ErrBadCRC)
	}
	pwd, _ := b.Uint(8, 32)
	h, _ := b.Uint(40, 16)
	a.Password = uint32(pwd)
	a.Handle = uint16(h)
	return nil
}

// String implements fmt.Stringer (the password is not printed).
func (a *Access) String() string {
	return fmt.Sprintf("Access{handle=%#04x}", a.Handle)
}

// SetAccessPassword provisions the tag's access password (zero disables
// protection). In a real tag this lives in the reserved memory bank and is
// written at commissioning time.
func (t *TagLogic) SetAccessPassword(pwd uint32) { t.accessPwd = pwd }

// Secured reports whether the tag has accepted an Access this session.
func (t *TagLogic) Secured() bool { return t.state == StateSecured }

func (t *TagLogic) handleAccess(a *Access) Reply {
	if (t.state != StateOpen && t.state != StateSecured) || a.Handle != t.handle {
		return Reply{Kind: ReplyNone}
	}
	if t.accessPwd == 0 || a.Password != t.accessPwd {
		// Wrong password: real tags stay silent and remain Open; repeated
		// failures would arbitrate out, which the reader's NAK handles.
		return Reply{Kind: ReplyNone}
	}
	t.state = StateSecured
	// Reply: handle + CRC16, like the ReqRN grant.
	var b Bits
	b = b.AppendUint(uint64(t.handle), 16)
	crc := CRC16(b)
	b = b.AppendUint(uint64(crc), 16)
	return Reply{Kind: ReplyHandle, Bits: b}
}

// writePermitted reports whether a Write may proceed given the tag's
// protection state.
func (t *TagLogic) writePermitted() bool {
	if t.accessPwd == 0 {
		return t.state == StateOpen || t.state == StateSecured
	}
	return t.state == StateSecured
}
