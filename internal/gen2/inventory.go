package gen2

import (
	"fmt"

	"ivn/internal/rng"
)

// InventoryController is the reader-side inventory engine: it runs
// slotted-ALOHA sweeps against a tag population, re-sizing the Q
// parameter between sweeps from a collision-based backlog estimate.
// IVN's multi-sensor story (§3.7) rides on this machinery:
// "In order to avoid collision between multiple sensors, IVN can leverage
// a variety of techniques from standard backscatter communications."
type InventoryController struct {
	// Session is the inventory session to run rounds in.
	Session Session
	// InitialQ seeds the slot-count exponent (0-15).
	InitialQ byte
	// MaxCommands bounds a round (guards against livelock).
	MaxCommands int
}

// NewInventoryController returns a controller with spec-typical defaults.
func NewInventoryController(session Session) *InventoryController {
	return &InventoryController{
		Session:     session,
		InitialQ:    4,
		MaxCommands: 4096,
	}
}

// SlotOutcome classifies one slot of a round.
type SlotOutcome int

// Slot outcomes.
const (
	SlotEmpty SlotOutcome = iota
	SlotSingle
	SlotCollision
)

// String names the outcome.
func (s SlotOutcome) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotSingle:
		return "single"
	case SlotCollision:
		return "collision"
	default:
		return fmt.Sprintf("SlotOutcome(%d)", int(s))
	}
}

// RoundStats summarizes a completed round.
type RoundStats struct {
	// EPCs are the identifiers read, in singulation order.
	EPCs [][]byte
	// Commands is the number of reader commands issued.
	Commands int
	// Slots, Empties, Singles, Collisions count slot outcomes.
	Slots, Empties, Singles, Collisions int
	// FinalQ is the floating Q at round end.
	FinalQ float64
}

// Efficiency returns singles per slot — the throughput metric slotted
// ALOHA maximizes near Q ≈ log2(population).
func (s RoundStats) Efficiency() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.Singles) / float64(s.Slots)
}

// medium abstracts what the controller can observe of the air interface.
// With more than one tag backscattering in a slot the reader sees a
// collision (CRC/preamble failure), not bits.
type medium struct {
	tags []*TagLogic
}

// broadcast sends a command to every powered tag and classifies replies.
func (m *medium) broadcast(c Command) (SlotOutcome, Reply, *TagLogic) {
	var got []Reply
	var responders []*TagLogic
	for _, t := range m.tags {
		if r := t.HandleCommand(c); r.Kind != ReplyNone {
			got = append(got, r)
			responders = append(responders, t)
		}
	}
	switch len(got) {
	case 0:
		return SlotEmpty, Reply{Kind: ReplyNone}, nil
	case 1:
		return SlotSingle, got[0], responders[0]
	default:
		return SlotCollision, Reply{Kind: ReplyNone}, nil
	}
}

// RunRound inventories a population of powered tags. Each sweep issues a
// Query with the current Q and walks all 2^Q slots with QueryReps, ACKing
// singles; after the sweep the backlog is estimated from the collision
// count (Schoute's 2.39·c estimator) and Q is re-sized for the next sweep.
// The round ends when a sweep drains (no replies) or MaxCommands is hit.
func (ic *InventoryController) RunRound(tags []*TagLogic, r *rng.Rand) (*RoundStats, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("gen2: no tags to inventory")
	}
	maxCmds := ic.MaxCommands
	if maxCmds <= 0 {
		maxCmds = 4096
	}
	m := &medium{tags: tags}
	stats := &RoundStats{}
	q := ic.InitialQ & 0xF

	issue := func(c Command) (SlotOutcome, Reply, *TagLogic) {
		stats.Commands++
		return m.broadcast(c)
	}

	for stats.Commands < maxCmds {
		// One sweep: Query opens slot 0; QueryReps advance.
		outcome, reply, _ := issue(&Query{Session: ic.Session, Q: q})
		sweepSingles, sweepCollisions := 0, 0
		slots := 1 << uint(q)
		for slot := 0; slot < slots && stats.Commands < maxCmds; slot++ {
			stats.Slots++
			switch outcome {
			case SlotSingle:
				stats.Singles++
				sweepSingles++
				var rn RN16Reply
				if err := rn.DecodeFromBits(reply.Bits); err != nil {
					return nil, fmt.Errorf("gen2: bad RN16 reply: %w", err)
				}
				ackOutcome, epcReply, _ := issue(&ACK{RN16: rn.RN16})
				if ackOutcome == SlotSingle && epcReply.Kind == ReplyEPC {
					var er EPCReply
					if err := er.DecodeFromBits(epcReply.Bits); err == nil {
						stats.EPCs = append(stats.EPCs, er.EPC)
					}
				}
			case SlotCollision:
				stats.Collisions++
				sweepCollisions++
			case SlotEmpty:
				stats.Empties++
			}
			if slot < slots-1 {
				outcome, reply, _ = issue(&QueryRep{Session: ic.Session})
			}
		}
		if sweepSingles == 0 && sweepCollisions == 0 {
			break // drained
		}
		// Schoute backlog estimate: ≈2.39 tags per colliding slot.
		backlog := int(2.39*float64(sweepCollisions) + 0.5)
		if backlog == 0 {
			// Singles only: one more tight sweep catches stragglers that
			// were mid-handshake.
			q = 1
			continue
		}
		nq := byte(0)
		for 1<<uint(nq) < backlog && nq < 15 {
			nq++
		}
		q = nq
	}
	stats.FinalQ = float64(q)
	_ = r
	return stats, nil
}

// InventoryAll runs rounds with alternating target flags until every tag
// has been read or maxRounds is exhausted, returning the union of EPCs.
// Real deployments flip the Target between A and B so tags inventoried in
// one round answer the next.
func (ic *InventoryController) InventoryAll(tags []*TagLogic, maxRounds int, r *rng.Rand) ([][]byte, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("gen2: maxRounds %d < 1", maxRounds)
	}
	seen := map[string]bool{}
	var out [][]byte
	for round := 0; round < maxRounds && len(seen) < len(tags); round++ {
		stats, err := ic.RunRound(tags, r)
		if err != nil {
			return nil, err
		}
		for _, epc := range stats.EPCs {
			if !seen[string(epc)] {
				seen[string(epc)] = true
				out = append(out, epc)
			}
		}
	}
	return out, nil
}
