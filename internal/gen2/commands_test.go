package gen2

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := &Query{DR: true, M: 0, TRext: false, Sel: 3, Session: S2, Target: true, Q: 4}
	bits := q.AppendBits(nil)
	if len(bits) != 22 {
		t.Fatalf("Query frame is %d bits, want 22", len(bits))
	}
	var got Query
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got != *q {
		t.Fatalf("round trip %+v != %+v", got, *q)
	}
}

func TestQueryCRCRejectsCorruption(t *testing.T) {
	q := &Query{Q: 7}
	bits := q.AppendBits(nil)
	bits[6] ^= 1
	var got Query
	err := got.DecodeFromBits(bits)
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted Query error = %v, want ErrBadCRC", err)
	}
}

func TestQueryWrongLengthAndPrefix(t *testing.T) {
	var q Query
	if err := q.DecodeFromBits(make(Bits, 21)); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame error = %v", err)
	}
	bits := (&QueryAdjust{UpDn: QSame}).AppendBits(nil)
	bits = append(bits, make(Bits, 13)...)
	if err := q.DecodeFromBits(bits[:22]); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("wrong prefix error = %v", err)
	}
}

func TestQueryRepRoundTrip(t *testing.T) {
	q := &QueryRep{Session: S3}
	bits := q.AppendBits(nil)
	if len(bits) != 4 {
		t.Fatalf("QueryRep is %d bits, want 4", len(bits))
	}
	var got QueryRep
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.Session != S3 {
		t.Fatalf("session = %v", got.Session)
	}
}

func TestQueryAdjustRoundTripAndValidation(t *testing.T) {
	for _, ud := range []byte{QUp, QSame, QDown} {
		q := &QueryAdjust{Session: S1, UpDn: ud}
		bits := q.AppendBits(nil)
		var got QueryAdjust
		if err := got.DecodeFromBits(bits); err != nil {
			t.Fatal(err)
		}
		if got != *q {
			t.Fatalf("round trip %+v != %+v", got, *q)
		}
	}
	bad := &QueryAdjust{Session: S1, UpDn: 0b101}
	bits := bad.AppendBits(nil)
	var got QueryAdjust
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("invalid UpDn error = %v", err)
	}
}

func TestACKRoundTrip(t *testing.T) {
	a := &ACK{RN16: 0xBEEF}
	bits := a.AppendBits(nil)
	if len(bits) != 18 {
		t.Fatalf("ACK is %d bits, want 18", len(bits))
	}
	var got ACK
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.RN16 != 0xBEEF {
		t.Fatalf("RN16 = %#x", got.RN16)
	}
}

func TestNAKRoundTrip(t *testing.T) {
	bits := (&NAK{}).AppendBits(nil)
	if len(bits) != 8 {
		t.Fatalf("NAK is %d bits", len(bits))
	}
	var got NAK
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
}

func TestReqRNRoundTripAndCRC(t *testing.T) {
	r := &ReqRN{RN16: 0x1234}
	bits := r.AppendBits(nil)
	if len(bits) != 40 {
		t.Fatalf("ReqRN is %d bits, want 40", len(bits))
	}
	var got ReqRN
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.RN16 != 0x1234 {
		t.Fatalf("RN16 = %#x", got.RN16)
	}
	bits[20] ^= 1
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted ReqRN error = %v", err)
	}
}

func TestSelectRoundTrip(t *testing.T) {
	mask, _ := ParseBits("11100010")
	s := &Select{Target: 4, Action: 0, MemBank: 1, Pointer: 16, Mask: mask, Truncate: false}
	bits := s.AppendBits(nil)
	var got Select
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.Target != 4 || got.MemBank != 1 || got.Pointer != 16 || !got.Mask.Equal(mask) {
		t.Fatalf("round trip %+v", got)
	}
}

func TestSelectEmptyMask(t *testing.T) {
	s := &Select{Target: 4, Action: 1, MemBank: 1}
	bits := s.AppendBits(nil)
	var got Select
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if len(got.Mask) != 0 {
		t.Fatalf("mask = %v", got.Mask)
	}
}

func TestSelectLengthMismatch(t *testing.T) {
	mask, _ := ParseBits("1010")
	s := &Select{Target: 0, MemBank: 1, Mask: mask}
	bits := s.AppendBits(nil)
	var got Select
	if err := got.DecodeFromBits(bits[:len(bits)-1]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("truncated Select error = %v", err)
	}
}

func TestDecodeCommandDispatch(t *testing.T) {
	mask, _ := ParseBits("10")
	cmds := []Command{
		&Query{Q: 2, Session: S1},
		&QueryRep{Session: S1},
		&QueryAdjust{Session: S0, UpDn: QDown},
		&ACK{RN16: 0xCAFE},
		&NAK{},
		&ReqRN{RN16: 0x0102},
		&Select{Target: 4, MemBank: 1, Mask: mask},
	}
	for _, c := range cmds {
		bits := c.AppendBits(nil)
		got, err := DecodeCommand(bits)
		if err != nil {
			t.Fatalf("%s: %v", c.Type(), err)
		}
		if got.Type() != c.Type() {
			t.Fatalf("dispatched %s as %s", c.Type(), got.Type())
		}
		if got.String() == "" || !strings.Contains(got.String(), got.Type().String()[:3]) {
			t.Fatalf("%s: unhelpful String %q", got.Type(), got.String())
		}
		// Re-serialization must be byte-identical (gopacket-style
		// serialize/decode symmetry).
		if !got.AppendBits(nil).Equal(bits) {
			t.Fatalf("%s: re-serialization differs", c.Type())
		}
	}
}

func TestDecodeCommandErrors(t *testing.T) {
	if _, err := DecodeCommand(Bits{1}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("1-bit decode error = %v", err)
	}
	if _, err := DecodeCommand(Bits{1, 1, 1}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("3-bit decode error = %v", err)
	}
	// 1011 is an unused prefix.
	if _, err := DecodeCommand(Bits{1, 0, 1, 1, 0, 0}); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("unknown prefix error = %v", err)
	}
	// 11000111 is an unmodeled extended command.
	b, _ := ParseBits("1100011100000000")
	if _, err := DecodeCommand(b); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("unknown extended prefix error = %v", err)
	}
}

func TestCommandTypeStrings(t *testing.T) {
	names := map[CommandType]string{
		CmdQuery: "Query", CmdQueryRep: "QueryRep", CmdQueryAdjust: "QueryAdjust",
		CmdACK: "ACK", CmdNAK: "NAK", CmdReqRN: "ReqRN", CmdSelect: "Select",
		CmdUnknown: "Unknown",
	}
	for ct, want := range names {
		if ct.String() != want {
			t.Errorf("%d.String() = %q, want %q", ct, ct.String(), want)
		}
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(m, sel, q byte, dr, trext, target bool, session byte) bool {
		orig := &Query{
			DR: dr, M: m & 3, TRext: trext, Sel: sel & 3,
			Session: Session(session & 3), Target: target, Q: q & 0xF,
		}
		bits := orig.AppendBits(nil)
		var got Query
		if err := got.DecodeFromBits(bits); err != nil {
			return false
		}
		return got == *orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelectRoundTrip(t *testing.T) {
	f := func(target, action, bank, ptr byte, maskBytes []byte, trunc bool) bool {
		if len(maskBytes) > 8 {
			maskBytes = maskBytes[:8]
		}
		mask := BitsFromBytes(maskBytes)
		orig := &Select{
			Target: target & 7, Action: action & 7, MemBank: bank & 3,
			Pointer: ptr, Mask: mask, Truncate: trunc,
		}
		bits := orig.AppendBits(nil)
		var got Select
		if err := got.DecodeFromBits(bits); err != nil {
			return false
		}
		return got.Target == orig.Target && got.Action == orig.Action &&
			got.MemBank == orig.MemBank && got.Pointer == orig.Pointer &&
			got.Mask.Equal(orig.Mask) && got.Truncate == orig.Truncate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEPCReplyRoundTrip(t *testing.T) {
	epc := []byte{0xE2, 0x00, 0x12, 0x34, 0x56, 0x78}
	r, err := NewEPCReply(epc)
	if err != nil {
		t.Fatal(err)
	}
	bits := r.AppendBits(nil)
	wantLen := 16 + len(epc)*8 + 16
	if len(bits) != wantLen {
		t.Fatalf("EPC reply is %d bits, want %d", len(bits), wantLen)
	}
	var got EPCReply
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.PC != r.PC || len(got.EPC) != len(epc) {
		t.Fatalf("round trip %+v", got)
	}
	for i := range epc {
		if got.EPC[i] != epc[i] {
			t.Fatalf("EPC byte %d differs", i)
		}
	}
	bits[20] ^= 1
	if err := got.DecodeFromBits(bits); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupted EPC reply error = %v", err)
	}
}

func TestNewEPCReplyValidation(t *testing.T) {
	if _, err := NewEPCReply([]byte{1}); err == nil {
		t.Fatal("odd EPC accepted")
	}
	if _, err := NewEPCReply(nil); err == nil {
		t.Fatal("empty EPC accepted")
	}
	if _, err := NewEPCReply(make([]byte, 64)); err == nil {
		t.Fatal("oversized EPC accepted")
	}
}

func TestRN16ReplyRoundTrip(t *testing.T) {
	r := &RN16Reply{RN16: 0xA5C3}
	bits := r.AppendBits(nil)
	var got RN16Reply
	if err := got.DecodeFromBits(bits); err != nil {
		t.Fatal(err)
	}
	if got.RN16 != 0xA5C3 {
		t.Fatalf("RN16 = %#x", got.RN16)
	}
	if err := got.DecodeFromBits(bits[:10]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short RN16 error = %v", err)
	}
}

func BenchmarkQueryEncodeDecode(b *testing.B) {
	q := &Query{Q: 4, Session: S2}
	var buf Bits
	var got Query
	for i := 0; i < b.N; i++ {
		buf = q.AppendBits(buf[:0])
		if err := got.DecodeFromBits(buf); err != nil {
			b.Fatal(err)
		}
	}
}
