package gen2

import (
	"testing"
	"testing/quick"
)

func TestAppendUintAndUint(t *testing.T) {
	var b Bits
	b = b.AppendUint(0b1011, 4)
	if b.String() != "1011" {
		t.Fatalf("AppendUint → %q", b.String())
	}
	v, err := b.Uint(0, 4)
	if err != nil || v != 0b1011 {
		t.Fatalf("Uint = %v, %v", v, err)
	}
	v, err = b.Uint(1, 2)
	if err != nil || v != 0b01 {
		t.Fatalf("Uint(1,2) = %v, %v", v, err)
	}
}

func TestUintErrors(t *testing.T) {
	b := Bits{1, 0, 1}
	if _, err := b.Uint(2, 2); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := b.Uint(-1, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := (Bits{2}).Uint(0, 1); err == nil {
		t.Fatal("non-bit value accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := (Bits{0, 1, 0}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Bits{0, 7}).Validate(); err == nil {
		t.Fatal("invalid bit accepted")
	}
}

func TestEqual(t *testing.T) {
	a := Bits{1, 0, 1}
	if !a.Equal(Bits{1, 0, 1}) {
		t.Fatal("equal slices reported unequal")
	}
	if a.Equal(Bits{1, 0}) || a.Equal(Bits{1, 0, 0}) {
		t.Fatal("unequal slices reported equal")
	}
}

func TestParseBitsRoundTrip(t *testing.T) {
	b, err := ParseBits("1101 0010 0011")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "1101 0010 0011" {
		t.Fatalf("round trip → %q", b.String())
	}
	if _, err := ParseBits("10x1"); err == nil {
		t.Fatal("invalid character accepted")
	}
}

func TestBytesPackUnpack(t *testing.T) {
	orig := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	b := BitsFromBytes(orig)
	if len(b) != 32 {
		t.Fatalf("unpacked length %d", len(b))
	}
	packed, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if packed[i] != orig[i] {
			t.Fatalf("byte %d: %x != %x", i, packed[i], orig[i])
		}
	}
	// Partial final byte is left-aligned.
	part, err := (Bits{1, 1, 1}).Bytes()
	if err != nil || part[0] != 0b11100000 {
		t.Fatalf("partial pack = %08b, %v", part[0], err)
	}
	if _, err := (Bits{5}).Bytes(); err == nil {
		t.Fatal("invalid bit packed")
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		b := BitsFromBytes(p)
		packed, err := b.Bytes()
		if err != nil {
			return false
		}
		if len(packed) != len(p) {
			return len(p) == 0 && len(packed) == 0
		}
		for i := range p {
			if packed[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAppendUintRoundTrip(t *testing.T) {
	f := func(v uint32, w uint8) bool {
		width := int(w%32) + 1
		masked := uint64(v) & (1<<uint(width) - 1)
		b := Bits{}.AppendUint(uint64(v), width)
		got, err := b.Uint(0, width)
		return err == nil && got == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
