package gen2

import (
	"fmt"
	"sync"

	"ivn/internal/dsp"
)

// FM0 (bi-phase space) is the Gen2 uplink encoding IVN's tags use. The
// level inverts at every symbol boundary; a data-0 adds a mid-symbol
// inversion, a data-1 does not. The TRext=0 preamble is the six-symbol
// sequence 1,0,1,0,v,1 whose half-bit level pattern is "110100100011" —
// exactly the 12-bit preamble the paper correlates against to declare an
// in-vivo communication successful (§6.2).

// FM0PreambleHalfBits is the preamble's half-bit level pattern, starting
// high. Index i is the level (1 = high, 0 = low) of half-bit i.
var FM0PreambleHalfBits = Bits{1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 1}

// FM0PreambleString is the preamble as the paper prints it.
const FM0PreambleString = "110100100011"

// FM0Encoder turns payload bits into a ±1 baseband level waveform.
type FM0Encoder struct {
	// SamplesPerHalfBit sets the time resolution; one FM0 symbol spans two
	// half-bits.
	SamplesPerHalfBit int
	// TRext prepends the extended pilot (12 leading data-0 symbols).
	TRext bool
}

// pilotSymbols is the TRext pilot length in FM0 symbols.
const pilotSymbols = 12

// Encode serializes preamble + payload + terminating dummy data-1 into ±1
// levels. It errors on invalid bits or a non-positive sample count.
func (e FM0Encoder) Encode(payload Bits) ([]float64, error) {
	if e.SamplesPerHalfBit < 1 {
		return nil, fmt.Errorf("gen2: SamplesPerHalfBit %d < 1", e.SamplesPerHalfBit)
	}
	if err := payload.Validate(); err != nil {
		return nil, err
	}
	sp := e.SamplesPerHalfBit
	nHalf := len(FM0PreambleHalfBits) + (len(payload)+1)*2
	if e.TRext {
		nHalf += pilotSymbols * 2
	}
	out := make([]float64, 0, nHalf*sp)
	writeHalf := func(level float64) {
		for i := 0; i < sp; i++ {
			out = append(out, level)
		}
	}
	level := 1.0
	if e.TRext {
		// Pilot: 12 data-0 symbols, each inverting at its boundary and at
		// mid-symbol, ending high so the preamble starts at its reference
		// level.
		for s := 0; s < pilotSymbols; s++ {
			level = -level
			writeHalf(level)
			level = -level
			writeHalf(level)
		}
	}
	for _, hb := range FM0PreambleHalfBits {
		if hb == 1 {
			writeHalf(1)
			level = 1
		} else {
			writeHalf(-1)
			level = -1
		}
	}
	emit := func(bit byte) {
		// Boundary inversion.
		level = -level
		writeHalf(level)
		if bit == 0 {
			// Mid-symbol inversion.
			level = -level
		}
		writeHalf(level)
	}
	for _, b := range payload {
		emit(b)
	}
	emit(1) // terminating dummy data-1
	return out, nil
}

// FM0PreambleTemplate returns the ±1 preamble waveform at the given
// resolution, for matched filtering / correlation detection.
func FM0PreambleTemplate(samplesPerHalfBit int) []float64 {
	out := make([]float64, 0, len(FM0PreambleHalfBits)*samplesPerHalfBit)
	for _, hb := range FM0PreambleHalfBits {
		l := -1.0
		if hb == 1 {
			l = 1
		}
		for i := 0; i < samplesPerHalfBit; i++ {
			out = append(out, l)
		}
	}
	return out
}

// preambleTemplateCache memoizes the prepared decode templates per
// resolution: every trial of an experiment decodes against the same
// preamble, so the template pair is built once per SamplesPerHalfBit and
// shared read-only across all (possibly parallel) decoders. Values
// stored here must never be mutated — they alias into every concurrent
// correlation.
var preambleTemplateCache sync.Map // int → [2][]float64

// preambleTemplates returns the cached (template, inverted-template)
// pair for a resolution, building and memoizing it on first use. The
// returned slices are shared and read-only.
func preambleTemplates(samplesPerHalfBit int) (tmpl, inv []float64) {
	if v, ok := preambleTemplateCache.Load(samplesPerHalfBit); ok {
		pair := v.([2][]float64)
		return pair[0], pair[1]
	}
	tmpl = FM0PreambleTemplate(samplesPerHalfBit)
	inv = make([]float64, len(tmpl))
	for i, v := range tmpl {
		inv[i] = -v
	}
	// Concurrent first users may race to build; LoadOrStore keeps one
	// winner so every caller aliases the same immutable pair.
	v, _ := preambleTemplateCache.LoadOrStore(samplesPerHalfBit, [2][]float64{tmpl, inv})
	pair := v.([2][]float64)
	return pair[0], pair[1]
}

// FM0Decoder recovers payload bits from a (possibly noisy) level waveform.
type FM0Decoder struct {
	SamplesPerHalfBit int
	// CorrelationThreshold is the minimum normalized preamble correlation
	// to accept a frame; the paper uses 0.8.
	CorrelationThreshold float64
}

// DecodePayload decodes nbits payload bits from samples, which must begin
// exactly at the first payload half-bit (i.e. immediately after the
// preamble). A data bit is 1 when its two halves agree in sign and 0 when
// they disagree.
func (d FM0Decoder) DecodePayload(samples []float64, nbits int) (Bits, error) {
	sp := d.SamplesPerHalfBit
	if sp < 1 {
		return nil, fmt.Errorf("gen2: SamplesPerHalfBit %d < 1", sp)
	}
	need := nbits * 2 * sp
	if len(samples) < need {
		return nil, fmt.Errorf("%w: need %d samples for %d bits, have %d", ErrShortFrame, need, nbits, len(samples))
	}
	out := make(Bits, nbits)
	for i := 0; i < nbits; i++ {
		h1 := mean(samples[(2*i)*sp : (2*i+1)*sp])
		h2 := mean(samples[(2*i+1)*sp : (2*i+2)*sp])
		if h1*h2 > 0 {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out, nil
}

// FrameResult is a decoded uplink frame with its detection metadata.
type FrameResult struct {
	// Payload is the recovered bit string.
	Payload Bits
	// Correlation is the normalized preamble correlation at the accepted
	// alignment.
	Correlation float64
	// Offset is the sample index where the preamble begins.
	Offset int
}

// DecodeFrame locates the preamble in samples by normalized correlation,
// requires it to clear the threshold, and decodes nbits of payload that
// follow it. The input should be a real envelope with its DC bias removed
// (the backscatter modulation rides on top of the carrier envelope).
//
// The detector is polarity-invariant: the sign of a backscatter link is
// arbitrary (it depends on the unknown channel phase), so both template
// polarities are tried and the stronger alignment wins. The payload
// decision itself (half-bit agreement) is inherently sign-free.
func (d FM0Decoder) DecodeFrame(samples []float64, nbits int) (*FrameResult, error) {
	sp := d.SamplesPerHalfBit
	if sp < 1 {
		return nil, fmt.Errorf("gen2: SamplesPerHalfBit %d < 1", sp)
	}
	th := d.CorrelationThreshold
	if th == 0 {
		th = 0.8
	}
	tmpl, inv := preambleTemplates(sp)
	best, lag := dsp.MaxCorrelation(samples, tmpl)
	if lag < 0 {
		return nil, fmt.Errorf("%w: capture shorter than preamble", ErrShortFrame)
	}
	// Inverted polarity: correlate against the negated template.
	bestInv, lagInv := dsp.MaxCorrelation(samples, inv)
	if bestInv > best {
		best, lag = bestInv, lagInv
	}
	if best < th {
		return nil, fmt.Errorf("gen2: preamble correlation %.3f below threshold %.3f", best, th)
	}
	payloadStart := lag + len(tmpl)
	payload, err := d.DecodePayload(samples[payloadStart:], nbits)
	if err != nil {
		return nil, err
	}
	return &FrameResult{Payload: payload, Correlation: best, Offset: lag}, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
