package gen2

import (
	"fmt"
	"math"
)

// PIE (pulse-interval encoding) is the Gen2 downlink line code: every
// symbol is a high interval followed by a low pulse of width PW; a data-0
// spans one Tari, a data-1 spans 1.5–2 Tari. A frame starts with a
// delimiter (fixed low), a data-0 reference, and an RTcal symbol whose
// length is data-0 + data-1; a Query preamble additionally carries TRcal,
// which sets the tag's backscatter link frequency.
//
// A battery-free tag decodes PIE with an envelope detector, which is why
// CIB must bound its beamforming envelope ripple (Eq. 7): spurious dips in
// the "high" level look like extra low pulses and corrupt the symbol
// timing. That failure mode emerges naturally from this decoder, and the
// flatness-constraint ablation exercises it.

// PIEParams fixes the downlink timing and modulation.
type PIEParams struct {
	// Tari is the data-0 length in seconds (Gen2 allows 6.25–25 µs).
	Tari float64 //ivn:unit s
	// Data1Len is the data-1 length; must be 1.5–2 × Tari.
	Data1Len float64 //ivn:unit s
	// PW is the low-pulse width; Gen2 allows 0.265·Tari–0.525·Tari.
	PW float64 //ivn:unit s
	// Delimiter is the frame-start low interval (12.5 µs ± 5%).
	Delimiter float64 //ivn:unit s
	// TRcal sets the tag backscatter timing; must be 1.1–3 × RTcal.
	TRcal float64 //ivn:unit s
	// SampleRate is the envelope sample rate in Hz.
	SampleRate float64 //ivn:unit Hz
	// ModulationDepth is the fraction of amplitude removed during a low
	// pulse, in (0, 1]; Gen2 requires 0.8–1.0 for reader transmissions.
	ModulationDepth float64
}

// DefaultPIE returns the timing IVN's prototype uses: 12.5 µs Tari,
// 2×Tari data-1, half-Tari PW, 90% modulation depth.
//
//ivn:unit sampleRate Hz
func DefaultPIE(sampleRate float64) PIEParams {
	tari := 12.5e-6
	return PIEParams{
		Tari:            tari,
		Data1Len:        2 * tari,
		PW:              tari / 2,
		Delimiter:       12.5e-6,
		TRcal:           2.5 * (tari + 2*tari),
		SampleRate:      sampleRate,
		ModulationDepth: 0.9,
	}
}

// RTcal is data-0 + data-1, the reader→tag calibration interval.
//
//ivn:unit return s
func (p PIEParams) RTcal() float64 { return p.Tari + p.Data1Len }

// Validate checks the Gen2 timing constraints.
func (p PIEParams) Validate() error {
	if p.SampleRate <= 0 {
		return fmt.Errorf("gen2: PIE sample rate %v <= 0", p.SampleRate)
	}
	if p.Tari < 6.25e-6 || p.Tari > 25e-6 {
		return fmt.Errorf("gen2: Tari %v s outside [6.25µs, 25µs]", p.Tari)
	}
	if p.Data1Len < 1.5*p.Tari || p.Data1Len > 2*p.Tari {
		return fmt.Errorf("gen2: data-1 length %v outside [1.5, 2]×Tari", p.Data1Len)
	}
	if p.PW < 0.265*p.Tari || p.PW > 0.525*p.Tari {
		return fmt.Errorf("gen2: PW %v outside [0.265, 0.525]×Tari", p.PW)
	}
	if p.TRcal < 1.1*p.RTcal() || p.TRcal > 3*p.RTcal() {
		return fmt.Errorf("gen2: TRcal %v outside [1.1, 3]×RTcal", p.TRcal)
	}
	if p.ModulationDepth <= 0 || p.ModulationDepth > 1 {
		return fmt.Errorf("gen2: modulation depth %v outside (0, 1]", p.ModulationDepth)
	}
	if p.Delimiter <= 0 {
		return fmt.Errorf("gen2: delimiter %v <= 0", p.Delimiter)
	}
	return nil
}

//ivn:unit d s
func (p PIEParams) samples(d float64) int {
	return int(math.Round(d * p.SampleRate))
}

// appendLevel extends env with n samples of level v.
func appendLevel(env []float64, n int, v float64) []float64 {
	for i := 0; i < n; i++ {
		env = append(env, v)
	}
	return env
}

// EncodeFrame renders a command frame as an amplitude envelope in [lo, 1]:
// delimiter + data-0 + RTcal (+ TRcal when preamble) + PIE(bits). The
// envelope multiplies the transmitter's carrier; lo = 1 − ModulationDepth.
// Set preamble=true for Query (which begins an inventory round); other
// commands use the frame-sync (no TRcal).
func (p PIEParams) EncodeFrame(bits Bits, preamble bool) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := bits.Validate(); err != nil {
		return nil, err
	}
	lo := 1 - p.ModulationDepth
	pw := p.samples(p.PW)
	// Size the envelope up front: FrameDuration is the exact on-air time,
	// so rate·duration bounds the sample count (± rounding per segment).
	env := make([]float64, 0, p.samples(p.FrameDuration(bits, preamble))+8)
	// Delimiter: low.
	env = appendLevel(env, p.samples(p.Delimiter), lo)
	// Data-0 reference symbol.
	env = appendLevel(env, p.samples(p.Tari)-pw, 1)
	env = appendLevel(env, pw, lo)
	// RTcal symbol.
	env = appendLevel(env, p.samples(p.RTcal())-pw, 1)
	env = appendLevel(env, pw, lo)
	if preamble {
		env = appendLevel(env, p.samples(p.TRcal)-pw, 1)
		env = appendLevel(env, pw, lo)
	}
	for _, b := range bits {
		dur := p.Tari
		if b == 1 {
			dur = p.Data1Len
		}
		env = appendLevel(env, p.samples(dur)-pw, 1)
		env = appendLevel(env, pw, lo)
	}
	return env, nil
}

// FrameDuration returns the on-air time of a frame in seconds — the Δt of
// the paper's flatness constraint (Eq. 9): "For a typical RFID reader's
// query, Δt ≈ 800µs."
//
//ivn:unit return s
func (p PIEParams) FrameDuration(bits Bits, preamble bool) float64 {
	d := p.Delimiter + p.Tari + p.RTcal()
	if preamble {
		d += p.TRcal
	}
	for _, b := range bits {
		if b == 1 {
			d += p.Data1Len
		} else {
			d += p.Tari
		}
	}
	return d
}

// PIEInfo carries the timing a decoder recovered from the frame preamble.
type PIEInfo struct {
	// Tari, RTcal, TRcal are the measured intervals in seconds; TRcal is
	// zero for frame-sync (non-Query) frames.
	Tari, RTcal, TRcal float64 //ivn:unit s
	// Threshold is the amplitude decision level used (half the amplitude
	// difference, as the paper describes the tag's energy detector).
	Threshold float64
}

// DecodeFrame recovers command bits from an amplitude envelope, emulating
// a tag's envelope detector. It binarizes at half the amplitude swing,
// locates the delimiter, measures the reference symbols, and then
// classifies data symbols against the RTcal/2 pivot. Decoding ends at the
// first high interval longer than RTcal (the reader's post-frame CW).
func (p PIEParams) DecodeFrame(env []float64) (Bits, PIEInfo, error) {
	if p.SampleRate <= 0 {
		return nil, PIEInfo{}, fmt.Errorf("gen2: PIE sample rate %v <= 0", p.SampleRate)
	}
	if len(env) == 0 {
		return nil, PIEInfo{}, fmt.Errorf("%w: empty envelope", ErrShortFrame)
	}
	lo, hi := env[0], env[0]
	for _, v := range env {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 1e-9 {
		return nil, PIEInfo{}, fmt.Errorf("gen2: no modulation in envelope")
	}
	// "The sensor's energy detector uses half the amplitude difference as
	// the decoding threshold" (paper §3.6).
	th := lo + (hi-lo)/2

	// Run-length encode the binarized envelope.
	type run struct {
		high bool
		n    int
	}
	var runs []run
	for _, v := range env {
		h := v > th
		if len(runs) > 0 && runs[len(runs)-1].high == h {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{high: h, n: 1})
		}
	}
	dt := 1 / p.SampleRate
	// Find the delimiter: first low run of at least 8 µs.
	start := -1
	for i, r := range runs {
		if !r.high && float64(r.n)*dt >= 8e-6 {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, PIEInfo{}, fmt.Errorf("gen2: no delimiter found")
	}
	// Symbols after the delimiter: (high, low) pairs; symbol length is the
	// sum of both runs.
	var symbols []float64
	i := start + 1
	for i+1 < len(runs) {
		if !runs[i].high {
			return nil, PIEInfo{}, fmt.Errorf("gen2: malformed symbol sequence at run %d", i)
		}
		highDur := float64(runs[i].n) * dt
		lowDur := float64(runs[i+1].n) * dt
		symbols = append(symbols, highDur+lowDur)
		i += 2
	}
	// A trailing lone high run is the post-frame CW; it terminates decoding
	// naturally because it has no low pulse.
	if len(symbols) < 2 {
		return nil, PIEInfo{}, fmt.Errorf("%w: only %d PIE symbols", ErrShortFrame, len(symbols))
	}
	info := PIEInfo{Tari: symbols[0], RTcal: symbols[1], Threshold: th}
	if info.RTcal < info.Tari*1.2 {
		return nil, PIEInfo{}, fmt.Errorf("gen2: implausible RTcal %v vs Tari %v", info.RTcal, info.Tari)
	}
	pivot := info.RTcal / 2
	dataStart := 2
	// TRcal present when the next symbol exceeds RTcal (Query preamble).
	if len(symbols) > 2 && symbols[2] > info.RTcal*1.05 {
		info.TRcal = symbols[2]
		dataStart = 3
	}
	var bits Bits
	for _, s := range symbols[dataStart:] {
		if s > info.RTcal*1.05 {
			// Longer than RTcal mid-frame: treat as end of signaling.
			break
		}
		if s > pivot {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	if len(bits) == 0 {
		return nil, info, fmt.Errorf("%w: no data symbols", ErrShortFrame)
	}
	return bits, info, nil
}
