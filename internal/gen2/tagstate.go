package gen2

import (
	"fmt"

	"ivn/internal/rng"
)

// TagState is a tag's position in the Gen2 inventory state machine.
type TagState int

// Inventory states (the subset a passive sensor exercises).
const (
	// StateReady: powered, not participating in a round.
	StateReady TagState = iota
	// StateArbitrate: in a round, waiting for its slot.
	StateArbitrate
	// StateReply: slot hit; RN16 backscattered, awaiting ACK.
	StateReply
	// StateAcknowledged: ACKed; EPC backscattered.
	StateAcknowledged
	// StateOpen: handle issued via ReqRN; access commands possible.
	StateOpen
)

// String names the state.
func (s TagState) String() string {
	switch s {
	case StateReady:
		return "Ready"
	case StateArbitrate:
		return "Arbitrate"
	case StateReply:
		return "Reply"
	case StateAcknowledged:
		return "Acknowledged"
	case StateOpen:
		return "Open"
	case StateSecured:
		return "Secured"
	default:
		return fmt.Sprintf("TagState(%d)", int(s))
	}
}

// Reply is what a tag backscatters in response to a command: payload bits
// ready for FM0/Miller encoding, plus what they mean.
type Reply struct {
	// Kind describes the payload framing.
	Kind ReplyKind
	// Bits is the payload (RN16, {PC,EPC,CRC16}, or handle).
	Bits Bits
}

// ReplyKind labels a tag reply.
type ReplyKind int

// Reply kinds.
const (
	ReplyNone ReplyKind = iota
	ReplyRN16
	ReplyEPC
	ReplyHandle
	ReplyRead
	ReplyWrite
)

// String names the reply kind.
func (k ReplyKind) String() string {
	switch k {
	case ReplyNone:
		return "none"
	case ReplyRN16:
		return "RN16"
	case ReplyEPC:
		return "EPC"
	case ReplyHandle:
		return "Handle"
	case ReplyRead:
		return "Read"
	case ReplyWrite:
		return "Write"
	default:
		return fmt.Sprintf("ReplyKind(%d)", int(k))
	}
}

// TagLogic is the protocol half of a battery-free tag: flags, slot
// counter, and the state machine. Power and RF belong to the tag package;
// this type assumes it is energized for the duration of each command.
type TagLogic struct {
	epc    []byte
	random *rng.Rand

	state   TagState
	session Session
	q       byte
	slot    uint32
	rn16    uint16
	handle  uint16

	sl          bool
	inventoried [4]bool // per session: false = A, true = B

	// miller is the uplink encoding of the current round: 0 = FM0,
	// otherwise the Miller subcarrier factor (2/4/8), from Query.M.
	miller int

	// accessPwd protects memory writes when nonzero (see secure.go).
	accessPwd uint32

	// user is the tag's user memory bank (sensor registers / actuation
	// words); tid is the tag-identification bank.
	user [userWords]uint16
	tid  [2]uint16

	// OnWrite, when set, observes every accepted memory write — the hook
	// an actuator (e.g. a drug-release mechanism) hangs off.
	OnWrite func(bank MemoryBank, ptr byte, value uint16)
}

// userWords is the modeled user-memory size in 16-bit words.
const userWords = 16

// NewTagLogic builds a powered-up tag in Ready with the given EPC (an even
// byte count, 2–62 bytes) and entropy source.
func NewTagLogic(epc []byte, random *rng.Rand) (*TagLogic, error) {
	if len(epc) == 0 || len(epc)%2 != 0 || len(epc) > 62 {
		return nil, fmt.Errorf("gen2: EPC must be 2..62 bytes word-aligned, got %d", len(epc))
	}
	if random == nil {
		return nil, fmt.Errorf("gen2: nil RNG")
	}
	t := &TagLogic{epc: append([]byte(nil), epc...), random: random}
	// TID: a fixed class identifier plus a serial derived from the EPC.
	t.tid[0] = 0xE280
	t.tid[1] = uint16(epc[0])<<8 | uint16(epc[len(epc)-1])
	return t, nil
}

// UserMemory returns a copy of the user bank.
func (t *TagLogic) UserMemory() []uint16 {
	out := make([]uint16, userWords)
	copy(out, t.user[:])
	return out
}

// readBank fetches count words starting at ptr from a bank; ok is false
// on a range violation or unsupported bank.
func (t *TagLogic) readBank(bank MemoryBank, ptr byte, count byte) ([]uint16, bool) {
	if count == 0 {
		return nil, false
	}
	var src []uint16
	switch bank {
	case BankUser:
		src = t.user[:]
	case BankTID:
		src = t.tid[:]
	case BankEPC:
		// PC word then EPC words, as stored.
		src = make([]uint16, 1+len(t.epc)/2)
		src[0] = uint16(len(t.epc)/2) << 11
		for i := 0; i+1 < len(t.epc); i += 2 {
			src[1+i/2] = uint16(t.epc[i])<<8 | uint16(t.epc[i+1])
		}
	default:
		return nil, false
	}
	lo, hi := int(ptr), int(ptr)+int(count)
	if hi > len(src) {
		return nil, false
	}
	out := make([]uint16, count)
	copy(out, src[lo:hi])
	return out, true
}

// State returns the current inventory state.
func (t *TagLogic) State() TagState { return t.state }

// EPC returns the tag's identifier.
func (t *TagLogic) EPC() []byte { return append([]byte(nil), t.epc...) }

// SL returns the selected flag.
func (t *TagLogic) SL() bool { return t.sl }

// Inventoried returns the inventoried flag (false = A) for a session.
func (t *TagLogic) Inventoried(s Session) bool { return t.inventoried[s&3] }

// LastRN16 returns the most recent slot RN16 (for test observability).
func (t *TagLogic) LastRN16() uint16 { return t.rn16 }

// PowerReset models losing power: all volatile state clears; per the spec
// the S0 inventoried flag also resets to A (S2/S3 persistence is not
// modeled — battery-free deep-tissue tags lose it anyway).
func (t *TagLogic) PowerReset() {
	t.state = StateReady
	t.slot = 0
	t.rn16 = 0
	t.handle = 0
	t.sl = false
	t.inventoried[S0] = false
}

// HandleCommand advances the state machine and returns the tag's reply
// (ReplyNone when the tag stays silent). Unknown or out-of-state commands
// are ignored silently, as real tags do.
func (t *TagLogic) HandleCommand(c Command) Reply {
	switch cmd := c.(type) {
	case *Select:
		t.handleSelect(cmd)
	case *Query:
		return t.handleQuery(cmd)
	case *QueryRep:
		return t.handleQueryRep(cmd)
	case *QueryAdjust:
		return t.handleQueryAdjust(cmd)
	case *ACK:
		return t.handleACK(cmd)
	case *NAK:
		if t.state == StateReply || t.state == StateAcknowledged || t.state == StateOpen || t.state == StateSecured {
			t.state = StateArbitrate
		}
	case *ReqRN:
		return t.handleReqRN(cmd)
	case *Read:
		return t.handleRead(cmd)
	case *Write:
		return t.handleWrite(cmd)
	case *Access:
		return t.handleAccess(cmd)
	}
	return Reply{Kind: ReplyNone}
}

func (t *TagLogic) matchesMask(s *Select) bool {
	if s.MemBank != 1 {
		// Only EPC-bank matching is modeled.
		return false
	}
	epcBits := BitsFromBytes(t.epc)
	start := int(s.Pointer)
	if start+len(s.Mask) > len(epcBits) {
		return false
	}
	return epcBits[start : start+len(s.Mask)].Equal(s.Mask)
}

func (t *TagLogic) handleSelect(s *Select) {
	match := t.matchesMask(s)
	assert := func(on bool) {
		if s.Target == 4 {
			t.sl = on
		} else if s.Target < 4 {
			t.inventoried[s.Target] = !on // "assert" = set to A (false)
		}
	}
	negate := func() {
		if s.Target == 4 {
			t.sl = !t.sl
		} else if s.Target < 4 {
			t.inventoried[s.Target] = !t.inventoried[s.Target]
		}
	}
	// Gen2 action table (§6.3.2.12.1.1), matching column then
	// non-matching column.
	switch s.Action {
	case 0:
		if match {
			assert(true)
		} else {
			assert(false)
		}
	case 1:
		if match {
			assert(true)
		}
	case 2:
		if !match {
			assert(false)
		}
	case 3:
		if match {
			negate()
		}
	case 4:
		if match {
			assert(false)
		} else {
			assert(true)
		}
	case 5:
		if match {
			assert(false)
		}
	case 6:
		if !match {
			assert(true)
		}
	case 7:
		if !match {
			negate()
		}
	}
	// Select aborts any round in progress.
	if t.state != StateReady {
		t.state = StateReady
	}
}

func (t *TagLogic) participates(q *Query) bool {
	switch q.Sel {
	case 2:
		if t.sl {
			return false
		}
	case 3:
		if !t.sl {
			return false
		}
	}
	return t.inventoried[q.Session&3] == q.Target
}

func (t *TagLogic) drawSlot() {
	if t.q == 0 {
		t.slot = 0
		return
	}
	t.slot = uint32(t.random.Intn(1 << uint(t.q)))
}

func (t *TagLogic) enterSlot() Reply {
	if t.slot == 0 {
		t.rn16 = uint16(t.random.Uint64())
		t.state = StateReply
		r := RN16Reply{RN16: t.rn16}
		return Reply{Kind: ReplyRN16, Bits: r.AppendBits(nil)}
	}
	t.state = StateArbitrate
	return Reply{Kind: ReplyNone}
}

func (t *TagLogic) handleQuery(q *Query) Reply {
	// A tag still in Acknowledged/Open when a new Query arrives finishes
	// its inventory first: it inverts its inventoried flag (Gen2
	// §6.3.2.4), exactly as if a QueryRep had closed it out.
	if t.state == StateAcknowledged || t.state == StateOpen || t.state == StateSecured {
		t.inventoried[t.session&3] = !t.inventoried[t.session&3]
		t.state = StateReady
	}
	if !t.participates(q) {
		t.state = StateReady
		return Reply{Kind: ReplyNone}
	}
	t.session = q.Session
	t.q = q.Q & 0xF
	switch q.M & 3 {
	case 0:
		t.miller = 0
	case 1:
		t.miller = 2
	case 2:
		t.miller = 4
	case 3:
		t.miller = 8
	}
	t.drawSlot()
	return t.enterSlot()
}

// Miller returns the uplink encoding of the current round: 0 for FM0,
// otherwise the Miller subcarrier factor.
func (t *TagLogic) Miller() int { return t.miller }

func (t *TagLogic) handleQueryRep(q *QueryRep) Reply {
	if q.Session != t.session {
		return Reply{Kind: ReplyNone}
	}
	switch t.state {
	case StateArbitrate:
		if t.slot == 0 {
			// A zero counter only arises after a failed singulation (the
			// tag replied, the exchange died). Decrementing it rolls over
			// to the spec maximum (6.3.2.12.2), silencing the tag until
			// the next Query re-randomizes it or a QueryAdjust redraws it
			// — without the rollover it re-replies every other slot and
			// collides the rest of the round.
			t.slot = 0x7FFF
		} else {
			t.slot--
		}
		if t.slot == 0 {
			return t.enterSlot()
		}
	case StateReply:
		// Missed ACK; back to arbitration (the stale zero counter rolls
		// over at the next QueryRep).
		t.state = StateArbitrate
	case StateAcknowledged, StateOpen, StateSecured:
		// Inventory complete: flip the inventoried flag and drop out.
		t.inventoried[t.session&3] = !t.inventoried[t.session&3]
		t.state = StateReady
	}
	return Reply{Kind: ReplyNone}
}

func (t *TagLogic) handleQueryAdjust(q *QueryAdjust) Reply {
	if q.Session != t.session || t.state == StateReady {
		return Reply{Kind: ReplyNone}
	}
	// Like QueryRep, a QueryAdjust closes out an acknowledged tag.
	if t.state == StateAcknowledged || t.state == StateOpen || t.state == StateSecured {
		t.inventoried[t.session&3] = !t.inventoried[t.session&3]
		t.state = StateReady
		return Reply{Kind: ReplyNone}
	}
	switch q.UpDn {
	case QUp:
		if t.q < 15 {
			t.q++
		}
	case QDown:
		if t.q > 0 {
			t.q--
		}
	}
	t.drawSlot()
	return t.enterSlot()
}

func (t *TagLogic) handleACK(a *ACK) Reply {
	if t.state != StateReply && t.state != StateAcknowledged {
		return Reply{Kind: ReplyNone}
	}
	if a.RN16 != t.rn16 {
		t.state = StateArbitrate
		return Reply{Kind: ReplyNone}
	}
	t.state = StateAcknowledged
	er, err := NewEPCReply(t.epc)
	if err != nil {
		// EPC validated at construction; unreachable, but fail silent like
		// a real tag rather than panicking.
		return Reply{Kind: ReplyNone}
	}
	return Reply{Kind: ReplyEPC, Bits: er.AppendBits(nil)}
}

func (t *TagLogic) handleRead(rd *Read) Reply {
	if (t.state != StateOpen && t.state != StateSecured) || rd.Handle != t.handle {
		return Reply{Kind: ReplyNone}
	}
	words, ok := t.readBank(rd.Bank, rd.WordPtr, rd.WordCount)
	if !ok {
		// Real tags answer with an error header; silence keeps the
		// simulator's reader logic simple and is indistinguishable from a
		// lost reply at the system level.
		return Reply{Kind: ReplyNone}
	}
	reply := ReadReply{Words: words, Handle: t.handle}
	return Reply{Kind: ReplyRead, Bits: reply.AppendBits(nil)}
}

func (t *TagLogic) handleWrite(w *Write) Reply {
	if w.Handle != t.handle || !t.writePermitted() {
		return Reply{Kind: ReplyNone}
	}
	if w.Bank != BankUser || int(w.WordPtr) >= userWords {
		return Reply{Kind: ReplyNone}
	}
	t.user[w.WordPtr] = w.Data
	if t.OnWrite != nil {
		t.OnWrite(w.Bank, w.WordPtr, w.Data)
	}
	reply := WriteReply{Handle: t.handle}
	return Reply{Kind: ReplyWrite, Bits: reply.AppendBits(nil)}
}

func (t *TagLogic) handleReqRN(r *ReqRN) Reply {
	if t.state != StateAcknowledged || r.RN16 != t.rn16 {
		return Reply{Kind: ReplyNone}
	}
	t.handle = uint16(t.random.Uint64())
	t.state = StateOpen
	var b Bits
	b = b.AppendUint(uint64(t.handle), 16)
	crc := CRC16(b)
	b = b.AppendUint(uint64(crc), 16)
	return Reply{Kind: ReplyHandle, Bits: b}
}
