package gen2

import (
	"testing"
	"testing/quick"
)

func TestCRC5KnownVector(t *testing.T) {
	// All-zero 17-bit payload: the register just shifts the preset out.
	zero := make(Bits, 17)
	c := CRC5(zero)
	if c > 0x1F {
		t.Fatalf("CRC5 = %#x exceeds 5 bits", c)
	}
	// CRC must change when any payload bit flips.
	for i := range zero {
		flipped := append(Bits(nil), zero...)
		flipped[i] = 1
		if CRC5(flipped) == c {
			t.Fatalf("flipping bit %d left CRC5 unchanged", i)
		}
	}
}

func TestCheckCRC5RoundTrip(t *testing.T) {
	payload, _ := ParseBits("10001011010001010")
	frame := payload.AppendUint(uint64(CRC5(payload)), 5)
	if !CheckCRC5(frame) {
		t.Fatal("self-generated CRC5 frame failed check")
	}
	frame[3] ^= 1
	if CheckCRC5(frame) {
		t.Fatal("corrupted frame passed CRC5")
	}
	if CheckCRC5(Bits{1, 0}) {
		t.Fatal("too-short frame passed CRC5")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT over ASCII "123456789" (standard check value 0x29B1);
	// Gen2 transmits the complement.
	data := BitsFromBytes([]byte("123456789"))
	if got := CRC16(data); got != ^uint16(0x29B1) {
		t.Fatalf("CRC16 = %#04x, want %#04x", got, ^uint16(0x29B1))
	}
}

func TestCheckCRC16RoundTripAndResidue(t *testing.T) {
	payload := BitsFromBytes([]byte{0x30, 0x00, 0xE2, 0x00, 0x12, 0x34})
	frame := payload.AppendUint(uint64(CRC16(payload)), 16)
	if !CheckCRC16(frame) {
		t.Fatal("self-generated CRC16 frame failed check")
	}
	frame[10] ^= 1
	if CheckCRC16(frame) {
		t.Fatal("corrupted frame passed CRC16")
	}
	if CheckCRC16(Bits{1}) {
		t.Fatal("too-short frame passed CRC16")
	}
}

func TestQuickCRC16DetectsSingleBitErrors(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		payload := BitsFromBytes(data)
		frame := payload.AppendUint(uint64(CRC16(payload)), 16)
		i := int(pos) % len(frame)
		frame[i] ^= 1
		return !CheckCRC16(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCRC5DetectsSingleBitErrors(t *testing.T) {
	f := func(v uint32, pos uint8) bool {
		payload := Bits{}.AppendUint(uint64(v), 17)
		frame := payload.AppendUint(uint64(CRC5(payload)), 5)
		i := int(pos) % len(frame)
		frame[i] ^= 1
		return !CheckCRC5(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
