package gen2

import (
	"fmt"

	"ivn/internal/dsp"
)

// Miller-modulated subcarrier (M=2/4/8) is Gen2's alternative uplink
// encoding: slower but more robust than FM0 because each bit spreads over
// M subcarrier cycles. IVN's prototype uses FM0, but a Query can request
// Miller (M field), so the simulator supports it for completeness.
//
// Baseband Miller rules: the phase inverts in the middle of a data-1
// symbol, and at the boundary between two consecutive data-0 symbols;
// otherwise it continues. The baseband is then multiplied by a square
// subcarrier with M cycles per symbol.

// MillerEncoder encodes payload bits as a Miller-modulated ±1 waveform.
type MillerEncoder struct {
	// M is the subcarrier cycles per symbol: 2, 4 or 8.
	M int
	// SamplesPerCycle sets time resolution; one subcarrier cycle spans two
	// samples at minimum.
	SamplesPerCycle int
}

// millerPreambleSymbols is the TRext=0 Miller preamble payload ("010111")
// that follows four zero symbols, per the Gen2 spec.
var millerPreambleSymbols = Bits{0, 1, 0, 1, 1, 1}

// Encode serializes (4 zero symbols + preamble "010111" + payload + dummy
// data-1) and returns the ±1 waveform.
func (e MillerEncoder) Encode(payload Bits) ([]float64, error) {
	switch e.M {
	case 2, 4, 8:
	default:
		return nil, fmt.Errorf("gen2: Miller M=%d not in {2,4,8}", e.M)
	}
	if e.SamplesPerCycle < 2 {
		return nil, fmt.Errorf("gen2: SamplesPerCycle %d < 2", e.SamplesPerCycle)
	}
	if err := payload.Validate(); err != nil {
		return nil, err
	}
	symbols := make(Bits, 0, 4+len(millerPreambleSymbols)+len(payload)+1)
	symbols = append(symbols, 0, 0, 0, 0)
	symbols = append(symbols, millerPreambleSymbols...)
	symbols = append(symbols, payload...)
	symbols = append(symbols, 1)

	spc := e.SamplesPerCycle
	perSym := e.M * spc
	out := make([]float64, 0, len(symbols)*perSym)
	phase := 1.0
	prev := byte(1) // so a leading 0 does not invert
	for _, sym := range symbols {
		if sym == 0 && prev == 0 {
			phase = -phase // boundary inversion between consecutive zeros
		}
		half := perSym / 2
		for i := 0; i < perSym; i++ {
			if sym == 1 && i == half {
				phase = -phase // mid-symbol inversion for data-1
			}
			// Square subcarrier: M cycles per symbol.
			cyclePos := i % spc
			sub := 1.0
			if cyclePos >= spc/2 {
				sub = -1
			}
			out = append(out, phase*sub)
		}
		prev = sym
	}
	return out, nil
}

// MillerDecoder recovers payload bits from a Miller waveform produced by
// MillerEncoder with the same parameters.
type MillerDecoder struct {
	M               int
	SamplesPerCycle int
}

// DecodePayload decodes nbits payload bits from samples beginning at the
// first payload symbol (after the 4 zero symbols and 6 preamble symbols).
// It demodulates by removing the subcarrier, then classifies each symbol
// by whether its two halves agree (data-0 continues phase) or disagree
// (data-1 inverts mid-symbol).
func (d MillerDecoder) DecodePayload(samples []float64, nbits int) (Bits, error) {
	switch d.M {
	case 2, 4, 8:
	default:
		return nil, fmt.Errorf("gen2: Miller M=%d not in {2,4,8}", d.M)
	}
	if d.SamplesPerCycle < 2 {
		return nil, fmt.Errorf("gen2: SamplesPerCycle %d < 2", d.SamplesPerCycle)
	}
	spc := d.SamplesPerCycle
	perSym := d.M * spc
	need := nbits * perSym
	if len(samples) < need {
		return nil, fmt.Errorf("%w: need %d samples, have %d", ErrShortFrame, need, len(samples))
	}
	out := make(Bits, nbits)
	for i := 0; i < nbits; i++ {
		seg := samples[i*perSym : (i+1)*perSym]
		// Multiply by the subcarrier to recover the baseband phase.
		var h1, h2 float64
		half := perSym / 2
		for k, v := range seg {
			sub := 1.0
			if k%spc >= spc/2 {
				sub = -1
			}
			if k < half {
				h1 += v * sub
			} else {
				h2 += v * sub
			}
		}
		if h1*h2 < 0 {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out, nil
}

// MillerPayloadOffset returns the sample index where payload symbols start
// in a waveform produced by MillerEncoder with matching parameters.
func MillerPayloadOffset(m, samplesPerCycle int) int {
	return (4 + len(millerPreambleSymbols)) * m * samplesPerCycle
}

// MillerPrefixTemplate returns the payload-independent frame prefix (four
// zero symbols plus the "010111" preamble) as a ±1 waveform, for
// correlation-based frame alignment.
func MillerPrefixTemplate(m, samplesPerCycle int) ([]float64, error) {
	enc := MillerEncoder{M: m, SamplesPerCycle: samplesPerCycle}
	full, err := enc.Encode(nil)
	if err != nil {
		return nil, err
	}
	return full[:MillerPayloadOffset(m, samplesPerCycle)], nil
}

// DecodeFrame locates the Miller prefix in samples by normalized
// correlation, requires it to clear the threshold (0 → 0.8), and decodes
// nbits of payload after it — the Miller counterpart of
// FM0Decoder.DecodeFrame.
func (d MillerDecoder) DecodeFrame(samples []float64, nbits int, threshold float64) (*FrameResult, error) {
	tmpl, err := MillerPrefixTemplate(d.M, d.SamplesPerCycle)
	if err != nil {
		return nil, err
	}
	if threshold == 0 {
		threshold = 0.8
	}
	best, lag := dsp.MaxCorrelation(samples, tmpl)
	if lag < 0 {
		return nil, fmt.Errorf("%w: capture shorter than Miller prefix", ErrShortFrame)
	}
	if best < threshold {
		return nil, fmt.Errorf("gen2: Miller prefix correlation %.3f below threshold %.3f", best, threshold)
	}
	payload, err := d.DecodePayload(samples[lag+len(tmpl):], nbits)
	if err != nil {
		return nil, err
	}
	return &FrameResult{Payload: payload, Correlation: best, Offset: lag}, nil
}
