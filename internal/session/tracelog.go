package session

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceLog collects the event streams of many exchanges, keyed by a
// caller-chosen span name (e.g. "fig12/0007"). Spans may be recorded
// concurrently — the experiment scheduler runs trials on a worker pool —
// but the serialized form depends only on the span keys and each span's
// own deterministic stream, so trace files are byte-identical at any
// GOMAXPROCS.
//
// A nil *TraceLog is the disabled form: Span returns a nil trace and a
// no-op commit, so call sites thread the log unconditionally.
type TraceLog struct {
	mu    sync.Mutex
	spans map[string][]Event
}

// NewTraceLog returns an empty log.
func NewTraceLog() *TraceLog {
	return &TraceLog{spans: map[string][]Event{}}
}

// nopCommit avoids allocating a closure per Span call on a nil log.
var nopCommit = func() {}

// Span starts recording one exchange under key. The returned commit
// function publishes the recorded events into the log; events observed
// after commit are lost. On a nil log both returns are inert.
func (l *TraceLog) Span(key string) (*Trace, func()) {
	if l == nil {
		return nil, nopCommit
	}
	rec := &Recorder{}
	return NewTrace(rec), func() { l.add(key, rec.Events) }
}

// add appends events under key (concatenating on repeated commits).
func (l *TraceLog) add(key string, events []Event) {
	if len(events) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans[key] = append(l.spans[key], events...)
}

// Keys returns the recorded span keys in sorted order.
func (l *TraceLog) Keys() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.spans))
	for k := range l.spans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Events returns the stream recorded under key.
func (l *TraceLog) Events(key string) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spans[key]
}

// lineEvent is the JSON-lines wire form: the span key plus the flat
// event fields.
type lineEvent struct {
	Span string `json:"span"`
	Event
}

// WriteJSONL serializes the log as JSON lines — one event per line,
// spans in sorted-key order, events in observation order within a span.
func (l *TraceLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, key := range l.Keys() {
		for _, e := range l.Events(key) {
			if err := enc.Encode(lineEvent{Span: key, Event: e}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
