package session

import (
	"fmt"
	"math"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// Channel is the fidelity seam of the inventory air interface: it decides
// what the reader's receive chain recovers from each slot, without the
// controller knowing whether waveforms were synthesized (the full-DSP
// path, ivn/internal/link.DSPChannel) or probabilities were drawn from
// the realized link budget (EventChannel). A nil Channel on the
// InventoryController is the historical ideal uplink: every singulated
// reply decodes exactly and collisions are never captured.
//
// Implementations must be pure functions of their own state, the decision
// arguments, and the rng stream they are handed, so that identical seeds
// reproduce identical inventories at any GOMAXPROCS and paired fault
// on/off comparisons stay aligned. The ChannelFault seam composes
// orthogonally: faults perturb what reaches the channel (truncated
// commands, dark tags, corrupted bits); the channel decides whether the
// surviving reply decodes.
type Channel interface {
	// DecodeReply reports whether the reader recovers a singulated
	// reply's exact payload bits. tagIndex identifies the responder
	// within the round's population, exchange labels the decode
	// ("rn16"/"epc"), and r is the round's stream — implementations draw
	// their noise (or probability) from it deterministically.
	DecodeReply(tagIndex int, reply gen2.Reply, exchange string, r *rng.Rand) (ChannelDecode, error)
	// Capture resolves a collided slot (the capture effect): when one
	// responder's backscatter dominates the rest enough for the reader
	// to lock onto it, the slot behaves as a single for that tag — its
	// RN16 is considered decoded (under the losers' interference) by the
	// time Capture returns a winner. responders are population indices
	// of the tags that replied. Returns the winning index, or -1 for an
	// unresolvable collision.
	Capture(responders []int, r *rng.Rand) int
	// ReceiveSeconds is the sim-clock time one uplink capture occupies
	// (the reader's coherent-averaging window); the trace clock advances
	// by it per decode.
	ReceiveSeconds() float64
}

// ChannelDecode is one reply capture's outcome at the channel.
type ChannelDecode struct {
	// OK reports whether the payload bits were recovered exactly.
	OK bool
	// Correlation is the (expected or measured) preamble correlation of
	// a successful decode, for the reply-decoded trace event.
	Correlation float64
}

// TagBudget is one tag's realized uplink budget — the event channel's
// per-tag calibration input, produced from link.ForTrial outputs by
// link.(*Link).EventBudget and perturbed per tag by population
// experiments (shadowing, model spread).
type TagBudget struct {
	// SNR is the post-averaging per-sample power SNR, linear — the same
	// a²·K/noise operand the reader's DecodableRN16 predicate thresholds.
	SNR float64
	// RSSI is the tag's backscatter signal power at the receiver in any
	// consistent relative unit (only ratios matter); it drives the
	// capture-effect dominance test and the interference term of a
	// captured decode.
	RSSI float64
}

// EventChannel is the calibrated event-level uplink: instead of
// synthesizing backscatter waveforms it converts each tag's realized
// link budget into a decode probability (DecodeProbability, calibrated
// against the DSP chain by test) and draws per-slot outcomes from the
// round's rng stream. This is the fidelity switch of ROADMAP item 2 —
// it frees inventory from the waveform-synthesis floor, so populations
// of hundreds to thousands of tags per reader session run in seconds.
type EventChannel struct {
	// Budgets holds one realized budget per tag, index-aligned with the
	// TagLogic slice handed to the controller.
	Budgets []TagBudget
	// SamplesPerHalfBit mirrors the reader's FM0 resolution (0 → 8).
	SamplesPerHalfBit int
	// Threshold is the preamble-correlation acceptance level (0 → 0.8).
	Threshold float64
	// CaptureRatio is the linear power ratio by which the strongest
	// collided backscatter must dominate the sum of the rest for the
	// reader to capture it; values below 1 are meaningless and 0
	// disables capture (every collision is unresolvable, matching the
	// DSP chain, which has no capture model). Literature values sit
	// around 2–4 (3–6 dB).
	CaptureRatio float64
	// DecodeSeconds is the sim-clock receive time per capture
	// (0 → 32 s: the default 32 coherent-averaging periods of 1 s each).
	DecodeSeconds float64
}

// rn16PayloadBits is the backscattered RN16 length; collisions only ever
// involve RN16 replies (Query/QueryRep/QueryAdjust slots), so a captured
// decode is always this long.
const rn16PayloadBits = 16

func (c *EventChannel) samplesPerHalfBit() int {
	if c.SamplesPerHalfBit == 0 {
		return 8
	}
	return c.SamplesPerHalfBit
}

func (c *EventChannel) threshold() float64 {
	if c.Threshold == 0 {
		return 0.8
	}
	return c.Threshold
}

// ReceiveSeconds implements Channel.
func (c *EventChannel) ReceiveSeconds() float64 {
	if c.DecodeSeconds == 0 {
		return 32
	}
	return c.DecodeSeconds
}

// DecodeReply implements Channel: one Bernoulli draw at the tag's
// calibrated decode probability for this payload length.
func (c *EventChannel) DecodeReply(tagIndex int, reply gen2.Reply, exchange string, r *rng.Rand) (ChannelDecode, error) {
	if tagIndex < 0 || tagIndex >= len(c.Budgets) {
		return ChannelDecode{}, fmt.Errorf("session: tag index %d outside budget table (%d tags)", tagIndex, len(c.Budgets))
	}
	b := c.Budgets[tagIndex]
	p := DecodeProbability(b.SNR, len(reply.Bits), c.samplesPerHalfBit(), c.threshold())
	dec := ChannelDecode{OK: r.Float64() < p}
	if dec.OK {
		dec.Correlation = expectedCorrelation(b.SNR)
	}
	return dec, nil
}

// Capture implements Channel: a dominance test on the responders' RSSIs
// followed by an interference-degraded RN16 decode draw for the winner.
// The losers' backscatter raises the winner's effective noise floor, so
// a barely-dominant tag can still fail to decode.
//
//ivn:hotpath
func (c *EventChannel) Capture(responders []int, r *rng.Rand) int {
	if c.CaptureRatio <= 0 || len(responders) < 2 {
		return -1
	}
	best, bestPow, rest := -1, 0.0, 0.0
	for _, ti := range responders {
		if ti < 0 || ti >= len(c.Budgets) {
			return -1
		}
		p := c.Budgets[ti].RSSI
		if p > bestPow {
			if best >= 0 {
				rest += bestPow
			}
			bestPow, best = p, ti
		} else {
			rest += p
		}
	}
	if best < 0 || bestPow <= 0 || bestPow < c.CaptureRatio*rest {
		return -1
	}
	b := c.Budgets[best]
	snr := b.SNR
	if snr > 0 && rest > 0 {
		// Interference-limited budget: N0 = RSSI/SNR is the tag's
		// noise-equivalent power, and the losers add straight on top.
		snr = b.RSSI / (b.RSSI/b.SNR + rest)
	}
	p := DecodeProbability(snr, rn16PayloadBits, c.samplesPerHalfBit(), c.threshold())
	if r.Float64() < p {
		return best
	}
	return -1
}

// DecodeProbability maps a post-averaging per-sample power SNR (linear,
// the a²·K/noise operand of reader.DecodableRN16) to the probability
// that a single capture decodes: the FM0 preamble correlation clears
// threshold AND every payload bit is recovered. It is the analytic image
// of reader.DecodeUplink's chain — derotated real-part noise
// σ = sqrt(noise/2K) against half-swing s, so s/σ = sqrt(2·snr):
//
//   - preamble: the normalized correlation over the L = 12·sphb preamble
//     samples concentrates at ρ₀ = s/√(s²+σ²) with delta-method spread
//     (1−ρ₀²)/√L, so P(ρ̂ ≥ θ) = Φ((ρ₀−θ)·√L/(1−ρ₀²));
//   - payload: a bit errs when exactly one of its two half-bit means
//     flips sign, q = Q(s·√sphb/σ), so all nbits survive with
//     (1−2q(1−q))^nbits.
//
// The product is calibrated against Monte-Carlo DecodeUplink rates by
// TestDecodeProbabilityMatchesDSP in ivn/internal/link; see corrBias and
// spreadScale.
//
//ivn:hotpath
func DecodeProbability(snr float64, nbits, samplesPerHalfBit int, threshold float64) float64 {
	if snr <= 0 || samplesPerHalfBit < 1 || nbits < 0 {
		return 0
	}
	s := math.Sqrt(2 * snr) // per-sample amplitude ratio s/σ
	q := gaussQ(s * math.Sqrt(float64(samplesPerHalfBit)))
	pPayload := math.Pow(1-2*q*(1-q), float64(nbits))
	rho := s / math.Sqrt(1+s*s)
	spread := 1 - rho*rho
	if spread <= 0 {
		return pPayload
	}
	l := float64(len(gen2.FM0PreambleHalfBits) * samplesPerHalfBit)
	z := (rho + corrBias - threshold) * math.Sqrt(l) / (spreadScale * spread)
	return gaussPhi(z) * pPayload
}

// Calibration constants fitted against the DSP chain's Monte-Carlo
// decode rates (3000 draws per SNR point at the default operating
// point): the FM0 decoder searches both polarities and the best frame
// alignment, which biases the realized preamble correlation slightly
// above ρ₀ and concentrates it tighter than the raw delta-method
// spread. With these, analytic and Monte-Carlo rates agree within ≈0.02
// across the waterfall.
const (
	corrBias    = 0.003
	spreadScale = 0.86
)

// expectedCorrelation is the preamble correlation a decode at this SNR
// concentrates around — the Value reported on reply-decoded events.
func expectedCorrelation(snr float64) float64 {
	if snr <= 0 {
		return 0
	}
	s2 := 2 * snr
	return math.Sqrt(s2 / (1 + s2))
}

// gaussPhi is the standard normal CDF.
func gaussPhi(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// gaussQ is the standard normal tail probability.
func gaussQ(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }
