// Package session owns the reader side of the Gen2 exchange as an
// explicit state machine layered over an abstract physical link: single-
// tag singulation and access flows (Query → RN16 → ACK → EPC → ReqRN →
// handle → Read/Write/secured-write), multi-tag inventory rounds
// (slotted ALOHA with fixed-Q Schoute estimation or Annex-D floating-Q),
// and the recovery stack (bounded re-ACK, re-query backoff).
//
// Every protocol step can report itself to an Observer as a typed Event
// stamped with the simulated air time. Observability is strictly opt-in:
// a nil *Trace (or nil Observer) costs a nil check and nothing else — no
// event values are built, no clock is advanced, no allocation happens.
package session

import (
	"encoding/json"
	"fmt"
)

// EventKind classifies a trace event.
type EventKind int

// Event kinds, in rough pipeline order.
const (
	// EvLinkRealized: a physical link was bound to a placement; Value is
	// the CIB envelope peak in dBm.
	EvLinkRealized EventKind = iota
	// EvPowerUp: the delivered peak was applied to a tag's harvester; OK
	// reports whether the rail came up, Value is the peak in watts.
	EvPowerUp
	// EvCommandSent: a reader command went on the air; Cmd names it and
	// the clock has advanced past its frame duration.
	EvCommandSent
	// EvSlotResolved: an inventory slot closed; Outcome is
	// empty/single/collision.
	EvSlotResolved
	// EvReplyDecoded: an uplink capture went through the reader; Label
	// names the decode stream, OK the outcome, Value the correlation.
	EvReplyDecoded
	// EvFaultFired: the fault layer perturbed the exchange; Outcome is
	// truncated/corrupted/brownout.
	EvFaultFired
	// EvRetryTaken: the recovery stack spent a retry; Cmd names the
	// re-issued command and Attempt counts from 1.
	EvRetryTaken
	// EvEPCRead: an EPC was recovered on the first exchange.
	EvEPCRead
	// EvEPCStranded: a singulated slot yielded no EPC within the retry
	// budget — the tag is lost for the rest of the round.
	EvEPCStranded
	// EvEPCRecovered: a re-ACK salvaged an EPC a clean exchange lost.
	EvEPCRecovered
)

var eventKindNames = [...]string{
	EvLinkRealized: "link-realized",
	EvPowerUp:      "power-up",
	EvCommandSent:  "command-sent",
	EvSlotResolved: "slot-resolved",
	EvReplyDecoded: "reply-decoded",
	EvFaultFired:   "fault-fired",
	EvRetryTaken:   "retry-taken",
	EvEPCRead:      "epc-read",
	EvEPCStranded:  "epc-stranded",
	EvEPCRecovered: "epc-recovered",
}

// String names the kind.
func (k EventKind) String() string {
	if k >= 0 && int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name, so trace files are
// self-describing.
func (k EventKind) MarshalJSON() ([]byte, error) {
	if k < 0 || int(k) >= len(eventKindNames) {
		return nil, fmt.Errorf("session: unknown event kind %d", int(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind from its string name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("session: unknown event kind %q", s)
}

// Event is one observed protocol step. The struct is flat and
// JSON-friendly; unused fields stay at their zero values and are omitted
// from encodings. T is simulated air time in seconds since the trace
// began — derived from frame durations and averaging periods, never from
// the wall clock, so identical seeds produce identical streams.
type Event struct {
	// T is the sim-clock timestamp in seconds.
	T float64 `json:"t"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Cmd names the reader command (EvCommandSent, EvRetryTaken).
	Cmd string `json:"cmd,omitempty"`
	// Label names the deterministic decode stream (EvReplyDecoded).
	Label string `json:"label,omitempty"`
	// Outcome carries slot or fault classification.
	Outcome string `json:"outcome,omitempty"`
	// OK is the step's success flag where one applies.
	OK bool `json:"ok,omitempty"`
	// Attempt counts retries from 1 (EvRetryTaken, EvEPCRecovered).
	Attempt int `json:"attempt,omitempty"`
	// Value is the kind-specific measurement (peak power, correlation).
	Value float64 `json:"value,omitempty"`
	// EPC is the hex identifier for EPC-level events.
	EPC string `json:"epc,omitempty"`
}

// Observer receives the event stream of an exchange.
type Observer interface {
	// Event is called once per protocol step, in exchange order.
	Event(e Event)
}

// Recorder is an Observer that appends every event to a slice.
type Recorder struct {
	// Events is the stream observed so far.
	Events []Event
}

// Event implements Observer.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }

// Trace couples an Observer with the simulated air clock. The zero of
// the clock is wherever the trace was created. All methods are safe on a
// nil receiver, so layers hold a *Trace unconditionally and pay only a
// nil check when tracing is off; call sites that must build an Event
// value still guard with `if tr != nil` to keep the off path free of
// even that construction.
type Trace struct {
	obs Observer
	now float64
}

// NewTrace wires an observer to a fresh clock; a nil observer yields a
// nil trace (the zero-cost disabled form).
func NewTrace(obs Observer) *Trace {
	if obs == nil {
		return nil
	}
	return &Trace{obs: obs}
}

// Now returns the current sim-clock time in seconds.
func (t *Trace) Now() float64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Advance moves the sim clock forward by dt seconds.
func (t *Trace) Advance(dt float64) {
	if t == nil {
		return
	}
	t.now += dt
}

// Emit stamps e with the current sim time and delivers it.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	e.T = t.now
	t.obs.Event(e)
}
