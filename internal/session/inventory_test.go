package session

import (
	"fmt"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

func makePopulation(t *testing.T, n int, seed uint64) []*gen2.TagLogic {
	t.Helper()
	r := rng.New(seed)
	tags := make([]*gen2.TagLogic, n)
	for i := range tags {
		epc := []byte{0xE2, byte(i >> 8), byte(i), 0x01}
		tag, err := gen2.NewTagLogic(epc, r.Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tag
	}
	return tags
}

func TestRunRoundSingleTag(t *testing.T) {
	tags := makePopulation(t, 1, 1)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	stats, err := ic.RunRound(tags, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) != 1 {
		t.Fatalf("read %d EPCs, want 1", len(stats.EPCs))
	}
	if stats.Singles != 1 || stats.Collisions != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestRunRoundManyTags(t *testing.T) {
	const n = 20
	tags := makePopulation(t, n, 3)
	ic := NewInventoryController(gen2.S0)
	stats, err := ic.RunRound(tags, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) < n*7/10 {
		t.Fatalf("single round read only %d/%d tags", len(stats.EPCs), n)
	}
	// No duplicates within a round (read tags drop out via flag flip).
	seen := map[string]bool{}
	for _, epc := range stats.EPCs {
		if seen[string(epc)] {
			t.Fatalf("duplicate EPC %x in one round", epc)
		}
		seen[string(epc)] = true
	}
	if stats.Commands > ic.MaxCommands {
		t.Fatalf("command budget exceeded: %d", stats.Commands)
	}
}

func TestInventoryAllReadsEveryone(t *testing.T) {
	const n = 30
	tags := makePopulation(t, n, 5)
	ic := NewInventoryController(gen2.S1)
	epcs, err := ic.InventoryAll(tags, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(epcs) != n {
		t.Fatalf("read %d/%d tags across rounds", len(epcs), n)
	}
	seen := map[string]bool{}
	for _, epc := range epcs {
		if seen[string(epc)] {
			t.Fatalf("duplicate EPC %x", epc)
		}
		seen[string(epc)] = true
	}
}

func TestQAdaptsUpUnderCollisions(t *testing.T) {
	// Starting with Q=0 against 16 tags forces collisions; the controller
	// must grow Q rather than livelock.
	tags := makePopulation(t, 16, 7)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	stats, err := ic.RunRound(tags, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Collisions == 0 {
		t.Fatal("expected collisions with Q=0 and 16 tags")
	}
	if len(stats.EPCs) == 0 {
		t.Fatal("no tags read despite adaptation")
	}
	if stats.FinalQ == 0 {
		t.Fatal("Q never grew under collisions")
	}
}

func TestQAdaptsDownWhenOversized(t *testing.T) {
	// Q=10 (1024 slots) against 2 tags: mostly empties; Q must shrink and
	// the round must still finish inside the command budget.
	tags := makePopulation(t, 2, 9)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 10
	stats, err := ic.RunRound(tags, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalQ >= 10 {
		t.Fatalf("Q did not shrink: %v", stats.FinalQ)
	}
	if len(stats.EPCs) != 2 {
		t.Fatalf("read %d/2 tags", len(stats.EPCs))
	}
}

func TestRoundEfficiencyReasonable(t *testing.T) {
	// Slotted ALOHA peaks at 1/e ≈ 0.37 singles/slot; an adaptive reader
	// should stay within the right order of magnitude.
	tags := makePopulation(t, 24, 11)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 5 // near log2(24)
	stats, err := ic.RunRound(tags, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.Efficiency(); e < 0.1 || e > 0.6 {
		t.Fatalf("efficiency %v outside plausible slotted-ALOHA range", e)
	}
}

func TestRunRoundValidation(t *testing.T) {
	ic := NewInventoryController(gen2.S0)
	if _, err := ic.RunRound(nil, rng.New(1)); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := ic.InventoryAll(makePopulation(t, 1, 1), 0, rng.New(1)); err == nil {
		t.Fatal("maxRounds 0 accepted")
	}
}

func TestSlotOutcomeStrings(t *testing.T) {
	for o, want := range map[SlotOutcome]string{
		SlotEmpty: "empty", SlotSingle: "single", SlotCollision: "collision",
	} {
		if o.String() != want {
			t.Errorf("%d = %q", o, o.String())
		}
	}
	if SlotOutcome(9).String() == "" {
		t.Error("unknown outcome empty string")
	}
}

func TestRunRoundDeterministic(t *testing.T) {
	run := func() int {
		tags := makePopulation(t, 10, 21)
		ic := NewInventoryController(gen2.S0)
		stats, err := ic.RunRound(tags, rng.New(22))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Commands*1000 + len(stats.EPCs)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("rounds differ across identical seeds: %d vs %d", a, b)
	}
}
