package session

import (
	"fmt"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// cleanChannel is a fault that never fires: it measures the cost of the
// faulted broadcast path itself (interface dispatch + command clock)
// against the nil fast path.
type cleanChannel struct{}

func (cleanChannel) CommandTruncated(int) bool                          { return false }
func (cleanChannel) TagPowered(int, int) bool                           { return true }
func (cleanChannel) CorruptUplink(_ int, b gen2.Bits) (gen2.Bits, bool) { return b, false }

// BenchmarkInventoryRound pins the per-round cost of the inventory hot
// path. The clean variant is the seed's legacy path (Fault == nil) and
// must stay allocation-identical to it; the fault variants price the
// injection seam and the recovery stack.
func BenchmarkInventoryRound(b *testing.B) {
	bench := func(b *testing.B, fault ChannelFault, rec *RecoveryPolicy) {
		tags := make([]*gen2.TagLogic, 6)
		for i := range tags {
			tg, err := gen2.NewTagLogic([]byte{0xBE, byte(i), 0x0C, 0x04}, rng.New(uint64(900+i)))
			if err != nil {
				b.Fatal(err)
			}
			tags[i] = tg
		}
		ic := NewInventoryController(gen2.S0)
		ic.Fault = fault
		ic.Recovery = rec
		r := rng.New(5)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tg := range tags {
				tg.PowerReset()
			}
			if _, err := ic.RunRound(tags, r.Split(fmt.Sprintf("round-%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("clean-nil-fault", func(b *testing.B) { bench(b, nil, nil) })
	b.Run("clean-channel-fault", func(b *testing.B) { bench(b, cleanChannel{}, nil) })
	b.Run("clean-channel-recovery", func(b *testing.B) { bench(b, cleanChannel{}, DefaultRecovery()) })
}
