package session

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// adversarialPopulation builds n tags that all share one RNG seed: every
// tag draws the same slot in every sweep and the same RN16s, so the
// population collides forever — no slotted-ALOHA round can ever singulate
// any of them. This is the pathological input the InventoryAll exhaustion
// bugfix guards: before the sentinel, a livelocked population returned a
// silently empty (i.e. "successful") inventory.
func adversarialPopulation(t *testing.T, n int) []*gen2.TagLogic {
	t.Helper()
	tags := make([]*gen2.TagLogic, n)
	for i := range tags {
		epc := []byte{0xAD, byte(i >> 8), byte(i), 0x02}
		tag, err := gen2.NewTagLogic(epc, rng.New(777)) // identical streams
		if err != nil {
			t.Fatal(err)
		}
		tags[i] = tag
	}
	return tags
}

// stubFault is a scriptable ChannelFault for protocol-level tests.
type stubFault struct {
	truncate func(cmd int) bool
	powered  func(cmd, tagIndex int) bool
	corrupt  func(cmd int, bits gen2.Bits) (gen2.Bits, bool)
}

func (s *stubFault) CommandTruncated(cmd int) bool {
	if s.truncate == nil {
		return false
	}
	return s.truncate(cmd)
}

func (s *stubFault) TagPowered(cmd, tagIndex int) bool {
	if s.powered == nil {
		return true
	}
	return s.powered(cmd, tagIndex)
}

func (s *stubFault) CorruptUplink(cmd int, bits gen2.Bits) (gen2.Bits, bool) {
	if s.corrupt == nil {
		return bits, false
	}
	return s.corrupt(cmd, bits)
}

// TestInventoryAllExhaustionSentinel is the satellite-1 regression: when
// collisions persist through maxRounds, InventoryAll must return the
// partial EPC list AND an error wrapping ErrInventoryIncomplete — not a
// silently short list, and not a spin past the round budget.
func TestInventoryAllExhaustionSentinel(t *testing.T) {
	tags := adversarialPopulation(t, 4)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 2
	epcs, err := ic.InventoryAll(tags, 5, rng.New(1))
	if err == nil {
		t.Fatal("exhausted inventory returned nil error")
	}
	if !errors.Is(err, ErrInventoryIncomplete) {
		t.Fatalf("error %v does not wrap ErrInventoryIncomplete", err)
	}
	if !strings.Contains(err.Error(), "of 4 tags") {
		t.Fatalf("error %v does not report the population size", err)
	}
	if len(epcs) >= len(tags) {
		t.Fatalf("adversarial population should not fully inventory, read %d/%d", len(epcs), len(tags))
	}
	// The partial list (possibly empty) must still be the valid prefix of
	// what was read: no duplicates, every entry a real tag EPC.
	valid := map[string]bool{}
	for _, tg := range tags {
		valid[string(tg.EPC())] = true
	}
	seen := map[string]bool{}
	for _, epc := range epcs {
		if !valid[string(epc)] || seen[string(epc)] {
			t.Fatalf("bad partial EPC list entry %x", epc)
		}
		seen[string(epc)] = true
	}
}

// TestInventoryAllExhaustionWithRecovery: the recovery stack cannot save
// a population whose collisions are deterministic (identical RNG streams
// survive any Q), so the sentinel must surface through the recovery path
// too — and the re-query budget must cut the work short rather than spin.
func TestInventoryAllExhaustionWithRecovery(t *testing.T) {
	tags := adversarialPopulation(t, 4)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 2
	ic.Recovery = DefaultRecovery()
	epcs, err := ic.InventoryAll(tags, 100, rng.New(1))
	if !errors.Is(err, ErrInventoryIncomplete) {
		t.Fatalf("recovery path lost the sentinel: %v", err)
	}
	if len(epcs) >= len(tags) {
		t.Fatalf("read %d/%d from a deterministic-collision population", len(epcs), len(tags))
	}
	// MaxRequeries bounds consecutive fruitless rounds; with zero progress
	// possible the controller must stop long before the 100-round budget.
	// (Each round is itself bounded by MaxCommands, so this is a bound on
	// wasted work, checked indirectly: the call returned at all.)
}

// TestCommandTruncationIsObservedAsSilence: a truncated Query opens no
// slot — every tag stays idle, the round drains as pure silence, and the
// re-query (the next round, with a now-advanced command clock) reads the
// population. Round-level truncation loss is recovered at the
// InventoryAll level, not within the round.
func TestCommandTruncationIsObservedAsSilence(t *testing.T) {
	tags := makePopulation(t, 5, 31)
	ic := NewInventoryController(gen2.S0)
	ic.Fault = &stubFault{truncate: func(cmd int) bool { return cmd == 0 }}
	stats, err := ic.RunRound(tags, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", stats.Truncated)
	}
	if len(stats.EPCs) != 0 {
		t.Fatalf("truncated Query still read %d tags", len(stats.EPCs))
	}
	for _, tg := range tags {
		if tg.State() != gen2.StateReady {
			t.Fatalf("tag left in %v", tg.State())
		}
	}
	// The re-query round sees an intact Query (cmd clock has advanced) and
	// reads everyone.
	stats, err = ic.RunRound(tags, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) != 5 {
		t.Fatalf("re-query round read %d/5", len(stats.EPCs))
	}
}

// TestBrownoutResetsTagState: a tag observed unpowered mid-round loses its
// volatile protocol state (PowerReset), including the S0 inventoried
// flag, and the transition is counted.
func TestBrownoutResetsTagState(t *testing.T) {
	tags := makePopulation(t, 3, 41)
	ic := NewInventoryController(gen2.S0)
	dark := false
	ic.Fault = &stubFault{powered: func(cmd, tagIndex int) bool {
		return !(dark && tagIndex == 0)
	}}
	// Round 1: clean; everyone read, everyone's S0 flag flipped to B.
	stats, err := ic.RunRound(tags, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) != 3 {
		t.Fatalf("clean round read %d/3", len(stats.EPCs))
	}
	if !tags[0].Inventoried(gen2.S0) {
		t.Fatal("tag 0 not inventoried after clean round")
	}
	// Round 2: tag 0 browns out. Its first dark observation must reset its
	// state — in particular the S0 flag returns to A.
	dark = true
	stats, err = ic.RunRound(tags, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Brownouts != 1 {
		t.Fatalf("Brownouts = %d, want 1", stats.Brownouts)
	}
	if tags[0].Inventoried(gen2.S0) {
		t.Fatal("brownout did not reset the S0 inventoried flag")
	}
	if tags[0].State() != gen2.StateReady {
		t.Fatalf("browned-out tag in %v, want Ready", tags[0].State())
	}
}

// corruptEPCOnce corrupts the first ReplyEPC-length payload it sees (an
// EPC reply is longer than an RN16's 16 bits), breaking its CRC.
func corruptEPCOnce() *stubFault {
	done := false
	return &stubFault{corrupt: func(cmd int, bits gen2.Bits) (gen2.Bits, bool) {
		if done || len(bits) <= 16 {
			return bits, false
		}
		done = true
		out := append(gen2.Bits(nil), bits...)
		out[0] ^= 1
		return out, true
	}}
}

// TestEPCCorruptionLosesTagWithoutRecovery captures the stranding
// mechanism the recovery stack exists for: the reader drops a
// CRC-corrupted EPC reply, but the tag believes the exchange succeeded,
// flips its inventoried flag at the next Query/QueryRep, and never
// answers again within the round budget.
func TestEPCCorruptionLosesTagWithoutRecovery(t *testing.T) {
	tags := makePopulation(t, 1, 51)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.Fault = corruptEPCOnce()
	stats, err := ic.RunRound(tags, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", stats.Corrupted)
	}
	if stats.LostSlots != 1 {
		t.Fatalf("LostSlots = %d, want 1", stats.LostSlots)
	}
	if len(stats.EPCs) != 0 {
		t.Fatalf("corrupted EPC still read: %x", stats.EPCs)
	}
	// The tag is stranded: it considers itself inventoried.
	if !tags[0].Inventoried(gen2.S0) {
		t.Fatal("tag did not flip its flag — stranding mechanism changed?")
	}
}

// TestEPCCorruptionRecoveredByReACK: the same fault with the recovery
// policy on — the controller re-ACKs while the tag still holds the
// handshake RN16, and the tag (in Acknowledged) re-backscatters its EPC.
func TestEPCCorruptionRecoveredByReACK(t *testing.T) {
	tags := makePopulation(t, 1, 51)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.Fault = corruptEPCOnce()
	ic.Recovery = DefaultRecovery()
	stats, err := ic.RunRound(tags, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) != 1 {
		t.Fatalf("re-ACK did not recover the EPC: read %d", len(stats.EPCs))
	}
	if stats.Recovered != 1 || stats.ACKRetries < 1 {
		t.Fatalf("recovery accounting wrong: %+v", stats)
	}
	if stats.LostSlots != 0 {
		t.Fatalf("LostSlots = %d after successful recovery", stats.LostSlots)
	}
}

// TestTruncatedRN16IsLostSlotUnderFault: a corrupted RN16 whose length
// changed cannot form an ACK; with a fault layer installed this is a
// counted lost slot, not a fatal protocol error.
func TestTruncatedRN16IsLostSlotUnderFault(t *testing.T) {
	tags := makePopulation(t, 1, 61)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.Fault = &stubFault{corrupt: func(cmd int, bits gen2.Bits) (gen2.Bits, bool) {
		if len(bits) != 16 {
			return bits, false
		}
		return append(gen2.Bits(nil), bits[:12]...), true
	}}
	stats, err := ic.RunRound(tags, rng.New(62))
	if err != nil {
		t.Fatalf("truncated RN16 under fault must not be fatal: %v", err)
	}
	if stats.LostSlots == 0 {
		t.Fatal("truncated RN16 not counted as a lost slot")
	}
}

// TestRecoveryMatchesCleanChannelWhenFaultFree: with no faults, the
// adaptive (recovery) controller must still read everyone — the Annex-D
// floating Q is a performance change, not a correctness change.
func TestRecoveryMatchesCleanChannelWhenFaultFree(t *testing.T) {
	const n = 30
	tags := makePopulation(t, n, 5)
	ic := NewInventoryController(gen2.S1)
	ic.Recovery = DefaultRecovery()
	epcs, err := ic.InventoryAll(tags, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(epcs) != n {
		t.Fatalf("adaptive controller read %d/%d on a clean channel", len(epcs), n)
	}
}

// TestAdaptiveRoundAdjustsQ: starting oversized against a small
// population, the floating-Q machinery must issue QueryAdjusts (observable
// as FinalQ moving off the initial value by a non-integer amount).
func TestAdaptiveRoundAdjustsQ(t *testing.T) {
	tags := makePopulation(t, 2, 71)
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 6
	ic.Recovery = DefaultRecovery()
	stats, err := ic.RunRound(tags, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EPCs) != 2 {
		t.Fatalf("read %d/2", len(stats.EPCs))
	}
	if stats.FinalQ >= 6 {
		t.Fatalf("floating Q did not shrink from 6: %v", stats.FinalQ)
	}
}

// TestFaultPathDeterministic: with a deterministic stub fault, two runs
// over identically-seeded populations must produce identical stats —
// the command clock, not wall time or map order, keys every decision.
func TestFaultPathDeterministic(t *testing.T) {
	run := func() string {
		tags := makePopulation(t, 8, 81)
		ic := NewInventoryController(gen2.S0)
		ic.Fault = &stubFault{
			truncate: func(cmd int) bool { return cmd%17 == 3 },
			powered:  func(cmd, tagIndex int) bool { return (cmd/8+tagIndex)%11 != 0 },
		}
		ic.Recovery = DefaultRecovery()
		var b strings.Builder
		for round := 0; round < 3; round++ {
			stats, err := ic.RunRound(tags, rng.New(82))
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "%d:%d:%d:%d:%d:%d;", stats.Commands, len(stats.EPCs),
				stats.Truncated, stats.Brownouts, stats.LostSlots, stats.ACKRetries)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fault path not deterministic:\n%s\n%s", a, b)
	}
}

// TestCmdClockPersistsAcrossRounds: the command clock must not reset per
// round, or an injector keyed on command index would replay the same
// fault schedule every round.
func TestCmdClockPersistsAcrossRounds(t *testing.T) {
	tags := makePopulation(t, 2, 91)
	ic := NewInventoryController(gen2.S0)
	var cmds []int
	ic.Fault = &stubFault{truncate: func(cmd int) bool {
		cmds = append(cmds, cmd)
		return false
	}}
	if _, err := ic.RunRound(tags, rng.New(92)); err != nil {
		t.Fatal(err)
	}
	first := len(cmds)
	if _, err := ic.RunRound(tags, rng.New(93)); err != nil {
		t.Fatal(err)
	}
	if len(cmds) <= first {
		t.Fatal("second round issued no commands")
	}
	if cmds[first] == 0 {
		t.Fatal("command clock reset between rounds")
	}
	for i := 1; i < len(cmds); i++ {
		if cmds[i] != cmds[i-1]+1 {
			t.Fatalf("command clock not monotone at %d: %v", i, cmds[i])
		}
	}
}
