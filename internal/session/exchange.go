package session

import (
	"fmt"

	"ivn/internal/gen2"
	"ivn/internal/rng"
	"ivn/internal/tag"
)

// Decode is the outcome of a successful uplink decode.
type Decode struct {
	// Bits are the recovered reply bits.
	Bits gen2.Bits
	// Correlation is the preamble correlation of the decode.
	Correlation float64
}

// Link is the physical layer the session state machine drives: command
// transmission on the CIB downlink and reply decoding through the
// out-of-band reader. ivn/internal/link provides the real
// implementation; tests script fakes.
type Link interface {
	// Transmit sends one reader command downlink (flatness-checked by
	// physical implementations); preamble selects the Query preamble
	// over frame-sync.
	Transmit(cmd gen2.Command, preamble bool) error
	// TransmitSelect sends the §3.7 Select+Query compound frame.
	TransmitSelect(sel *gen2.Select, q *gen2.Query) error
	// Decode pushes a tag's reply through the uplink chain. label names
	// the deterministic noise stream drawn from r. A waveform that
	// cannot be synthesized is an error; a capture that fails to decode
	// (or decodes to the wrong bits) returns ok=false.
	Decode(tg *tag.Tag, reply gen2.Reply, label string, r *rng.Rand) (Decode, bool, error)
}

// Exchange runs single-tag Gen2 flows over a Link. The zero Trace is
// silent.
type Exchange struct {
	// Link is the physical layer.
	Link Link
	// Trace observes the exchange; nil is free.
	Trace *Trace
}

// Singulation is the outcome of a Query → RN16 handshake.
type Singulation struct {
	// Replied reports whether the tag answered the Query with an RN16.
	Replied bool
	// Decoded reports whether the reader recovered the exact RN16 bits.
	Decoded bool
	// RN16 is the slot random number (valid when Decoded).
	RN16 uint16
	// Correlation is the preamble correlation of the RN16 decode.
	Correlation float64
}

// PowerUp applies the link's delivered peak (watts) to the tag's
// harvester and reports whether its rail came up.
func (x *Exchange) PowerUp(tg *tag.Tag, peak float64) bool {
	tg.UpdatePower(peak)
	powered := tg.Powered()
	if x.Trace != nil {
		x.Trace.Emit(Event{Kind: EvPowerUp, OK: powered, Value: peak})
	}
	return powered
}

// Query transmits q and collects the tag's reply without decoding it —
// the slot-open step, also used alone by link-budget-only trials.
func (x *Exchange) Query(tg *tag.Tag, q *gen2.Query) (gen2.Reply, error) {
	if err := x.Link.Transmit(q, true); err != nil {
		return gen2.Reply{}, err
	}
	reply := tg.HandleCommand(q)
	if x.Trace != nil {
		outcome := "empty"
		if reply.Kind != gen2.ReplyNone {
			outcome = "single"
		}
		x.Trace.Emit(Event{Kind: EvSlotResolved, Outcome: outcome})
	}
	return reply, nil
}

// DecodeRN16 decodes an already-collected RN16 reply under label.
// Errors are protocol-invariant violations (undecodable waveform, an
// RN16 reply whose decoded bits do not parse); a noisy capture that
// fails correlation is Decoded=false, not an error.
func (x *Exchange) DecodeRN16(tg *tag.Tag, reply gen2.Reply, label string, r *rng.Rand) (Singulation, error) {
	out := Singulation{Replied: true}
	dec, ok, err := x.Link.Decode(tg, reply, label, r)
	if err != nil {
		return out, err
	}
	if !ok {
		return out, nil
	}
	var rn gen2.RN16Reply
	if err := rn.DecodeFromBits(dec.Bits); err != nil {
		return out, err
	}
	out.Decoded = true
	out.Correlation = dec.Correlation
	out.RN16 = rn.RN16
	return out, nil
}

// Singulate runs the full Query → RN16 handshake: transmit, collect,
// decode under label.
func (x *Exchange) Singulate(tg *tag.Tag, q *gen2.Query, label string, r *rng.Rand) (Singulation, error) {
	reply, err := x.Query(tg, q)
	if err != nil {
		return Singulation{}, err
	}
	if reply.Kind != gen2.ReplyRN16 {
		return Singulation{}, nil
	}
	return x.DecodeRN16(tg, reply, label, r)
}

// AckEPC acknowledges a singulated tag and decodes its EPC backscatter.
// ok=false when the tag stayed silent, the capture failed to decode, or
// the decoded bits fail their CRC — all soft outcomes the caller
// reports as an incomplete session.
func (x *Exchange) AckEPC(tg *tag.Tag, rn16 uint16, label string, r *rng.Rand) ([]byte, bool, error) {
	ack := &gen2.ACK{RN16: rn16}
	if err := x.Link.Transmit(ack, false); err != nil {
		return nil, false, err
	}
	reply := tg.HandleCommand(ack)
	if reply.Kind != gen2.ReplyEPC {
		return nil, false, nil
	}
	dec, ok, err := x.Link.Decode(tg, reply, label, r)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	var er gen2.EPCReply
	if err := er.DecodeFromBits(dec.Bits); err != nil {
		return nil, false, nil
	}
	if x.Trace != nil {
		x.Trace.Emit(Event{Kind: EvEPCRead, EPC: fmt.Sprintf("%x", er.EPC)})
	}
	return er.EPC, true, nil
}

// ReqRNHandle requests the access handle from an acknowledged tag.
func (x *Exchange) ReqRNHandle(tg *tag.Tag, rn16 uint16, label string, r *rng.Rand) (uint16, bool, error) {
	req := &gen2.ReqRN{RN16: rn16}
	if err := x.Link.Transmit(req, false); err != nil {
		return 0, false, err
	}
	reply := tg.HandleCommand(req)
	if reply.Kind != gen2.ReplyHandle {
		return 0, false, nil
	}
	dec, ok, err := x.Link.Decode(tg, reply, label, r)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	hv, err := dec.Bits.Uint(0, 16)
	if err != nil {
		return 0, false, err
	}
	return uint16(hv), true, nil
}

// Access issues an access command sequence against an open tag. Every
// command must be answered and uplink-decoded ("access-<i>" streams);
// the final command's reply must be of wantKind. Returns the final
// reply's decoded bits.
func (x *Exchange) Access(tg *tag.Tag, cmds []gen2.Command, wantKind gen2.ReplyKind, r *rng.Rand) (gen2.Bits, bool, error) {
	var lastBits gen2.Bits
	for ci, cmd := range cmds {
		if err := x.Link.Transmit(cmd, false); err != nil {
			return nil, false, err
		}
		reply := tg.HandleCommand(cmd)
		wanted := gen2.ReplyKind(0)
		if ci == len(cmds)-1 {
			wanted = wantKind
		}
		if ci == len(cmds)-1 && reply.Kind != wanted {
			return nil, false, nil
		}
		if reply.Kind == gen2.ReplyNone {
			return nil, false, nil
		}
		dec, ok, err := x.Link.Decode(tg, reply, fmt.Sprintf("access-%d", ci), r)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		lastBits = dec.Bits
	}
	return lastBits, true, nil
}

// Select runs the §3.7 Select+Query compound against a population and
// returns the replies of every tag that answered with an RN16, with the
// responders aligned index-for-index.
func (x *Exchange) Select(tags []*tag.Tag, sel *gen2.Select, q *gen2.Query) ([]gen2.Reply, []*tag.Tag, error) {
	if err := x.Link.TransmitSelect(sel, q); err != nil {
		return nil, nil, err
	}
	var replies []gen2.Reply
	var responders []*tag.Tag
	for _, tg := range tags {
		tg.HandleCommand(sel)
		if rep := tg.HandleCommand(q); rep.Kind == gen2.ReplyRN16 {
			replies = append(replies, rep)
			responders = append(responders, tg)
		}
	}
	if x.Trace != nil {
		outcome := "empty"
		switch {
		case len(replies) == 1:
			outcome = "single"
		case len(replies) > 1:
			outcome = "collision"
		}
		x.Trace.Emit(Event{Kind: EvSlotResolved, Outcome: outcome})
	}
	return replies, responders, nil
}
