package session

import (
	"errors"
	"fmt"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
	"ivn/internal/tag"
)

// scriptedLink is a physics-free session.Link: commands always arrive,
// and decode outcomes are scripted per label. The zero value decodes
// every capture perfectly (it hands back the reply's own bits).
type scriptedLink struct {
	// sent records command type names in transmit order.
	sent []string
	// noisy labels fail their decode (ok=false, no error).
	noisy map[string]bool
	// broken labels fail hard (waveform error).
	broken map[string]bool
	// transmitErr, when set, fails every Transmit.
	transmitErr error
}

func (l *scriptedLink) Transmit(cmd gen2.Command, preamble bool) error {
	if l.transmitErr != nil {
		return l.transmitErr
	}
	l.sent = append(l.sent, cmd.Type().String())
	return nil
}

func (l *scriptedLink) TransmitSelect(sel *gen2.Select, q *gen2.Query) error {
	if l.transmitErr != nil {
		return l.transmitErr
	}
	l.sent = append(l.sent, "Select+Query")
	return nil
}

func (l *scriptedLink) Decode(tg *tag.Tag, reply gen2.Reply, label string, r *rng.Rand) (Decode, bool, error) {
	if l.broken[label] {
		return Decode{}, false, fmt.Errorf("scripted waveform failure (%s)", label)
	}
	if l.noisy[label] {
		return Decode{}, false, nil
	}
	return Decode{Bits: reply.Bits, Correlation: 1}, true, nil
}

// poweredTag builds a tag with its rail up, so protocol behavior — not
// harvesting physics — decides every outcome.
func poweredTag(t *testing.T, epc []byte, seed uint64) *tag.Tag {
	t.Helper()
	tg, err := tag.New(tag.StandardTag(), epc, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tg.UpdatePower(tg.Model.MinPeakPower() * 4)
	return tg
}

func TestExchangeFlows(t *testing.T) {
	epc := []byte{0xE2, 0x00, 0xAB, 0xCD}
	query := func() *gen2.Query { return &gen2.Query{Q: 0, Session: gen2.S0} }
	cases := []struct {
		name string
		link scriptedLink
		run  func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand)
	}{
		{
			name: "query-ack happy path reads the EPC",
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				sg, err := x.Singulate(tg, query(), "rn16", r)
				if err != nil {
					t.Fatal(err)
				}
				if !sg.Replied || !sg.Decoded {
					t.Fatalf("singulation %+v, want replied+decoded", sg)
				}
				got, ok, err := x.AckEPC(tg, sg.RN16, "epc", r)
				if err != nil || !ok {
					t.Fatalf("AckEPC ok=%v err=%v", ok, err)
				}
				if string(got) != string(epc) {
					t.Fatalf("EPC %x, want %x", got, epc)
				}
				want := []string{"Query", "ACK"}
				if fmt.Sprint(lk.sent) != fmt.Sprint(want) {
					t.Fatalf("commands %v, want %v", lk.sent, want)
				}
			},
		},
		{
			name: "noisy rn16 is replied but not decoded",
			link: scriptedLink{noisy: map[string]bool{"rn16": true}},
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				sg, err := x.Singulate(tg, query(), "rn16", r)
				if err != nil {
					t.Fatal(err)
				}
				if !sg.Replied || sg.Decoded {
					t.Fatalf("singulation %+v, want replied, undecoded", sg)
				}
			},
		},
		{
			name: "unpowered tag leaves the slot empty",
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				dark, err := tag.New(tag.StandardTag(), epc, rng.New(99))
				if err != nil {
					t.Fatal(err)
				}
				sg, err := x.Singulate(dark, query(), "rn16", r)
				if err != nil {
					t.Fatal(err)
				}
				if sg.Replied {
					t.Fatalf("unpowered tag replied: %+v", sg)
				}
			},
		},
		{
			name: "ACK with a mismatched RN16 returns the tag to arbitration",
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				sg, err := x.Singulate(tg, query(), "rn16", r)
				if err != nil || !sg.Decoded {
					t.Fatalf("singulate: %+v, %v", sg, err)
				}
				_, ok, err := x.AckEPC(tg, sg.RN16^0xFFFF, "epc", r)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatal("mismatched ACK read an EPC")
				}
			},
		},
		{
			name: "noisy epc capture is a soft failure",
			link: scriptedLink{noisy: map[string]bool{"epc": true}},
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				sg, err := x.Singulate(tg, query(), "rn16", r)
				if err != nil || !sg.Decoded {
					t.Fatalf("singulate: %+v, %v", sg, err)
				}
				_, ok, err := x.AckEPC(tg, sg.RN16, "epc", r)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatal("noisy EPC capture decoded")
				}
			},
		},
		{
			name: "broken waveform is a hard error",
			link: scriptedLink{broken: map[string]bool{"rn16": true}},
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				if _, err := x.Singulate(tg, query(), "rn16", r); err == nil {
					t.Fatal("broken waveform did not error")
				}
			},
		},
		{
			name: "transmit failure propagates",
			link: scriptedLink{transmitErr: errors.New("scripted downlink outage")},
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				if _, err := x.Singulate(tg, query(), "rn16", r); err == nil {
					t.Fatal("transmit failure did not error")
				}
			},
		},
		{
			name: "reqrn-access flow reads tag memory through the handle",
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				sg, err := x.Singulate(tg, query(), "rn16", r)
				if err != nil || !sg.Decoded {
					t.Fatalf("singulate: %+v, %v", sg, err)
				}
				if _, ok, err := x.AckEPC(tg, sg.RN16, "epc", r); err != nil || !ok {
					t.Fatalf("AckEPC ok=%v err=%v", ok, err)
				}
				handle, ok, err := x.ReqRNHandle(tg, sg.RN16, "handle", r)
				if err != nil || !ok {
					t.Fatalf("ReqRNHandle ok=%v err=%v", ok, err)
				}
				bits, ok, err := x.Access(tg,
					[]gen2.Command{&gen2.Read{Bank: gen2.BankEPC, WordPtr: 0, WordCount: 1, Handle: handle}},
					gen2.ReplyRead, r)
				if err != nil || !ok {
					t.Fatalf("Access ok=%v err=%v", ok, err)
				}
				if len(bits) == 0 {
					t.Fatal("Access returned no bits")
				}
				want := []string{"Query", "ACK", "ReqRN", "Read"}
				if fmt.Sprint(lk.sent) != fmt.Sprint(want) {
					t.Fatalf("commands %v, want %v", lk.sent, want)
				}
			},
		},
		{
			name: "select+query singulates only the matching tag",
			run: func(t *testing.T, x *Exchange, lk *scriptedLink, tg *tag.Tag, r *rng.Rand) {
				other := poweredTag(t, []byte{0xE2, 0x00, 0x11, 0x22}, 7)
				sel := &gen2.Select{Target: 4, MemBank: 1, Mask: gen2.BitsFromBytes(epc)}
				q := &gen2.Query{Q: 0, Sel: 3, Session: gen2.S0}
				replies, responders, err := x.Select([]*tag.Tag{tg, other}, sel, q)
				if err != nil {
					t.Fatal(err)
				}
				if len(replies) != 1 || len(responders) != 1 || responders[0] != tg {
					t.Fatalf("select matched %d tags", len(replies))
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lk := tc.link
			x := &Exchange{Link: &lk}
			tg := poweredTag(t, epc, 5)
			tc.run(t, x, &lk, tg, rng.New(6))
		})
	}
}

// TestExchangeGoldenTrace pins the exact event sequence of one scripted
// single-tag exchange: power-up, slot resolution, EPC read.
func TestExchangeGoldenTrace(t *testing.T) {
	epc := []byte{0xE2, 0x00, 0xAB, 0xCD}
	rec := &Recorder{}
	lk := &scriptedLink{}
	x := &Exchange{Link: lk, Trace: NewTrace(rec)}
	tg := poweredTag(t, epc, 5)
	r := rng.New(6)

	if !x.PowerUp(tg, tg.Model.MinPeakPower()*4) {
		t.Fatal("tag did not power up")
	}
	sg, err := x.Singulate(tg, &gen2.Query{Q: 0, Session: gen2.S0}, "rn16", r)
	if err != nil || !sg.Decoded {
		t.Fatalf("singulate: %+v, %v", sg, err)
	}
	if _, ok, err := x.AckEPC(tg, sg.RN16, "epc", r); err != nil || !ok {
		t.Fatalf("AckEPC ok=%v err=%v", ok, err)
	}

	want := []Event{
		{Kind: EvPowerUp, OK: true},
		{Kind: EvSlotResolved, Outcome: "single"},
		{Kind: EvEPCRead, EPC: "e200abcd"},
	}
	if len(rec.Events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(rec.Events), rec.Events, len(want))
	}
	for i, w := range want {
		g := rec.Events[i]
		if g.Kind != w.Kind || g.Outcome != w.Outcome || g.OK != w.OK || g.EPC != w.EPC {
			t.Fatalf("event %d = %+v, want %+v", i, g, w)
		}
	}
}

// eventSig compresses an event to its non-timing coordinates for sequence
// comparison.
func eventSig(e Event) string {
	return fmt.Sprintf("%s|%s|%s|%v|%d|%s", e.Kind, e.Cmd, e.Outcome, e.OK, e.Attempt, e.EPC)
}

// TestInventoryGoldenTrace pins the exact event stream of one seeded
// single-tag inventory round through the controller: the Query opens the
// only slot, the ACK reads the EPC, and the straggler sweep drains.
func TestInventoryGoldenTrace(t *testing.T) {
	tags := makePopulation(t, 1, 1)
	rec := &Recorder{}
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.Trace = NewTrace(rec)
	if _, err := ic.RunRound(tags, rng.New(2)); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"command-sent|Query||false|0|",
		"slot-resolved||single|false|0|",
		"command-sent|ACK||false|0|",
		"epc-read|||false|0|" + fmt.Sprintf("%x", tags[0].EPC()),
		"command-sent|Query||false|0|",
		"slot-resolved||empty|false|0|",
		"command-sent|QueryRep||false|0|",
		"slot-resolved||empty|false|0|",
	}
	var got []string
	for _, e := range rec.Events {
		got = append(got, eventSig(e))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("event stream:\n got %v\nwant %v", got, want)
	}
	// Timestamps derive from PIE frame durations: strictly positive and
	// monotone non-decreasing.
	last := 0.0
	for i, e := range rec.Events {
		if e.T < last {
			t.Fatalf("event %d clock moved backwards: %v -> %v", i, last, e.T)
		}
		last = e.T
	}
	if !(last > 0) {
		t.Fatalf("final sim time %v, want > 0", last)
	}
}

// TestAdaptiveTraceDeterministic runs a multi-tag inventory under the
// floating-Q recovery policy twice with the same seed and requires the
// identical event stream both times, including at least one QueryAdjust.
func TestAdaptiveTraceDeterministic(t *testing.T) {
	run := func() []string {
		tags := makePopulation(t, 12, 21)
		rec := &Recorder{}
		ic := NewInventoryController(gen2.S0)
		ic.InitialQ = 2
		ic.Recovery = DefaultRecovery()
		ic.Trace = NewTrace(rec)
		if _, err := ic.RunRound(tags, rng.New(3)); err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, e := range rec.Events {
			sigs = append(sigs, fmt.Sprintf("%s@%.9f", eventSig(e), e.T))
		}
		return sigs
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("adaptive inventory trace differs between identical runs")
	}
	adjusts := 0
	for _, s := range a {
		if len(s) >= 24 && s[:24] == "command-sent|QueryAdjust" {
			adjusts++
		}
	}
	if adjusts == 0 {
		t.Fatalf("no QueryAdjust in %d events — floating-Q never moved", len(a))
	}
}
