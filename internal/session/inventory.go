package session

import (
	"errors"
	"fmt"
	"math"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// ChannelFault perturbs the simulated air interface between the inventory
// controller and its tag population. Implementations must be pure
// functions of their own state and the decision coordinates (command
// index, tag index) so that identical fault processes can drive paired
// protocol variants (see ivn/internal/fault). A nil ChannelFault is the
// clean channel; the unfaulted path costs a nil check and nothing else.
type ChannelFault interface {
	// CommandTruncated reports whether reader command cmd is truncated in
	// flight: no tag receives it, and the reader observes silence.
	CommandTruncated(cmd int) bool
	// TagPowered reports whether tag tagIndex has its rail up when
	// command cmd arrives. A tag observed unpowered is silent; on a
	// powered→unpowered transition its volatile protocol state is reset,
	// as a real passive tag's state dies with its rail.
	TagPowered(cmd, tagIndex int) bool
	// CorruptUplink optionally corrupts a singulated reply's payload
	// bits, returning the corrupted copy and true. The input slice must
	// not be mutated.
	CorruptUplink(cmd int, bits gen2.Bits) (gen2.Bits, bool)
}

// ErrInventoryIncomplete is returned (wrapped) by InventoryAll when the
// round budget is exhausted with tags still unread. The partial EPC list
// accompanies the error, so callers can both use what was read and detect
// that the population was not drained — silent partial success hid
// persistent-collision livelocks before this sentinel existed.
var ErrInventoryIncomplete = errors.New("session: inventory incomplete")

// RecoveryPolicy enables the reader-side recovery stack: the Gen2 Annex-D
// style floating-Q adaptation (QueryAdjust mid-sweep), a bounded re-ACK
// budget on EPC decode failure, and bounded re-query with slot-space
// backoff across rounds. A nil policy reproduces the pre-recovery
// controller exactly.
type RecoveryPolicy struct {
	// MaxACKRetries is the per-singulation re-ACK budget: when an EPC
	// reply is lost or fails its CRC, the controller re-issues the ACK up
	// to this many times (the tag, still in Acknowledged, re-backscatters
	// its EPC). Without this, a corrupted EPC reply silently strands the
	// tag: it flips its inventoried flag believing the exchange
	// succeeded, and stops answering for the rest of the inventory.
	MaxACKRetries int
	// MaxRequeries bounds consecutive fruitless rounds in InventoryAll:
	// after this many rounds with no new EPC the controller gives up
	// (returning ErrInventoryIncomplete) instead of spinning its budget.
	MaxRequeries int
	// QAdjustC is the floating-Q step of the Annex-D algorithm: each
	// collision adds C, each empty slot subtracts C, and when the rounded
	// value moves the controller issues a QueryAdjust mid-sweep. Zero
	// selects DefaultQAdjustC.
	QAdjustC float64
}

// DefaultQAdjustC is the Annex-D Q-step used when QAdjustC is zero — the
// spec suggests 0.1–0.5 with smaller C for larger Q; 0.35 behaves well
// across the population sizes the experiments sweep.
const DefaultQAdjustC = 0.35

// DefaultRecovery returns the recovery policy the fault-matrix experiment
// ships: 2 re-ACKs per singulation, 3 re-queries, default Q step.
func DefaultRecovery() *RecoveryPolicy {
	return &RecoveryPolicy{MaxACKRetries: 2, MaxRequeries: 3, QAdjustC: DefaultQAdjustC}
}

// qStep resolves the configured floating-Q step.
func (p *RecoveryPolicy) qStep() float64 {
	if p.QAdjustC > 0 {
		return p.QAdjustC
	}
	return DefaultQAdjustC
}

// InventoryController is the reader-side inventory engine: it runs
// slotted-ALOHA sweeps against a tag population, re-sizing the Q
// parameter between sweeps from a collision-based backlog estimate.
// IVN's multi-sensor story (§3.7) rides on this machinery:
// "In order to avoid collision between multiple sensors, IVN can leverage
// a variety of techniques from standard backscatter communications."
//
// With a non-nil Fault the controller sees a degraded channel (truncated
// commands, browned-out tags, corrupted uplinks); with a non-nil Recovery
// it fights back (floating-Q adaptation, re-ACK, re-query backoff). Both
// nil reproduces the historical clean-channel controller command for
// command. A non-nil Trace receives the typed event stream of every
// round, timestamped by the commands' PIE frame durations.
type InventoryController struct {
	// Session is the inventory session to run rounds in.
	Session gen2.Session
	// InitialQ seeds the slot-count exponent (0-15).
	InitialQ byte
	// MaxCommands bounds a round (guards against livelock).
	MaxCommands int
	// Fault perturbs the air interface; nil = clean channel.
	Fault ChannelFault
	// Recovery enables the recovery stack; nil = no recovery.
	Recovery *RecoveryPolicy
	// Trace observes the rounds; nil is free.
	Trace *Trace

	// cmdClock numbers every command this controller has ever issued, so
	// a ChannelFault sees globally unique decision coordinates across the
	// rounds of an InventoryAll (fresh controllers start at zero; reuse a
	// controller only within one deterministic run).
	cmdClock int
	// pie times traced commands; defaulted lazily, never used untraced.
	pie gen2.PIEParams
}

// NewInventoryController returns a controller with spec-typical defaults.
func NewInventoryController(session gen2.Session) *InventoryController {
	return &InventoryController{
		Session:     session,
		InitialQ:    4,
		MaxCommands: 4096,
	}
}

// SlotOutcome classifies one slot of a round.
type SlotOutcome int

// Slot outcomes.
const (
	SlotEmpty SlotOutcome = iota
	SlotSingle
	SlotCollision
)

// String names the outcome.
func (s SlotOutcome) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotSingle:
		return "single"
	case SlotCollision:
		return "collision"
	default:
		return fmt.Sprintf("SlotOutcome(%d)", int(s))
	}
}

// RoundStats summarizes a completed round.
type RoundStats struct {
	// EPCs are the identifiers read, in singulation order. Under power
	// faults a tag can be read twice in one round (a brownout resets its
	// inventoried flag); InventoryAll deduplicates across rounds.
	EPCs [][]byte
	// Commands is the number of reader commands issued.
	Commands int
	// Slots, Empties, Singles, Collisions count slot outcomes.
	Slots, Empties, Singles, Collisions int
	// FinalQ is the floating Q at round end.
	FinalQ float64

	// Truncated counts reader commands lost in flight (ChannelFault).
	Truncated int
	// Corrupted counts uplink replies the fault layer corrupted.
	Corrupted int
	// Brownouts counts observed powered→unpowered tag transitions.
	Brownouts int
	// LostSlots counts singulated slots that yielded no EPC: undecodable
	// RN16, lost ACK exchange, or EPC corruption beyond the retry budget.
	LostSlots int
	// ACKRetries counts recovery re-ACKs issued (Recovery only).
	ACKRetries int
	// Recovered counts EPCs obtained only through a re-ACK (Recovery
	// only) — reads that the no-recovery controller would have lost.
	Recovered int
}

// Efficiency returns singles per slot — the throughput metric slotted
// ALOHA maximizes near Q ≈ log2(population).
func (s RoundStats) Efficiency() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.Singles) / float64(s.Slots)
}

// medium abstracts what the controller can observe of the air interface.
// With more than one tag backscattering in a slot the reader sees a
// collision (CRC/preamble failure), not bits. A non-nil fault interposes
// on every broadcast: command truncation, per-tag power, uplink
// corruption.
type medium struct {
	tags  []*gen2.TagLogic
	fault ChannelFault
	clock *int
	lit   []bool // last observed power state per tag (fault != nil only)
	stats *RoundStats
	trace *Trace
}

// broadcast sends a command to every powered tag and classifies replies.
func (m *medium) broadcast(c gen2.Command) (SlotOutcome, gen2.Reply, *gen2.TagLogic) {
	if m.fault == nil {
		return m.broadcastClean(c)
	}
	cmd := *m.clock
	*m.clock++
	if m.fault.CommandTruncated(cmd) {
		m.stats.Truncated++
		if m.trace != nil {
			m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "truncated", Cmd: c.Type().String()})
		}
		return SlotEmpty, gen2.Reply{Kind: gen2.ReplyNone}, nil
	}
	var got []gen2.Reply
	var responders []*gen2.TagLogic
	for i, t := range m.tags {
		if !m.fault.TagPowered(cmd, i) {
			if m.lit[i] {
				t.PowerReset()
				m.stats.Brownouts++
				if m.trace != nil {
					m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "brownout", EPC: fmt.Sprintf("%x", t.EPC())})
				}
			}
			m.lit[i] = false
			continue
		}
		m.lit[i] = true
		if r := t.HandleCommand(c); r.Kind != gen2.ReplyNone {
			got = append(got, r)
			responders = append(responders, t)
		}
	}
	switch len(got) {
	case 0:
		return SlotEmpty, gen2.Reply{Kind: gen2.ReplyNone}, nil
	case 1:
		reply := got[0]
		if bits, corrupted := m.fault.CorruptUplink(cmd, reply.Bits); corrupted {
			m.stats.Corrupted++
			reply.Bits = bits
			if m.trace != nil {
				m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "corrupted"})
			}
		}
		return SlotSingle, reply, responders[0]
	default:
		return SlotCollision, gen2.Reply{Kind: gen2.ReplyNone}, nil
	}
}

// broadcastClean is the historical fault-free path, kept separate so the
// clean channel pays a single nil check and no per-tag bookkeeping.
func (m *medium) broadcastClean(c gen2.Command) (SlotOutcome, gen2.Reply, *gen2.TagLogic) {
	var got []gen2.Reply
	var responders []*gen2.TagLogic
	for _, t := range m.tags {
		if r := t.HandleCommand(c); r.Kind != gen2.ReplyNone {
			got = append(got, r)
			responders = append(responders, t)
		}
	}
	switch len(got) {
	case 0:
		return SlotEmpty, gen2.Reply{Kind: gen2.ReplyNone}, nil
	case 1:
		return SlotSingle, got[0], responders[0]
	default:
		return SlotCollision, gen2.Reply{Kind: gen2.ReplyNone}, nil
	}
}

// RunRound inventories a population of powered tags. Each sweep issues a
// Query with the current Q and walks all 2^Q slots with QueryReps, ACKing
// singles; after the sweep the backlog is estimated from the collision
// count (Schoute's 2.39·c estimator) and Q is re-sized for the next sweep.
// With Recovery set, the Annex-D floating-Q algorithm additionally adjusts
// Q mid-sweep via QueryAdjust. The round ends when a sweep drains (no
// replies) or MaxCommands is hit.
func (ic *InventoryController) RunRound(tags []*gen2.TagLogic, r *rng.Rand) (*RoundStats, error) {
	return ic.runRound(tags, ic.InitialQ&0xF, r)
}

func (ic *InventoryController) runRound(tags []*gen2.TagLogic, q byte, r *rng.Rand) (*RoundStats, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("session: no tags to inventory")
	}
	maxCmds := ic.MaxCommands
	if maxCmds <= 0 {
		maxCmds = 4096
	}
	stats := &RoundStats{}
	m := &medium{tags: tags, fault: ic.Fault, clock: &ic.cmdClock, stats: stats, trace: ic.Trace}
	if ic.Fault != nil {
		m.lit = make([]bool, len(tags))
		for i := range m.lit {
			m.lit[i] = true
		}
	}
	_ = r
	if ic.Recovery != nil {
		return ic.runAdaptive(m, stats, q, maxCmds)
	}
	return ic.runFixed(m, stats, q, maxCmds)
}

// issuer issues one command, charging the round's command budget and
// advancing the trace clock past the command's on-air time.
func (ic *InventoryController) issuer(m *medium, stats *RoundStats) func(gen2.Command) (SlotOutcome, gen2.Reply, *gen2.TagLogic) {
	return func(c gen2.Command) (SlotOutcome, gen2.Reply, *gen2.TagLogic) {
		stats.Commands++
		if ic.Trace != nil {
			ic.traceCommand(c)
		}
		return m.broadcast(c)
	}
}

// traceCommand advances the sim clock by the command's PIE frame
// duration and emits the command-sent event. Only reached when tracing.
func (ic *InventoryController) traceCommand(c gen2.Command) {
	if ic.pie.SampleRate == 0 {
		// Frame durations depend only on the symbol timing, not the
		// envelope sample rate; any positive rate validates.
		ic.pie = gen2.DefaultPIE(1)
	}
	bits := c.AppendBits(nil)
	ic.Trace.Advance(ic.pie.FrameDuration(bits, c.Type() == gen2.CmdQuery))
	ic.Trace.Emit(Event{Kind: EvCommandSent, Cmd: c.Type().String()})
}

// traceSlot emits the slot-resolution event. Only reached when tracing.
func (ic *InventoryController) traceSlot(outcome SlotOutcome) {
	ic.Trace.Emit(Event{Kind: EvSlotResolved, Outcome: outcome.String()})
}

// runFixed is the historical sweep structure: fixed Q per sweep, Schoute
// backlog estimation between sweeps. With Fault == nil it issues exactly
// the command sequence of the pre-fault controller.
func (ic *InventoryController) runFixed(m *medium, stats *RoundStats, q byte, maxCmds int) (*RoundStats, error) {
	issue := ic.issuer(m, stats)
	for stats.Commands < maxCmds {
		// One sweep: Query opens slot 0; QueryReps advance.
		outcome, reply, _ := issue(&gen2.Query{Session: ic.Session, Q: q})
		sweepSingles, sweepCollisions := 0, 0
		slots := 1 << uint(q)
		for slot := 0; slot < slots && stats.Commands < maxCmds; slot++ {
			stats.Slots++
			if ic.Trace != nil {
				ic.traceSlot(outcome)
			}
			switch outcome {
			case SlotSingle:
				stats.Singles++
				sweepSingles++
				if err := ic.singulate(stats, issue, reply); err != nil {
					return nil, err
				}
			case SlotCollision:
				stats.Collisions++
				sweepCollisions++
			case SlotEmpty:
				stats.Empties++
			}
			if slot < slots-1 {
				outcome, reply, _ = issue(&gen2.QueryRep{Session: ic.Session})
			}
		}
		if sweepSingles == 0 && sweepCollisions == 0 {
			break // drained
		}
		// Schoute backlog estimate: ≈2.39 tags per colliding slot.
		backlog := int(2.39*float64(sweepCollisions) + 0.5)
		if backlog == 0 {
			// Singles only: one more tight sweep catches stragglers that
			// were mid-handshake.
			q = 1
			continue
		}
		nq := byte(0)
		for 1<<uint(nq) < backlog && nq < 15 {
			nq++
		}
		q = nq
	}
	stats.FinalQ = float64(q)
	return stats, nil
}

// runAdaptive is the recovery-side round: the Gen2 Annex-D floating-Q
// algorithm. Each collision adds C to the floating Q, each empty slot
// subtracts C; when the rounded value moves, the controller issues a
// QueryAdjust, every arbitrating tag redraws its slot, and the sweep
// restarts at the new size. This tracks the true backlog much faster than
// per-sweep estimation when faults churn protocol state mid-round.
func (ic *InventoryController) runAdaptive(m *medium, stats *RoundStats, q byte, maxCmds int) (*RoundStats, error) {
	issue := ic.issuer(m, stats)
	c := ic.Recovery.qStep()
	qfp := float64(q)
	for stats.Commands < maxCmds {
		outcome, reply, _ := issue(&gen2.Query{Session: ic.Session, Q: q})
		sweepSingles, sweepCollisions := 0, 0
		slots := 1 << uint(q)
		slot := 0
		for slot < slots && stats.Commands < maxCmds {
			stats.Slots++
			if ic.Trace != nil {
				ic.traceSlot(outcome)
			}
			switch outcome {
			case SlotSingle:
				stats.Singles++
				sweepSingles++
				if err := ic.singulate(stats, issue, reply); err != nil {
					return nil, err
				}
			case SlotCollision:
				stats.Collisions++
				sweepCollisions++
				qfp = math.Min(15, qfp+c)
			case SlotEmpty:
				stats.Empties++
				qfp = math.Max(0, qfp-c)
			}
			slot++
			if slot >= slots || stats.Commands >= maxCmds {
				break
			}
			if nq := byte(math.Round(qfp)); nq != q {
				// Mid-sweep re-size: QueryAdjust redraws every arbitrating
				// tag into the new slot space (C < 1, so the rounded value
				// moves by at most one — exactly the ±1 a QueryAdjust
				// applies tag-side).
				upDn := gen2.QUp
				if nq < q {
					upDn = gen2.QDown
				}
				q = nq
				slots = 1 << uint(q)
				slot = 0
				outcome, reply, _ = issue(&gen2.QueryAdjust{Session: ic.Session, UpDn: upDn})
				continue
			}
			outcome, reply, _ = issue(&gen2.QueryRep{Session: ic.Session})
		}
		if sweepSingles == 0 && sweepCollisions == 0 {
			break // drained
		}
		q = byte(math.Round(qfp))
	}
	stats.FinalQ = qfp
	return stats, nil
}

// singulate runs the ACK → EPC exchange for a singulated slot, with the
// recovery policy's bounded re-ACK on decode failure. On the clean
// channel an undecodable RN16 is a protocol invariant violation and
// surfaces as an error; under fault injection it is a lost slot.
func (ic *InventoryController) singulate(stats *RoundStats, issue func(gen2.Command) (SlotOutcome, gen2.Reply, *gen2.TagLogic), reply gen2.Reply) error {
	var rn gen2.RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		if ic.Fault == nil {
			return fmt.Errorf("session: bad RN16 reply: %w", err)
		}
		// Corruption shortened the reply: the reader cannot form an ACK,
		// so the slot is lost. (A bit-flipped but length-preserving RN16
		// decodes to a wrong value; the mismatched ACK below sends the
		// tag back to arbitration, which is the same loss one exchange
		// later.)
		stats.LostSlots++
		if ic.Trace != nil {
			ic.Trace.Emit(Event{Kind: EvEPCStranded, Outcome: "bad-rn16"})
		}
		return nil
	}
	ackOutcome, epcReply, _ := issue(&gen2.ACK{RN16: rn.RN16})
	if ackOutcome == SlotSingle && epcReply.Kind == gen2.ReplyEPC {
		var er gen2.EPCReply
		if err := er.DecodeFromBits(epcReply.Bits); err == nil {
			stats.EPCs = append(stats.EPCs, er.EPC)
			if ic.Trace != nil {
				ic.Trace.Emit(Event{Kind: EvEPCRead, EPC: fmt.Sprintf("%x", er.EPC)})
			}
			return nil
		}
	}
	// The EPC exchange failed: the reply was lost, collided, or failed
	// its CRC. The tag meanwhile believes it was acknowledged and will
	// flip its inventoried flag at the next Query/QueryRep — without
	// recovery it is stranded for the rest of the inventory. Re-ACK while
	// it still holds the handshake RN16.
	if rec := ic.Recovery; rec != nil {
		for attempt := 0; attempt < rec.MaxACKRetries; attempt++ {
			stats.ACKRetries++
			if ic.Trace != nil {
				ic.Trace.Emit(Event{Kind: EvRetryTaken, Cmd: "ACK", Attempt: attempt + 1})
			}
			outcome, rep, _ := issue(&gen2.ACK{RN16: rn.RN16})
			if outcome != SlotSingle || rep.Kind != gen2.ReplyEPC {
				continue
			}
			var er gen2.EPCReply
			if err := er.DecodeFromBits(rep.Bits); err == nil {
				stats.EPCs = append(stats.EPCs, er.EPC)
				stats.Recovered++
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvEPCRecovered, EPC: fmt.Sprintf("%x", er.EPC), Attempt: attempt + 1})
				}
				return nil
			}
		}
	}
	stats.LostSlots++
	if ic.Trace != nil {
		ic.Trace.Emit(Event{Kind: EvEPCStranded, Outcome: "epc-lost"})
	}
	return nil
}

// InventoryAll runs rounds until every tag has been read or maxRounds is
// exhausted, returning the union of EPCs in first-read order. When the
// budget runs out with tags unread, the partial list is returned together
// with an error wrapping ErrInventoryIncomplete — exhaustion is never
// silent. With Recovery set, a round that reads nothing new triggers a
// bounded re-query with slot-space backoff: the next round opens with a
// doubled slot count (Q+1), de-correlating persistent collisions; after
// MaxRequeries consecutive fruitless rounds the controller gives up early
// rather than spending the remaining budget on a livelocked population.
func (ic *InventoryController) InventoryAll(tags []*gen2.TagLogic, maxRounds int, r *rng.Rand) ([][]byte, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("session: maxRounds %d < 1", maxRounds)
	}
	seen := map[string]bool{}
	var out [][]byte
	baseQ := ic.InitialQ & 0xF
	q := baseQ
	noProgress := 0
	for round := 0; round < maxRounds && len(seen) < len(tags); round++ {
		stats, err := ic.runRound(tags, q, r)
		if err != nil {
			return out, err
		}
		progress := 0
		for _, epc := range stats.EPCs {
			if !seen[string(epc)] {
				seen[string(epc)] = true
				out = append(out, epc)
				progress++
			}
		}
		if rec := ic.Recovery; rec != nil {
			if progress == 0 {
				noProgress++
				if noProgress > rec.MaxRequeries {
					break // re-query budget exhausted; report incompleteness below
				}
				if q < 15 {
					q++ // backoff: double the slot space for the re-query
				}
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvRetryTaken, Cmd: "Query", Attempt: noProgress})
				}
			} else {
				noProgress = 0
				q = baseQ
			}
		}
	}
	if len(seen) < len(tags) {
		return out, fmt.Errorf("session: read %d of %d tags: %w", len(seen), len(tags), ErrInventoryIncomplete)
	}
	return out, nil
}
