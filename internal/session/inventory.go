package session

import (
	"errors"
	"fmt"
	"math"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// ChannelFault perturbs the simulated air interface between the inventory
// controller and its tag population. Implementations must be pure
// functions of their own state and the decision coordinates (command
// index, tag index) so that identical fault processes can drive paired
// protocol variants (see ivn/internal/fault). A nil ChannelFault is the
// clean channel; the unfaulted path costs a nil check and nothing else.
type ChannelFault interface {
	// CommandTruncated reports whether reader command cmd is truncated in
	// flight: no tag receives it, and the reader observes silence.
	CommandTruncated(cmd int) bool
	// TagPowered reports whether tag tagIndex has its rail up when
	// command cmd arrives. A tag observed unpowered is silent; on a
	// powered→unpowered transition its volatile protocol state is reset,
	// as a real passive tag's state dies with its rail.
	TagPowered(cmd, tagIndex int) bool
	// CorruptUplink optionally corrupts a singulated reply's payload
	// bits, returning the corrupted copy and true. The input slice must
	// not be mutated.
	CorruptUplink(cmd int, bits gen2.Bits) (gen2.Bits, bool)
}

// ErrInventoryIncomplete is returned (wrapped) by InventoryAll when the
// round budget is exhausted with tags still unread. The partial EPC list
// accompanies the error, so callers can both use what was read and detect
// that the population was not drained — silent partial success hid
// persistent-collision livelocks before this sentinel existed.
var ErrInventoryIncomplete = errors.New("session: inventory incomplete")

// RecoveryPolicy enables the reader-side recovery stack: the Gen2 Annex-D
// style floating-Q adaptation (QueryAdjust mid-sweep), a bounded re-ACK
// budget on EPC decode failure, and bounded re-query with slot-space
// backoff across rounds. A nil policy reproduces the pre-recovery
// controller exactly.
type RecoveryPolicy struct {
	// MaxACKRetries is the per-singulation re-ACK budget: when an EPC
	// reply is lost or fails its CRC, the controller re-issues the ACK up
	// to this many times (the tag, still in Acknowledged, re-backscatters
	// its EPC). Without this, a corrupted EPC reply silently strands the
	// tag: it flips its inventoried flag believing the exchange
	// succeeded, and stops answering for the rest of the inventory.
	MaxACKRetries int
	// MaxRequeries bounds consecutive fruitless rounds in InventoryAll:
	// after this many rounds with no new EPC the controller gives up
	// (returning ErrInventoryIncomplete) instead of spinning its budget.
	MaxRequeries int
	// QAdjustC is the floating-Q step of the Annex-D algorithm: each
	// collision adds C, each empty slot subtracts C, and when the rounded
	// value moves the controller issues a QueryAdjust mid-sweep. Zero
	// selects DefaultQAdjustC.
	QAdjustC float64
}

// DefaultQAdjustC is the Annex-D Q-step used when QAdjustC is zero — the
// spec suggests 0.1–0.5 with smaller C for larger Q; 0.35 behaves well
// across the population sizes the experiments sweep.
const DefaultQAdjustC = 0.35

// DefaultRecovery returns the recovery policy the fault-matrix experiment
// ships: 2 re-ACKs per singulation, 3 re-queries, default Q step.
func DefaultRecovery() *RecoveryPolicy {
	return &RecoveryPolicy{MaxACKRetries: 2, MaxRequeries: 3, QAdjustC: DefaultQAdjustC}
}

// qStep resolves the configured floating-Q step.
func (p *RecoveryPolicy) qStep() float64 {
	if p.QAdjustC > 0 {
		return p.QAdjustC
	}
	return DefaultQAdjustC
}

// floatQ is the Annex-D floating-Q accumulator with the spec bounds built
// in: the float value is clamped to [0,15] as it moves, and the commanded
// Q only ever changes by the single ±1 step a QueryAdjust can carry, so
// the reader's slot arithmetic can never desynchronize from the tag-side
// clamp in gen2.TagLogic. (Before this type, a step C > 1 could round to
// a multi-step jump the reader applied at once while every tag moved by
// one — the reader then walked a slot space the population wasn't in.)
type floatQ struct {
	v, c float64
}

func newFloatQ(q byte, c float64) floatQ {
	return floatQ{v: float64(q & 0xF), c: c}
}

// collision accumulates a collided slot: Q drifts up, saturating at 15.
func (f *floatQ) collision() { f.v = math.Min(15, f.v+f.c) }

// empty accumulates an empty slot: Q drifts down, saturating at 0.
func (f *floatQ) empty() { f.v = math.Max(0, f.v-f.c) }

// target is the rounded floating Q, always within the spec's [0,15].
func (f *floatQ) target() byte {
	t := math.Round(f.v)
	if t < 0 {
		t = 0
	} else if t > 15 {
		t = 15
	}
	return byte(t)
}

// step reports the next commanded Q: one ±1 move toward the rounded
// target, never outside [0,15], moved=false when already there.
func (f *floatQ) step(cur byte) (next byte, up, moved bool) {
	t := f.target()
	switch {
	case t > cur && cur < 15:
		return cur + 1, true, true
	case t < cur && cur > 0:
		return cur - 1, false, true
	default:
		return cur, false, false
	}
}

// InventoryController is the reader-side inventory engine: it runs
// slotted-ALOHA sweeps against a tag population, re-sizing the Q
// parameter between sweeps from a collision-based backlog estimate.
// IVN's multi-sensor story (§3.7) rides on this machinery:
// "In order to avoid collision between multiple sensors, IVN can leverage
// a variety of techniques from standard backscatter communications."
//
// With a non-nil Fault the controller sees a degraded channel (truncated
// commands, browned-out tags, corrupted uplinks); with a non-nil Recovery
// it fights back (floating-Q adaptation, re-ACK, re-query backoff). Both
// nil reproduces the historical clean-channel controller command for
// command. A non-nil Trace receives the typed event stream of every
// round, timestamped by the commands' PIE frame durations.
type InventoryController struct {
	// Session is the inventory session to run rounds in.
	Session gen2.Session
	// InitialQ seeds the slot-count exponent (0-15).
	InitialQ byte
	// MaxCommands bounds a round (guards against livelock).
	MaxCommands int
	// Channel models the uplink at event level: singulated replies decode
	// with a budget-derived probability and collisions can resolve by
	// capture. Implementations keyed by tag index (EventChannel.Budgets)
	// must be index-aligned with the TagLogic slice handed to
	// RunRound/InventoryAll. nil is the historical ideal uplink: every
	// reply decodes exactly and collisions never capture.
	Channel Channel
	// Fault perturbs the air interface; nil = clean channel.
	Fault ChannelFault
	// Recovery enables the recovery stack; nil = no recovery.
	Recovery *RecoveryPolicy
	// Trace observes the rounds; nil is free.
	Trace *Trace

	// cmdClock numbers every command issued within one run, so a
	// ChannelFault sees globally unique decision coordinates across the
	// rounds of an InventoryAll. RunRound advances it across calls (a
	// manual round loop is one run); InventoryAll resets it at entry so a
	// reused controller replays the same fault schedule every run.
	cmdClock int
	// pie times traced commands; defaulted lazily, never used untraced.
	pie gen2.PIEParams
}

// NewInventoryController returns a controller with spec-typical defaults.
func NewInventoryController(session gen2.Session) *InventoryController {
	return &InventoryController{
		Session:     session,
		InitialQ:    4,
		MaxCommands: 4096,
	}
}

// SlotOutcome classifies one slot of a round.
type SlotOutcome int

// Slot outcomes.
const (
	SlotEmpty SlotOutcome = iota
	SlotSingle
	SlotCollision
	// SlotCapture is a collided slot the capture effect resolved: the
	// dominant responder's RN16 was recovered despite the clash, so the
	// reader proceeds as for a single. Only a non-nil Channel produces
	// it. The Q estimators treat it as a single — the reader cannot tell
	// a captured collision from a clean singulation.
	SlotCapture
)

// String names the outcome.
func (s SlotOutcome) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotSingle:
		return "single"
	case SlotCollision:
		return "collision"
	case SlotCapture:
		return "capture"
	default:
		return fmt.Sprintf("SlotOutcome(%d)", int(s))
	}
}

// RoundStats summarizes a completed round.
type RoundStats struct {
	// EPCs are the identifiers read, in singulation order. Under power
	// faults a tag can be read twice in one round (a brownout resets its
	// inventoried flag); InventoryAll deduplicates across rounds.
	EPCs [][]byte
	// Commands is the number of reader commands issued.
	Commands int
	// Slots, Empties, Singles, Collisions count slot outcomes. A
	// captured collision counts under Captures, not Singles or
	// Collisions.
	Slots, Empties, Singles, Collisions int
	// Captures counts collided slots the channel's capture effect
	// resolved into a singulation (non-nil Channel only).
	Captures int
	// QueryAdjusts counts mid-sweep QueryAdjust commands issued by the
	// floating-Q adaptation (Recovery only).
	QueryAdjusts int
	// FinalQ is the floating Q at round end.
	FinalQ float64

	// Truncated counts reader commands lost in flight (ChannelFault).
	Truncated int
	// Corrupted counts uplink replies the fault layer corrupted.
	Corrupted int
	// Brownouts counts observed powered→unpowered tag transitions.
	Brownouts int
	// LostSlots counts singulated slots that yielded no EPC: undecodable
	// RN16, lost ACK exchange, or EPC corruption beyond the retry budget.
	LostSlots int
	// ACKRetries counts recovery re-ACKs issued (Recovery only).
	ACKRetries int
	// Recovered counts EPCs obtained only through a re-ACK (Recovery
	// only) — reads that the no-recovery controller would have lost.
	Recovered int
}

// Efficiency returns singulations per slot (captures included) — the
// throughput metric slotted ALOHA maximizes near Q ≈ log2(population).
func (s RoundStats) Efficiency() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.Singles+s.Captures) / float64(s.Slots)
}

// medium abstracts what the controller can observe of the air interface.
// With more than one tag backscattering in a slot the reader sees a
// collision (CRC/preamble failure), not bits — unless a channel's
// capture effect resolves the clash for the dominant tag. A non-nil
// fault interposes on every broadcast: command truncation, per-tag
// power, uplink corruption. Replies report the responder's population
// index (-1 when no single responder) so the channel can look up its
// realized budget.
type medium struct {
	tags    []*gen2.TagLogic
	channel Channel
	rand    *rng.Rand
	fault   ChannelFault
	clock   *int
	lit     []bool // last observed power state per tag (fault != nil only)
	stats   *RoundStats
	trace   *Trace
}

// broadcast sends a command to every powered tag and classifies replies.
func (m *medium) broadcast(c gen2.Command) (SlotOutcome, gen2.Reply, int) {
	if m.fault == nil {
		return m.broadcastClean(c)
	}
	cmd := *m.clock
	*m.clock++
	if m.fault.CommandTruncated(cmd) {
		m.stats.Truncated++
		if m.trace != nil {
			m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "truncated", Cmd: c.Type().String()})
		}
		return SlotEmpty, gen2.Reply{Kind: gen2.ReplyNone}, -1
	}
	var got []gen2.Reply
	var responders []int
	for i, t := range m.tags {
		if !m.fault.TagPowered(cmd, i) {
			if m.lit[i] {
				t.PowerReset()
				m.stats.Brownouts++
				if m.trace != nil {
					m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "brownout", EPC: fmt.Sprintf("%x", t.EPC())})
				}
			}
			m.lit[i] = false
			continue
		}
		m.lit[i] = true
		if r := t.HandleCommand(c); r.Kind != gen2.ReplyNone {
			got = append(got, r)
			responders = append(responders, i)
		}
	}
	return m.classify(cmd, got, responders)
}

// broadcastClean is the historical fault-free path, kept separate so the
// clean channel pays a single nil check and no per-tag bookkeeping.
func (m *medium) broadcastClean(c gen2.Command) (SlotOutcome, gen2.Reply, int) {
	var got []gen2.Reply
	var responders []int
	for i, t := range m.tags {
		if r := t.HandleCommand(c); r.Kind != gen2.ReplyNone {
			got = append(got, r)
			responders = append(responders, i)
		}
	}
	return m.classify(0, got, responders)
}

// classify resolves the collected replies of one broadcast into a slot
// outcome. cmd keys fault corruption and is unused on the clean path.
func (m *medium) classify(cmd int, got []gen2.Reply, responders []int) (SlotOutcome, gen2.Reply, int) {
	switch len(got) {
	case 0:
		return SlotEmpty, gen2.Reply{Kind: gen2.ReplyNone}, -1
	case 1:
		return SlotSingle, m.corrupt(cmd, got[0]), responders[0]
	default:
		if m.channel != nil {
			if w := m.channel.Capture(responders, m.rand); w >= 0 {
				for j, ti := range responders {
					if ti == w {
						// The winner's bits survived the clash; fault
						// corruption still applies on top.
						return SlotCapture, m.corrupt(cmd, got[j]), w
					}
				}
			}
		}
		return SlotCollision, gen2.Reply{Kind: gen2.ReplyNone}, -1
	}
}

// corrupt applies fault-layer uplink corruption to a singulated reply.
func (m *medium) corrupt(cmd int, reply gen2.Reply) gen2.Reply {
	if m.fault == nil {
		return reply
	}
	if bits, corrupted := m.fault.CorruptUplink(cmd, reply.Bits); corrupted {
		m.stats.Corrupted++
		reply.Bits = bits
		if m.trace != nil {
			m.trace.Emit(Event{Kind: EvFaultFired, Outcome: "corrupted"})
		}
	}
	return reply
}

// RunRound inventories a population of powered tags. Each sweep issues a
// Query with the current Q and walks all 2^Q slots with QueryReps, ACKing
// singles; after the sweep the backlog is estimated from the collision
// count (Schoute's 2.39·c estimator) and Q is re-sized for the next sweep.
// With Recovery set, the Annex-D floating-Q algorithm additionally adjusts
// Q mid-sweep via QueryAdjust. The round ends when a sweep drains (no
// replies) or MaxCommands is hit.
func (ic *InventoryController) RunRound(tags []*gen2.TagLogic, r *rng.Rand) (*RoundStats, error) {
	return ic.runRound(tags, ic.InitialQ&0xF, r)
}

func (ic *InventoryController) runRound(tags []*gen2.TagLogic, q byte, r *rng.Rand) (*RoundStats, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("session: no tags to inventory")
	}
	maxCmds := ic.MaxCommands
	if maxCmds <= 0 {
		maxCmds = 4096
	}
	stats := &RoundStats{}
	m := &medium{tags: tags, channel: ic.Channel, rand: r, fault: ic.Fault, clock: &ic.cmdClock, stats: stats, trace: ic.Trace}
	if ic.Fault != nil {
		m.lit = make([]bool, len(tags))
		for i := range m.lit {
			m.lit[i] = true
		}
	}
	if ic.Recovery != nil {
		return ic.runAdaptive(m, stats, q, maxCmds, r)
	}
	return ic.runFixed(m, stats, q, maxCmds, r)
}

// issuer issues one command, charging the round's command budget and
// advancing the trace clock past the command's on-air time.
func (ic *InventoryController) issuer(m *medium, stats *RoundStats) func(gen2.Command) (SlotOutcome, gen2.Reply, int) {
	return func(c gen2.Command) (SlotOutcome, gen2.Reply, int) {
		stats.Commands++
		if ic.Trace != nil {
			ic.traceCommand(c)
		}
		return m.broadcast(c)
	}
}

// traceCommand advances the sim clock by the command's PIE frame
// duration and emits the command-sent event. Only reached when tracing.
func (ic *InventoryController) traceCommand(c gen2.Command) {
	if ic.pie.SampleRate == 0 {
		// Frame durations depend only on the symbol timing, not the
		// envelope sample rate; any positive rate validates.
		ic.pie = gen2.DefaultPIE(1)
	}
	bits := c.AppendBits(nil)
	ic.Trace.Advance(ic.pie.FrameDuration(bits, c.Type() == gen2.CmdQuery))
	ev := Event{Kind: EvCommandSent, Cmd: c.Type().String()}
	if qc, ok := c.(*gen2.Query); ok {
		// The commanded slot-count exponent, so observers (and the
		// ceiling regression test) can replay the commanded Q exactly.
		ev.Value = float64(qc.Q)
	}
	if qa, ok := c.(*gen2.QueryAdjust); ok {
		if qa.UpDn == gen2.QUp {
			ev.Outcome = "up"
		} else {
			ev.Outcome = "down"
		}
	}
	ic.Trace.Emit(ev)
}

// traceSlot emits the slot-resolution event. Only reached when tracing.
func (ic *InventoryController) traceSlot(outcome SlotOutcome) {
	ic.Trace.Emit(Event{Kind: EvSlotResolved, Outcome: outcome.String()})
}

// channelDecode pushes a singulated reply through the channel, advancing
// the trace clock by the receive window and emitting the reply-decoded
// event, mirroring the stream the DSP link emits. Only called with a
// non-nil Channel.
func (ic *InventoryController) channelDecode(tagIndex int, reply gen2.Reply, exchange string, r *rng.Rand) (ChannelDecode, error) {
	dec, err := ic.Channel.DecodeReply(tagIndex, reply, exchange, r)
	if err != nil {
		return dec, err
	}
	if ic.Trace != nil {
		ic.Trace.Advance(ic.Channel.ReceiveSeconds())
		ev := Event{Kind: EvReplyDecoded, Label: exchange, OK: dec.OK}
		if dec.OK {
			ev.Value = dec.Correlation
		}
		ic.Trace.Emit(ev)
	}
	return dec, nil
}

// runFixed is the historical sweep structure: fixed Q per sweep, Schoute
// backlog estimation between sweeps. With Fault == nil it issues exactly
// the command sequence of the pre-fault controller.
func (ic *InventoryController) runFixed(m *medium, stats *RoundStats, q byte, maxCmds int, r *rng.Rand) (*RoundStats, error) {
	issue := ic.issuer(m, stats)
	for stats.Commands < maxCmds {
		// One sweep: Query opens slot 0; QueryReps advance.
		outcome, reply, resp := issue(&gen2.Query{Session: ic.Session, Q: q})
		sweepSingles, sweepCollisions := 0, 0
		slots := 1 << uint(q)
		for slot := 0; slot < slots && stats.Commands < maxCmds; slot++ {
			stats.Slots++
			if ic.Trace != nil {
				ic.traceSlot(outcome)
			}
			switch outcome {
			case SlotSingle, SlotCapture:
				if outcome == SlotCapture {
					stats.Captures++
				} else {
					stats.Singles++
				}
				sweepSingles++
				if err := ic.singulate(stats, issue, reply, resp, outcome == SlotCapture, r); err != nil {
					return nil, err
				}
			case SlotCollision:
				stats.Collisions++
				sweepCollisions++
			case SlotEmpty:
				stats.Empties++
			}
			if slot < slots-1 {
				outcome, reply, resp = issue(&gen2.QueryRep{Session: ic.Session})
			}
		}
		if sweepSingles == 0 && sweepCollisions == 0 {
			break // drained
		}
		// Schoute backlog estimate: ≈2.39 tags per colliding slot.
		backlog := int(2.39*float64(sweepCollisions) + 0.5)
		if backlog == 0 {
			// Singles only: one more tight sweep catches stragglers that
			// were mid-handshake.
			q = 1
			continue
		}
		nq := byte(0)
		for 1<<uint(nq) < backlog && nq < 15 {
			nq++
		}
		q = nq
	}
	stats.FinalQ = float64(q)
	return stats, nil
}

// runAdaptive is the recovery-side round: the Gen2 Annex-D floating-Q
// algorithm. Each collision adds C to the floating Q, each empty slot
// subtracts C; when the rounded value moves, the controller issues a
// QueryAdjust, every arbitrating tag redraws its slot, and the sweep
// restarts at the new size. This tracks the true backlog much faster than
// per-sweep estimation when faults churn protocol state mid-round. The
// accumulator is clamped to the spec's [0,15] and each QueryAdjust steps
// the commanded Q by exactly the ±1 the command carries (see floatQ).
func (ic *InventoryController) runAdaptive(m *medium, stats *RoundStats, q byte, maxCmds int, r *rng.Rand) (*RoundStats, error) {
	issue := ic.issuer(m, stats)
	fq := newFloatQ(q, ic.Recovery.qStep())
	for stats.Commands < maxCmds {
		outcome, reply, resp := issue(&gen2.Query{Session: ic.Session, Q: q})
		sweepSingles, sweepCollisions := 0, 0
		slots := 1 << uint(q)
		slot := 0
		for slot < slots && stats.Commands < maxCmds {
			stats.Slots++
			if ic.Trace != nil {
				ic.traceSlot(outcome)
			}
			switch outcome {
			case SlotSingle, SlotCapture:
				if outcome == SlotCapture {
					stats.Captures++
				} else {
					stats.Singles++
				}
				sweepSingles++
				if err := ic.singulate(stats, issue, reply, resp, outcome == SlotCapture, r); err != nil {
					return nil, err
				}
			case SlotCollision:
				stats.Collisions++
				sweepCollisions++
				fq.collision()
			case SlotEmpty:
				stats.Empties++
				fq.empty()
			}
			slot++
			if slot >= slots || stats.Commands >= maxCmds {
				break
			}
			if nq, up, moved := fq.step(q); moved {
				// Mid-sweep re-size: QueryAdjust redraws every arbitrating
				// tag into the new slot space, stepping Q by the single ±1
				// the command encodes — the reader and every tag stay in
				// lockstep for any C, and Q never leaves [0,15].
				stats.QueryAdjusts++
				upDn := gen2.QUp
				if !up {
					upDn = gen2.QDown
				}
				q = nq
				slots = 1 << uint(q)
				slot = 0
				outcome, reply, resp = issue(&gen2.QueryAdjust{Session: ic.Session, UpDn: upDn})
				continue
			}
			outcome, reply, resp = issue(&gen2.QueryRep{Session: ic.Session})
		}
		if sweepSingles == 0 && sweepCollisions == 0 {
			break // drained
		}
		q = fq.target()
	}
	stats.FinalQ = fq.v
	return stats, nil
}

// singulate runs the ACK → EPC exchange for a singulated slot, with the
// recovery policy's bounded re-ACK on decode failure. On the clean
// channel an undecodable RN16 is a protocol invariant violation and
// surfaces as an error; under fault injection it is a lost slot. With a
// non-nil Channel the RN16 and EPC captures must additionally clear
// their budget-derived decode draws; a captured slot (captured=true)
// arrives with its RN16 already decoded under the losers' interference,
// inside Channel.Capture.
func (ic *InventoryController) singulate(stats *RoundStats, issue func(gen2.Command) (SlotOutcome, gen2.Reply, int), reply gen2.Reply, responder int, captured bool, r *rng.Rand) error {
	if ic.Channel != nil {
		if captured {
			// Capture already drew the interference-degraded RN16 decode;
			// mirror the receive time and event so observers see the same
			// stream shape as a clean singulation.
			if ic.Trace != nil {
				ic.Trace.Advance(ic.Channel.ReceiveSeconds())
				ic.Trace.Emit(Event{Kind: EvReplyDecoded, Label: "rn16", OK: true})
			}
		} else {
			dec, err := ic.channelDecode(responder, reply, "rn16", r)
			if err != nil {
				return err
			}
			if !dec.OK {
				// The reader cannot form an ACK; the tag times out of Reply
				// back to arbitration at the next Query/QueryRep/QueryAdjust.
				stats.LostSlots++
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvEPCStranded, Outcome: "rn16-lost"})
				}
				return nil
			}
		}
	}
	var rn gen2.RN16Reply
	if err := rn.DecodeFromBits(reply.Bits); err != nil {
		if ic.Fault == nil {
			return fmt.Errorf("session: bad RN16 reply: %w", err)
		}
		// Corruption shortened the reply: the reader cannot form an ACK,
		// so the slot is lost. (A bit-flipped but length-preserving RN16
		// decodes to a wrong value; the mismatched ACK below sends the
		// tag back to arbitration, which is the same loss one exchange
		// later.)
		stats.LostSlots++
		if ic.Trace != nil {
			ic.Trace.Emit(Event{Kind: EvEPCStranded, Outcome: "bad-rn16"})
		}
		return nil
	}
	ackOutcome, epcReply, epcResp := issue(&gen2.ACK{RN16: rn.RN16})
	if ackOutcome == SlotSingle && epcReply.Kind == gen2.ReplyEPC {
		chOK := true
		if ic.Channel != nil {
			dec, err := ic.channelDecode(epcResp, epcReply, "epc", r)
			if err != nil {
				return err
			}
			chOK = dec.OK
		}
		if chOK {
			var er gen2.EPCReply
			if err := er.DecodeFromBits(epcReply.Bits); err == nil {
				stats.EPCs = append(stats.EPCs, er.EPC)
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvEPCRead, EPC: fmt.Sprintf("%x", er.EPC)})
				}
				return nil
			}
		}
	}
	// The EPC exchange failed: the reply was lost, collided, failed its
	// decode draw, or failed its CRC. The tag meanwhile believes it was
	// acknowledged and will flip its inventoried flag at the next
	// Query/QueryRep — without recovery it is stranded for the rest of
	// the inventory. Re-ACK while it still holds the handshake RN16.
	if rec := ic.Recovery; rec != nil {
		for attempt := 0; attempt < rec.MaxACKRetries; attempt++ {
			stats.ACKRetries++
			if ic.Trace != nil {
				ic.Trace.Emit(Event{Kind: EvRetryTaken, Cmd: "ACK", Attempt: attempt + 1})
			}
			outcome, rep, rresp := issue(&gen2.ACK{RN16: rn.RN16})
			if outcome != SlotSingle || rep.Kind != gen2.ReplyEPC {
				continue
			}
			if ic.Channel != nil {
				dec, err := ic.channelDecode(rresp, rep, "epc", r)
				if err != nil {
					return err
				}
				if !dec.OK {
					continue
				}
			}
			var er gen2.EPCReply
			if err := er.DecodeFromBits(rep.Bits); err == nil {
				stats.EPCs = append(stats.EPCs, er.EPC)
				stats.Recovered++
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvEPCRecovered, EPC: fmt.Sprintf("%x", er.EPC), Attempt: attempt + 1})
				}
				return nil
			}
		}
	}
	stats.LostSlots++
	if ic.Trace != nil {
		ic.Trace.Emit(Event{Kind: EvEPCStranded, Outcome: "epc-lost"})
	}
	return nil
}

// InventoryAll runs rounds until every tag has been read or maxRounds is
// exhausted, returning the union of EPCs in first-read order. When the
// budget runs out with tags unread, the partial list is returned together
// with an error wrapping ErrInventoryIncomplete — exhaustion is never
// silent. With Recovery set, a round that reads nothing new triggers a
// bounded re-query with slot-space backoff: the next round opens with a
// doubled slot count (Q+1), de-correlating persistent collisions; after
// MaxRequeries consecutive fruitless rounds the controller gives up early
// rather than spending the remaining budget on a livelocked population.
func (ic *InventoryController) InventoryAll(tags []*gen2.TagLogic, maxRounds int, r *rng.Rand) ([][]byte, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("session: maxRounds %d < 1", maxRounds)
	}
	// Each run replays the fault schedule from command zero: a reused
	// controller previously carried cmdClock over, so the second run of a
	// paired fault on/off comparison saw a shifted schedule and silently
	// desynchronized (see TestInventoryAllResetsCmdClock).
	ic.cmdClock = 0
	seen := map[string]bool{}
	var out [][]byte
	baseQ := ic.InitialQ & 0xF
	q := baseQ
	noProgress := 0
	for round := 0; round < maxRounds && len(seen) < len(tags); round++ {
		stats, err := ic.runRound(tags, q, r)
		if err != nil {
			return out, err
		}
		progress := 0
		for _, epc := range stats.EPCs {
			if !seen[string(epc)] {
				seen[string(epc)] = true
				out = append(out, epc)
				progress++
			}
		}
		if rec := ic.Recovery; rec != nil {
			if progress == 0 {
				noProgress++
				if noProgress > rec.MaxRequeries {
					break // re-query budget exhausted; report incompleteness below
				}
				if q < 15 {
					q++ // backoff: double the slot space for the re-query
				}
				if ic.Trace != nil {
					ic.Trace.Emit(Event{Kind: EvRetryTaken, Cmd: "Query", Attempt: noProgress})
				}
			} else {
				noProgress = 0
				q = baseQ
			}
		}
	}
	if len(seen) < len(tags) {
		return out, fmt.Errorf("session: read %d of %d tags: %w", len(seen), len(tags), ErrInventoryIncomplete)
	}
	return out, nil
}
