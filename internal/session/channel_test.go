package session

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ivn/internal/gen2"
	"ivn/internal/rng"
)

// rn16Reply draws one real RN16 reply to size decode draws against.
func rn16Reply(t *testing.T) gen2.Reply {
	t.Helper()
	tl := makePopulation(t, 1, 90)[0]
	reply := tl.HandleCommand(&gen2.Query{Q: 0})
	if reply.Kind != gen2.ReplyRN16 {
		t.Fatalf("reply = %v", reply.Kind)
	}
	return reply
}

func TestDecodeProbabilityShape(t *testing.T) {
	if p := DecodeProbability(0, 16, 8, 0.8); p != 0 {
		t.Fatalf("p(0) = %g, want 0", p)
	}
	if p := DecodeProbability(-1, 16, 8, 0.8); p != 0 {
		t.Fatalf("p(-1) = %g, want 0", p)
	}
	prev := 0.0
	for _, snr := range []float64{0.1, 0.3, 0.6, 0.889, 1.2, 2, 4, 8, 100} {
		p := DecodeProbability(snr, 16, 8, 0.8)
		if p < 0 || p > 1 {
			t.Fatalf("p(%g) = %g outside [0,1]", snr, p)
		}
		if p < prev {
			t.Fatalf("p not monotone: p(%g) = %g < %g", snr, p, prev)
		}
		prev = p
	}
	if prev < 0.999999 {
		t.Fatalf("p(100) = %g, want ≈1", prev)
	}
	// Longer payloads can only be harder to recover in full.
	if p16, p96 := DecodeProbability(1, 16, 8, 0.8), DecodeProbability(1, 96, 8, 0.8); p96 > p16 {
		t.Fatalf("p(96 bits) = %g > p(16 bits) = %g", p96, p16)
	}
}

// TestEventChannelDecodeRates pins the Bernoulli draw to the analytic
// probability: over many draws the empirical OK rate must concentrate at
// DecodeProbability.
func TestEventChannelDecodeRates(t *testing.T) {
	reply := rn16Reply(t)
	r := rng.New(41)
	for _, snr := range []float64{0.6, 1.0, 1.5} {
		ec := &EventChannel{Budgets: []TagBudget{{SNR: snr, RSSI: 1}}}
		want := DecodeProbability(snr, len(reply.Bits), 8, 0.8)
		const draws = 4000
		ok := 0
		for i := 0; i < draws; i++ {
			dec, err := ec.DecodeReply(0, reply, "rn16", r)
			if err != nil {
				t.Fatal(err)
			}
			if dec.OK {
				ok++
				if dec.Correlation <= 0 || dec.Correlation > 1 {
					t.Fatalf("correlation %g outside (0,1]", dec.Correlation)
				}
			}
		}
		got := float64(ok) / draws
		if math.Abs(got-want) > 0.03 {
			t.Errorf("snr %g: empirical rate %.3f vs analytic %.3f", snr, got, want)
		}
	}
	ec := &EventChannel{Budgets: []TagBudget{{SNR: 1, RSSI: 1}}}
	if _, err := ec.DecodeReply(1, reply, "rn16", r); err == nil {
		t.Fatal("out-of-range tag index did not error")
	}
}

func TestCaptureDominance(t *testing.T) {
	r := rng.New(43)
	ec := &EventChannel{
		Budgets: []TagBudget{
			{SNR: 1e9, RSSI: 100},
			{SNR: 1e9, RSSI: 10},
			{SNR: 1e9, RSSI: 10},
			{SNR: 1e-6, RSSI: 100},
		},
		CaptureRatio: 2,
	}
	if w := ec.Capture([]int{0, 1}, r); w != 0 {
		t.Fatalf("dominant tag lost the capture: winner %d", w)
	}
	if w := ec.Capture([]int{1, 0}, r); w != 0 {
		t.Fatalf("capture depends on responder order: winner %d", w)
	}
	// Equal powers: neither dominates, whatever the ratio ≥ 1 demands.
	if w := ec.Capture([]int{1, 2}, r); w != -1 {
		t.Fatalf("tied collision captured: winner %d", w)
	}
	// Dominant in power but budget-starved: the interference-degraded
	// decode draw fails essentially surely.
	if w := ec.Capture([]int{3, 1}, r); w != -1 {
		t.Fatalf("snr-starved winner decoded: winner %d", w)
	}
	// Single responder or capture disabled: not the capture path's job.
	if w := ec.Capture([]int{0}, r); w != -1 {
		t.Fatalf("single responder captured: winner %d", w)
	}
	off := &EventChannel{Budgets: ec.Budgets}
	if w := off.Capture([]int{0, 1}, r); w != -1 {
		t.Fatalf("disabled capture resolved: winner %d", w)
	}
}

// TestInventoryWithCaptureReadsDominantTags forces collisions (Q=0, all
// tags in slot 0) over a power-graded population: the capture effect
// must peel tags off strongest-first where plain ALOHA would livelock
// the first slot of every sweep.
func TestInventoryWithCaptureReadsDominantTags(t *testing.T) {
	const n = 4
	tags := makePopulation(t, n, 51)
	ec := &EventChannel{
		Budgets: []TagBudget{
			{SNR: 1e9, RSSI: 1000},
			{SNR: 1e9, RSSI: 10},
			{SNR: 1e9, RSSI: 0.1},
			{SNR: 1e9, RSSI: 0.001},
		},
		CaptureRatio: 2,
	}
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.Channel = ec
	r := rng.New(52)
	seen := map[string]bool{}
	captures := 0
	for round := 0; round < 4 && len(seen) < n; round++ {
		stats, err := ic.RunRound(tags, r.Split(fmt.Sprintf("round-%d", round)))
		if err != nil {
			t.Fatal(err)
		}
		captures += stats.Captures
		for _, epc := range stats.EPCs {
			seen[string(epc)] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("read %d of %d tags", len(seen), n)
	}
	if captures < 2 {
		t.Fatalf("captures = %d, want ≥ 2 (Q=0 forces collisions)", captures)
	}
}

// TestChannelObserverEquivalence: a high-SNR event channel must emit the
// same typed event stream as the historical nil-channel controller, plus
// the reply-decoded events the DSP link also emits — observers cannot
// tell the fidelity levels apart structurally.
func TestChannelObserverEquivalence(t *testing.T) {
	run := func(ch Channel) []Event {
		tags := makePopulation(t, 1, 61)
		var rec Recorder
		ic := NewInventoryController(gen2.S0)
		ic.InitialQ = 0
		ic.Channel = ch
		ic.Trace = NewTrace(&rec)
		if _, err := ic.RunRound(tags, rng.New(62)); err != nil {
			t.Fatal(err)
		}
		return rec.Events
	}
	base := run(nil)
	withCh := run(&EventChannel{Budgets: []TagBudget{{SNR: 1e9, RSSI: 1}}})
	var stripped []Event
	decodes := 0
	for _, e := range withCh {
		if e.Kind == EvReplyDecoded {
			decodes++
			if !e.OK {
				t.Fatalf("high-SNR decode failed: %+v", e)
			}
			continue
		}
		stripped = append(stripped, e)
	}
	if decodes != 2 {
		t.Fatalf("reply-decoded events = %d, want 2 (rn16 + epc)", decodes)
	}
	if len(stripped) != len(base) {
		t.Fatalf("event count %d (sans decodes) vs nil-channel %d", len(stripped), len(base))
	}
	for i := range base {
		if base[i].Kind != stripped[i].Kind || base[i].Cmd != stripped[i].Cmd ||
			base[i].Outcome != stripped[i].Outcome || base[i].EPC != stripped[i].EPC {
			t.Fatalf("event %d diverges: nil-channel %+v vs event-channel %+v", i, base[i], stripped[i])
		}
	}
}

func TestFloatQBoundaries(t *testing.T) {
	// Saturation at 15 under sustained collisions, at 0 under empties,
	// with a step far larger than the remaining headroom.
	fq := newFloatQ(14, 5)
	fq.collision()
	if fq.v != 15 {
		t.Fatalf("collision overshot: v = %g", fq.v)
	}
	fq.collision()
	if fq.v != 15 || fq.target() != 15 {
		t.Fatalf("ceiling not held: v = %g target = %d", fq.v, fq.target())
	}
	if _, _, moved := fq.step(15); moved {
		t.Fatal("step above 15 issued")
	}
	fq = newFloatQ(1, 5)
	fq.empty()
	if fq.v != 0 {
		t.Fatalf("empty undershot: v = %g", fq.v)
	}
	fq.empty()
	if fq.v != 0 || fq.target() != 0 {
		t.Fatalf("floor not held: v = %g target = %d", fq.v, fq.target())
	}
	if _, _, moved := fq.step(0); moved {
		t.Fatal("step below 0 issued")
	}
	// A distant target is approached one step at a time, in order.
	fq = newFloatQ(3, 5)
	fq.collision() // v = 8
	q := byte(3)
	for i := 0; i < 5; i++ {
		next, up, moved := fq.step(q)
		if !moved || !up || next != q+1 {
			t.Fatalf("step %d: (%d, %v, %v) from q=%d", i, next, up, moved, q)
		}
		q = next
	}
	if _, _, moved := fq.step(q); moved {
		t.Fatalf("stepped past target: q = %d, v = %g", q, fq.v)
	}
}

// allDark is the all-empty channel: every tag is unpowered, every slot
// empty.
type allDark struct{}

func (allDark) CommandTruncated(int) bool                      { return false }
func (allDark) TagPowered(int, int) bool                       { return false }
func (allDark) CorruptUplink(int, gen2.Bits) (gen2.Bits, bool) { return nil, false }

// TestAdaptiveQFloorAtZero: all-empty rounds with a huge Q step must
// walk Q down to 0 and stop — never a QueryAdjust below the spec floor.
func TestAdaptiveQFloorAtZero(t *testing.T) {
	tags := makePopulation(t, 4, 71)
	var rec Recorder
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 2
	ic.Fault = allDark{}
	ic.Recovery = &RecoveryPolicy{MaxACKRetries: 1, MaxRequeries: 1, QAdjustC: 5}
	ic.Trace = NewTrace(&rec)
	stats, err := ic.RunRound(tags, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalQ != 0 {
		t.Fatalf("FinalQ = %g, want 0", stats.FinalQ)
	}
	downs := 0
	for _, e := range rec.Events {
		if e.Kind == EvCommandSent && e.Cmd == (&gen2.QueryAdjust{}).Type().String() {
			if e.Outcome != "down" {
				t.Fatalf("all-empty round issued QueryAdjust %q", e.Outcome)
			}
			downs++
		}
	}
	// From Q=2 there are exactly two spec-legal down-steps; a third would
	// command Q = -1.
	if downs != int(ic.InitialQ) {
		t.Fatalf("downs = %d, want %d", downs, ic.InitialQ)
	}
	if stats.QueryAdjusts != downs {
		t.Fatalf("stats.QueryAdjusts = %d, trace shows %d", stats.QueryAdjusts, downs)
	}
}

// TestAdaptiveQCeilingAtFifteen: a population dense enough to collide in
// every slot of every sweep size, started from Q=0 with a huge Q step,
// must walk the commanded Q (replayed from Query values and QueryAdjust
// up/down events) to the spec ceiling of 15 and never cross it in either
// direction.
func TestAdaptiveQCeilingAtFifteen(t *testing.T) {
	tags := makePopulation(t, 70000, 73)
	var rec Recorder
	ic := NewInventoryController(gen2.S0)
	ic.InitialQ = 0
	ic.MaxCommands = 64
	ic.Recovery = &RecoveryPolicy{MaxACKRetries: 1, MaxRequeries: 1, QAdjustC: 7}
	ic.Trace = NewTrace(&rec)
	stats, err := ic.RunRound(tags, rng.New(74))
	if err != nil {
		t.Fatal(err)
	}
	// Replay the commanded Q across the whole round: each Query event
	// carries its Q field in Value, each QueryAdjust steps by its ±1.
	q, maxQ := int(ic.InitialQ), int(ic.InitialQ)
	queryName := (&gen2.Query{}).Type().String()
	adjustName := (&gen2.QueryAdjust{}).Type().String()
	for _, e := range rec.Events {
		if e.Kind != EvCommandSent {
			continue
		}
		if e.Cmd == queryName {
			q = int(e.Value)
			if q < 0 || q > 15 {
				t.Fatalf("Query commanded Q = %d", q)
			}
			if q > maxQ {
				maxQ = q
			}
			continue
		}
		if e.Cmd != adjustName {
			continue
		}
		if e.Outcome == "up" {
			q++
		} else {
			q--
		}
		if q < 0 || q > 15 {
			t.Fatalf("commanded Q walked to %d", q)
		}
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ != 15 {
		t.Fatalf("max commanded Q = %d, want the ceiling 15", maxQ)
	}
	if stats.FinalQ < 0 || stats.FinalQ > 15 {
		t.Fatalf("FinalQ = %g outside [0,15]", stats.FinalQ)
	}
	if stats.Collisions == 0 {
		t.Fatal("dense round observed no collisions; test exercises nothing")
	}
}

// recordingFault truncates a deterministic subset of commands and records
// which absolute command indices fired.
type recordingFault struct {
	fired []int
}

func (f *recordingFault) CommandTruncated(cmd int) bool {
	if cmd%7 == 3 {
		f.fired = append(f.fired, cmd)
		return true
	}
	return false
}
func (f *recordingFault) TagPowered(int, int) bool                       { return true }
func (f *recordingFault) CorruptUplink(int, gen2.Bits) (gen2.Bits, bool) { return nil, false }

// TestInventoryAllResetsCmdClock: two InventoryAll runs on one reused
// controller must replay the identical fault schedule — cmdClock used to
// carry over, silently desynchronizing paired fault comparisons.
func TestInventoryAllResetsCmdClock(t *testing.T) {
	fault := &recordingFault{}
	ic := NewInventoryController(gen2.S0)
	ic.Fault = fault

	run := func() ([][]byte, []int) {
		fault.fired = nil
		tags := makePopulation(t, 8, 81)
		epcs, err := ic.InventoryAll(tags, 6, rng.New(82))
		if err != nil {
			t.Fatal(err)
		}
		return epcs, append([]int(nil), fault.fired...)
	}
	epcs1, fired1 := run()
	epcs2, fired2 := run()
	if len(fired1) == 0 {
		t.Fatal("fault never fired; test exercises nothing")
	}
	if len(fired1) != len(fired2) {
		t.Fatalf("fault schedules diverged: %d vs %d firings", len(fired1), len(fired2))
	}
	for i := range fired1 {
		if fired1[i] != fired2[i] {
			t.Fatalf("firing %d at cmd %d, rerun at cmd %d", i, fired1[i], fired2[i])
		}
	}
	if len(epcs1) != len(epcs2) {
		t.Fatalf("read %d vs %d EPCs", len(epcs1), len(epcs2))
	}
	for i := range epcs1 {
		if string(epcs1[i]) != string(epcs2[i]) {
			t.Fatalf("EPC %d: %x vs %x", i, epcs1[i], epcs2[i])
		}
	}
}

// TestInventoryAllPartialResultConsumed: when the budget runs out, the
// partial EPC list must arrive alongside the wrapped sentinel — callers
// consume what was read instead of dropping it.
func TestInventoryAllPartialResultConsumed(t *testing.T) {
	tags := makePopulation(t, 30, 91)
	ic := NewInventoryController(gen2.S0)
	ic.MaxCommands = 48
	epcs, err := ic.InventoryAll(tags, 1, rng.New(92))
	if err == nil {
		t.Fatal("tight budget read everything; shrink it")
	}
	if !errors.Is(err, ErrInventoryIncomplete) {
		t.Fatalf("error %v does not wrap ErrInventoryIncomplete", err)
	}
	if len(epcs) == 0 {
		t.Fatal("partial run returned no EPCs alongside the sentinel")
	}
	if len(epcs) >= len(tags) {
		t.Fatalf("read %d of %d yet errored", len(epcs), len(tags))
	}
}
