package safety

import (
	"math"
	"strings"
	"testing"

	"ivn/internal/core"
	"ivn/internal/em"
	"ivn/internal/radio"
	"ivn/internal/rng"
)

func prototypeCarriers(t *testing.T, n int) []radio.Carrier {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Antennas = n
	bf, err := core.New(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return bf.Carriers()
}

func TestPrototypeEIRPWithinFCC(t *testing.T) {
	// 30 dBm chains + 7 dBi antennas = 37 dBm EIRP per chain — 1 dB over
	// the Part 15.247 limit, which is what the experimental-license USRP
	// rig ran at. At the FCC operating point (6 dBi or 1 dB backoff) it
	// complies.
	cs := prototypeCarriers(t, 10)
	eirp := EIRPdBm(cs, 7)
	if math.Abs(eirp-37) > 0.5 {
		t.Fatalf("prototype EIRP = %.1f dBm, want ≈37", eirp)
	}
	if FCCCompliant(cs, 7) {
		t.Fatal("37 dBm EIRP reported compliant")
	}
	if !FCCCompliant(cs, 6) {
		t.Fatal("36 dBm EIRP reported non-compliant")
	}
	if !math.IsInf(EIRPdBm(nil, 7), -1) {
		t.Fatal("empty carrier set EIRP should be -Inf")
	}
}

func TestEIRPIndependentOfAntennaCount(t *testing.T) {
	// Per-chain evaluation: adding frequency-distinct chains must not
	// change the per-transmitter EIRP.
	e1 := EIRPdBm(prototypeCarriers(t, 1), 7)
	e10 := EIRPdBm(prototypeCarriers(t, 10), 7)
	if math.Abs(e1-e10) > 1e-9 {
		t.Fatalf("EIRP changed with chain count: %v vs %v", e1, e10)
	}
}

func TestEvaluateSurfaceBasics(t *testing.T) {
	cs := prototypeCarriers(t, 10)
	exp, err := EvaluateSurface(cs, math.Pow(10, 7.0/20), 0.5, em.Skin, 10, 915e6)
	if err != nil {
		t.Fatal(err)
	}
	if exp.AverageSAR <= 0 || exp.PeakSAR <= 0 {
		t.Fatalf("non-positive SAR: %+v", exp)
	}
	// Peak scales by peakFactor².
	if math.Abs(exp.PeakSAR/exp.AverageSAR-100) > 1e-9 {
		t.Fatalf("peak/avg SAR = %v, want 100", exp.PeakSAR/exp.AverageSAR)
	}
	if !strings.Contains(exp.String(), "W/kg") {
		t.Fatalf("unhelpful exposure string %q", exp.String())
	}
}

func TestAverageSARCompliantAtOperatingDistance(t *testing.T) {
	// The §7 claim: duty-cycled CIB at meter-scale distances keeps the
	// *time-averaged* SAR inside the 1.6 W/kg localized limit even though
	// instantaneous peaks are far higher.
	cs := prototypeCarriers(t, 10)
	g := math.Pow(10, 7.0/20)
	exp, err := EvaluateSurface(cs, g, 1.0, em.Skin, 10, 915e6)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Compliant() {
		t.Fatalf("average SAR %.3g W/kg exceeds the limit at 1 m", exp.AverageSAR)
	}
	if exp.PeakSAR < exp.AverageSAR {
		t.Fatal("peak below average")
	}
}

func TestSARFallsWithDistanceAndRisesWithConductivity(t *testing.T) {
	cs := prototypeCarriers(t, 10)
	g := math.Pow(10, 7.0/20)
	near, err := EvaluateSurface(cs, g, 0.3, em.Skin, 1, 915e6)
	if err != nil {
		t.Fatal(err)
	}
	far, err := EvaluateSurface(cs, g, 3.0, em.Skin, 1, 915e6)
	if err != nil {
		t.Fatal(err)
	}
	if far.AverageSAR >= near.AverageSAR {
		t.Fatal("SAR did not fall with distance")
	}
	// 10× distance → 100× less.
	if r := near.AverageSAR / far.AverageSAR; math.Abs(r-100) > 1 {
		t.Fatalf("inverse-square violated: ratio %v", r)
	}
	fat, err := EvaluateSurface(cs, g, 0.3, em.Fat, 1, 915e6)
	if err != nil {
		t.Fatal(err)
	}
	if fat.AverageSAR >= near.AverageSAR {
		t.Fatal("low-conductivity fat should absorb less than skin")
	}
}

func TestEvaluateSurfaceValidation(t *testing.T) {
	cs := prototypeCarriers(t, 2)
	if _, err := EvaluateSurface(nil, 1, 1, em.Skin, 1, 915e6); err == nil {
		t.Fatal("empty carriers accepted")
	}
	if _, err := EvaluateSurface(cs, 1, 0, em.Skin, 1, 915e6); err == nil {
		t.Fatal("zero distance accepted")
	}
	if _, err := EvaluateSurface(cs, 1, 1, em.Skin, 0.5, 915e6); err == nil {
		t.Fatal("peak factor < 1 accepted")
	}
}

func TestAnalyzeEnvelopeCIBDutyCycle(t *testing.T) {
	// A CIB envelope concentrates energy: PAPR well above 1 and a small
	// fraction of time near the peak — the duty-cycling behind the safety
	// argument.
	offsets := core.PaperOffsets()
	betas := make([]float64, len(offsets))
	r := rng.New(3)
	for i := range betas {
		if i > 0 {
			betas[i] = r.Phase()
		}
	}
	env := core.EnvelopeSeries(offsets, betas, 1, 8192, nil)
	dc, err := AnalyzeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if dc.PAPR < 3 {
		t.Fatalf("CIB PAPR = %v, expected well above 1", dc.PAPR)
	}
	if dc.FractionNearPeak > 0.2 {
		t.Fatalf("%.0f%% of time near peak; CIB should be duty-cycled", dc.FractionNearPeak*100)
	}
	// A CW envelope has PAPR 1 and is always "near peak".
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 2
	}
	cw, err := AnalyzeEnvelope(flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cw.PAPR-1) > 1e-12 || cw.FractionNearPeak != 1 {
		t.Fatalf("CW profile wrong: %+v", cw)
	}
}

func TestAnalyzeEnvelopeValidation(t *testing.T) {
	if _, err := AnalyzeEnvelope(nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
	if _, err := AnalyzeEnvelope(make([]float64, 4)); err == nil {
		t.Fatal("all-zero envelope accepted")
	}
}

func TestContinuousEquivalentPower(t *testing.T) {
	p, err := ContinuousEquivalentPower(10, 7.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-77) > 1e-12 {
		t.Fatalf("CW equivalent = %v, want 77", p)
	}
	if _, err := ContinuousEquivalentPower(0, 2); err == nil {
		t.Fatal("zero power accepted")
	}
	if _, err := ContinuousEquivalentPower(1, 0.5); err == nil {
		t.Fatal("papr < 1 accepted")
	}
}

func TestSafetyStoryEndToEnd(t *testing.T) {
	// The quantified §7 narrative: to match the peak CIB delivers with a
	// single continuous transmitter, the CW power (and hence the average
	// SAR) would have to rise by the PAPR — pushing it over the limit in
	// situations where duty-cycled CIB stays inside it.
	offsets := core.PaperOffsets()
	betas := make([]float64, len(offsets))
	env := core.EnvelopeSeries(offsets, betas, 1, 8192, nil)
	dc, err := AnalyzeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	cs := prototypeCarriers(t, 10)
	g := math.Pow(10, 7.0/20)
	const d = 0.35
	cib, err := EvaluateSurface(cs, g, d, em.Skin, math.Sqrt(dc.PAPR), 915e6)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the CW transmitter to deliver the same surface peak.
	cwAvgSAR := cib.AverageSAR * dc.PAPR
	if !cib.Compliant() {
		t.Fatalf("CIB average SAR %.3g non-compliant at %.2f m", cib.AverageSAR, d)
	}
	if cwAvgSAR <= SARLimitWkg {
		t.Fatalf("CW equivalent (%.3g W/kg) unexpectedly compliant; pick a nearer distance", cwAvgSAR)
	}
}
